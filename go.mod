module knightking

go 1.22
