module knightking

go 1.22

// Pinned so vet/kklint/govulncheck results are reproducible across
// machines and CI; update deliberately, not via whatever is on PATH.
toolchain go1.24.0
