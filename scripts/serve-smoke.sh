#!/usr/bin/env bash
# Smoke-test the kkserve walk service end to end the way an operator
# would: start the daemon with a preloaded graph, submit a node2vec job
# over HTTP, poll it to completion, fetch the JSON report, check that an
# identical resubmission returns identical walk statistics, and cancel a
# long-running job (it must reach `cancelled` in under 2 seconds).
# Then exercises live ingest: edges posted mid-job must not change a
# pinned job's result, a later job observes the new epoch, and explicit
# compaction folds the overlay. Finally submits a traced job and
# validates the Perfetto trace served at /jobs/{id}/trace.
# Used by CI; runnable locally with `scripts/serve-smoke.sh`.
set -euo pipefail

PORT="${SERVE_SMOKE_PORT:-19754}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/kkgen" ./cmd/kkgen
go build -o "$DIR/kkserve" ./cmd/kkserve

"$DIR/kkgen" -kind powerlaw -n 2000 -min 2 -cap 200 -alpha 2.1 -o "$DIR/g.txt"

"$DIR/kkserve" -addr "127.0.0.1:$PORT" -workers 2 -graph "pl2000=$DIR/g.txt" \
    2>"$DIR/serve.log" &
SERVE_PID=$!

for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve-smoke: kkserve exited before answering; log:" >&2
        cat "$DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.2
done

curl -sf "$BASE/graphs" | grep -q '"pl2000"' \
    || { echo "serve-smoke: preloaded graph missing from /graphs" >&2; exit 1; }

job_id() { grep -o '"id": "[^"]*"' | head -1 | cut -d'"' -f4; }

submit() { curl -sf -X POST "$BASE/jobs" -d "$1"; }

# Poll a job until it reaches the wanted terminal state.
await() { # id want timeout_iters
    local id="$1" want="$2" iters="${3:-150}"
    for i in $(seq 1 "$iters"); do
        STATE="$(curl -sf "$BASE/jobs/$id" | grep -o '"state": "[^"]*"' | cut -d'"' -f4)"
        case "$STATE" in
        "$want") return 0 ;;
        done | failed | cancelled)
            echo "serve-smoke: job $id ended $STATE, want $want" >&2
            return 1
            ;;
        esac
        sleep 0.1
    done
    echo "serve-smoke: job $id still $STATE, want $want" >&2
    return 1
}

N2V='{"graph":"pl2000","alg":"node2vec","length":20,"p":2,"q":0.5,"seed":42,"walkers":2000}'

ID1="$(submit "$N2V" | job_id)"
[ -n "$ID1" ] || { echo "serve-smoke: submission returned no job id" >&2; exit 1; }
await "$ID1" done

curl -sf "$BASE/jobs/$ID1/result" >"$DIR/r1.json"
grep -q '"algorithm": "node2vec"' "$DIR/r1.json" \
    || { echo "serve-smoke: result missing algorithm" >&2; cat "$DIR/r1.json" >&2; exit 1; }
STEPS="$(grep -o '"steps": [0-9]*' "$DIR/r1.json" | head -1 | grep -o '[0-9]*')"
if [ -z "$STEPS" ] || [ "$STEPS" -eq 0 ]; then
    echo "serve-smoke: result reports zero steps" >&2
    exit 1
fi

# Determinism through the service: an identical (graph, seed, params)
# submission must return identical walk statistics (wall-clock fields
# aside).
ID2="$(submit "$N2V" | job_id)"
await "$ID2" done
curl -sf "$BASE/jobs/$ID2/result" >"$DIR/r2.json"
strip() {
    python3 -c '
import json, sys
r = json.load(open(sys.argv[1]))["report"]
for k in list(r):
    if k.endswith("seconds") or k == "steps_per_second":
        del r[k]
print(json.dumps(r, sort_keys=True))
' "$1"
}
if [ "$(strip "$DIR/r1.json")" != "$(strip "$DIR/r2.json")" ]; then
    echo "serve-smoke: identical submissions returned different statistics" >&2
    diff <(strip "$DIR/r1.json") <(strip "$DIR/r2.json") >&2 || true
    exit 1
fi

# Cancellation: a job with an absurd walk length must reach `cancelled`
# within 2 seconds of the DELETE.
LONG='{"graph":"pl2000","alg":"deepwalk","length":10000000,"seed":7,"walkers":2000}'
ID3="$(submit "$LONG" | job_id)"
await "$ID3" running
T0="$(date +%s%N)"
curl -sf -X DELETE "$BASE/jobs/$ID3" >/dev/null
await "$ID3" cancelled
T1="$(date +%s%N)"
MS=$(((T1 - T0) / 1000000))
if [ "$MS" -ge 2000 ]; then
    echo "serve-smoke: cancellation took ${MS}ms, want < 2000ms" >&2
    exit 1
fi

# Fetch the page once and grep the file: `curl | grep -q` under
# pipefail dies of SIGPIPE when grep exits at the first match.
curl -sf "$BASE/metrics" >"$DIR/metrics.txt"
grep -q '^kk_serve_jobs_completed_total 2' "$DIR/metrics.txt" \
    || { echo "serve-smoke: /metrics completed count wrong" >&2; exit 1; }
grep -q '^kk_serve_jobs_cancelled_total 1' "$DIR/metrics.txt" \
    || { echo "serve-smoke: /metrics cancelled count wrong" >&2; exit 1; }

# Live ingest with epoch pinning: a job admitted before an ingest must
# return the exact pre-ingest statistics, while a job submitted after it
# observes the new epoch.
PIN='{"graph":"pl2000","alg":"deepwalk","length":400,"seed":99,"walkers":2000}'
IDA="$(submit "$PIN" | job_id)"
await "$IDA" done
curl -sf "$BASE/jobs/$IDA/result" >"$DIR/rA.json"

# Submit the same spec (pinned to epoch 0 at admission), then ingest a
# batch while it is queued or running.
IDB="$(submit "$PIN" | job_id)"
EDGES='{"edges":[{"src":0,"dst":1500},{"src":1,"dst":1501},{"src":2,"dst":1502},{"src":3,"dst":1503},{"src":4,"dst":1504}]}'
curl -sf -X POST "$BASE/graphs/pl2000/edges" -d "$EDGES" >"$DIR/ingest.json"
grep -q '"epoch": 1' "$DIR/ingest.json" \
    || { echo "serve-smoke: ingest did not publish epoch 1" >&2; cat "$DIR/ingest.json" >&2; exit 1; }
await "$IDB" done
curl -sf "$BASE/jobs/$IDB/result" >"$DIR/rB.json"
if [ "$(strip "$DIR/rA.json")" != "$(strip "$DIR/rB.json")" ]; then
    echo "serve-smoke: mid-job ingest changed a pinned job's result" >&2
    diff <(strip "$DIR/rA.json") <(strip "$DIR/rB.json") >&2 || true
    exit 1
fi
curl -sf "$BASE/jobs/$IDB" | grep -q '"epoch": 0' \
    || { echo "serve-smoke: pinned job does not report admission epoch 0" >&2; exit 1; }

# A job submitted after the ingest pins epoch 1 and walks the bigger
# view: its report's edge count grows by exactly the net overlay delta.
DELTA="$(curl -sf "$BASE/graphs" | python3 -c 'import json,sys
print([g for g in json.load(sys.stdin)["graphs"] if g["name"]=="pl2000"][0]["delta_edges"])')"
IDC="$(submit "$PIN" | job_id)"
curl -sf "$BASE/jobs/$IDC" | grep -q '"epoch": 1' \
    || { echo "serve-smoke: post-ingest job not pinned to epoch 1" >&2; exit 1; }
await "$IDC" done
curl -sf "$BASE/jobs/$IDC/result" >"$DIR/rC.json"
python3 -c '
import json, sys
a = json.load(open(sys.argv[1]))["report"]["edges"]
c = json.load(open(sys.argv[2]))["report"]["edges"]
delta = int(sys.argv[3])
assert c == a + delta, f"post-ingest job saw {c} edges, want {a} + {delta}"
' "$DIR/rA.json" "$DIR/rC.json" "$DELTA"

# Explicit compaction folds the overlay into a fresh CSR (epoch 2).
curl -sf -X POST "$BASE/graphs/pl2000/compact" >"$DIR/compact.json"
grep -q '"epoch": 2' "$DIR/compact.json" \
    || { echo "serve-smoke: compaction did not publish epoch 2" >&2; cat "$DIR/compact.json" >&2; exit 1; }
grep -q '"delta_edges": 0' "$DIR/compact.json" \
    || { echo "serve-smoke: compaction left overlay deltas behind" >&2; exit 1; }

curl -sf "$BASE/metrics" >"$DIR/metrics2.txt"
grep -q '^kk_serve_ingest_batches_total 1' "$DIR/metrics2.txt" \
    || { echo "serve-smoke: /metrics ingest batch count wrong" >&2; exit 1; }
grep -q '^kk_serve_compactions_total 1' "$DIR/metrics2.txt" \
    || { echo "serve-smoke: /metrics compaction count wrong" >&2; exit 1; }

# Causal tracing through the service: a job submitted with trace:true
# serves a structurally valid Perfetto trace at /jobs/{id}/trace, its
# report carries a critical-path attribution, and untraced jobs 404.
TRACED='{"graph":"pl2000","alg":"node2vec","length":20,"p":2,"q":0.5,"seed":42,"walkers":2000,"nodes":2,"trace":true,"trace_sample":64}'
IDT="$(submit "$TRACED" | job_id)"
await "$IDT" done
curl -sf "$BASE/jobs/$IDT/trace" >"$DIR/trace.json" \
    || { echo "serve-smoke: trace fetch failed" >&2; exit 1; }
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"]
stacks, supersteps, journeys, trialed = {}, 0, 0, 0
for ev in evs:
    key = (ev["pid"], ev["tid"])
    if ev["ph"] == "B":
        stacks.setdefault(key, []).append(ev["name"])
        supersteps += ev["name"].startswith("superstep ")
    elif ev["ph"] == "E":
        top = stacks.get(key, [])
        assert top and top[-1] == ev["name"], f"unmatched E {ev['name']!r} on {key}"
        top.pop()
    elif ev["ph"] == "i" and ev["pid"] == 2:
        journeys += 1
        if ev["name"] == "step" and ev.get("args", {}).get("trials", 0) >= 1:
            trialed += 1
for key, st in stacks.items():
    assert not st, f"track {key} left spans open: {st}"
assert supersteps > 0, "no superstep spans"
assert journeys > 0, "no sampled walker journeys"
assert trialed > 0, "no journey step carries a rejection trial count"
print(f"serve-smoke: trace OK ({len(evs)} events, {supersteps} superstep spans, {journeys} journey instants, {trialed} trialed steps)")
' "$DIR/trace.json"
curl -sf "$BASE/jobs/$IDT/result" | grep -q '"critical_path"' \
    || { echo "serve-smoke: traced report missing critical_path" >&2; exit 1; }
if curl -sf "$BASE/jobs/$IDA/trace" >/dev/null 2>&1; then
    echo "serve-smoke: untraced job served a trace, want 404" >&2
    exit 1
fi
curl -sf "$BASE/metrics" | grep -q '^kk_job_queue_wait_nanos_count' \
    || { echo "serve-smoke: /metrics missing queue wait histogram" >&2; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"

echo "serve-smoke: OK (report steps $STEPS, cancel latency ${MS}ms)"
