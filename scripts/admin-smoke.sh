#!/usr/bin/env bash
# Smoke-test the kkwalk admin server end to end: start a multi-rank walk
# with -admin-addr and -trace, scrape /metrics, /statusz, and /trace while
# it runs, and verify the final -json report carries a non-zero edges/step
# and the written Perfetto trace is structurally valid (superstep spans,
# sampled walker journeys). Exercises the whole telemetry path (engine
# hooks -> registry/collector -> HTTP -> file) the way an operator would.
# Used by CI; runnable locally with `scripts/admin-smoke.sh`.
set -euo pipefail

PORT="${ADMIN_SMOKE_PORT:-19753}"
DIR="$(mktemp -d)"
trap 'kill "$WALK_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/kkgen" ./cmd/kkgen
go build -o "$DIR/kkwalk" ./cmd/kkwalk

"$DIR/kkgen" -kind powerlaw -n 2000 -min 2 -cap 200 -alpha 2.1 -o "$DIR/g.txt"

# Enough walkers that the run stays alive for several scrapes.
"$DIR/kkwalk" -graph "$DIR/g.txt" -alg node2vec -nodes 4 -walkers 100000 \
    -admin-addr "127.0.0.1:$PORT" -trace "$DIR/trace.json" -trace-sample 256 \
    -quiet -json >"$DIR/report.json" &
WALK_PID=$!

# Wait for the listener, then scrape both endpoints mid-run.
for i in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$PORT/" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$WALK_PID" 2>/dev/null; then
        echo "admin-smoke: kkwalk exited before the admin server answered" >&2
        exit 1
    fi
    sleep 0.2
done

METRICS="$(curl -sf "http://127.0.0.1:$PORT/metrics")"
STATUSZ="$(curl -sf "http://127.0.0.1:$PORT/statusz")"

echo "$METRICS" | grep -q '^kk_steps_total' \
    || { echo "admin-smoke: /metrics missing kk_steps_total" >&2; exit 1; }
FAMILIES="$(echo "$METRICS" | grep -oE '^kk_[a-z_]+_bucket' | sort -u | wc -l)"
if [ "$FAMILIES" -lt 4 ]; then
    echo "admin-smoke: /metrics has $FAMILIES histogram families, want >= 4" >&2
    exit 1
fi
echo "$STATUSZ" | grep -q '"superstep"' \
    || { echo "admin-smoke: /statusz missing superstep" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/debug/pprof/cmdline" >/dev/null \
    || { echo "admin-smoke: pprof endpoint failed" >&2; exit 1; }

# The live /trace endpoint serves the partial trace mid-run.
curl -sf "http://127.0.0.1:$PORT/trace" >"$DIR/live-trace.json" \
    || { echo "admin-smoke: /trace endpoint failed" >&2; exit 1; }
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert "traceEvents" in doc, "live trace has no traceEvents"
' "$DIR/live-trace.json"

wait "$WALK_PID"

# The final trace file must be a structurally valid Chrome trace: matched
# B/E span pairs per track, superstep spans on every rank, and sampled
# walker journey instants with step decisions.
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"]
assert evs, "trace is empty"
stacks, supersteps, journeys = {}, 0, 0
for ev in evs:
    key = (ev["pid"], ev["tid"])
    ph = ev["ph"]
    if ph == "B":
        stacks.setdefault(key, []).append(ev["name"])
        if ev["name"].startswith("superstep "):
            supersteps += 1
    elif ph == "E":
        top = stacks.get(key, [])
        assert top and top[-1] == ev["name"], f"unmatched E {ev['name']!r} on {key}"
        top.pop()
    elif ph == "i" and ev["pid"] == 2:
        journeys += 1
for key, st in stacks.items():
    assert not st, f"track {key} left spans open: {st}"
assert supersteps > 0, "no superstep spans"
assert journeys > 0, "no sampled walker journey events"
print(f"admin-smoke: trace OK ({len(evs)} events, {supersteps} superstep spans, {journeys} journey instants)")
' "$DIR/trace.json"

EPS="$(sed -n 's/.*"edges_per_step":\([0-9.e+-]*\).*/\1/p' "$DIR/report.json")"
if [ -z "$EPS" ] || [ "$EPS" = "0" ]; then
    echo "admin-smoke: report edges_per_step empty or zero: $(cat "$DIR/report.json")" >&2
    exit 1
fi
LINES="$(wc -l <"$DIR/report.json")"
if [ "$LINES" -ne 1 ]; then
    echo "admin-smoke: -json emitted $LINES lines, want exactly 1" >&2
    exit 1
fi

echo "admin-smoke: OK ($FAMILIES histogram families, edges/step $EPS)"
