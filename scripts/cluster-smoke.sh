#!/usr/bin/env bash
# Smoke-test the multi-process cluster the way an operator would: start a
# kkcoord coordinator and three kkrank workers over localhost TCP, SIGKILL
# one worker mid-run, offer a replacement, and require (a) the coordinator
# to report exactly the failover, (b) the job to finish, and (c) the merged
# per-rank walk dump to be byte-identical to an uninterrupted
# single-process kkwalk run of the same job.
# Used by CI; runnable locally with `scripts/cluster-smoke.sh`.
set -euo pipefail

DIR="$(mktemp -d)"
WORKER_PIDS=()
COORD_PID=""
trap 'kill "$COORD_PID" "${WORKER_PIDS[@]}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/kkgen" ./cmd/kkgen
go build -o "$DIR/kkwalk" ./cmd/kkwalk
go build -o "$DIR/kkcoord" ./cmd/kkcoord
go build -o "$DIR/kkrank" ./cmd/kkrank

"$DIR/kkgen" -kind powerlaw -n 3000 -min 2 -cap 200 -alpha 2.1 -o "$DIR/g.txt"

ARGS=(-graph "$DIR/g.txt" -alg deepwalk -length 400 -walkers 3000 -seed 42)

# Reference: same job, one process, same partition count.
"$DIR/kkwalk" "${ARGS[@]}" -nodes 3 -dump "$DIR/ref.txt" -quiet

"$DIR/kkcoord" "${ARGS[@]}" -ranks 3 \
    -checkpoint-dir "$DIR/ckpt" -checkpoint-every 16 \
    -dump-dir "$DIR/dumps" \
    -addr-file "$DIR/coord.addr" \
    -gather-timeout 60s -net-timeout 10s \
    -json >"$DIR/summary.json" 2>"$DIR/coord.log" &
COORD_PID=$!

for i in $(seq 1 50); do
    [ -s "$DIR/coord.addr" ] && break
    if ! kill -0 "$COORD_PID" 2>/dev/null; then
        echo "cluster-smoke: kkcoord exited before binding; log:" >&2
        cat "$DIR/coord.log" >&2
        exit 1
    fi
    sleep 0.1
done
COORD_ADDR="$(cat "$DIR/coord.addr")"

for i in 1 2 3; do
    "$DIR/kkrank" -coord "$COORD_ADDR" 2>"$DIR/rank$i.log" &
    WORKER_PIDS+=($!)
done

# Wait until the run is past its first committed checkpoint, then SIGKILL
# one worker and offer a replacement process.
for i in $(seq 1 100); do
    if grep -q 'releasing start barrier' "$DIR/coord.log" 2>/dev/null; then break; fi
    sleep 0.1
done
sleep 1
kill -9 "${WORKER_PIDS[1]}" 2>/dev/null \
    || { echo "cluster-smoke: run finished before the kill; lengthen the walk" >&2; exit 1; }

"$DIR/kkrank" -coord "$COORD_ADDR" 2>"$DIR/rank4.log" &
WORKER_PIDS+=($!)

if ! wait "$COORD_PID"; then
    echo "cluster-smoke: kkcoord failed; log:" >&2
    cat "$DIR/coord.log" >&2
    exit 1
fi
COORD_PID=""

grep -q '"failovers":1' "$DIR/summary.json" \
    || { echo "cluster-smoke: expected exactly one failover; summary: $(cat "$DIR/summary.json")" >&2; exit 1; }
grep -q 'resume superstep' "$DIR"/rank*.log \
    || { echo "cluster-smoke: no rank logged a checkpoint resume" >&2; exit 1; }

# Determinism: merge the per-rank dumps (sort by walker ID, strip the ID
# column) and compare byte-for-byte with the uninterrupted reference.
cat "$DIR"/dumps/walks-rank*.txt | sort -n -k1,1 | cut -d' ' -f2- >"$DIR/merged.txt"
if ! cmp -s "$DIR/merged.txt" "$DIR/ref.txt"; then
    echo "cluster-smoke: recovered cluster dump differs from uninterrupted reference" >&2
    exit 1
fi

echo "cluster-smoke: OK (failover + checkpoint resume, dump bit-identical)"
