package graph

import "math"

// FNV-1a 64-bit parameters (FNV is stable across platforms and releases,
// unlike hash/maphash, which is deliberately per-process seeded).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns a stable 64-bit content hash of g: a pure function
// of the CSR arrays (offsets, destinations, weight bits, type values) and
// the partial-slice range, independent of how or when the graph was built.
// Two graphs have equal fingerprints exactly when a walk over them is
// indistinguishable, so the serving layer uses it as the identity check
// behind named graph registration: the same file loaded twice fingerprints
// identically, while any edge, weight, or type difference changes it.
//
// The hash is FNV-1a over a fixed little-endian encoding with section
// length prefixes, so data cannot alias across sections (an absent weight
// array is distinct from an empty or all-zero one).
func Fingerprint(g *Graph) uint64 {
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= (v >> i) & 0xff
			h *= fnvPrime64
		}
	}

	mix(uint64(len(g.offsets)))
	for _, o := range g.offsets {
		mix(uint64(o))
	}
	mix(uint64(len(g.dst)))
	for _, d := range g.dst {
		mix(uint64(d))
	}
	if g.weight == nil {
		mix(0)
	} else {
		mix(1)
		mix(uint64(len(g.weight)))
		for _, w := range g.weight {
			mix(uint64(math.Float32bits(w)))
		}
	}
	if g.etype == nil {
		mix(0)
	} else {
		mix(1)
		mix(uint64(len(g.etype)))
		for _, t := range g.etype {
			mix(uint64(uint32(t)))
		}
	}
	if g.partial {
		mix(1)
		mix(uint64(g.ownedLo))
		mix(uint64(g.ownedHi))
	} else {
		mix(0)
	}
	// Overlay section, appended only when present: a delta-free graph keeps
	// the exact hash it had before overlays existed, so registry identities
	// recorded by older builds stay valid. The section covers every overlay
	// array, so two epochs differ whenever any replaced adjacency, weight,
	// type, or maintained bound differs.
	if g.over != nil {
		o := g.over
		mix(1)
		mix(uint64(len(o.verts)))
		for _, v := range o.verts {
			mix(uint64(v))
		}
		for _, off := range o.offs {
			mix(uint64(off))
		}
		mix(uint64(len(o.dst)))
		for _, d := range o.dst {
			mix(uint64(d))
		}
		if o.weight == nil {
			mix(0)
		} else {
			mix(1)
			for _, w := range o.weight {
				mix(uint64(math.Float32bits(w)))
			}
		}
		if o.etype == nil {
			mix(0)
		} else {
			mix(1)
			for _, t := range o.etype {
				mix(uint64(uint32(t)))
			}
		}
		if o.maxW == nil {
			mix(0)
		} else {
			mix(1)
			for _, m := range o.maxW {
				mix(math.Float64bits(m))
			}
		}
	}
	return h
}
