package graph

import (
	"bytes"
	"testing"

	"knightking/internal/rng"
)

// buildWeightedTyped builds a random weighted+typed graph and its binary
// serialization.
func buildWeightedTyped(t *testing.T, n, edges int) (*Graph, []byte) {
	t.Helper()
	r := rng.New(7)
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddTypedEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)), float32(r.Range(1, 5)), int32(r.Intn(3)))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

func TestReadBinaryDegrees(t *testing.T) {
	g, data := buildWeightedTyped(t, 50, 300)
	h, err := ReadBinaryDegrees(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices != 50 || h.NumEdges != g.NumEdges() {
		t.Fatalf("header %+v", h)
	}
	if !h.Weighted || !h.Typed {
		t.Fatal("flags lost")
	}
	for v := 0; v < 50; v++ {
		if h.Degree(VertexID(v)) != g.Degree(VertexID(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestReadBinarySliceMatchesFull(t *testing.T) {
	g, data := buildWeightedTyped(t, 60, 400)
	for _, r := range [][2]VertexID{{0, 20}, {20, 45}, {45, 60}, {0, 60}, {30, 30}} {
		lo, hi := r[0], r[1]
		part, err := ReadBinarySlice(bytes.NewReader(data), lo, hi)
		if err != nil {
			t.Fatalf("slice [%d,%d): %v", lo, hi, err)
		}
		if !part.Partial() {
			t.Fatal("slice not marked partial")
		}
		plo, phi := part.OwnedRange()
		if plo != lo || phi != hi {
			t.Fatalf("owned range [%d,%d), want [%d,%d)", plo, phi, lo, hi)
		}
		for v := lo; v < hi; v++ {
			if part.Degree(v) != g.Degree(v) {
				t.Fatalf("degree mismatch at %d", v)
			}
			for i := 0; i < g.Degree(v); i++ {
				if part.EdgeAt(v, i) != g.EdgeAt(v, i) {
					t.Fatalf("edge mismatch at %d[%d]", v, i)
				}
			}
		}
	}
}

func TestReadBinarySliceUnweighted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(4, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	part, err := ReadBinarySlice(bytes.NewReader(buf.Bytes()), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if part.Degree(1) != 2 || part.Weighted() || part.Typed() {
		t.Fatalf("slice wrong: deg=%d", part.Degree(1))
	}
}

func TestReadBinarySliceBadRange(t *testing.T) {
	_, data := buildWeightedTyped(t, 10, 20)
	if _, err := ReadBinarySlice(bytes.NewReader(data), 5, 99); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
}

func TestSubgraphMatchesOriginal(t *testing.T) {
	g, _ := buildWeightedTyped(t, 40, 200)
	part := Subgraph(g, 10, 25)
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := VertexID(10); v < 25; v++ {
		if part.Degree(v) != g.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := 0; i < g.Degree(v); i++ {
			if part.EdgeAt(v, i) != g.EdgeAt(v, i) {
				t.Fatalf("edge mismatch at %d[%d]", v, i)
			}
		}
	}
	if part.NumVertices() != g.NumVertices() {
		t.Fatal("vertex ID space shrank")
	}
}

func TestPartialAccessOutsideRangePanics(t *testing.T) {
	g, _ := buildWeightedTyped(t, 30, 100)
	part := Subgraph(g, 5, 15)
	for _, f := range []func(){
		func() { part.Degree(2) },
		func() { part.Neighbors(20) },
		func() { part.EdgeAt(29, 0) },
		func() { part.Weights(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unowned access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFullGraphOwnsEverything(t *testing.T) {
	g, _ := buildWeightedTyped(t, 10, 30)
	lo, hi := g.OwnedRange()
	if lo != 0 || int(hi) != g.NumVertices() || g.Partial() {
		t.Fatalf("full graph reports [%d,%d) partial=%v", lo, hi, g.Partial())
	}
}
