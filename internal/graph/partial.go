package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// This file supports partition-local graph loading: in a real multi-node
// deployment each process holds only its vertex range's adjacency ("with
// inadequate memory capacity being the chief cause of distributed
// processing in the first place", paper §6.1). The binary CSR format
// makes this a three-step process:
//
//  1. ReadBinaryDegrees streams just the header and offset array (16 bytes
//     per vertex, tiny next to the edges) to obtain per-vertex degrees,
//  2. the caller computes the same 1-D partition every rank computes
//     (cluster.PartitionDegrees), and
//  3. ReadBinarySlice loads only the owned range's edge arrays, skipping
//     the rest of the file.
//
// The resulting Graph has the full vertex ID space but edges only for
// owned vertices; OwnedRange reports the populated range and accessing an
// unowned vertex's edges panics (catching ownership bugs early).

// PartialHeader carries what ReadBinaryDegrees learned about the file.
type PartialHeader struct {
	NumVertices int
	NumEdges    int64
	Weighted    bool
	Typed       bool
	offsets     []int64
}

// Degree returns vertex v's degree from the offset array alone.
func (h *PartialHeader) Degree(v VertexID) int {
	return int(h.offsets[v+1] - h.offsets[v])
}

// ReadBinaryDegrees reads a binary CSR file's header and offset array,
// leaving the reader positioned at the start of the edge arrays.
func ReadBinaryDegrees(r io.Reader) (*PartialHeader, error) {
	var magic, version, flags uint32
	var nv, ne uint64
	for _, p := range []interface{}{&magic, &version, &flags, &nv, &ne} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: partial header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if flags&^uint32(flagWeighted|flagTyped) != 0 {
		return nil, fmt.Errorf("graph: unknown flag bits %#x", flags)
	}
	if nv >= 1<<40 || ne >= 1<<48 {
		return nil, fmt.Errorf("graph: implausible binary header (|V|=%d |E|=%d)", nv, ne)
	}
	offsets, err := readChunked[int64](r, nv+1, "offsets")
	if err != nil {
		return nil, err
	}
	h := &PartialHeader{
		NumVertices: int(nv),
		NumEdges:    int64(ne),
		Weighted:    flags&flagWeighted != 0,
		Typed:       flags&flagTyped != 0,
		offsets:     offsets,
	}
	if h.offsets[0] != 0 || h.offsets[nv] != int64(ne) {
		return nil, fmt.Errorf("graph: corrupt offset array")
	}
	for v := 0; v < int(nv); v++ {
		if h.offsets[v+1] < h.offsets[v] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	return h, nil
}

// ReadBinarySlice loads the adjacency of vertices [lo, hi) from a binary
// CSR file, seeking past everything else. The returned graph spans the
// full vertex ID space but panics on edge access outside [lo, hi).
func ReadBinarySlice(rs io.ReadSeeker, lo, hi VertexID) (*Graph, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("graph: seek: %w", err)
	}
	h, err := ReadBinaryDegrees(rs)
	if err != nil {
		return nil, err
	}
	if int(hi) > h.NumVertices || lo > hi {
		return nil, fmt.Errorf("graph: slice [%d,%d) outside |V|=%d", lo, hi, h.NumVertices)
	}

	// File layout after offsets: dst [ne]u32, weight [ne]f32?, type [ne]i32?.
	headerLen := int64(4 + 4 + 4 + 8 + 8)
	offsetsLen := int64(h.NumVertices+1) * 8
	dstBase := headerLen + offsetsLen
	edgeLo, edgeHi := h.offsets[lo], h.offsets[hi]
	sliceEdges := edgeHi - edgeLo

	readArray := func(base int64, elem int64, out interface{}) error {
		if _, err := rs.Seek(base+edgeLo*elem, io.SeekStart); err != nil {
			return fmt.Errorf("graph: seek edge array: %w", err)
		}
		return binary.Read(rs, binary.LittleEndian, out)
	}

	g := &Graph{
		offsets: make([]int64, h.NumVertices+1),
		dst:     make([]VertexID, sliceEdges),
	}
	// Offsets: 0 outside the owned range; shifted copies inside, so the
	// slice's edges index from 0.
	for v := int(lo); v < int(hi); v++ {
		g.offsets[v+1] = h.offsets[v+1] - edgeLo
	}
	for v := int(hi); v < h.NumVertices; v++ {
		g.offsets[v+1] = g.offsets[int(hi)]
	}
	// Vertices before lo keep offset 0 (degree 0): already zeroed.
	if err := readArray(dstBase, 4, g.dst); err != nil {
		return nil, fmt.Errorf("graph: slice dst: %w", err)
	}
	next := dstBase + int64(h.NumEdges)*4
	if h.Weighted {
		g.weight = make([]float32, sliceEdges)
		if err := readArray(next, 4, g.weight); err != nil {
			return nil, fmt.Errorf("graph: slice weights: %w", err)
		}
		next += int64(h.NumEdges) * 4
	}
	if h.Typed {
		g.etype = make([]int32, sliceEdges)
		if err := readArray(next, 4, g.etype); err != nil {
			return nil, fmt.Errorf("graph: slice types: %w", err)
		}
	}
	g.ownedLo, g.ownedHi = lo, hi
	g.partial = true
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Subgraph returns a partition-local view of g holding only the adjacency
// of vertices [lo, hi): the in-memory equivalent of ReadBinarySlice, for
// tests and for carving an already-loaded graph before handing it to
// per-process workers.
func Subgraph(g *Graph, lo, hi VertexID) *Graph {
	n := g.NumVertices()
	if int(hi) > n || lo > hi {
		panic(fmt.Sprintf("graph: Subgraph [%d,%d) outside |V|=%d", lo, hi, n))
	}
	if g.over != nil {
		// Slicing the raw base arrays would drop the overlay deltas.
		panic("graph: Subgraph over an overlay view; call Compacted() first")
	}
	edgeLo, edgeHi := g.offsets[lo], g.offsets[hi]
	out := &Graph{
		offsets: make([]int64, n+1),
		dst:     g.dst[edgeLo:edgeHi],
		partial: true,
		ownedLo: lo,
		ownedHi: hi,
	}
	if g.weight != nil {
		out.weight = g.weight[edgeLo:edgeHi]
	}
	if g.etype != nil {
		out.etype = g.etype[edgeLo:edgeHi]
	}
	for v := int(lo); v < int(hi); v++ {
		out.offsets[v+1] = g.offsets[v+1] - edgeLo
	}
	for v := int(hi); v < n; v++ {
		out.offsets[v+1] = out.offsets[int(hi)]
	}
	return out
}

// OwnedRange reports the vertex range whose adjacency this graph holds.
// Full graphs own [0, |V|).
func (g *Graph) OwnedRange() (lo, hi VertexID) {
	if !g.partial {
		return 0, VertexID(g.NumVertices())
	}
	return g.ownedLo, g.ownedHi
}

// Partial reports whether this graph holds only a vertex-range slice.
func (g *Graph) Partial() bool { return g.partial }

// checkOwned panics when a partial graph's unowned adjacency is accessed —
// that is always an ownership bug in the caller.
func (g *Graph) checkOwned(v VertexID) {
	if g.partial && (v < g.ownedLo || v >= g.ownedHi) {
		panic(fmt.Sprintf("graph: access to vertex %d outside owned range [%d,%d)",
			v, g.ownedLo, g.ownedHi))
	}
}
