package graph

import "testing"

func fpGraph(edges [][2]VertexID, n int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	edges := [][2]VertexID{{0, 1}, {1, 2}, {2, 0}, {0, 2}}
	a := Fingerprint(fpGraph(edges, 4))
	b := Fingerprint(fpGraph(edges, 4))
	if a != b {
		t.Fatalf("same graph fingerprints differ: %x vs %x", a, b)
	}
	// Insertion order is irrelevant: CSR adjacency is sorted at Build.
	rev := [][2]VertexID{{0, 2}, {2, 0}, {1, 2}, {0, 1}}
	if c := Fingerprint(fpGraph(rev, 4)); c != a {
		t.Fatalf("insertion order changed fingerprint: %x vs %x", c, a)
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	base := fpGraph([][2]VertexID{{0, 1}, {1, 2}}, 4)
	seen := map[uint64]string{Fingerprint(base): "base"}

	record := func(name string, g *Graph) {
		fp := Fingerprint(g)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s collides with %s (%x)", name, prev, fp)
		}
		seen[fp] = name
	}

	record("extra edge", fpGraph([][2]VertexID{{0, 1}, {1, 2}, {2, 3}}, 4))
	record("different dst", fpGraph([][2]VertexID{{0, 1}, {1, 3}}, 4))
	record("extra isolated vertex", fpGraph([][2]VertexID{{0, 1}, {1, 2}}, 5))

	wb := NewBuilder(4)
	wb.AddWeightedEdge(0, 1, 1)
	wb.AddWeightedEdge(1, 2, 1)
	weighted := wb.Build()
	record("weighted (all 1s)", weighted)

	wb2 := NewBuilder(4)
	wb2.AddWeightedEdge(0, 1, 1)
	wb2.AddWeightedEdge(1, 2, 2)
	record("different weight", wb2.Build())

	tb := NewBuilder(4)
	tb.AddTypedEdge(0, 1, 1, 0)
	tb.AddTypedEdge(1, 2, 1, 0)
	record("typed (all 0s)", tb.Build())

	tb2 := NewBuilder(4)
	tb2.AddTypedEdge(0, 1, 1, 0)
	tb2.AddTypedEdge(1, 2, 1, 3)
	record("different type", tb2.Build())
}

func TestFingerprintPartialSliceDiffersFromFull(t *testing.T) {
	b := NewBuilder(6)
	for v := VertexID(0); v < 6; v++ {
		b.AddEdge(v, (v+1)%6)
	}
	full := b.Build()
	part := Subgraph(full, 0, 3)
	if Fingerprint(part) == Fingerprint(full) {
		t.Fatal("partition-local slice fingerprints like the full graph")
	}
	if Fingerprint(part) != Fingerprint(Subgraph(full, 0, 3)) {
		t.Fatal("same slice fingerprints differ")
	}
	if Fingerprint(part) == Fingerprint(Subgraph(full, 3, 6)) {
		t.Fatal("different slices collide")
	}
}
