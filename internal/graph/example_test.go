package graph_test

import (
	"fmt"
	"strings"

	"knightking/internal/graph"
)

func ExampleBuilder() {
	b := graph.NewBuilder(3).SetUndirected(true)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 1.0)
	g := b.Build()
	fmt.Println("vertices:", g.NumVertices())
	fmt.Println("stored directed edges:", g.NumEdges())
	fmt.Println("neighbors of 1:", g.Neighbors(1))
	fmt.Println("0-1 weight:", g.EdgeWeight(0, 0))
	// Output:
	// vertices: 3
	// stored directed edges: 4
	// neighbors of 1: [0 2]
	// 0-1 weight: 2.5
}

func ExampleReadEdgeList() {
	input := "# a weighted triangle\n0 1 1.5\n1 2 2.0\n2 0 0.5\n"
	g, err := graph.ReadEdgeList(strings.NewReader(input), false, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("|V| =", g.NumVertices(), "|E| =", g.NumEdges())
	fmt.Println("weighted:", g.Weighted())
	// Output:
	// |V| = 3 |E| = 3
	// weighted: true
}

func ExampleGraph_HasEdge() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	fmt.Println(g.HasEdge(0, 2), g.HasEdge(0, 1), g.HasEdge(2, 0))
	// Output:
	// true false false
}

func ExampleConnectedComponents() {
	b := graph.NewBuilder(5).SetUndirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	labels, count := graph.ConnectedComponents(b.Build())
	fmt.Println("components:", count)
	fmt.Println("labels:", labels)
	// Output:
	// components: 3
	// labels: [0 0 1 2 2]
}
