package graph

import (
	"bytes"
	"testing"
)

// overlayFixture builds a small weighted+typed base graph and an overlay
// replacing the adjacency of vertices 1 and 3:
//
//	base:  0->{1,2}  1->{0}  2->{1,3}  3->{}  4->{0}
//	over:  1->{2,3,4}  3->{0}
func overlayFixture(t *testing.T) (base, over *Graph) {
	t.Helper()
	b := NewBuilder(5)
	b.AddTypedEdge(0, 1, 1.0, 0)
	b.AddTypedEdge(0, 2, 2.0, 1)
	b.AddTypedEdge(1, 0, 3.0, 0)
	b.AddTypedEdge(2, 1, 0.5, 2)
	b.AddTypedEdge(2, 3, 1.5, 0)
	b.AddTypedEdge(4, 0, 4.0, 1)
	base = b.Build()

	verts := []VertexID{1, 3}
	offs := []int64{0, 3, 4}
	dst := []VertexID{2, 3, 4, 0}
	weight := []float32{1.0, 2.5, 0.5, 9.0}
	etype := []int32{0, 1, 2, 0}
	maxW := []float64{2.5, 9.0}
	g, err := NewOverlay(base, verts, offs, dst, weight, etype, maxW)
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	return base, g
}

// rebuildFixture builds from scratch the graph the overlay fixture should
// be walk-indistinguishable from.
func rebuildFixture() *Graph {
	b := NewBuilder(5)
	b.AddTypedEdge(0, 1, 1.0, 0)
	b.AddTypedEdge(0, 2, 2.0, 1)
	b.AddTypedEdge(1, 2, 1.0, 0)
	b.AddTypedEdge(1, 3, 2.5, 1)
	b.AddTypedEdge(1, 4, 0.5, 2)
	b.AddTypedEdge(2, 1, 0.5, 2)
	b.AddTypedEdge(2, 3, 1.5, 0)
	b.AddTypedEdge(3, 0, 9.0, 0)
	b.AddTypedEdge(4, 0, 4.0, 1)
	return b.Build()
}

func TestOverlayAccessorsMatchRebuilt(t *testing.T) {
	_, over := overlayFixture(t)
	want := rebuildFixture()

	if over.NumVertices() != want.NumVertices() {
		t.Fatalf("NumVertices = %d, want %d", over.NumVertices(), want.NumVertices())
	}
	if over.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", over.NumEdges(), want.NumEdges())
	}
	if !over.Overlaid() {
		t.Fatal("Overlaid() = false on an overlay view")
	}
	nv, delta := over.OverlayStats()
	if nv != 2 || delta != 3 {
		t.Fatalf("OverlayStats = (%d, %d), want (2, 3)", nv, delta)
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := VertexID(v)
		if over.Degree(id) != want.Degree(id) {
			t.Fatalf("Degree(%d) = %d, want %d", v, over.Degree(id), want.Degree(id))
		}
		gotN, wantN := over.Neighbors(id), want.Neighbors(id)
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("Neighbors(%d)[%d] = %d, want %d", v, i, gotN[i], wantN[i])
			}
		}
		gotW, wantW := over.Weights(id), want.Weights(id)
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("Weights(%d)[%d] = %v, want %v", v, i, gotW[i], wantW[i])
			}
		}
		gotT, wantT := over.Types(id), want.Types(id)
		for i := range wantT {
			if gotT[i] != wantT[i] {
				t.Fatalf("Types(%d)[%d] = %d, want %d", v, i, gotT[i], wantT[i])
			}
		}
		for i := 0; i < want.Degree(id); i++ {
			if over.EdgeAt(id, i) != want.EdgeAt(id, i) {
				t.Fatalf("EdgeAt(%d,%d) = %+v, want %+v", v, i, over.EdgeAt(id, i), want.EdgeAt(id, i))
			}
			if over.EdgeWeight(id, i) != want.EdgeWeight(id, i) {
				t.Fatalf("EdgeWeight(%d,%d) differs", v, i)
			}
		}
		if over.TotalWeight(id) != want.TotalWeight(id) {
			t.Fatalf("TotalWeight(%d) = %v, want %v", v, over.TotalWeight(id), want.TotalWeight(id))
		}
		if over.MaxWeight(id) != want.MaxWeight(id) {
			t.Fatalf("MaxWeight(%d) = %v, want %v", v, over.MaxWeight(id), want.MaxWeight(id))
		}
		for u := 0; u < want.NumVertices(); u++ {
			if over.HasEdge(id, VertexID(u)) != want.HasEdge(id, VertexID(u)) {
				t.Fatalf("HasEdge(%d,%d) differs", v, u)
			}
		}
	}
	if err := over.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestOverlayLooseMaxWeight(t *testing.T) {
	base, _ := overlayFixture(t)
	// A maintained bound above the true segment max is legal (post-delete
	// looseness) and is what MaxWeight reports.
	g, err := NewOverlay(base, []VertexID{1}, []int64{0, 1}, []VertexID{2},
		[]float32{1.0}, []int32{0}, []float64{7.5})
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	if got := g.MaxWeight(1); got != 7.5 {
		t.Fatalf("MaxWeight(1) = %v, want the maintained bound 7.5", got)
	}
	// A bound below the true max must be rejected at construction.
	if _, err := NewOverlay(base, []VertexID{1}, []int64{0, 1}, []VertexID{2},
		[]float32{3.0}, []int32{0}, []float64{2.0}); err == nil {
		t.Fatal("NewOverlay accepted maxW below the true segment max")
	}
}

func TestOverlayValidation(t *testing.T) {
	base, _ := overlayFixture(t)
	unw := NewBuilder(3)
	unw.AddEdge(0, 1)
	unweighted := unw.Build()

	cases := []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"nil base", func() (*Graph, error) {
			return NewOverlay(nil, nil, []int64{0}, nil, nil, nil, nil)
		}},
		{"offs length", func() (*Graph, error) {
			return NewOverlay(base, []VertexID{1}, []int64{0}, nil, nil, nil, []float64{0})
		}},
		{"missing weights", func() (*Graph, error) {
			return NewOverlay(base, []VertexID{1}, []int64{0, 1}, []VertexID{2}, nil, []int32{0}, []float64{1})
		}},
		{"weights on unweighted base", func() (*Graph, error) {
			return NewOverlay(unweighted, []VertexID{0}, []int64{0, 1}, []VertexID{1}, []float32{1}, nil, nil)
		}},
		{"vertex out of range", func() (*Graph, error) {
			return NewOverlay(base, []VertexID{9}, []int64{0, 0}, nil, []float32{}, []int32{}, []float64{0})
		}},
		{"not strictly increasing", func() (*Graph, error) {
			return NewOverlay(base, []VertexID{3, 1}, []int64{0, 0, 0}, nil, []float32{}, []int32{}, []float64{0, 0})
		}},
		{"segment not sorted", func() (*Graph, error) {
			return NewOverlay(base, []VertexID{1}, []int64{0, 2}, []VertexID{3, 2},
				[]float32{1, 1}, []int32{0, 0}, []float64{1})
		}},
		{"dst out of range", func() (*Graph, error) {
			return NewOverlay(base, []VertexID{1}, []int64{0, 1}, []VertexID{99},
				[]float32{1}, []int32{0}, []float64{1})
		}},
		{"stacked overlay", func() (*Graph, error) {
			_, over := overlayFixture(t)
			return NewOverlay(over, []VertexID{1}, []int64{0, 0}, nil, []float32{}, []int32{}, []float64{0})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build(); err == nil {
			t.Errorf("%s: NewOverlay accepted invalid input", tc.name)
		}
	}
}

func TestOverlayCompactedEquivalence(t *testing.T) {
	_, over := overlayFixture(t)
	want := rebuildFixture()
	got := over.Compacted()
	if got.Overlaid() {
		t.Fatal("Compacted() still overlaid")
	}
	if Fingerprint(got) != Fingerprint(want) {
		t.Fatal("Compacted() fingerprint differs from the rebuilt-from-scratch graph")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Plain graphs compact to themselves, no copy.
	if want.Compacted() != want {
		t.Fatal("Compacted() of a plain graph should return it unchanged")
	}
}

func TestOverlayFingerprint(t *testing.T) {
	base, over := overlayFixture(t)
	// The overlay section only appends when present: the base keeps the
	// delta-free hash.
	if Fingerprint(base) == Fingerprint(over) {
		t.Fatal("overlay view fingerprints identically to its base")
	}
	// Distinct overlay contents hash distinctly.
	g2, err := NewOverlay(base, []VertexID{1}, []int64{0, 1}, []VertexID{2},
		[]float32{1.0}, []int32{0}, []float64{1.0})
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	if Fingerprint(g2) == Fingerprint(over) {
		t.Fatal("different overlays fingerprint identically")
	}
	// Only the maintained bound differing must still change the hash (the
	// bound feeds rejection envelopes, so it is walk-visible).
	g3, err := NewOverlay(base, []VertexID{1}, []int64{0, 1}, []VertexID{2},
		[]float32{1.0}, []int32{0}, []float64{5.0})
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	if Fingerprint(g3) == Fingerprint(g2) {
		t.Fatal("maxW-only difference did not change the fingerprint")
	}
}

func TestOverlaySerializationGuards(t *testing.T) {
	_, over := overlayFixture(t)
	if err := WriteBinary(&bytes.Buffer{}, over); err == nil {
		t.Fatal("WriteBinary accepted an overlay view")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Subgraph accepted an overlay view")
		}
	}()
	Subgraph(over, 0, 2)
}
