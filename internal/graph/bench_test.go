package graph

import (
	"testing"

	"knightking/internal/rng"
)

func benchGraph(b *testing.B, n, deg int) *Graph {
	b.Helper()
	r := rng.New(1)
	bld := NewBuilder(n).SetUndirected(true).SetDedup(true)
	for v := 0; v < n; v++ {
		for k := 0; k < deg/2; k++ {
			u := VertexID(r.Intn(n))
			if u != VertexID(v) {
				bld.AddEdge(VertexID(v), u)
			}
		}
	}
	return bld.Build()
}

func BenchmarkBuildCSR(b *testing.B) {
	r := rng.New(1)
	const n, m = 10000, 80000
	srcs := make([]VertexID, m)
	dsts := make([]VertexID, m)
	for i := range srcs {
		srcs[i] = VertexID(r.Intn(n))
		dsts[i] = VertexID(r.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n)
		for j := range srcs {
			bld.AddEdge(srcs[j], dsts[j])
		}
		_ = bld.Build()
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 10000, 50)
	r := rng.New(2)
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = g.HasEdge(VertexID(r.Intn(10000)), VertexID(r.Intn(10000)))
	}
	_ = sink
}

func BenchmarkDegreeStats(b *testing.B) {
	g := benchGraph(b, 10000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Stats()
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b, 10000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ConnectedComponents(g)
	}
}
