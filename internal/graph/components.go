package graph

// ConnectedComponents labels the weakly connected components of g (edges
// are followed in their stored direction plus, implicitly for undirected
// graphs, both ways). It returns one label per vertex in [0, count) and
// the component count. Labels are assigned in order of each component's
// smallest vertex.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	// For directed graphs, weak connectivity needs reverse edges; build a
	// reverse adjacency index once.
	rev := reverseAdjacency(g)
	var queue []VertexID
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		label := int32(count)
		count++
		labels[v] = label
		queue = append(queue[:0], VertexID(v))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, nb := range g.Neighbors(u) {
				if labels[nb] < 0 {
					labels[nb] = label
					queue = append(queue, nb)
				}
			}
			for _, nb := range rev[u] {
				if labels[nb] < 0 {
					labels[nb] = label
					queue = append(queue, nb)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the vertices of g's largest weakly connected
// component, sorted by ID.
func LargestComponent(g *Graph) []VertexID {
	labels, count := ConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for l, s := range sizes {
		if s > sizes[best] {
			best = l
		}
	}
	out := make([]VertexID, 0, sizes[best])
	for v, l := range labels {
		if l == int32(best) {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// reverseAdjacency builds per-vertex in-neighbor lists.
func reverseAdjacency(g *Graph) [][]VertexID {
	n := g.NumVertices()
	counts := make([]int, n)
	for v := 0; v < n; v++ {
		for _, nb := range g.Neighbors(VertexID(v)) {
			counts[nb]++
		}
	}
	rev := make([][]VertexID, n)
	for v := range rev {
		if counts[v] > 0 {
			rev[v] = make([]VertexID, 0, counts[v])
		}
	}
	for v := 0; v < n; v++ {
		for _, nb := range g.Neighbors(VertexID(v)) {
			rev[nb] = append(rev[nb], VertexID(v))
		}
	}
	return rev
}
