package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"knightking/internal/rng"
)

// triangle builds the directed triangle 0->1->2->0.
func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := NewBuilder(5).Build()
	for v := 0; v < 5; v++ {
		if g.Degree(VertexID(v)) != 0 {
			t.Fatalf("vertex %d has degree %d, want 0", v, g.Degree(VertexID(v)))
		}
		if len(g.Neighbors(VertexID(v))) != 0 {
			t.Fatalf("vertex %d has neighbors", v)
		}
	}
}

func TestTriangleBasics(t *testing.T) {
	g := triangle(t)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	for v := 0; v < 3; v++ {
		if g.Degree(VertexID(v)) != 1 {
			t.Fatalf("degree of %d = %d", v, g.Degree(VertexID(v)))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Fatal("missing expected edge")
	}
	if g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("unexpected reverse edge in directed graph")
	}
}

func TestUndirectedDoubling(t *testing.T) {
	b := NewBuilder(4).SetUndirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	for _, pair := range [][2]VertexID{{0, 1}, {1, 2}, {2, 3}} {
		if !g.HasEdge(pair[0], pair[1]) || !g.HasEdge(pair[1], pair[0]) {
			t.Fatalf("edge %v not doubled", pair)
		}
	}
}

func TestUndirectedSelfLoopStoredOnce(t *testing.T) {
	b := NewBuilder(2).SetUndirected(true)
	b.AddEdge(0, 0)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("self loop stored %d times, want 1", g.NumEdges())
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(10)
	for _, d := range []VertexID{7, 3, 9, 1, 5, 2} {
		b.AddEdge(0, d)
	}
	g := b.Build()
	adj := g.Neighbors(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] > adj[i] {
			t.Fatalf("adjacency not sorted: %v", adj)
		}
	}
}

func TestWeightsFollowSort(t *testing.T) {
	b := NewBuilder(10)
	// weight encodes destination so we can verify the permutation.
	for _, d := range []VertexID{7, 3, 9, 1} {
		b.AddWeightedEdge(0, d, float32(d)*10)
	}
	g := b.Build()
	adj, ws := g.Neighbors(0), g.Weights(0)
	for i := range adj {
		if ws[i] != float32(adj[i])*10 {
			t.Fatalf("weight %v does not match destination %d after sort", ws[i], adj[i])
		}
	}
}

func TestTypesFollowSort(t *testing.T) {
	b := NewBuilder(10)
	for _, d := range []VertexID{8, 2, 5} {
		b.AddTypedEdge(0, d, 1, int32(d))
	}
	g := b.Build()
	adj, ts := g.Neighbors(0), g.Types(0)
	for i := range adj {
		if ts[i] != int32(adj[i]) {
			t.Fatalf("type %d does not match destination %d after sort", ts[i], adj[i])
		}
	}
}

func TestEdgeAtDefaults(t *testing.T) {
	g := triangle(t)
	e := g.EdgeAt(0, 0)
	if e.Dst != 1 || e.Weight != 1 || e.Type != 0 {
		t.Fatalf("EdgeAt defaults wrong: %+v", e)
	}
	if g.EdgeWeight(0, 0) != 1 {
		t.Fatal("EdgeWeight default wrong")
	}
}

func TestTotalAndMaxWeight(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 2, 3.5)
	g := b.Build()
	if got := g.TotalWeight(0); got != 5.5 {
		t.Fatalf("TotalWeight = %v", got)
	}
	if got := g.MaxWeight(0); got != 3.5 {
		t.Fatalf("MaxWeight = %v", got)
	}
	if got := g.MaxWeight(1); got != 0 {
		t.Fatalf("MaxWeight of sink = %v, want 0", got)
	}
	ug := triangle(t)
	if got := ug.TotalWeight(0); got != 1 {
		t.Fatalf("unweighted TotalWeight = %v, want degree", got)
	}
	if got := ug.MaxWeight(0); got != 1 {
		t.Fatalf("unweighted MaxWeight = %v, want 1", got)
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder(4)
	// degrees: 3, 1, 0, 0 -> mean 1, var E[d^2]-1 = (9+1)/4 - 1 = 1.5
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 0)
	g := b.Build()
	s := g.Stats()
	if s.Mean != 1 || s.Max != 3 || s.Min != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Variance < 1.49 || s.Variance > 1.51 {
		t.Fatalf("variance = %v, want 1.5", s.Variance)
	}
}

func TestBuilderPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.Reset()
	g := b.Build()
	if g.NumEdges() != 0 {
		t.Fatalf("reset builder produced %d edges", g.NumEdges())
	}
}

func TestParallelEdgesKept(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.Degree(0) != 2 {
		t.Fatalf("parallel edges collapsed: degree = %d", g.Degree(0))
	}
}

func TestHasEdgeQuick(t *testing.T) {
	// Property: HasEdge agrees with a linear scan, on random graphs.
	r := rng.New(1)
	build := func() (*Graph, [][2]VertexID) {
		const n = 50
		b := NewBuilder(n)
		var present [][2]VertexID
		for i := 0; i < 200; i++ {
			s, d := VertexID(r.Intn(n)), VertexID(r.Intn(n))
			b.AddEdge(s, d)
			present = append(present, [2]VertexID{s, d})
		}
		return b.Build(), present
	}
	g, present := build()
	for _, p := range present {
		if !g.HasEdge(p[0], p[1]) {
			t.Fatalf("HasEdge(%d,%d) = false for inserted edge", p[0], p[1])
		}
	}
	f := func(s, d uint32) bool {
		s, d = s%50, d%50
		linear := false
		for _, nb := range g.Neighbors(s) {
			if nb == d {
				linear = true
				break
			}
		}
		return g.HasEdge(s, d) == linear
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListBasic(t *testing.T) {
	in := "# comment\n0 1\n1 2\n% another comment\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Weighted() || g.Typed() {
		t.Fatal("plain edge list should be unweighted and untyped")
	}
}

func TestReadEdgeListWeightedTyped(t *testing.T) {
	in := "0 1 2.5 3\n1 0 1.5 1\n"
	g, err := ReadEdgeList(strings.NewReader(in), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || !g.Typed() {
		t.Fatal("weighted/typed flags not set")
	}
	e := g.EdgeAt(0, 0)
	if e.Weight != 2.5 || e.Type != 3 {
		t.Fatalf("edge = %+v", e)
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("|E|=%d, want 2", g.NumEdges())
	}
}

func TestReadEdgeListMinVertices(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("|V|=%d, want 10", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 b\n", "0 1 x\n", "0 1 1.0 x\n"}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), false, 0); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.AddTypedEdge(0, 3, 2.5, 1)
	b.AddTypedEdge(3, 4, 1.25, 2)
	b.AddTypedEdge(4, 0, 0.5, 3)
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rng.New(2)
	b := NewBuilder(100)
	for i := 0; i < 500; i++ {
		b.AddTypedEdge(VertexID(r.Intn(100)), VertexID(r.Intn(100)), float32(r.Range(1, 5)), int32(r.Intn(4)))
	}
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestBinaryRoundTripUnweighted(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weighted() || g2.Typed() {
		t.Fatal("round trip invented weights or types")
	}
	assertGraphsEqual(t, g, g2)
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		id := VertexID(v)
		if a.Degree(id) != b.Degree(id) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := 0; i < a.Degree(id); i++ {
			ea, eb := a.EdgeAt(id, i), b.EdgeAt(id, i)
			if ea != eb {
				t.Fatalf("edge mismatch at %d[%d]: %+v vs %+v", v, i, ea, eb)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := triangle(t)
	g.dst[0] = 99 // out of range
	if err := g.Validate(); err == nil {
		t.Fatal("corrupted graph validated")
	}
}
