package graph

import "testing"

func TestConnectedComponentsSingle(t *testing.T) {
	b := NewBuilder(4).SetUndirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	labels, count := ConnectedComponents(b.Build())
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d", v, l)
		}
	}
}

func TestConnectedComponentsMultiple(t *testing.T) {
	b := NewBuilder(6).SetUndirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	// 4 and 5 isolated.
	labels, count := ConnectedComponents(b.Build())
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] {
		t.Fatalf("component members split: %v", labels)
	}
	if labels[0] == labels[2] || labels[4] == labels[5] {
		t.Fatalf("distinct components merged: %v", labels)
	}
	// Labels ordered by smallest member.
	if labels[0] != 0 || labels[2] != 1 || labels[4] != 2 || labels[5] != 3 {
		t.Fatalf("label order: %v", labels)
	}
}

func TestConnectedComponentsDirectedWeak(t *testing.T) {
	// Directed chain 0->1->2: weakly connected even without reverse edges.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	_, count := ConnectedComponents(b.Build())
	if count != 1 {
		t.Fatalf("weak connectivity ignored reverse reach: %d components", count)
	}
	// And the reverse-only view: 2 has only in-edges; starting the BFS at
	// 2 must still join the component.
	b2 := NewBuilder(3)
	b2.AddEdge(2, 1)
	b2.AddEdge(1, 0)
	_, count2 := ConnectedComponents(b2.Build())
	if count2 != 1 {
		t.Fatalf("reverse adjacency broken: %d components", count2)
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7).SetUndirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(4, 5)
	lc := LargestComponent(b.Build())
	if len(lc) != 3 || lc[0] != 0 || lc[1] != 1 || lc[2] != 2 {
		t.Fatalf("largest component %v", lc)
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	if lc := LargestComponent(NewBuilder(0).Build()); lc != nil {
		t.Fatalf("empty graph component %v", lc)
	}
}
