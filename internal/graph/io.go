package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format: one edge per line, whitespace-separated fields
//
//	src dst [weight [type]]
//
// Lines starting with '#' or '%' are comments. Vertex IDs are dense
// non-negative integers; the vertex count is max(id)+1 unless a larger
// count is given.

// ReadEdgeList parses a text edge list. If undirected is true every edge is
// stored in both directions. minVertices, if positive, forces at least that
// many vertices (for graphs with isolated trailing vertices).
func ReadEdgeList(r io.Reader, undirected bool, minVertices int) (*Graph, error) {
	type rawEdge struct {
		src, dst VertexID
		w        float32
		typ      int32
	}
	var edges []rawEdge
	maxID := -1
	weighted, typed := false, false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", lineNo, err)
		}
		e := rawEdge{src: VertexID(src), dst: VertexID(dst), w: 1}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			e.w = float32(w)
			weighted = true
		}
		if len(fields) >= 4 {
			t, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad type: %v", lineNo, err)
			}
			e.typ = int32(t)
			typed = true
		}
		if int(src) > maxID {
			maxID = int(src)
		}
		if int(dst) > maxID {
			maxID = int(dst)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}

	n := maxID + 1
	if minVertices > n {
		n = minVertices
	}
	b := NewBuilder(n).SetUndirected(undirected)
	for _, e := range edges {
		switch {
		case typed:
			b.AddTypedEdge(e.src, e.dst, e.w, e.typ)
		case weighted:
			b.AddWeightedEdge(e.src, e.dst, e.w)
		default:
			b.AddEdge(e.src, e.dst)
		}
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as a text edge list (every stored directed
// edge on its own line, including both directions of undirected edges).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		deg := g.Degree(VertexID(v))
		for i := 0; i < deg; i++ {
			e := g.EdgeAt(VertexID(v), i)
			var err error
			switch {
			case g.Typed():
				_, err = fmt.Fprintf(bw, "%d %d %g %d\n", v, e.Dst, e.Weight, e.Type)
			case g.Weighted():
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, e.Dst, e.Weight)
			default:
				_, err = fmt.Fprintf(bw, "%d %d\n", v, e.Dst)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Binary format: a compact little-endian CSR dump.
//
//	magic   uint32 = 0x4b4b4752 ("KKGR")
//	version uint32 = 1
//	flags   uint32 (bit 0: weighted, bit 1: typed)
//	numVertices uint64
//	numEdges    uint64
//	offsets [numVertices+1]int64
//	dst     [numEdges]uint32
//	weight  [numEdges]float32 (if weighted)
//	etype   [numEdges]int32   (if typed)

const (
	binaryMagic   = 0x4b4b4752
	binaryVersion = 1
	flagWeighted  = 1 << 0
	flagTyped     = 1 << 1
)

// WriteBinary serializes g in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	if g.Overlaid() {
		// The serializer writes the raw base arrays; an overlay view would
		// silently lose its deltas. Callers must materialize first.
		return fmt.Errorf("graph: cannot serialize an overlay view; call Compacted() first")
	}
	bw := bufio.NewWriter(w)
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	if g.Typed() {
		flags |= flagTyped
	}
	hdr := []interface{}{
		uint32(binaryMagic), uint32(binaryVersion), flags,
		uint64(g.NumVertices()), uint64(g.NumEdges()),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, arr := range []interface{}{g.offsets, g.dst} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.weight); err != nil {
			return err
		}
	}
	if g.Typed() {
		if err := binary.Write(bw, binary.LittleEndian, g.etype); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, version, flags uint32
	var nv, ne uint64
	for _, p := range []interface{}{&magic, &version, &flags, &nv, &ne} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if flags&^uint32(flagWeighted|flagTyped) != 0 {
		return nil, fmt.Errorf("graph: unknown flag bits %#x", flags)
	}
	if nv >= 1<<40 || ne >= 1<<48 {
		return nil, fmt.Errorf("graph: implausible binary header (|V|=%d |E|=%d)", nv, ne)
	}
	// Array sizes come from an untrusted header; read in bounded chunks so
	// a lying header fails with a clean error after a small allocation
	// instead of attempting a gigantic one.
	g := &Graph{}
	var err error
	if g.offsets, err = readChunked[int64](br, nv+1, "offsets"); err != nil {
		return nil, err
	}
	if g.dst, err = readChunked[VertexID](br, ne, "dst"); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		if g.weight, err = readChunked[float32](br, ne, "weights"); err != nil {
			return nil, err
		}
	}
	if flags&flagTyped != 0 {
		if g.etype, err = readChunked[int32](br, ne, "types"); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readChunked reads exactly n little-endian values, growing the result in
// bounded chunks so declared-but-absent data cannot force a huge upfront
// allocation.
func readChunked[T int64 | int32 | uint32 | float32](r io.Reader, n uint64, what string) ([]T, error) {
	const chunk = 1 << 16
	out := make([]T, 0, min64(n, chunk))
	for remaining := n; remaining > 0; {
		take := min64(remaining, chunk)
		buf := make([]T, take)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: binary %s: %w", what, err)
		}
		out = append(out, buf...)
		remaining -= take
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
