package graph

import (
	"fmt"
	"sort"
)

// Overlay support: a Graph may carry an overlay — per-vertex replacement
// adjacency segments layered over the immutable base CSR arrays. An
// overlay graph is the engine-facing materialization of one dynamic-graph
// epoch (internal/dyngraph): vertices touched by edge ingest since the
// last compaction resolve to their overlay segment, every other vertex
// resolves to the base arrays it shares with sibling epochs. The view is
// itself immutable; writers produce a new view per epoch (copy-on-write
// of the overlay arrays only), so concurrent walks on older epochs are
// never disturbed.
//
// Lookup cost is one nil check for plain graphs and one binary search
// over the (small, compaction-bounded) modified-vertex list for overlay
// graphs; the base arrays are never copied.
type overlayData struct {
	// verts lists the vertices whose adjacency is replaced, strictly
	// increasing. offs is the CSR-style offset array into the segment
	// arrays below (len(verts)+1 entries, offs[0] == 0).
	verts []VertexID
	offs  []int64

	// Replacement adjacency, concatenated in verts order; each segment is
	// sorted by destination. weight and etype are present exactly when the
	// base arrays are.
	dst    []VertexID
	weight []float32
	etype  []int32

	// maxW[i] is a maintained upper bound on the maximum edge weight of
	// verts[i] — widened on insert, left untightened by deletes, exact
	// again after compaction. MaxWeight reports it for overlay vertices:
	// never less than the true maximum, so rejection envelopes built from
	// it stay valid (a loose bound costs extra trials, never correctness).
	// nil for unweighted graphs (every weight is 1).
	maxW []float64

	// edgeDelta is len(dst) minus the base degree sum of verts: the edge
	// count adjustment NumEdges applies.
	edgeDelta int64
}

// find returns the overlay index of v, or -1 when v's adjacency comes
// from the base arrays.
func (o *overlayData) find(v VertexID) int {
	i := sort.Search(len(o.verts), func(i int) bool { return o.verts[i] >= v })
	if i < len(o.verts) && o.verts[i] == v {
		return i
	}
	return -1
}

// NewOverlay returns a view of base with the adjacency of verts[i]
// replaced by the i-th segment of the given CSR-style arrays
// (dst[offs[i]:offs[i+1]], with parallel weight/etype slices when base is
// weighted/typed). maxW supplies the per-vertex maximum-weight upper
// bounds for weighted bases (see overlayData.maxW); pass nil for
// unweighted ones. The returned graph shares every input slice — callers
// must treat them as frozen from here on.
func NewOverlay(base *Graph, verts []VertexID, offs []int64, dst []VertexID, weight []float32, etype []int32, maxW []float64) (*Graph, error) {
	if base == nil {
		return nil, fmt.Errorf("graph: overlay over nil base")
	}
	if base.partial {
		return nil, fmt.Errorf("graph: overlay over a partition-local slice is not supported")
	}
	if base.over != nil {
		return nil, fmt.Errorf("graph: overlays do not stack; compact the base first")
	}
	n := base.NumVertices()
	if len(offs) != len(verts)+1 {
		return nil, fmt.Errorf("graph: overlay offs length %d, want %d", len(offs), len(verts)+1)
	}
	if len(offs) > 0 && offs[0] != 0 {
		return nil, fmt.Errorf("graph: overlay offs[0] = %d, want 0", offs[0])
	}
	if (base.weight != nil) != (weight != nil) {
		return nil, fmt.Errorf("graph: overlay weight presence must match the base")
	}
	if (base.etype != nil) != (etype != nil) {
		return nil, fmt.Errorf("graph: overlay type presence must match the base")
	}
	if weight != nil && len(weight) != len(dst) {
		return nil, fmt.Errorf("graph: overlay weight length %d != dst length %d", len(weight), len(dst))
	}
	if etype != nil && len(etype) != len(dst) {
		return nil, fmt.Errorf("graph: overlay type length %d != dst length %d", len(etype), len(dst))
	}
	if base.weight != nil && len(maxW) != len(verts) {
		return nil, fmt.Errorf("graph: overlay maxW length %d, want %d", len(maxW), len(verts))
	}
	baseDeg := int64(0)
	for i, v := range verts {
		if int(v) >= n {
			return nil, fmt.Errorf("graph: overlay vertex %d outside |V|=%d", v, n)
		}
		if i > 0 && verts[i-1] >= v {
			return nil, fmt.Errorf("graph: overlay vertices not strictly increasing at %d", v)
		}
		if offs[i+1] < offs[i] || offs[i+1] > int64(len(dst)) {
			return nil, fmt.Errorf("graph: overlay offsets not monotone at vertex %d", v)
		}
		seg := dst[offs[i]:offs[i+1]]
		segMax := float64(0)
		for j, d := range seg {
			if int(d) >= n {
				return nil, fmt.Errorf("graph: overlay edge %d->%d out of range (|V|=%d)", v, d, n)
			}
			if j > 0 && seg[j-1] > d {
				return nil, fmt.Errorf("graph: overlay adjacency of %d not sorted", v)
			}
			if weight != nil {
				if w := float64(weight[offs[i]+int64(j)]); w > segMax {
					segMax = w
				}
			}
		}
		if maxW != nil && maxW[i] < segMax {
			return nil, fmt.Errorf("graph: overlay maxW[%d] = %v below actual max %v at vertex %d", i, maxW[i], segMax, v)
		}
		baseDeg += base.offsets[v+1] - base.offsets[v]
	}
	if len(dst) > 0 && int64(len(dst)) != offs[len(offs)-1] {
		return nil, fmt.Errorf("graph: overlay dst length %d != offs end %d", len(dst), offs[len(offs)-1])
	}
	return &Graph{
		offsets: base.offsets,
		dst:     base.dst,
		weight:  base.weight,
		etype:   base.etype,
		over: &overlayData{
			verts:     verts,
			offs:      offs,
			dst:       dst,
			weight:    weight,
			etype:     etype,
			maxW:      maxW,
			edgeDelta: int64(len(dst)) - baseDeg,
		},
	}, nil
}

// Overlaid reports whether this graph is an overlay view (a dynamic-graph
// epoch materialization) rather than a plain CSR.
func (g *Graph) Overlaid() bool { return g.over != nil }

// OverlayStats reports the overlay's size: how many vertices have
// replacement segments and the net edge-count delta versus the base.
// Zero values for plain graphs.
func (g *Graph) OverlayStats() (verts int, edgeDelta int64) {
	if g.over == nil {
		return 0, 0
	}
	return len(g.over.verts), g.over.edgeDelta
}

// Compacted materializes an overlay view into a fresh plain CSR graph in
// O(V+E) — the dynamic-graph compaction step. The result is
// walk-indistinguishable from the view except that maintained weight
// bounds are tightened to exact values (MaxWeight scans real weights
// again). Plain graphs are returned unchanged: they are immutable, so no
// copy is needed.
func (g *Graph) Compacted() *Graph {
	if g.over == nil {
		return g
	}
	n := g.NumVertices()
	total := g.NumEdges()
	out := &Graph{
		offsets: make([]int64, n+1),
		dst:     make([]VertexID, 0, total),
	}
	if g.weight != nil {
		out.weight = make([]float32, 0, total)
	}
	if g.etype != nil {
		out.etype = make([]int32, 0, total)
	}
	for v := 0; v < n; v++ {
		out.dst = append(out.dst, g.Neighbors(VertexID(v))...)
		if out.weight != nil {
			out.weight = append(out.weight, g.Weights(VertexID(v))...)
		}
		if out.etype != nil {
			out.etype = append(out.etype, g.Types(VertexID(v))...)
		}
		out.offsets[v+1] = int64(len(out.dst))
	}
	return out
}
