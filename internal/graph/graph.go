// Package graph provides the compressed-sparse-row (CSR) graph storage used
// by the engine, mirroring KnightKing's storage design (§6.1 of the paper):
// edges are stored with their source vertex, undirected edges are stored
// twice (once per direction), and per-vertex adjacency is kept sorted by
// destination so walker-to-vertex neighborhood queries resolve with a binary
// search.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Graphs in the paper's evaluation reach 134M
// vertices, well inside uint32.
type VertexID = uint32

// Edge is a single out-edge as seen from its source vertex.
type Edge struct {
	Dst    VertexID
	Weight float32
	Type   int32
}

// Graph is an immutable CSR graph. Construct one with a Builder, a loader,
// or a generator. Weight and Type arrays are nil for unweighted/untyped
// graphs; accessors hide that distinction.
type Graph struct {
	offsets []int64 // len NumVertices()+1
	dst     []VertexID
	weight  []float32 // nil if unweighted
	etype   []int32   // nil if untyped

	// partial marks a partition-local slice holding only the adjacency of
	// [ownedLo, ownedHi); see Subgraph and ReadBinarySlice.
	partial          bool
	ownedLo, ownedHi VertexID

	// over, when non-nil, layers per-vertex replacement adjacency over the
	// base arrays (a dynamic-graph epoch view; see overlay.go). Accessors
	// resolve overlay vertices to their segment and everything else to the
	// base arrays. Mutually exclusive with partial.
	over *overlayData
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of stored directed edges (an undirected input
// edge counts twice).
func (g *Graph) NumEdges() int64 {
	ne := g.offsets[len(g.offsets)-1]
	if g.over != nil {
		ne += g.over.edgeDelta
	}
	return ne
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weight != nil }

// Typed reports whether the graph carries edge types.
func (g *Graph) Typed() bool { return g.etype != nil }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v VertexID) int {
	g.checkOwned(v)
	if g.over != nil {
		if i := g.over.find(v); i >= 0 {
			return int(g.over.offs[i+1] - g.over.offs[i])
		}
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the destination slice for v's out-edges, sorted by
// destination ID. The slice aliases internal storage and must not be
// modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	g.checkOwned(v)
	if g.over != nil {
		if i := g.over.find(v); i >= 0 {
			return g.over.dst[g.over.offs[i]:g.over.offs[i+1]]
		}
	}
	return g.dst[g.offsets[v]:g.offsets[v+1]]
}

// Weights returns the weight slice for v's out-edges, parallel to
// Neighbors(v), or nil for an unweighted graph.
func (g *Graph) Weights(v VertexID) []float32 {
	g.checkOwned(v)
	if g.weight == nil {
		return nil
	}
	if g.over != nil {
		if i := g.over.find(v); i >= 0 {
			return g.over.weight[g.over.offs[i]:g.over.offs[i+1]]
		}
	}
	return g.weight[g.offsets[v]:g.offsets[v+1]]
}

// Types returns the edge-type slice for v's out-edges, parallel to
// Neighbors(v), or nil for an untyped graph.
func (g *Graph) Types(v VertexID) []int32 {
	g.checkOwned(v)
	if g.etype == nil {
		return nil
	}
	if g.over != nil {
		if i := g.over.find(v); i >= 0 {
			return g.over.etype[g.over.offs[i]:g.over.offs[i+1]]
		}
	}
	return g.etype[g.offsets[v]:g.offsets[v+1]]
}

// EdgeAt returns v's i-th out-edge. Unweighted graphs report weight 1,
// untyped graphs report type 0.
func (g *Graph) EdgeAt(v VertexID, i int) Edge {
	g.checkOwned(v)
	if g.over != nil {
		if oi := g.over.find(v); oi >= 0 {
			idx := g.over.offs[oi] + int64(i)
			e := Edge{Dst: g.over.dst[idx], Weight: 1}
			if g.over.weight != nil {
				e.Weight = g.over.weight[idx]
			}
			if g.over.etype != nil {
				e.Type = g.over.etype[idx]
			}
			return e
		}
	}
	idx := g.offsets[v] + int64(i)
	e := Edge{Dst: g.dst[idx], Weight: 1}
	if g.weight != nil {
		e.Weight = g.weight[idx]
	}
	if g.etype != nil {
		e.Type = g.etype[idx]
	}
	return e
}

// EdgeWeight returns the weight of v's i-th out-edge (1 if unweighted).
func (g *Graph) EdgeWeight(v VertexID, i int) float32 {
	g.checkOwned(v)
	if g.weight == nil {
		return 1
	}
	if g.over != nil {
		if oi := g.over.find(v); oi >= 0 {
			return g.over.weight[g.over.offs[oi]+int64(i)]
		}
	}
	return g.weight[g.offsets[v]+int64(i)]
}

// HasEdge reports whether the directed edge u->v exists, by binary search
// over u's sorted adjacency. This is the primitive behind the engine's
// neighborhood state queries (node2vec's d_tx test).
func (g *Graph) HasEdge(u, v VertexID) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// TotalWeight returns the sum of edge weights at v (the degree for an
// unweighted graph). It is the normalizer ΣPs for static sampling.
func (g *Graph) TotalWeight(v VertexID) float64 {
	if g.weight == nil {
		return float64(g.Degree(v))
	}
	sum := 0.0
	for _, w := range g.Weights(v) {
		sum += float64(w)
	}
	return sum
}

// MaxWeight returns the maximum edge weight at v (1 if unweighted, 0 if v
// has no out-edges). For an overlay vertex of a weighted epoch view it
// returns the epoch's maintained bound instead of scanning: never less
// than the true maximum, but possibly loose after deletions until the
// next compaction. Envelope consumers (rejection Q(v), outlier widths)
// stay exact under a loose bound — it only costs extra trials.
func (g *Graph) MaxWeight(v VertexID) float64 {
	if g.Degree(v) == 0 {
		return 0
	}
	if g.weight == nil {
		return 1
	}
	if g.over != nil {
		if i := g.over.find(v); i >= 0 {
			return g.over.maxW[i]
		}
	}
	m := float32(0)
	for _, w := range g.Weights(v) {
		if w > m {
			m = w
		}
	}
	return float64(m)
}

// DegreeStats summarizes the degree distribution; the paper reports mean
// and variance (Tables 1 and 2) as the predictors of full-scan sampling
// cost.
type DegreeStats struct {
	Mean     float64
	Variance float64
	Max      int
	Min      int
}

// Stats computes degree statistics over all vertices.
func (g *Graph) Stats() DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	sum, sumSq := 0.0, 0.0
	maxD, minD := 0, int(^uint(0)>>1)
	for v := 0; v < n; v++ {
		d := g.Degree(VertexID(v))
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		if d > maxD {
			maxD = d
		}
		if d < minD {
			minD = d
		}
	}
	mean := sum / float64(n)
	return DegreeStats{
		Mean:     mean,
		Variance: sumSq/float64(n) - mean*mean,
		Max:      maxD,
		Min:      minD,
	}
}

// Validate checks structural invariants (monotone offsets, in-range
// destinations, sorted adjacency) and returns a descriptive error on the
// first violation. Loaders call it; tests use it as a property check.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count")
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	lo, hi := g.OwnedRange()
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		if g.offsets[v+1] < 0 || g.offsets[v+1] > int64(len(g.dst)) {
			return fmt.Errorf("graph: offset %d of vertex %d outside edge array (len %d)",
				g.offsets[v+1], v, len(g.dst))
		}
		if VertexID(v) < lo || VertexID(v) >= hi {
			if g.offsets[v+1] != g.offsets[v] {
				return fmt.Errorf("graph: unowned vertex %d has edges in a partial graph", v)
			}
			continue
		}
		adj := g.Neighbors(VertexID(v))
		for i, d := range adj {
			if int(d) >= n {
				return fmt.Errorf("graph: edge %d->%d out of range (|V|=%d)", v, d, n)
			}
			if i > 0 && adj[i-1] > d {
				return fmt.Errorf("graph: adjacency of %d not sorted", v)
			}
		}
	}
	// The base dst array must match the base offsets; an overlay adjusts
	// NumEdges by its delta, so compare against the raw offsets end.
	if !g.partial && int64(len(g.dst)) != g.offsets[n] {
		return fmt.Errorf("graph: dst length %d != edge count %d", len(g.dst), g.offsets[n])
	}
	if g.weight != nil && len(g.weight) != len(g.dst) {
		return fmt.Errorf("graph: weight length %d != dst length %d", len(g.weight), len(g.dst))
	}
	if g.etype != nil && len(g.etype) != len(g.dst) {
		return fmt.Errorf("graph: type length %d != dst length %d", len(g.etype), len(g.dst))
	}
	return nil
}

// Builder accumulates edges and produces an immutable CSR Graph. It is not
// safe for concurrent use.
type Builder struct {
	numVertices int
	srcs        []VertexID
	edges       []Edge
	weighted    bool
	typed       bool
	undirected  bool
	dedup       bool
}

// NewBuilder creates a builder for a graph with the given vertex count.
func NewBuilder(numVertices int) *Builder {
	if numVertices < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{numVertices: numVertices}
}

// SetUndirected makes AddEdge insert both directions, matching the paper's
// storage of undirected edges twice.
func (b *Builder) SetUndirected(u bool) *Builder {
	b.undirected = u
	return b
}

// SetDedup removes parallel edges (same source and destination) at Build
// time, keeping the first occurrence. Second-order algorithms that declare
// a single "return edge" outlier require simple adjacency, so the
// generators enable this.
func (b *Builder) SetDedup(d bool) *Builder {
	b.dedup = d
	return b
}

// AddEdge records the edge src->dst with weight 1 and type 0.
func (b *Builder) AddEdge(src, dst VertexID) {
	b.add(src, Edge{Dst: dst, Weight: 1})
}

// AddWeightedEdge records src->dst with the given weight.
func (b *Builder) AddWeightedEdge(src, dst VertexID, w float32) {
	b.weighted = true
	b.add(src, Edge{Dst: dst, Weight: w})
}

// AddTypedEdge records src->dst with the given weight and edge type.
func (b *Builder) AddTypedEdge(src, dst VertexID, w float32, typ int32) {
	b.weighted = true
	b.typed = true
	b.add(src, Edge{Dst: dst, Weight: w, Type: typ})
}

func (b *Builder) add(src VertexID, e Edge) {
	if int(src) >= b.numVertices || int(e.Dst) >= b.numVertices {
		panic(fmt.Sprintf("graph: edge %d->%d out of range (|V|=%d)", src, e.Dst, b.numVertices))
	}
	b.srcs = append(b.srcs, src)
	b.edges = append(b.edges, e)
	if b.undirected && src != e.Dst {
		b.srcs = append(b.srcs, e.Dst)
		rev := e
		rev.Dst = src
		b.edges = append(b.edges, rev)
	}
}

// NumEdgesAdded returns the number of directed edges recorded so far.
func (b *Builder) NumEdgesAdded() int { return len(b.srcs) }

// Build produces the CSR graph. The builder can be reused afterwards but
// retains its edges; call Reset to clear.
func (b *Builder) Build() *Graph {
	n := b.numVertices
	offsets := make([]int64, n+1)
	for _, s := range b.srcs {
		offsets[s+1]++
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	m := len(b.srcs)
	dst := make([]VertexID, m)
	var weight []float32
	var etype []int32
	if b.weighted {
		weight = make([]float32, m)
	}
	if b.typed {
		etype = make([]int32, m)
	}
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i, s := range b.srcs {
		p := cursor[s]
		cursor[s]++
		dst[p] = b.edges[i].Dst
		if weight != nil {
			weight[p] = b.edges[i].Weight
		}
		if etype != nil {
			etype[p] = b.edges[i].Type
		}
	}
	g := &Graph{offsets: offsets, dst: dst, weight: weight, etype: etype}
	g.sortAdjacency()
	if b.dedup {
		g = g.dedupAdjacency()
	}
	return g
}

// dedupAdjacency rebuilds the CSR arrays keeping only the first of each run
// of equal destinations within a vertex's (sorted) adjacency.
func (g *Graph) dedupAdjacency() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	dst := make([]VertexID, 0, len(g.dst))
	var weight []float32
	var etype []int32
	if g.weight != nil {
		weight = make([]float32, 0, len(g.weight))
	}
	if g.etype != nil {
		etype = make([]int32, 0, len(g.etype))
	}
	for v := 0; v < n; v++ {
		adj := g.Neighbors(VertexID(v))
		base := g.offsets[v]
		for i, d := range adj {
			if i > 0 && adj[i-1] == d {
				continue
			}
			dst = append(dst, d)
			if weight != nil {
				weight = append(weight, g.weight[base+int64(i)])
			}
			if etype != nil {
				etype = append(etype, g.etype[base+int64(i)])
			}
		}
		offsets[v+1] = int64(len(dst))
	}
	return &Graph{offsets: offsets, dst: dst, weight: weight, etype: etype}
}

// Reset clears accumulated edges, keeping the vertex count.
func (b *Builder) Reset() {
	b.srcs = b.srcs[:0]
	b.edges = b.edges[:0]
	b.weighted = false
	b.typed = false
}

// sortAdjacency sorts each vertex's out-edges by destination, permuting
// weights and types alongside.
func (g *Graph) sortAdjacency() {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		seg := adjSegment{g: g, lo: lo, n: int(hi - lo)}
		sort.Sort(seg)
	}
}

type adjSegment struct {
	g  *Graph
	lo int64
	n  int
}

func (s adjSegment) Len() int { return s.n }
func (s adjSegment) Less(i, j int) bool {
	return s.g.dst[s.lo+int64(i)] < s.g.dst[s.lo+int64(j)]
}
func (s adjSegment) Swap(i, j int) {
	a, b := s.lo+int64(i), s.lo+int64(j)
	g := s.g
	g.dst[a], g.dst[b] = g.dst[b], g.dst[a]
	if g.weight != nil {
		g.weight[a], g.weight[b] = g.weight[b], g.weight[a]
	}
	if g.etype != nil {
		g.etype[a], g.etype[b] = g.etype[b], g.etype[a]
	}
}
