package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks that arbitrary text input never panics the
// parser and that accepted graphs always validate.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n", true)
	f.Add("# comment\n3 4 2.5\n", false)
	f.Add("0 1 1.0 3\n", false)
	f.Add("", true)
	f.Add("999999 0\n", false)
	f.Add("0 1 nan\n", false)
	f.Fuzz(func(t *testing.T, input string, undirected bool) {
		if hugeVertexIDs(input) {
			return // avoid multi-GB allocations from tiny inputs
		}
		g, err := ReadEdgeList(strings.NewReader(input), undirected, 0)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", verr, input)
		}
	})
}

// hugeVertexIDs reports whether the first two fields of any line parse to
// vertex IDs above 10^5, which would make the parser allocate a graph far
// larger than the input — a fuzz resource bomb, not a parser bug.
func hugeVertexIDs(input string) bool {
	for _, line := range strings.Split(input, "\n") {
		fields := strings.Fields(line)
		for i := 0; i < len(fields) && i < 2; i++ {
			if len(fields[i]) > 5 {
				return true
			}
		}
	}
	return false
}

// FuzzReadBinary checks the binary loader on arbitrary bytes: no panics,
// and either a validated graph or an error.
func FuzzReadBinary(f *testing.F) {
	// Seed with a genuine dump.
	b := NewBuilder(4)
	b.AddTypedEdge(0, 1, 2, 1)
	b.AddTypedEdge(1, 2, 3, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the header-declared sizes' memory blowup by refusing huge
		// inputs up front: the loader allocates from the header, so very
		// small inputs with huge declared counts would try big
		// allocations. Guard as the loader's caller would.
		if len(data) > 1<<16 {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %x: %v", data, r)
			}
		}()
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted binary graph fails validation: %v", verr)
		}
	})
}

// FuzzEdgeListRoundTrip: any graph the text parser accepts must survive a
// write/read round trip unchanged.
func FuzzEdgeListRoundTrip(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("0 3 2.5\n3 0 1.5\n")
	f.Fuzz(func(t *testing.T, input string) {
		if hugeVertexIDs(input) {
			return
		}
		g, err := ReadEdgeList(strings.NewReader(input), false, 0)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf, false, g.NumVertices())
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() {
			t.Fatalf("round trip changed shape: (%d,%d) vs (%d,%d)",
				g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
	})
}
