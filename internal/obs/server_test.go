package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestAdminServer(t *testing.T) {
	reg := goldenRegistry()
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, ctype, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "kk_steps_total 10") {
		t.Errorf("/metrics missing counter, body:\n%s", body)
	}
	if strings.Count(body, "# TYPE") < 15+3+6 {
		t.Errorf("/metrics family count too low:\n%s", body)
	}

	code, ctype, body = get(t, base+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status = %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/statusz content type = %q", ctype)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if st.Superstep != 3 || st.ActiveWalkers != 42 || !st.LightMode {
		t.Errorf("/statusz gauges = %+v", st)
	}
	if st.Counters.Steps != 10 {
		t.Errorf("/statusz counters = %+v", st.Counters)
	}
	if len(st.Histograms) != 6 {
		t.Errorf("/statusz has %d histogram digests, want 6", len(st.Histograms))
	}

	if code, _, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _, body := get(t, base+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status = %d body = %q", code, body)
	}
	if code, _, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}

func TestAdminServerTraceEndpoint(t *testing.T) {
	reg := goldenRegistry()
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Without a collector the endpoint 404s with a hint.
	code, _, body := get(t, base+"/trace")
	if code != http.StatusNotFound || !strings.Contains(body, "-trace") {
		t.Fatalf("/trace without collector: status %d body %q", code, body)
	}
}

// TestShutdownDrainsInflightScrape pins graceful close: a scrape in
// flight when Shutdown begins completes with a full response, and the
// listener refuses connections afterwards.
func TestShutdownDrainsInflightScrape(t *testing.T) {
	reg := goldenRegistry()
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	base := "http://" + srv.Addr()

	// A CPU profile with seconds=1 holds its connection open for a full
	// second — a genuinely in-flight request while Shutdown runs. The
	// /metrics scrape alongside it models the fast path.
	var wg sync.WaitGroup
	var profileCode, metricsCode int
	var metricsBody string
	wg.Add(1)
	go func() {
		defer wg.Done()
		profileCode, _, _ = get(t, base+"/debug/pprof/profile?seconds=1")
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		metricsCode, _, metricsBody = get(t, base+"/metrics")
	}()
	time.Sleep(150 * time.Millisecond) // both requests are now in flight or done

	start := time.Now()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if profileCode != http.StatusOK {
		t.Errorf("in-flight profile status = %d, want 200", profileCode)
	}
	if metricsCode != http.StatusOK || !strings.Contains(metricsBody, "kk_steps_total") {
		t.Errorf("in-flight scrape: status %d, body %q", metricsCode, metricsBody)
	}
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Errorf("Shutdown returned after %v; it should have drained the 1s profile", waited)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
