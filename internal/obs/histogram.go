// Package obs is the engine's telemetry layer: lock-free power-of-two
// histograms for hot-path observations, per-superstep span records with
// JSONL export, a Prometheus-text + /statusz + pprof admin server, and the
// glue that fills the end-of-run stats.Report. The Registry type implements
// core.Observer, transport.Observer, and the checkpoint store's segment
// hook, so one value wires the whole engine.
//
// Telemetry is strictly passive: observations never touch walker RNG
// streams, so enabling it cannot change walk output (pinned by
// TestTelemetryDoesNotChangeWalkOutput).
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets is the fixed bucket count of every histogram: bucket 0 holds
// non-positive values, bucket i (1 <= i <= 63) holds values v with
// 2^(i-1) <= v < 2^i, i.e. 64-bit length exactly i. Every int64 maps to
// exactly one bucket, so there is no separate overflow bucket.
const numBuckets = 64

// Histogram is a lock-free power-of-two-bucket histogram. Observe is a
// single atomic add on the value's bucket (plus count/sum/max updates), so
// it is safe and cheap to call from every engine worker concurrently. The
// fixed bucket layout means histograms from different ranks can always be
// merged — there is no per-instance configuration to mismatch.
//
// Like stats.Counters, a snapshot of a live histogram is consistent per
// field but not across fields (see the Counters doc for the contract).
// Merge at a barrier — or after the run joins — for exact totals.
type Histogram struct {
	name, help string
	buckets    [numBuckets]atomic.Int64
	count      atomic.Int64
	sum        atomic.Int64
	max        atomic.Int64
}

// NewHistogram creates a named histogram. The name becomes the Prometheus
// metric family (prefixed "kk_"), so use snake_case with a unit suffix.
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Name returns the histogram's metric name.
func (h *Histogram) Name() string { return h.name }

// Help returns the histogram's help text.
func (h *Histogram) Help() string { return h.help }

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns bucket i's inclusive upper bound: 0 for bucket 0,
// 2^i - 1 otherwise (math.MaxInt64 for the last bucket).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Merge folds a snapshot of src into h. The fixed bucket layout makes any
// two histograms mergeable; ranks that keep private histograms fold them
// into the shared one at a barrier (or after joining) with this.
func (h *Histogram) Merge(src *Histogram) {
	s := src.Snapshot()
	for i, b := range s.Buckets {
		if b != 0 {
			h.buckets[i].Add(b)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
}

// Snapshot copies the histogram's current state (per-field consistency
// only while observations are in flight).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Help:  h.help,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a plain copy of a histogram's state.
type HistogramSnapshot struct {
	Name    string
	Help    string
	Buckets [numBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Mean returns the mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (q in [0, 1]); an upper bound on the true quantile,
// tight to a factor of two.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum > target {
			return BucketBound(i)
		}
	}
	return BucketBound(numBuckets - 1)
}

// HighestNonEmpty returns the largest bucket index with observations
// (-1 when empty), used to trim rendering.
func (s HistogramSnapshot) HighestNonEmpty() int {
	for i := numBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return -1
}
