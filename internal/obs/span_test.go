package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"knightking/internal/core"
)

// TestSpanJSONLSchemaVersion pins the -spans JSONL encoding: every line
// carries the schema version stamped by the registry (the engine leaves
// span.V zero), and the full byte encoding of a known span is golden —
// any field rename, reorder, or version bump must be intentional.
func TestSpanJSONLSchemaVersion(t *testing.T) {
	reg := NewRegistry(nil)
	var buf bytes.Buffer
	reg.SetSpanWriter(&buf)

	reg.OnSuperstep(core.SuperstepSpan{
		Rank: 1, Iteration: 3, LightMode: true,
		LocalWalkers: 5, GlobalWalkers: 12,
		RecvMessages: 7, RecvBytes: 420,
		ComputeNanos: 1000, ExchangeNanos: 200, BarrierNanos: 30, CheckpointNanos: 4,
		GatherNanos: 600, MoveNanos: 300, UpdateNanos: 100,
	})
	reg.OnSuperstep(core.SuperstepSpan{Rank: 0, Iteration: 3})

	want := `{"v":2,"rank":1,"superstep":3,"light":true,"local_walkers":5,"global_walkers":12,"recv_msgs":7,"recv_bytes":420,"compute_ns":1000,"exchange_ns":200,"barrier_ns":30,"checkpoint_ns":4,"gather_ns":600,"move_ns":300,"update_ns":100}` + "\n" +
		`{"v":2,"rank":0,"superstep":3,"light":false,"local_walkers":0,"global_walkers":0,"recv_msgs":0,"recv_bytes":0,"compute_ns":0,"exchange_ns":0,"barrier_ns":0,"checkpoint_ns":0}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("span JSONL encoding diverged:\n got %q\nwant %q", got, want)
	}

	// Every stream line parses and reports the current schema version;
	// the in-memory span log is stamped identically.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v", err)
		}
		if v, _ := m["v"].(float64); int(v) != SpanSchemaVersion {
			t.Errorf("line v = %v, want %d", m["v"], SpanSchemaVersion)
		}
	}
	for _, sp := range reg.Spans() {
		if sp.V != SpanSchemaVersion {
			t.Errorf("retained span v = %d, want %d", sp.V, SpanSchemaVersion)
		}
	}
}
