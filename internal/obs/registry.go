package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"knightking/internal/core"
	"knightking/internal/obs/tracelog"
	"knightking/internal/stats"
	"knightking/internal/transport"
)

// SpanSchemaVersion is the version stamped into the v field of every
// span the registry encodes to a -spans JSONL sink. History:
//
//	(absent) — the pre-versioning encoding (PR 3); readers should treat
//	           a missing v as version 1.
//	2        — adds the v field itself (encoding otherwise unchanged).
//
// Bump it whenever a field is added, removed, or changes meaning, and
// update the golden encoding test in span_golden_test.go.
const SpanSchemaVersion = 2

// Registry is the run-wide telemetry hub: the engine histograms, the
// per-superstep span log, and the live state the admin server exposes. It
// implements core.Observer and transport.Observer, and its
// ObserveCheckpointSegment matches the checkpoint store's Observe hook, so
// wiring a run is:
//
//	reg := obs.NewRegistry(counters)
//	cfg.Observer = reg            // engine spans + sampling histograms,
//	                              // transport wrapping is automatic
//	store.Observe = reg.ObserveCheckpointSegment
//
// Under core.Run every simulated rank shares one registry, so cross-rank
// histogram merging is implicit; multi-process ranks each own a registry
// and report per-rank (Histogram.Merge folds them when a coordinator
// gathers blobs). All methods are safe for concurrent use.
type Registry struct {
	counters *stats.Counters
	start    time.Time

	// Engine and transport histograms, fixed at construction.
	TrialsPerStep   *Histogram // rejection darts per completed walker step
	QueryBatch      *Histogram // records per incoming phase-B query batch
	FramePayload    *Histogram // payload bytes per delivered transport message
	ExchangeLatency *Histogram // nanoseconds per collective Exchange call
	CheckpointBytes *Histogram // bytes per durably written checkpoint segment
	CheckpointWrite *Histogram // nanoseconds per checkpoint segment write

	// Live gauges, updated by OnSuperstep.
	superstep     atomic.Int64
	activeWalkers atomic.Int64
	lightMode     atomic.Bool

	// Interleaved-pipeline stage totals, summed across ranks and supersteps.
	// All three stay zero under scalar stepping.
	gatherNanos atomic.Int64
	moveNanos   atomic.Int64
	updateNanos atomic.Int64

	metaMu   sync.Mutex
	alg      string
	vertices int
	edges    int64
	ranks    int

	spanMu       sync.Mutex
	spans        []core.SuperstepSpan
	spanEnc      *json.Encoder
	rankExchange map[int]int64
	rankCompute  map[int]int64

	// trace, when set, receives every span and exchange-peer observation
	// the registry sees, building the run's causal trace alongside the
	// aggregates (see SetTrace).
	trace atomic.Pointer[tracelog.Collector]
}

// NewRegistry creates a registry reading live counter values from c (a new
// counter set is allocated when c is nil; Counters returns it for wiring
// into core.Config).
func NewRegistry(c *stats.Counters) *Registry {
	if c == nil {
		c = &stats.Counters{}
	}
	return &Registry{
		counters: c,
		start:    time.Now(),

		TrialsPerStep:   NewHistogram("trials_per_step", "Rejection-sampling darts thrown per completed walker step."),
		QueryBatch:      NewHistogram("query_batch_records", "State-query records per incoming phase-B batch."),
		FramePayload:    NewHistogram("frame_payload_bytes", "Payload bytes per delivered transport message."),
		ExchangeLatency: NewHistogram("exchange_latency_ns", "Wall nanoseconds per collective Exchange call (wire + barrier wait)."),
		CheckpointBytes: NewHistogram("checkpoint_segment_bytes", "Bytes per durably written checkpoint segment."),
		CheckpointWrite: NewHistogram("checkpoint_write_ns", "Wall nanoseconds per checkpoint segment write (including fsync)."),

		rankExchange: make(map[int]int64),
		rankCompute:  make(map[int]int64),
	}
}

// Counters returns the counter set the registry reads from; pass the same
// set to core.Config so /metrics sees live engine counters.
func (r *Registry) Counters() *stats.Counters { return r.counters }

// SetRunInfo records the run's shape for /statusz and report filling.
func (r *Registry) SetRunInfo(algorithm string, vertices int, edges int64, ranks int) {
	r.metaMu.Lock()
	r.alg, r.vertices, r.edges, r.ranks = algorithm, vertices, edges, ranks
	r.metaMu.Unlock()
}

// SetTrace attaches a causal-trace collector: the registry forwards every
// superstep span and per-peer exchange observation to it, and /statusz and
// FillReport pick up its critical-path summary. Wire the same collector
// into core.Config.Trace for walker journeys. Call before the run starts.
func (r *Registry) SetTrace(c *tracelog.Collector) { r.trace.Store(c) }

// Trace returns the attached collector, or nil.
func (r *Registry) Trace() *tracelog.Collector { return r.trace.Load() }

// SetSpanWriter streams every span to w as one JSON object per line, in
// arrival order, as the run progresses (a crash loses at most the spans
// the OS had not flushed). Call before the run starts.
func (r *Registry) SetSpanWriter(w io.Writer) {
	r.spanMu.Lock()
	r.spanEnc = json.NewEncoder(w)
	r.spanMu.Unlock()
}

// OnSuperstep implements core.Observer: it appends the span to the log,
// streams it to the span writer, folds the phase durations into the
// per-rank totals behind StragglerSkew, and refreshes the live gauges.
func (r *Registry) OnSuperstep(span core.SuperstepSpan) {
	// Stamp the encoding schema version on the registry's own copy; the
	// engine's span value is never touched.
	span = stampVersion(span)
	if c := r.trace.Load(); c != nil {
		c.OnSuperstep(span)
	}
	if int64(span.Iteration) > r.superstep.Load() {
		r.superstep.Store(int64(span.Iteration))
		r.activeWalkers.Store(span.GlobalWalkers)
	}
	if span.Rank == 0 {
		r.lightMode.Store(span.LightMode)
	}
	r.gatherNanos.Add(span.GatherNanos)
	r.moveNanos.Add(span.MoveNanos)
	r.updateNanos.Add(span.UpdateNanos)
	r.spanMu.Lock()
	r.spans = append(r.spans, span)
	r.rankExchange[span.Rank] += span.ExchangeNanos
	r.rankCompute[span.Rank] += span.ComputeNanos
	enc := r.spanEnc
	if enc != nil {
		// Encode inside the lock so concurrent ranks cannot interleave
		// lines; Encoder appends the newline that makes this JSONL.
		enc.Encode(span)
	}
	r.spanMu.Unlock()
}

// stampVersion returns sp with the JSONL schema version set.
func stampVersion(sp core.SuperstepSpan) core.SuperstepSpan {
	sp.V = SpanSchemaVersion
	return sp
}

// ObserveStepTrials implements core.Observer.
func (r *Registry) ObserveStepTrials(trials int64) { r.TrialsPerStep.Observe(trials) }

// ObserveQueryBatch implements core.Observer.
func (r *Registry) ObserveQueryBatch(records int64) { r.QueryBatch.Observe(records) }

// ObserveExchange implements transport.Observer.
func (r *Registry) ObserveExchange(d time.Duration, messages int, bytes int64) {
	r.ExchangeLatency.Observe(d.Nanoseconds())
}

// ObserveFramePayload implements transport.Observer.
func (r *Registry) ObserveFramePayload(bytes int) { r.FramePayload.Observe(int64(bytes)) }

// ObserveExchangePeers implements transport.ExchangePeerObserver by
// forwarding to the attached trace collector (a no-op without one), so a
// registry-observed run gets exchange spans with peer attribution in its
// trace for free.
func (r *Registry) ObserveExchangePeers(rank int, d time.Duration, msgs []transport.Message) {
	if c := r.trace.Load(); c != nil {
		c.ObserveExchangePeers(rank, d, msgs)
	}
}

// ObserveCheckpointSegment matches checkpoint.Store's Observe hook.
func (r *Registry) ObserveCheckpointSegment(rank int, bytes int64, d time.Duration) {
	r.CheckpointBytes.Observe(bytes)
	r.CheckpointWrite.Observe(d.Nanoseconds())
}

// Histograms returns the registry's histograms in stable rendering order.
func (r *Registry) Histograms() []*Histogram {
	return []*Histogram{
		r.TrialsPerStep, r.QueryBatch, r.FramePayload,
		r.ExchangeLatency, r.CheckpointBytes, r.CheckpointWrite,
	}
}

// Spans returns a copy of the span log in arrival order.
func (r *Registry) Spans() []core.SuperstepSpan {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	out := make([]core.SuperstepSpan, len(r.spans))
	copy(out, r.spans)
	return out
}

// StragglerSkew returns max/mean of the per-rank total exchange time — the
// report's load-balance number. 1.0 is perfectly balanced; 0 means fewer
// than one rank has reported.
func (r *Registry) StragglerSkew() float64 {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	return skew(r.rankExchange)
}

func skew(perRank map[int]int64) float64 {
	if len(perRank) == 0 {
		return 0
	}
	var max, sum int64
	for _, v := range perRank {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := float64(sum) / float64(len(perRank))
	return float64(max) / mean
}

// FillReport stamps the registry's cross-rank numbers into a report built
// by stats.NewReport.
func (r *Registry) FillReport(rep *stats.Report) {
	rep.StragglerSkew = r.StragglerSkew()
	if c := r.trace.Load(); c != nil {
		rep.CriticalPath = c.CriticalPath()
	}
}

// StageNanos is the cross-rank breakdown of the interleaved stepping
// pipeline: cumulative worker CPU nanoseconds per stage. Zero-valued under
// scalar stepping.
type StageNanos struct {
	Gather int64 `json:"gather_ns"`
	Move   int64 `json:"move_ns"`
	Update int64 `json:"update_ns"`
}

// StageTotals returns the cumulative pipeline stage times.
func (r *Registry) StageTotals() StageNanos {
	return StageNanos{
		Gather: r.gatherNanos.Load(),
		Move:   r.moveNanos.Load(),
		Update: r.updateNanos.Load(),
	}
}

// HistogramStatus is the /statusz digest of one histogram.
type HistogramStatus struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Status is the /statusz snapshot of a live (or finished) run.
type Status struct {
	Algorithm     string                     `json:"algorithm,omitempty"`
	Vertices      int                        `json:"vertices,omitempty"`
	Edges         int64                      `json:"edges,omitempty"`
	Ranks         int                        `json:"ranks,omitempty"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Superstep     int64                      `json:"superstep"`
	ActiveWalkers int64                      `json:"active_walkers"`
	LightMode     bool                       `json:"light_mode"`
	Spans         int                        `json:"spans"`
	EdgesPerStep  float64                    `json:"edges_per_step"`
	StragglerSkew float64                    `json:"straggler_skew"`
	Stages        StageNanos                 `json:"stages"`
	Counters      stats.Snapshot             `json:"counters"`
	Histograms    map[string]HistogramStatus `json:"histograms"`
	Trace         *tracelog.Status           `json:"trace,omitempty"`
}

// Status snapshots the live run state. Mid-run values follow the Counters
// consistency contract: per-field exact, cross-field approximate.
func (r *Registry) Status() Status {
	c := r.counters.Snapshot()
	r.metaMu.Lock()
	st := Status{
		Algorithm: r.alg,
		Vertices:  r.vertices,
		Edges:     r.edges,
		Ranks:     r.ranks,
	}
	r.metaMu.Unlock()
	st.UptimeSeconds = time.Since(r.start).Seconds()
	st.Superstep = r.superstep.Load()
	st.ActiveWalkers = r.activeWalkers.Load()
	st.LightMode = r.lightMode.Load()
	st.EdgesPerStep = c.EdgesPerStep()
	st.StragglerSkew = r.StragglerSkew()
	st.Stages = r.StageTotals()
	st.Counters = c
	r.spanMu.Lock()
	st.Spans = len(r.spans)
	r.spanMu.Unlock()
	if c := r.trace.Load(); c != nil {
		ts := c.StatusSnapshot()
		st.Trace = &ts
	}
	st.Histograms = make(map[string]HistogramStatus, 6)
	for _, h := range r.Histograms() {
		s := h.Snapshot()
		st.Histograms[s.Name] = HistogramStatus{
			Count: s.Count,
			Mean:  s.Mean(),
			P50:   s.Quantile(0.50),
			P99:   s.Quantile(0.99),
			Max:   s.Max,
		}
	}
	return st
}

// WriteSpansJSONL writes the collected spans as JSONL to w (for callers
// that prefer a post-run dump over a live SetSpanWriter stream).
func (r *Registry) WriteSpansJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: span export: %w", err)
		}
	}
	return nil
}
