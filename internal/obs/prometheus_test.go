package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knightking/internal/core"
	"knightking/internal/stats"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry in a fixed, fully deterministic state.
func goldenRegistry() *Registry {
	reg := NewRegistry(nil)
	reg.Counters().Restore(stats.Snapshot{
		EdgeProbEvals: 11, Trials: 12, PreAccepts: 5, AppendixHits: 2,
		Queries: 7, Messages: 3, BytesSent: 4096, Steps: 10,
		Restarts: 1, Terminations: 9,
		Checkpoints: 2, CheckpointBytes: 100, CheckpointNanos: 200,
		RestoreNanos: 0, ExchangeNanos: 300,
	})
	reg.OnSuperstep(core.SuperstepSpan{
		Rank: 0, Iteration: 3, LightMode: true, GlobalWalkers: 42,
		ComputeNanos: 10, ExchangeNanos: 20,
	})
	for _, v := range []int64{1, 1, 3} {
		reg.TrialsPerStep.Observe(v)
	}
	reg.QueryBatch.Observe(128)
	reg.FramePayload.Observe(4096)
	reg.ExchangeLatency.Observe(1_000_000)
	// CheckpointBytes and CheckpointWrite stay empty to pin the rendering
	// of an observation-free histogram.
	return reg
}

// TestWriteMetricsGolden pins the exact Prometheus text exposition of a
// quiesced registry. Regenerate with `go test ./internal/obs -run Golden
// -update-golden` after an intentional format change.
func TestWriteMetricsGolden(t *testing.T) {
	var buf strings.Builder
	if err := WriteMetrics(&buf, goldenRegistry()); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	got := buf.String()

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics output diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteMetricsShape checks structural invariants independent of the
// golden bytes: every family has HELP/TYPE, the counter set is complete,
// and histogram bucket counts are cumulative and end at _count.
func TestWriteMetricsShape(t *testing.T) {
	var buf strings.Builder
	if err := WriteMetrics(&buf, goldenRegistry()); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()

	for _, m := range counterMetrics {
		if !strings.Contains(out, "# TYPE kk_"+m.name+" counter\n") {
			t.Errorf("missing counter family %s", m.name)
		}
	}
	for _, g := range []string{"kk_superstep", "kk_active_walkers", "kk_light_mode"} {
		if !strings.Contains(out, "# TYPE "+g+" gauge\n") {
			t.Errorf("missing gauge %s", g)
		}
	}
	if !strings.Contains(out, "kk_superstep 3\n") {
		t.Error("superstep gauge not updated from span")
	}
	if !strings.Contains(out, "kk_active_walkers 42\n") {
		t.Error("active_walkers gauge not updated from span")
	}
	if !strings.Contains(out, "kk_light_mode 1\n") {
		t.Error("light_mode gauge not set")
	}

	// trials_per_step saw {1, 1, 3}: cumulative buckets 0, 2, 3, then +Inf.
	for _, line := range []string{
		`kk_trials_per_step_bucket{le="0"} 0`,
		`kk_trials_per_step_bucket{le="1"} 2`,
		`kk_trials_per_step_bucket{le="3"} 3`,
		`kk_trials_per_step_bucket{le="+Inf"} 3`,
		`kk_trials_per_step_sum 5`,
		`kk_trials_per_step_count 3`,
		// An empty histogram renders only the mandatory +Inf/sum/count.
		`kk_checkpoint_write_ns_bucket{le="+Inf"} 0`,
		`kk_checkpoint_write_ns_count 0`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q", line)
		}
	}
	if strings.Contains(out, `kk_checkpoint_write_ns_bucket{le="0"}`) {
		t.Error("empty histogram rendered finite buckets")
	}
}
