package obs

import (
	"fmt"
	"io"

	"knightking/internal/stats"
)

// metricPrefix namespaces every exported metric family.
const metricPrefix = "kk_"

// counterMetric pairs one exported counter with its help text.
type counterMetric struct {
	name string
	help string
	val  func(stats.Snapshot) int64
}

// counterMetrics fixes the exported counter families and their order.
var counterMetrics = []counterMetric{
	{"edge_prob_evals_total", "Dynamic transition probability (Pd) evaluations.", func(s stats.Snapshot) int64 { return s.EdgeProbEvals }},
	{"trials_total", "Rejection-sampling darts thrown.", func(s stats.Snapshot) int64 { return s.Trials }},
	{"pre_accepts_total", "Darts accepted below the lower bound without a Pd evaluation.", func(s stats.Snapshot) int64 { return s.PreAccepts }},
	{"appendix_hits_total", "Darts landing in outlier appendices.", func(s stats.Snapshot) int64 { return s.AppendixHits }},
	{"queries_total", "Walker-to-vertex state queries issued.", func(s stats.Snapshot) int64 { return s.Queries }},
	{"messages_total", "Transport messages sent.", func(s stats.Snapshot) int64 { return s.Messages }},
	{"bytes_sent_total", "Transport payload bytes sent.", func(s stats.Snapshot) int64 { return s.BytesSent }},
	{"steps_total", "Successful walker moves.", func(s stats.Snapshot) int64 { return s.Steps }},
	{"restarts_total", "Restart teleports.", func(s stats.Snapshot) int64 { return s.Restarts }},
	{"terminations_total", "Walkers that finished their walk.", func(s stats.Snapshot) int64 { return s.Terminations }},
	{"checkpoints_total", "Committed checkpoints.", func(s stats.Snapshot) int64 { return s.Checkpoints }},
	{"checkpoint_bytes_total", "Checkpoint segment bytes written.", func(s stats.Snapshot) int64 { return s.CheckpointBytes }},
	{"checkpoint_nanos_total", "Wall nanoseconds spent snapshotting.", func(s stats.Snapshot) int64 { return s.CheckpointNanos }},
	{"restore_nanos_total", "Wall nanoseconds spent restoring from checkpoints.", func(s stats.Snapshot) int64 { return s.RestoreNanos }},
	{"exchange_nanos_total", "Wall nanoseconds inside transport Exchange calls.", func(s stats.Snapshot) int64 { return s.ExchangeNanos }},
}

// WriteMetrics renders the registry in the Prometheus text exposition
// format (version 0.0.4): every engine counter as a counter family, the
// live superstep state as gauges, and every histogram with cumulative
// power-of-two buckets. Deliberately excludes wall-clock-dependent values
// like uptime so the rendering of a quiesced registry is deterministic
// (pinned by the golden test).
func WriteMetrics(w io.Writer, r *Registry) error {
	if err := WriteSnapshotMetrics(w, r.counters.Snapshot()); err != nil {
		return err
	}
	if err := writeFamily(w, "superstep", "Highest superstep any rank has completed.", "gauge", r.superstep.Load()); err != nil {
		return err
	}
	if err := writeFamily(w, "active_walkers", "Cluster-wide live walker count at the last barrier.", "gauge", r.activeWalkers.Load()); err != nil {
		return err
	}
	var light int64
	if r.lightMode.Load() {
		light = 1
	}
	if err := writeFamily(w, "light_mode", "Whether rank 0 ran its last superstep in straggler light mode.", "gauge", light); err != nil {
		return err
	}
	stages := r.StageTotals()
	for _, m := range []struct {
		name, help string
		v          int64
	}{
		{"stage_gather_nanos", "Cumulative worker CPU nanoseconds in the interleaved gather stage.", stages.Gather},
		{"stage_move_nanos", "Cumulative worker CPU nanoseconds in the interleaved move stage.", stages.Move},
		{"stage_update_nanos", "Cumulative worker CPU nanoseconds in the interleaved update stage.", stages.Update},
	} {
		if err := writeFamily(w, m.name, m.help, "counter", m.v); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		if err := writeHistogram(w, h.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotMetrics renders every engine counter family from one
// snapshot, in the registry's fixed order. The admin server's /metrics uses
// it with a live snapshot; the walk service uses it with its job-aggregate
// snapshot so one scrape surface covers both deployment shapes.
func WriteSnapshotMetrics(w io.Writer, s stats.Snapshot) error {
	for _, m := range counterMetrics {
		if err := writeFamily(w, m.name, m.help, "counter", m.val(s)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCounter renders one ad-hoc kk_-prefixed counter family in the
// Prometheus text format, for callers (e.g. internal/service) composing a
// /metrics page alongside WriteSnapshotMetrics.
func WriteCounter(w io.Writer, name, help string, v int64) error {
	return writeFamily(w, name, help, "counter", v)
}

// WriteGauge renders one ad-hoc kk_-prefixed gauge family.
func WriteGauge(w io.Writer, name, help string, v int64) error {
	return writeFamily(w, name, help, "gauge", v)
}

// WriteHistogram renders one ad-hoc histogram snapshot, for callers
// composing a /metrics page from histograms that live outside a Registry
// (e.g. the walk service's ingest timings).
func WriteHistogram(w io.Writer, s HistogramSnapshot) error {
	return writeHistogram(w, s)
}

// LabeledValue is one sample of a labeled gauge family.
type LabeledValue struct {
	Label string
	Value int64
}

// WriteLabeledGauge renders a kk_-prefixed gauge family with one sample
// per label value (e.g. kk_serve_graph_epoch{graph="web"} 3). Samples are
// rendered in the given order; callers sort for a deterministic page.
func WriteLabeledGauge(w io.Writer, name, help, label string, samples []LabeledValue) error {
	if _, err := fmt.Fprintf(w, "# HELP %[1]s%[2]s %[3]s\n# TYPE %[1]s%[2]s gauge\n",
		metricPrefix, name, help); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s%s{%s=%q} %d\n",
			metricPrefix, name, label, s.Label, s.Value); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, name, help, kind string, v int64) error {
	_, err := fmt.Fprintf(w, "# HELP %[1]s%[2]s %[3]s\n# TYPE %[1]s%[2]s %[4]s\n%[1]s%[2]s %[5]d\n",
		metricPrefix, name, help, kind, v)
	return err
}

// writeHistogram renders one histogram family with cumulative buckets up
// to the highest non-empty bucket, then the mandatory +Inf bucket, sum,
// and count.
func writeHistogram(w io.Writer, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %[1]s%[2]s %[3]s\n# TYPE %[1]s%[2]s histogram\n",
		metricPrefix, s.Name, s.Help); err != nil {
		return err
	}
	var cum int64
	for i := 0; i <= s.HighestNonEmpty(); i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s%s_bucket{le=\"%d\"} %d\n",
			metricPrefix, s.Name, BucketBound(i), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%[1]s%[2]s_bucket{le=\"+Inf\"} %[3]d\n%[1]s%[2]s_sum %[4]d\n%[1]s%[2]s_count %[3]d\n",
		metricPrefix, s.Name, s.Count, s.Sum)
	return err
}
