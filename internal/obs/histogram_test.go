package obs

import (
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the power-of-two bucket layout: bucket 0 holds
// non-positive values, bucket i holds values of 64-bit length exactly i.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 40, 41},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound is >= the value, and
	// whose predecessor's bound is < the value.
	for _, c := range cases {
		i := bucketIndex(c.v)
		if b := BucketBound(i); c.v > b {
			t.Errorf("value %d exceeds its bucket %d bound %d", c.v, i, b)
		}
		if i > 0 && c.v > 0 {
			if b := BucketBound(i - 1); c.v <= b {
				t.Errorf("value %d fits in earlier bucket %d (bound %d)", c.v, i-1, b)
			}
		}
	}
}

func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != 0 {
		t.Errorf("BucketBound(0) = %d, want 0", got)
	}
	if got := BucketBound(1); got != 1 {
		t.Errorf("BucketBound(1) = %d, want 1", got)
	}
	if got := BucketBound(3); got != 7 {
		t.Errorf("BucketBound(3) = %d, want 7", got)
	}
	if got := BucketBound(63); got != math.MaxInt64 {
		t.Errorf("BucketBound(63) = %d, want MaxInt64", got)
	}
	if got := BucketBound(numBuckets); got != math.MaxInt64 {
		t.Errorf("BucketBound(%d) = %d, want MaxInt64", numBuckets, got)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram("test", "t")
	for _, v := range []int64{0, 1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Sum != 101 {
		t.Errorf("sum = %d, want 101", s.Sum)
	}
	if s.Max != 100 {
		t.Errorf("max = %d, want 100", s.Max)
	}
	if s.Buckets[0] != 2 { // 0 and -5
		t.Errorf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[2] != 2 { // 2 and 3
		t.Errorf("bucket 2 = %d, want 2", s.Buckets[2])
	}
	if s.Buckets[7] != 1 { // 100
		t.Errorf("bucket 7 = %d, want 1", s.Buckets[7])
	}
	if got := s.HighestNonEmpty(); got != 7 {
		t.Errorf("HighestNonEmpty = %d, want 7", got)
	}
	if mean := s.Mean(); math.Abs(mean-101.0/6) > 1e-12 {
		t.Errorf("mean = %v, want %v", mean, 101.0/6)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	h := NewHistogram("q", "q")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	// The true median is 50; the bucket quantile returns its bucket's
	// upper bound, 63.
	if got := s.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	// The top observation (100) lives in the bucket bounded by 127.
	if got := s.Quantile(1.0); got != 127 {
		t.Errorf("p100 = %d, want 127", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
}

// TestHistogramConcurrent hammers Observe, Merge, and Snapshot from many
// goroutines; run under -race, and the final totals must be exact.
func TestHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	dst := NewHistogram("dst", "d")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := NewHistogram("src", "s")
			for i := 0; i < perG; i++ {
				v := int64(g*perG + i)
				if g%2 == 0 {
					dst.Observe(v)
				} else {
					src.Observe(v)
				}
				if i%1000 == 0 {
					_ = dst.Snapshot() // concurrent reads must be safe
				}
			}
			if g%2 == 1 {
				dst.Merge(src)
			}
		}(g)
	}
	wg.Wait()
	s := dst.Snapshot()
	total := int64(goroutines * perG)
	if s.Count != total {
		t.Errorf("count = %d, want %d", s.Count, total)
	}
	wantSum := total * (total - 1) / 2
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != total-1 {
		t.Errorf("max = %d, want %d", s.Max, total-1)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != total {
		t.Errorf("bucket total = %d, want %d", bucketSum, total)
	}
}

func TestHistogramMergeMax(t *testing.T) {
	a, b := NewHistogram("a", ""), NewHistogram("b", "")
	a.Observe(10)
	b.Observe(500)
	a.Merge(b)
	if s := a.Snapshot(); s.Max != 500 || s.Count != 2 || s.Sum != 510 {
		t.Errorf("merged snapshot = %+v", s)
	}
}
