// Package tracelog is the causal-tracing collector: a bounded,
// pre-allocated ring buffer of fixed-size events recording one run's
// trace tree — job → rank → superstep → phase spans, transport exchange
// spans with per-peer attribution, and the journeys of deterministically
// sampled walkers (step decisions, rank migrations, rejection trial
// counts). perfetto.go renders the ring as Chrome trace-event / Perfetto
// JSON; the critical-path aggregator attributes each superstep barrier to
// the rank that gated it.
//
// Cost model: when tracing is off (Config.Trace nil) the engine pays one
// nil check per hook and the collector does not exist. When on, every
// event is a struct assignment into the pre-allocated ring under one
// mutex — no allocation after New. Events are rare by construction
// (spans per superstep per rank, journeys only for sampled walkers), so
// a mutex is cheaper and simpler than a lock-free ring and is trivially
// race-clean under concurrent ranks.
//
// Determinism: sampling is a pure function of the walker ID
// (id % SampleEvery == 0 — no RNG, no state), so a given seed samples the
// same walker journeys run after run, whatever the scheduling. Event
// timestamps are wall-clock and vary between runs; nothing in the engine
// reads them back, so tracing cannot change walk output (pinned by
// TestTraceOnOffBitIdentical in internal/core).
package tracelog

import (
	"sync"
	"time"

	"knightking/internal/core"
	"knightking/internal/stats"
	"knightking/internal/transport"
)

// Kind discriminates ring events.
type Kind uint8

const (
	// KindSuperstep is one rank's superstep span. A = local walkers,
	// B = global walkers.
	KindSuperstep Kind = iota + 1
	// Phase children of a superstep span. The engine reports phase
	// *totals*, not intervals, so the collector lays the phases out
	// sequentially inside the superstep span (compute, exchange, barrier,
	// checkpoint) — a synthesized but duration-faithful layout.
	KindPhaseCompute
	KindPhaseExchange
	KindPhaseBarrier
	KindPhaseCheckpoint
	// Stage children of a compute phase (interleaved stepping only).
	// Stage times are CPU sums across workers, so the layout scales them
	// proportionally to fit the compute phase's wall extent; A carries the
	// true CPU-sum nanoseconds.
	KindStageGather
	KindStageMove
	KindStageUpdate
	// KindExchange is one transport-level collective exchange on a rank
	// (real wall-clock interval, unlike the synthesized phase layout).
	// A = delivered payload bytes, B = delivered messages.
	KindExchange
	// KindExchangePeer attributes one exchange's deliveries to a sender:
	// Peer = sending rank, A = bytes, B = messages.
	KindExchangePeer
	// Walker journey instants (sampled walkers only). A = vertex,
	// B = rejection trials (step events), Peer = destination rank
	// (migrate events).
	KindWalkerStep
	KindWalkerFinish
	KindWalkerTeleport
	KindWalkerPark
	KindWalkerYield
	KindWalkerMigrate
)

// Event is one fixed-size ring entry. Field meanings vary by Kind (see
// the Kind docs); unused fields are zero except Walker, Iter, and Peer,
// which use -1 for "not applicable".
type Event struct {
	TS     int64 // nanos since the collector's epoch (span start for spans)
	Dur    int64 // span duration in nanos, 0 for instants
	Walker int64 // walker ID for journey events, -1 otherwise
	A, B   int64 // kind-specific payload
	Iter   int32 // 1-based superstep, -1 when unknown (transport events)
	Step   int32 // walker step count for journey events
	Rank   int16
	Peer   int16 // peer rank for exchange-peer/migrate events, -1 otherwise
	Kind   Kind
}

// Defaults for Options.
const (
	DefaultCapacity    = 1 << 16
	DefaultSampleEvery = 64
)

// Options configures a Collector.
type Options struct {
	// Capacity is the ring size in events, rounded up to a power of two
	// (default DefaultCapacity). When full, the oldest events are
	// overwritten and counted as evicted.
	Capacity int
	// SampleEvery samples one in N walker journeys by ID (walker IDs
	// divisible by N; default DefaultSampleEvery, 1 traces every walker).
	SampleEvery int64
	// Ranks is the run's rank count, needed to know when every rank has
	// reported a superstep so its barrier can be attributed (default 1).
	Ranks int
	// Job labels the trace's process track (default "walk").
	Job string
	// NowNanos overrides the collector's clock (monotonic nanoseconds
	// since an arbitrary epoch). Tests inject a deterministic clock here;
	// the default reads the monotonic wall clock.
	NowNanos func() int64
}

// Collector is the ring-buffer trace collector. It implements
// core.Observer (superstep → phase spans), core.Tracer (sampled walker
// journeys), transport.Observer and transport.ExchangePeerObserver
// (exchange spans with peer attribution), so one value can serve as a
// run's Observer and Trace at once — internal/service wires it exactly
// that way — or hang off internal/obs.Registry via SetTrace.
type Collector struct {
	sampleEvery int64
	ranks       int
	job         string
	now         func() int64

	mu      sync.Mutex
	buf     []Event
	mask    uint64
	next    uint64 // total events ever recorded
	evicted uint64

	// Per-peer aggregation scratch for ObserveExchangePeers, grown once.
	peerBytes []int64
	peerMsgs  []int64

	// Critical-path aggregation: per in-flight superstep, the slowest
	// rank seen so far; folded into gates when every rank has reported.
	pending map[int32]*gatePending
	gates   []gateTotals
}

type gatePending struct {
	seen      int
	bestRank  int16
	bestNanos int64
}

type gateTotals struct {
	supersteps int
	nanos      int64
}

// New builds a collector; all ring storage is allocated here.
func New(opts Options) *Collector {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	// Round up to a power of two so the ring index is a mask.
	n := 1
	for n < capacity {
		n <<= 1
	}
	sample := opts.SampleEvery
	if sample <= 0 {
		sample = DefaultSampleEvery
	}
	ranks := opts.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	job := opts.Job
	if job == "" {
		job = "walk"
	}
	now := opts.NowNanos
	if now == nil {
		epoch := time.Now() //kk:nondet-ok trace timestamps are telemetry-only; never feed walk state
		now = func() int64 {
			return time.Since(epoch).Nanoseconds() //kk:nondet-ok trace timestamps are telemetry-only; never feed walk state
		}
	}
	return &Collector{
		sampleEvery: sample,
		ranks:       ranks,
		job:         job,
		now:         now,
		buf:         make([]Event, n),
		mask:        uint64(n - 1),
		pending:     make(map[int32]*gatePending, 4),
		gates:       make([]gateTotals, ranks),
	}
}

// Job returns the trace's job label.
func (c *Collector) Job() string { return c.job }

// put appends one event, overwriting the oldest when full. mu held.
//
//kk:hotpath
func (c *Collector) put(ev Event) {
	if c.next >= uint64(len(c.buf)) {
		c.evicted++
	}
	c.buf[c.next&c.mask] = ev
	c.next++
}

// Events returns a copy of the retained events in recording order plus
// the count of evicted (overwritten) older events.
func (c *Collector) Events() ([]Event, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.next
	if n > uint64(len(c.buf)) {
		n = uint64(len(c.buf))
	}
	out := make([]Event, n)
	start := c.next - n
	for i := uint64(0); i < n; i++ {
		out[i] = c.buf[(start+i)&c.mask]
	}
	return out, c.evicted
}

// OnSuperstep records one rank's superstep as a span tree: the superstep
// span, its phase children laid out sequentially, and — when stage times
// are present — the compute phase's gather/move/update stages scaled to
// its extent. Implements core.Observer.
func (c *Collector) OnSuperstep(span core.SuperstepSpan) {
	end := c.now()
	total := span.ComputeNanos + span.ExchangeNanos + span.BarrierNanos + span.CheckpointNanos
	start := end - total
	rank := int16(span.Rank)
	iter := int32(span.Iteration)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(Event{
		TS: start, Dur: total, Walker: -1, Peer: -1,
		A: int64(span.LocalWalkers), B: span.GlobalWalkers,
		Iter: iter, Rank: rank, Kind: KindSuperstep,
	})
	ts := start
	phase := func(kind Kind, dur int64) int64 {
		if dur <= 0 {
			return 0
		}
		pstart := ts
		c.put(Event{TS: pstart, Dur: dur, Walker: -1, Peer: -1, Iter: iter, Rank: rank, Kind: kind})
		ts += dur
		return pstart
	}
	computeStart := phase(KindPhaseCompute, span.ComputeNanos)
	if stageTotal := span.GatherNanos + span.MoveNanos + span.UpdateNanos; stageTotal > 0 && span.ComputeNanos > 0 {
		// Proportional layout inside the compute phase; A keeps the true
		// CPU-sum nanoseconds (can exceed the wall share on multi-worker
		// ranks).
		sts := computeStart
		stage := func(kind Kind, cpu int64) {
			if cpu <= 0 {
				return
			}
			dur := span.ComputeNanos * cpu / stageTotal
			c.put(Event{TS: sts, Dur: dur, Walker: -1, Peer: -1, A: cpu, Iter: iter, Rank: rank, Kind: kind})
			sts += dur
		}
		stage(KindStageGather, span.GatherNanos)
		stage(KindStageMove, span.MoveNanos)
		stage(KindStageUpdate, span.UpdateNanos)
	}
	phase(KindPhaseExchange, span.ExchangeNanos)
	phase(KindPhaseBarrier, span.BarrierNanos)
	phase(KindPhaseCheckpoint, span.CheckpointNanos)
	c.foldGateLocked(span)
}

// ObserveStepTrials implements core.Observer; trial distributions belong
// to obs.Registry's histograms, not the trace ring.
func (c *Collector) ObserveStepTrials(int64) {}

// ObserveQueryBatch implements core.Observer.
func (c *Collector) ObserveQueryBatch(int64) {}

// foldGateLocked feeds the critical-path aggregator: the rank that gated
// a superstep's barrier is the one with the largest owned pre-barrier
// work (compute + checkpoint; exchange time is mostly *waiting* on other
// ranks, so it measures the victims, not the straggler). mu held.
func (c *Collector) foldGateLocked(span core.SuperstepSpan) {
	owned := span.ComputeNanos + span.CheckpointNanos
	iter := int32(span.Iteration)
	p := c.pending[iter]
	if p == nil {
		p = &gatePending{bestRank: -1}
		c.pending[iter] = p
	}
	p.seen++
	if p.bestRank < 0 || owned > p.bestNanos {
		p.bestRank = int16(span.Rank)
		p.bestNanos = owned
	}
	if p.seen >= c.ranks {
		if int(p.bestRank) < len(c.gates) {
			c.gates[p.bestRank].supersteps++
			c.gates[p.bestRank].nanos += p.bestNanos
		}
		delete(c.pending, iter)
	}
}

// CriticalPath returns the per-rank barrier attribution so far, sorted by
// rank; ranks that never gated a barrier are omitted. Supersteps whose
// spans have not all arrived (or were emitted by fewer ranks than
// Options.Ranks) are not counted.
func (c *Collector) CriticalPath() []stats.RankGate {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []stats.RankGate
	for rank, g := range c.gates {
		if g.supersteps == 0 {
			continue
		}
		out = append(out, stats.RankGate{
			Rank:         rank,
			Supersteps:   g.supersteps,
			GatedSeconds: time.Duration(g.nanos).Seconds(),
		})
	}
	return out
}

// TraceWalker implements core.Tracer: walker id's journey is sampled iff
// id is divisible by SampleEvery — a pure function of the ID, so the
// sampled set is identical run-to-run for a given seed.
//
//kk:hotpath
func (c *Collector) TraceWalker(id int64) bool {
	return id%c.sampleEvery == 0
}

// OnWalkerEvent implements core.Tracer, recording one sampled walker's
// step decision as a journey instant.
//
//kk:hotpath
func (c *Collector) OnWalkerEvent(ev core.WalkerTraceEvent) {
	kind, ok := walkerKind(ev.Kind)
	if !ok {
		return
	}
	ts := c.now()
	c.mu.Lock()
	c.put(Event{
		TS: ts, Walker: ev.Walker, A: int64(ev.Vertex), B: int64(ev.Trials),
		Iter: int32(ev.Iteration), Step: ev.Step,
		Rank: int16(ev.Rank), Peer: int16(ev.Peer), Kind: kind,
	})
	c.mu.Unlock()
}

func walkerKind(k core.WalkerEventKind) (Kind, bool) {
	switch k {
	case core.WalkerStep:
		return KindWalkerStep, true
	case core.WalkerFinish:
		return KindWalkerFinish, true
	case core.WalkerTeleport:
		return KindWalkerTeleport, true
	case core.WalkerPark:
		return KindWalkerPark, true
	case core.WalkerYield:
		return KindWalkerYield, true
	case core.WalkerMigrate:
		return KindWalkerMigrate, true
	}
	return 0, false
}

// ObserveExchange implements transport.Observer; exchange latency
// histograms belong to obs.Registry.
func (c *Collector) ObserveExchange(time.Duration, int, int64) {}

// ObserveFramePayload implements transport.Observer.
func (c *Collector) ObserveFramePayload(int) {}

// ObserveExchangePeers implements transport.ExchangePeerObserver: one
// real wall-clock exchange span on the receiving rank's transport track,
// plus one attribution event per sending peer. The msgs slice is owned
// by the endpoint — everything needed is aggregated before returning.
func (c *Collector) ObserveExchangePeers(rank int, d time.Duration, msgs []transport.Message) {
	end := c.now()
	dn := d.Nanoseconds()

	c.mu.Lock()
	defer c.mu.Unlock()
	var bytes int64
	maxPeer := -1
	for _, m := range msgs {
		if m.From < 0 {
			continue
		}
		if m.From >= len(c.peerBytes) {
			grown := make([]int64, m.From+1)
			copy(grown, c.peerBytes)
			c.peerBytes = grown
			grown = make([]int64, m.From+1)
			copy(grown, c.peerMsgs)
			c.peerMsgs = grown
		}
		n := int64(len(m.Payload))
		c.peerBytes[m.From] += n
		c.peerMsgs[m.From]++
		bytes += n
		if m.From > maxPeer {
			maxPeer = m.From
		}
	}
	c.put(Event{
		TS: end - dn, Dur: dn, Walker: -1, Peer: -1, Iter: -1,
		A: bytes, B: int64(len(msgs)),
		Rank: int16(rank), Kind: KindExchange,
	})
	for p := 0; p <= maxPeer; p++ {
		if c.peerMsgs[p] == 0 {
			continue
		}
		c.put(Event{
			TS: end, Walker: -1, Iter: -1,
			A: c.peerBytes[p], B: c.peerMsgs[p],
			Rank: int16(rank), Peer: int16(p), Kind: KindExchangePeer,
		})
		c.peerBytes[p], c.peerMsgs[p] = 0, 0
	}
}

// Status summarizes the collector for /statusz.
type Status struct {
	Events      uint64           `json:"events"`
	Evicted     uint64           `json:"evicted"`
	Capacity    int              `json:"capacity"`
	SampleEvery int64            `json:"sample_every"`
	Critical    []stats.RankGate `json:"critical_path,omitempty"`
}

// StatusSnapshot returns the collector's current Status.
func (c *Collector) StatusSnapshot() Status {
	crit := c.CriticalPath()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Events:      c.next,
		Evicted:     c.evicted,
		Capacity:    len(c.buf),
		SampleEvery: c.sampleEvery,
		Critical:    crit,
	}
}
