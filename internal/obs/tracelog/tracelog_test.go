package tracelog

import (
	"sync"
	"testing"
	"time"

	"knightking/internal/core"
	"knightking/internal/transport"
)

// fakeClock returns a deterministic strictly increasing NowNanos.
func fakeClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

func TestRingRoundsCapacityAndEvicts(t *testing.T) {
	c := New(Options{Capacity: 5, SampleEvery: 1, NowNanos: fakeClock(10)})
	if got := len(c.buf); got != 8 {
		t.Fatalf("capacity 5 rounded to %d, want 8", got)
	}
	for i := 0; i < 11; i++ {
		c.OnWalkerEvent(core.WalkerTraceEvent{Walker: int64(i), Kind: core.WalkerStep, Trials: 1})
	}
	events, evicted := c.Events()
	if evicted != 3 {
		t.Fatalf("evicted = %d, want 3", evicted)
	}
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	// Oldest three overwritten: retained walkers are 3..10 in order.
	for i, ev := range events {
		if ev.Walker != int64(i+3) {
			t.Fatalf("event %d is walker %d, want %d", i, ev.Walker, i+3)
		}
	}
	st := c.StatusSnapshot()
	if st.Events != 11 || st.Evicted != 3 || st.Capacity != 8 {
		t.Fatalf("status = %+v", st)
	}
}

func TestSamplingIsPureFunctionOfID(t *testing.T) {
	c := New(Options{SampleEvery: 64})
	for _, id := range []int64{0, 64, 128, 640000} {
		if !c.TraceWalker(id) {
			t.Errorf("walker %d should be sampled", id)
		}
	}
	for _, id := range []int64{1, 63, 65, 100} {
		if c.TraceWalker(id) {
			t.Errorf("walker %d should not be sampled", id)
		}
	}
	// SampleEvery 1 traces everything.
	all := New(Options{SampleEvery: 1})
	for id := int64(0); id < 10; id++ {
		if !all.TraceWalker(id) {
			t.Errorf("sample-every-1 skipped walker %d", id)
		}
	}
}

// TestCriticalPathAttribution feeds two ranks' spans and checks the
// barrier is attributed to the rank with the most owned (compute +
// checkpoint) work, and that incomplete supersteps are not counted.
func TestCriticalPathAttribution(t *testing.T) {
	c := New(Options{Ranks: 2, NowNanos: fakeClock(1000)})

	// Superstep 1: rank 1 is the straggler (3ms vs 1ms compute).
	c.OnSuperstep(core.SuperstepSpan{Rank: 0, Iteration: 1, ComputeNanos: 1e6, ExchangeNanos: 2e6})
	c.OnSuperstep(core.SuperstepSpan{Rank: 1, Iteration: 1, ComputeNanos: 3e6})
	// Superstep 2: rank 0 gates via checkpoint work.
	c.OnSuperstep(core.SuperstepSpan{Rank: 0, Iteration: 2, ComputeNanos: 1e6, CheckpointNanos: 5e6})
	c.OnSuperstep(core.SuperstepSpan{Rank: 1, Iteration: 2, ComputeNanos: 2e6})
	// Superstep 3: only rank 0 has reported — must not be attributed yet.
	c.OnSuperstep(core.SuperstepSpan{Rank: 0, Iteration: 3, ComputeNanos: 9e6})

	cp := c.CriticalPath()
	if len(cp) != 2 {
		t.Fatalf("critical path has %d ranks, want 2: %+v", len(cp), cp)
	}
	if cp[0].Rank != 0 || cp[0].Supersteps != 1 {
		t.Errorf("rank 0 gate = %+v, want 1 superstep", cp[0])
	}
	if cp[1].Rank != 1 || cp[1].Supersteps != 1 {
		t.Errorf("rank 1 gate = %+v, want 1 superstep", cp[1])
	}
	if want := 6e6 / 1e9; cp[0].GatedSeconds != want {
		t.Errorf("rank 0 gated %v s, want %v", cp[0].GatedSeconds, want)
	}
}

func TestExchangePeerAttribution(t *testing.T) {
	c := New(Options{NowNanos: fakeClock(1000)})
	c.ObserveExchangePeers(2, 5*time.Microsecond, []transport.Message{
		{From: 0, Payload: make([]byte, 100)},
		{From: 1, Payload: make([]byte, 50)},
		{From: 0, Payload: make([]byte, 25)},
		{From: -1, Payload: make([]byte, 999)}, // no sender: counted in total only
	})
	events, _ := c.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want exchange + 2 peers: %+v", len(events), events)
	}
	ex := events[0]
	if ex.Kind != KindExchange || ex.Rank != 2 || ex.A != 175 || ex.B != 4 || ex.Dur != 5000 {
		t.Errorf("exchange event = %+v", ex)
	}
	if p0 := events[1]; p0.Kind != KindExchangePeer || p0.Peer != 0 || p0.A != 125 || p0.B != 2 {
		t.Errorf("peer 0 event = %+v", p0)
	}
	if p1 := events[2]; p1.Kind != KindExchangePeer || p1.Peer != 1 || p1.A != 50 || p1.B != 1 {
		t.Errorf("peer 1 event = %+v", p1)
	}
	// Scratch must be zeroed for the next exchange.
	c.ObserveExchangePeers(2, time.Microsecond, []transport.Message{{From: 1, Payload: make([]byte, 7)}})
	events, _ = c.Events()
	if p := events[len(events)-1]; p.A != 7 || p.B != 1 {
		t.Errorf("second exchange peer event leaked scratch: %+v", p)
	}
}

// TestConcurrentRanksRaceClean hammers every hook from concurrent
// goroutines (as the engine's rank loops and workers do) while a reader
// exports; run under -race in CI. Correctness here is just "no race, no
// panic, counts add up".
func TestConcurrentRanksRaceClean(t *testing.T) {
	c := New(Options{Capacity: 1 << 10, SampleEvery: 1, Ranks: 4})
	const perRank = 200
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 1; i <= perRank; i++ {
				c.OnSuperstep(core.SuperstepSpan{
					Rank: rank, Iteration: i,
					ComputeNanos: int64(1000 * (rank + 1)), ExchangeNanos: 500,
				})
				c.OnWalkerEvent(core.WalkerTraceEvent{
					Rank: rank, Iteration: i, Walker: int64(rank),
					Kind: core.WalkerStep, Vertex: 7, Step: int32(i), Trials: 2, Peer: -1,
				})
				c.ObserveExchangePeers(rank, time.Microsecond, []transport.Message{
					{From: (rank + 1) % 4, Payload: []byte{1, 2, 3}},
				})
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c.Events()
			c.CriticalPath()
			c.StatusSnapshot()
		}
	}()
	wg.Wait()
	<-done

	st := c.StatusSnapshot()
	// Each rank iteration puts >= 4 events (superstep + >=1 phase +
	// walker + exchange + peer).
	if min := uint64(4 * perRank * 4); st.Events < min {
		t.Fatalf("recorded %d events, want >= %d", st.Events, min)
	}
	cp := c.CriticalPath()
	total := 0
	for _, g := range cp {
		total += g.Supersteps
	}
	if total != perRank {
		t.Fatalf("critical path covers %d supersteps, want %d: %+v", total, perRank, cp)
	}
	// Rank 3 always has the largest compute, so it gates every barrier.
	if len(cp) != 1 || cp[0].Rank != 3 {
		t.Fatalf("expected rank 3 to gate all barriers: %+v", cp)
	}
}

// TestDefaultClockMonotonic exercises the wall-clock default (all other
// tests inject): timestamps must be non-decreasing.
func TestDefaultClockMonotonic(t *testing.T) {
	c := New(Options{SampleEvery: 1})
	for i := 0; i < 10; i++ {
		c.OnWalkerEvent(core.WalkerTraceEvent{Walker: int64(i), Kind: core.WalkerStep})
	}
	events, _ := c.Events()
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("timestamps regressed: %d after %d", events[i].TS, events[i-1].TS)
		}
	}
}
