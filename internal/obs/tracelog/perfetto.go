// Chrome trace-event / Perfetto JSON export of the trace ring.
//
// Track model (Perfetto's process → thread → slice-stack hierarchy):
//
//	pid 1 "job <name>"
//	  tid 2r   "rank r"            run → superstep → phase → stage spans
//	  tid 2r+1 "rank r transport"  real exchange spans + per-peer instants
//	pid 2 "sampled walkers"
//	  tid k    "walker <id>"       journey instants (step/migrate/...)
//
// Spans are emitted as matched B/E pairs; journeys and peer attributions
// as "i" instants. Timestamps are microseconds from the collector's
// epoch; each track's stream is clamped monotonic and children are
// clamped inside their parents, so the output always nests cleanly even
// if clock jitter put a measured child a hair outside its parent. The
// final stream is a stable sort of all tracks by timestamp: globally
// monotonic, per-track order preserved.
package tracelog

import (
	"encoding/json"
	"io"
	"sort"
)

// traceEvent is one Chrome trace-event record. Field order (and the
// typed Args structs below) keep the encoding deterministic so golden
// tests can pin it.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
	Args any     `json:"args,omitempty"`
}

type metaArgs struct {
	Name string `json:"name"`
}

type superstepArgs struct {
	LocalWalkers  int64 `json:"local_walkers"`
	GlobalWalkers int64 `json:"global_walkers"`
}

type stageArgs struct {
	CPUNs int64 `json:"cpu_ns"`
}

type exchangeArgs struct {
	Bytes int64 `json:"bytes"`
	Msgs  int64 `json:"msgs"`
}

type peerArgs struct {
	From  int   `json:"from"`
	Bytes int64 `json:"bytes"`
	Msgs  int64 `json:"msgs"`
}

type walkerArgs struct {
	Walker    int64 `json:"walker"`
	Vertex    int64 `json:"vertex"`
	Step      int32 `json:"step"`
	Superstep int32 `json:"superstep"`
	Rank      int16 `json:"rank"`
	Trials    int64 `json:"trials,omitempty"`
}

type migrateArgs struct {
	Walker    int64 `json:"walker"`
	Vertex    int64 `json:"vertex"`
	Step      int32 `json:"step"`
	Superstep int32 `json:"superstep"`
	Rank      int16 `json:"rank"`
	ToRank    int16 `json:"to_rank"`
}

// perfettoTrace is the exported document.
type perfettoTrace struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       perfettoOtherData `json:"otherData"`
}

type perfettoOtherData struct {
	Job     string `json:"job"`
	Evicted uint64 `json:"evicted"`
}

const (
	pidJob     = 1
	pidWalkers = 2
)

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// spanDepth returns a kind's depth in the rank track's span hierarchy,
// or -1 for kinds that do not live there.
func spanDepth(k Kind) int {
	switch k {
	case KindSuperstep:
		return 1 // depth 0 is the per-rank run span
	case KindPhaseCompute, KindPhaseExchange, KindPhaseBarrier, KindPhaseCheckpoint:
		return 2
	case KindStageGather, KindStageMove, KindStageUpdate:
		return 3
	}
	return -1
}

func kindName(k Kind) string {
	switch k {
	case KindPhaseCompute:
		return "compute"
	case KindPhaseExchange:
		return "exchange"
	case KindPhaseBarrier:
		return "barrier"
	case KindPhaseCheckpoint:
		return "checkpoint"
	case KindStageGather:
		return "gather"
	case KindStageMove:
		return "move"
	case KindStageUpdate:
		return "update"
	case KindWalkerStep:
		return "step"
	case KindWalkerFinish:
		return "finish"
	case KindWalkerTeleport:
		return "teleport"
	case KindWalkerPark:
		return "park"
	case KindWalkerYield:
		return "yield"
	case KindWalkerMigrate:
		return "migrate"
	}
	return "?"
}

// trackBuilder emits one (pid, tid) stream with a span stack, clamping
// children inside parents and the whole stream monotonic.
type trackBuilder struct {
	pid, tid int
	out      *[]traceEvent
	last     int64 // last emitted ts (ns)
	stack    []openSpan
}

type openSpan struct {
	name  string
	end   int64
	depth int
}

func (t *trackBuilder) emit(name, ph string, ns int64, args any) {
	if ns < t.last {
		ns = t.last
	}
	t.last = ns
	*t.out = append(*t.out, traceEvent{Name: name, Ph: ph, TS: usec(ns), Pid: t.pid, Tid: t.tid, Args: args})
}

func (t *trackBuilder) instant(name string, ns int64, args any) {
	if ns < t.last {
		ns = t.last
	}
	t.last = ns
	*t.out = append(*t.out, traceEvent{Name: name, Ph: "i", TS: usec(ns), Pid: t.pid, Tid: t.tid, S: "t", Args: args})
}

// closeTo pops (emitting E) every open span at depth >= depth.
func (t *trackBuilder) closeTo(depth int) {
	for len(t.stack) > 0 && t.stack[len(t.stack)-1].depth >= depth {
		top := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.emit(top.name, "E", top.end, nil)
	}
}

// span opens a [start, start+dur) span at the given depth, first closing
// anything at that depth or deeper, and clamping the new span inside the
// surviving parent.
func (t *trackBuilder) span(name string, depth int, start, dur int64, args any) {
	t.closeTo(depth)
	end := start + dur
	if len(t.stack) > 0 {
		if p := t.stack[len(t.stack)-1]; end > p.end {
			end = p.end
		}
	}
	t.emit(name, "B", start, args)
	if end < t.last {
		end = t.last
	}
	t.stack = append(t.stack, openSpan{name: name, end: end, depth: depth})
}

// WritePerfetto renders the ring as Chrome trace-event / Perfetto JSON.
// Safe to call at any time, including mid-run.
func (c *Collector) WritePerfetto(w io.Writer) error {
	events, evicted := c.Events()

	// Pass 1: discover the tracks in use.
	rankSet := map[int16]bool{}      // ranks with superstep spans
	transportSet := map[int16]bool{} // ranks with exchange events
	walkerSet := map[int64]bool{}
	runLo := map[int16]int64{} // per-rank span extent for the run span
	runHi := map[int16]int64{}
	for _, ev := range events {
		switch {
		case spanDepth(ev.Kind) >= 0:
			rankSet[ev.Rank] = true
			if lo, ok := runLo[ev.Rank]; !ok || ev.TS < lo {
				runLo[ev.Rank] = ev.TS
			}
			if hi, ok := runHi[ev.Rank]; !ok || ev.TS+ev.Dur > hi {
				runHi[ev.Rank] = ev.TS + ev.Dur
			}
		case ev.Kind == KindExchange || ev.Kind == KindExchangePeer:
			transportSet[ev.Rank] = true
		case ev.Walker >= 0:
			walkerSet[ev.Walker] = true
		}
	}
	ranks := sortedInt16(rankSet)
	transports := sortedInt16(transportSet)
	walkers := make([]int64, 0, len(walkerSet))
	for id := range walkerSet {
		walkers = append(walkers, id)
	}
	sort.Slice(walkers, func(i, j int) bool { return walkers[i] < walkers[j] })
	walkerTid := make(map[int64]int, len(walkers))
	for i, id := range walkers {
		walkerTid[id] = i
	}

	out := make([]traceEvent, 0, 2*len(events)+8)

	// Metadata: process and thread names, pinned at ts 0 before the sort.
	meta := func(name string, pid, tid int, label string) {
		out = append(out, traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: metaArgs{Name: label}})
	}
	meta("process_name", pidJob, 0, "job "+c.job)
	for _, r := range ranks {
		meta("thread_name", pidJob, int(r)*2, itoa(int(r), "rank ", ""))
	}
	for _, r := range transports {
		meta("thread_name", pidJob, int(r)*2+1, itoa(int(r), "rank ", " transport"))
	}
	if len(walkers) > 0 {
		meta("process_name", pidWalkers, 0, "sampled walkers")
		for _, id := range walkers {
			meta("thread_name", pidWalkers, walkerTid[id], itoa(int(id), "walker ", ""))
		}
	}

	// Pass 2: per-track emission in ring order (which is chronological
	// within a track: each rank's loop goroutine emits its own spans in
	// order, and a walker is stepped by one goroutine at a time).
	rankTrack := map[int16]*trackBuilder{}
	for _, r := range ranks {
		tb := &trackBuilder{pid: pidJob, tid: int(r) * 2, out: &out}
		tb.span("run "+c.job, 0, runLo[r], runHi[r]-runLo[r], nil)
		rankTrack[r] = tb
	}
	transportTrack := map[int16]*trackBuilder{}
	for _, r := range transports {
		transportTrack[r] = &trackBuilder{pid: pidJob, tid: int(r)*2 + 1, out: &out}
	}
	walkerTrack := map[int64]*trackBuilder{}
	for _, id := range walkers {
		walkerTrack[id] = &trackBuilder{pid: pidWalkers, tid: walkerTid[id], out: &out}
	}

	for _, ev := range events {
		switch {
		case ev.Kind == KindSuperstep:
			rankTrack[ev.Rank].span(itoa(int(ev.Iter), "superstep ", ""), 1, ev.TS, ev.Dur,
				superstepArgs{LocalWalkers: ev.A, GlobalWalkers: ev.B})
		case spanDepth(ev.Kind) == 2:
			rankTrack[ev.Rank].span(kindName(ev.Kind), 2, ev.TS, ev.Dur, nil)
		case spanDepth(ev.Kind) == 3:
			rankTrack[ev.Rank].span(kindName(ev.Kind), 3, ev.TS, ev.Dur, stageArgs{CPUNs: ev.A})
		case ev.Kind == KindExchange:
			tb := transportTrack[ev.Rank]
			tb.span("exchange", 0, ev.TS, ev.Dur, exchangeArgs{Bytes: ev.A, Msgs: ev.B})
			tb.closeTo(0)
		case ev.Kind == KindExchangePeer:
			transportTrack[ev.Rank].instant(itoa(int(ev.Peer), "recv rank ", ""), ev.TS,
				peerArgs{From: int(ev.Peer), Bytes: ev.A, Msgs: ev.B})
		case ev.Walker >= 0:
			tb := walkerTrack[ev.Walker]
			if ev.Kind == KindWalkerMigrate {
				tb.instant(kindName(ev.Kind), ev.TS, migrateArgs{
					Walker: ev.Walker, Vertex: ev.A, Step: ev.Step,
					Superstep: ev.Iter, Rank: ev.Rank, ToRank: ev.Peer,
				})
			} else {
				tb.instant(kindName(ev.Kind), ev.TS, walkerArgs{
					Walker: ev.Walker, Vertex: ev.A, Step: ev.Step,
					Superstep: ev.Iter, Rank: ev.Rank, Trials: ev.B,
				})
			}
		}
	}
	for _, r := range ranks {
		rankTrack[r].closeTo(0)
	}
	for _, r := range transports {
		transportTrack[r].closeTo(0)
	}

	// Stable sort by timestamp: per-track order (already monotonic and
	// nesting-correct) is preserved on ties, so B/E pairs stay matched
	// per (pid, tid) while the global stream becomes monotonic.
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	enc := json.NewEncoder(w)
	return enc.Encode(perfettoTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       perfettoOtherData{Job: c.job, Evicted: evicted},
	})
}

func sortedInt16(set map[int16]bool) []int16 {
	out := make([]int16, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// itoa formats prefix+n+suffix without fmt (keeps the exporter light).
func itoa(n int, prefix, suffix string) string {
	if n < 0 {
		return prefix + "-" + uitoa(uint(-n)) + suffix
	}
	return prefix + uitoa(uint(n)) + suffix
}

func uitoa(n uint) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
