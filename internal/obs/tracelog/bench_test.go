package tracelog

import (
	"io"
	"testing"
	"time"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/transport"
)

// BenchmarkEngineDeepWalk4NodesTraced mirrors core's
// BenchmarkEngineDeepWalk4Nodes with full causal tracing attached
// (collector as Observer + Tracer, default 1/64 journey sampling), so the
// enabled-tracing overhead is a direct A/B against that benchmark's
// numbers. Disabled-tracing overhead is pinned separately: the alloc
// guards and benchmarks in internal/core run with Config.Trace nil and
// their ceilings are unchanged by this PR.
func BenchmarkEngineDeepWalk4NodesTraced(b *testing.B) {
	g := gen.TruncatedPowerLaw(5000, 4, 500, 2.0, 1)
	a := alg.DeepWalk(20, false)
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := New(Options{Ranks: 4, Job: "bench"})
		res, err := core.Run(core.Config{
			Graph:     g,
			Algorithm: a,
			NumNodes:  4,
			Seed:      uint64(i + 1),
			Observer:  tc,
			Trace:     tc,
		})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Counters.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkEngineDeepWalk4NodesTraceOnly attaches only the Tracer hook
// (journey sampling, no Observer): it isolates the engine-side cost of
// tracing itself. The gap between this and the full Traced benchmark is
// the transport observer's serialization of local deliveries — the same
// cost any telemetry attachment (obs.Registry included) already pays.
func BenchmarkEngineDeepWalk4NodesTraceOnly(b *testing.B) {
	g := gen.TruncatedPowerLaw(5000, 4, 500, 2.0, 1)
	a := alg.DeepWalk(20, false)
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := New(Options{Ranks: 4, Job: "bench"})
		res, err := core.Run(core.Config{
			Graph:     g,
			Algorithm: a,
			NumNodes:  4,
			Seed:      uint64(i + 1),
			Trace:     tc,
		})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Counters.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkRingPut measures the per-event cost of the hot ring insert
// (a sampled walker step): one mutex round trip and a struct store.
func BenchmarkRingPut(b *testing.B) {
	c := New(Options{SampleEvery: 1})
	ev := core.WalkerTraceEvent{Rank: 1, Iteration: 3, Walker: 64, Kind: core.WalkerStep, Vertex: 9, Step: 4, Trials: 2, Peer: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.OnWalkerEvent(ev)
	}
}

// BenchmarkExchangePeers measures the transport-side hook with an 8-peer
// message batch.
func BenchmarkExchangePeers(b *testing.B) {
	c := New(Options{Ranks: 8})
	msgs := make([]transport.Message, 64)
	for i := range msgs {
		msgs[i] = transport.Message{From: i % 8, Payload: make([]byte, 128)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ObserveExchangePeers(0, 100*time.Microsecond, msgs)
	}
}

// BenchmarkWritePerfetto measures a full export of a saturated
// default-capacity ring.
func BenchmarkWritePerfetto(b *testing.B) {
	c := New(Options{Capacity: 1 << 14, SampleEvery: 1, Ranks: 4})
	for i := 1; len(c.buf) > int(c.next); i++ {
		for rank := 0; rank < 4; rank++ {
			c.OnSuperstep(core.SuperstepSpan{
				Rank: rank, Iteration: i, LocalWalkers: 10, GlobalWalkers: 40,
				ComputeNanos: 1e6, ExchangeNanos: 2e5, BarrierNanos: 1e5,
				GatherNanos: 4e5, MoveNanos: 4e5, UpdateNanos: 2e5,
			})
		}
		c.OnWalkerEvent(core.WalkerTraceEvent{Rank: 0, Iteration: i, Walker: 0, Kind: core.WalkerStep, Vertex: 1, Step: int32(i), Trials: 1, Peer: -1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WritePerfetto(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
