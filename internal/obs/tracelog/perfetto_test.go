package tracelog

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"knightking/internal/core"
	"knightking/internal/transport"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenCollector records a small fixed trace with an injected clock, so
// the Perfetto encoding is byte-deterministic.
func goldenCollector() *Collector {
	c := New(Options{Capacity: 64, SampleEvery: 1, Ranks: 2, Job: "golden", NowNanos: fakeClock(1_000_000)})

	// Sampled walker journey on rank 0: step, migrate to rank 1, finish.
	c.OnWalkerEvent(core.WalkerTraceEvent{Rank: 0, Iteration: 1, Walker: 64, Kind: core.WalkerStep, Vertex: 9, Step: 1, Trials: 3, Peer: -1})
	c.OnWalkerEvent(core.WalkerTraceEvent{Rank: 0, Iteration: 1, Walker: 64, Kind: core.WalkerMigrate, Vertex: 40, Step: 1, Peer: 1})
	c.OnWalkerEvent(core.WalkerTraceEvent{Rank: 1, Iteration: 2, Walker: 64, Kind: core.WalkerFinish, Vertex: 40, Step: 2, Peer: -1})

	// One transport exchange on rank 0 with two sending peers.
	c.ObserveExchangePeers(0, 500*time.Microsecond, []transport.Message{
		{From: 1, Payload: make([]byte, 64)},
		{From: 1, Payload: make([]byte, 36)},
	})

	// Two ranks' superstep spans with phase and stage breakdowns.
	c.OnSuperstep(core.SuperstepSpan{
		Rank: 0, Iteration: 1, LocalWalkers: 10, GlobalWalkers: 20,
		ComputeNanos: 2_000_000, ExchangeNanos: 500_000, BarrierNanos: 100_000,
		GatherNanos: 800_000, MoveNanos: 800_000, UpdateNanos: 400_000,
	})
	c.OnSuperstep(core.SuperstepSpan{
		Rank: 1, Iteration: 1, LocalWalkers: 10, GlobalWalkers: 20,
		ComputeNanos: 3_000_000, ExchangeNanos: 200_000, BarrierNanos: 50_000,
	})
	c.OnSuperstep(core.SuperstepSpan{
		Rank: 0, Iteration: 2, LocalWalkers: 4, GlobalWalkers: 8,
		ComputeNanos: 1_000_000, ExchangeNanos: 300_000, CheckpointNanos: 700_000,
	})
	c.OnSuperstep(core.SuperstepSpan{
		Rank: 1, Iteration: 2, LocalWalkers: 4, GlobalWalkers: 8,
		ComputeNanos: 900_000, ExchangeNanos: 400_000,
	})
	return c
}

// TestPerfettoGolden pins the exact Perfetto JSON encoding. Regenerate
// with `go test ./internal/obs/tracelog -run Golden -update-golden` after
// an intentional format change.
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	got := buf.Bytes()
	validatePerfetto(t, got)

	path := filepath.Join("testdata", "trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("perfetto output diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPerfettoStructureUnderEviction exports a ring that wrapped (span
// events evicted mid-tree) and requires the output to still be
// structurally valid — eviction may drop whole spans but never orphan a
// B or E.
func TestPerfettoStructureUnderEviction(t *testing.T) {
	c := New(Options{Capacity: 16, SampleEvery: 1, Ranks: 2, NowNanos: fakeClock(1_000_000)})
	for i := 1; i <= 8; i++ {
		for rank := 0; rank < 2; rank++ {
			c.OnSuperstep(core.SuperstepSpan{
				Rank: rank, Iteration: i, LocalWalkers: 1, GlobalWalkers: 2,
				ComputeNanos: 1_000_000, ExchangeNanos: 200_000, BarrierNanos: 100_000,
			})
		}
		c.OnWalkerEvent(core.WalkerTraceEvent{Rank: 0, Iteration: i, Walker: 0, Kind: core.WalkerStep, Vertex: 1, Step: int32(i), Trials: 1, Peer: -1})
	}
	var buf bytes.Buffer
	if err := c.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	_, evicted := c.Events()
	if evicted == 0 {
		t.Fatal("test wants a wrapped ring; grow the event count")
	}
	validatePerfetto(t, buf.Bytes())
}

// validatePerfetto decodes data and checks the trace-event invariants
// Perfetto's importer needs: valid JSON, globally monotonic timestamps,
// matched B/E pairs per (pid, tid) with LIFO nesting, instants carrying
// scope "t", and the expected track metadata.
func validatePerfetto(t *testing.T, data []byte) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			S    string          `json:"s"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Job string `json:"job"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	last := -1.0
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	sawMeta := false
	for i, ev := range doc.TraceEvents {
		if ev.TS < last {
			t.Fatalf("event %d (%s %s) ts %v regressed below %v", i, ev.Ph, ev.Name, ev.TS, last)
		}
		last = ev.TS
		k := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			sawMeta = true
		case "B":
			stacks[k] = append(stacks[k], ev.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q on track %+v with no open span", i, ev.Name, k)
			}
			if top := st[len(st)-1]; top != ev.Name {
				t.Fatalf("event %d: E %q does not match open span %q on track %+v", i, ev.Name, top, k)
			}
			stacks[k] = st[:len(st)-1]
		case "i":
			if ev.S != "t" {
				t.Errorf("event %d: instant %q scope = %q, want t", i, ev.Name, ev.S)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if !sawMeta {
		t.Error("no metadata events (process/thread names)")
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Errorf("track %+v left spans open: %v", k, st)
		}
	}
}
