package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"knightking/internal/alg"
	"knightking/internal/checkpoint"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func node2vecConfig(g *graph.Graph) core.Config {
	return core.Config{
		Graph: g,
		Algorithm: alg.Node2Vec(alg.Node2VecParams{
			P: 2, Q: 0.5, Length: 24, LowerBound: true, FoldOutlier: true,
		}),
		NumNodes:    3,
		Workers:     2,
		Seed:        7,
		RecordPaths: true,
	}
}

// TestTelemetryDoesNotChangeWalkOutput runs the same multi-rank node2vec
// walk with telemetry off and on and requires bit-identical paths: the
// observer must never touch a walker's RNG stream.
func TestTelemetryDoesNotChangeWalkOutput(t *testing.T) {
	g := gen.UniformDegree(120, 6, 3)

	base, err := core.Run(node2vecConfig(g))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	reg := NewRegistry(nil)
	var spanBuf bytes.Buffer
	reg.SetSpanWriter(&spanBuf)
	cfg := node2vecConfig(g)
	cfg.Counters = reg.Counters()
	cfg.Observer = reg
	observed, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("observed run: %v", err)
	}

	if len(base.Paths) != len(observed.Paths) {
		t.Fatalf("path count %d != %d", len(base.Paths), len(observed.Paths))
	}
	for w := range base.Paths {
		a, b := base.Paths[w], observed.Paths[w]
		if len(a) != len(b) {
			t.Fatalf("walker %d: length %d != %d", w, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("walker %d diverged at step %d: %d != %d", w, i, a[i], b[i])
			}
		}
	}
	if base.Iterations != observed.Iterations {
		t.Errorf("iterations %d != %d", base.Iterations, observed.Iterations)
	}

	// Every rank must have emitted a span for every superstep.
	spans := reg.Spans()
	want := 3 * observed.Iterations
	if len(spans) != want {
		t.Fatalf("got %d spans, want %d (3 ranks x %d supersteps)", len(spans), want, observed.Iterations)
	}
	seen := make(map[[2]int]bool, want)
	for _, s := range spans {
		if s.Rank < 0 || s.Rank >= 3 || s.Iteration < 1 || s.Iteration > observed.Iterations {
			t.Fatalf("span out of range: %+v", s)
		}
		key := [2]int{s.Rank, s.Iteration}
		if seen[key] {
			t.Fatalf("duplicate span for rank %d superstep %d", s.Rank, s.Iteration)
		}
		seen[key] = true
		if s.ComputeNanos < 0 || s.ExchangeNanos < 0 || s.BarrierNanos < 0 || s.CheckpointNanos < 0 {
			t.Fatalf("negative phase duration: %+v", s)
		}
	}

	// The span writer stream must be valid JSONL, one object per span.
	sc := bufio.NewScanner(&spanBuf)
	var lines int
	for sc.Scan() {
		var s core.SuperstepSpan
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("span line %d not JSON: %v: %s", lines+1, err, sc.Text())
		}
		lines++
	}
	if lines != want {
		t.Errorf("span writer wrote %d lines, want %d", lines, want)
	}

	// The engine histograms the walk exercises must be non-empty.
	for _, h := range []*Histogram{reg.TrialsPerStep, reg.QueryBatch, reg.FramePayload, reg.ExchangeLatency} {
		if h.Snapshot().Count == 0 {
			t.Errorf("histogram %s is empty", h.Name())
		}
	}
	// Trials-per-step observations approximate the step counter.
	ts := reg.TrialsPerStep.Snapshot()
	if steps := observed.Counters.Steps; ts.Count < steps/2 || ts.Count > steps {
		t.Errorf("trials_per_step count %d vs %d steps", ts.Count, steps)
	}
	if skew := reg.StragglerSkew(); skew < 1 {
		t.Errorf("straggler skew = %v, want >= 1", skew)
	}
}

// TestCheckpointTelemetry wires the registry's segment hook into a
// checkpointed run and requires the checkpoint histograms and span
// checkpoint phases to light up.
func TestCheckpointTelemetry(t *testing.T) {
	g := gen.UniformDegree(100, 6, 5)
	reg := NewRegistry(nil)

	store, err := checkpoint.NewStore(t.TempDir(), 4, checkpoint.Meta{
		Seed: 7, NumWalkers: 100, NumVertices: 100, Algorithm: "node2vec",
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	store.Observe = reg.ObserveCheckpointSegment

	cfg := node2vecConfig(g)
	cfg.Counters = reg.Counters()
	cfg.Observer = reg
	cfg.Checkpoint = store
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Counters.Checkpoints == 0 {
		t.Fatal("run committed no checkpoints; lower the interval")
	}

	cb := reg.CheckpointBytes.Snapshot()
	if cb.Count == 0 || cb.Sum != res.Counters.CheckpointBytes {
		t.Errorf("checkpoint_segment_bytes count=%d sum=%d, counters say %d bytes",
			cb.Count, cb.Sum, res.Counters.CheckpointBytes)
	}
	if reg.CheckpointWrite.Snapshot().Count != cb.Count {
		t.Errorf("checkpoint_write_ns count %d != segment count %d",
			reg.CheckpointWrite.Snapshot().Count, cb.Count)
	}
	var ckptSpans int
	for _, s := range reg.Spans() {
		if s.CheckpointNanos > 0 {
			ckptSpans++
		}
	}
	if ckptSpans == 0 {
		t.Error("no span recorded a checkpoint phase")
	}

	// The registry report fields survive the round trip into stats.Report.
	rep := fmt.Sprintf("%v", reg.StragglerSkew())
	if rep == "0" {
		t.Error("straggler skew missing after checkpointed run")
	}
}
