package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the optional HTTP admin endpoint of a run (kkwalk
// -admin-addr). It serves:
//
//	/metrics      Prometheus text exposition of counters, gauges, histograms
//	/statusz      JSON snapshot of the live superstep/walker/light-mode state
//	/trace        Perfetto JSON of the causal trace (404 without SetTrace)
//	/debug/pprof  the standard Go profiler endpoints
//	/             a plain-text index of the above
//
// The server reads the registry through the same snapshot paths the
// report uses, so scraping mid-run is safe (per-field consistent) and
// cannot perturb the walk.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// NewServer starts an admin server on addr (host:port; use port 0 for an
// ephemeral port, Addr reports the bound one). The listener is open and
// serving when NewServer returns, so a scrape racing engine startup sees
// zeroed metrics rather than a connection error.
func NewServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "knightking admin\n\n/metrics\n/statusz\n/trace\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteMetrics(w, reg); err != nil {
			// Headers are gone; all we can do is drop the connection so the
			// scraper sees a partial body rather than a silent truncation.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		c := reg.Trace()
		if c == nil {
			http.Error(w, "tracing is not enabled for this run (kkwalk -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := c.WritePerfetto(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		reg: reg,
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //kk:goro-ok joined out of band: Shutdown/Close stop the http.Server and Serve returns
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// DefaultShutdownTimeout bounds Shutdown's graceful drain.
const DefaultShutdownTimeout = 5 * time.Second

// Shutdown stops accepting new connections and waits for in-flight
// requests (a /metrics scrape racing process exit, a long /trace export)
// to complete, up to timeout (DefaultShutdownTimeout when non-positive).
// Connections still open after the deadline are dropped.
func (s *Server) Shutdown(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = DefaultShutdownTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return s.srv.Close()
	}
	return err
}

// Close stops the server immediately; in-flight scrapes are dropped.
// Prefer Shutdown on orderly exits.
func (s *Server) Close() error { return s.srv.Close() }
