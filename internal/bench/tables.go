package bench

import (
	"fmt"

	"knightking/internal/alg"
	"knightking/internal/baseline"
	"knightking/internal/gen"
	"knightking/internal/stats"
)

func init() {
	register("table1", "node2vec sampling overhead: full scan vs rejection (paper Table 1)", Table1)
	register("table3", "overall performance, unweighted graphs (paper Table 3)", Table3)
	register("table4", "overall performance, weighted graphs (paper Table 4)", Table4)
	register("table5a", "lower-bound optimization across node2vec hyper-parameters (paper Table 5a)", Table5a)
	register("table5b", "outlier + lower-bound optimizations at p=0.5, q=2 (paper Table 5b)", Table5b)
}

// Table1Row is one graph's sampling-overhead comparison.
type Table1Row struct {
	Graph            string
	DegreeMean       float64
	DegreeVariance   float64
	FullScanPerStep  float64
	RejectionPerStep float64
}

// Table1Data runs the Table 1 comparison and returns the rows.
func Table1Data(o Options) ([]Table1Row, error) {
	o = o.defaults()
	specs := Standins()
	var rows []Table1Row
	// The paper's Table 1 compares Friendster (mild skew) vs Twitter
	// (heavy skew) under node2vec with p=2, q=0.5.
	for _, spec := range []GraphSpec{specs[1], specs[2]} {
		g := spec.Build(o, o.Seed)
		st := g.Stats()

		base, err := runBaseline(g, baseline.Config{
			Graph:    g,
			Seed:     o.Seed,
			MaxSteps: o.walkLength(),
			Dynamic:  baseline.Node2VecDynamic(2, 0.5),
		}, 0.05)
		if err != nil {
			return nil, err
		}
		kk, err := runKK(g, alg.Node2Vec(alg.Node2VecParams{
			P: 2, Q: 0.5, Length: o.walkLength(), LowerBound: true, FoldOutlier: true,
		}), g.NumVertices(), o.Nodes, o.Seed, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Graph:            spec.Name,
			DegreeMean:       st.Mean,
			DegreeVariance:   st.Variance,
			FullScanPerStep:  base.EdgesPerStep,
			RejectionPerStep: kk.EdgesPerStep,
		})
	}
	return rows, nil
}

// Table1 prints the Table 1 reproduction.
func Table1(o Options) error {
	o = o.defaults()
	rows, err := Table1Data(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("graph", "deg-mean", "deg-var", "full-scan edges/step", "knightking edges/step")
	for _, r := range rows {
		t.AddRow(r.Graph, r.DegreeMean, fmt.Sprintf("%.3g", r.DegreeVariance),
			r.FullScanPerStep, r.RejectionPerStep)
	}
	return t.Write(o.Out)
}

// OverallRow is one (algorithm, graph) cell of Tables 3/4.
type OverallRow struct {
	Algorithm    string
	Graph        string
	BaselineSec  float64
	KnightSec    float64
	Speedup      float64
	Extrapolated bool
	R2           float64
}

// overallData runs the Table 3/4 grid, weighted or not.
func overallData(o Options, weighted bool) ([]OverallRow, error) {
	o = o.defaults()
	length := o.walkLength()
	var rows []OverallRow
	for _, spec := range Standins() {
		g := spec.Build(o, o.Seed)
		if weighted {
			g = gen.WithUniformWeights(g, 1, 5, o.Seed+9)
		}
		for _, w := range evaluationWorkloads(o, o.Seed) {
			wg := prepareGraph(g, w, o.Seed+11)

			bcfg := w.Baseline(length, weighted)
			bcfg.Graph = wg
			bcfg.Seed = o.Seed
			bm, err := runBaseline(wg, bcfg, w.BaselineFraction)
			if err != nil {
				return nil, fmt.Errorf("%s/%s baseline: %w", w.Name, spec.Name, err)
			}

			km, err := runKK(wg, w.KK(length, weighted), wg.NumVertices(), o.Nodes, o.Seed, true)
			if err != nil {
				return nil, fmt.Errorf("%s/%s knightking: %w", w.Name, spec.Name, err)
			}
			rows = append(rows, OverallRow{
				Algorithm:    w.Name,
				Graph:        spec.Name,
				BaselineSec:  bm.Seconds,
				KnightSec:    km.Seconds,
				Speedup:      bm.Seconds / km.Seconds,
				Extrapolated: bm.Extrapolated,
				R2:           bm.R2,
			})
		}
	}
	return rows, nil
}

func printOverall(o Options, rows []OverallRow) error {
	t := stats.NewTable("algorithm", "graph", "baseline(s)", "knightking(s)", "speedup")
	for _, r := range rows {
		mark := ""
		if r.Extrapolated {
			mark = "*"
		}
		t.AddRow(r.Algorithm, r.Graph,
			fmt.Sprintf("%.2f%s", r.BaselineSec, mark),
			fmt.Sprintf("%.2f", r.KnightSec),
			fmt.Sprintf("%.2f%s", r.Speedup, mark))
	}
	if err := t.Write(o.Out); err != nil {
		return err
	}
	minR2 := 1.0
	for _, r := range rows {
		if r.Extrapolated && r.R2 < minR2 {
			minR2 = r.R2
		}
	}
	_, err := fmt.Fprintf(o.Out,
		"* baseline estimated from walker samples by linear regression (paper §7.1 methodology); min R² = %.4f\n",
		minR2)
	return err
}

// Table3Data returns the unweighted overall-performance grid.
func Table3Data(o Options) ([]OverallRow, error) { return overallData(o, false) }

// Table3 prints the Table 3 reproduction.
func Table3(o Options) error {
	o = o.defaults()
	rows, err := Table3Data(o)
	if err != nil {
		return err
	}
	return printOverall(o, rows)
}

// Table4Data returns the weighted overall-performance grid.
func Table4Data(o Options) ([]OverallRow, error) { return overallData(o, true) }

// Table4 prints the Table 4 reproduction.
func Table4(o Options) error {
	o = o.defaults()
	rows, err := Table4Data(o)
	if err != nil {
		return err
	}
	return printOverall(o, rows)
}

// Table5aRow is one hyper-parameter column of Table 5a.
type Table5aRow struct {
	P, Q              float64
	NaiveSec          float64
	LowerSec          float64
	NaiveEdgesPerStep float64
	LowerEdgesPerStep float64
}

// Table5aData measures the lower-bound optimization across the paper's
// three (p, q) settings on the Twitter stand-in (unbiased node2vec).
func Table5aData(o Options) ([]Table5aRow, error) {
	o = o.defaults()
	g := twitterLike(o, o.Seed)
	length := o.walkLength()
	var rows []Table5aRow
	for _, pq := range [][2]float64{{2, 0.5}, {0.5, 2}, {1, 1}} {
		run := func(lower bool) (metrics, error) {
			return runKK(g, alg.Node2Vec(alg.Node2VecParams{
				P: pq[0], Q: pq[1], Length: length, LowerBound: lower,
			}), g.NumVertices(), o.Nodes, o.Seed, true)
		}
		naive, err := run(false)
		if err != nil {
			return nil, err
		}
		lower, err := run(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5aRow{
			P: pq[0], Q: pq[1],
			NaiveSec: naive.Seconds, LowerSec: lower.Seconds,
			NaiveEdgesPerStep: naive.EdgesPerStep, LowerEdgesPerStep: lower.EdgesPerStep,
		})
	}
	return rows, nil
}

// Table5a prints the Table 5a reproduction.
func Table5a(o Options) error {
	o = o.defaults()
	rows, err := Table5aData(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("metric", "p=2 q=0.5", "p=0.5 q=2", "p=1 q=1")
	row := func(name string, pick func(Table5aRow) float64) {
		t.AddRow(name, pick(rows[0]), pick(rows[1]), pick(rows[2]))
	}
	row("exec time (s), naive", func(r Table5aRow) float64 { return r.NaiveSec })
	row("exec time (s), lower bound", func(r Table5aRow) float64 { return r.LowerSec })
	row("edges/step, naive", func(r Table5aRow) float64 { return r.NaiveEdgesPerStep })
	row("edges/step, lower bound", func(r Table5aRow) float64 { return r.LowerEdgesPerStep })
	return t.Write(o.Out)
}

// Table5bRow is one optimization variant of Table 5b.
type Table5bRow struct {
	Variant      string
	Seconds      float64
	EdgesPerStep float64
}

// Table5bData measures the four optimization combinations at the paper's
// hardest setting p=0.5, q=2 (single tall return-edge bar).
func Table5bData(o Options) ([]Table5bRow, error) {
	o = o.defaults()
	g := twitterLike(o, o.Seed)
	length := o.walkLength()
	variants := []struct {
		name           string
		lower, outlier bool
	}{
		{"naive", false, false},
		{"lower bound (L)", true, false},
		{"outlier (O)", false, true},
		{"L+O", true, true},
	}
	var rows []Table5bRow
	for _, v := range variants {
		m, err := runKK(g, alg.Node2Vec(alg.Node2VecParams{
			P: 0.5, Q: 2, Length: length,
			LowerBound: v.lower, FoldOutlier: v.outlier,
		}), g.NumVertices(), o.Nodes, o.Seed, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5bRow{Variant: v.name, Seconds: m.Seconds, EdgesPerStep: m.EdgesPerStep})
	}
	return rows, nil
}

// Table5b prints the Table 5b reproduction.
func Table5b(o Options) error {
	o = o.defaults()
	rows, err := Table5bData(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("variant", "exec time (s)", "edges/step")
	for _, r := range rows {
		t.AddRow(r.Variant, r.Seconds, r.EdgesPerStep)
	}
	return t.Write(o.Out)
}
