package bench

import (
	"net"
	"sync"
	"time"

	"knightking/internal/alg"
	"knightking/internal/cluster"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/stats"
	"knightking/internal/transport"
)

func init() {
	register("abl-sampler", "ablation: alias vs ITS static sampling (paper §3 tradeoff)", AblSampler)
	register("abl-partition", "ablation: 1-D partition balance weight alpha (paper §6.1)", AblPartition)
	register("abl-fallback", "ablation: rejection-to-full-scan fallback threshold", AblFallback)
	register("abl-transport", "ablation: in-process exchange vs real TCP loopback", AblTransport)
}

// AblSamplerRow compares the two static sampling structures for one
// algorithm.
type AblSamplerRow struct {
	Algorithm string
	Kind      string
	SetupSec  float64
	WalkSec   float64
}

// AblSamplerData measures alias vs ITS on a weighted skewed graph, for a
// static walk (sampler on the hot path every step) and for biased
// node2vec (sampler draws rejection candidates). The paper picks alias
// (O(1) draws, same O(n) build); ITS pays O(log n) per draw.
func AblSamplerData(o Options) ([]AblSamplerRow, error) {
	o = o.defaults()
	g := gen.WithUniformWeights(twitterLike(o, o.Seed), 1, 5, o.Seed+1)
	length := o.walkLength()
	var rows []AblSamplerRow
	for _, kind := range []string{"alias", "its"} {
		for _, a := range []struct {
			name string
			make func() *core.Algorithm
		}{
			{"DeepWalk(biased)", func() *core.Algorithm { return alg.DeepWalk(length, true) }},
			{"node2vec(biased)", func() *core.Algorithm {
				return alg.Node2Vec(alg.Node2VecParams{
					P: 2, Q: 0.5, Length: length, Biased: true,
					LowerBound: true, FoldOutlier: true,
				})
			}},
		} {
			res, err := core.Run(core.Config{
				Graph:       g,
				Algorithm:   a.make(),
				NumNodes:    o.Nodes,
				Seed:        o.Seed,
				SamplerKind: kind,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblSamplerRow{
				Algorithm: a.name,
				Kind:      kind,
				SetupSec:  res.SetupDuration.Seconds(),
				WalkSec:   res.Duration.Seconds(),
			})
		}
	}
	return rows, nil
}

// AblSampler prints the sampler ablation.
func AblSampler(o Options) error {
	o = o.defaults()
	rows, err := AblSamplerData(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("algorithm", "sampler", "setup(s)", "walk(s)")
	for _, r := range rows {
		t.AddRow(r.Algorithm, r.Kind, r.SetupSec, r.WalkSec)
	}
	return t.Write(o.Out)
}

// AblPartitionRow reports balance and runtime under one alpha.
type AblPartitionRow struct {
	Alpha float64
	// MaxOverMean is max node load / mean node load under the |V|,|E|
	// estimate with this alpha (1.0 = perfectly balanced).
	MaxOverMean float64
	WalkSec     float64
}

// AblPartitionData sweeps the partitioner's vertex-vs-edge weight alpha on
// a skewed graph: very small alpha balances edges only, very large alpha
// balances vertex counts only; the paper's default weighs them equally.
func AblPartitionData(o Options) ([]AblPartitionRow, error) {
	o = o.defaults()
	g := twitterLike(o, o.Seed)
	length := o.walkLength()
	var rows []AblPartitionRow
	for _, alpha := range []float64{0.01, 1, 100} {
		part := cluster.Partition1D(g, o.Nodes, alpha)
		var maxLoad, total float64
		for rank := 0; rank < o.Nodes; rank++ {
			// Evaluate balance under the paper's canonical alpha=1 load
			// estimate regardless of the alpha used for splitting.
			load := part.LoadEstimate(g, rank, 1)
			total += load
			if load > maxLoad {
				maxLoad = load
			}
		}
		start := time.Now()
		_, err := core.Run(core.Config{
			Graph:          g,
			Algorithm:      alg.DeepWalk(length, false),
			NumNodes:       o.Nodes,
			Seed:           o.Seed,
			PartitionAlpha: alpha,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblPartitionRow{
			Alpha:       alpha,
			MaxOverMean: maxLoad / (total / float64(o.Nodes)),
			WalkSec:     time.Since(start).Seconds(),
		})
	}
	return rows, nil
}

// AblPartition prints the partitioner ablation.
func AblPartition(o Options) error {
	o = o.defaults()
	rows, err := AblPartitionData(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("alpha", "max/mean load", "walk(s)")
	for _, r := range rows {
		t.AddRow(r.Alpha, r.MaxOverMean, r.WalkSec)
	}
	return t.Write(o.Out)
}

// AblFallbackRow reports one fallback-threshold setting.
type AblFallbackRow struct {
	Threshold    int
	WalkSec      float64
	EdgesPerStep float64
}

// AblFallbackData sweeps the rejection-to-full-scan fallback threshold on
// a meta-path workload with rare edge types (low acceptance mass), where
// too high a threshold wastes darts and too low degrades to the baseline's
// full scans.
func AblFallbackData(o Options) ([]AblFallbackRow, error) {
	o = o.defaults()
	g := gen.WithTypes(twitterLike(o, o.Seed), 12, o.Seed+3) // rare types
	schemes := metaPathSchemes(12, 6, 4, o.Seed+4)
	length := o.walkLength()
	var rows []AblFallbackRow
	for _, threshold := range []int{2, 16, 64, 512} {
		a := alg.MetaPath(schemes, length, false)
		a.FallbackTrials = threshold
		start := time.Now()
		res, err := core.Run(core.Config{
			Graph:     g,
			Algorithm: a,
			NumNodes:  o.Nodes,
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblFallbackRow{
			Threshold:    threshold,
			WalkSec:      time.Since(start).Seconds(),
			EdgesPerStep: res.Counters.EdgesPerStep(),
		})
	}
	return rows, nil
}

// AblFallback prints the fallback ablation.
func AblFallback(o Options) error {
	o = o.defaults()
	rows, err := AblFallbackData(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("fallback threshold", "walk(s)", "edges/step")
	for _, r := range rows {
		t.AddRow(r.Threshold, r.WalkSec, r.EdgesPerStep)
	}
	return t.Write(o.Out)
}

// AblTransportRow compares transports for one algorithm.
type AblTransportRow struct {
	Algorithm string
	Transport string
	WalkSec   float64
	Messages  int64
	MegaBytes float64
}

// AblTransportData runs the same walks over the in-process exchange and
// over real TCP loopback, quantifying the wire cost the simulated cluster
// hides. Walk results are identical by construction (the engine is
// transport-agnostic); only time and bytes differ.
func AblTransportData(o Options) ([]AblTransportRow, error) {
	o = o.defaults()
	g := twitterLike(o, o.Seed)
	length := o.walkLength()
	algs := []struct {
		name string
		make func() *core.Algorithm
	}{
		{"DeepWalk", func() *core.Algorithm { return alg.DeepWalk(length, false) }},
		{"node2vec", func() *core.Algorithm {
			return alg.Node2Vec(alg.Node2VecParams{
				P: 2, Q: 0.5, Length: length, LowerBound: true, FoldOutlier: true,
			})
		}},
	}
	var rows []AblTransportRow
	for _, a := range algs {
		for _, kind := range []string{"inproc", "tcp"} {
			cfg := core.Config{
				Graph:     g,
				Algorithm: a.make(),
				NumNodes:  o.Nodes,
				Seed:      o.Seed,
			}
			if kind == "tcp" {
				eps, err := tcpLoopbackGroup(o.Nodes)
				if err != nil {
					return nil, err
				}
				cfg.Endpoints = eps
				defer closeAll(eps)
			}
			start := time.Now()
			res, err := core.Run(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblTransportRow{
				Algorithm: a.name,
				Transport: kind,
				WalkSec:   time.Since(start).Seconds(),
				Messages:  res.Counters.Messages,
				MegaBytes: float64(res.Counters.BytesSent) / 1e6,
			})
		}
	}
	return rows, nil
}

// AblTransport prints the transport ablation.
func AblTransport(o Options) error {
	o = o.defaults()
	rows, err := AblTransportData(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("algorithm", "transport", "walk(s)", "messages", "payload MB")
	for _, r := range rows {
		t.AddRow(r.Algorithm, r.Transport, r.WalkSec, r.Messages, r.MegaBytes)
	}
	return t.Write(o.Out)
}

// tcpLoopbackGroup brings up an n-rank TCP mesh on 127.0.0.1.
func tcpLoopbackGroup(n int) ([]transport.Endpoint, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		lns = append(lns, ln)
	}
	for _, ln := range lns {
		ln.Close()
	}
	eps := make([]transport.Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = transport.DialTCPGroup(i, addrs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			closeAll(eps)
			return nil, err
		}
	}
	return eps, nil
}

func closeAll(eps []transport.Endpoint) {
	for _, ep := range eps {
		if ep != nil {
			ep.Close()
		}
	}
}
