package bench

import (
	"time"

	"knightking/internal/alg"
	"knightking/internal/baseline"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/rng"
)

// metrics is the common measurement record for one system × workload cell.
type metrics struct {
	Seconds       float64
	EdgesPerStep  float64
	TrialsPerStep float64
	Steps         int64
	Iterations    int
	// Extrapolated marks baseline cells measured on walker samples and
	// extended by linear regression, the paper's own methodology for its
	// slowest cells (§7.1: 1%–6% of walkers, R² ≥ 0.9998).
	Extrapolated bool
	// R2 is the regression's coefficient of determination (1 when not
	// extrapolated).
	R2 float64
}

// fitLinear fits y = intercept + slope·x by least squares and returns the
// coefficients with R².
func fitLinear(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("bench: fitLinear needs >= 2 matched points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("bench: degenerate regression (identical x values)")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (intercept + slope*xs[i])
		ssRes += d * d
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// runKK executes one KnightKing walk and returns its metrics.
func runKK(g *graph.Graph, a *core.Algorithm, walkers, nodes int, seed uint64, light bool) (metrics, error) {
	lt := -1
	if light {
		lt = core.DefaultLightThreshold
	}
	start := time.Now()
	res, err := core.Run(core.Config{
		Graph:          g,
		Algorithm:      a,
		NumNodes:       nodes,
		NumWalkers:     walkers,
		Seed:           seed,
		LightThreshold: lt,
	})
	if err != nil {
		return metrics{}, err
	}
	return metrics{
		Seconds:       time.Since(start).Seconds(),
		EdgesPerStep:  res.Counters.EdgesPerStep(),
		TrialsPerStep: res.Counters.TrialsPerStep(),
		Steps:         res.Counters.Steps,
		Iterations:    res.Iterations,
	}, nil
}

// runBaseline executes one full-scan baseline walk. When fraction < 1 the
// walk is measured at three walker sample sizes and the full-population
// time estimated by linear regression, the paper's §7.1 methodology
// (computation scales linearly with the walker count; the paper's
// regressions report R² >= 0.9998).
func runBaseline(g *graph.Graph, cfg baseline.Config, fraction float64) (metrics, error) {
	full := g.NumVertices()
	if fraction <= 0 || fraction >= 1 {
		cfg.NumWalkers = full
		start := time.Now()
		res, err := baseline.Run(cfg)
		if err != nil {
			return metrics{}, err
		}
		return metrics{
			Seconds:       time.Since(start).Seconds(),
			EdgesPerStep:  res.Counters.EdgesPerStep(),
			TrialsPerStep: res.Counters.TrialsPerStep(),
			Steps:         res.Counters.Steps,
			R2:            1,
		}, nil
	}

	base := int(float64(full) * fraction)
	if base < 64 {
		base = 64
	}
	samples := []int{base / 2, (3 * base) / 4, base}
	xs := make([]float64, 0, len(samples))
	ys := make([]float64, 0, len(samples))
	var last metrics
	for i, walkers := range samples {
		if walkers < 32 {
			walkers = 32
		}
		c := cfg
		c.NumWalkers = walkers
		c.Seed = cfg.Seed + uint64(i) // independent walker samples
		start := time.Now()
		res, err := baseline.Run(c)
		if err != nil {
			return metrics{}, err
		}
		xs = append(xs, float64(walkers))
		ys = append(ys, time.Since(start).Seconds())
		last = metrics{
			EdgesPerStep:  res.Counters.EdgesPerStep(),
			TrialsPerStep: res.Counters.TrialsPerStep(),
			Steps:         res.Counters.Steps,
		}
	}
	if ys[len(ys)-1] < 0.05 {
		// Samples this fast are dominated by timer noise; extrapolation is
		// both unnecessary (the full run is cheap) and unreliable. Measure
		// the full population directly instead.
		return runBaseline(g, cfg, 1)
	}
	slope, intercept, r2 := fitLinear(xs, ys)
	last.Seconds = intercept + slope*float64(full)
	if last.Seconds < ys[len(ys)-1] {
		// Regression noise must not estimate below the largest observed
		// sample's time.
		last.Seconds = ys[len(ys)-1] * float64(full) / xs[len(xs)-1]
	}
	last.Extrapolated = true
	last.R2 = r2
	return last, nil
}

// workload describes one of the evaluation's four algorithms as both a
// KnightKing program and a baseline configuration.
type workload struct {
	Name string
	// NeedsTypes marks meta-path (the graph must carry edge types).
	NeedsTypes bool
	// KK builds the engine algorithm.
	KK func(length int, biased bool) *core.Algorithm
	// Baseline builds the full-scan configuration (Graph/NumWalkers are
	// filled by the caller).
	Baseline func(length int, biased bool) baseline.Config
	// BaselineFraction samples walkers for slow full-scan cells (1 = all).
	BaselineFraction float64
}

// metaPathSchemes builds the paper's meta-path setup: numTypes edge types
// and numSchemes cyclic schemes of the given length, deterministically
// from the seed.
func metaPathSchemes(numTypes, numSchemes, schemeLen int, seed uint64) [][]int32 {
	r := rng.New(seed)
	schemes := make([][]int32, numSchemes)
	for i := range schemes {
		s := make([]int32, schemeLen)
		for j := range s {
			s[j] = int32(r.Intn(numTypes))
		}
		schemes[i] = s
	}
	return schemes
}

// evaluationWorkloads returns the paper's four algorithms (§7.1): DeepWalk
// and PPR (static), Meta-path (dynamic first-order), node2vec (dynamic
// second-order). baseFraction tunes sampling for the dynamic baselines.
func evaluationWorkloads(o Options, seed uint64) []workload {
	schemes := metaPathSchemes(5, 10, 5, seed+77)
	dynFraction := 0.05
	if o.Quick {
		dynFraction = 0.25
	}
	return []workload{
		{
			Name: "DeepWalk",
			KK:   alg.DeepWalk,
			Baseline: func(length int, biased bool) baseline.Config {
				return baseline.Config{MaxSteps: length, Biased: biased, MirrorNodes: o.Nodes}
			},
			BaselineFraction: 1,
		},
		{
			Name: "PPR",
			KK: func(length int, biased bool) *core.Algorithm {
				return alg.PPR(1.0/float64(length), biased, 0)
			},
			Baseline: func(length int, biased bool) baseline.Config {
				return baseline.Config{TerminationProb: 1.0 / float64(length), Biased: biased, MirrorNodes: o.Nodes}
			},
			BaselineFraction: 1,
		},
		{
			Name:       "Meta-path",
			NeedsTypes: true,
			KK: func(length int, biased bool) *core.Algorithm {
				return alg.MetaPath(schemes, length, biased)
			},
			Baseline: func(length int, biased bool) baseline.Config {
				return baseline.Config{
					MaxSteps: length,
					Biased:   biased,
					Dynamic:  baseline.MetaPathDynamic(schemes),
					InitTag: func(id int64, r *rng.Rand) int32 {
						return int32(r.Uint64n(uint64(len(schemes))))
					},
				}
			},
			BaselineFraction: dynFraction,
		},
		{
			Name: "node2vec",
			KK: func(length int, biased bool) *core.Algorithm {
				return alg.Node2Vec(alg.Node2VecParams{
					P: 2, Q: 0.5, Length: length, Biased: biased,
					LowerBound: true, FoldOutlier: true,
				})
			},
			Baseline: func(length int, biased bool) baseline.Config {
				return baseline.Config{
					MaxSteps: length,
					Biased:   biased,
					Dynamic:  baseline.Node2VecDynamic(2, 0.5),
				}
			},
			BaselineFraction: dynFraction,
		},
	}
}

// prepareGraph adds edge types for meta-path workloads (5 types, as in
// the paper's setup).
func prepareGraph(g *graph.Graph, w workload, seed uint64) *graph.Graph {
	if w.NeedsTypes && !g.Typed() {
		return gen.WithTypes(g, 5, seed)
	}
	return g
}
