package bench

import (
	"bytes"
	"strings"
	"testing"

	"knightking/internal/baseline"
)

// quickOpts returns tiny-workload options for smoke-level correctness.
func quickOpts() Options {
	return Options{Quick: true, Scale: 0.25, Seed: 7, Nodes: 2}.defaults()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl-fallback", "abl-partition", "abl-sampler", "abl-transport",
		"fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9",
		"table1", "table3", "table4", "table5a", "table5b",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, ok := Lookup("table3"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1Data(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// The Twitter stand-in must be more skewed than Friendster's, and the
	// full-scan cost must track the skew while rejection stays small.
	friend, twitter := rows[0], rows[1]
	if twitter.DegreeVariance <= friend.DegreeVariance {
		t.Fatalf("twitter variance %v <= friendster %v", twitter.DegreeVariance, friend.DegreeVariance)
	}
	for _, r := range rows {
		if r.FullScanPerStep <= r.RejectionPerStep {
			t.Fatalf("%s: full scan %v not worse than rejection %v", r.Graph, r.FullScanPerStep, r.RejectionPerStep)
		}
		if r.RejectionPerStep > 3 {
			t.Fatalf("%s: rejection edges/step %v too high", r.Graph, r.RejectionPerStep)
		}
	}
	if twitter.FullScanPerStep <= friend.FullScanPerStep {
		t.Fatalf("full-scan cost did not grow with skew: %v vs %v",
			twitter.FullScanPerStep, friend.FullScanPerStep)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3Data(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 algorithms × 4 graphs
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaselineSec <= 0 || r.KnightSec <= 0 {
			t.Fatalf("%s/%s has non-positive time", r.Algorithm, r.Graph)
		}
	}
	// Dynamic algorithms on the skewed graphs must show the decisive wins.
	for _, r := range rows {
		if r.Algorithm == "node2vec" && (r.Graph == "Twitter" || r.Graph == "UK-Union") {
			if r.Speedup < 1 {
				t.Fatalf("node2vec on %s: speedup %v < 1", r.Graph, r.Speedup)
			}
		}
	}
}

func TestTable5aShape(t *testing.T) {
	rows, err := Table5aData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.LowerEdgesPerStep > r.NaiveEdgesPerStep {
			t.Fatalf("p=%v q=%v: lower bound increased edges/step (%v > %v)",
				r.P, r.Q, r.LowerEdgesPerStep, r.NaiveEdgesPerStep)
		}
	}
	// p=1, q=1 with lower bound: zero Pd evaluations (paper's 0.00 cell).
	if last := rows[2]; last.LowerEdgesPerStep != 0 {
		t.Fatalf("p=1 q=1 lower-bound edges/step = %v, want 0", last.LowerEdgesPerStep)
	}
	// p=0.5, q=2 is the most expensive naive setting.
	if rows[1].NaiveEdgesPerStep <= rows[0].NaiveEdgesPerStep {
		t.Fatalf("outlier-shaped setting not the worst: %v vs %v",
			rows[1].NaiveEdgesPerStep, rows[0].NaiveEdgesPerStep)
	}
}

func TestTable5bShape(t *testing.T) {
	rows, err := Table5bData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Table5bRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	naive := byName["naive"].EdgesPerStep
	both := byName["L+O"].EdgesPerStep
	if both >= naive {
		t.Fatalf("L+O edges/step %v not better than naive %v", both, naive)
	}
	if byName["outlier (O)"].EdgesPerStep >= naive {
		t.Fatalf("outlier folding did not reduce edges/step")
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5Data(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("only %d iterations", len(rows))
	}
	bfsEnd := bfsIters(rows)
	if bfsEnd == 0 || bfsEnd >= len(rows) {
		t.Fatalf("BFS iterations %d vs walk %d: tail claim not visible", bfsEnd, len(rows))
	}
	// The walk tail must be longer and thinner: active counts past the BFS
	// end must be positive but small relative to the peak.
	var peak int64
	for _, r := range rows {
		if r.WalkActive > peak {
			peak = r.WalkActive
		}
	}
	tail := rows[len(rows)*3/4].WalkActive
	if tail >= peak/2 {
		t.Fatalf("tail %d not thin relative to peak %d", tail, peak)
	}
}

func TestFig6aShape(t *testing.T) {
	rows, err := Fig6aData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Full scan grows roughly linearly with degree; rejection flat.
	degRatio := last.X / first.X
	scanRatio := last.FullScanPerStep / first.FullScanPerStep
	if scanRatio < 0.5*degRatio {
		t.Fatalf("full-scan growth %v does not track degree growth %v", scanRatio, degRatio)
	}
	for _, r := range rows {
		if r.RejectionPerStep > 3 {
			t.Fatalf("rejection edges/step %v not constant-ish at degree %v", r.RejectionPerStep, r.X)
		}
	}
}

func TestFig6bShape(t *testing.T) {
	rows, err := Fig6bData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.FullScanPerStep <= first.FullScanPerStep {
		t.Fatal("full-scan cost did not grow with the degree cap")
	}
	// The paper's point: overhead grows far faster than the mean degree.
	meanRatio := last.AvgDegree / first.AvgDegree
	scanRatio := last.FullScanPerStep / first.FullScanPerStep
	if scanRatio < meanRatio {
		t.Fatalf("overhead ratio %v did not exceed mean-degree ratio %v", scanRatio, meanRatio)
	}
	for _, r := range rows {
		if r.RejectionPerStep > 3 {
			t.Fatalf("rejection not flat: %v at cap %v", r.RejectionPerStep, r.X)
		}
	}
}

func TestFig6cShape(t *testing.T) {
	rows, err := Fig6cData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.FullScanPerStep <= first.FullScanPerStep {
		t.Fatalf("hotspots did not increase full-scan cost: %v vs %v",
			first.FullScanPerStep, last.FullScanPerStep)
	}
	for _, r := range rows {
		if r.RejectionPerStep > 3 {
			t.Fatalf("rejection not flat with hotspots: %v", r.RejectionPerStep)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7Data(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].NormalizedToOne != 1 {
		t.Fatalf("first row not normalized to 1: %v", rows[0].NormalizedToOne)
	}
	for _, r := range rows {
		if r.BaselineRatio <= 0 {
			t.Fatalf("nonpositive baseline ratio at %d nodes", r.Nodes)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8Data(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 dists × 2 weights in quick mode
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Decoupling keeps trials/step low; mixing inflates it, and more
		// so at higher max weight.
		if r.MixedTrials <= r.DecoupledTrials {
			t.Fatalf("%s maxW=%v: mixed trials %v not worse than decoupled %v",
				r.WeightDist, r.MaxWeight, r.MixedTrials, r.DecoupledTrials)
		}
	}
	// Mixed cost grows with max weight within each distribution.
	if rows[1].MixedTrials <= rows[0].MixedTrials {
		t.Fatalf("mixed trials did not grow with max weight: %v vs %v",
			rows[0].MixedTrials, rows[1].MixedTrials)
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9Data(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 algorithms × 3 graphs
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaseSec <= 0 || r.LightSec <= 0 {
			t.Fatalf("%s/%s nonpositive times", r.Algorithm, r.Graph)
		}
	}
}

func TestExperimentsPrintOutput(t *testing.T) {
	// Every driver must produce non-empty tabular output and no error.
	for _, e := range Experiments() {
		var buf bytes.Buffer
		o := quickOpts()
		o.Out = &buf
		if err := e.Run(o); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if !strings.Contains(out, "-") || len(strings.Split(out, "\n")) < 3 {
			t.Fatalf("%s produced no table:\n%s", e.ID, out)
		}
	}
}

func TestAblSamplerShape(t *testing.T) {
	rows, err := AblSamplerData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 kinds × 2 algorithms
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WalkSec <= 0 {
			t.Fatalf("%s/%s nonpositive walk time", r.Algorithm, r.Kind)
		}
	}
}

func TestAblPartitionShape(t *testing.T) {
	rows, err := AblPartitionData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's alpha=1 choice must balance the canonical load estimate
	// at least as well as the extreme settings.
	balanced := rows[1].MaxOverMean
	for _, r := range rows {
		if r.MaxOverMean < 1-1e-9 {
			t.Fatalf("alpha=%v: max/mean %v below 1", r.Alpha, r.MaxOverMean)
		}
		if balanced > r.MaxOverMean+1e-9 && r.Alpha != 1 {
			t.Fatalf("alpha=1 (%v) worse balanced than alpha=%v (%v)",
				balanced, r.Alpha, r.MaxOverMean)
		}
	}
}

func TestAblFallbackShape(t *testing.T) {
	rows, err := AblFallbackData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// A tiny threshold degrades toward full scans: edges/step must be
	// higher at threshold 2 than at 64.
	if rows[0].EdgesPerStep <= rows[2].EdgesPerStep {
		t.Fatalf("threshold 2 edges/step %v not above threshold 64's %v",
			rows[0].EdgesPerStep, rows[2].EdgesPerStep)
	}
}

func TestAblTransportShape(t *testing.T) {
	rows, err := AblTransportData(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 algorithms × 2 transports
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.WalkSec <= 0 || r.Messages <= 0 {
			t.Fatalf("%s/%s missing measurements: %+v", r.Algorithm, r.Transport, r)
		}
	}
}

func TestFitLinear(t *testing.T) {
	// Perfect line: y = 2 + 3x.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 8, 11, 14}
	slope, intercept, r2 := fitLinear(xs, ys)
	if slope < 2.99 || slope > 3.01 || intercept < 1.99 || intercept > 2.01 {
		t.Fatalf("fit = %v + %v·x", intercept, slope)
	}
	if r2 < 0.9999 {
		t.Fatalf("R² = %v for a perfect line", r2)
	}
	// Noisy but still linear-ish.
	ys2 := []float64{5.2, 7.9, 11.3, 13.8}
	_, _, r2n := fitLinear(xs, ys2)
	if r2n <= 0.9 || r2n >= 1 {
		t.Fatalf("noisy R² = %v", r2n)
	}
}

func TestFitLinearPanics(t *testing.T) {
	for _, c := range [][2][]float64{
		{{1}, {2}},
		{{1, 1}, {2, 3}},
		{{1, 2}, {1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fitLinear(%v, %v) did not panic", c[0], c[1])
				}
			}()
			fitLinear(c[0], c[1])
		}()
	}
}

func TestRunBaselineRegressionProducesR2(t *testing.T) {
	o := quickOpts()
	g := twitterLike(o, o.Seed)
	m, err := runBaseline(g, baseline.Config{
		Graph:    g,
		Seed:     1,
		MaxSteps: 5,
		Dynamic:  baseline.Node2VecDynamic(2, 0.5),
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seconds <= 0 {
		t.Fatalf("estimated seconds %v", m.Seconds)
	}
	if m.R2 > 1.0001 {
		t.Fatalf("R² = %v", m.R2)
	}
	if !m.Extrapolated && m.R2 != 1 {
		// Sub-50ms samples legitimately fall back to a direct full run;
		// that path must report R² = 1.
		t.Fatalf("direct run reported R² = %v", m.R2)
	}
}
