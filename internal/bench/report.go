package bench

import (
	"fmt"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/obs"
	"knightking/internal/stats"
)

// Report runs the standard telemetry workload — node2vec over a truncated
// power-law graph, the paper's hardest sampling case — with the full
// observability stack wired in, and prints the end-of-run stats.Report as
// one JSON line. `make bench-record` captures this line into BENCH_*.json
// so perf PRs can diff the machine-independent fields (edges/step,
// trials/step, pre-accept ratio, straggler skew) alongside the ns/op
// benchmarks.
func Report(o Options) error {
	o = o.defaults()
	n := o.scaled(20000)
	g := gen.TruncatedPowerLaw(n, 2, n/10, 2.1, o.Seed)
	program := alg.Node2Vec(alg.Node2VecParams{
		P: 2, Q: 0.5, Length: 80, LowerBound: true, FoldOutlier: true,
	})

	reg := obs.NewRegistry(nil)
	reg.SetRunInfo(program.Name, g.NumVertices(), g.NumEdges(), o.Nodes)
	res, err := core.Run(core.Config{
		Graph:      g,
		Algorithm:  program,
		NumNodes:   o.Nodes,
		NumWalkers: g.NumVertices(),
		Seed:       o.Seed,
		Counters:   reg.Counters(),
		Observer:   reg,
	})
	if err != nil {
		return err
	}

	rep := stats.NewReport(res.Counters, stats.RunInfo{
		Algorithm:   program.Name,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Ranks:       o.Nodes,
		Walkers:     int64(g.NumVertices()),
		Supersteps:  res.Iterations,
		LightSupers: res.LightIterations,
		Duration:    res.Duration,
		Setup:       res.SetupDuration,
	})
	reg.FillReport(&rep)
	line, err := rep.JSONLine()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(o.Out, line)
	return err
}
