// Package bench regenerates every table and figure of the paper's
// evaluation (§7). Each experiment is a named driver that builds its
// workload (scaled-down synthetic stand-ins for the paper's graphs — see
// DESIGN.md for the substitution rationale), runs the KnightKing engine
// and/or the traditional full-scan baseline, and prints rows matching the
// paper's format. Tables carry both wall-clock time and the paper's
// machine-independent "edges/step" metric (edge transition probabilities
// computed per walker move), which is the number that must transfer across
// hardware.
package bench

import (
	"fmt"
	"io"
	"sort"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

// Options configures an experiment run.
type Options struct {
	// Out receives the formatted experiment output.
	Out io.Writer
	// Seed drives all generators and walks.
	Seed uint64
	// Scale multiplies the default graph sizes (1.0 = defaults tuned for a
	// laptop-class single machine; the paper used an 8-node cluster).
	Scale float64
	// Quick shrinks workloads drastically for smoke tests.
	Quick bool
	// Nodes is the simulated cluster size (default 4, paper used 8).
	Nodes int
}

func (o Options) defaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 20191027 // SOSP'19 opening day
	}
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// scaled returns n scaled by the options, with a floor.
func (o Options) scaled(n int) int {
	if o.Quick {
		n /= 16
	}
	v := int(float64(n) * o.Scale)
	if v < 64 {
		v = 64
	}
	return v
}

// Experiment is one table/figure driver.
type Experiment struct {
	// ID is the registry key (e.g. "table3", "fig6b").
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Run executes the experiment.
	Run func(Options) error
}

var registry []Experiment

func register(id, title string, run func(Options) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments returns all registered experiments in a stable order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment.
func RunAll(o Options) error {
	o = o.defaults()
	for _, e := range Experiments() {
		if _, err := fmt.Fprintf(o.Out, "\n=== %s: %s ===\n", e.ID, e.Title); err != nil {
			return err
		}
		if err := e.Run(o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// GraphSpec names one of the evaluation's input graphs and builds its
// synthetic stand-in. The stand-ins are matched on the property that
// drives each experiment: mean degree and degree skew (paper Table 2).
type GraphSpec struct {
	// Name is the paper graph this stands in for.
	Name string
	// Build constructs the unweighted undirected stand-in.
	Build func(o Options, seed uint64) *graph.Graph
}

// Standins returns the four real-graph stand-ins in the paper's order:
// LiveJournal (small, mild skew), Friendster (large, mild skew), Twitter
// (heavy skew), UK-Union (largest, heavy skew). Sizes are scaled down from
// millions/billions to laptop scale; skew ordering is preserved.
func Standins() []GraphSpec {
	return []GraphSpec{
		{Name: "LiveJ", Build: func(o Options, seed uint64) *graph.Graph {
			return gen.TruncatedPowerLaw(o.scaled(8000), 2, 400, 2.2, seed)
		}},
		{Name: "FriendS", Build: func(o Options, seed uint64) *graph.Graph {
			return gen.TruncatedPowerLaw(o.scaled(16000), 6, 500, 2.1, seed+1)
		}},
		{Name: "Twitter", Build: func(o Options, seed uint64) *graph.Graph {
			return gen.TruncatedPowerLaw(o.scaled(12000), 6, 6000, 1.85, seed+2)
		}},
		{Name: "UK-Union", Build: func(o Options, seed uint64) *graph.Graph {
			return gen.TruncatedPowerLaw(o.scaled(20000), 6, 8000, 1.85, seed+3)
		}},
	}
}

// twitterLike builds the heavy-skew graph used by the optimization and
// sensitivity studies (the paper uses the Twitter graph there).
func twitterLike(o Options, seed uint64) *graph.Graph {
	return gen.TruncatedPowerLaw(o.scaled(12000), 6, 6000, 1.85, seed)
}

// WalkLength is the paper's standard walk length.
const WalkLength = 80

// walkLength shrinks the walk for quick runs.
func (o Options) walkLength() int {
	if o.Quick {
		return 10
	}
	return WalkLength
}
