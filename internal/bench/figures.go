package bench

import (
	"fmt"

	"knightking/internal/alg"
	"knightking/internal/baseline"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/stats"
)

func init() {
	register("fig5", "active-set tail: random walk vs BFS (paper Figure 5)", Fig5)
	register("fig6a", "sampling overhead vs uniform degree (paper Figure 6a)", Fig6a)
	register("fig6b", "sampling overhead vs power-law degree cap (paper Figure 6b)", Fig6b)
	register("fig6c", "sampling overhead vs hotspot count (paper Figure 6c)", Fig6c)
	register("fig7", "node2vec scalability with cluster size (paper Figure 7)", Fig7)
	register("fig8", "decoupled vs mixed static/dynamic components (paper Figure 8)", Fig8)
	register("fig9", "straggler-aware light-mode scheduling (paper Figure 9)", Fig9)
}

// Fig5Row is one iteration's active-set sizes.
type Fig5Row struct {
	Iteration  int
	BFSActive  int64 // 0 once BFS has finished
	WalkActive int64
}

// Fig5Data contrasts the BFS frontier with a termination-probability
// walk's active walker count, per iteration, on the LiveJournal stand-in.
func Fig5Data(o Options) ([]Fig5Row, error) {
	o = o.defaults()
	g := Standins()[0].Build(o, o.Seed)

	bfs, err := baseline.BFS(g, 0)
	if err != nil {
		return nil, err
	}
	var log stats.IterationLog
	_, err = core.Run(core.Config{
		Graph:      g,
		Algorithm:  alg.PPR(0.0125, false, 0), // the paper's long-walk PPR setting
		NumWalkers: g.NumVertices(),
		Seed:       o.Seed,
		IterLog:    &log,
	})
	if err != nil {
		return nil, err
	}
	recs := log.Records()
	n := len(recs)
	if len(bfs.FrontierSizes) > n {
		n = len(bfs.FrontierSizes)
	}
	rows := make([]Fig5Row, n)
	for i := 0; i < n; i++ {
		rows[i].Iteration = i + 1
		if i < len(bfs.FrontierSizes) {
			rows[i].BFSActive = bfs.FrontierSizes[i]
		}
		if i < len(recs) {
			rows[i].WalkActive = recs[i].ActiveWalkers
		}
	}
	return rows, nil
}

// Fig5 prints the Figure 5 reproduction (a sampled series to keep the
// table readable).
func Fig5(o Options) error {
	o = o.defaults()
	rows, err := Fig5Data(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("iteration", "bfs frontier", "active walkers")
	stride := 1
	if len(rows) > 40 {
		stride = len(rows) / 40
	}
	for i := 0; i < len(rows); i += stride {
		t.AddRow(rows[i].Iteration, rows[i].BFSActive, rows[i].WalkActive)
	}
	last := rows[len(rows)-1]
	if (len(rows)-1)%stride != 0 {
		t.AddRow(last.Iteration, last.BFSActive, last.WalkActive)
	}
	if err := t.Write(o.Out); err != nil {
		return err
	}
	_, err = fmt.Fprintf(o.Out, "BFS completed in %d iterations; the walk's tail ran %d iterations\n",
		bfsIters(rows), rows[len(rows)-1].Iteration)
	return err
}

func bfsIters(rows []Fig5Row) int {
	n := 0
	for _, r := range rows {
		if r.BFSActive > 0 {
			n = r.Iteration
		}
	}
	return n
}

// Fig6Row is one topology point of Figure 6.
type Fig6Row struct {
	X                float64 // degree, cap, or hotspot count
	AvgDegree        float64
	FullScanPerStep  float64
	RejectionPerStep float64
}

// fig6Point measures both systems' edges/step for unbiased node2vec
// (p=2, q=0.5, lower bound enabled) on one graph.
func fig6Point(o Options, g *graph.Graph, x float64, walkLen int) (Fig6Row, error) {
	base, err := runBaseline(g, baseline.Config{
		Graph:    g,
		Seed:     o.Seed,
		MaxSteps: walkLen,
		Dynamic:  baseline.Node2VecDynamic(2, 0.5),
	}, 0.1)
	if err != nil {
		return Fig6Row{}, err
	}
	kk, err := runKK(g, alg.Node2Vec(alg.Node2VecParams{
		P: 2, Q: 0.5, Length: walkLen, LowerBound: true, FoldOutlier: true,
	}), g.NumVertices(), o.Nodes, o.Seed, true)
	if err != nil {
		return Fig6Row{}, err
	}
	return Fig6Row{
		X:                x,
		AvgDegree:        g.Stats().Mean,
		FullScanPerStep:  base.EdgesPerStep,
		RejectionPerStep: kk.EdgesPerStep,
	}, nil
}

// Fig6aData sweeps uniform degree (paper: 10M vertices, here scaled).
func Fig6aData(o Options) ([]Fig6Row, error) {
	o = o.defaults()
	n := o.scaled(8000)
	walkLen := o.walkLength() / 4
	if walkLen < 4 {
		walkLen = 4
	}
	degrees := []int{10, 30, 100, 300, 1000}
	if o.Quick {
		degrees = []int{10, 50}
	}
	var rows []Fig6Row
	for i, d := range degrees {
		if d >= n {
			continue
		}
		g := gen.UniformDegree(n, d, o.Seed+uint64(i))
		row, err := fig6Point(o, g, float64(d), walkLen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6a prints the Figure 6a reproduction.
func Fig6a(o Options) error { return printFig6(o, "uniform degree", Fig6aData) }

// Fig6bData sweeps the truncated power-law degree cap.
func Fig6bData(o Options) ([]Fig6Row, error) {
	o = o.defaults()
	n := o.scaled(16000)
	walkLen := o.walkLength() / 4
	if walkLen < 4 {
		walkLen = 4
	}
	caps := []int{100, 400, 1600, 6400, 12800}
	if o.Quick {
		caps = []int{8, n / 4}
	}
	var rows []Fig6Row
	for i, c := range caps {
		if c >= n {
			continue
		}
		g := gen.TruncatedPowerLaw(n, 5, c, 2.0, o.Seed+uint64(i))
		row, err := fig6Point(o, g, float64(c), walkLen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6b prints the Figure 6b reproduction.
func Fig6b(o Options) error { return printFig6(o, "degree cap", Fig6bData) }

// Fig6cData sweeps the number of injected million-edge-scale hotspots on a
// uniform degree-100 graph (paper Figure 6c, scaled).
func Fig6cData(o Options) ([]Fig6Row, error) {
	o = o.defaults()
	n := o.scaled(8000)
	d := 100
	hotDeg := n / 8
	walkLen := o.walkLength() / 4
	if walkLen < 4 {
		walkLen = 4
	}
	hots := []int{0, 1, 2, 4, 8}
	if o.Quick {
		hots = []int{0, 2}
		d = 20
	}
	var rows []Fig6Row
	for i, h := range hots {
		g := gen.Hotspot(n, d, h, hotDeg, o.Seed+uint64(i))
		row, err := fig6Point(o, g, float64(h), walkLen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6c prints the Figure 6c reproduction.
func Fig6c(o Options) error { return printFig6(o, "hotspots", Fig6cData) }

func printFig6(o Options, xName string, data func(Options) ([]Fig6Row, error)) error {
	o = o.defaults()
	rows, err := data(o)
	if err != nil {
		return err
	}
	t := stats.NewTable(xName, "avg degree", "full-scan edges/step", "rejection edges/step")
	for _, r := range rows {
		t.AddRow(r.X, r.AvgDegree, r.FullScanPerStep, r.RejectionPerStep)
	}
	return t.Write(o.Out)
}

// Fig7Row is one cluster-size point.
type Fig7Row struct {
	Nodes     int
	KnightSec float64
	// NormalizedToOne is KnightSec / single-node KnightSec (the paper
	// normalizes each system to its own single-node run).
	NormalizedToOne float64
	// BaselineRatio is the single-node full-scan baseline time over this
	// run's time (the paper reports a 20.9× single-node advantage).
	BaselineRatio float64
}

// Fig7Data measures node2vec wall time while growing the simulated
// cluster, on the Friendster stand-in.
func Fig7Data(o Options) ([]Fig7Row, error) {
	o = o.defaults()
	g := Standins()[1].Build(o, o.Seed)
	length := o.walkLength()
	nodesList := []int{1, 2, 4, 8}
	if o.Quick {
		nodesList = []int{1, 2}
	}
	base, err := runBaseline(g, baseline.Config{
		Graph:    g,
		Seed:     o.Seed,
		MaxSteps: length,
		Dynamic:  baseline.Node2VecDynamic(2, 0.5),
	}, 0.05)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	var oneNode float64
	for _, nodes := range nodesList {
		m, err := runKK(g, alg.Node2Vec(alg.Node2VecParams{
			P: 2, Q: 0.5, Length: length, LowerBound: true, FoldOutlier: true,
		}), g.NumVertices(), nodes, o.Seed, true)
		if err != nil {
			return nil, err
		}
		if nodes == nodesList[0] {
			oneNode = m.Seconds
		}
		rows = append(rows, Fig7Row{
			Nodes:           nodes,
			KnightSec:       m.Seconds,
			NormalizedToOne: m.Seconds / oneNode,
			BaselineRatio:   base.Seconds / m.Seconds,
		})
	}
	return rows, nil
}

// Fig7 prints the Figure 7 reproduction.
func Fig7(o Options) error {
	o = o.defaults()
	rows, err := Fig7Data(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("nodes", "knightking(s)", "normalized", "speedup vs full-scan")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.KnightSec, r.NormalizedToOne, r.BaselineRatio)
	}
	if err := t.Write(o.Out); err != nil {
		return err
	}
	_, err = fmt.Fprintln(o.Out, "note: logical nodes share one machine here; wall-clock scaling with real hardware parallelism is not reproducible on a single host (see EXPERIMENTS.md)")
	return err
}

// Fig8Row is one (weight distribution, max weight) point.
type Fig8Row struct {
	WeightDist      string
	MaxWeight       float64
	MixedSec        float64
	DecoupledSec    float64
	MixedTrials     float64 // trials per step
	DecoupledTrials float64
}

// Fig8Data compares the decoupled Ps×Pd formulation against folding the
// weight into Pd ("mixed"), sweeping max edge weight under uniform and
// power-law weight assignment.
func Fig8Data(o Options) ([]Fig8Row, error) {
	o = o.defaults()
	base := twitterLike(o, o.Seed)
	length := o.walkLength() / 2
	if length < 5 {
		length = 5
	}
	maxWeights := []float32{2, 8, 32, 128}
	if o.Quick {
		maxWeights = []float32{2, 16}
	}
	var rows []Fig8Row
	for _, dist := range []string{"uniform", "powerlaw"} {
		for _, mw := range maxWeights {
			var g *graph.Graph
			if dist == "uniform" {
				g = gen.WithUniformWeights(base, 1, mw, o.Seed+5)
			} else {
				g = gen.WithPowerLawWeights(base, mw, 2.0, o.Seed+5)
			}
			mixed, err := runKK(g, alg.Node2VecMixed(alg.Node2VecParams{
				P: 2, Q: 0.5, Length: length,
			}), g.NumVertices(), o.Nodes, o.Seed, true)
			if err != nil {
				return nil, err
			}
			dec, err := runKK(g, alg.Node2Vec(alg.Node2VecParams{
				P: 2, Q: 0.5, Length: length, Biased: true,
				LowerBound: true, FoldOutlier: true,
			}), g.NumVertices(), o.Nodes, o.Seed, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{
				WeightDist:      dist,
				MaxWeight:       float64(mw),
				MixedSec:        mixed.Seconds,
				DecoupledSec:    dec.Seconds,
				MixedTrials:     mixed.TrialsPerStep,
				DecoupledTrials: dec.TrialsPerStep,
			})
		}
	}
	return rows, nil
}

// Fig8 prints the Figure 8 reproduction.
func Fig8(o Options) error {
	o = o.defaults()
	rows, err := Fig8Data(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("weights", "max weight", "mixed(s)", "decoupled(s)", "mixed trials/step", "decoupled trials/step")
	for _, r := range rows {
		t.AddRow(r.WeightDist, r.MaxWeight, r.MixedSec, r.DecoupledSec, r.MixedTrials, r.DecoupledTrials)
	}
	return t.Write(o.Out)
}

// Fig9Row is one (algorithm, graph) light-mode comparison.
type Fig9Row struct {
	Algorithm  string
	Graph      string
	BaseSec    float64 // original scheduler
	LightSec   float64 // straggler-aware scheduler
	ImprovePct float64
}

// Fig9Data measures the straggler-aware scheduling optimization on the two
// long-tail algorithms (PPR with pt=0.149 as in the paper, and node2vec),
// across three graph sizes.
func Fig9Data(o Options) ([]Fig9Row, error) {
	o = o.defaults()
	length := o.walkLength()
	specs := Standins()[:3]
	algs := []struct {
		name string
		make func() *core.Algorithm
	}{
		{"PPR", func() *core.Algorithm { return alg.PPR(0.149, false, 0) }},
		{"node2vec", func() *core.Algorithm {
			return alg.Node2Vec(alg.Node2VecParams{
				P: 2, Q: 0.5, Length: length, LowerBound: true, FoldOutlier: true,
			})
		}},
	}
	var rows []Fig9Row
	for _, a := range algs {
		for _, spec := range specs {
			g := spec.Build(o, o.Seed)
			noLight, err := runKK(g, a.make(), g.NumVertices(), o.Nodes, o.Seed, false)
			if err != nil {
				return nil, err
			}
			light, err := runKK(g, a.make(), g.NumVertices(), o.Nodes, o.Seed, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{
				Algorithm:  a.name,
				Graph:      spec.Name,
				BaseSec:    noLight.Seconds,
				LightSec:   light.Seconds,
				ImprovePct: 100 * (noLight.Seconds - light.Seconds) / noLight.Seconds,
			})
		}
	}
	return rows, nil
}

// Fig9 prints the Figure 9 reproduction.
func Fig9(o Options) error {
	o = o.defaults()
	rows, err := Fig9Data(o)
	if err != nil {
		return err
	}
	t := stats.NewTable("algorithm", "graph", "base(s)", "light mode(s)", "improvement %")
	for _, r := range rows {
		t.AddRow(r.Algorithm, r.Graph, r.BaseSec, r.LightSec, r.ImprovePct)
	}
	return t.Write(o.Out)
}
