package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// runGroup executes fn concurrently on every endpoint and waits.
func runGroup(t *testing.T, eps []Endpoint, fn func(e Endpoint) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(eps))
	for i, e := range eps {
		wg.Add(1)
		go func(i int, e Endpoint) {
			defer wg.Done()
			errs[i] = fn(e)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func testBasicExchange(t *testing.T, eps []Endpoint) {
	n := len(eps)
	runGroup(t, eps, func(e Endpoint) error {
		// Every rank sends one message to every rank (including itself).
		for to := 0; to < n; to++ {
			e.Send(to, 7, []byte(fmt.Sprintf("from %d to %d", e.Rank(), to)))
		}
		msgs, err := e.Exchange()
		if err != nil {
			return err
		}
		if len(msgs) != n {
			return fmt.Errorf("got %d messages, want %d", len(msgs), n)
		}
		seen := make(map[int]bool)
		for _, m := range msgs {
			if m.Kind != 7 {
				return fmt.Errorf("kind = %d", m.Kind)
			}
			want := fmt.Sprintf("from %d to %d", m.From, e.Rank())
			if string(m.Payload) != want {
				return fmt.Errorf("payload = %q, want %q", m.Payload, want)
			}
			seen[m.From] = true
		}
		if len(seen) != n {
			return fmt.Errorf("messages from %d distinct senders, want %d", len(seen), n)
		}
		return nil
	})
}

func testEmptyRound(t *testing.T, eps []Endpoint) {
	runGroup(t, eps, func(e Endpoint) error {
		msgs, err := e.Exchange()
		if err != nil {
			return err
		}
		if len(msgs) != 0 {
			return fmt.Errorf("empty round delivered %d messages", len(msgs))
		}
		return nil
	})
}

func testManyRounds(t *testing.T, eps []Endpoint) {
	n := len(eps)
	runGroup(t, eps, func(e Endpoint) error {
		for round := 0; round < 20; round++ {
			// Ring pattern: each rank sends `round` messages to its right
			// neighbor.
			to := (e.Rank() + 1) % n
			for k := 0; k < round; k++ {
				e.Send(to, uint8(round), []byte{byte(k)})
			}
			msgs, err := e.Exchange()
			if err != nil {
				return err
			}
			if len(msgs) != round {
				return fmt.Errorf("round %d: got %d messages, want %d", round, len(msgs), round)
			}
			for i, m := range msgs {
				if int(m.Kind) != round || m.From != (e.Rank()+n-1)%n || m.Payload[0] != byte(i) {
					return fmt.Errorf("round %d: bad message %d: %+v (order not preserved?)", round, i, m)
				}
			}
		}
		return nil
	})
}

func testStats(t *testing.T, eps []Endpoint) {
	runGroup(t, eps, func(e Endpoint) error {
		before, _ := e.Stats()
		e.Send(0, 1, make([]byte, 100))
		msgs, bytes := e.Stats()
		if msgs != before+1 {
			return fmt.Errorf("message count not incremented")
		}
		if bytes < 100 {
			return fmt.Errorf("byte count %d < 100", bytes)
		}
		_, err := e.Exchange()
		return err
	})
}

func TestInProcBasicExchange(t *testing.T) { testBasicExchange(t, NewInProcGroup(4)) }
func TestInProcEmptyRound(t *testing.T)    { testEmptyRound(t, NewInProcGroup(3)) }
func TestInProcManyRounds(t *testing.T)    { testManyRounds(t, NewInProcGroup(5)) }
func TestInProcStats(t *testing.T)         { testStats(t, NewInProcGroup(2)) }
func TestInProcSingleRank(t *testing.T)    { testBasicExchange(t, NewInProcGroup(1)) }

func TestInProcSendPanicsOnBadRank(t *testing.T) {
	eps := NewInProcGroup(2)
	defer func() {
		if recover() == nil {
			t.Fatal("send to invalid rank did not panic")
		}
	}()
	eps[0].Send(5, 0, nil)
}

func TestInProcCloseUnblocks(t *testing.T) {
	eps := NewInProcGroup(2)
	done := make(chan error, 1)
	go func() {
		_, err := eps[0].Exchange() // blocks: rank 1 never arrives
		done <- err
	}()
	if err := eps[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("exchange on closed group returned nil error")
	}
}

// freeAddrs reserves n distinct loopback ports and returns them.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// dialTCPGroupAll brings up a full TCP mesh inside the test process.
func dialTCPGroupAll(t *testing.T, n int) []Endpoint {
	t.Helper()
	addrs := freeAddrs(t, n)
	eps := make([]Endpoint, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := DialTCPGroup(i, addrs)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			eps[i] = e
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	t.Cleanup(func() {
		for _, e := range eps {
			if e != nil {
				e.Close()
			}
		}
	})
	return eps
}

func TestTCPBasicExchange(t *testing.T) { testBasicExchange(t, dialTCPGroupAll(t, 3)) }
func TestTCPEmptyRound(t *testing.T)    { testEmptyRound(t, dialTCPGroupAll(t, 2)) }
func TestTCPManyRounds(t *testing.T)    { testManyRounds(t, dialTCPGroupAll(t, 3)) }
func TestTCPStats(t *testing.T)         { testStats(t, dialTCPGroupAll(t, 2)) }
func TestTCPSingleRank(t *testing.T)    { testBasicExchange(t, dialTCPGroupAll(t, 1)) }

func TestTCPLargePayload(t *testing.T) {
	eps := dialTCPGroupAll(t, 2)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	runGroup(t, eps, func(e Endpoint) error {
		e.Send(1-e.Rank(), 9, big)
		msgs, err := e.Exchange()
		if err != nil {
			return err
		}
		if len(msgs) != 1 || len(msgs[0].Payload) != len(big) {
			return fmt.Errorf("large payload mangled")
		}
		for i, b := range msgs[0].Payload {
			if b != byte(i) {
				return fmt.Errorf("payload corrupted at %d", i)
			}
		}
		return nil
	})
}

func TestTCPExchangeAfterClose(t *testing.T) {
	eps := dialTCPGroupAll(t, 2)
	eps[0].Close()
	if _, err := eps[0].Exchange(); err == nil {
		t.Fatal("exchange after close returned nil error")
	}
}

func TestDialTCPGroupBadRank(t *testing.T) {
	if _, err := DialTCPGroup(5, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("bad rank accepted")
	}
}

func benchExchange(b *testing.B, eps []Endpoint, payload int) {
	b.Helper()
	data := make([]byte, payload)
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, e := range eps {
		wg.Add(1)
		go func(e Endpoint) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				for to := 0; to < e.Size(); to++ {
					e.Send(to, 1, data)
				}
				if _, err := e.Exchange(); err != nil {
					b.Error(err)
					return
				}
			}
		}(e)
	}
	wg.Wait()
	b.SetBytes(int64(payload * len(eps) * len(eps)))
}

func BenchmarkInProcExchange4x1KB(b *testing.B) {
	benchExchange(b, NewInProcGroup(4), 1024)
}

func BenchmarkInProcExchange4x64KB(b *testing.B) {
	benchExchange(b, NewInProcGroup(4), 64*1024)
}

// dialTCPGroupB brings up a full TCP mesh for a benchmark and registers
// cleanup.
func dialTCPGroupB(b *testing.B, n int) []Endpoint {
	b.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		lns = append(lns, ln)
	}
	for _, ln := range lns {
		ln.Close()
	}
	eps := make([]Endpoint, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := DialTCPGroup(i, addrs)
			if err != nil {
				b.Error(err)
				return
			}
			eps[i] = ep
		}(i)
	}
	wg.Wait()
	b.Cleanup(func() {
		for _, e := range eps {
			if e != nil {
				e.Close()
			}
		}
	})
	return eps
}

func BenchmarkTCPExchange2x64KB(b *testing.B) {
	benchExchange(b, dialTCPGroupB(b, 2), 64*1024)
}

// BenchmarkTCPExchangeManySmall is the alloc-heavy shape of a real
// superstep: many small batches per peer per round. It is the benchmark
// the payload-pooling trajectory (BENCH_*.json) tracks.
func BenchmarkTCPExchangeManySmall(b *testing.B) {
	eps := dialTCPGroupB(b, 2)
	const msgsPerPeer, payload = 256, 1024
	data := make([]byte, payload)
	b.ResetTimer()
	b.ReportAllocs()
	var wg sync.WaitGroup
	for _, e := range eps {
		wg.Add(1)
		go func(e Endpoint) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				for to := 0; to < e.Size(); to++ {
					for k := 0; k < msgsPerPeer; k++ {
						e.Send(to, 1, data)
					}
				}
				if _, err := e.Exchange(); err != nil {
					b.Error(err)
					return
				}
			}
		}(e)
	}
	wg.Wait()
	b.SetBytes(int64(payload * msgsPerPeer * len(eps) * len(eps)))
}

func TestTCPPeerFailureSurfacesError(t *testing.T) {
	// Rank 1 dies (closes its connections) while rank 0 waits in Exchange:
	// rank 0 must get an error, never hang.
	eps := dialTCPGroupAll(t, 2)
	done := make(chan error, 1)
	go func() {
		eps[0].Send(1, 1, []byte("hello"))
		_, err := eps[0].Exchange()
		done <- err
	}()
	eps[1].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("exchange with dead peer returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exchange hung after peer failure")
	}
}

func TestInProcPartialExchangeThenClose(t *testing.T) {
	// Two of three ranks arrive, the third closes instead: both waiters
	// must return errors.
	eps := NewInProcGroup(3)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := eps[i].Exchange()
			errs <- err
		}(i)
	}
	eps[2].Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("waiter returned nil error after group close")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter hung after group close")
		}
	}
}
