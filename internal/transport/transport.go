// Package transport provides the node-to-node communication substrate for
// the simulated cluster. The paper's implementation uses OpenMPI all-to-all
// message passing between physical nodes; here the same collective-exchange
// contract is provided by two interchangeable implementations:
//
//   - the in-process transport (NewInProcGroup), where logical nodes are
//     goroutine groups inside one process exchanging batched messages
//     through shared memory, and
//
//   - a real TCP transport (DialTCPGroup) with length-prefixed frames over
//     stdlib net connections, demonstrating that the engine runs unchanged
//     over an actual wire.
//
// The engine's bulk-synchronous structure maps onto a single primitive:
// Exchange, a collective that delivers every message sent since the last
// Exchange and acts as a barrier across all ranks, exactly like an MPI
// all-to-all.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout is the sentinel error wrapped by every deadline failure in
// this package: a TCP read/write deadline expiring mid-frame, or an
// exchange-level guard (WithExchangeTimeout) firing because the collective
// did not complete in time. Callers match it with errors.Is to distinguish
// a dead-or-wedged peer from data corruption.
var ErrTimeout = errors.New("transport: deadline exceeded")

// Message is one routed unit. Kind discriminates payload encodings at the
// layer above; the transport treats Payload as opaque bytes.
//
// Local, when non-nil, is an object delivered zero-copy within a shared
// address space (see LocalSender); Payload is nil for such messages.
// Ownership of the object transfers to the receiving rank at delivery.
type Message struct {
	From    int
	Kind    uint8
	Payload []byte
	Local   any
}

// LocalSender is optionally implemented by endpoints whose whole group
// shares one address space (the in-process group): SendLocal enqueues an
// arbitrary object for zero-copy delivery at the next Exchange, skipping
// serialization entirely. Ownership of obj transfers to the receiving
// rank. Wrapping endpoints (observer, exchange-timeout, fault injection)
// deliberately do not implement it, so a caller's type assertion fails
// whenever a wrapper intervenes and the caller falls back to byte
// payloads — which keeps wrapped runs exercising the wire codec.
type LocalSender interface {
	// SendLocal buffers obj for delivery to rank `to` at the next
	// Exchange. Safe for concurrent use. The object must not be mutated
	// after the call.
	SendLocal(to int, kind uint8, obj any)
}

// Endpoint is one rank's handle on the group.
//
// Payload ownership contract: Send transfers ownership of the payload
// slice to the transport — the caller must not mutate it afterwards.
// Symmetrically, the payloads of messages returned by Exchange are owned
// by the caller only until the next Exchange (or Close) call on the same
// endpoint; implementations may recycle the backing memory after that.
// Callers needing a payload across rounds must copy it.
type Endpoint interface {
	// Rank returns this endpoint's index in [0, Size()).
	Rank() int
	// Size returns the number of ranks in the group.
	Size() int
	// Send buffers a message for delivery to rank `to` at the next
	// Exchange. Safe for concurrent use. The payload slice must not be
	// mutated after the call.
	Send(to int, kind uint8, payload []byte)
	// Exchange is a collective barrier: it blocks until every rank has
	// entered Exchange, then returns all messages addressed to this rank
	// that were sent since the previous Exchange (in sender-rank order;
	// messages from one sender preserve send order). Returned payloads
	// remain valid only until the next Exchange or Close call.
	Exchange() ([]Message, error)
	// Stats returns cumulative messages and payload bytes sent by this
	// endpoint.
	Stats() (messages, bytes int64)
	// Close releases resources. After Close, Exchange returns an error.
	Close() error
}

// Observer receives transport-level observation points. Implementations
// must be safe for concurrent use (one endpoint per rank may share an
// observer) and must not block: the callbacks sit on the exchange path.
type Observer interface {
	// ObserveExchange is called once per completed Exchange with its wall
	// time (wire transfer plus collective barrier wait) and the delivered
	// message count and payload bytes.
	ObserveExchange(d time.Duration, messages int, bytes int64)
	// ObserveFramePayload is called once per delivered message with its
	// payload size in bytes — the frame-size distribution feeding batching
	// decisions.
	ObserveFramePayload(bytes int)
}

// ExchangePeerObserver is optionally implemented alongside Observer by
// collectors that want per-peer exchange attribution (who sent this rank
// how much, per collective round) — the causal-trace layer's view of
// exchange skew. When the Observer passed to WithObserver also implements
// it, ObserveExchangePeers is called once per completed Exchange on the
// receiving rank with the exchange's wall time and the delivered messages.
// The msgs slice and its payloads remain owned by the endpoint per the
// payload-ownership contract: the callback must aggregate what it needs
// (m.From, len(m.Payload)) before returning and must not retain the slice.
type ExchangePeerObserver interface {
	ObserveExchangePeers(rank int, d time.Duration, msgs []Message)
}

// observedEndpoint reports exchange latency and delivered frame sizes to an
// Observer. It wraps the raw endpoint directly (inside any exchange-timeout
// guard) so the observed latency is the transport's own, not the guard's.
type observedEndpoint struct {
	Endpoint
	obs   Observer
	peers ExchangePeerObserver // non-nil when obs wants peer attribution
}

// WithObserver wraps ep so every Exchange reports its latency and delivered
// payload sizes to obs. A nil obs returns ep unchanged. Transport-agnostic:
// works over the in-process group, TCP, and test wrappers alike.
func WithObserver(ep Endpoint, obs Observer) Endpoint {
	if obs == nil {
		return ep
	}
	o := &observedEndpoint{Endpoint: ep, obs: obs}
	o.peers, _ = obs.(ExchangePeerObserver)
	return o
}

// Exchange delegates to the wrapped endpoint, observing the outcome.
func (o *observedEndpoint) Exchange() ([]Message, error) {
	start := time.Now()
	msgs, err := o.Endpoint.Exchange()
	d := time.Since(start)
	var bytes int64
	for _, m := range msgs {
		o.obs.ObserveFramePayload(len(m.Payload))
		bytes += int64(len(m.Payload))
	}
	o.obs.ObserveExchange(d, len(msgs), bytes)
	if o.peers != nil {
		o.peers.ObserveExchangePeers(o.Endpoint.Rank(), d, msgs)
	}
	return msgs, err
}

// guardEndpoint bounds the wall-clock time of each Exchange call on any
// underlying endpoint, converting an indefinite barrier hang (a peer died
// without closing its connections, a scheduler wedge, a partitioned
// network) into a clean error. On timeout it closes the wrapped endpoint,
// which tears the group down and unblocks every peer stuck in the same
// barrier — making the checkpoint/recovery path reachable instead of
// waiting forever.
type guardEndpoint struct {
	Endpoint
	timeout time.Duration
}

// WithExchangeTimeout wraps ep so that any Exchange call taking longer
// than d fails with an error wrapping ErrTimeout (and closes ep, tearing
// down the group). A non-positive d returns ep unchanged.
// Transport-agnostic: works over the in-process group, TCP, and test
// wrappers alike.
func WithExchangeTimeout(ep Endpoint, d time.Duration) Endpoint {
	if d <= 0 {
		return ep
	}
	return &guardEndpoint{Endpoint: ep, timeout: d}
}

// Exchange delegates to the wrapped endpoint, bounding its duration.
func (g *guardEndpoint) Exchange() ([]Message, error) {
	type result struct {
		msgs []Message
		err  error
	}
	done := make(chan result, 1)
	go func() {
		msgs, err := g.Endpoint.Exchange()
		done <- result{msgs, err}
	}()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.msgs, r.err
	case <-timer.C:
		// Closing unblocks the inner Exchange (and the rest of the group);
		// wait for it so no goroutine outlives the call.
		g.Endpoint.Close()
		<-done
		return nil, fmt.Errorf("transport: exchange on rank %d exceeded %v: %w",
			g.Rank(), g.timeout, ErrTimeout)
	}
}

// inprocGroup implements the collective over shared memory.
type inprocGroup struct {
	n    int
	mu   sync.Mutex
	cond *sync.Cond
	// outbox[from][to] accumulates messages for the current round.
	outbox [][][]Message
	// inbox[to] holds the delivered messages of the last completed round.
	inbox   [][]Message
	round   uint64
	arrived int
	closed  bool
}

type inprocEndpoint struct {
	g        *inprocGroup
	rank     int
	sentMsgs atomic.Int64
	sentByte atomic.Int64
}

// NewInProcGroup creates n endpoints sharing an in-process exchange.
func NewInProcGroup(n int) []Endpoint {
	if n <= 0 {
		panic(fmt.Sprintf("transport: NewInProcGroup(%d)", n))
	}
	g := &inprocGroup{
		n:      n,
		outbox: make([][][]Message, n),
		inbox:  make([][]Message, n),
	}
	g.cond = sync.NewCond(&g.mu)
	for i := range g.outbox {
		g.outbox[i] = make([][]Message, n)
	}
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = &inprocEndpoint{g: g, rank: i}
	}
	return eps
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.g.n }

func (e *inprocEndpoint) Send(to int, kind uint8, payload []byte) {
	e.enqueue(to, Message{From: e.rank, Kind: kind, Payload: payload})
	e.sentByte.Add(int64(len(payload)))
}

// SendLocal implements LocalSender: ranks of an in-process group share the
// process address space, so objects are delivered by reference. No bytes
// cross any wire, so only the message count is accounted.
func (e *inprocEndpoint) SendLocal(to int, kind uint8, obj any) {
	e.enqueue(to, Message{From: e.rank, Kind: kind, Local: obj})
}

func (e *inprocEndpoint) enqueue(to int, m Message) {
	if to < 0 || to >= e.g.n {
		panic(fmt.Sprintf("transport: send to rank %d of %d", to, e.g.n))
	}
	g := e.g
	g.mu.Lock()
	g.outbox[e.rank][to] = append(g.outbox[e.rank][to], m)
	g.mu.Unlock()
	e.sentMsgs.Add(1)
}

func (e *inprocEndpoint) Exchange() ([]Message, error) {
	g := e.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("transport: exchange on closed group")
	}
	myRound := g.round
	g.arrived++
	if g.arrived == g.n {
		// Last to arrive performs the all-to-all delivery. Every rank is
		// inside Exchange at this point, so by the ownership contract the
		// previous round's inbox slices are reclaimable: delivery rebuilds
		// each rank's inbox on its retained backing, and the drained outbox
		// queues likewise keep their capacity (entries cleared so stale
		// payload references don't pin memory).
		for to := 0; to < g.n; to++ {
			msgs := g.inbox[to][:0]
			for from := 0; from < g.n; from++ {
				q := g.outbox[from][to]
				msgs = append(msgs, q...)
				clear(q)
				g.outbox[from][to] = q[:0]
			}
			g.inbox[to] = msgs
		}
		g.arrived = 0
		g.round++
		g.cond.Broadcast()
	} else {
		for g.round == myRound && !g.closed {
			g.cond.Wait()
		}
		// Error only if this round never completed: a round that finished
		// before the group closed (e.g. a peer exiting uniformly right after
		// the barrier, as cooperative cancellation does) must still deliver,
		// or peers would see a spurious transport error instead of their own
		// copy of the collective decision.
		if g.round == myRound {
			return nil, fmt.Errorf("transport: group closed during exchange")
		}
	}
	// The slice stays in g.inbox for the next delivery to rebuild on; it is
	// the caller's to read only until its next Exchange call, which is
	// exactly the documented payload-ownership window.
	return g.inbox[e.rank], nil
}

func (e *inprocEndpoint) Stats() (int64, int64) {
	return e.sentMsgs.Load(), e.sentByte.Load()
}

func (e *inprocEndpoint) Close() error {
	g := e.g
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	return nil
}
