// Package chaos wraps a transport.Endpoint with deterministic network
// fault injection: random and periodic delays (slow peers), truncated and
// bit-flipped payloads, and mid-run disconnects. It generalizes
// transport.Faulty (which only kills a rank at a fixed exchange) into a
// harness for the failure modes a real cluster network exhibits.
//
// Every decision is drawn from a seeded rng stream derived from
// (Config.Seed, rank), so a failing run replays exactly: the same
// exchanges are delayed by the same amounts, the same payload bytes are
// corrupted, and the same rank dies at the same barrier. The Events log
// records what fired, for assertions and for diffing two replays.
//
// Delays exercise the engine's timing independence (output must be
// bit-identical to an undisturbed run); corruption exercises the decode
// paths (a flipped or truncated batch must surface as a clean error, never
// a panic or a hang); disconnects exercise checkpoint recovery (the
// surviving ranks' Exchange calls return errors, the job dies, and a
// resume from the latest snapshot must reproduce the uninterrupted run).
package chaos

import (
	"fmt"
	"sync"
	"time"

	"knightking/internal/rng"
	"knightking/internal/transport"
)

// Config programs one rank's chaos. The zero value injects nothing.
type Config struct {
	// Seed roots the per-rank decision stream. Two wrappers with the same
	// (Seed, rank) and call sequence make identical decisions.
	Seed uint64
	// DelayProb is the per-exchange probability of sleeping a uniform
	// duration in (0, MaxDelay] before entering the barrier.
	DelayProb float64
	// MaxDelay bounds injected delays; also the fixed delay of slow
	// exchanges (SlowEveryN).
	MaxDelay time.Duration
	// SlowEveryN, when positive, makes every Nth exchange sleep the full
	// MaxDelay — a persistently slow straggler peer.
	SlowEveryN int
	// TruncateProb is the per-received-message probability of cutting at
	// least one byte off the payload.
	TruncateProb float64
	// BitFlipProb is the per-received-message probability of flipping one
	// uniformly chosen payload bit (checked only when truncation did not
	// fire for that message).
	BitFlipProb float64
	// DisconnectAt, when positive, closes the underlying endpoint at the
	// DisconnectAt-th Exchange call (1-based) and returns an error
	// wrapping transport.ErrInjected, exactly like transport.Faulty.
	DisconnectAt int
}

// Event records one injected fault, for assertions and replay diffing.
type Event struct {
	// Exchange is the 1-based Exchange call the fault fired in.
	Exchange int
	// Kind is one of "delay", "slow", "truncate", "bitflip", "disconnect".
	Kind string
	// Detail describes the fault (duration, byte count, bit index).
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("exchange %d: %s %s", e.Exchange, e.Kind, e.Detail)
}

// Endpoint wraps a transport.Endpoint with programmed chaos. Rank, Size,
// Send, Stats, and Close delegate untouched.
type Endpoint struct {
	transport.Endpoint
	cfg Config

	mu           sync.Mutex
	r            *rng.Rand
	exchanges    int
	events       []Event
	disconnected bool
}

// Wrap programs cfg's chaos onto ep. The decision stream is derived from
// (cfg.Seed, ep.Rank()), so wrapping every rank of a group with the same
// Config still gives each rank independent, deterministic chaos.
func Wrap(ep transport.Endpoint, cfg Config) *Endpoint {
	return &Endpoint{
		Endpoint: ep,
		cfg:      cfg,
		r:        rng.NewStream(cfg.Seed, uint64(ep.Rank())),
	}
}

// Exchange injects the programmed faults around and into the wrapped
// collective.
func (c *Endpoint) Exchange() ([]transport.Message, error) {
	c.mu.Lock()
	c.exchanges++
	n := c.exchanges
	if c.cfg.DisconnectAt > 0 && n >= c.cfg.DisconnectAt && !c.disconnected {
		c.disconnected = true
		c.record(n, "disconnect", "")
		c.mu.Unlock()
		c.Endpoint.Close()
		return nil, fmt.Errorf("%w: chaos disconnected rank %d at exchange %d",
			transport.ErrInjected, c.Rank(), n)
	}
	var delay time.Duration
	switch {
	case c.cfg.SlowEveryN > 0 && n%c.cfg.SlowEveryN == 0:
		delay = c.cfg.MaxDelay
		c.record(n, "slow", delay.String())
	case c.cfg.DelayProb > 0 && c.cfg.MaxDelay > 0 && c.r.Bernoulli(c.cfg.DelayProb):
		delay = time.Duration(c.r.Range(0, float64(c.cfg.MaxDelay))) + 1
		c.record(n, "delay", delay.String())
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}

	msgs, err := c.Endpoint.Exchange()
	if err != nil {
		return msgs, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range msgs {
		p := msgs[i].Payload
		if len(p) == 0 {
			continue
		}
		switch {
		case c.cfg.TruncateProb > 0 && c.r.Bernoulli(c.cfg.TruncateProb):
			cut := 1 + c.r.Intn(len(p))
			msgs[i].Payload = p[:len(p)-cut]
			c.record(n, "truncate", fmt.Sprintf("%d of %d bytes from rank %d", cut, len(p), msgs[i].From))
		case c.cfg.BitFlipProb > 0 && c.r.Bernoulli(c.cfg.BitFlipProb):
			// Copy before flipping: the slice may be shared with the sender
			// (in-process transport) or a pooled frame buffer (TCP).
			bit := c.r.Intn(len(p) * 8)
			flipped := append([]byte(nil), p...)
			flipped[bit/8] ^= 1 << (bit % 8)
			msgs[i].Payload = flipped
			c.record(n, "bitflip", fmt.Sprintf("bit %d of %d bytes from rank %d", bit, len(p), msgs[i].From))
		}
	}
	return msgs, nil
}

// record appends an event; callers hold c.mu.
func (c *Endpoint) record(exchange int, kind, detail string) {
	c.events = append(c.events, Event{Exchange: exchange, Kind: kind, Detail: detail})
}

// Exchanges returns how many Exchange calls the wrapper has seen.
func (c *Endpoint) Exchanges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exchanges
}

// Events returns a copy of the injected-fault log, in firing order.
func (c *Endpoint) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// WrapGroup wraps every endpoint of a group with the same Config; each
// rank derives its own decision stream from (cfg.Seed, rank). The
// returned slice aliases fresh chaos endpoints, leaving eps usable for
// direct inspection.
func WrapGroup(eps []transport.Endpoint, cfg Config) []*Endpoint {
	out := make([]*Endpoint, len(eps))
	for i, ep := range eps {
		out[i] = Wrap(ep, cfg)
	}
	return out
}

// AsEndpoints converts a wrapped group to the interface slice core.Config
// accepts.
func AsEndpoints(wrapped []*Endpoint) []transport.Endpoint {
	out := make([]transport.Endpoint, len(wrapped))
	for i, w := range wrapped {
		out[i] = w
	}
	return out
}
