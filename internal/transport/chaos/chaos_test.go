package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"knightking/internal/transport"
)

// runGroup runs fn once per endpoint concurrently and fails the test on the
// first error.
func runGroup(t *testing.T, eps []transport.Endpoint, fn func(ep transport.Endpoint) error) {
	t.Helper()
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer wg.Done()
			errs[i] = fn(ep)
		}(i, ep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

// chatter drives rounds of all-to-all traffic through a wrapped group and
// returns every rank's received payload bytes, concatenated in delivery
// order per round.
func chatter(t *testing.T, eps []transport.Endpoint, rounds int) [][]byte {
	t.Helper()
	got := make([][]byte, len(eps))
	var mu sync.Mutex
	runGroup(t, eps, func(ep transport.Endpoint) error {
		var acc []byte
		for r := 0; r < rounds; r++ {
			for to := 0; to < ep.Size(); to++ {
				payload := []byte(fmt.Sprintf("r%d:%d->%d", r, ep.Rank(), to))
				ep.Send(to, uint8(r%7)+1, payload)
			}
			msgs, err := ep.Exchange()
			if err != nil {
				return err
			}
			for _, m := range msgs {
				acc = append(acc, m.Payload...)
				acc = append(acc, '|')
			}
		}
		mu.Lock()
		got[ep.Rank()] = acc
		mu.Unlock()
		return nil
	})
	return got
}

// TestChaosReplayDeterminism: two runs with the same seed over the same
// traffic inject byte-for-byte identical faults — the property that makes a
// chaos failure debuggable.
func TestChaosReplayDeterminism(t *testing.T) {
	cfg := Config{
		Seed:         99,
		DelayProb:    0.3,
		MaxDelay:     200 * time.Microsecond,
		TruncateProb: 0.2,
		BitFlipProb:  0.3,
	}
	run := func() ([][]Event, [][]byte) {
		wrapped := WrapGroup(transport.NewInProcGroup(3), cfg)
		got := chatter(t, AsEndpoints(wrapped), 6)
		events := make([][]Event, len(wrapped))
		for i, w := range wrapped {
			events[i] = w.Events()
		}
		return events, got
	}
	ev1, got1 := run()
	ev2, got2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event logs differ across replays:\n%v\nvs\n%v", ev1, ev2)
	}
	for rank := range got1 {
		if !bytes.Equal(got1[rank], got2[rank]) {
			t.Fatalf("rank %d received different bytes across replays", rank)
		}
	}
	var fired int
	for _, evs := range ev1 {
		fired += len(evs)
	}
	if fired == 0 {
		t.Fatal("chaos config injected nothing; test exercises no fault path")
	}
}

// TestChaosDelaysPreserveDelivery: delays and slow peers perturb timing
// only — every rank receives exactly what an undisturbed group delivers.
func TestChaosDelaysPreserveDelivery(t *testing.T) {
	const rounds = 5
	clean := chatter(t, transport.NewInProcGroup(3), rounds)

	wrapped := WrapGroup(transport.NewInProcGroup(3), Config{
		Seed:       7,
		DelayProb:  0.5,
		MaxDelay:   300 * time.Microsecond,
		SlowEveryN: 2,
	})
	delayed := chatter(t, AsEndpoints(wrapped), rounds)

	for rank := range clean {
		if !bytes.Equal(clean[rank], delayed[rank]) {
			t.Fatalf("rank %d delivery changed under delays-only chaos", rank)
		}
	}
	var slowSeen bool
	for _, w := range wrapped {
		for _, e := range w.Events() {
			if e.Kind == "slow" {
				slowSeen = true
			}
			if e.Kind == "truncate" || e.Kind == "bitflip" || e.Kind == "disconnect" {
				t.Fatalf("delays-only config injected %q", e.Kind)
			}
		}
		if w.Exchanges() != rounds {
			t.Fatalf("wrapper counted %d exchanges, want %d", w.Exchanges(), rounds)
		}
	}
	if !slowSeen {
		t.Fatal("SlowEveryN=2 over 5 rounds fired no slow event")
	}
}

// TestChaosDisconnect: the programmed rank dies with ErrInjected at its
// barrier and the teardown unblocks the surviving ranks with errors, just
// like transport.Faulty — the precondition for the recovery path.
func TestChaosDisconnect(t *testing.T) {
	eps := transport.NewInProcGroup(3)
	victim := Wrap(eps[2], Config{DisconnectAt: 2})

	errs := make([]error, 3)
	var wg sync.WaitGroup
	work := func(i int, ep transport.Endpoint) {
		defer wg.Done()
		for {
			ep.Send((i+1)%3, 1, []byte{byte(i)})
			if _, err := ep.Exchange(); err != nil {
				errs[i] = err
				return
			}
		}
	}
	wg.Add(3)
	go work(0, eps[0])
	go work(1, eps[1])
	go work(2, victim)
	wg.Wait()

	if !errors.Is(errs[2], transport.ErrInjected) {
		t.Fatalf("victim error = %v, want ErrInjected", errs[2])
	}
	for i := 0; i < 2; i++ {
		if errs[i] == nil {
			t.Fatalf("surviving rank %d saw no error after disconnect", i)
		}
	}
	evs := victim.Events()
	if len(evs) != 1 || evs[0].Kind != "disconnect" || evs[0].Exchange != 2 {
		t.Fatalf("victim events = %v, want one disconnect at exchange 2", evs)
	}
}

// TestChaosCorruptionMutates: with certain probabilities, truncation
// shortens payloads and bit flips change exactly one bit of a copy, never
// the sender's buffer (the in-process transport shares slices).
func TestChaosCorruptionMutates(t *testing.T) {
	original := []byte("the quick brown fox")

	t.Run("truncate", func(t *testing.T) {
		eps := transport.NewInProcGroup(2)
		w := Wrap(eps[0], Config{Seed: 3, TruncateProb: 1})
		var msgs []transport.Message
		runGroup(t, []transport.Endpoint{w, eps[1]}, func(ep transport.Endpoint) error {
			if ep.Rank() == 1 {
				ep.Send(0, 1, original)
			}
			var err error
			got, err := ep.Exchange()
			if ep.Rank() == 0 {
				msgs = got
			}
			return err
		})
		if len(msgs) != 1 || len(msgs[0].Payload) >= len(original) {
			t.Fatalf("truncation did not shorten the payload: %+v", msgs)
		}
		if !bytes.Equal(msgs[0].Payload, original[:len(msgs[0].Payload)]) {
			t.Fatal("truncation changed bytes instead of cutting the tail")
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		eps := transport.NewInProcGroup(2)
		w := Wrap(eps[0], Config{Seed: 3, BitFlipProb: 1})
		sent := append([]byte(nil), original...)
		var msgs []transport.Message
		runGroup(t, []transport.Endpoint{w, eps[1]}, func(ep transport.Endpoint) error {
			if ep.Rank() == 1 {
				ep.Send(0, 1, sent)
			}
			got, err := ep.Exchange()
			if ep.Rank() == 0 {
				msgs = got
			}
			return err
		})
		if len(msgs) != 1 || len(msgs[0].Payload) != len(original) {
			t.Fatalf("bitflip changed the payload length: %+v", msgs)
		}
		diff := 0
		for i := range original {
			diff += popcount8(msgs[0].Payload[i] ^ original[i])
		}
		if diff != 1 {
			t.Fatalf("bitflip changed %d bits, want exactly 1", diff)
		}
		if !bytes.Equal(sent, original) {
			t.Fatal("bitflip mutated the sender's buffer instead of a copy")
		}
	})
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
