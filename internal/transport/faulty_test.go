package transport

import (
	"errors"
	"sync"
	"testing"
)

func TestFaultyFiresAtNthExchange(t *testing.T) {
	eps := NewInProcGroup(2)
	victim := NewFaulty(eps[0], 3)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			if _, err := victim.Exchange(); err != nil {
				errs[0] = err
				return
			}
			if i > 10 {
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			if _, err := eps[1].Exchange(); err != nil {
				errs[1] = err
				return
			}
			if i > 10 {
				return
			}
		}
	}()
	wg.Wait()

	if !errors.Is(errs[0], ErrInjected) {
		t.Fatalf("victim error = %v, want ErrInjected", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("peer survived the injected crash; the group should tear down")
	}
	if got := victim.Exchanges(); got != 3 {
		t.Fatalf("victim saw %d exchanges, want 3", got)
	}
	if !victim.Fired() {
		t.Fatal("Fired() = false after the crash")
	}
}

func TestFaultyZeroNeverFires(t *testing.T) {
	eps := NewInProcGroup(1)
	ep := NewFaulty(eps[0], 0)
	for i := 0; i < 5; i++ {
		if _, err := ep.Exchange(); err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
	}
	if ep.Fired() {
		t.Fatal("FailAt=0 fired")
	}
}

func TestFaultyPassthrough(t *testing.T) {
	eps := NewInProcGroup(2)
	a := NewFaulty(eps[0], 0)
	a.Send(1, 7, []byte("hi"))
	done := make(chan []Message, 1)
	go func() {
		msgs, _ := eps[1].Exchange()
		done <- msgs
	}()
	if _, err := a.Exchange(); err != nil {
		t.Fatal(err)
	}
	msgs := <-done
	if len(msgs) != 1 || msgs[0].Kind != 7 || string(msgs[0].Payload) != "hi" {
		t.Fatalf("messages = %+v", msgs)
	}
	if a.Rank() != 0 || a.Size() != 2 {
		t.Fatalf("rank/size passthrough broken: %d/%d", a.Rank(), a.Size())
	}
}
