package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestBackoffSchedule: delays double from backoffBase to backoffCap and
// every delay stays inside its jitter window [d/2, 3d/2).
func TestBackoffSchedule(t *testing.T) {
	bo := newBackoff(2, 0xdead, "127.0.0.1:9999")
	want := backoffBase
	for i := 0; i < 12; i++ {
		d := bo.next()
		if d < want/2 || d >= want/2+want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, want/2, want/2+want)
		}
		if want < backoffCap {
			want *= 2
			if want > backoffCap {
				want = backoffCap
			}
		}
	}
}

// TestBackoffDeterministic: the same (rank, nonce, addr) triple replays the
// same schedule; a different dialer rank diverges (no thundering herd).
func TestBackoffDeterministic(t *testing.T) {
	a, b := newBackoff(1, 7, "x:1"), newBackoff(1, 7, "x:1")
	c := newBackoff(2, 7, "x:1")
	same, diff := true, false
	for i := 0; i < 8; i++ {
		da, db, dc := a.next(), b.next(), c.next()
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
	}
	if !same {
		t.Error("identical seeds produced different schedules")
	}
	if !diff {
		t.Error("different dialer ranks produced identical schedules; jitter is not per-dialer")
	}
}

// TestDialRetrySchedule drives the retry loop with a fake clock and
// sleeper: dials always fail, the recorded sleeps must follow the jittered
// exponential schedule, and the loop must give up before exceeding the
// timeout.
func TestDialRetrySchedule(t *testing.T) {
	dialErr := errors.New("connection refused")
	clock := time.Unix(0, 0)
	var slept []time.Duration
	dials := 0
	dr := &dialRetrier{
		dial:  func(string) (net.Conn, error) { dials++; return nil, dialErr },
		sleep: func(d time.Duration) { slept = append(slept, d); clock = clock.Add(d) },
		now:   func() time.Time { return clock },
		bo:    newBackoff(0, 1, "127.0.0.1:1"),
	}
	timeout := 2 * time.Second
	_, err := dr.run("127.0.0.1:1", timeout)
	if !errors.Is(err, dialErr) {
		t.Fatalf("run returned %v, want the last dial error", err)
	}
	if dials < 2 {
		t.Fatalf("only %d dial attempts; retry loop did not retry", dials)
	}
	if dials != len(slept)+1 {
		t.Fatalf("%d dials but %d sleeps; want exactly one sleep between dials", dials, len(slept))
	}
	// Replay the schedule independently: the sleeps must match what the
	// same backoff seed produces, and their sum must stay under timeout.
	ref := newBackoff(0, 1, "127.0.0.1:1")
	var total time.Duration
	for i, d := range slept {
		if want := ref.next(); d != want {
			t.Fatalf("sleep %d was %v, want %v", i, d, want)
		}
		total += d
	}
	if total > timeout {
		t.Fatalf("slept %v total, exceeding the %v dial timeout", total, timeout)
	}
	// The loop must stop because the *next* sleep would overshoot.
	if clock.Add(ref.next()).Before(time.Unix(0, 0).Add(timeout)) {
		t.Error("loop gave up while another retry still fit in the timeout")
	}
}

// TestDialRetrySucceeds: a dial that starts succeeding ends the loop
// immediately with the live connection.
func TestDialRetrySucceeds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fails := 3
	clock := time.Unix(0, 0)
	dr := &dialRetrier{
		dial: func(a string) (net.Conn, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("not yet")
			}
			return net.Dial("tcp", a)
		},
		sleep: func(d time.Duration) { clock = clock.Add(d) },
		now:   func() time.Time { return clock },
		bo:    newBackoff(0, 0, "x"),
	}
	conn, err := dr.run(ln.Addr().String(), time.Minute)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	conn.Close()
	if fails != 0 {
		t.Error("loop returned before dial succeeded")
	}
}
