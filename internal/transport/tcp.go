package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for TCPOptions fields left zero.
const (
	// DefaultMaxMessages caps the message count one frame may claim.
	DefaultMaxMessages = 1 << 20
	// DefaultMaxFrameBytes caps the total payload bytes of one frame (1 GiB).
	DefaultMaxFrameBytes = 1 << 30
	// DefaultDialTimeout bounds mesh bring-up per peer.
	DefaultDialTimeout = 5 * time.Second
)

// ErrFrameTooLarge is wrapped by decode errors for frames whose on-wire
// message count or payload size exceeds the configured limits. The check
// happens before any allocation, so a corrupt or hostile length field
// cannot OOM the rank.
var ErrFrameTooLarge = errors.New("transport: frame exceeds decode limits")

// TCPOptions tunes the TCP transport's robustness envelope. The zero
// value means: no read/write deadlines (wait forever, the pre-hardening
// behavior), default decode limits, default dial timeout.
type TCPOptions struct {
	// ReadTimeout bounds the receipt of any single peer's complete frame
	// during Exchange. When it expires — a dead or wedged peer — Exchange
	// returns an error wrapping ErrTimeout instead of hanging the barrier.
	// Zero disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write (header, payloads, and flush).
	// Zero disables the deadline.
	WriteTimeout time.Duration
	// DialTimeout bounds mesh bring-up: the dial-retry window towards each
	// higher rank and the accept+handshake wait for each lower rank.
	// Zero selects DefaultDialTimeout.
	DialTimeout time.Duration
	// MaxMessages caps the per-frame message count a peer may claim.
	// Zero selects DefaultMaxMessages.
	MaxMessages uint32
	// MaxFrameBytes caps the per-frame total payload bytes.
	// Zero selects DefaultMaxFrameBytes.
	MaxFrameBytes int
	// Nonce, when nonzero, extends the bring-up handshake from [rank u32]
	// to [rank u32][nonce u64] and makes the accept side discard any
	// connection presenting a different nonce instead of failing bring-up.
	// A coordinator hands every rank a fresh nonce per attempt, so stale
	// connections from a previous (aborted) mesh — e.g. a dial that was
	// sitting in the listen backlog when the epoch died — cannot be seated
	// in the new mesh. Zero keeps the legacy rank-only handshake.
	Nonce uint64
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.MaxMessages == 0 {
		o.MaxMessages = DefaultMaxMessages
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	return o
}

// tcpEndpoint implements Endpoint over one TCP connection per peer, with a
// handshake identifying ranks and one length-prefixed frame per peer per
// Exchange round. The collective property (every rank sends exactly one
// frame to every other rank per round, possibly empty) makes Exchange both
// a delivery and a barrier, mirroring the in-process transport.
//
// Wire format per round, per directed peer pair:
//
//	round   uint64
//	count   uint32
//	repeat count times:
//	  kind  uint8
//	  len   uint32
//	  payload [len]byte
type tcpEndpoint struct {
	rank, size int
	opts       TCPOptions

	mu     sync.Mutex
	outbox [][]Message // per destination rank

	conns   []net.Conn // nil at own rank
	readers []*bufio.Reader
	writers []*bufio.Writer

	// frameBufs holds the pooled per-peer payload buffers backing the
	// previous Exchange's returned messages; they are recycled at the next
	// Exchange, which is what the Endpoint payload-ownership contract
	// licenses.
	frameBufs [][]byte

	round    uint64
	closed   atomic.Bool
	sentMsgs atomic.Int64
	sentByte atomic.Int64
}

// DialTCPGroup joins a TCP exchange group with default options. addrs
// lists the listen address of every rank, in rank order; the caller must
// run one DialTCPGroup per rank (typically in separate processes — tests
// use one process). Rank i listens on addrs[i], accepts connections from
// lower ranks, and dials higher ranks. The returned endpoint is ready once
// the full mesh is up.
func DialTCPGroup(rank int, addrs []string) (Endpoint, error) {
	return DialTCPGroupOpts(rank, addrs, TCPOptions{})
}

// DialTCPGroupOpts is DialTCPGroup with explicit deadline and decode
// limits. It binds a fresh listener on addrs[rank] and closes it once the
// mesh is up.
func DialTCPGroupOpts(rank int, addrs []string, opts TCPOptions) (Endpoint, error) {
	if len(addrs) == 1 {
		return dialTCPGroup(nil, rank, addrs, opts, false)
	}
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("transport: rank %d out of %d", rank, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
	}
	defer ln.Close()
	return dialTCPGroup(ln, rank, addrs, opts, false)
}

// DialTCPGroupOn is DialTCPGroupOpts over a caller-owned listener for
// addrs[rank]. The listener is NOT closed when bring-up finishes or fails,
// so one bound port can serve successive mesh epochs — a kkrank worker
// binds once, advertises the bound address to the coordinator, and reuses
// the listener across failover attempts without the close-then-rebind port
// race. Any bring-up deadline set on the listener is cleared before
// returning.
func DialTCPGroupOn(ln net.Listener, rank int, addrs []string, opts TCPOptions) (Endpoint, error) {
	return dialTCPGroup(ln, rank, addrs, opts, true)
}

func dialTCPGroup(ln net.Listener, rank int, addrs []string, opts TCPOptions, keepListener bool) (Endpoint, error) {
	n := len(addrs)
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: rank %d out of %d", rank, n)
	}
	e := &tcpEndpoint{
		rank:    rank,
		size:    n,
		opts:    opts.withDefaults(),
		outbox:  make([][]Message, n),
		conns:   make([]net.Conn, n),
		readers: make([]*bufio.Reader, n),
		writers: make([]*bufio.Writer, n),
	}
	if n == 1 {
		return e, nil
	}

	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(e.opts.DialTimeout))
		if keepListener {
			defer tl.SetDeadline(time.Time{})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)

	// Accept one connection from every lower rank. Connections that fail
	// the handshake — wrong nonce, bad rank, a peer already seated — are
	// discarded and accepting continues: under coordinated failover the
	// backlog may hold stale dials from the aborted epoch ahead of the
	// live ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seated := 0
		for seated < rank {
			conn, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("transport: accept: %w", err)
				return
			}
			peer, ok := e.acceptHandshake(conn, rank)
			if !ok || e.hasConn(peer) {
				conn.Close()
				continue
			}
			e.setConn(peer, conn)
			seated++
		}
	}()

	// Dial every higher rank, retrying with jittered exponential backoff
	// while its listener comes up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := rank + 1; i < n; i++ {
			conn, err := dialRetry(rank, e.opts.Nonce, addrs[i], e.opts.DialTimeout)
			if err != nil {
				errs <- fmt.Errorf("transport: dial %s: %w", addrs[i], err)
				return
			}
			conn.SetDeadline(time.Now().Add(e.opts.DialTimeout))
			if err := binary.Write(conn, binary.LittleEndian, uint32(rank)); err != nil {
				conn.Close()
				errs <- fmt.Errorf("transport: handshake write: %w", err)
				return
			}
			if e.opts.Nonce != 0 {
				if err := binary.Write(conn, binary.LittleEndian, e.opts.Nonce); err != nil {
					conn.Close()
					errs <- fmt.Errorf("transport: handshake nonce write: %w", err)
					return
				}
			}
			conn.SetDeadline(time.Time{})
			e.setConn(i, conn)
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		e.Close()
		return nil, err
	default:
	}
	return e, nil
}

// acceptHandshake validates one inbound bring-up handshake: a rank below
// ours, and — when a nonce is configured — our exact nonce. It returns the
// peer rank and whether the connection should be seated.
func (e *tcpEndpoint) acceptHandshake(conn net.Conn, rank int) (int, bool) {
	conn.SetDeadline(time.Now().Add(e.opts.DialTimeout))
	var peer uint32
	if err := binary.Read(conn, binary.LittleEndian, &peer); err != nil {
		return 0, false
	}
	if int(peer) >= e.size || int(peer) >= rank {
		return 0, false
	}
	if e.opts.Nonce != 0 {
		var nonce uint64
		if err := binary.Read(conn, binary.LittleEndian, &nonce); err != nil {
			return 0, false
		}
		if nonce != e.opts.Nonce {
			return 0, false
		}
	}
	conn.SetDeadline(time.Time{})
	return int(peer), true
}

func (e *tcpEndpoint) hasConn(peer int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.conns[peer] != nil
}

func (e *tcpEndpoint) setConn(peer int, conn net.Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.conns[peer] = conn
	e.readers[peer] = bufio.NewReaderSize(conn, 1<<16)
	e.writers[peer] = bufio.NewWriterSize(conn, 1<<16)
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) Send(to int, kind uint8, payload []byte) {
	if to < 0 || to >= e.size {
		panic(fmt.Sprintf("transport: send to rank %d of %d", to, e.size))
	}
	e.mu.Lock()
	e.outbox[to] = append(e.outbox[to], Message{From: e.rank, Kind: kind, Payload: payload})
	e.mu.Unlock()
	e.sentMsgs.Add(1)
	e.sentByte.Add(int64(len(payload)))
}

// Exchange writes this round's frames to all peers and reads all peers'
// frames concurrently — one reader goroutine per peer, so frames are
// consumed as they arrive off the wire instead of in rank order (no
// head-of-line blocking on a slow first peer). Delivery order remains
// deterministic: the collected messages are assembled in sender-rank
// order before returning.
func (e *tcpEndpoint) Exchange() ([]Message, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("transport: exchange on closed endpoint")
	}
	e.mu.Lock()
	round := e.round
	e.round++
	out := e.outbox
	e.outbox = make([][]Message, e.size)
	recycle := e.frameBufs
	e.frameBufs = nil
	e.mu.Unlock()

	// The previous round's payloads die here — the ownership contract on
	// Endpoint says callers may not hold them past this call.
	for _, b := range recycle {
		putFrameBuf(b)
	}

	// Self-delivery short-circuits the wire.
	received := append([]Message(nil), out[e.rank]...)

	if e.size == 1 {
		return received, nil
	}

	// Writers and readers all run concurrently. Concurrent writes prevent
	// a full-duplex deadlock when kernel buffers fill; concurrent reads
	// pipeline frame consumption across peers.
	var wg sync.WaitGroup
	writeErrs := make([]error, e.size)
	frames := make([][]Message, e.size)
	frameBufs := make([][]byte, e.size)
	readErrs := make([]error, e.size)
	for peer := 0; peer < e.size; peer++ {
		if peer == e.rank {
			continue
		}
		wg.Add(2)
		go func(peer int) {
			defer wg.Done()
			writeErrs[peer] = e.writeFrame(peer, round, out[peer])
		}(peer)
		go func(peer int) {
			defer wg.Done()
			frames[peer], frameBufs[peer], readErrs[peer] = e.readFrame(peer, round)
		}(peer)
	}
	wg.Wait()

	e.mu.Lock()
	e.frameBufs = append(e.frameBufs, frameBufs...)
	e.mu.Unlock()

	for peer := 0; peer < e.size; peer++ {
		if err := readErrs[peer]; err != nil {
			return nil, err
		}
		if err := writeErrs[peer]; err != nil {
			return nil, err
		}
	}
	for peer := 0; peer < e.size; peer++ {
		received = append(received, frames[peer]...)
	}
	return received, nil
}

// writeFrame encodes and flushes one round frame to peer, under the write
// deadline when one is configured.
func (e *tcpEndpoint) writeFrame(peer int, round uint64, msgs []Message) error {
	if d := e.opts.WriteTimeout; d > 0 {
		e.conns[peer].SetWriteDeadline(time.Now().Add(d))
		defer e.conns[peer].SetWriteDeadline(time.Time{})
	}
	w := e.writers[peer]
	if err := encodeFrame(w, round, msgs); err != nil {
		return wrapNetErr(err, "write frame", peer)
	}
	if err := w.Flush(); err != nil {
		return wrapNetErr(err, "flush frame", peer)
	}
	return nil
}

// readFrame reads and decodes one round frame from peer into a pooled
// buffer, under the read deadline when one is configured. The deadline
// covers the whole frame: a peer that stops making progress mid-frame
// surfaces as ErrTimeout.
func (e *tcpEndpoint) readFrame(peer int, round uint64) ([]Message, []byte, error) {
	if d := e.opts.ReadTimeout; d > 0 {
		e.conns[peer].SetReadDeadline(time.Now().Add(d))
		defer e.conns[peer].SetReadDeadline(time.Time{})
	}
	msgs, buf, err := decodeFrame(e.readers[peer], peer, round, frameLimits{
		maxMessages:   e.opts.MaxMessages,
		maxFrameBytes: e.opts.MaxFrameBytes,
	}, getFrameBuf())
	if err != nil {
		putFrameBuf(buf)
		return nil, nil, err
	}
	return msgs, buf, nil
}

// wrapNetErr attributes err to a peer, converting net deadline expiries
// into ErrTimeout so callers can match them.
func wrapNetErr(err error, what string, peer int) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("transport: %s, peer %d: %w", what, peer, ErrTimeout) //kk:alloc-ok error path: a timed-out or failed read aborts the exchange, never steady state
	}
	return fmt.Errorf("transport: %s, peer %d: %w", what, peer, err) //kk:alloc-ok error path: a timed-out or failed read aborts the exchange, never steady state
}

// encodeFrame writes one round frame (header plus msgs) to w. It is the
// canonical inverse of decodeFrame; both are standalone so the fuzz
// harness can round-trip them without a live connection.
//
//kk:hotpath
func encodeFrame(w io.Writer, round uint64, msgs []Message) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], round)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(msgs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var mh [5]byte
	for _, m := range msgs {
		mh[0] = m.Kind
		binary.LittleEndian.PutUint32(mh[1:5], uint32(len(m.Payload)))
		if _, err := w.Write(mh[:]); err != nil {
			return err
		}
		if _, err := w.Write(m.Payload); err != nil {
			return err
		}
	}
	return nil
}

// frameLimits bounds what decodeFrame will accept from the wire before
// allocating anything.
type frameLimits struct {
	maxMessages   uint32
	maxFrameBytes int
}

// decodeFrame reads one round frame from r. All payloads land in buf
// (grown as needed and returned), with the returned messages aliasing it:
// one buffer per frame instead of one allocation per message. Limits are
// validated against every on-wire length field before the corresponding
// allocation, so a corrupt frame yields an error wrapping ErrFrameTooLarge
// rather than an OOM.
//
//kk:hotpath
func decodeFrame(r io.Reader, peer int, wantRound uint64, lim frameLimits, buf []byte) ([]Message, []byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, wrapNetErr(err, "read frame header", peer)
	}
	gotRound := binary.LittleEndian.Uint64(hdr[0:8])
	if gotRound != wantRound {
		return nil, buf, fmt.Errorf("transport: round mismatch from %d: got %d want %d", peer, gotRound, wantRound) //kk:alloc-ok error path: a round mismatch aborts the exchange, never steady state
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	if count > lim.maxMessages {
		return nil, buf, fmt.Errorf("transport: frame from %d claims %d messages (limit %d): %w", //kk:alloc-ok error path: an oversized frame aborts the exchange, never steady state
			peer, count, lim.maxMessages, ErrFrameTooLarge)
	}
	// Spans are resolved into messages only after all payloads are read,
	// because growing buf may move it. The initial capacity is clamped so
	// a hostile count field alone cannot force a large allocation.
	type span struct {
		kind uint8
		off  int
		n    int
	}
	capHint := int(count)
	if capHint > 4096 {
		capHint = 4096
	}
	spans := make([]span, 0, capHint) //kk:alloc-ok per-frame span scratch: capacity is clamped, one small allocation per exchange round
	var mh [5]byte
	total := 0
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, mh[:]); err != nil {
			return nil, buf, wrapNetErr(err, "read message header", peer)
		}
		plen := int(binary.LittleEndian.Uint32(mh[1:5]))
		if plen > lim.maxFrameBytes || total > lim.maxFrameBytes-plen {
			return nil, buf, fmt.Errorf("transport: frame from %d exceeds %d payload bytes: %w", //kk:alloc-ok error path: an oversized frame aborts the exchange, never steady state
				peer, lim.maxFrameBytes, ErrFrameTooLarge)
		}
		buf = growFrameBuf(buf, total+plen)
		if _, err := io.ReadFull(r, buf[total:total+plen]); err != nil {
			return nil, buf, wrapNetErr(err, "read payload", peer)
		}
		spans = append(spans, span{kind: mh[0], off: total, n: plen})
		total += plen
	}
	msgs := make([]Message, len(spans)) //kk:alloc-ok per-frame message headers: one allocation per exchange round, not per message
	for i, s := range spans {
		// Full slice expressions cap each payload so an append by the
		// consumer cannot clobber its neighbor.
		msgs[i] = Message{From: peer, Kind: s.kind, Payload: buf[s.off : s.off+s.n : s.off+s.n]}
	}
	return msgs, buf, nil
}

// framePool recycles whole-frame payload buffers across exchange rounds.
var framePool = sync.Pool{New: func() interface{} { return []byte(nil) }}

//
//kk:hotpath
func getFrameBuf() []byte {
	return framePool.Get().([]byte)[:0]
}

//
//kk:hotpath
func putFrameBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	framePool.Put(b[:0]) //kk:alloc-ok slice boxing is inherent to sync.Pool; one per recycled frame buffer per round
}

// growFrameBuf extends b to length n, reallocating geometrically when
// capacity runs out.
//
//kk:hotpath
func growFrameBuf(b []byte, n int) []byte {
	if n <= cap(b) {
		return b[:n]
	}
	newCap := 2 * cap(b)
	if newCap < n {
		newCap = n
	}
	if newCap < 4096 {
		newCap = 4096
	}
	nb := make([]byte, n, newCap) //kk:alloc-ok amortized: the frame buffer grows geometrically, then is reused across rounds
	copy(nb, b)
	return nb
}

func (e *tcpEndpoint) Stats() (int64, int64) {
	return e.sentMsgs.Load(), e.sentByte.Load()
}

func (e *tcpEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	var first error
	for _, c := range e.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
