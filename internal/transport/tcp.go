package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// tcpEndpoint implements Endpoint over one TCP connection per peer, with a
// handshake identifying ranks and one length-prefixed frame per peer per
// Exchange round. The collective property (every rank sends exactly one
// frame to every other rank per round, possibly empty) makes Exchange both
// a delivery and a barrier, mirroring the in-process transport.
//
// Wire format per round, per directed peer pair:
//
//	round   uint64
//	count   uint32
//	repeat count times:
//	  kind  uint8
//	  len   uint32
//	  payload [len]byte
type tcpEndpoint struct {
	rank, size int

	mu     sync.Mutex
	outbox [][]Message // per destination rank

	conns   []net.Conn // nil at own rank
	readers []*bufio.Reader
	writers []*bufio.Writer

	round    uint64
	closed   atomic.Bool
	sentMsgs atomic.Int64
	sentByte atomic.Int64
}

// DialTCPGroup joins a TCP exchange group. addrs lists the listen address
// of every rank, in rank order; the caller must run one DialTCPGroup per
// rank (typically in separate processes — tests use one process). Rank i
// listens on addrs[i], accepts connections from lower ranks, and dials
// higher ranks. The returned endpoint is ready once the full mesh is up.
func DialTCPGroup(rank int, addrs []string) (Endpoint, error) {
	n := len(addrs)
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: rank %d out of %d", rank, n)
	}
	e := &tcpEndpoint{
		rank:    rank,
		size:    n,
		outbox:  make([][]Message, n),
		conns:   make([]net.Conn, n),
		readers: make([]*bufio.Reader, n),
		writers: make([]*bufio.Writer, n),
	}
	if n == 1 {
		return e, nil
	}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	errs := make(chan error, n)

	// Accept one connection from every lower rank.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("transport: accept: %w", err)
				return
			}
			var peer uint32
			if err := binary.Read(conn, binary.LittleEndian, &peer); err != nil {
				errs <- fmt.Errorf("transport: handshake read: %w", err)
				return
			}
			if int(peer) >= n || int(peer) >= rank {
				errs <- fmt.Errorf("transport: bad handshake rank %d", peer)
				return
			}
			e.setConn(int(peer), conn)
		}
	}()

	// Dial every higher rank, retrying while its listener comes up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := rank + 1; i < n; i++ {
			conn, err := dialRetry(addrs[i], 5*time.Second)
			if err != nil {
				errs <- fmt.Errorf("transport: dial %s: %w", addrs[i], err)
				return
			}
			if err := binary.Write(conn, binary.LittleEndian, uint32(rank)); err != nil {
				errs <- fmt.Errorf("transport: handshake write: %w", err)
				return
			}
			e.setConn(i, conn)
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		e.Close()
		return nil, err
	default:
	}
	return e, nil
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (e *tcpEndpoint) setConn(peer int, conn net.Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.conns[peer] = conn
	e.readers[peer] = bufio.NewReaderSize(conn, 1<<16)
	e.writers[peer] = bufio.NewWriterSize(conn, 1<<16)
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) Send(to int, kind uint8, payload []byte) {
	if to < 0 || to >= e.size {
		panic(fmt.Sprintf("transport: send to rank %d of %d", to, e.size))
	}
	e.mu.Lock()
	e.outbox[to] = append(e.outbox[to], Message{From: e.rank, Kind: kind, Payload: payload})
	e.mu.Unlock()
	e.sentMsgs.Add(1)
	e.sentByte.Add(int64(len(payload)))
}

func (e *tcpEndpoint) Exchange() ([]Message, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("transport: exchange on closed endpoint")
	}
	e.mu.Lock()
	round := e.round
	e.round++
	out := e.outbox
	e.outbox = make([][]Message, e.size)
	e.mu.Unlock()

	// Self-delivery short-circuits the wire.
	received := append([]Message(nil), out[e.rank]...)

	if e.size == 1 {
		return received, nil
	}

	// Write frames to all peers concurrently; read frames from all peers
	// in this goroutine. Concurrent writes prevent a full-duplex deadlock
	// when kernel buffers fill.
	writeErrs := make(chan error, e.size)
	var wg sync.WaitGroup
	for peer := 0; peer < e.size; peer++ {
		if peer == e.rank {
			continue
		}
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			writeErrs <- e.writeFrame(peer, round, out[peer])
		}(peer)
	}

	var readErr error
	for peer := 0; peer < e.size; peer++ {
		if peer == e.rank {
			continue
		}
		msgs, err := e.readFrame(peer, round)
		if err != nil {
			readErr = err
			break
		}
		received = append(received, msgs...)
	}
	wg.Wait()
	close(writeErrs)
	for err := range writeErrs {
		if err != nil {
			return nil, err
		}
	}
	if readErr != nil {
		return nil, readErr
	}
	return received, nil
}

func (e *tcpEndpoint) writeFrame(peer int, round uint64, msgs []Message) error {
	w := e.writers[peer]
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], round)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(msgs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header to %d: %w", peer, err)
	}
	var mh [5]byte
	for _, m := range msgs {
		mh[0] = m.Kind
		binary.LittleEndian.PutUint32(mh[1:5], uint32(len(m.Payload)))
		if _, err := w.Write(mh[:]); err != nil {
			return fmt.Errorf("transport: write message header to %d: %w", peer, err)
		}
		if _, err := w.Write(m.Payload); err != nil {
			return fmt.Errorf("transport: write payload to %d: %w", peer, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("transport: flush to %d: %w", peer, err)
	}
	return nil
}

func (e *tcpEndpoint) readFrame(peer int, round uint64) ([]Message, error) {
	r := e.readers[peer]
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: read frame header from %d: %w", peer, err)
	}
	gotRound := binary.LittleEndian.Uint64(hdr[0:8])
	if gotRound != round {
		return nil, fmt.Errorf("transport: round mismatch from %d: got %d want %d", peer, gotRound, round)
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	msgs := make([]Message, 0, count)
	var mh [5]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, mh[:]); err != nil {
			return nil, fmt.Errorf("transport: read message header from %d: %w", peer, err)
		}
		plen := binary.LittleEndian.Uint32(mh[1:5])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("transport: read payload from %d: %w", peer, err)
		}
		msgs = append(msgs, Message{From: peer, Kind: mh[0], Payload: payload})
	}
	return msgs, nil
}

func (e *tcpEndpoint) Stats() (int64, int64) {
	return e.sentMsgs.Load(), e.sentByte.Load()
}

func (e *tcpEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	var first error
	for _, c := range e.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
