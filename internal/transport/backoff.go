package transport

import (
	"hash/fnv"
	"net"
	"time"

	"knightking/internal/rng"
)

// Mesh bring-up dial retry schedule: jittered exponential backoff. A
// respawned rank rejoining a re-forming mesh dials every higher peer at
// once; without jitter all dialers of a slow-to-listen peer retry in
// lockstep and hammer its accept queue the instant it binds. The schedule
// doubles from backoffBase to backoffCap, and each delay is drawn
// uniformly from [d/2, 3d/2) using a deterministic per-dialer stream —
// deterministic so the schedule itself is unit-testable, per-dialer so
// concurrent dialers decorrelate.
const (
	backoffBase = 5 * time.Millisecond
	backoffCap  = 250 * time.Millisecond
)

// backoff produces the jittered exponential delay sequence for one
// dialer→target pair.
type backoff struct {
	attempt int
	r       rng.Rand
}

// newBackoff seeds the jitter stream from the dialing rank, the mesh
// nonce, and the target address, so every (dialer, target) pair walks a
// different schedule while remaining reproducible.
func newBackoff(dialerRank int, nonce uint64, addr string) backoff {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr)) // hash.Hash.Write never errors
	return backoff{r: rng.Stream(h.Sum64()^nonce, uint64(dialerRank))}
}

// next returns the delay before the upcoming retry: base·2^attempt capped
// at backoffCap, jittered to [d/2, 3d/2).
func (b *backoff) next() time.Duration {
	d := backoffBase << uint(b.attempt)
	if d > backoffCap || d <= 0 {
		d = backoffCap
	} else {
		b.attempt++
	}
	return d/2 + time.Duration(b.r.Uint64n(uint64(d)))
}

// dialRetrier runs the retry loop with injectable dial, sleep, and clock —
// production uses the real ones; tests substitute fakes to verify the
// schedule without wall-clock waits.
type dialRetrier struct {
	dial  func(addr string) (net.Conn, error)
	sleep func(d time.Duration)
	now   func() time.Time
	bo    backoff
}

// run dials addr until success or until timeout has elapsed, sleeping the
// backoff schedule between attempts. The last dial error is returned on
// timeout.
func (dr *dialRetrier) run(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := dr.now().Add(timeout)
	for {
		conn, err := dr.dial(addr)
		if err == nil {
			return conn, nil
		}
		d := dr.bo.next()
		if dr.now().Add(d).After(deadline) {
			return nil, err
		}
		dr.sleep(d)
	}
}

func dialRetry(dialerRank int, nonce uint64, addr string, timeout time.Duration) (net.Conn, error) {
	dr := &dialRetrier{
		dial:  func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
		sleep: time.Sleep,
		now:   time.Now,
		bo:    newBackoff(dialerRank, nonce, addr),
	}
	return dr.run(addr, timeout)
}
