package transport

import (
	"sync"
	"testing"
	"time"
)

type recordingObserver struct {
	mu        sync.Mutex
	exchanges int
	messages  int
	bytes     int64
	payloads  []int
}

func (r *recordingObserver) ObserveExchange(d time.Duration, messages int, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d < 0 {
		panic("negative exchange duration")
	}
	r.exchanges++
	r.messages += messages
	r.bytes += bytes
}

func (r *recordingObserver) ObserveFramePayload(bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.payloads = append(r.payloads, bytes)
}

// TestWithObserver checks that the wrapper reports every delivered message
// and its payload size, and passes the messages through unchanged.
func TestWithObserver(t *testing.T) {
	eps := NewInProcGroup(2)
	obs := &recordingObserver{}
	a := WithObserver(eps[0], obs)
	b := eps[1]

	a.Send(1, 1, []byte("hello"))
	b.Send(0, 2, []byte("wide world"))
	b.Send(0, 3, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Exchange(); err != nil {
			t.Errorf("peer exchange: %v", err)
		}
	}()
	msgs, err := a.Exchange()
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	wg.Wait()

	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want 2", len(msgs))
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.exchanges != 1 {
		t.Errorf("observed %d exchanges, want 1", obs.exchanges)
	}
	if obs.messages != 2 {
		t.Errorf("observed %d delivered messages, want 2", obs.messages)
	}
	if obs.bytes != int64(len("wide world")) {
		t.Errorf("observed %d bytes, want %d", obs.bytes, len("wide world"))
	}
	if len(obs.payloads) != 2 {
		t.Fatalf("observed %d frame payloads, want 2", len(obs.payloads))
	}
	total := obs.payloads[0] + obs.payloads[1]
	if total != len("wide world") {
		t.Errorf("payload sizes %v sum to %d, want %d", obs.payloads, total, len("wide world"))
	}
}

// TestWithObserverNil pins that a nil observer leaves the endpoint
// unwrapped, so the no-telemetry path pays nothing.
func TestWithObserverNil(t *testing.T) {
	eps := NewInProcGroup(1)
	if got := WithObserver(eps[0], nil); got != eps[0] {
		t.Errorf("WithObserver(ep, nil) wrapped the endpoint")
	}
}

// TestWithObserverComposes stacks the observer under the exchange timeout
// guard, the order core.Run uses, and checks messages still flow.
func TestWithObserverComposes(t *testing.T) {
	eps := NewInProcGroup(2)
	obs := &recordingObserver{}
	a := WithExchangeTimeout(WithObserver(eps[0], obs), time.Minute)

	eps[1].Send(0, 1, []byte("x"))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := eps[1].Exchange(); err != nil {
			t.Errorf("peer exchange: %v", err)
		}
	}()
	msgs, err := a.Exchange()
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	wg.Wait()
	if len(msgs) != 1 || string(msgs[0].Payload) != "x" {
		t.Fatalf("messages corrupted through the stack: %+v", msgs)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.exchanges != 1 || obs.messages != 1 {
		t.Errorf("observer missed the exchange: %+v", obs)
	}
}
