package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzLimits are deliberately small so the fuzzer exercises the limit
// checks, not just the happy path.
var fuzzLimits = frameLimits{maxMessages: 1 << 10, maxFrameBytes: 1 << 16}

// frameBytes encodes a frame through the production encoder, for seeds.
func frameBytes(t interface{ Fatal(...interface{}) }, round uint64, msgs []Message) []byte {
	var b bytes.Buffer
	if err := encodeFrame(&b, round, msgs); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// FuzzReadFrame throws arbitrary bytes at the TCP frame decoder. It must
// never panic and never allocate beyond the configured limits, and
// whatever it accepts must re-encode to exactly the bytes it consumed
// (the codec is canonical). Before this target existed, readFrame did
// `make([]byte, plen)` with plen straight off the wire.
func FuzzReadFrame(f *testing.F) {
	const round = 42
	// A healthy two-message frame.
	f.Add(frameBytes(f, round, []Message{
		{Kind: 1, Payload: []byte("hello")},
		{Kind: 2, Payload: nil},
	}))
	// Truncated header.
	f.Add([]byte{42, 0, 0})
	// Round mismatch.
	f.Add(frameBytes(f, round+1, []Message{{Kind: 1, Payload: []byte("x")}}))
	// Oversized payload length: count 1, then kind 0 and plen 0xffffffff.
	over := frameBytes(f, round, nil)
	over[8] = 1
	f.Add(append(over, 0, 0xff, 0xff, 0xff, 0xff))
	// Hostile message count with no data behind it.
	huge := frameBytes(f, round, nil)
	binary.LittleEndian.PutUint32(huge[8:12], 0xffffffff)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		msgs, _, err := decodeFrame(r, 1, round, fuzzLimits, nil)
		if err != nil {
			return
		}
		if uint32(len(msgs)) > fuzzLimits.maxMessages {
			t.Fatalf("decoded %d messages past the limit %d", len(msgs), fuzzLimits.maxMessages)
		}
		total := 0
		for _, m := range msgs {
			if m.From != 1 {
				t.Fatalf("message From = %d, want 1", m.From)
			}
			total += len(m.Payload)
		}
		if total > fuzzLimits.maxFrameBytes {
			t.Fatalf("decoded %d payload bytes past the limit %d", total, fuzzLimits.maxFrameBytes)
		}
		consumed := data[:len(data)-r.Len()]
		re := frameBytes(t, round, msgs)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode differs from consumed bytes:\n got %x\nwant %x", re, consumed)
		}
	})
}

// TestDecodeFrameLimits pins the two bounded-decode rejections with
// deterministic inputs (the fuzz target covers the space around them).
func TestDecodeFrameLimits(t *testing.T) {
	lim := frameLimits{maxMessages: 4, maxFrameBytes: 64}

	tooMany := frameBytes(t, 0, nil)
	binary.LittleEndian.PutUint32(tooMany[8:12], 5)
	if _, _, err := decodeFrame(bytes.NewReader(tooMany), 0, 0, lim, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized count error = %v, want ErrFrameTooLarge", err)
	}

	// A single message claiming 65 payload bytes against a 64-byte budget.
	big := frameBytes(t, 0, nil)
	big[8] = 1
	big = append(big, 7, 65, 0, 0, 0)
	if _, _, err := decodeFrame(bytes.NewReader(big), 0, 0, lim, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized payload error = %v, want ErrFrameTooLarge", err)
	}

	// Cumulative overflow: two 40-byte messages against a 64-byte budget.
	two := frameBytes(t, 0, []Message{
		{Kind: 1, Payload: make([]byte, 40)},
		{Kind: 1, Payload: make([]byte, 40)},
	})
	if _, _, err := decodeFrame(bytes.NewReader(two), 0, 0, lim, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("cumulative overflow error = %v, want ErrFrameTooLarge", err)
	}

	// The same frames decode fine under default limits.
	if _, _, err := decodeFrame(bytes.NewReader(two), 0, 0,
		frameLimits{maxMessages: DefaultMaxMessages, maxFrameBytes: DefaultMaxFrameBytes}, nil); err != nil {
		t.Fatalf("frame within default limits rejected: %v", err)
	}
}
