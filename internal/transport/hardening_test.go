// Tests for the transport hardening layer: read/write deadlines, the
// exchange-timeout guard, and the pooled-payload ownership contract.
package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// dialTCPGroupAllOpts is dialTCPGroupAll with explicit options.
func dialTCPGroupAllOpts(t *testing.T, n int, opts TCPOptions) []Endpoint {
	t.Helper()
	addrs := freeAddrs(t, n)
	eps := make([]Endpoint, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := DialTCPGroupOpts(i, addrs, opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			eps[i] = e
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	t.Cleanup(func() {
		for _, e := range eps {
			if e != nil {
				e.Close()
			}
		}
	})
	return eps
}

// TestTCPStalledPeerTimesOut: a peer that is alive but never enters
// Exchange (it sends no frame and closes nothing) used to hang the
// barrier forever — readFrame had no deadline, so io.ReadFull blocked
// indefinitely and checkpoint recovery could never kick in. With
// ReadTimeout set, Exchange must surface ErrTimeout within the budget.
func TestTCPStalledPeerTimesOut(t *testing.T) {
	const timeout = 300 * time.Millisecond
	eps := dialTCPGroupAllOpts(t, 2, TCPOptions{ReadTimeout: timeout})

	done := make(chan error, 1)
	start := time.Now()
	go func() {
		eps[0].Send(1, 1, []byte("hello"))
		_, err := eps[0].Exchange()
		done <- err
	}()
	// Rank 1 stalls: never calls Exchange, never closes.
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("stalled peer error = %v, want ErrTimeout", err)
		}
		if elapsed := time.Since(start); elapsed > 10*timeout {
			t.Fatalf("timeout took %v, budget was %v", elapsed, timeout)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("exchange with stalled peer hung despite read deadline")
	}
}

// TestExchangeTimeoutGuardStalledRank: the transport-agnostic guard turns
// an in-process barrier hang (one rank never arrives) into ErrTimeout and
// tears the group down so other waiters unblock too.
func TestExchangeTimeoutGuardStalledRank(t *testing.T) {
	eps := NewInProcGroup(3)
	guarded := WithExchangeTimeout(eps[0], 200*time.Millisecond)

	errs := make(chan error, 2)
	go func() {
		_, err := guarded.Exchange()
		errs <- err
	}()
	go func() {
		_, err := eps[1].Exchange() // unguarded waiter, unblocked by teardown
		errs <- err
	}()
	// Rank 2 never arrives.
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("waiter returned nil error after guard fired")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("guard did not unblock the barrier")
		}
	}
}

// TestExchangeTimeoutGuardPassthrough: a healthy exchange under the guard
// delivers exactly what the raw endpoint would.
func TestExchangeTimeoutGuardPassthrough(t *testing.T) {
	eps := NewInProcGroup(2)
	a := WithExchangeTimeout(eps[0], time.Minute)
	b := WithExchangeTimeout(eps[1], time.Minute)
	if WithExchangeTimeout(eps[0], 0) != eps[0] {
		t.Fatal("zero timeout should return the endpoint unchanged")
	}
	runGroup(t, []Endpoint{a, b}, func(e Endpoint) error {
		e.Send(1-e.Rank(), 9, []byte{byte(e.Rank())})
		msgs, err := e.Exchange()
		if err != nil {
			return err
		}
		if len(msgs) != 1 || msgs[0].Payload[0] != byte(1-e.Rank()) {
			return fmt.Errorf("guarded exchange mangled delivery: %+v", msgs)
		}
		return nil
	})
}

// TestTCPWriteTimeout: a peer that reads nothing while we push more data
// than the kernel buffers absorb must fail the write deadline rather than
// block forever.
func TestTCPWriteTimeout(t *testing.T) {
	eps := dialTCPGroupAllOpts(t, 2, TCPOptions{
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 300 * time.Millisecond,
	})
	big := make([]byte, 64<<20) // far beyond socket buffers
	done := make(chan error, 1)
	go func() {
		eps[0].Send(1, 1, big)
		_, err := eps[0].Exchange()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("unread bulk write error = %v, want ErrTimeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write to non-reading peer hung despite write deadline")
	}
}

// TestTCPPayloadValidAcrossRound asserts the ownership contract from the
// consumer side: payloads are intact and independent within a round (the
// shared frame buffer must not let one message bleed into another), and
// recycling across many rounds of varying sizes never corrupts data.
func TestTCPPayloadValidAcrossRound(t *testing.T) {
	eps := dialTCPGroupAll(t, 2)
	runGroup(t, eps, func(e Endpoint) error {
		for round := 0; round < 8; round++ {
			// Vary message sizes per round to force pool reuse and growth.
			n := 1 + (round*3)%5
			for k := 0; k < n; k++ {
				payload := bytes.Repeat([]byte{byte(10*round + k)}, 100*(k+1))
				e.Send(1-e.Rank(), uint8(k), payload)
			}
			msgs, err := e.Exchange()
			if err != nil {
				return err
			}
			if len(msgs) != n {
				return fmt.Errorf("round %d: got %d messages, want %d", round, len(msgs), n)
			}
			for k, m := range msgs {
				want := bytes.Repeat([]byte{byte(10*round + k)}, 100*(k+1))
				if !bytes.Equal(m.Payload, want) {
					return fmt.Errorf("round %d message %d corrupted", round, k)
				}
				// Appending to one payload must not clobber its neighbor in
				// the shared frame buffer.
				_ = append(m.Payload, 0xff)
			}
			for k, m := range msgs {
				want := bytes.Repeat([]byte{byte(10*round + k)}, 100*(k+1))
				if !bytes.Equal(m.Payload, want) {
					return fmt.Errorf("round %d message %d clobbered by neighbor append", round, k)
				}
			}
		}
		return nil
	})
}
