package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the sentinel error a Faulty endpoint returns when its
// programmed crash fires. Callers (the crash-injection test harness) match
// it with errors.Is.
var ErrInjected = errors.New("transport: injected fault")

// Faulty wraps an endpoint so that its FailAt-th Exchange call (1-based)
// fails instead of completing. Firing also closes the underlying endpoint,
// which under both the in-process and TCP transports tears the whole group
// down — peers blocked in Exchange return errors — mimicking how a node
// death stalls and then aborts a bulk-synchronous job. A FailAt of 0 never
// fires.
//
// The wrapper exists so tests can kill a simulated rank at a chosen point
// and prove that run-to-completion is equivalent to crash-plus-resume from
// the latest checkpoint (see internal/checkpoint).
type Faulty struct {
	Endpoint

	mu        sync.Mutex
	exchanges int
	failAt    int
	fired     bool
}

// NewFaulty wraps ep to fail its failAt-th Exchange call.
func NewFaulty(ep Endpoint, failAt int) *Faulty {
	return &Faulty{Endpoint: ep, failAt: failAt}
}

// Exchange counts the call and either fires the programmed crash or
// delegates to the wrapped endpoint.
func (f *Faulty) Exchange() ([]Message, error) {
	f.mu.Lock()
	f.exchanges++
	fire := !f.fired && f.failAt > 0 && f.exchanges >= f.failAt
	if fire {
		f.fired = true
	}
	count := f.exchanges
	f.mu.Unlock()
	if fire {
		f.Endpoint.Close()
		return nil, fmt.Errorf("%w: rank %d died at exchange %d", ErrInjected, f.Rank(), count)
	}
	return f.Endpoint.Exchange()
}

// Exchanges returns how many Exchange calls the wrapper has seen, letting
// a harness convert between supersteps and exchange counts.
func (f *Faulty) Exchanges() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.exchanges
}

// Fired reports whether the programmed crash has happened.
func (f *Faulty) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}
