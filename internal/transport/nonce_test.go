package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
)

// bringUpPair forms a 2-rank mesh where rank 1 uses the caller-owned
// listener ln and both sides use opts, then round-trips one message.
func bringUpPair(t *testing.T, ln net.Listener, opts TCPOptions) {
	t.Helper()
	addrs := []string{"", ln.Addr().String()}
	var wg sync.WaitGroup
	eps := make([]Endpoint, 2)
	errs := make([]error, 2)

	// Rank 0 listens on an ephemeral port of its own.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln0.Close()
	addrs[0] = ln0.Addr().String()

	wg.Add(2)
	go func() { defer wg.Done(); eps[0], errs[0] = DialTCPGroupOn(ln0, 0, addrs, opts) }()
	go func() { defer wg.Done(); eps[1], errs[1] = DialTCPGroupOn(ln, 1, addrs, opts) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d bring-up: %v", i, err)
		}
	}
	defer eps[0].Close()
	defer eps[1].Close()

	eps[0].Send(1, 9, []byte("ping"))
	var xwg sync.WaitGroup
	var got []Message
	xwg.Add(2)
	go func() { defer xwg.Done(); _, _ = eps[0].Exchange() }()
	go func() { defer xwg.Done(); got, _ = eps[1].Exchange() }()
	xwg.Wait()
	if len(got) != 1 || string(got[0].Payload) != "ping" {
		t.Fatalf("rank 1 received %v, want one ping", got)
	}
}

// TestDialTCPGroupOnKeepsListener: a caller-owned listener survives one
// mesh epoch and serves a second one — the failover reuse pattern.
func TestDialTCPGroupOnKeepsListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	bringUpPair(t, ln, TCPOptions{Nonce: 1})
	// Same listener, next epoch with a fresh nonce.
	bringUpPair(t, ln, TCPOptions{Nonce: 2})
}

// TestNonceRejectsStaleDial: a stale connection presenting the previous
// epoch's nonce is discarded and the mesh still forms from the live dial.
func TestNonceRejectsStaleDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A stale "rank 0" from epoch 41 sits in the backlog first.
	stale, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if err := binary.Write(stale, binary.LittleEndian, uint32(0)); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(stale, binary.LittleEndian, uint64(41)); err != nil {
		t.Fatal(err)
	}

	bringUpPair(t, ln, TCPOptions{Nonce: 42})
}
