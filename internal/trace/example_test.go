package trace_test

import (
	"fmt"

	"knightking/internal/graph"
	"knightking/internal/trace"
)

func ExampleCorpus_Pairs() {
	c := trace.New([][]graph.VertexID{{10, 20, 30}})
	c.Pairs(1, func(center, context graph.VertexID) bool {
		fmt.Println(center, "->", context)
		return true
	})
	// Output:
	// 10 -> 20
	// 20 -> 10
	// 20 -> 30
	// 30 -> 20
}

func ExampleCorpus_Frequencies() {
	c := trace.New([][]graph.VertexID{{0, 1, 1}, {1, 2}})
	fmt.Println(c.Frequencies(0))
	fmt.Println("tokens:", c.Tokens())
	// Output:
	// [1 3 1]
	// tokens: 5
}
