// Package trace manages random walk corpora: the walk sequences that
// DeepWalk- and node2vec-style pipelines feed into a SkipGram trainer.
// It provides text and binary serialization, corpus statistics, and
// windowed co-occurrence iteration (the pair stream SkipGram consumes).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"knightking/internal/graph"
)

// Corpus is a set of walk sequences.
type Corpus struct {
	walks [][]graph.VertexID
}

// New creates a corpus from walk sequences (retained, not copied; nil and
// empty walks are dropped).
func New(walks [][]graph.VertexID) *Corpus {
	c := &Corpus{}
	for _, w := range walks {
		if len(w) > 0 {
			c.walks = append(c.walks, w)
		}
	}
	return c
}

// Len returns the number of walks.
func (c *Corpus) Len() int { return len(c.walks) }

// Walk returns the i-th walk (aliased, do not modify).
func (c *Corpus) Walk(i int) []graph.VertexID { return c.walks[i] }

// Tokens returns the total number of vertex occurrences.
func (c *Corpus) Tokens() int64 {
	var n int64
	for _, w := range c.walks {
		n += int64(len(w))
	}
	return n
}

// MaxVertex returns the largest vertex ID present (0 for an empty corpus).
func (c *Corpus) MaxVertex() graph.VertexID {
	var m graph.VertexID
	for _, w := range c.walks {
		for _, v := range w {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Frequencies returns per-vertex occurrence counts, sized to cover every
// vertex seen (or at least n entries if n is larger).
func (c *Corpus) Frequencies(n int) []int64 {
	size := int(c.MaxVertex()) + 1
	if c.Len() == 0 {
		size = 0
	}
	if n > size {
		size = n
	}
	freq := make([]int64, size)
	for _, w := range c.walks {
		for _, v := range w {
			freq[v]++
		}
	}
	return freq
}

// Pairs streams every (center, context) pair within the given window to
// fn, walk by walk — the exact pair stream SkipGram trains on. fn
// returning false stops the iteration early.
func (c *Corpus) Pairs(window int, fn func(center, context graph.VertexID) bool) {
	if window <= 0 {
		panic("trace: Pairs requires window > 0")
	}
	for _, w := range c.walks {
		for i, center := range w {
			lo := i - window
			if lo < 0 {
				lo = 0
			}
			hi := i + window
			if hi >= len(w) {
				hi = len(w) - 1
			}
			for j := lo; j <= hi; j++ {
				if j == i {
					continue
				}
				if !fn(center, w[j]) {
					return
				}
			}
		}
	}
}

// CountPairs returns the number of (center, context) pairs in the window.
func (c *Corpus) CountPairs(window int) int64 {
	var n int64
	c.Pairs(window, func(_, _ graph.VertexID) bool {
		n++
		return true
	})
	return n
}

// Write serializes the corpus as text: one walk per line, space-separated
// vertex IDs.
func (c *Corpus) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, walk := range c.walks {
		for i, v := range walk {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(v), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a text corpus written by Write.
func Read(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	c := &Corpus{}
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		walk := make([]graph.VertexID, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
			walk[i] = graph.VertexID(v)
		}
		c.walks = append(c.walks, walk)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return c, nil
}

// Binary format:
//
//	magic   uint32 = 0x4b4b574b ("KKWK")
//	count   uint64
//	repeat count times: len uint32, then len uint32 vertex IDs

const binaryMagic = 0x4b4b574b

// WriteBinary serializes the corpus compactly.
func (c *Corpus) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(binaryMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.walks))); err != nil {
		return err
	}
	for _, walk := range c.walks {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(walk))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, walk); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a corpus written by WriteBinary.
func ReadBinary(r io.Reader) (*Corpus, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: binary count: %w", err)
	}
	const chunk = 1 << 14
	c := &Corpus{}
	if count < chunk {
		c.walks = make([][]graph.VertexID, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("trace: walk %d length: %w", i, err)
		}
		// Bound per-read allocation against lying headers.
		walk := make([]graph.VertexID, 0, minU32(n, chunk))
		for remaining := n; remaining > 0; {
			take := minU32(remaining, chunk)
			buf := make([]graph.VertexID, take)
			if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
				return nil, fmt.Errorf("trace: walk %d body: %w", i, err)
			}
			walk = append(walk, buf...)
			remaining -= take
		}
		c.walks = append(c.walks, walk)
	}
	return c, nil
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
