package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"knightking/internal/graph"
)

func sample() *Corpus {
	return New([][]graph.VertexID{
		{1, 2, 3},
		{4, 5},
		nil, // dropped
		{6},
	})
}

func TestNewDropsEmpty(t *testing.T) {
	c := sample()
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestTokensAndMaxVertex(t *testing.T) {
	c := sample()
	if c.Tokens() != 6 {
		t.Fatalf("Tokens = %d", c.Tokens())
	}
	if c.MaxVertex() != 6 {
		t.Fatalf("MaxVertex = %d", c.MaxVertex())
	}
	empty := New(nil)
	if empty.Tokens() != 0 || empty.MaxVertex() != 0 {
		t.Fatal("empty corpus stats wrong")
	}
}

func TestFrequencies(t *testing.T) {
	c := New([][]graph.VertexID{{1, 1, 2}, {2, 3}})
	freq := c.Frequencies(0)
	want := []int64{0, 2, 2, 1}
	if len(freq) != len(want) {
		t.Fatalf("freq len %d", len(freq))
	}
	for i, w := range want {
		if freq[i] != w {
			t.Fatalf("freq[%d] = %d, want %d", i, freq[i], w)
		}
	}
	// Padding to n entries.
	if got := c.Frequencies(10); len(got) != 10 {
		t.Fatalf("padded len %d", len(got))
	}
}

func TestPairsWindow(t *testing.T) {
	c := New([][]graph.VertexID{{1, 2, 3, 4}})
	var pairs [][2]graph.VertexID
	c.Pairs(1, func(a, b graph.VertexID) bool {
		pairs = append(pairs, [2]graph.VertexID{a, b})
		return true
	})
	// Window 1 on a 4-walk: (1,2) (2,1) (2,3) (3,2) (3,4) (4,3).
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs: %v", len(pairs), pairs)
	}
	if c.CountPairs(1) != 6 {
		t.Fatalf("CountPairs = %d", c.CountPairs(1))
	}
	// Window >= walk length: every ordered pair.
	if got := c.CountPairs(10); got != 12 {
		t.Fatalf("full-window pairs = %d, want 12", got)
	}
}

func TestPairsEarlyStop(t *testing.T) {
	c := New([][]graph.VertexID{{1, 2, 3, 4, 5}})
	n := 0
	c.Pairs(2, func(_, _ graph.VertexID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop did not work: %d", n)
	}
}

func TestPairsPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 did not panic")
		}
	}()
	sample().Pairs(0, func(_, _ graph.VertexID) bool { return true })
}

func TestTextRoundTrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCorpus(t, c, got)
}

func TestReadSkipsBlankLines(t *testing.T) {
	c, err := Read(strings.NewReader("1 2\n\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("1 x 3\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCorpus(t, c, got)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func assertEqualCorpus(t *testing.T, a, b *Corpus) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		wa, wb := a.Walk(i), b.Walk(i)
		if len(wa) != len(wb) {
			t.Fatalf("walk %d lengths differ", i)
		}
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("walk %d diverges at %d", i, j)
			}
		}
	}
}

func TestPairsCountQuick(t *testing.T) {
	// Property: CountPairs(window) equals the closed-form sum over walks.
	f := func(lens []uint8, window uint8) bool {
		w := int(window%6) + 1
		var walks [][]graph.VertexID
		for _, l := range lens {
			n := int(l % 20)
			walk := make([]graph.VertexID, n)
			for i := range walk {
				walk[i] = graph.VertexID(i)
			}
			walks = append(walks, walk)
		}
		c := New(walks)
		var want int64
		for i := 0; i < c.Len(); i++ {
			n := len(c.Walk(i))
			for j := 0; j < n; j++ {
				lo, hi := j-w, j+w
				if lo < 0 {
					lo = 0
				}
				if hi > n-1 {
					hi = n - 1
				}
				want += int64(hi - lo)
			}
		}
		return c.CountPairs(w) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
