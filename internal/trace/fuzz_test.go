package trace

import (
	"bytes"
	"strings"
	"testing"

	"knightking/internal/graph"
)

// FuzzRead checks the text corpus parser never panics and that accepted
// corpora round-trip through Write.
func FuzzRead(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("")
	f.Add("0\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatal(err)
		}
		c2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if c.Len() != c2.Len() || c.Tokens() != c2.Tokens() {
			t.Fatalf("round trip changed corpus: (%d,%d) vs (%d,%d)",
				c.Len(), c.Tokens(), c2.Len(), c2.Tokens())
		}
	})
}

// FuzzReadBinary checks the binary corpus loader on arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := New([][]graph.VertexID{{1, 2}, {3}}).WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		c, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := c.WriteBinary(&out); err != nil {
			t.Fatal(err)
		}
		c2, err := ReadBinary(&out)
		if err != nil || c2.Len() != c.Len() {
			t.Fatalf("binary round trip broken: %v", err)
		}
	})
}
