package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"knightking/internal/core"
)

// TestLoadRank: a committed checkpoint loads per rank with only that
// rank's segment populated, matching the full Load's view.
func TestLoadRank(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Seed: 3, NumWalkers: 10, NumVertices: 20, Algorithm: "deepwalk"}
	s, err := NewStore(dir, 2, meta)
	if err != nil {
		t.Fatal(err)
	}
	blobs := [][]byte{[]byte("rank zero state"), []byte("rank one"), []byte("rank two bytes")}
	var segs []core.SegmentInfo
	for rank, b := range blobs {
		info, err := s.WriteSegment(4, rank, b)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, info)
	}
	if err := s.Commit(4, segs); err != nil {
		t.Fatal(err)
	}

	for rank, want := range blobs {
		c, err := LoadRank(dir, rank)
		if err != nil {
			t.Fatalf("LoadRank(%d): %v", rank, err)
		}
		if c.Iteration != 4 || c.Meta != meta {
			t.Fatalf("LoadRank(%d) header = %d/%+v", rank, c.Iteration, c.Meta)
		}
		if len(c.Segments) != len(blobs) {
			t.Fatalf("LoadRank(%d) has %d segment slots, want %d", rank, len(c.Segments), len(blobs))
		}
		for r, seg := range c.Segments {
			switch {
			case r == rank && string(seg) != string(want):
				t.Errorf("LoadRank(%d) segment = %q, want %q", rank, seg, want)
			case r != rank && seg != nil:
				t.Errorf("LoadRank(%d) populated foreign segment %d", rank, r)
			}
		}
		if err := c.Validate(meta); err != nil {
			t.Errorf("LoadRank(%d).Validate: %v", rank, err)
		}
	}

	if _, err := LoadRank(dir, 7); err == nil {
		t.Error("LoadRank with out-of-range rank succeeded")
	}
}

// TestLoadRankNone: an empty directory reports ErrNone, distinguishable
// from corruption.
func TestLoadRankNone(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadRank(dir, 0); !errors.Is(err, ErrNone) {
		t.Fatalf("LoadRank on empty dir = %v, want ErrNone", err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrNone) {
		t.Fatalf("Load on empty dir = %v, want ErrNone", err)
	}
}

// TestLoadRankFallsBack: a corrupted newest segment for this rank falls
// back to the previous complete checkpoint, like Load does.
func TestLoadRankFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 2, Meta{Algorithm: "x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []int{2, 4} {
		var segs []core.SegmentInfo
		for rank := 0; rank < 2; rank++ {
			info, err := s.WriteSegment(it, rank, []byte{byte(it), byte(rank)})
			if err != nil {
				t.Fatal(err)
			}
			segs = append(segs, info)
		}
		if err := s.Commit(it, segs); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt rank 1's newest segment.
	seg := filepath.Join(dir, "ckpt-000000004", "rank-00001.seg")
	if err := os.WriteFile(seg, []byte{0xff, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadRank(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Iteration != 2 {
		t.Fatalf("LoadRank fell back to iteration %d, want 2", c.Iteration)
	}
	// Rank 0's newest is intact and still loads.
	c0, err := LoadRank(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c0.Iteration != 4 {
		t.Fatalf("LoadRank(0) = iteration %d, want 4", c0.Iteration)
	}
}
