// Package checkpoint persists consistent engine snapshots so long random
// walk jobs can survive crashes. The engine (internal/core) decides *when*
// a cut is consistent — at the superstep barrier, where no messages are in
// flight — and *what* goes into each rank's segment blob; this package owns
// the on-disk format and its integrity story:
//
//	<dir>/ckpt-<iteration>/rank-NNNNN.seg   one opaque blob per rank
//	<dir>/ckpt-<iteration>/MANIFEST         versioned, checksummed index
//
// Writes are atomic: segments accumulate in a hidden staging directory,
// the manifest is written last (itself via temp file + rename), and the
// staging directory is renamed into place only then. A crash at any point
// leaves either a complete checkpoint or ignorable debris, never a torn
// one. Load walks checkpoints newest-first and returns the first whose
// manifest and every segment verify (size and CRC-64), so corrupted or
// truncated checkpoints are skipped in favor of the previous complete one.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"knightking/internal/core"
)

const (
	manifestName  = "MANIFEST"
	manifestMagic = "KKCKPT1\n"
	// Version is the manifest format version.
	Version = 1

	ckptPrefix    = "ckpt-"
	stagingPrefix = ".staging-"
	segPattern    = "rank-%05d.seg"

	// manifestFixedLen is the manifest length before the algorithm name and
	// segment table: magic, version, iteration, seed, numWalkers,
	// numVertices, algLen, numRanks.
	manifestFixedLen = 8 + 4 + 8 + 8 + 8 + 8 + 2 + 4
	// maxAlgNameLen bounds the algorithm-name field against corrupt input.
	maxAlgNameLen = 1024
)

// crcTable is the CRC-64 (ECMA) table used for both segments and the
// manifest's self-checksum.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta identifies the run a checkpoint belongs to, letting resume fail
// fast on obvious mismatches before the engine's deeper validation.
type Meta struct {
	Seed        uint64
	NumWalkers  uint64
	NumVertices uint64
	Algorithm   string
}

// Manifest indexes one committed checkpoint.
type Manifest struct {
	Iteration int
	Meta      Meta
	Segments  []core.SegmentInfo
}

// Store writes checkpoints under a directory and implements
// core.CheckpointSink. Safe for concurrent WriteSegment calls from
// different ranks of one process; Commit is called by rank 0 only.
type Store struct {
	dir   string
	every int
	meta  Meta

	// Retain is how many committed checkpoints to keep; older ones are
	// pruned at commit. Must be >= 2 so a crash during (or corruption of)
	// the newest checkpoint can still fall back to the previous one.
	Retain int

	// Observe, when non-nil, receives one callback per durably written
	// segment with the writing rank, the segment size, and the wall time of
	// the write (including fsync). Set it before the run starts; it is
	// called concurrently from every rank's WriteSegment and must not
	// block. internal/obs feeds these into the checkpoint histograms.
	Observe func(rank int, bytes int64, d time.Duration)
}

// NewStore creates (if needed) the checkpoint directory and returns a
// store snapshotting every `every` supersteps.
func NewStore(dir string, every int, meta Meta) (*Store, error) {
	if every <= 0 {
		return nil, fmt.Errorf("checkpoint: interval %d must be >= 1", every)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir, every: every, meta: meta, Retain: 2}, nil
}

// Interval returns the snapshot period in supersteps.
func (s *Store) Interval() int { return s.every }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func stagingDir(dir string, iteration int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%09d", stagingPrefix, iteration))
}

func ckptDir(dir string, iteration int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%09d", ckptPrefix, iteration))
}

// WriteSegment durably stores one rank's blob in the staging directory for
// the given superstep, fsyncing before rename so a committed manifest never
// references a segment the filesystem could lose.
func (s *Store) WriteSegment(iteration, rank int, blob []byte) (core.SegmentInfo, error) {
	start := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	info := core.SegmentInfo{Rank: rank, Size: int64(len(blob)), CRC: crc64.Checksum(blob, crcTable)}
	staging := stagingDir(s.dir, iteration)
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return info, fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(staging, fmt.Sprintf(segPattern, rank))
	if err := writeFileSync(path, blob); err != nil {
		return info, fmt.Errorf("checkpoint: segment rank %d: %w", rank, err)
	}
	if s.Observe != nil {
		s.Observe(rank, int64(len(blob)), time.Since(start)) //kk:nondet-ok telemetry-only timing; never feeds walk state
	}
	return info, nil
}

// Commit writes the manifest into the staging directory and renames the
// whole directory into place, making the checkpoint visible atomically.
// Older checkpoints beyond Retain are pruned afterwards.
func (s *Store) Commit(iteration int, segments []core.SegmentInfo) error {
	for i, seg := range segments {
		if seg.Rank != i {
			return fmt.Errorf("checkpoint: commit segments not sorted by rank")
		}
	}
	m := &Manifest{Iteration: iteration, Meta: s.meta, Segments: segments}
	staging := stagingDir(s.dir, iteration)
	if err := writeFileSync(filepath.Join(staging, manifestName), m.encode()); err != nil {
		return fmt.Errorf("checkpoint: manifest: %w", err)
	}
	final := ckptDir(s.dir, iteration)
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(staging, final); err != nil {
		return fmt.Errorf("checkpoint: commit rename: %w", err)
	}
	s.prune(iteration)
	return nil
}

// prune removes committed checkpoints beyond Retain and any stale staging
// debris from earlier supersteps. Best-effort: pruning failures never fail
// a commit.
func (s *Store) prune(iteration int) {
	retain := s.Retain
	if retain < 1 {
		retain = 1
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var committed []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if it, ok := parseIterDir(e.Name(), ckptPrefix); ok {
			committed = append(committed, it)
		}
		if it, ok := parseIterDir(e.Name(), stagingPrefix); ok && it < iteration {
			_ = os.RemoveAll(filepath.Join(s.dir, e.Name())) // best-effort prune of abandoned staging
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(committed)))
	for _, it := range committed[min(retain, len(committed)):] {
		_ = os.RemoveAll(ckptDir(s.dir, it)) // best-effort retention prune
	}
}

// parseIterDir extracts the iteration from a "<prefix>NNNNNNNNN" name.
func parseIterDir(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	it, err := strconv.Atoi(strings.TrimPrefix(name, prefix))
	if err != nil || it <= 0 {
		return 0, false
	}
	return it, true
}

// encode serializes the manifest:
//
//	magic "KKCKPT1\n" | version u32 | iteration u64
//	seed u64 | numWalkers u64 | numVertices u64
//	algLen u16 | algorithm bytes
//	numRanks u32 | numRanks × (size u64, crc u64)
//	crc64 of everything above, u64
func (m *Manifest) encode() []byte {
	alg := m.Meta.Algorithm
	if len(alg) > maxAlgNameLen {
		alg = alg[:maxAlgNameLen]
	}
	buf := make([]byte, 0, manifestFixedLen+len(alg)+16*len(m.Segments)+8)
	buf = append(buf, manifestMagic...)
	buf = appendU32(buf, Version)
	buf = appendU64(buf, uint64(m.Iteration))
	buf = appendU64(buf, m.Meta.Seed)
	buf = appendU64(buf, m.Meta.NumWalkers)
	buf = appendU64(buf, m.Meta.NumVertices)
	buf = appendU16(buf, uint16(len(alg)))
	buf = append(buf, alg...)
	buf = appendU32(buf, uint32(len(m.Segments)))
	for _, seg := range m.Segments {
		buf = appendU64(buf, uint64(seg.Size))
		buf = appendU64(buf, seg.CRC)
	}
	return appendU64(buf, crc64.Checksum(buf, crcTable))
}

// ReadManifest decodes and verifies a manifest. It never panics on
// arbitrary input (fuzzed in FuzzReadManifest) and rejects any structural
// damage via the trailing checksum.
func ReadManifest(data []byte) (*Manifest, error) {
	if len(data) < manifestFixedLen+8 {
		return nil, fmt.Errorf("checkpoint: manifest truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != manifestMagic {
		return nil, fmt.Errorf("checkpoint: bad manifest magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported manifest version %d", v)
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if crc64.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("checkpoint: manifest checksum mismatch")
	}
	m := &Manifest{
		Iteration: int(binary.LittleEndian.Uint64(data[12:])),
		Meta: Meta{
			Seed:        binary.LittleEndian.Uint64(data[20:]),
			NumWalkers:  binary.LittleEndian.Uint64(data[28:]),
			NumVertices: binary.LittleEndian.Uint64(data[36:]),
		},
	}
	if m.Iteration <= 0 {
		return nil, fmt.Errorf("checkpoint: manifest iteration %d out of range", m.Iteration)
	}
	algLen := int(binary.LittleEndian.Uint16(data[44:]))
	rest := data[46 : len(data)-8]
	if algLen > maxAlgNameLen || len(rest) < algLen+4 {
		return nil, fmt.Errorf("checkpoint: manifest algorithm name overruns")
	}
	m.Meta.Algorithm = string(rest[:algLen])
	rest = rest[algLen:]
	numRanks := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if numRanks <= 0 || len(rest) != 16*numRanks {
		return nil, fmt.Errorf("checkpoint: manifest has %d ranks but %d table bytes", numRanks, len(rest))
	}
	m.Segments = make([]core.SegmentInfo, numRanks)
	for i := range m.Segments {
		m.Segments[i] = core.SegmentInfo{
			Rank: i,
			Size: int64(binary.LittleEndian.Uint64(rest[16*i:])),
			CRC:  binary.LittleEndian.Uint64(rest[16*i+8:]),
		}
		if m.Segments[i].Size < 0 {
			return nil, fmt.Errorf("checkpoint: manifest segment %d has negative size", i)
		}
	}
	return m, nil
}

// Checkpoint is one fully validated checkpoint loaded into memory.
type Checkpoint struct {
	Iteration int
	Meta      Meta
	// Segments holds each rank's verified snapshot blob, indexed by rank.
	Segments [][]byte
}

// RestoreState adapts the checkpoint for core.Config.Restore.
func (c *Checkpoint) RestoreState() *core.RestoreState {
	return &core.RestoreState{Iteration: c.Iteration, Segments: c.Segments}
}

// ErrNone is wrapped by Load and LoadRank when the directory holds no
// committed checkpoints at all — a fresh start, as opposed to checkpoints
// that exist but fail validation. Callers that treat "nothing to resume"
// as a normal case (a kkrank worker told to resume before the first
// checkpoint of a job has committed) match it with errors.Is.
var ErrNone = errors.New("checkpoint: none found")

// Load returns the newest complete, uncorrupted checkpoint under dir.
// Checkpoints whose manifest or any segment fails validation (bad magic or
// checksum, wrong size, missing file) are skipped in favor of the previous
// one; the returned error lists every rejection when none survive.
func Load(dir string) (*Checkpoint, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var iters []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if it, ok := parseIterDir(e.Name(), ckptPrefix); ok {
			iters = append(iters, it)
		}
	}
	if len(iters) == 0 {
		return nil, fmt.Errorf("%w under %s", ErrNone, dir)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))
	var rejections []string
	for _, it := range iters {
		c, err := loadOne(ckptDir(dir, it), it)
		if err == nil {
			return c, nil
		}
		rejections = append(rejections, err.Error())
	}
	return nil, fmt.Errorf("checkpoint: no complete checkpoint under %s:\n  %s",
		dir, strings.Join(rejections, "\n  "))
}

// LoadRank is Load restricted to one rank's segment: the newest committed
// checkpoint is located, its manifest verified, and only segment `rank` is
// read and CRC-checked. The returned Checkpoint's Segments slice has the
// manifest's full rank count with only entry `rank` populated — exactly
// the shape core.RunNode's RestoreState contract asks of a multi-process
// rank, without paying |cluster| × segment I/O on every worker.
//
// This is the re-handout convention for coordinated failover: the
// coordinator names a shared checkpoint directory in the job spec, each
// (re)assigned worker calls LoadRank(dir, itsRank), and ready agreement on
// the loaded iteration is checked centrally before the restart barrier.
// A committed manifest implies every segment was durable (Commit runs
// strictly after all ranks' fsync+rename), so skipping the other ranks'
// files sacrifices no safety beyond what their own LoadRank verifies.
func LoadRank(dir string, rank int) (*Checkpoint, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var iters []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if it, ok := parseIterDir(e.Name(), ckptPrefix); ok {
			iters = append(iters, it)
		}
	}
	if len(iters) == 0 {
		return nil, fmt.Errorf("%w under %s", ErrNone, dir)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))
	var rejections []string
	for _, it := range iters {
		c, err := loadOneRank(ckptDir(dir, it), it, rank)
		if err == nil {
			return c, nil
		}
		rejections = append(rejections, err.Error())
	}
	return nil, fmt.Errorf("checkpoint: no complete checkpoint for rank %d under %s:\n  %s",
		rank, dir, strings.Join(rejections, "\n  "))
}

// loadOneRank reads one checkpoint directory's manifest plus a single
// rank's segment.
func loadOneRank(path string, iteration, rank int) (*Checkpoint, error) {
	raw, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m, err := ReadManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Iteration != iteration {
		return nil, fmt.Errorf("%s: manifest is for superstep %d", path, m.Iteration)
	}
	if rank < 0 || rank >= len(m.Segments) {
		return nil, fmt.Errorf("%s: rank %d outside the manifest's %d ranks", path, rank, len(m.Segments))
	}
	blob, err := os.ReadFile(filepath.Join(path, fmt.Sprintf(segPattern, rank)))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	seg := m.Segments[rank]
	if int64(len(blob)) != seg.Size {
		return nil, fmt.Errorf("%s: segment %d is %d bytes, manifest says %d (torn write?)",
			path, rank, len(blob), seg.Size)
	}
	if crc64.Checksum(blob, crcTable) != seg.CRC {
		return nil, fmt.Errorf("%s: segment %d checksum mismatch", path, rank)
	}
	c := &Checkpoint{Iteration: m.Iteration, Meta: m.Meta, Segments: make([][]byte, len(m.Segments))}
	c.Segments[rank] = blob
	return c, nil
}

// loadOne reads and verifies one checkpoint directory.
func loadOne(path string, iteration int) (*Checkpoint, error) {
	raw, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m, err := ReadManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Iteration != iteration {
		return nil, fmt.Errorf("%s: manifest is for superstep %d", path, m.Iteration)
	}
	c := &Checkpoint{Iteration: m.Iteration, Meta: m.Meta, Segments: make([][]byte, len(m.Segments))}
	for rank, seg := range m.Segments {
		blob, err := os.ReadFile(filepath.Join(path, fmt.Sprintf(segPattern, rank)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if int64(len(blob)) != seg.Size {
			return nil, fmt.Errorf("%s: segment %d is %d bytes, manifest says %d (torn write?)",
				path, rank, len(blob), seg.Size)
		}
		if crc64.Checksum(blob, crcTable) != seg.CRC {
			return nil, fmt.Errorf("%s: segment %d checksum mismatch", path, rank)
		}
		c.Segments[rank] = blob
	}
	return c, nil
}

// Validate checks a loaded checkpoint against the run the caller is about
// to resume, failing fast with a descriptive error on mismatch. The engine
// re-validates the deeper invariants (partition ownership, walker bounds).
func (c *Checkpoint) Validate(meta Meta) error {
	switch {
	case c.Meta.Algorithm != meta.Algorithm:
		return fmt.Errorf("checkpoint: is for algorithm %q, run uses %q", c.Meta.Algorithm, meta.Algorithm)
	case c.Meta.Seed != meta.Seed:
		return fmt.Errorf("checkpoint: was taken with seed %d, run uses %d", c.Meta.Seed, meta.Seed)
	case c.Meta.NumWalkers != meta.NumWalkers:
		return fmt.Errorf("checkpoint: has %d walkers, run has %d", c.Meta.NumWalkers, meta.NumWalkers)
	case c.Meta.NumVertices != meta.NumVertices:
		return fmt.Errorf("checkpoint: graph had %d vertices, run's has %d", c.Meta.NumVertices, meta.NumVertices)
	}
	return nil
}

// writeFileSync writes data to path atomically (temp file, fsync, rename).
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func appendU16(buf []byte, v uint16) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return append(buf, b[:]...)
}

func appendU32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func appendU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
