// Engine-level recovery tests: a run killed mid-flight by an injected
// transport fault, resumed from the latest complete checkpoint, must
// reproduce the uninterrupted run's results bit for bit. These live here
// rather than in internal/core because they exercise the full stack —
// engine, on-disk store, and fault injection — and core cannot import
// this package.
package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/stats"
	"knightking/internal/transport"
)

const testNodes = 3

// firstOrderCfg is a DeepWalk run long enough to span several checkpoint
// intervals across three nodes.
func firstOrderCfg(g *graph.Graph) core.Config {
	return core.Config{
		Graph:       g,
		Algorithm:   alg.DeepWalk(24, false),
		NumNodes:    testNodes,
		Workers:     2,
		Seed:        7,
		RecordPaths: true,
		CountVisits: true,
	}
}

// secondOrderCfg is a node2vec run with the lower-bound and outlier-folding
// optimizations on, so checkpoints must capture walkers parked mid-step on
// remote state queries (pending darts).
func secondOrderCfg(g *graph.Graph) core.Config {
	return core.Config{
		Graph: g,
		Algorithm: alg.Node2Vec(alg.Node2VecParams{
			P: 2, Q: 0.5, Length: 12, LowerBound: true, FoldOutlier: true,
		}),
		NumNodes:    testNodes,
		Workers:     2,
		Seed:        11,
		RecordPaths: true,
		CountVisits: true,
	}
}

func mustRun(t *testing.T, cfg core.Config) *core.Result {
	t.Helper()
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameWalk asserts two runs produced identical walk output and did
// identical sampling work. Transport-level counters (Messages, BytesSent)
// and Iterations are excluded: a resumed run re-delivers parked walkers'
// queries one superstep later, shifting traffic and possibly the superstep
// count by one without affecting any walk output.
func assertSameWalk(t *testing.T, want, got *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Paths, got.Paths) {
		t.Error("walker paths differ")
	}
	if !reflect.DeepEqual(want.Visits, got.Visits) {
		t.Error("visit counts differ")
	}
	if !reflect.DeepEqual(want.Lengths.State(), got.Lengths.State()) {
		t.Error("length histograms differ")
	}
	w, g := want.Counters, got.Counters
	for _, c := range []struct {
		name      string
		want, got int64
	}{
		{"Steps", w.Steps, g.Steps},
		{"Terminations", w.Terminations, g.Terminations},
		{"Restarts", w.Restarts, g.Restarts},
		{"Trials", w.Trials, g.Trials},
		{"EdgeProbEvals", w.EdgeProbEvals, g.EdgeProbEvals},
		{"PreAccepts", w.PreAccepts, g.PreAccepts},
		{"AppendixHits", w.AppendixHits, g.AppendixHits},
		{"Queries", w.Queries, g.Queries},
	} {
		if c.want != c.got {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if d := got.Iterations - want.Iterations; d < -1 || d > 1 {
		t.Errorf("Iterations = %d, want %d ± 1", got.Iterations, want.Iterations)
	}
}

// newStore builds a store whose Meta matches cfg the way kkwalk would.
func newStore(t *testing.T, cfg *core.Config, every int) *Store {
	t.Helper()
	walkers := cfg.NumWalkers
	if walkers <= 0 {
		walkers = cfg.Graph.NumVertices()
	}
	s, err := NewStore(t.TempDir(), every, Meta{
		Seed:        cfg.Seed,
		NumWalkers:  uint64(walkers),
		NumVertices: uint64(cfg.Graph.NumVertices()),
		Algorithm:   cfg.Algorithm.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crashAndResume runs cfg with an injected rank death at the failAt-th
// exchange, then resumes from the latest complete checkpoint and returns
// the resumed run's result.
func crashAndResume(t *testing.T, cfg core.Config, store *Store, failAt int) *core.Result {
	t.Helper()

	eps := transport.NewInProcGroup(testNodes)
	victim := transport.NewFaulty(eps[1], failAt)
	eps[1] = victim
	crashCfg := cfg
	crashCfg.Endpoints = eps
	crashCfg.Checkpoint = store
	if _, err := core.Run(crashCfg); err == nil {
		t.Fatal("run survived the injected crash")
	}
	if !victim.Fired() {
		t.Fatalf("walk finished before the injected fault at exchange %d; lengthen it", failAt)
	}

	cp, err := Load(store.Dir())
	if err != nil {
		t.Fatalf("no complete checkpoint before the crash: %v", err)
	}
	if err := cp.Validate(Meta{
		Seed:        cfg.Seed,
		NumWalkers:  uint64(cfg.Graph.NumVertices()), // NumWalkers=0 defaults to |V|
		NumVertices: uint64(cfg.Graph.NumVertices()),
		Algorithm:   cfg.Algorithm.Name,
	}); err != nil {
		t.Fatal(err)
	}
	t.Logf("crashed after exchange %d, resuming from superstep %d", victim.Exchanges(), cp.Iteration)

	resumeCfg := cfg
	resumeCfg.Checkpoint = store // keep checkpointing across the resume
	resumeCfg.Restore = cp.RestoreState()
	return mustRun(t, resumeCfg)
}

func TestCheckpointingDoesNotPerturbRun(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	golden := mustRun(t, firstOrderCfg(g))

	cfg := firstOrderCfg(g)
	cfg.Checkpoint = newStore(t, &cfg, 4)
	assertSameWalk(t, golden, mustRun(t, cfg))
}

func TestCrashResumeFirstOrder(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	golden := mustRun(t, firstOrderCfg(g))

	cfg := firstOrderCfg(g)
	store := newStore(t, &cfg, 4)
	// One exchange per superstep plus one per checkpoint barrier: exchange
	// 13 is superstep ~11, past the committed checkpoints at 4 and 8.
	resumed := crashAndResume(t, cfg, store, 13)
	assertSameWalk(t, golden, resumed)
	if resumed.Counters.Checkpoints == 0 {
		t.Error("resumed run reports no committed checkpoints")
	}
	if resumed.Counters.RestoreNanos == 0 {
		t.Error("resumed run reports no restore time")
	}
}

func TestCrashResumeSecondOrder(t *testing.T) {
	g := gen.UniformDegree(48, 6, 7)
	golden := mustRun(t, secondOrderCfg(g))

	cfg := secondOrderCfg(g)
	store := newStore(t, &cfg, 3)
	// Two exchanges per superstep plus one per checkpoint barrier: exchange
	// 17 lands around superstep 8, past the checkpoints at 3 and 6, with
	// walkers parked on remote adjacency queries in the snapshot.
	assertSameWalk(t, golden, crashAndResume(t, cfg, store, 17))
}

// TestResumeFromFallbackCheckpoint corrupts the newest checkpoint of a
// completed run and resumes from the one Load falls back to; replaying the
// longer tail must still reproduce the full run's output exactly.
func TestResumeFromFallbackCheckpoint(t *testing.T) {
	g := gen.UniformDegree(48, 6, 7)
	cfg := secondOrderCfg(g)
	store := newStore(t, &cfg, 3)
	cfg.Checkpoint = store
	golden := mustRun(t, cfg)

	newest, err := Load(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	// Torn write: truncate one segment of the newest checkpoint.
	seg := filepath.Join(ckptDir(store.Dir(), newest.Iteration), "rank-00002.seg")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	fallback, err := Load(store.Dir())
	if err != nil {
		t.Fatalf("Load did not fall back past the torn checkpoint: %v", err)
	}
	if fallback.Iteration >= newest.Iteration {
		t.Fatalf("fallback iteration %d not older than torn %d", fallback.Iteration, newest.Iteration)
	}

	resumeCfg := secondOrderCfg(g)
	resumeCfg.Restore = fallback.RestoreState()
	assertSameWalk(t, golden, mustRun(t, resumeCfg))
}

// TestRestoreRejectsMismatchedConfig exercises the engine's own validation
// behind Checkpoint.Validate: restoring into a run with a different seed or
// walker count must fail, not silently diverge.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	cfg := firstOrderCfg(g)
	store := newStore(t, &cfg, 4)
	cfg.Checkpoint = store
	mustRun(t, cfg)

	cp, err := Load(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	badSeed := firstOrderCfg(g)
	badSeed.Seed = 999
	badSeed.Restore = cp.RestoreState()
	if _, err := core.Run(badSeed); err == nil {
		t.Error("restore with a different seed accepted")
	}
	badWalkers := firstOrderCfg(g)
	badWalkers.NumWalkers = 7
	badWalkers.Restore = cp.RestoreState()
	if _, err := core.Run(badWalkers); err == nil {
		t.Error("restore with a different walker count accepted")
	}
	badRanks := firstOrderCfg(g)
	badRanks.NumNodes = testNodes + 1
	badRanks.Restore = cp.RestoreState()
	if _, err := core.Run(badRanks); err == nil {
		t.Error("restore with a different rank count accepted")
	}
}

// TestCheckpointMetrics asserts the stats plumbing kkwalk prints from.
func TestCheckpointMetrics(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	cfg := firstOrderCfg(g)
	store := newStore(t, &cfg, 4)
	cfg.Checkpoint = store
	var counters stats.Counters
	cfg.Counters = &counters
	res := mustRun(t, cfg)

	if res.Counters.Checkpoints < 2 {
		t.Fatalf("Checkpoints = %d, want >= 2 over %d supersteps", res.Counters.Checkpoints, res.Iterations)
	}
	if res.Counters.CheckpointBytes == 0 || res.Counters.CheckpointNanos == 0 {
		t.Fatalf("checkpoint cost counters empty: %+v", res.Counters)
	}
	if counters.Checkpoints.Load() != res.Counters.Checkpoints {
		t.Fatal("Config.Counters and Result.Counters disagree")
	}
}
