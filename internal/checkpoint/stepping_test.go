// Crash-resume tests for the interleaved stepping pipeline: a resumed
// interleaved run must reproduce the scalar golden bit for bit, and the
// checkpoint format must be stepping-agnostic — a snapshot taken under one
// stepping strategy resumes cleanly under the other, because snapshots
// serialize engine state at superstep barriers where the two strategies
// are by construction in identical states.
package checkpoint

import (
	"testing"

	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/transport"
)

// TestCrashResumeInterleavedFirstOrder crashes an interleaved run mid-walk
// and checks the resumed output against a scalar golden run. This pins
// both halves of the contract at once: resume correctness under batched
// stepping, and scalar/interleaved equivalence through a snapshot cycle.
func TestCrashResumeInterleavedFirstOrder(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	golden := firstOrderCfg(g)
	golden.Stepping = core.SteppingScalar
	want := mustRun(t, golden)

	cfg := firstOrderCfg(g)
	cfg.Stepping = core.SteppingInterleaved
	cfg.BatchSize = 3 // misaligned batches so snapshots land mid-batch-list
	store := newStore(t, &cfg, 4)
	resumed := crashAndResume(t, cfg, store, 13)
	assertSameWalk(t, want, resumed)
}

// TestCrashResumeInterleavedSecondOrder does the same through the
// park/query/resume machinery: the crash snapshot contains walkers parked
// on remote adjacency queries, which the interleaved resume must replay
// identically to the scalar golden.
func TestCrashResumeInterleavedSecondOrder(t *testing.T) {
	g := gen.UniformDegree(48, 6, 7)
	golden := secondOrderCfg(g)
	golden.Stepping = core.SteppingScalar
	want := mustRun(t, golden)

	cfg := secondOrderCfg(g)
	cfg.Stepping = core.SteppingInterleaved
	cfg.BatchSize = 5
	store := newStore(t, &cfg, 3)
	assertSameWalk(t, want, crashAndResume(t, cfg, store, 17))
}

// TestCrossSteppingResume crashes under interleaved stepping and resumes
// under scalar (and vice versa): the snapshot must carry no trace of the
// stepping strategy that produced it.
func TestCrossSteppingResume(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	want := mustRun(t, firstOrderCfg(g))

	for _, tc := range []struct {
		name           string
		crash, resumeS string
	}{
		{"interleaved-to-scalar", core.SteppingInterleaved, core.SteppingScalar},
		{"scalar-to-interleaved", core.SteppingScalar, core.SteppingInterleaved},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := firstOrderCfg(g)
			cfg.Stepping = tc.crash
			store := newStore(t, &cfg, 4)

			eps := transport.NewInProcGroup(testNodes)
			victim := transport.NewFaulty(eps[1], 13)
			eps[1] = victim
			crashCfg := cfg
			crashCfg.Endpoints = eps
			crashCfg.Checkpoint = store
			if _, err := core.Run(crashCfg); err == nil {
				t.Fatal("run survived the injected crash")
			}
			if !victim.Fired() {
				t.Fatal("walk finished before the injected fault")
			}

			cp, err := Load(store.Dir())
			if err != nil {
				t.Fatalf("no complete checkpoint before the crash: %v", err)
			}
			resumeCfg := firstOrderCfg(g)
			resumeCfg.Stepping = tc.resumeS
			resumeCfg.Restore = cp.RestoreState()
			assertSameWalk(t, want, mustRun(t, resumeCfg))
		})
	}
}
