package checkpoint

import (
	"testing"
	"time"
)

// TestWriteSegmentObserve checks the telemetry hook fires once per durably
// written segment with the blob size, and that a store without the hook
// still works.
func TestWriteSegmentObserve(t *testing.T) {
	store, err := NewStore(t.TempDir(), 1, Meta{Seed: 1, NumWalkers: 2, NumVertices: 3})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}

	type obsCall struct {
		rank  int
		bytes int64
		d     time.Duration
	}
	var calls []obsCall
	store.Observe = func(rank int, bytes int64, d time.Duration) {
		calls = append(calls, obsCall{rank, bytes, d})
	}

	blobs := [][]byte{make([]byte, 100), make([]byte, 37)}
	for rank, blob := range blobs {
		if _, err := store.WriteSegment(1, rank, blob); err != nil {
			t.Fatalf("WriteSegment rank %d: %v", rank, err)
		}
	}

	if len(calls) != 2 {
		t.Fatalf("observed %d segment writes, want 2", len(calls))
	}
	for rank, c := range calls {
		if c.rank != rank {
			t.Errorf("call %d reported rank %d", rank, c.rank)
		}
		if c.bytes != int64(len(blobs[rank])) {
			t.Errorf("rank %d reported %d bytes, want %d", rank, c.bytes, len(blobs[rank]))
		}
		if c.d < 0 {
			t.Errorf("rank %d reported negative duration %v", rank, c.d)
		}
	}

	// No hook: the write path must not care.
	store.Observe = nil
	if _, err := store.WriteSegment(2, 0, []byte("x")); err != nil {
		t.Fatalf("WriteSegment without hook: %v", err)
	}
}
