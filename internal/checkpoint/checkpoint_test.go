package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knightking/internal/core"
)

var testMeta = Meta{Seed: 42, NumWalkers: 100, NumVertices: 60, Algorithm: "node2vec"}

// writeCheckpoint drives one full WriteSegment×ranks + Commit cycle with
// synthetic blobs and returns the blobs.
func writeCheckpoint(t *testing.T, s *Store, iteration, ranks int) [][]byte {
	t.Helper()
	blobs := make([][]byte, ranks)
	infos := make([]core.SegmentInfo, ranks)
	for r := 0; r < ranks; r++ {
		blobs[r] = bytes.Repeat([]byte{byte(iteration), byte(r)}, 64+r)
		info, err := s.WriteSegment(iteration, r, blobs[r])
		if err != nil {
			t.Fatalf("WriteSegment(%d, %d): %v", iteration, r, err)
		}
		infos[r] = info
	}
	if err := s.Commit(iteration, infos); err != nil {
		t.Fatalf("Commit(%d): %v", iteration, err)
	}
	return blobs
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval() != 4 {
		t.Fatalf("Interval() = %d, want 4", s.Interval())
	}
	blobs := writeCheckpoint(t, s, 8, 3)

	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Iteration != 8 {
		t.Fatalf("Iteration = %d, want 8", cp.Iteration)
	}
	if cp.Meta != testMeta {
		t.Fatalf("Meta = %+v, want %+v", cp.Meta, testMeta)
	}
	if len(cp.Segments) != 3 {
		t.Fatalf("got %d segments, want 3", len(cp.Segments))
	}
	for r, blob := range cp.Segments {
		if !bytes.Equal(blob, blobs[r]) {
			t.Fatalf("segment %d does not round-trip", r)
		}
	}
	rst := cp.RestoreState()
	if rst.Iteration != 8 || len(rst.Segments) != 3 {
		t.Fatalf("RestoreState = %+v", rst)
	}
	if err := cp.Validate(testMeta); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// No staging debris survives a commit.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), stagingPrefix) {
			t.Fatalf("staging directory %s survived commit", e.Name())
		}
	}
}

func TestLoadIgnoresUncommittedStaging(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	writeCheckpoint(t, s, 4, 2)
	// Segments written but never committed must stay invisible.
	if _, err := s.WriteSegment(8, 0, []byte("half a checkpoint")); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Iteration != 4 {
		t.Fatalf("loaded iteration %d, want the committed 4", cp.Iteration)
	}
}

func TestCommitPrunesOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	writeCheckpoint(t, s, 4, 2)
	writeCheckpoint(t, s, 8, 2)
	writeCheckpoint(t, s, 12, 2)

	if _, err := os.Stat(ckptDir(dir, 4)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint 4 not pruned with Retain=%d", s.Retain)
	}
	for _, it := range []int{8, 12} {
		if _, err := os.Stat(ckptDir(dir, it)); err != nil {
			t.Fatalf("retained checkpoint %d missing: %v", it, err)
		}
	}
	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Iteration != 12 {
		t.Fatalf("loaded iteration %d, want 12", cp.Iteration)
	}
}

// corrupt applies fn to the newest checkpoint and asserts Load falls back
// to the previous complete one.
func testFallback(t *testing.T, fn func(t *testing.T, newest string)) {
	t.Helper()
	dir := t.TempDir()
	s, err := NewStore(dir, 4, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	older := writeCheckpoint(t, s, 4, 2)
	writeCheckpoint(t, s, 8, 2)
	fn(t, ckptDir(dir, 8))

	cp, err := Load(dir)
	if err != nil {
		t.Fatalf("Load did not fall back: %v", err)
	}
	if cp.Iteration != 4 {
		t.Fatalf("loaded iteration %d, want fallback to 4", cp.Iteration)
	}
	for r, blob := range cp.Segments {
		if !bytes.Equal(blob, older[r]) {
			t.Fatalf("fallback segment %d corrupted", r)
		}
	}
}

func TestLoadSkipsTruncatedSegment(t *testing.T) {
	testFallback(t, func(t *testing.T, newest string) {
		path := filepath.Join(newest, "rank-00001.seg")
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLoadSkipsFlippedSegmentByte(t *testing.T) {
	testFallback(t, func(t *testing.T, newest string) {
		path := filepath.Join(newest, "rank-00000.seg")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLoadSkipsCorruptManifest(t *testing.T) {
	testFallback(t, func(t *testing.T, newest string) {
		path := filepath.Join(newest, manifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[12] ^= 0x01 // somewhere in the iteration field
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLoadSkipsMissingSegment(t *testing.T) {
	testFallback(t, func(t *testing.T, newest string) {
		if err := os.Remove(filepath.Join(newest, "rank-00001.seg")); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLoadReportsAllRejections(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4, testMeta)
	if err != nil {
		t.Fatal(err)
	}
	writeCheckpoint(t, s, 4, 1)
	if err := os.Remove(filepath.Join(ckptDir(dir, 4), manifestName)); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil {
		t.Fatal("Load succeeded with no complete checkpoint")
	}
	if !strings.Contains(err.Error(), "MANIFEST") {
		t.Fatalf("error does not name the rejection: %v", err)
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("Load succeeded on an empty directory")
	}
}

func TestValidateMismatches(t *testing.T) {
	cp := &Checkpoint{Meta: testMeta}
	if err := cp.Validate(testMeta); err != nil {
		t.Fatalf("matching meta rejected: %v", err)
	}
	cases := []Meta{
		{Seed: 7, NumWalkers: 100, NumVertices: 60, Algorithm: "node2vec"},
		{Seed: 42, NumWalkers: 99, NumVertices: 60, Algorithm: "node2vec"},
		{Seed: 42, NumWalkers: 100, NumVertices: 61, Algorithm: "node2vec"},
		{Seed: 42, NumWalkers: 100, NumVertices: 60, Algorithm: "deepwalk"},
	}
	for i, m := range cases {
		if err := cp.Validate(m); err == nil {
			t.Errorf("case %d: mismatch %+v accepted", i, m)
		}
	}
}

func TestNewStoreRejectsBadInterval(t *testing.T) {
	if _, err := NewStore(t.TempDir(), 0, testMeta); err == nil {
		t.Fatal("interval 0 accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Iteration: 16,
		Meta:      testMeta,
		Segments: []core.SegmentInfo{
			{Rank: 0, Size: 123, CRC: 0xdeadbeef},
			{Rank: 1, Size: 0, CRC: 0},
		},
	}
	got, err := ReadManifest(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != m.Iteration || got.Meta != m.Meta || len(got.Segments) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range m.Segments {
		if got.Segments[i] != m.Segments[i] {
			t.Fatalf("segment %d: %+v != %+v", i, got.Segments[i], m.Segments[i])
		}
	}
}

// FuzzReadManifest asserts the manifest decoder never panics on arbitrary
// bytes and that anything it accepts re-encodes to the identical bytes
// (i.e. every accepted input is a canonical encoding — the checksum leaves
// no room for mutated-but-accepted manifests).
func FuzzReadManifest(f *testing.F) {
	m := &Manifest{
		Iteration: 8,
		Meta:      testMeta,
		Segments:  []core.SegmentInfo{{Rank: 0, Size: 64, CRC: 7}, {Rank: 1, Size: 65, CRC: 9}},
	}
	f.Add(m.encode())
	f.Add([]byte(manifestMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadManifest(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.encode(), data) {
			t.Fatalf("accepted manifest is not canonical: %+v", got)
		}
	})
}
