// Chaos-recovery tests: the engine run under the network-chaos harness
// (internal/transport/chaos). Three golden properties:
//
//  1. Timing chaos (delays, slow peers) must not change one bit of walk
//     output — determinism lives in the per-walker RNG streams, not in
//     message timing.
//  2. A chaos disconnect mid-run must be recoverable: resuming from the
//     latest complete checkpoint reproduces the undisturbed run exactly.
//  3. Data corruption (truncated or bit-flipped frames) must surface as a
//     clean run error — never a panic, never silent divergence.
package checkpoint

import (
	"testing"
	"time"

	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/transport"
	"knightking/internal/transport/chaos"
)

// delayChaos perturbs timing only: random delays plus a persistent
// straggler, no data faults.
var delayChaos = chaos.Config{
	Seed:       1234,
	DelayProb:  0.4,
	MaxDelay:   400 * time.Microsecond,
	SlowEveryN: 3,
}

// chaosEndpoints builds an in-process group with every rank wrapped in cfg's
// chaos.
func chaosEndpoints(cfg chaos.Config) []transport.Endpoint {
	return chaos.AsEndpoints(chaos.WrapGroup(transport.NewInProcGroup(testNodes), cfg))
}

// TestChaosDelaysGoldenFirstOrder: DeepWalk with mid-run checkpointing under
// timing chaos is bit-identical to the undisturbed run.
func TestChaosDelaysGoldenFirstOrder(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	golden := mustRun(t, firstOrderCfg(g))

	cfg := firstOrderCfg(g)
	cfg.Checkpoint = newStore(t, &cfg, 4)
	cfg.Endpoints = chaosEndpoints(delayChaos)
	res := mustRun(t, cfg)
	assertSameWalk(t, golden, res)
	if res.Counters.Checkpoints == 0 {
		t.Error("chaos run committed no checkpoints; timing chaos was not exercised across a barrier")
	}
}

// TestChaosDelaysGoldenSecondOrder: same property for node2vec, whose
// two-exchange supersteps and parked walkers give timing chaos many more
// interleavings to perturb.
func TestChaosDelaysGoldenSecondOrder(t *testing.T) {
	g := gen.UniformDegree(48, 6, 7)
	golden := mustRun(t, secondOrderCfg(g))

	cfg := secondOrderCfg(g)
	cfg.Checkpoint = newStore(t, &cfg, 3)
	cfg.Endpoints = chaosEndpoints(delayChaos)
	assertSameWalk(t, golden, mustRun(t, cfg))
}

// chaosCrashAndResume is crashAndResume with a chaos disconnect instead of
// a bare Faulty wrapper: rank 1 drops off the network at its failAt-th
// exchange, under timing chaos on every rank.
func chaosCrashAndResume(t *testing.T, cfg core.Config, store *Store, failAt int) *core.Result {
	t.Helper()

	eps := transport.NewInProcGroup(testNodes)
	victimCfg := delayChaos
	victimCfg.DisconnectAt = failAt
	victim := chaos.Wrap(eps[1], victimCfg)
	wrapped := []transport.Endpoint{
		chaos.Wrap(eps[0], delayChaos),
		victim,
		chaos.Wrap(eps[2], delayChaos),
	}
	crashCfg := cfg
	crashCfg.Endpoints = wrapped
	crashCfg.Checkpoint = store
	if _, err := core.Run(crashCfg); err == nil {
		t.Fatal("run survived the chaos disconnect")
	}
	if victim.Exchanges() < failAt {
		t.Fatalf("walk finished after %d exchanges, before the disconnect at %d; lengthen it",
			victim.Exchanges(), failAt)
	}

	cp, err := Load(store.Dir())
	if err != nil {
		t.Fatalf("no complete checkpoint before the disconnect: %v", err)
	}
	t.Logf("disconnected at exchange %d, resuming from superstep %d", failAt, cp.Iteration)

	resumeCfg := cfg
	resumeCfg.Checkpoint = store
	resumeCfg.Restore = cp.RestoreState()
	return mustRun(t, resumeCfg)
}

// TestChaosDisconnectResumeFirstOrder: checkpoint recovery after a chaos
// disconnect reproduces the undisturbed DeepWalk run.
func TestChaosDisconnectResumeFirstOrder(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	golden := mustRun(t, firstOrderCfg(g))

	cfg := firstOrderCfg(g)
	store := newStore(t, &cfg, 4)
	assertSameWalk(t, golden, chaosCrashAndResume(t, cfg, store, 13))
}

// TestChaosDisconnectResumeSecondOrder: the same for node2vec, with walkers
// parked on remote adjacency queries in the recovered snapshot.
func TestChaosDisconnectResumeSecondOrder(t *testing.T) {
	g := gen.UniformDegree(48, 6, 7)
	golden := mustRun(t, secondOrderCfg(g))

	cfg := secondOrderCfg(g)
	store := newStore(t, &cfg, 3)
	assertSameWalk(t, golden, chaosCrashAndResume(t, cfg, store, 17))
}

// TestChaosCorruptionFailsCleanly: frame corruption must turn into a run
// error, not a panic or a silent wrong answer. Truncation hits the engine's
// length validation (count messages are exactly 8 bytes, query/response
// records have fixed strides); bit flips land anywhere, so the run is
// bounded by MaxIterations in case a flipped count merely delays
// convergence detection.
func TestChaosCorruptionFailsCleanly(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  chaos.Config
	}{
		{"truncate", chaos.Config{Seed: 5, TruncateProb: 1}},
		{"bitflip", chaos.Config{Seed: 5, BitFlipProb: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.UniformDegree(48, 6, 7)
			cfg := secondOrderCfg(g)
			cfg.Endpoints = chaosEndpoints(tc.cfg)
			cfg.MaxIterations = 100
			if _, err := core.Run(cfg); err == nil {
				t.Fatal("run under total frame corruption reported success")
			}
		})
	}
}
