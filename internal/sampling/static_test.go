package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"knightking/internal/rng"
)

// empirical draws n samples and returns normalized frequencies.
func empirical(t *testing.T, s StaticSampler, r *rng.Rand, draws int) []float64 {
	t.Helper()
	counts := make([]float64, s.N())
	for i := 0; i < draws; i++ {
		idx := s.Sample(r)
		if idx < 0 || idx >= s.N() {
			t.Fatalf("sample index %d out of range [0,%d)", idx, s.N())
		}
		counts[idx]++
	}
	for i := range counts {
		counts[i] /= float64(draws)
	}
	return counts
}

// assertMatchesWeights checks empirical frequencies against normalized
// weights with a tolerance suited to the draw count.
func assertMatchesWeights(t *testing.T, s StaticSampler, freqs []float64, tol float64) {
	t.Helper()
	total := s.Total()
	for i, f := range freqs {
		want := s.WeightAt(i) / total
		if math.Abs(f-want) > tol {
			t.Fatalf("item %d: frequency %v, want %v (±%v)", i, f, want, tol)
		}
	}
}

func TestUniformDistribution(t *testing.T) {
	u := NewUniform(7)
	freqs := empirical(t, u, rng.New(1), 70000)
	assertMatchesWeights(t, u, freqs, 0.01)
}

func TestUniformPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUniform(0) did not panic")
		}
	}()
	NewUniform(0)
}

func TestAliasDistribution(t *testing.T) {
	weights := []float32{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != 10 {
		t.Fatalf("Total = %v", a.Total())
	}
	freqs := empirical(t, a, rng.New(2), 200000)
	assertMatchesWeights(t, a, freqs, 0.01)
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a, err := NewAlias([]float32{0, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 100000; i++ {
		idx := a.Sample(r)
		if idx == 0 || idx == 2 {
			t.Fatalf("zero-weight item %d sampled", idx)
		}
	}
}

func TestAliasSingleItem(t *testing.T) {
	a, err := NewAlias([]float32{5})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-item alias sampled nonzero index")
		}
	}
}

func TestAliasExtremeSkew(t *testing.T) {
	weights := make([]float32, 1000)
	for i := range weights {
		weights[i] = 0.001
	}
	weights[500] = 1000
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if a.Sample(r) == 500 {
			hot++
		}
	}
	want := 1000.0 / (1000.0 + 0.999)
	got := float64(hot) / draws
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("hot item frequency %v, want %v", got, want)
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAlias([]float32{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewAlias([]float32{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestITSDistribution(t *testing.T) {
	weights := []float32{4, 0, 1, 5}
	s, err := NewITS(weights)
	if err != nil {
		t.Fatal(err)
	}
	freqs := empirical(t, s, rng.New(6), 200000)
	assertMatchesWeights(t, s, freqs, 0.01)
	if freqs[1] != 0 {
		t.Fatal("zero-weight item sampled by ITS")
	}
}

func TestITSFromFloat64(t *testing.T) {
	s, err := NewITSFromFloat64([]float64{2, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != 10 || s.N() != 3 || s.WeightAt(2) != 6 {
		t.Fatalf("accessors wrong: total=%v n=%d w2=%v", s.Total(), s.N(), s.WeightAt(2))
	}
	freqs := empirical(t, s, rng.New(7), 100000)
	assertMatchesWeights(t, s, freqs, 0.01)
}

func TestITSErrors(t *testing.T) {
	if _, err := NewITS(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewITSFromFloat64([]float64{0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewITSFromFloat64([]float64{-2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestAliasAndITSAgreeQuick(t *testing.T) {
	// Property: alias and ITS over the same weights produce statistically
	// matching distributions. Checked via mean absolute deviation on
	// random weight vectors.
	r := rng.New(8)
	f := func(seed uint64) bool {
		wr := rng.New(seed)
		n := 2 + wr.Intn(20)
		weights := make([]float32, n)
		for i := range weights {
			weights[i] = float32(wr.Range(0, 4))
		}
		weights[wr.Intn(n)] = 1 // ensure positive total
		alias, err := NewAlias(weights)
		if err != nil {
			return false
		}
		its, err := NewITS(weights)
		if err != nil {
			return false
		}
		const draws = 20000
		ca := make([]float64, n)
		ci := make([]float64, n)
		for i := 0; i < draws; i++ {
			ca[alias.Sample(r)]++
			ci[its.Sample(r)]++
		}
		for i := 0; i < n; i++ {
			if math.Abs(ca[i]-ci[i])/draws > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float32, 1024)
	for i := range weights {
		weights[i] = float32(i%7) + 1
	}
	a, _ := NewAlias(weights)
	r := rng.New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Sample(r)
	}
	_ = sink
}

func BenchmarkITSSample(b *testing.B) {
	weights := make([]float32, 1024)
	for i := range weights {
		weights[i] = float32(i%7) + 1
	}
	s, _ := NewITS(weights)
	r := rng.New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Sample(r)
	}
	_ = sink
}

func TestInvalidWeightValuesRejected(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, bad := range [][]float32{{1, nan}, {inf, 1}, {nan}} {
		if _, err := NewAlias(bad); err == nil {
			t.Fatalf("alias accepted %v", bad)
		}
		if _, err := NewITS(bad); err == nil {
			t.Fatalf("ITS accepted %v", bad)
		}
	}
	if _, err := NewITSFromFloat64([]float64{math.NaN()}); err == nil {
		t.Fatal("ITSFromFloat64 accepted NaN")
	}
}
