package sampling

// Envelope maintains the rejection-sampling bounds of one vertex under
// edge ingest: Q(v) (upper) and L(v) (lower) over the per-edge static
// weights. KnightKing's rejection sampler stays *exact* under any bounds
// that truly bracket the weights — looser bounds only cost extra trials —
// which is the property dynamic graphs exploit (the Bingo factorization
// insight from PAPERS.md): an insert widens the bounds in O(1), a delete
// leaves them untouched (still valid, possibly loose), and compaction
// tightens them back to exact with one O(degree) scan. No ingest ever
// needs a full envelope rebuild.
//
// The zero value is the envelope of an empty vertex (no edges; Upper and
// Lower both 0). Weights must be positive and finite.
type Envelope struct {
	upper float64
	lower float64
	loose bool // true when a delete may have left the bounds non-tight
	n     int  // live edge count, to reset cleanly when it reaches 0
}

// NewEnvelope returns an envelope with the given exact bounds over n
// edges (as produced by a from-scratch scan).
func NewEnvelope(upper, lower float64, n int) Envelope {
	if n == 0 {
		return Envelope{}
	}
	return Envelope{upper: upper, lower: lower, n: n}
}

// ExactEnvelope scans weights and returns the tight envelope.
func ExactEnvelope(weights []float32) Envelope {
	if len(weights) == 0 {
		return Envelope{}
	}
	up, lo := float64(weights[0]), float64(weights[0])
	for _, w := range weights[1:] {
		if float64(w) > up {
			up = float64(w)
		}
		if float64(w) < lo {
			lo = float64(w)
		}
	}
	return Envelope{upper: up, lower: lo, n: len(weights)}
}

// Insert widens the envelope for a new edge of weight w: O(1), and the
// bounds stay exact if they were exact before.
func (e *Envelope) Insert(w float64) {
	if e.n == 0 {
		e.upper, e.lower, e.loose = w, w, false
		e.n = 1
		return
	}
	if w > e.upper {
		e.upper = w
	}
	if w < e.lower {
		e.lower = w
	}
	e.n++
}

// Delete accounts for removing an edge of weight w. The bounds are left
// unchanged — still valid upper/lower bounds over the surviving weights —
// but marked loose when w sat on a boundary, since the true extremum may
// have moved inward. Tightening waits for compaction.
func (e *Envelope) Delete(w float64) {
	e.n--
	if e.n <= 0 {
		*e = Envelope{}
		return
	}
	if w >= e.upper || w <= e.lower {
		e.loose = true
	}
}

// Update re-weights an existing edge from old to new: a delete of the old
// weight followed by an insert of the new one.
func (e *Envelope) Update(old, new float64) {
	e.Delete(old)
	e.Insert(new)
}

// Tighten recomputes the exact bounds from the vertex's current weights
// (the compaction step), clearing the loose flag.
func (e *Envelope) Tighten(weights []float32) {
	*e = ExactEnvelope(weights)
}

// Upper returns Q(v), the maintained upper bound. Never below the true
// maximum weight.
func (e *Envelope) Upper() float64 { return e.upper }

// Lower returns L(v), the maintained lower bound. Never above the true
// minimum weight.
func (e *Envelope) Lower() float64 { return e.lower }

// Loose reports whether a delete may have left the bounds non-tight.
func (e *Envelope) Loose() bool { return e.loose }

// N returns the tracked live edge count.
func (e *Envelope) N() int { return e.n }
