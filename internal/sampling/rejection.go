package sampling

import (
	"fmt"
	"math"

	"knightking/internal/rng"
)

// Rejection performs the paper's rejection-based edge sampling (§4).
//
// Geometry: candidate edges are drawn along the x-axis with width
// proportional to their static component Ps (via a StaticSampler); the
// y-axis is bounded by the envelope Q(v), an upper bound on the dynamic
// component Pd over all *non-outlier* edges. A dart (x, y) hits edge e's
// bar iff y <= Pd(e), in which case e is accepted.
//
// Two optimizations from §4.2:
//
//   - Lower bound L(v): a dart with y <= L is accepted without evaluating
//     Pd at all ("pre-acceptance"), which in distributed runs skips a whole
//     round of walker-to-vertex query messaging.
//
//   - Outlier appendices: when a few edges have Pd far above everyone else
//     (node2vec's return edge with p < 1), declaring them as outliers keeps
//     Q low. Each outlier contributes an appendix rectangle of declared
//     (upper-bound) area; a dart landing in an appendix resolves the
//     outlier edge and accepts with probability actualChoppedArea /
//     declaredArea, preserving exactness even when the declaration is only
//     an upper bound.
//
// The Rejection value describes the dartboard of one vertex visit; Propose
// throws one dart. The caller (the engine) evaluates Pd for the candidate —
// possibly remotely — and finishes with AcceptMain / AppendixAcceptProb.
// This split is what lets the distributed engine interleave thousands of
// walkers' trials with two message rounds per superstep.
type Rejection struct {
	static     StaticSampler
	upper      float64 // Q
	lower      float64 // L; 0 disables pre-acceptance
	appendices []Appendix
	mainArea   float64
	totalArea  float64
}

// Appendix declares one outlier case: an upper bound on the outlier edge's
// static width (Ps) and on its dynamic overshoot above Q (Pd - Q). Tag is
// returned to the caller so it can identify which outlier case was hit
// (e.g. "the return edge") and locate the concrete edge.
type Appendix struct {
	Tag      int
	WidthUB  float64 // >= Ps(outlier edge)
	HeightUB float64 // >= Pd(outlier edge) - Q
}

// Proposal is one dart throw.
type Proposal struct {
	// EdgeIdx is the candidate edge index for a main-region dart; -1 for an
	// appendix dart (the caller locates the outlier edge itself).
	EdgeIdx int
	// Appendix is the index into Appendices() for an appendix dart, -1 for
	// a main-region dart.
	Appendix int
	// Y is the dart height in [0, Q) for main-region darts.
	Y float64
	// PreAccepted is true when Y <= L: accept without evaluating Pd.
	PreAccepted bool
}

// NewRejection builds the dartboard for one vertex: static is the Ps
// sampler over the vertex's out-edges, upper is Q(v) (> 0), lower is L(v)
// (0 to disable), and appendices declare the outliers. Panics on invalid
// geometry, which would silently bias sampling.
func NewRejection(static StaticSampler, upper, lower float64, appendices []Appendix) *Rejection {
	r := new(Rejection)
	r.Reset(static, upper, lower, appendices)
	return r
}

// Reset initializes r in place — the arena form of NewRejection, for
// callers that build one dartboard per vertex into a contiguous slab
// instead of allocating each board individually. Same validation and
// panics as NewRejection.
func (r *Rejection) Reset(static StaticSampler, upper, lower float64, appendices []Appendix) {
	if static == nil || static.N() == 0 {
		panic("sampling: rejection over zero edges")
	}
	if !(upper > 0) || math.IsInf(upper, 0) {
		panic(fmt.Sprintf("sampling: envelope Q = %v must be positive and finite", upper))
	}
	if !(lower >= 0) || lower > upper {
		panic(fmt.Sprintf("sampling: lower bound L = %v outside [0, Q=%v]", lower, upper))
	}
	*r = Rejection{
		static:     static,
		upper:      upper,
		lower:      lower,
		appendices: appendices,
		mainArea:   upper * static.Total(),
	}
	r.totalArea = r.mainArea
	for _, a := range appendices {
		if !(a.WidthUB >= 0) || !(a.HeightUB >= 0) ||
			math.IsInf(a.WidthUB, 0) || math.IsInf(a.HeightUB, 0) {
			panic("sampling: appendix bounds must be finite and non-negative")
		}
		r.totalArea += a.WidthUB * a.HeightUB
	}
}

// Propose throws one dart and returns the candidate.
//
//kk:hotpath
func (rj *Rejection) Propose(r *rng.Rand) Proposal {
	if x := r.Float64() * rj.totalArea; x >= rj.mainArea {
		// Appendix region: find which appendix this slab belongs to.
		x -= rj.mainArea
		for i, a := range rj.appendices {
			area := a.WidthUB * a.HeightUB
			if x < area {
				return Proposal{EdgeIdx: -1, Appendix: i}
			}
			x -= area
		}
		// Floating-point edge: fall through to the last appendix.
		return Proposal{EdgeIdx: -1, Appendix: len(rj.appendices) - 1}
	}
	y := r.Float64() * rj.upper
	return Proposal{
		EdgeIdx:     rj.static.Sample(r),
		Appendix:    -1,
		Y:           y,
		PreAccepted: y <= rj.lower,
	}
}

// AcceptMain decides a main-region dart given the candidate's dynamic
// component. Callers should skip the Pd evaluation entirely when
// p.PreAccepted is set; calling AcceptMain anyway is still correct because
// Y <= L <= Pd by the lower bound's contract.
//
//kk:hotpath
func (rj *Rejection) AcceptMain(p Proposal, pd float64) bool {
	if p.Appendix >= 0 {
		panic("sampling: AcceptMain on an appendix proposal")
	}
	return p.Y <= pd
}

// AppendixAcceptProb returns the probability with which an appendix dart
// accepts the located outlier edge: its actual chopped area (Ps width ×
// overshoot above Q) over the declared appendix area. psWidth and pd are
// the located edge's actual static and dynamic components. The result is 0
// when the edge turns out not to overshoot Q at all (the declaration was a
// loose upper bound), which keeps sampling exact.
//
//kk:hotpath
func (rj *Rejection) AppendixAcceptProb(p Proposal, psWidth, pd float64) float64 {
	if p.Appendix < 0 {
		panic("sampling: AppendixAcceptProb on a main-region proposal")
	}
	a := rj.appendices[p.Appendix]
	declared := a.WidthUB * a.HeightUB
	if declared <= 0 {
		return 0
	}
	over := pd - rj.upper
	if over <= 0 {
		return 0
	}
	if over > a.HeightUB {
		panic(fmt.Sprintf("sampling: outlier overshoot %v exceeds declared bound %v", over, a.HeightUB)) //kk:alloc-ok panic path: a violated appendix bound aborts the run, never steady state
	}
	if psWidth > a.WidthUB {
		panic(fmt.Sprintf("sampling: outlier width %v exceeds declared bound %v", psWidth, a.WidthUB)) //kk:alloc-ok panic path: a violated appendix bound aborts the run, never steady state
	}
	return psWidth * over / declared
}

// Appendices returns the declared outliers.
//
//kk:hotpath
func (rj *Rejection) Appendices() []Appendix { return rj.appendices }

// Upper returns the envelope Q.
func (rj *Rejection) Upper() float64 { return rj.upper }

// Lower returns the pre-acceptance bound L (0 when disabled).
func (rj *Rejection) Lower() float64 { return rj.lower }

// ExpectedTrials computes E = totalArea / Σ(Ps·Pd), the paper's equation
// (3) extended with appendix area, given the true per-edge dynamic
// components. Used by tests and the analytical tooling, not on hot paths.
func (rj *Rejection) ExpectedTrials(pd func(i int) float64) float64 {
	effective := 0.0
	for i := 0; i < rj.static.N(); i++ {
		effective += rj.static.WeightAt(i) * pd(i)
	}
	if effective <= 0 {
		return 0
	}
	return rj.totalArea / effective
}

// SampleExact runs complete rejection sampling locally until acceptance,
// for callers that can evaluate Pd synchronously (single-node walks and
// tests). locate maps an appendix tag to the concrete edge index, or -1 if
// the outlier edge does not exist at this vertex. Returns the accepted
// edge index and the number of trials used.
func (rj *Rejection) SampleExact(r *rng.Rand, pd func(i int) float64, locate func(tag int) int) (edge, trials int) {
	for {
		trials++
		p := rj.Propose(r)
		if p.Appendix >= 0 {
			idx := locate(rj.appendices[p.Appendix].Tag)
			if idx < 0 {
				continue
			}
			prob := rj.AppendixAcceptProb(p, rj.static.WeightAt(idx), pd(idx))
			if r.Bernoulli(prob) {
				return idx, trials
			}
			continue
		}
		if p.PreAccepted || rj.AcceptMain(p, pd(p.EdgeIdx)) {
			return p.EdgeIdx, trials
		}
	}
}
