package sampling

import (
	"math"
	"testing"

	"knightking/internal/rng"
)

// node2vec-like Pd values for a 4-edge vertex where edge 3 is the return
// edge: Pd = {1, 2, 2, 1/p}.
func node2vecPd(invP float64) []float64 {
	return []float64{1, 2, 2, invP}
}

// runExact samples `draws` times with SampleExact and returns frequencies
// and average trials.
func runExact(t *testing.T, rj *Rejection, pd []float64, returnEdge int, draws int, seed uint64) ([]float64, float64) {
	t.Helper()
	r := rng.New(seed)
	counts := make([]float64, len(pd))
	totalTrials := 0
	locate := func(tag int) int { return returnEdge }
	for i := 0; i < draws; i++ {
		idx, trials := rj.SampleExact(r, func(i int) float64 { return pd[i] }, locate)
		counts[idx]++
		totalTrials += trials
	}
	for i := range counts {
		counts[i] /= float64(draws)
	}
	return counts, float64(totalTrials) / float64(draws)
}

// assertDistribution checks frequencies against the exact target
// distribution proportional to ps[i]*pd[i].
func assertDistribution(t *testing.T, freqs []float64, ps, pd []float64, tol float64) {
	t.Helper()
	total := 0.0
	for i := range ps {
		total += ps[i] * pd[i]
	}
	for i, f := range freqs {
		want := ps[i] * pd[i] / total
		if math.Abs(f-want) > tol {
			t.Fatalf("edge %d: frequency %v, want %v (±%v)", i, f, want, tol)
		}
	}
}

func TestRejectionUnbiasedBasic(t *testing.T) {
	// p=2, q=0.5 → Pd ∈ {0.5, 1, 2}, Q=2, no outlier needed.
	pd := node2vecPd(0.5)
	rj := NewRejection(NewUniform(4), 2, 0, nil)
	freqs, _ := runExact(t, rj, pd, 3, 200000, 1)
	assertDistribution(t, freqs, []float64{1, 1, 1, 1}, pd, 0.01)
}

func TestRejectionExpectedTrials(t *testing.T) {
	pd := node2vecPd(0.5)
	rj := NewRejection(NewUniform(4), 2, 0, nil)
	want := rj.ExpectedTrials(func(i int) float64 { return pd[i] })
	// E = Q*ΣPs / Σ(Ps*Pd) = 2*4 / 5.5 ≈ 1.4545
	if math.Abs(want-8.0/5.5) > 1e-12 {
		t.Fatalf("analytic E = %v, want %v", want, 8.0/5.5)
	}
	_, avg := runExact(t, rj, pd, 3, 100000, 2)
	if math.Abs(avg-want) > 0.05 {
		t.Fatalf("empirical trials %v, analytic %v", avg, want)
	}
}

func TestRejectionLowerBoundPreAccepts(t *testing.T) {
	// All Pd >= 0.5, so L = 0.5 pre-accepts darts below it; distribution
	// must be unchanged.
	pd := node2vecPd(0.5)
	rjNaive := NewRejection(NewUniform(4), 2, 0, nil)
	rjLower := NewRejection(NewUniform(4), 2, 0.5, nil)
	fNaive, _ := runExact(t, rjNaive, pd, 3, 200000, 3)
	fLower, _ := runExact(t, rjLower, pd, 3, 200000, 4)
	for i := range fNaive {
		if math.Abs(fNaive[i]-fLower[i]) > 0.01 {
			t.Fatalf("lower bound changed distribution at %d: %v vs %v", i, fNaive[i], fLower[i])
		}
	}
	// Count how often Pd evaluation was needed: simulate via Propose.
	r := rng.New(5)
	evals, draws := 0, 100000
	for i := 0; i < draws; i++ {
		p := rjLower.Propose(r)
		if p.Appendix < 0 && !p.PreAccepted {
			evals++
		}
	}
	// Pre-acceptance rate should be L/Q = 25% of main-region darts.
	rate := float64(draws-evals) / float64(draws)
	if rate < 0.2 {
		t.Fatalf("pre-acceptance rate %v too low", rate)
	}
}

func TestRejectionUniformPdNeverEvaluates(t *testing.T) {
	// p = q = 1: Pd ≡ 1, L = Q = 1 → every main dart pre-accepted. This is
	// the paper's Table 5a third column: 0 edges/step with lower bound.
	rj := NewRejection(NewUniform(5), 1, 1, nil)
	r := rng.New(6)
	for i := 0; i < 10000; i++ {
		p := rj.Propose(r)
		if !p.PreAccepted {
			t.Fatal("dart below L=Q=1 not pre-accepted")
		}
	}
}

func TestRejectionOutlierExactness(t *testing.T) {
	// p=0.5, q=2 → return edge Pd = 2, others 0.5 or 1. Without outlier
	// folding Q must be 2; with folding Q = 1 and the return edge gets an
	// appendix of height 1.
	pd := []float64{0.5, 1, 0.5, 2} // edge 3 = return edge
	naive := NewRejection(NewUniform(4), 2, 0, nil)
	folded := NewRejection(NewUniform(4), 1, 0, []Appendix{{Tag: 0, WidthUB: 1, HeightUB: 1}})

	fNaive, trialsNaive := runExact(t, naive, pd, 3, 300000, 7)
	fFolded, trialsFolded := runExact(t, folded, pd, 3, 300000, 8)

	ps := []float64{1, 1, 1, 1}
	assertDistribution(t, fNaive, ps, pd, 0.01)
	assertDistribution(t, fFolded, ps, pd, 0.01)

	// Folding must reduce the expected trials: naive area 8 vs folded 5.
	if trialsFolded >= trialsNaive {
		t.Fatalf("outlier folding did not help: %v vs %v trials", trialsFolded, trialsNaive)
	}
}

func TestRejectionOutlierLooseBoundsStillExact(t *testing.T) {
	// Declared appendix is a loose upper bound (width 2, height 3) while
	// the actual chopped area is 1x1; sampling must remain exact.
	pd := []float64{0.5, 1, 0.5, 2}
	folded := NewRejection(NewUniform(4), 1, 0, []Appendix{{Tag: 0, WidthUB: 2, HeightUB: 3}})
	freqs, _ := runExact(t, folded, pd, 3, 300000, 9)
	assertDistribution(t, freqs, []float64{1, 1, 1, 1}, pd, 0.01)
}

func TestRejectionOutlierMissingEdge(t *testing.T) {
	// The outlier case may not exist at this vertex (e.g. first step has no
	// return edge): locate returns -1 and the dart is simply rejected.
	// Distribution over the other edges must still follow Ps*Pd.
	pd := []float64{0.5, 1, 0.75}
	rj := NewRejection(NewUniform(3), 1, 0, []Appendix{{Tag: 0, WidthUB: 1, HeightUB: 1}})
	r := rng.New(10)
	counts := make([]float64, 3)
	const draws = 200000
	for i := 0; i < draws; i++ {
		idx, _ := rj.SampleExact(r, func(i int) float64 { return pd[i] }, func(int) int { return -1 })
		counts[idx]++
	}
	for i := range counts {
		counts[i] /= draws
	}
	assertDistribution(t, counts, []float64{1, 1, 1}, pd, 0.01)
}

func TestRejectionBiased(t *testing.T) {
	// Weighted static component via alias; joint distribution must follow
	// Ps*Pd.
	ps := []float32{1, 3, 2, 4}
	pd := []float64{2, 0.5, 1, 1.5}
	alias, err := NewAlias(ps)
	if err != nil {
		t.Fatal(err)
	}
	rj := NewRejection(alias, 2, 0.5, nil)
	freqs, _ := runExact(t, rj, pd, -1, 300000, 11)
	assertDistribution(t, freqs, []float64{1, 3, 2, 4}, pd, 0.01)
}

func TestRejectionTrialsIndependentOfDegree(t *testing.T) {
	// The headline claim: E does not grow with vertex degree.
	pdFor := func(n int) []float64 {
		pd := make([]float64, n)
		for i := range pd {
			pd[i] = 0.5 + float64(i%3)*0.75 // in [0.5, 2]
		}
		return pd
	}
	var small, large float64
	for _, n := range []int{12, 12000} {
		pd := pdFor(n)
		rj := NewRejection(NewUniform(n), 2, 0.5, nil)
		_, avg := runExact(t, rj, pd, -1, 20000, 12)
		if n == 12 {
			small = avg
		} else {
			large = avg
		}
	}
	if math.Abs(small-large) > 0.1 {
		t.Fatalf("trials depend on degree: %v (n=12) vs %v (n=12000)", small, large)
	}
}

func TestRejectionGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { NewRejection(nil, 1, 0, nil) },
		func() { NewRejection(NewUniform(3), 0, 0, nil) },
		func() { NewRejection(NewUniform(3), 1, -0.1, nil) },
		func() { NewRejection(NewUniform(3), 1, 1.5, nil) },
		func() { NewRejection(NewUniform(3), 1, 0, []Appendix{{WidthUB: -1, HeightUB: 1}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAppendixAcceptProbContractViolations(t *testing.T) {
	rj := NewRejection(NewUniform(2), 1, 0, []Appendix{{Tag: 0, WidthUB: 1, HeightUB: 1}})
	p := Proposal{EdgeIdx: -1, Appendix: 0}
	// Pd below Q: probability 0, no panic.
	if got := rj.AppendixAcceptProb(p, 1, 0.5); got != 0 {
		t.Fatalf("prob = %v, want 0", got)
	}
	// Overshoot beyond declared bound must panic (silent bias otherwise).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overshoot violation did not panic")
			}
		}()
		rj.AppendixAcceptProb(p, 1, 5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("width violation did not panic")
			}
		}()
		rj.AppendixAcceptProb(p, 3, 1.5)
	}()
}

func TestProposeMisuse(t *testing.T) {
	rj := NewRejection(NewUniform(2), 1, 0, []Appendix{{Tag: 0, WidthUB: 1, HeightUB: 1}})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AcceptMain on appendix proposal did not panic")
			}
		}()
		rj.AcceptMain(Proposal{EdgeIdx: -1, Appendix: 0}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AppendixAcceptProb on main proposal did not panic")
			}
		}()
		rj.AppendixAcceptProb(Proposal{EdgeIdx: 0, Appendix: -1}, 1, 1)
	}()
}

func BenchmarkRejectionSampleExact(b *testing.B) {
	const n = 4096
	pd := make([]float64, n)
	for i := range pd {
		pd[i] = 0.5 + float64(i%3)*0.75
	}
	rj := NewRejection(NewUniform(n), 2, 0.5, nil)
	r := rng.New(1)
	pdf := func(i int) float64 { return pd[i] }
	locate := func(int) int { return -1 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rj.SampleExact(r, pdf, locate)
	}
}

func BenchmarkFullScanSample(b *testing.B) {
	// The traditional O(n) alternative, for comparison in bench output.
	const n = 4096
	pd := make([]float64, n)
	for i := range pd {
		pd[i] = 0.5 + float64(i%3)*0.75
	}
	r := rng.New(1)
	weights := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range weights {
			weights[j] = pd[j]
		}
		its, _ := NewITSFromFloat64(weights)
		its.Sample(r)
	}
}

func TestRejectionRejectsNonFiniteGeometry(t *testing.T) {
	cases := []func(){
		func() { NewRejection(NewUniform(3), math.NaN(), 0, nil) },
		func() { NewRejection(NewUniform(3), math.Inf(1), 0, nil) },
		func() { NewRejection(NewUniform(3), 1, math.NaN(), nil) },
		func() { NewRejection(NewUniform(3), 1, 0, []Appendix{{WidthUB: math.NaN(), HeightUB: 1}}) },
		func() { NewRejection(NewUniform(3), 1, 0, []Appendix{{WidthUB: 1, HeightUB: math.Inf(1)}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
