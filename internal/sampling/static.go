// Package sampling implements the edge-sampling machinery of KnightKing
// (§3–4 of the paper): the two classic static samplers — alias tables and
// inverse transform sampling (ITS) — plus the rejection sampler that makes
// exact dynamic (walker-dependent) sampling O(1) expected time, with the
// paper's outlier-folding and lower-bound pre-acceptance optimizations.
package sampling

import (
	"fmt"
	"math"
	"sync"

	"knightking/internal/rng"
)

// StaticSampler draws an index in [0, N()) with probability proportional to
// its static weight Ps. Implementations are immutable after construction
// and safe for concurrent Sample calls with distinct Rands.
type StaticSampler interface {
	// Sample returns an index distributed proportionally to weights.
	Sample(r *rng.Rand) int
	// N returns the number of items.
	N() int
	// Total returns the sum of weights (ΣPs).
	Total() float64
	// WeightAt returns the weight of item i.
	WeightAt(i int) float64
}

// Uniform samples uniformly over n items (Ps ≡ 1), the static sampler for
// unweighted graphs.
type Uniform struct {
	n int
}

// NewUniform returns a uniform sampler over n items. n must be positive.
func NewUniform(n int) *Uniform {
	if n <= 0 {
		panic(fmt.Sprintf("sampling: NewUniform(%d)", n))
	}
	return &Uniform{n: n}
}

// uniformCache backs SharedUniform: Uniform is immutable and parameterized
// only by n, so one instance per item count serves every caller.
var uniformCache struct {
	mu sync.Mutex
	by []*Uniform
}

// SharedUniform returns a process-shared uniform sampler over n items,
// equivalent to NewUniform(n) but served from a cache so that building
// per-vertex sampler tables for an unweighted graph allocates nothing per
// vertex. Safe for concurrent use; n must be positive.
func SharedUniform(n int) *Uniform {
	if n <= 0 {
		panic(fmt.Sprintf("sampling: SharedUniform(%d)", n))
	}
	uniformCache.mu.Lock()
	defer uniformCache.mu.Unlock()
	if n >= len(uniformCache.by) {
		grown := make([]*Uniform, n+1)
		copy(grown, uniformCache.by)
		uniformCache.by = grown
	}
	u := uniformCache.by[n]
	if u == nil {
		u = &Uniform{n: n}
		uniformCache.by[n] = u
	}
	return u
}

// Sample returns a uniform index in [0, n).
//
//kk:hotpath
func (u *Uniform) Sample(r *rng.Rand) int { return r.Intn(u.n) }

// N returns the item count.
func (u *Uniform) N() int { return u.n }

// Total returns n (each item has weight 1).
func (u *Uniform) Total() float64 { return float64(u.n) }

// WeightAt returns 1 for every item.
func (u *Uniform) WeightAt(int) float64 { return 1 }

// Alias is a Walker/Vose alias table: O(n) construction, O(1) sampling.
// This is KnightKing's default static solution (§3, Figure 1b).
type Alias struct {
	prob    []float64 // acceptance threshold per bucket
	alias   []int32   // fallback item per bucket
	weights []float64
	total   float64
}

// NewAlias builds an alias table over the given non-negative weights. At
// least one weight must be positive.
func NewAlias(weights []float32) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: alias table over zero items")
	}
	w := make([]float64, n)
	total := 0.0
	for i, x := range weights {
		if x < 0 || math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return nil, fmt.Errorf("sampling: invalid weight %v at %d", x, i)
		}
		w[i] = float64(x)
		total += float64(x)
	}
	if !(total > 0) {
		return nil, fmt.Errorf("sampling: weights sum to %v", total)
	}

	a := &Alias{
		prob:    make([]float64, n),
		alias:   make([]int32, n),
		weights: w,
		total:   total,
	}
	// Scaled weights: mean 1 per bucket.
	scaled := make([]float64, n)
	for i := range w {
		scaled[i] = w[i] * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small { // numeric residue; should be ~1 already
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a, nil
}

// Sample draws an index in O(1): pick a bucket uniformly, then the bucket's
// primary item with probability prob[b], else its alias.
//
//kk:hotpath
func (a *Alias) Sample(r *rng.Rand) int {
	b := r.Intn(len(a.prob))
	if r.Float64() < a.prob[b] {
		return b
	}
	return int(a.alias[b])
}

// N returns the item count.
func (a *Alias) N() int { return len(a.prob) }

// Total returns ΣPs.
func (a *Alias) Total() float64 { return a.total }

// WeightAt returns the weight of item i.
func (a *Alias) WeightAt(i int) float64 { return a.weights[i] }

// ITS is an inverse-transform sampler: a CDF array with binary search,
// O(n) construction, O(log n) sampling (§3, Figure 1a). KnightKing uses
// alias by default; ITS exists for the baseline engine and comparisons.
type ITS struct {
	cdf     []float64 // cdf[i] = sum of weights[0..i]
	weights []float64
}

// NewITS builds a CDF sampler over the given non-negative weights. At
// least one weight must be positive.
func NewITS(weights []float32) (*ITS, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: ITS over zero items")
	}
	cdf := make([]float64, n)
	w := make([]float64, n)
	sum := 0.0
	for i, x := range weights {
		if x < 0 || math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return nil, fmt.Errorf("sampling: invalid weight %v at %d", x, i)
		}
		w[i] = float64(x)
		sum += float64(x)
		cdf[i] = sum
	}
	if !(sum > 0) {
		return nil, fmt.Errorf("sampling: weights sum to %v", sum)
	}
	return &ITS{cdf: cdf, weights: w}, nil
}

// NewITSFromFloat64 builds a CDF sampler from float64 weights; used where
// the baseline recomputes dynamic products per step.
func NewITSFromFloat64(weights []float64) (*ITS, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: ITS over zero items")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i, x := range weights {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("sampling: invalid weight %v at %d", x, i)
		}
		sum += x
		cdf[i] = sum
	}
	if !(sum > 0) {
		return nil, fmt.Errorf("sampling: weights sum to %v", sum)
	}
	return &ITS{cdf: cdf, weights: weights}, nil
}

// ResetFloat64 rebuilds s in place over float64 weights, reusing the CDF
// backing array: sampling behavior is identical to a fresh
// NewITSFromFloat64, with no allocation once capacity is warm. The weights
// slice is retained until the next Reset, so callers reusing a scratch
// slice must finish sampling before overwriting it.
//
//kk:hotpath
func (s *ITS) ResetFloat64(weights []float64) error {
	n := len(weights)
	if n == 0 {
		return fmt.Errorf("sampling: ITS over zero items") //kk:alloc-ok error path: invalid input aborts the step, never steady state
	}
	cdf := s.cdf[:0]
	sum := 0.0
	for i, x := range weights {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("sampling: invalid weight %v at %d", x, i) //kk:alloc-ok error path: invalid input aborts the step, never steady state
		}
		sum += x
		cdf = append(cdf, sum)
	}
	if !(sum > 0) {
		return fmt.Errorf("sampling: weights sum to %v", sum) //kk:alloc-ok error path: invalid input aborts the step, never steady state
	}
	s.cdf = cdf
	s.weights = weights
	return nil
}

// Sample draws x in [0, total) and returns the smallest i with cdf[i] > x,
// so item i is selected with probability weights[i]/total and zero-weight
// items are never selected. The binary search is hand-rolled: sort.Search
// would allocate a capturing closure on every draw.
//
//kk:hotpath
func (s *ITS) Sample(r *rng.Rand) int {
	x := r.Float64() * s.cdf[len(s.cdf)-1]
	lo, hi := 0, len(s.cdf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.cdf[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// N returns the item count.
func (s *ITS) N() int { return len(s.cdf) }

// Total returns ΣPs.
func (s *ITS) Total() float64 { return s.cdf[len(s.cdf)-1] }

// WeightAt returns the weight of item i.
func (s *ITS) WeightAt(i int) float64 { return s.weights[i] }
