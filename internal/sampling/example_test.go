package sampling_test

import (
	"fmt"

	"knightking/internal/rng"
	"knightking/internal/sampling"
)

func ExampleNewAlias() {
	// Three edges with weights 1, 2, 5: edge 2 is drawn ~62.5% of the time.
	alias, err := sampling.NewAlias([]float32{1, 2, 5})
	if err != nil {
		panic(err)
	}
	r := rng.New(1)
	counts := make([]int, 3)
	for i := 0; i < 100000; i++ {
		counts[alias.Sample(r)]++
	}
	for i, c := range counts {
		fmt.Printf("edge %d: ~%.0f%%\n", i, 100*float64(c)/100000)
	}
	// Output:
	// edge 0: ~13%
	// edge 1: ~25%
	// edge 2: ~62%
}

func ExampleRejection_SampleExact() {
	// node2vec-style dynamic weights over 4 unweighted edges: the sampler
	// draws exactly proportional to Pd while evaluating only ~E edges per
	// draw instead of all 4.
	pd := []float64{0.5, 1, 2, 2} // dynamic components
	rj := sampling.NewRejection(sampling.NewUniform(4), 2, 0.5, nil)
	r := rng.New(2)
	counts := make([]int, 4)
	totalTrials := 0
	for i := 0; i < 100000; i++ {
		edge, trials := rj.SampleExact(r, func(i int) float64 { return pd[i] }, nil)
		counts[edge]++
		totalTrials += trials
	}
	fmt.Printf("edge 2 drawn %.0fx as often as edge 0\n",
		float64(counts[2])/float64(counts[0]))
	fmt.Printf("expected trials per draw: %.2f (analytic %.2f)\n",
		float64(totalTrials)/100000, rj.ExpectedTrials(func(i int) float64 { return pd[i] }))
	// Output:
	// edge 2 drawn 4x as often as edge 0
	// expected trials per draw: 1.46 (analytic 1.45)
}
