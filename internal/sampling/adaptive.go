// Runtime sampler adaptation (FlexiWalker-style): instead of fixing one
// sampling structure per run, the engine measures per-vertex work — how
// many rejection darts a step at the vertex costs, how often the vertex is
// visited — and switches hot vertices to whichever sampler is cheapest for
// the observed workload:
//
//   - dynamic walks: rejection sampling against the envelope is O(E[trials])
//     per step; when a loose envelope (e.g. a widened dyngraph envelope that
//     has not been tightened) pushes the measured trials/step past the cost
//     of an exact O(degree) scan, the vertex switches to the exact scan.
//   - static proposal structure: alias tables cost two RNG draws per O(1)
//     draw, ITS costs one draw plus an O(log degree) search; for small
//     degrees the search is a handful of comparisons in one cache line, so
//     hot low-degree vertices switch alias → ITS and hot high-degree
//     vertices switch ITS → alias.
//
// This file holds the policy and its measurement cell; the engine owns the
// per-vertex mode arrays and applies switches only at superstep barriers,
// which keeps adapted runs deterministic (see internal/core/adapt.go).
package sampling

import "sync/atomic"

// Mode identifies the sampling strategy in effect for one vertex.
type Mode uint8

const (
	// ModeAuto is the engine default for the vertex: the statically
	// configured structure, rejection sampling for dynamic walks.
	ModeAuto Mode = iota
	// ModeRejection explicitly selects rejection sampling with the base
	// proposal structure (dynamic walks; equivalent to ModeAuto there).
	ModeRejection
	// ModeAlias selects an alias-table static structure for the vertex.
	ModeAlias
	// ModeITS selects a CDF (inverse transform) static structure.
	ModeITS
	// ModeExact selects the exact O(degree) product-distribution scan for
	// dynamic walks with locally computable Pd.
	ModeExact
)

// String returns the mode's short name.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeRejection:
		return "rejection"
	case ModeAlias:
		return "alias"
	case ModeITS:
		return "its"
	case ModeExact:
		return "exact"
	}
	return "invalid"
}

// TrialCell accumulates one vertex's step and trial counts in a single
// atomic word (steps in the high 32 bits, trials in the low 32), so hot
// paths pay one uncontended-in-expectation atomic add per completed step.
// Readers see a consistent (steps, trials) pair; the pair is a sum over
// walkers and therefore independent of worker scheduling, which is what
// makes barrier-time decisions derived from it deterministic.
type TrialCell struct {
	v atomic.Uint64
}

// Record adds one completed step that consumed the given number of trials.
//
//kk:hotpath
func (c *TrialCell) Record(trials uint32) {
	c.v.Add(1<<32 | uint64(trials))
}

// Load returns the accumulated (steps, trials) pair.
func (c *TrialCell) Load() (steps, trials uint32) {
	x := c.v.Load()
	return uint32(x >> 32), uint32(x)
}

// Reset clears the cell.
func (c *TrialCell) Reset() { c.v.Store(0) }

// AdaptivePolicy decides per-vertex sampler switches from measured counts.
// The zero value selects the defaults documented on each field.
type AdaptivePolicy struct {
	// MinSteps is the number of observed steps at a vertex before any
	// switch is considered (default 32): below it the trials/step estimate
	// is too noisy to act on.
	MinSteps uint32
	// ExactFactor scales the rejection→exact threshold for dynamic walks:
	// switch when measured trials/step exceeds ExactFactor × degree, i.e.
	// when dart throwing provably does more Pd-evaluation work than the
	// O(degree) exact scan (default 1).
	ExactFactor float64
	// ITSMaxDegree is the degree at or below which a hot vertex prefers
	// ITS over an alias table (one RNG draw plus a short search beats two
	// draws); above it the O(1) alias lookup wins (default 8). Negative
	// disables static-structure switching.
	ITSMaxDegree int
}

// WithDefaults returns p with zero fields replaced by the defaults.
func (p AdaptivePolicy) WithDefaults() AdaptivePolicy {
	if p.MinSteps == 0 {
		p.MinSteps = 32
	}
	if p.ExactFactor == 0 {
		p.ExactFactor = 1
	}
	if p.ITSMaxDegree == 0 {
		p.ITSMaxDegree = 8
	}
	return p
}

// DecideDynamic returns the mode a dynamic-walk vertex of the given degree
// should use, given its accumulated counts and current mode. Switches are
// sticky: once a vertex has demonstrated a loose envelope the exact scan is
// kept, avoiding mode flapping (a tightened envelope resets the engine's
// cells and modes out of band).
func (p AdaptivePolicy) DecideDynamic(deg int, steps, trials uint32, cur Mode) Mode {
	if cur == ModeExact || steps < p.MinSteps || deg == 0 {
		return cur
	}
	if float64(trials) > p.ExactFactor*float64(deg)*float64(steps) {
		return ModeExact
	}
	return cur
}

// DecideStatic returns the static proposal structure a hot vertex of the
// given degree should use: ITS at or below ITSMaxDegree, alias above it.
// Vertices without MinSteps observations keep their current mode.
func (p AdaptivePolicy) DecideStatic(deg int, steps uint32, cur Mode) Mode {
	if p.ITSMaxDegree < 0 || steps < p.MinSteps || deg == 0 {
		return cur
	}
	if deg <= p.ITSMaxDegree {
		return ModeITS
	}
	return ModeAlias
}
