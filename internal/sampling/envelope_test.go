package sampling

import (
	"math/rand"
	"testing"
)

func TestEnvelopeExact(t *testing.T) {
	e := ExactEnvelope([]float32{2, 5, 1, 3})
	if e.Upper() != 5 || e.Lower() != 1 || e.N() != 4 || e.Loose() {
		t.Fatalf("ExactEnvelope = %+v, want upper 5 lower 1 n 4 tight", e)
	}
	if z := ExactEnvelope(nil); z.Upper() != 0 || z.Lower() != 0 || z.N() != 0 {
		t.Fatalf("empty envelope = %+v, want zero", z)
	}
}

func TestEnvelopeInsertStaysExact(t *testing.T) {
	var e Envelope
	e.Insert(3)
	e.Insert(7)
	e.Insert(1)
	if e.Upper() != 7 || e.Lower() != 1 || e.N() != 3 || e.Loose() {
		t.Fatalf("after inserts: %+v", e)
	}
}

func TestEnvelopeDeleteLoosens(t *testing.T) {
	e := ExactEnvelope([]float32{1, 4, 9})
	// Interior delete: bounds untouched and still tight.
	e.Delete(4)
	if e.Loose() || e.Upper() != 9 || e.Lower() != 1 || e.N() != 2 {
		t.Fatalf("interior delete: %+v", e)
	}
	// Boundary delete: bounds untouched (still valid) but marked loose.
	e.Delete(9)
	if !e.Loose() {
		t.Fatal("boundary delete did not mark the envelope loose")
	}
	if e.Upper() != 9 || e.Lower() != 1 {
		t.Fatalf("boundary delete moved the bounds: %+v", e)
	}
	// Tighten restores exactness over the survivors.
	e.Tighten([]float32{1})
	if e.Loose() || e.Upper() != 1 || e.Lower() != 1 || e.N() != 1 {
		t.Fatalf("after Tighten: %+v", e)
	}
	// Deleting the last edge resets to the empty envelope.
	e.Delete(1)
	if e.N() != 0 || e.Upper() != 0 || e.Lower() != 0 || e.Loose() {
		t.Fatalf("after last delete: %+v", e)
	}
	// Re-insert after empty starts exact again.
	e.Insert(2)
	if e.Upper() != 2 || e.Lower() != 2 || e.Loose() {
		t.Fatalf("insert after empty: %+v", e)
	}
}

func TestEnvelopeUpdate(t *testing.T) {
	e := ExactEnvelope([]float32{2, 6})
	e.Update(2, 10)
	if e.Upper() != 10 || e.N() != 2 {
		t.Fatalf("after Update: %+v", e)
	}
	if !e.Loose() {
		// old weight 2 was the lower boundary, so the lower bound is loose
		t.Fatal("boundary update did not mark loose")
	}
}

// TestEnvelopeAlwaysBrackets is the exactness property the rejection
// sampler relies on: under any random insert/delete interleaving, the
// maintained bounds always bracket the live weights.
func TestEnvelopeAlwaysBrackets(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var e Envelope
	var live []float32
	for step := 0; step < 5000; step++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			i := r.Intn(len(live))
			e.Delete(float64(live[i]))
			live = append(live[:i], live[i+1:]...)
		} else {
			w := float32(r.Float64()*9 + 1)
			e.Insert(float64(w))
			live = append(live, w)
		}
		if e.N() != len(live) {
			t.Fatalf("step %d: N=%d, live=%d", step, e.N(), len(live))
		}
		for _, w := range live {
			if float64(w) > e.Upper() {
				t.Fatalf("step %d: weight %v above upper %v", step, w, e.Upper())
			}
			if float64(w) < e.Lower() {
				t.Fatalf("step %d: weight %v below lower %v", step, w, e.Lower())
			}
		}
	}
}
