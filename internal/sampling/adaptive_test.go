package sampling

import (
	"testing"

	"knightking/internal/rng"
)

func TestTrialCellPacking(t *testing.T) {
	var c TrialCell
	c.Record(3)
	c.Record(3)
	c.Record(1)
	steps, trials := c.Load()
	if steps != 3 || trials != 7 {
		t.Fatalf("Load = (%d, %d), want (3, 7)", steps, trials)
	}
	c.Reset()
	if s, tr := c.Load(); s != 0 || tr != 0 {
		t.Fatalf("after Reset: (%d, %d)", s, tr)
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeAuto: "auto", ModeRejection: "rejection", ModeAlias: "alias",
		ModeITS: "its", ModeExact: "exact", Mode(99): "invalid",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := AdaptivePolicy{}.WithDefaults()
	if p.MinSteps != 32 || p.ExactFactor != 1 || p.ITSMaxDegree != 8 {
		t.Fatalf("defaults = %+v", p)
	}
	// Negative ITSMaxDegree (disable) must survive WithDefaults.
	if p := (AdaptivePolicy{ITSMaxDegree: -1}).WithDefaults(); p.ITSMaxDegree != -1 {
		t.Fatalf("ITSMaxDegree=-1 overwritten to %d", p.ITSMaxDegree)
	}
}

func TestDecideDynamic(t *testing.T) {
	p := AdaptivePolicy{}.WithDefaults()
	// Below MinSteps: no decision regardless of trials.
	if m := p.DecideDynamic(4, 10, 1000, ModeAuto); m != ModeAuto {
		t.Fatalf("below MinSteps switched to %v", m)
	}
	// Loose envelope: trials/step > degree → exact scan.
	if m := p.DecideDynamic(4, 100, 401, ModeAuto); m != ModeExact {
		t.Fatalf("loose envelope kept %v", m)
	}
	// Tight envelope: stays.
	if m := p.DecideDynamic(4, 100, 399, ModeAuto); m != ModeAuto {
		t.Fatalf("tight envelope switched to %v", m)
	}
	// Sticky: once exact, always exact (even with clean counts).
	if m := p.DecideDynamic(4, 100, 100, ModeExact); m != ModeExact {
		t.Fatalf("exact flapped back to %v", m)
	}
	// ExactFactor scales the threshold.
	p2 := AdaptivePolicy{ExactFactor: 2}.WithDefaults()
	if m := p2.DecideDynamic(4, 100, 401, ModeAuto); m != ModeAuto {
		t.Fatalf("ExactFactor=2 switched at factor-1 threshold")
	}
	if m := p2.DecideDynamic(4, 100, 801, ModeAuto); m != ModeExact {
		t.Fatalf("ExactFactor=2 did not switch past its threshold")
	}
}

func TestDecideStatic(t *testing.T) {
	p := AdaptivePolicy{}.WithDefaults()
	if m := p.DecideStatic(6, 100, ModeAlias); m != ModeITS {
		t.Fatalf("low degree: %v, want ITS", m)
	}
	if m := p.DecideStatic(9, 100, ModeITS); m != ModeAlias {
		t.Fatalf("high degree: %v, want alias", m)
	}
	if m := p.DecideStatic(6, 10, ModeAlias); m != ModeAlias {
		t.Fatalf("below MinSteps switched to %v", m)
	}
	disabled := AdaptivePolicy{ITSMaxDegree: -1}.WithDefaults()
	if m := disabled.DecideStatic(6, 100, ModeAlias); m != ModeAlias {
		t.Fatalf("disabled policy switched to %v", m)
	}
}

// TestSharedUniform: the cache must hand out one instance per n, sampling
// exactly like NewUniform (same stream consumption, same values).
func TestSharedUniform(t *testing.T) {
	if SharedUniform(5) != SharedUniform(5) {
		t.Fatal("SharedUniform(5) returned distinct instances")
	}
	if SharedUniform(5) == SharedUniform(6) {
		t.Fatal("distinct n shared an instance")
	}
	a, b := rng.NewStream(1, 2), rng.NewStream(1, 2)
	shared, fresh := SharedUniform(7), NewUniform(7)
	for i := 0; i < 1000; i++ {
		if x, y := shared.Sample(a), fresh.Sample(b); x != y {
			t.Fatalf("draw %d: shared %d, fresh %d", i, x, y)
		}
	}
	if shared.N() != 7 || shared.Total() != 7 || shared.WeightAt(3) != 1 {
		t.Fatal("shared uniform accessors wrong")
	}
}

// TestITSResetFloat64 pins the in-place rebuild against fresh construction:
// identical sampling sequence, reused backing.
func TestITSResetFloat64(t *testing.T) {
	var s ITS
	if err := s.ResetFloat64([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Rebuild with different weights in place.
	weights := []float64{4, 1, 0.5, 2}
	if err := s.ResetFloat64(weights); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewITSFromFloat64(weights)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rng.NewStream(3, 4), rng.NewStream(3, 4)
	for i := 0; i < 2000; i++ {
		if x, y := s.Sample(a), fresh.Sample(b); x != y {
			t.Fatalf("draw %d: reset %d, fresh %d", i, x, y)
		}
	}
	if s.N() != 4 || s.Total() != fresh.Total() {
		t.Fatalf("reset ITS accessors: N=%d Total=%v", s.N(), s.Total())
	}
	// Zero-alloc steady state: rebuilding with same-length weights reuses
	// the cdf backing.
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.ResetFloat64(weights); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ResetFloat64 allocates %.1f per rebuild, want 0", allocs)
	}
}

// TestRejectionReset pins the in-place dartboard initializer against
// NewRejection: identical proposals from identical streams.
func TestRejectionReset(t *testing.T) {
	static := NewUniform(6)
	apps := []Appendix{{WidthUB: 1, HeightUB: 0.5, Tag: 1}}
	var slab Rejection
	slab.Reset(static, 2.0, 0.5, apps)
	fresh := NewRejection(static, 2.0, 0.5, apps)
	a, b := rng.NewStream(5, 6), rng.NewStream(5, 6)
	for i := 0; i < 1000; i++ {
		pa, pb := slab.Propose(a), fresh.Propose(b)
		if pa != pb {
			t.Fatalf("draw %d: slab %+v, fresh %+v", i, pa, pb)
		}
	}
}
