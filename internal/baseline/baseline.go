// Package baseline implements the comparison system of the paper's
// evaluation: a "traditional graph engine" random walk in the style of the
// authors' Gemini adaptation (§7.1). Its distinguishing properties, which
// this package reproduces faithfully as a cost model:
//
//   - Dynamic walks recompute the transition probability of *every*
//     out-edge of the walker's current vertex at every step (the full scan
//     whose O(|Ev|) cost rejection sampling eliminates), then sample with
//     inverse transform sampling.
//
//   - Static walks use precomputed per-vertex ITS arrays or alias tables.
//
//   - Optional two-phase "mirror" sampling models Gemini's vertex
//     replication: a vertex's edges are split across MirrorNodes chunks;
//     sampling first picks a chunk by its weight sum, then an edge inside
//     the chunk — two binary searches instead of one.
//
// The package shares the walker/RNG discipline of the main engine, so
// baseline and KnightKing runs are sample-for-sample comparable.
package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knightking/internal/graph"
	"knightking/internal/rng"
	"knightking/internal/sampling"
	"knightking/internal/stats"
)

// DynamicFunc computes the dynamic component Pd for one edge with direct
// graph access. prev is valid when step > 0.
type DynamicFunc func(g *graph.Graph, prev, cur graph.VertexID, step, tag int32, e graph.Edge) float64

// Config describes one baseline run.
type Config struct {
	// Graph is the input graph.
	Graph *graph.Graph
	// NumWalkers defaults to |V|.
	NumWalkers int
	// Seed drives all randomness (same stream discipline as core).
	Seed uint64
	// MaxSteps ends each walk after this many moves (0 = unlimited).
	MaxSteps int
	// TerminationProb ends a walk before each move with this probability.
	TerminationProb float64
	// StartVertex defaults to id mod |V|.
	StartVertex func(id int64) graph.VertexID
	// RecordPaths keeps per-walker vertex sequences.
	RecordPaths bool
	// Biased selects Ps = edge weight.
	Biased bool
	// Dynamic, when set, makes the walk dynamic: every step performs a
	// full scan computing Pd for each out-edge (counted in EdgeProbEvals).
	Dynamic DynamicFunc
	// InitTag assigns algorithm state (e.g. a meta-path scheme index).
	InitTag func(id int64, r *rng.Rand) int32
	// MirrorNodes > 1 enables two-phase mirror sampling for static walks.
	MirrorNodes int
	// Workers runs walkers on this many goroutines (default 1; walker
	// results are independent, so parallelism never changes them).
	Workers int
	// Counters receives engine counters (optional).
	Counters *stats.Counters
}

// Result summarizes a baseline run.
type Result struct {
	Counters      stats.Snapshot
	Lengths       *stats.Histogram
	Paths         [][]graph.VertexID
	Duration      time.Duration
	SetupDuration time.Duration
}

// Run executes the baseline walk.
func Run(cfg Config) (*Result, error) {
	g := cfg.Graph
	if g == nil {
		return nil, fmt.Errorf("baseline: Config requires Graph")
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if cfg.MaxSteps == 0 && cfg.TerminationProb == 0 {
		return nil, fmt.Errorf("baseline: walk never terminates")
	}
	if cfg.MaxSteps < 0 || cfg.TerminationProb < 0 || cfg.TerminationProb > 1 {
		return nil, fmt.Errorf("baseline: invalid termination settings")
	}
	if cfg.Biased && !g.Weighted() {
		return nil, fmt.Errorf("baseline: biased walk on unweighted graph")
	}
	if cfg.NumWalkers <= 0 {
		cfg.NumWalkers = g.NumVertices()
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &stats.Counters{}
	}

	histSize := cfg.MaxSteps
	if histSize <= 0 {
		histSize = 4096
	}
	res := &Result{Lengths: stats.NewHistogram(histSize + 1)}
	if cfg.RecordPaths {
		res.Paths = make([][]graph.VertexID, cfg.NumWalkers)
	}

	// Static pre-computation (only meaningful for static walks; dynamic
	// walks cannot precompute, which is the whole point).
	setupStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	var static *staticTables
	if cfg.Dynamic == nil {
		static = buildStaticTables(g, cfg.Biased, cfg.MirrorNodes)
	}
	res.SetupDuration = time.Since(setupStart) //kk:nondet-ok telemetry-only timing; never feeds walk state

	walkStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	numV := int64(g.NumVertices())
	var nextID atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]float64, 0, 256)
			for {
				id := nextID.Add(1) - 1
				if id >= int64(cfg.NumWalkers) {
					return
				}
				var start graph.VertexID
				if cfg.StartVertex != nil {
					start = cfg.StartVertex(id)
				} else {
					start = graph.VertexID(id % numV)
				}
				r := rng.NewStream(cfg.Seed, uint64(id))
				var tag int32
				if cfg.InitTag != nil {
					tag = cfg.InitTag(id, r)
				}
				path, steps := walkOne(g, &cfg, static, counters, r, start, tag, &scratch)
				res.Lengths.Observe(steps)
				if cfg.RecordPaths {
					res.Paths[id] = path
				}
				counters.Terminations.Add(1)
			}
		}()
	}
	wg.Wait()
	res.Duration = time.Since(walkStart) //kk:nondet-ok telemetry-only timing; never feeds walk state
	res.Counters = counters.Snapshot()
	return res, nil
}

// walkOne runs a single walker to termination, returning its path (when
// recording; always including the start vertex) and the number of steps.
func walkOne(g *graph.Graph, cfg *Config, static *staticTables, counters *stats.Counters,
	r *rng.Rand, start graph.VertexID, tag int32, scratch *[]float64) ([]graph.VertexID, int64) {

	var path []graph.VertexID
	if cfg.RecordPaths {
		path = []graph.VertexID{start}
	}
	cur := start
	prev := graph.VertexID(0)
	for step := int32(0); ; step++ {
		if cfg.MaxSteps > 0 && int(step) >= cfg.MaxSteps {
			return path, int64(step)
		}
		if cfg.TerminationProb > 0 && r.Bernoulli(cfg.TerminationProb) {
			return path, int64(step)
		}
		deg := g.Degree(cur)
		if deg == 0 {
			return path, int64(step)
		}

		var idx int
		if cfg.Dynamic == nil {
			idx = static.sample(cur, r, counters)
		} else {
			// THE full scan: recompute every out-edge's probability.
			weights := (*scratch)[:0]
			total := 0.0
			for i := 0; i < deg; i++ {
				e := g.EdgeAt(cur, i)
				pd := cfg.Dynamic(g, prev, cur, step, tag, e)
				counters.EdgeProbEvals.Add(1)
				ps := 1.0
				if cfg.Biased {
					ps = float64(e.Weight)
				}
				weights = append(weights, ps*pd)
				total += ps * pd
			}
			*scratch = weights
			if total <= 0 {
				return path, int64(step)
			}
			its, err := sampling.NewITSFromFloat64(weights)
			if err != nil {
				panic(fmt.Sprintf("baseline: vertex %d: %v", cur, err))
			}
			counters.Trials.Add(1)
			idx = its.Sample(r)
		}

		dst := g.Neighbors(cur)[idx]
		prev, cur = cur, dst
		counters.Steps.Add(1)
		if cfg.RecordPaths {
			path = append(path, dst)
		}
	}
}

// staticTables holds precomputed per-vertex samplers. With mirrors > 1 the
// adjacency is split into contiguous chunks and sampling is two-phase.
type staticTables struct {
	samplers []sampling.StaticSampler // single-phase; nil entries for deg 0
	chunks   []*mirrorTable           // two-phase; nil when mirrors <= 1
	mirrors  int
}

type mirrorTable struct {
	chunkPick  *sampling.ITS            // over chunk weight sums
	perChunk   []sampling.StaticSampler // within-chunk samplers
	chunkStart []int                    // edge offset of each chunk
}

func buildStaticTables(g *graph.Graph, biased bool, mirrors int) *staticTables {
	n := g.NumVertices()
	t := &staticTables{mirrors: mirrors}
	if mirrors > 1 {
		t.chunks = make([]*mirrorTable, n)
	} else {
		t.samplers = make([]sampling.StaticSampler, n)
	}
	for v := 0; v < n; v++ {
		deg := g.Degree(graph.VertexID(v))
		if deg == 0 {
			continue
		}
		weights := make([]float32, deg)
		for i := range weights {
			if biased {
				weights[i] = g.EdgeWeight(graph.VertexID(v), i)
			} else {
				weights[i] = 1
			}
		}
		if mirrors <= 1 {
			its, err := sampling.NewITS(weights)
			if err != nil {
				panic(fmt.Sprintf("baseline: vertex %d: %v", v, err))
			}
			t.samplers[v] = its
			continue
		}
		m := mirrors
		if m > deg {
			m = deg
		}
		mt := &mirrorTable{
			perChunk:   make([]sampling.StaticSampler, m),
			chunkStart: make([]int, m+1),
		}
		sums := make([]float64, m)
		for c := 0; c < m; c++ {
			lo := c * deg / m
			hi := (c + 1) * deg / m
			mt.chunkStart[c] = lo
			its, err := sampling.NewITS(weights[lo:hi])
			if err != nil {
				panic(fmt.Sprintf("baseline: vertex %d chunk %d: %v", v, c, err))
			}
			mt.perChunk[c] = its
			sums[c] = its.Total()
		}
		mt.chunkStart[m] = deg
		pick, err := sampling.NewITSFromFloat64(sums)
		if err != nil {
			panic(fmt.Sprintf("baseline: vertex %d chunk sums: %v", v, err))
		}
		mt.chunkPick = pick
		t.chunks[v] = mt
	}
	return t
}

// sample draws an edge index at v using the precomputed tables.
func (t *staticTables) sample(v graph.VertexID, r *rng.Rand, counters *stats.Counters) int {
	counters.Trials.Add(1)
	if t.mirrors <= 1 {
		return t.samplers[v].Sample(r)
	}
	mt := t.chunks[v]
	c := mt.chunkPick.Sample(r)
	return mt.chunkStart[c] + mt.perChunk[c].Sample(r)
}

// Node2VecDynamic returns the DynamicFunc for node2vec, evaluating d_tx by
// direct adjacency lookup — exactly what an exact implementation on a
// traditional engine must do for every out-edge, every step.
func Node2VecDynamic(p, q float64) DynamicFunc {
	invP, invQ := 1/p, 1/q
	return func(g *graph.Graph, prev, cur graph.VertexID, step, tag int32, e graph.Edge) float64 {
		if step == 0 {
			return 1
		}
		if e.Dst == prev {
			return invP
		}
		if g.HasEdge(prev, e.Dst) {
			return 1
		}
		return invQ
	}
}

// MetaPathDynamic returns the DynamicFunc for meta-path walks.
func MetaPathDynamic(schemes [][]int32) DynamicFunc {
	return func(g *graph.Graph, prev, cur graph.VertexID, step, tag int32, e graph.Edge) float64 {
		s := schemes[tag]
		if e.Type == s[int(step)%len(s)] {
			return 1
		}
		return 0
	}
}
