package baseline

import (
	"fmt"

	"knightking/internal/graph"
)

// BFSResult reports a level-synchronous BFS run.
type BFSResult struct {
	// FrontierSizes[i] is the number of active vertices in iteration i.
	FrontierSizes []int64
	// Visited is the number of reachable vertices (including the source).
	Visited int64
	// Iterations is the number of BFS levels processed.
	Iterations int
}

// BFS runs level-synchronous breadth-first search from src. It exists for
// the paper's Figure 5: BFS's active set grows and shrinks quickly (about
// a dozen iterations on social graphs), while random walks exhibit a long,
// thin tail of active walkers — the straggler pattern light mode targets.
func BFS(g *graph.Graph, src graph.VertexID) (*BFSResult, error) {
	if int(src) >= g.NumVertices() {
		return nil, fmt.Errorf("baseline: BFS source %d out of range", src)
	}
	visited := make([]bool, g.NumVertices())
	visited[src] = true
	frontier := []graph.VertexID{src}
	res := &BFSResult{Visited: 1}
	for len(frontier) > 0 {
		res.FrontierSizes = append(res.FrontierSizes, int64(len(frontier)))
		res.Iterations++
		var next []graph.VertexID
		for _, v := range frontier {
			for _, nb := range g.Neighbors(v) {
				if !visited[nb] {
					visited[nb] = true
					next = append(next, nb)
					res.Visited++
				}
			}
		}
		frontier = next
	}
	return res, nil
}
