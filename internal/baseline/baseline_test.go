package baseline

import (
	"math"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/rng"
)

func TestRunValidation(t *testing.T) {
	g := gen.Ring(5, 0)
	cases := []Config{
		{},                                    // no graph
		{Graph: g},                            // never terminates
		{Graph: g, MaxSteps: 1, Biased: true}, // biased, unweighted
		{Graph: g, MaxSteps: -1},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStaticWalkCountsNoEvals(t *testing.T) {
	g := gen.UniformDegree(100, 6, 1)
	res, err := Run(Config{Graph: g, MaxSteps: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.EdgeProbEvals != 0 {
		t.Fatalf("static walk evaluated %d probabilities", res.Counters.EdgeProbEvals)
	}
	if res.Counters.Steps != int64(g.NumVertices())*10 {
		t.Fatalf("Steps = %d", res.Counters.Steps)
	}
}

func TestStaticBiasedDistribution(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(0, 2, 4)
	g := b.Build()
	const walkers = 50000
	res, err := Run(Config{
		Graph: g, MaxSteps: 1, Seed: 2, Biased: true, NumWalkers: walkers,
		StartVertex: func(int64) graph.VertexID { return 0 },
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy := 0
	for _, p := range res.Paths {
		if len(p) == 2 && p[1] == 2 {
			heavy++
		}
	}
	got := float64(heavy) / walkers
	if math.Abs(got-0.8) > 0.01 {
		t.Fatalf("heavy edge frequency %v, want 0.8", got)
	}
}

func TestTwoPhaseMirrorSamplingMatchesSinglePhase(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(50, 20, 3), 1, 5, 4)
	freq := func(mirrors int, seed uint64) map[graph.VertexID]float64 {
		res, err := Run(Config{
			Graph: g, MaxSteps: 1, Seed: seed, Biased: true,
			NumWalkers:  80000,
			StartVertex: func(int64) graph.VertexID { return 0 },
			RecordPaths: true, MirrorNodes: mirrors,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[graph.VertexID]float64)
		for _, p := range res.Paths {
			out[p[1]]++
		}
		for k := range out {
			out[k] /= float64(len(res.Paths))
		}
		return out
	}
	single := freq(1, 5)
	two := freq(8, 6)
	for v, a := range single {
		if math.Abs(a-two[v]) > 0.012 {
			t.Fatalf("mirror sampling biased at %d: %v vs %v", v, a, two[v])
		}
	}
}

func TestDynamicFullScanCountsDegreePerStep(t *testing.T) {
	const deg = 12
	g := gen.UniformDegree(200, deg, 7)
	res, err := Run(Config{
		Graph: g, MaxSteps: 5, Seed: 3,
		Dynamic: func(g *graph.Graph, prev, cur graph.VertexID, step, tag int32, e graph.Edge) float64 {
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	perStep := res.Counters.EdgesPerStep()
	// Full scan computes exactly deg probabilities per step; configuration-
	// model dedup can shave a little off the nominal degree.
	if perStep < deg-1 || perStep > deg+0.5 {
		t.Fatalf("edges/step = %v, want ~%d", perStep, deg)
	}
}

func TestNode2VecDynamicValues(t *testing.T) {
	// Triangle plus a pendant: from cur=1 with prev=0, edge back to 0 is
	// the return edge, edge to 2 closes the triangle (d=1), edge to 3 is
	// d=2.
	b := graph.NewBuilder(4).SetUndirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	g := b.Build()
	f := Node2VecDynamic(2, 0.5)
	cases := []struct {
		dst  graph.VertexID
		want float64
	}{
		{0, 0.5}, // return: 1/p
		{2, 1},   // triangle: d=1
		{3, 2},   // 1/q
	}
	for _, c := range cases {
		got := f(g, 0, 1, 1, 0, graph.Edge{Dst: c.dst, Weight: 1})
		if got != c.want {
			t.Fatalf("Pd(dst=%d) = %v, want %v", c.dst, got, c.want)
		}
	}
	if got := f(g, 0, 1, 0, 0, graph.Edge{Dst: 3}); got != 1 {
		t.Fatalf("step-0 Pd = %v, want 1", got)
	}
}

func TestMetaPathDynamicDeadEnd(t *testing.T) {
	g := gen.WithTypes(gen.UniformDegree(40, 6, 9), 2, 10)
	res, err := Run(Config{
		Graph: g, MaxSteps: 5, Seed: 4,
		Dynamic: MetaPathDynamic([][]int32{{9}}), // impossible type
		InitTag: func(int64, *rng.Rand) int32 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps != 0 {
		t.Fatalf("impossible scheme took %d steps", res.Counters.Steps)
	}
}

func TestMetaPathDynamicFollowsScheme(t *testing.T) {
	g := gen.WithTypes(gen.UniformDegree(150, 10, 9), 3, 10)
	schemes := [][]int32{{0, 1}, {2}}
	res, err := Run(Config{
		Graph: g, MaxSteps: 6, Seed: 8,
		Dynamic:     MetaPathDynamic(schemes),
		InitTag:     func(id int64, r *rng.Rand) int32 { return int32(r.Uint64n(uint64(len(schemes)))) },
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range res.Paths {
		if len(p) < 2 {
			continue
		}
		firstType := edgeType(t, g, p[0], p[1])
		var scheme []int32
		for _, s := range schemes {
			if s[0] == firstType {
				scheme = s
			}
		}
		if scheme == nil {
			t.Fatalf("first edge type %d matches no scheme", firstType)
		}
		for k := 1; k < len(p); k++ {
			if got := edgeType(t, g, p[k-1], p[k]); got != scheme[(k-1)%len(scheme)] {
				t.Fatalf("step %d type %d violates scheme %v", k, got, scheme)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d steps checked", checked)
	}
}

func edgeType(t *testing.T, g *graph.Graph, u, v graph.VertexID) int32 {
	t.Helper()
	for i, nb := range g.Neighbors(u) {
		if nb == v {
			return g.Types(u)[i]
		}
	}
	t.Fatalf("edge %d->%d missing", u, v)
	return -1
}

func TestDynamicWalkTerminatesOnZeroMass(t *testing.T) {
	g := gen.UniformDegree(30, 6, 11)
	res, err := Run(Config{
		Graph: g, MaxSteps: 5, Seed: 5,
		Dynamic: func(*graph.Graph, graph.VertexID, graph.VertexID, int32, int32, graph.Edge) float64 {
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps != 0 {
		t.Fatalf("zero-mass walk took %d steps", res.Counters.Steps)
	}
}

func TestTerminationProbMean(t *testing.T) {
	g := gen.UniformDegree(80, 6, 13)
	res, err := Run(Config{Graph: g, TerminationProb: 0.2, NumWalkers: 20000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Lengths.Mean(); math.Abs(m-4) > 0.3 {
		t.Fatalf("mean length %v, want ~4", m)
	}
}

func TestBFSOnRing(t *testing.T) {
	g := gen.Ring(10, 0)
	res, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 10 {
		t.Fatalf("visited %d of 10", res.Visited)
	}
	// Ring BFS: frontier sizes 1,2,2,2,2,1.
	want := []int64{1, 2, 2, 2, 2, 1}
	if len(res.FrontierSizes) != len(want) {
		t.Fatalf("frontiers %v", res.FrontierSizes)
	}
	for i, w := range want {
		if res.FrontierSizes[i] != w {
			t.Fatalf("frontiers %v, want %v", res.FrontierSizes, want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(5).SetUndirected(true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	res, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 2 {
		t.Fatalf("visited %d, want 2", res.Visited)
	}
}

func TestBFSBadSource(t *testing.T) {
	g := gen.Ring(5, 0)
	if _, err := BFS(g, 99); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestBFSShortTailVsWalkLongTail(t *testing.T) {
	// The Figure 5 claim in miniature: BFS finishes in a handful of
	// iterations while a termination-probability walk has a much longer
	// active tail.
	g := gen.TruncatedPowerLaw(3000, 3, 100, 2.0, 15)
	bfs, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := Run(Config{Graph: g, TerminationProb: 1.0 / 20, MaxSteps: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if int64(bfs.Iterations) >= walk.Lengths.Max() {
		t.Fatalf("BFS iterations %d not shorter than walk tail %d",
			bfs.Iterations, walk.Lengths.Max())
	}
}
