// Package rng provides fast, seedable pseudo-random number generators used
// throughout the engine. All randomized components in the repository draw
// from this package so that an entire run is reproducible from a single
// 64-bit seed.
//
// The core generator is xoshiro256**, seeded through splitmix64 as its
// authors recommend. It is not safe for concurrent use; the engine gives
// each worker its own stream via NewStream, which derives statistically
// independent generators from a base seed.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is used for seeding and for deriving streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New or NewStream.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Distinct seeds give
// uncorrelated sequences.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewStream returns the id-th derived generator of a family identified by
// seed. Streams with different ids are statistically independent, which
// lets many workers share one logical seed without sharing state.
func NewStream(seed uint64, id uint64) *Rand {
	r := Stream(seed, id)
	return &r
}

// Stream is NewStream by value: the same derived generator without the
// heap allocation, for callers that embed the generator in a larger
// structure (e.g. pooled walker arenas).
func Stream(seed uint64, id uint64) Rand {
	mix := seed
	_ = splitmix64(&mix)
	mix ^= (id + 1) * 0x9e3779b97f4a7c15
	var r Rand
	r.Seed(splitmix64(&mix))
	return r
}

// Seed resets the generator state from a single 64-bit seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with an all-zero state; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// State exposes the raw generator state, letting callers serialize a
// generator (e.g. a walker migrating between nodes) and resume it exactly.
func (r *Rand) State() *[4]uint64 { return &r.s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's nearly
// divisionless method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// 128-bit multiply-high rejection method.
	for {
		x := r.Uint64()
		hi, lo := mul64(x, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Rand) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with rate lambda.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp requires lambda > 0")
	}
	return -math.Log(1-r.Float64()) / lambda
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// PowerLaw returns an integer degree sampled from a truncated discrete
// power-law distribution with density proportional to k^(-alpha) on
// [min, max]. It uses inverse transform sampling on the continuous
// approximation, which is accurate enough for workload generation.
func (r *Rand) PowerLaw(min, max int, alpha float64) int {
	if min < 1 || max < min {
		panic("rng: PowerLaw requires 1 <= min <= max")
	}
	if min == max {
		return min
	}
	if alpha == 1 {
		// p(k) ~ 1/k; CDF ~ log.
		lo, hi := float64(min), float64(max)+1
		x := math.Exp(r.Range(math.Log(lo), math.Log(hi)))
		k := int(x)
		if k > max {
			k = max
		}
		return k
	}
	a := 1 - alpha
	lo := math.Pow(float64(min), a)
	hi := math.Pow(float64(max)+1, a)
	x := math.Pow(lo+(hi-lo)*r.Float64(), 1/a)
	k := int(x)
	if k < min {
		k = min
	}
	if k > max {
		k = max
	}
	return k
}

// Zipf samples from {0,...,n-1} with probability proportional to
// 1/(i+1)^s using a precomputed sampler. For one-off use; hot paths should
// build a sampling.Alias table instead.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n items with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf requires n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed value.
func (z *Zipf) Next() int {
	x := z.r.Float64()
	lo, hi := 0, len(z.cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(z.cdf) {
		lo = len(z.cdf) - 1
	}
	return lo
}
