package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d identical values out of 1000", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 produced %d identical values out of 1000", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(99, 5)
	b := NewStream(99, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, id) streams diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates too far from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Range(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Range(2.5, 7.5) = %v out of range", v)
		}
	}
	if v := r.Range(3, 3); v != 3 {
		t.Fatalf("Range(3,3) = %v, want 3", v)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(8)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", p)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(11)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestPowerLawBounds(t *testing.T) {
	r := New(12)
	for i := 0; i < 50000; i++ {
		k := r.PowerLaw(3, 300, 2.1)
		if k < 3 || k > 300 {
			t.Fatalf("PowerLaw out of bounds: %d", k)
		}
	}
}

func TestPowerLawDegenerate(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if k := r.PowerLaw(5, 5, 2); k != 5 {
			t.Fatalf("PowerLaw(5,5) = %d, want 5", k)
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	// With alpha > 1 the mass concentrates near min: the median must be far
	// below the midpoint of the range.
	r := New(14)
	const n = 20000
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.PowerLaw(1, 1000, 2.0)
	}
	below := 0
	for _, v := range vals {
		if v <= 3 {
			below++
		}
	}
	if float64(below)/n < 0.5 {
		t.Fatalf("power law with alpha=2 not skewed: only %d/%d values <= 3", below, n)
	}
}

func TestPowerLawAlphaOne(t *testing.T) {
	r := New(15)
	for i := 0; i < 50000; i++ {
		k := r.PowerLaw(2, 200, 1.0)
		if k < 2 || k > 200 {
			t.Fatalf("PowerLaw(alpha=1) out of bounds: %d", k)
		}
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of bounds: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestUint64nQuick(t *testing.T) {
	r := New(17)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedZeroUsable(t *testing.T) {
	r := New(0)
	a := r.Uint64()
	b := r.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
