// Package gen builds the synthetic graphs used by the evaluation. The
// paper's topology-sensitivity study (§7.3) uses exactly these families:
// uniform-degree graphs, truncated power-law graphs, and uniform graphs
// with injected hotspots. The package also provides R-MAT and Erdős–Rényi
// generators, small deterministic fixtures, and weight/type assigners for
// the biased and meta-path experiments.
//
// All generators are deterministic functions of their seed.
package gen

import (
	"fmt"
	"math"

	"knightking/internal/graph"
	"knightking/internal/rng"
)

// UniformDegree returns an undirected graph on n vertices where every
// vertex has degree (approximately, exactly when n*d is even and no
// self-pairings occur) d, built with the configuration model: each vertex
// contributes d stubs, stubs are shuffled and paired. Self-loops are
// dropped, so realized degrees can be slightly below d.
func UniformDegree(n, d int, seed uint64) *graph.Graph {
	if n <= 0 || d < 0 {
		panic(fmt.Sprintf("gen: UniformDegree(%d, %d) invalid", n, d))
	}
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = d
	}
	return configurationModel(degrees, seed)
}

// TruncatedPowerLaw returns an undirected graph whose degree sequence
// follows a power law with the given exponent on [minDeg, cap]. Increasing
// cap with fixed exponent raises skew much faster than it raises the mean,
// which is the knob Figure 6b sweeps.
func TruncatedPowerLaw(n, minDeg, cap int, alpha float64, seed uint64) *graph.Graph {
	if n <= 0 || minDeg < 1 || cap < minDeg {
		panic(fmt.Sprintf("gen: TruncatedPowerLaw(%d, %d, %d) invalid", n, minDeg, cap))
	}
	r := rng.New(seed)
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = r.PowerLaw(minDeg, cap, alpha)
	}
	return configurationModel(degrees, seed+1)
}

// Hotspot returns a uniform-degree graph with numHot extra high-degree
// vertices appended, each connected (undirected) to hotDegree uniformly
// random base vertices. This isolates the hotspot effect of Figure 6c: a
// few ultra-popular vertices in an otherwise regular graph.
func Hotspot(n, d, numHot, hotDegree int, seed uint64) *graph.Graph {
	if n <= 0 || numHot < 0 || hotDegree < 0 {
		panic("gen: Hotspot invalid arguments")
	}
	total := n + numHot
	degrees := make([]int, total)
	for i := 0; i < n; i++ {
		degrees[i] = d
	}
	base := configurationModelEdges(degrees[:n], seed)
	b := graph.NewBuilder(total).SetUndirected(true).SetDedup(true)
	for _, e := range base {
		b.AddEdge(e[0], e[1])
	}
	if hotDegree > n {
		panic("gen: Hotspot hotDegree exceeds base vertex count")
	}
	r := rng.New(seed ^ 0x4057) // distinct stream for hub wiring
	seen := make(map[graph.VertexID]bool, hotDegree)
	for h := 0; h < numHot; h++ {
		hub := graph.VertexID(n + h)
		clear(seen)
		for len(seen) < hotDegree {
			tgt := graph.VertexID(r.Intn(n))
			if seen[tgt] {
				continue
			}
			seen[tgt] = true
			b.AddEdge(hub, tgt)
		}
	}
	return b.Build()
}

// ErdosRenyi returns an undirected G(n, m) graph with m uniformly random
// edges (self-loops excluded, parallel edges possible).
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	if n <= 1 || m < 0 {
		panic("gen: ErdosRenyi invalid arguments")
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n).SetUndirected(true).SetDedup(true)
	for i := 0; i < m; i++ {
		u := graph.VertexID(r.Intn(n))
		v := graph.VertexID(r.Intn(n))
		for u == v {
			v = graph.VertexID(r.Intn(n))
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// RMAT returns an undirected R-MAT graph with 2^scale vertices and
// edgeFactor*2^scale edges, using the standard (a, b, c, d) quadrant
// probabilities. R-MAT graphs have the heavy-tailed degree distribution
// and community structure of real social networks, which makes them the
// stand-ins for Twitter/Friendster-like inputs in the benchmarks.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed uint64) *graph.Graph {
	if scale < 1 || scale > 30 || edgeFactor < 1 {
		panic("gen: RMAT invalid arguments")
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		panic("gen: RMAT probabilities must be non-negative and sum <= 1")
	}
	n := 1 << scale
	m := edgeFactor * n
	r := rng.New(seed)
	bld := graph.NewBuilder(n).SetUndirected(true).SetDedup(true)
	for i := 0; i < m; i++ {
		u, v := rmatEdge(r, scale, a, b, c)
		if u == v {
			continue
		}
		bld.AddEdge(u, v)
	}
	return bld.Build()
}

func rmatEdge(r *rng.Rand, scale int, a, b, c float64) (graph.VertexID, graph.VertexID) {
	var u, v uint32
	for bit := 0; bit < scale; bit++ {
		x := r.Float64()
		switch {
		case x < a:
			// top-left quadrant: no bits set
		case x < a+b:
			v |= 1 << bit
		case x < a+b+c:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}

// Ring returns the undirected cycle on n vertices.
func Ring(n int, _ uint64) *graph.Graph {
	if n < 3 {
		panic("gen: Ring requires n >= 3")
	}
	b := graph.NewBuilder(n).SetUndirected(true).SetDedup(true)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	return b.Build()
}

// Complete returns the undirected complete graph on n vertices.
func Complete(n int) *graph.Graph {
	if n < 1 {
		panic("gen: Complete requires n >= 1")
	}
	b := graph.NewBuilder(n).SetUndirected(true).SetDedup(true)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.Build()
}

// Star returns the undirected star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	if n < 2 {
		panic("gen: Star requires n >= 2")
	}
	b := graph.NewBuilder(n).SetUndirected(true).SetDedup(true)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.VertexID(i))
	}
	return b.Build()
}

// configurationModel pairs stubs uniformly at random and returns the
// resulting undirected simple-ish multigraph (self-pairings dropped).
func configurationModel(degrees []int, seed uint64) *graph.Graph {
	edges := configurationModelEdges(degrees, seed)
	b := graph.NewBuilder(len(degrees)).SetUndirected(true).SetDedup(true)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func configurationModelEdges(degrees []int, seed uint64) [][2]graph.VertexID {
	total := 0
	for _, d := range degrees {
		total += d
	}
	stubs := make([]graph.VertexID, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.VertexID(v))
		}
	}
	r := rng.New(seed)
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	edges := make([][2]graph.VertexID, 0, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue // drop self-pairings
		}
		edges = append(edges, [2]graph.VertexID{u, v})
	}
	return edges
}

// WithUniformWeights returns a copy of g where every undirected edge gets a
// weight drawn uniformly from [lo, hi). Weights are symmetric: the two
// stored directions of an undirected edge receive the same weight (derived
// from a hash of the unordered endpoint pair), matching the paper's
// "assigning edge weight as a real number randomly sampled from [1, 5)".
func WithUniformWeights(g *graph.Graph, lo, hi float32, seed uint64) *graph.Graph {
	return reweight(g, func(u, v graph.VertexID) float32 {
		return lo + (hi-lo)*pairUnitFloat(u, v, seed)
	})
}

// WithPowerLawWeights returns a copy of g with symmetric edge weights
// following a power-law distribution on [1, maxW]: most edges light, a few
// heavy. Figure 8 sweeps maxW under both uniform and power-law assignment.
func WithPowerLawWeights(g *graph.Graph, maxW float32, alpha float64, seed uint64) *graph.Graph {
	return reweight(g, func(u, v graph.VertexID) float32 {
		x := pairUnitFloat(u, v, seed)
		// Inverse-transform of p(w) ~ w^-alpha on [1, maxW].
		a := 1 - alpha
		loP, hiP := 1.0, math.Pow(float64(maxW), a)
		w := math.Pow(loP+(hiP-loP)*float64(x), 1/a)
		if w < 1 {
			w = 1
		}
		if w > float64(maxW) {
			w = float64(maxW)
		}
		return float32(w)
	})
}

// WithTypes returns a copy of g where every undirected edge is assigned a
// symmetric type in [0, numTypes), for meta-path workloads.
func WithTypes(g *graph.Graph, numTypes int, seed uint64) *graph.Graph {
	if numTypes <= 0 {
		panic("gen: WithTypes requires numTypes > 0")
	}
	n := g.NumVertices()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		src := graph.VertexID(v)
		deg := g.Degree(src)
		for i := 0; i < deg; i++ {
			e := g.EdgeAt(src, i)
			typ := int32(pairHash(src, e.Dst, seed) % uint64(numTypes))
			b.AddTypedEdge(src, e.Dst, e.Weight, typ)
		}
	}
	return b.Build()
}

func reweight(g *graph.Graph, weightOf func(u, v graph.VertexID) float32) *graph.Graph {
	n := g.NumVertices()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		src := graph.VertexID(v)
		deg := g.Degree(src)
		for i := 0; i < deg; i++ {
			e := g.EdgeAt(src, i)
			b.AddWeightedEdge(src, e.Dst, weightOf(src, e.Dst))
		}
	}
	return b.Build()
}

// pairHash hashes the unordered pair {u, v} with the seed, so both stored
// directions of an undirected edge map to the same value.
func pairHash(u, v graph.VertexID, seed uint64) uint64 {
	a, b := uint64(u), uint64(v)
	if a > b {
		a, b = b, a
	}
	x := seed ^ (a*0x9e3779b97f4a7c15 + b)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func pairUnitFloat(u, v graph.VertexID, seed uint64) float32 {
	return float32(pairHash(u, v, seed)>>11) / float32(uint64(1)<<53)
}

// PlantedPartition returns a stochastic block model graph: communities
// dense inside (inDegree intra-community edges per vertex) and sparse
// across (outDegree inter-community edges per vertex). Community i owns
// vertices [i*perComm, (i+1)*perComm). Used by embedding-quality
// evaluations, where walks must recover the planted structure.
func PlantedPartition(communities, perComm, inDegree, outDegree int, seed uint64) *graph.Graph {
	if communities < 1 || perComm < 2 || inDegree < 0 || outDegree < 0 {
		panic("gen: PlantedPartition invalid arguments")
	}
	r := rng.New(seed)
	n := communities * perComm
	b := graph.NewBuilder(n).SetUndirected(true).SetDedup(true)
	for v := 0; v < n; v++ {
		comm := v / perComm
		for k := 0; k < inDegree; k++ {
			u := comm*perComm + r.Intn(perComm)
			if u != v {
				b.AddEdge(graph.VertexID(v), graph.VertexID(u))
			}
		}
		for k := 0; k < outDegree; k++ {
			u := r.Intn(n)
			if u/perComm != comm {
				b.AddEdge(graph.VertexID(v), graph.VertexID(u))
			}
		}
	}
	return b.Build()
}
