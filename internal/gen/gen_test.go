package gen

import (
	"math"
	"testing"

	"knightking/internal/graph"
)

func TestUniformDegreeShape(t *testing.T) {
	g := UniformDegree(1000, 10, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	s := g.Stats()
	if math.Abs(s.Mean-10) > 0.5 {
		t.Fatalf("mean degree = %v, want ~10", s.Mean)
	}
	// Uniform-degree graphs have tiny variance compared to the mean.
	if s.Variance > 2 {
		t.Fatalf("variance = %v, want near 0", s.Variance)
	}
}

func TestUniformDegreeDeterministic(t *testing.T) {
	a := UniformDegree(200, 6, 42)
	b := UniformDegree(200, 6, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(graph.VertexID(v)), b.Neighbors(graph.VertexID(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
	c := UniformDegree(200, 6, 43)
	if c.NumEdges() == a.NumEdges() {
		// Edge counts can coincide; compare adjacency of vertex 0 too.
		same := true
		na, nc := a.Neighbors(0), c.Neighbors(0)
		if len(na) == len(nc) {
			for i := range na {
				if na[i] != nc[i] {
					same = false
					break
				}
			}
		} else {
			same = false
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestUniformDegreeSymmetric(t *testing.T) {
	g := UniformDegree(300, 8, 3)
	assertSymmetric(t, g)
}

func TestTruncatedPowerLawSkewGrowsWithCap(t *testing.T) {
	low := TruncatedPowerLaw(5000, 5, 100, 2.0, 7)
	high := TruncatedPowerLaw(5000, 5, 6400, 2.0, 7)
	sLow, sHigh := low.Stats(), high.Stats()
	if sHigh.Variance <= sLow.Variance {
		t.Fatalf("variance did not grow with cap: %v vs %v", sLow.Variance, sHigh.Variance)
	}
	// The paper's point: variance grows far faster than the mean.
	meanRatio := sHigh.Mean / sLow.Mean
	varRatio := sHigh.Variance / sLow.Variance
	if varRatio < 2*meanRatio {
		t.Fatalf("variance ratio %v not >> mean ratio %v", varRatio, meanRatio)
	}
	if err := high.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotDegrees(t *testing.T) {
	const n, d, hot, hotDeg = 2000, 10, 3, 500
	g := Hotspot(n, d, hot, hotDeg, 5)
	if g.NumVertices() != n+hot {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	for h := 0; h < hot; h++ {
		hub := graph.VertexID(n + h)
		if got := g.Degree(hub); got != hotDeg {
			t.Fatalf("hub %d degree = %d, want %d", h, got, hotDeg)
		}
	}
	// Base vertices keep roughly their uniform degree plus a few hub edges.
	sum := 0
	for v := 0; v < n; v++ {
		sum += g.Degree(graph.VertexID(v))
	}
	mean := float64(sum) / n
	want := float64(d) + float64(hot*hotDeg)/float64(n)
	if math.Abs(mean-want) > 1 {
		t.Fatalf("base mean degree = %v, want ~%v", mean, want)
	}
	assertSymmetric(t, g)
}

func TestHotspotZeroHubsMatchesUniform(t *testing.T) {
	g := Hotspot(500, 8, 0, 0, 9)
	if g.NumVertices() != 500 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	s := g.Stats()
	if math.Abs(s.Mean-8) > 0.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 11)
	// Each of the 5000 draws is stored twice, minus deduplicated repeats.
	if g.NumEdges() > 10000 || g.NumEdges() < 9500 {
		t.Fatalf("|E| = %d, want ~10000 (doubled, deduped)", g.NumEdges())
	}
	assertSimple(t, g)
	for v := 0; v < g.NumVertices(); v++ {
		for _, nb := range g.Neighbors(graph.VertexID(v)) {
			if nb == graph.VertexID(v) {
				t.Fatal("self loop present")
			}
		}
	}
	assertSymmetric(t, g)
}

func TestRMATShape(t *testing.T) {
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 13)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4096 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	s := g.Stats()
	// R-MAT should be heavy-tailed: max degree far above the mean.
	if float64(s.Max) < 5*s.Mean {
		t.Fatalf("R-MAT not skewed: max %d vs mean %v", s.Max, s.Mean)
	}
	assertSymmetric(t, g)
}

func TestFixtures(t *testing.T) {
	ring := Ring(10, 0)
	if ring.NumEdges() != 20 {
		t.Fatalf("ring |E| = %d", ring.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if ring.Degree(graph.VertexID(v)) != 2 {
			t.Fatalf("ring degree of %d = %d", v, ring.Degree(graph.VertexID(v)))
		}
	}
	k := Complete(6)
	if k.NumEdges() != 30 {
		t.Fatalf("K6 |E| = %d", k.NumEdges())
	}
	star := Star(7)
	if star.Degree(0) != 6 {
		t.Fatalf("star center degree = %d", star.Degree(0))
	}
	for v := 1; v < 7; v++ {
		if star.Degree(graph.VertexID(v)) != 1 {
			t.Fatalf("star leaf degree = %d", star.Degree(graph.VertexID(v)))
		}
	}
}

func TestWithUniformWeightsRangeAndSymmetry(t *testing.T) {
	g := WithUniformWeights(UniformDegree(500, 10, 17), 1, 5, 99)
	if !g.Weighted() {
		t.Fatal("graph not weighted")
	}
	for v := 0; v < g.NumVertices(); v++ {
		src := graph.VertexID(v)
		for i := 0; i < g.Degree(src); i++ {
			e := g.EdgeAt(src, i)
			if e.Weight < 1 || e.Weight >= 5 {
				t.Fatalf("weight %v out of [1,5)", e.Weight)
			}
			// Symmetric: reverse edge has the same weight.
			back := findEdgeWeight(g, e.Dst, src)
			if back != e.Weight {
				t.Fatalf("asymmetric weight %d-%d: %v vs %v", src, e.Dst, e.Weight, back)
			}
		}
	}
}

func TestWithPowerLawWeightsSkew(t *testing.T) {
	g := WithPowerLawWeights(UniformDegree(2000, 10, 19), 100, 2.0, 7)
	light, heavy := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Weights(graph.VertexID(v)) {
			if w < 1 || w > 100 {
				t.Fatalf("weight %v out of [1,100]", w)
			}
			if w < 2 {
				light++
			}
			if w > 50 {
				heavy++
			}
		}
	}
	if light < heavy*5 {
		t.Fatalf("power-law weights not skewed: %d light vs %d heavy", light, heavy)
	}
	if heavy == 0 {
		t.Fatal("no heavy edges at all; tail missing")
	}
}

func TestWithTypes(t *testing.T) {
	const numTypes = 5
	g := WithTypes(UniformDegree(300, 8, 23), numTypes, 31)
	if !g.Typed() {
		t.Fatal("graph not typed")
	}
	seen := make(map[int32]bool)
	for v := 0; v < g.NumVertices(); v++ {
		src := graph.VertexID(v)
		for i, typ := range g.Types(src) {
			if typ < 0 || typ >= numTypes {
				t.Fatalf("type %d out of range", typ)
			}
			seen[typ] = true
			// Symmetric type on the reverse direction.
			dst := g.Neighbors(src)[i]
			if back := findEdgeType(g, dst, src); back != typ {
				t.Fatalf("asymmetric type on %d-%d", src, dst)
			}
		}
	}
	if len(seen) != numTypes {
		t.Fatalf("only %d of %d types used", len(seen), numTypes)
	}
}

func TestGeneratorsProduceValidGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"uniform":  UniformDegree(100, 4, 1),
		"powerlaw": TruncatedPowerLaw(100, 2, 50, 2.1, 2),
		"hotspot":  Hotspot(100, 4, 2, 30, 3),
		"er":       ErdosRenyi(100, 300, 4),
		"rmat":     RMAT(7, 4, 0.57, 0.19, 0.19, 5),
		"ring":     Ring(8, 0),
		"complete": Complete(5),
		"star":     Star(9),
	}
	for name, g := range cases {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// assertSimple checks that no vertex has two edges to the same destination.
func assertSimple(t *testing.T, g *graph.Graph) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(graph.VertexID(v))
		for i := 1; i < len(adj); i++ {
			if adj[i-1] == adj[i] {
				t.Fatalf("parallel edge %d->%d survived dedup", v, adj[i])
			}
		}
	}
}

// assertSymmetric checks that every stored edge has its reverse stored too.
func assertSymmetric(t *testing.T, g *graph.Graph) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		src := graph.VertexID(v)
		for _, dst := range g.Neighbors(src) {
			if !g.HasEdge(dst, src) {
				t.Fatalf("edge %d->%d has no reverse", src, dst)
			}
		}
	}
}

func findEdgeWeight(g *graph.Graph, u, v graph.VertexID) float32 {
	adj := g.Neighbors(u)
	for i, nb := range adj {
		if nb == v {
			return g.Weights(u)[i]
		}
	}
	return -1
}

func findEdgeType(g *graph.Graph, u, v graph.VertexID) int32 {
	adj := g.Neighbors(u)
	for i, nb := range adj {
		if nb == v {
			return g.Types(u)[i]
		}
	}
	return -1
}

func TestPlantedPartitionStructure(t *testing.T) {
	const communities, perComm = 4, 30
	g := PlantedPartition(communities, perComm, 6, 1, 27)
	if g.NumVertices() != communities*perComm {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSymmetric(t, g)
	intra, inter := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, nb := range g.Neighbors(graph.VertexID(v)) {
			if int(nb)/perComm == v/perComm {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra < 3*inter {
		t.Fatalf("communities not dense: %d intra vs %d inter edges", intra, inter)
	}
	if inter == 0 {
		t.Fatal("no inter-community edges; graph disconnected by construction")
	}
}

func TestPlantedPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid arguments accepted")
		}
	}()
	PlantedPartition(0, 10, 5, 1, 1)
}
