package core

import (
	"testing"
	"testing/quick"

	"knightking/internal/graph"
	"knightking/internal/rng"
)

func TestWalkerCodecRoundTrip(t *testing.T) {
	w := &Walker{
		ID:       12345,
		Cur:      42,
		Prev:     41,
		Step:     17,
		Tag:      3,
		R:        *rng.New(99),
		Path:     []graph.VertexID{1, 2, 3, 42},
		sampling: true,
	}
	// Advance the RNG so its state is mid-stream.
	w.R.Uint64()
	w.R.Uint64()
	want := w.R // copy state
	buf := encodeWalker(nil, w)
	got, rest, err := decodeWalker(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if got.ID != w.ID || got.Cur != w.Cur || got.Prev != w.Prev ||
		got.Step != w.Step || got.Tag != w.Tag || got.sampling != w.sampling {
		t.Fatalf("fields mangled: %+v vs %+v", got, w)
	}
	if len(got.Path) != 4 || got.Path[3] != 42 {
		t.Fatalf("path mangled: %v", got.Path)
	}
	// The decoded RNG must continue the exact same stream.
	for i := 0; i < 10; i++ {
		if got.R.Uint64() != want.Uint64() {
			t.Fatalf("RNG stream diverged after decode at draw %d", i)
		}
	}
}

func TestWalkerCodecAwaitingRoundTrip(t *testing.T) {
	w := &Walker{
		ID:            7,
		Cur:           3,
		Prev:          2,
		Step:          5,
		R:             *rng.New(123),
		Path:          []graph.VertexID{1, 2, 3},
		History:       []graph.VertexID{1, 2},
		sampling:      true,
		awaiting:      true,
		pendingEdge:   4,
		pendingY:      0.728515625,
		pendingTarget: 2,
		pendingArg:    9,
	}
	buf := encodeWalker(nil, w)
	got, rest, err := decodeWalker(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !got.awaiting || !got.sampling {
		t.Fatalf("awaiting/sampling flags lost: %+v", got)
	}
	if got.pendingEdge != w.pendingEdge || got.pendingY != w.pendingY ||
		got.pendingTarget != w.pendingTarget || got.pendingArg != w.pendingArg {
		t.Fatalf("pending dart mangled: %+v vs %+v", got, w)
	}
	if len(got.History) != 2 || got.History[1] != 2 {
		t.Fatalf("history mangled: %v", got.History)
	}
	// Awaiting records are larger by exactly the pending block; the flag
	// and length bytes stay canonical (decode→encode must reproduce buf).
	if again := encodeWalker(nil, got); string(again) != string(buf) {
		t.Fatal("awaiting record does not re-encode canonically")
	}
}

func TestWalkerCodecEmptyPath(t *testing.T) {
	w := &Walker{ID: 1, Cur: 2, R: *rng.New(1)}
	buf := encodeWalker(nil, w)
	got, rest, err := decodeWalker(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("err=%v rest=%d", err, len(rest))
	}
	if got.Path != nil {
		t.Fatalf("invented path %v", got.Path)
	}
}

func TestWalkerCodecBatch(t *testing.T) {
	var buf []byte
	for i := 0; i < 10; i++ {
		w := &Walker{ID: int64(i), Cur: graph.VertexID(i * 2), R: *rng.New(uint64(i))}
		if i%2 == 0 {
			w.Path = []graph.VertexID{graph.VertexID(i)}
		}
		buf = encodeWalker(buf, w)
	}
	for i := 0; i < 10; i++ {
		w, rest, err := decodeWalker(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if w.ID != int64(i) || w.Cur != graph.VertexID(i*2) {
			t.Fatalf("record %d mangled: %+v", i, w)
		}
		buf = rest
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestWalkerCodecTruncation(t *testing.T) {
	w := &Walker{ID: 1, Path: []graph.VertexID{1, 2, 3}}
	buf := encodeWalker(nil, w)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := decodeWalker(buf[:cut]); err == nil {
			// Cutting inside the path of a previous full record could
			// still parse if the fixed part is intact and pathLen bytes
			// remain; only flag cuts that silently succeed with wrong
			// data.
			got, rest, _ := decodeWalker(buf[:cut])
			if got != nil && len(rest) == 0 && len(got.Path) == len(w.Path) {
				t.Fatalf("truncated buffer (%d/%d bytes) decoded cleanly", cut, len(buf))
			}
		}
	}
}

func TestWalkerCodecQuick(t *testing.T) {
	f := func(id int64, cur, prev uint32, step, tag int32, seed uint64, pathLen uint8) bool {
		if step < 0 {
			step = -step
		}
		w := &Walker{ID: id, Cur: cur, Prev: prev, Step: step, Tag: tag, R: *rng.New(seed)}
		for i := 0; i < int(pathLen); i++ {
			w.Path = append(w.Path, graph.VertexID(i))
		}
		buf := encodeWalker(nil, w)
		got, rest, err := decodeWalker(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.ID != w.ID || got.Cur != w.Cur || got.Prev != w.Prev || got.Step != w.Step || got.Tag != w.Tag {
			return false
		}
		if len(got.Path) != len(w.Path) {
			return false
		}
		return got.R.Uint64() == w.R.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWalkerCodec(b *testing.B) {
	w := &Walker{ID: 1, Cur: 2, Prev: 3, Step: 4, Tag: 5, Origin: 2}
	w.Path = make([]graph.VertexID, 80)
	buf := make([]byte, 0, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = encodeWalker(buf[:0], w)
		if _, _, err := decodeWalker(buf); err != nil {
			b.Fatal(err)
		}
	}
}
