package core

import (
	"math"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/stats"
)

// staticAlg returns a minimal unbiased static walk of the given length.
func staticAlg(length int) *Algorithm {
	return &Algorithm{Name: "static", MaxSteps: length}
}

func TestRunValidation(t *testing.T) {
	g := gen.Ring(5, 0)
	cases := []Config{
		{},         // nil graph and algorithm
		{Graph: g}, // nil algorithm
		{Graph: g, Algorithm: &Algorithm{Name: "forever"}},                                                                                       // never terminates
		{Graph: g, Algorithm: &Algorithm{Name: "b", Biased: true, MaxSteps: 1}},                                                                  // biased on unweighted graph
		{Graph: g, Algorithm: &Algorithm{Name: "d", MaxSteps: 1, EdgeDynamicComp: func(*Walker, graph.Edge, uint64, bool) float64 { return 1 }}}, // no UpperBound
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStaticWalkBasics(t *testing.T) {
	g := gen.Ring(10, 0)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(5),
		NumWalkers:  20,
		Seed:        1,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps != 20*5 {
		t.Fatalf("Steps = %d, want 100", res.Counters.Steps)
	}
	if res.Counters.Terminations != 20 {
		t.Fatalf("Terminations = %d", res.Counters.Terminations)
	}
	if res.Counters.EdgeProbEvals != 0 {
		t.Fatalf("static walk evaluated %d dynamic probabilities", res.Counters.EdgeProbEvals)
	}
	if len(res.Paths) != 20 {
		t.Fatalf("%d paths", len(res.Paths))
	}
	for id, p := range res.Paths {
		if len(p) != 6 { // start + 5 moves
			t.Fatalf("walker %d path length %d", id, len(p))
		}
		if p[0] != graph.VertexID(id%10) {
			t.Fatalf("walker %d started at %d", id, p[0])
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("walker %d took non-edge %d->%d", id, p[i-1], p[i])
			}
		}
	}
	if res.Lengths.Mean() != 5 {
		t.Fatalf("mean length %v", res.Lengths.Mean())
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	g := gen.UniformDegree(100, 6, 3)
	run := func() *Result {
		res, err := Run(Config{Graph: g, Algorithm: staticAlg(10), Seed: 42, RecordPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	assertSamePaths(t, a.Paths, b.Paths)
}

func TestDeterminismAcrossNodeCounts(t *testing.T) {
	// The headline engine property: a walker's path depends only on (seed,
	// walker ID), not on partitioning, node count, or scheduling.
	g := gen.UniformDegree(200, 8, 5)
	var ref [][]graph.VertexID
	for _, nodes := range []int{1, 2, 4} {
		res, err := Run(Config{
			Graph:       g,
			Algorithm:   staticAlg(12),
			NumNodes:    nodes,
			Seed:        7,
			RecordPaths: true,
		})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if ref == nil {
			ref = res.Paths
			continue
		}
		assertSamePaths(t, ref, res.Paths)
	}
}

func TestBiasedStaticDistribution(t *testing.T) {
	// A 4-vertex star with weighted spokes; first hops from the center
	// must follow the weights.
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(0, 2, 2)
	b.AddWeightedEdge(0, 3, 5)
	g := b.Build()
	const walkers = 60000
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   &Algorithm{Name: "biased", Biased: true, MaxSteps: 1},
		NumWalkers:  walkers,
		StartVertex: func(int64) graph.VertexID { return 0 },
		Seed:        9,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	for _, p := range res.Paths {
		if len(p) != 2 {
			t.Fatalf("path %v", p)
		}
		counts[p[1]]++
	}
	for v, want := range []float64{0, 1.0 / 8, 2.0 / 8, 5.0 / 8} {
		got := counts[v] / walkers
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("vertex %d frequency %v, want %v", v, got, want)
		}
	}
}

func TestTerminationProbability(t *testing.T) {
	g := gen.UniformDegree(50, 6, 11)
	const pt = 0.1
	res, err := Run(Config{
		Graph:      g,
		Algorithm:  &Algorithm{Name: "ppr-ish", TerminationProb: pt},
		NumWalkers: 20000,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Geometric: E[steps] = (1-pt)/pt = 9.
	mean := res.Lengths.Mean()
	if math.Abs(mean-9) > 0.5 {
		t.Fatalf("mean walk length %v, want ~9", mean)
	}
	if res.Lengths.Max() <= 20 {
		t.Fatalf("max length %d suspiciously small — no long tail", res.Lengths.Max())
	}
}

func TestWalkStopsAtSink(t *testing.T) {
	// Directed path 0 -> 1 -> 2; all walks from 0 must stop at 2.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(10),
		NumWalkers:  5,
		StartVertex: func(int64) graph.VertexID { return 0 },
		Seed:        1,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Paths {
		if len(p) != 3 || p[2] != 2 {
			t.Fatalf("path %v, want [0 1 2]", p)
		}
	}
	if res.Counters.Terminations != 5 {
		t.Fatalf("Terminations = %d", res.Counters.Terminations)
	}
}

func TestFirstOrderDynamicWalk(t *testing.T) {
	// A first-order dynamic walk that only allows edges to even vertices.
	g := gen.UniformDegree(60, 8, 17)
	evenOnly := &Algorithm{
		Name:     "even-only",
		MaxSteps: 4,
		EdgeDynamicComp: func(w *Walker, e graph.Edge, _ uint64, _ bool) float64 {
			if e.Dst%2 == 0 {
				return 1
			}
			return 0
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
	}
	res, err := Run(Config{Graph: g, Algorithm: evenOnly, Seed: 3, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, p := range res.Paths {
		for i := 1; i < len(p); i++ {
			moved++
			if p[i]%2 != 0 {
				t.Fatalf("walk moved to odd vertex: %v", p)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no moves at all")
	}
	if res.Counters.EdgeProbEvals == 0 {
		t.Fatal("dynamic walk did not evaluate any probabilities")
	}
}

func TestFullScanFallbackTerminatesZeroMassWalks(t *testing.T) {
	// Pd ≡ 0: rejection alone would spin forever; the fallback must detect
	// zero mass and finish every walker.
	g := gen.Ring(12, 0)
	stuck := &Algorithm{
		Name:            "stuck",
		MaxSteps:        5,
		EdgeDynamicComp: func(*Walker, graph.Edge, uint64, bool) float64 { return 0 },
		UpperBound:      func(*graph.Graph, graph.VertexID) float64 { return 1 },
		FallbackTrials:  8,
	}
	res, err := Run(Config{Graph: g, Algorithm: stuck, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Terminations != int64(g.NumVertices()) {
		t.Fatalf("Terminations = %d", res.Counters.Terminations)
	}
	if res.Counters.Steps != 0 {
		t.Fatalf("zero-mass walk took %d steps", res.Counters.Steps)
	}
}

func TestCustomStartAndWalkerCount(t *testing.T) {
	g := gen.Ring(10, 0)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(2),
		NumWalkers:  7,
		StartVertex: func(id int64) graph.VertexID { return graph.VertexID((id * 3) % 10) },
		Seed:        1,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range res.Paths {
		want := graph.VertexID((id * 3) % 10)
		if p[0] != want {
			t.Fatalf("walker %d started at %d, want %d", id, p[0], want)
		}
	}
}

func TestLightModeDoesNotChangeResults(t *testing.T) {
	g := gen.UniformDegree(80, 6, 19)
	run := func(threshold int) [][]graph.VertexID {
		res, err := Run(Config{
			Graph:          g,
			Algorithm:      staticAlg(8),
			Seed:           21,
			RecordPaths:    true,
			LightThreshold: threshold,
			NumNodes:       2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Paths
	}
	assertSamePaths(t, run(-1), run(1<<20))
}

func TestIterationLogRecordsShrinkingActiveSet(t *testing.T) {
	g := gen.UniformDegree(50, 6, 23)
	var log stats.IterationLog
	_, err := Run(Config{
		Graph:      g,
		Algorithm:  &Algorithm{Name: "geo", TerminationProb: 0.3},
		NumWalkers: 1000,
		Seed:       25,
		IterLog:    &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := log.Records()
	if len(recs) < 3 {
		t.Fatalf("only %d iteration records", len(recs))
	}
	if recs[len(recs)-1].ActiveWalkers != 0 {
		t.Fatalf("last record has %d active walkers", recs[len(recs)-1].ActiveWalkers)
	}
	// Active set must be non-increasing for a pure-termination walk.
	for i := 1; i < len(recs); i++ {
		if recs[i].ActiveWalkers > recs[i-1].ActiveWalkers {
			t.Fatalf("active walkers grew at iteration %d: %d -> %d",
				i, recs[i-1].ActiveWalkers, recs[i].ActiveWalkers)
		}
	}
}

func TestMaxIterationsGuard(t *testing.T) {
	g := gen.Ring(5, 0)
	_, err := Run(Config{
		Graph:         g,
		Algorithm:     staticAlg(100),
		Seed:          1,
		MaxIterations: 3,
	})
	if err == nil {
		t.Fatal("expected max-iterations error")
	}
}

func assertSamePaths(t *testing.T, a, b [][]graph.VertexID) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("path counts differ: %d vs %d", len(a), len(b))
	}
	for id := range a {
		if len(a[id]) != len(b[id]) {
			t.Fatalf("walker %d path lengths differ: %v vs %v", id, a[id], b[id])
		}
		for i := range a[id] {
			if a[id][i] != b[id][i] {
				t.Fatalf("walker %d paths diverge at %d: %v vs %v", id, i, a[id], b[id])
			}
		}
	}
}

func TestMoreWalkersThanVertices(t *testing.T) {
	// The paper repeats walks over multiple rounds; here that is just
	// NumWalkers = k·|V| with the default id-mod-|V| placement.
	g := gen.Ring(10, 0)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(4),
		NumWalkers:  35,
		Seed:        5,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Terminations != 35 {
		t.Fatalf("Terminations = %d", res.Counters.Terminations)
	}
	// Walkers 3 and 13 share a start vertex but must walk independently.
	if res.Paths[3][0] != res.Paths[13][0] {
		t.Fatal("start placement wrong")
	}
	same := true
	for i := range res.Paths[3] {
		if res.Paths[3][i] != res.Paths[13][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("same-start walkers produced identical paths (RNG streams shared?)")
	}
}

func TestIsolatedStartVertexTerminatesImmediately(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1) // vertex 2 isolated
	g := b.Build()
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(5),
		NumWalkers:  1,
		StartVertex: func(int64) graph.VertexID { return 2 },
		Seed:        1,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps != 0 || len(res.Paths[0]) != 1 {
		t.Fatalf("isolated start walked: %v", res.Paths[0])
	}
}

func TestManyNodesFewVertices(t *testing.T) {
	// More logical nodes than vertices: some ranks own empty ranges and
	// must still participate in every exchange without deadlocking.
	g := gen.Ring(3, 0)
	res, err := Run(Config{
		Graph:     g,
		Algorithm: staticAlg(6),
		NumNodes:  8,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps != 3*6 {
		t.Fatalf("Steps = %d", res.Counters.Steps)
	}
}

func TestExternalCountersAccumulate(t *testing.T) {
	g := gen.Ring(5, 0)
	var c stats.Counters
	for i := 0; i < 3; i++ {
		if _, err := Run(Config{Graph: g, Algorithm: staticAlg(2), Seed: uint64(i), Counters: &c}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Steps.Load(); got != 3*5*2 {
		t.Fatalf("accumulated steps = %d, want 30", got)
	}
}
