package core_test

import (
	"testing"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
)

// benchRun executes one engine run and reports steps/sec and allocs/op.
// stepping "" uses the default (interleaved); the Scalar variants pin the
// reference loop so regressions in either strategy are visible separately
// in the trend data.
func benchRun(b *testing.B, a *core.Algorithm, nodes int, stepping string) {
	b.Helper()
	g := gen.TruncatedPowerLaw(5000, 4, 500, 2.0, 1)
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			Graph:     g,
			Algorithm: a,
			NumNodes:  nodes,
			Seed:      uint64(i + 1),
			Stepping:  stepping,
		})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Counters.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkEngineDeepWalk(b *testing.B) {
	benchRun(b, alg.DeepWalk(20, false), 1, "")
}

func BenchmarkEngineDeepWalk4Nodes(b *testing.B) {
	benchRun(b, alg.DeepWalk(20, false), 4, "")
}

func BenchmarkEngineDeepWalk4NodesScalar(b *testing.B) {
	benchRun(b, alg.DeepWalk(20, false), 4, core.SteppingScalar)
}

func BenchmarkEnginePPR(b *testing.B) {
	benchRun(b, alg.PPR(0.05, false, 0), 1, "")
}

func BenchmarkEngineMetaPath(b *testing.B) {
	g := gen.WithTypes(gen.TruncatedPowerLaw(5000, 4, 500, 2.0, 1), 3, 2)
	a := alg.MetaPath([][]int32{{0, 1}, {2}}, 20, false)
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{Graph: g, Algorithm: a, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Counters.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkEngineNode2Vec(b *testing.B) {
	benchRun(b, alg.Node2Vec(alg.Node2VecParams{
		P: 2, Q: 0.5, Length: 20, LowerBound: true, FoldOutlier: true,
	}), 1, "")
}

func BenchmarkEngineNode2Vec4Nodes(b *testing.B) {
	benchRun(b, alg.Node2Vec(alg.Node2VecParams{
		P: 2, Q: 0.5, Length: 20, LowerBound: true, FoldOutlier: true,
	}), 4, "")
}

func BenchmarkEngineNode2Vec4NodesScalar(b *testing.B) {
	benchRun(b, alg.Node2Vec(alg.Node2VecParams{
		P: 2, Q: 0.5, Length: 20, LowerBound: true, FoldOutlier: true,
	}), 4, core.SteppingScalar)
}
