// Engine-side causal-tracing hooks. Where Observer (observer.go) delivers
// aggregated per-superstep spans, Tracer delivers the fine-grained causal
// record underneath them: the journey of individual (deterministically
// sampled) walkers — every step decision, every rank migration, every
// rejection trial burst. internal/obs/tracelog provides the production
// implementation (a bounded ring-buffer collector with Perfetto export);
// the engine only defines the contract.
//
// Tracing follows the same passivity rules as observation: a nil tracer
// costs one predictable branch per hook point, hooks never touch a
// walker's RNG stream, and no hook outcome feeds walk state — so enabling
// tracing cannot change walk output.
package core

import "knightking/internal/graph"

// WalkerEventKind discriminates the step outcomes a sampled walker's
// journey records.
type WalkerEventKind uint8

const (
	// WalkerStep is an accepted move: the walker traversed an edge (or is
	// about to — the event fires at acceptance, before relocation), and
	// Trials carries the rejection darts of the accepting burst, the
	// paper's core per-step cost metric.
	WalkerStep WalkerEventKind = iota + 1
	// WalkerFinish is a termination: max steps, termination probability,
	// or a dead end. The walker's journey ends here.
	WalkerFinish
	// WalkerTeleport is a restart jump back to the walker's origin (random
	// walk with restart).
	WalkerTeleport
	// WalkerPark marks the walker blocking on a remote state query (a
	// higher-order walk's dart awaiting last-vertex state on another rank).
	WalkerPark
	// WalkerYield marks a walker giving up its trial budget for this
	// superstep without a decision (higher-order rejection pressure); it
	// retries next superstep.
	WalkerYield
	// WalkerMigrate marks a cross-rank move: the walker's accepted
	// destination is owned by Peer, so its state transfers there. The
	// preceding WalkerStep event carries the step's trial count.
	WalkerMigrate
)

// WalkerTraceEvent is one sampled walker's step decision, passed by value
// so tracing allocates nothing on the hot path.
type WalkerTraceEvent struct {
	// Rank is the rank the decision was made on.
	Rank int
	// Iteration is the 1-based superstep the decision belongs to.
	Iteration int
	// Walker is the walker ID (the sampling key).
	Walker int64
	// Kind is the decision outcome.
	Kind WalkerEventKind
	// Vertex is the walker's residing vertex when the decision was made
	// (for WalkerMigrate: the destination vertex it is moving to).
	Vertex graph.VertexID
	// Step is the walker's step count at decision time.
	Step int32
	// Trials is the rejection-dart count of the accepting burst
	// (WalkerStep only; 0 elsewhere).
	Trials int32
	// Peer is the destination rank of a WalkerMigrate, -1 otherwise.
	Peer int
}

// Tracer receives the causal trace of a run. Implementations must be safe
// for concurrent use (hooks fire from every rank's loop and worker
// goroutines) and must not block; they see engine state only through
// their arguments.
//
// The engine consults TraceWalker before emitting any walker event, so an
// implementation that samples by walker ID (internal/obs/tracelog samples
// id % N == 0) gets a deterministic, reproducible set of journeys for a
// given seed: the same walkers are sampled run after run, whatever the
// scheduling.
type Tracer interface {
	// TraceWalker reports whether walker id's journey is sampled. It must
	// be a pure function of id (no per-call state), so sampled journeys
	// are identical run-to-run.
	TraceWalker(id int64) bool
	// OnWalkerEvent records one sampled walker's step decision. Only
	// called for walkers TraceWalker accepted.
	OnWalkerEvent(ev WalkerTraceEvent)
}

// traceWalkerEvent emits one walker journey event if tracing is on and the
// walker is sampled. The nil check is the entire disabled-path cost.
func (n *node) traceWalkerEvent(w *Walker, kind WalkerEventKind, v graph.VertexID, trials int32, peer int) {
	if n.tracer == nil || !n.tracer.TraceWalker(w.ID) {
		return
	}
	n.tracer.OnWalkerEvent(WalkerTraceEvent{
		Rank:      n.rank,
		Iteration: int(n.curIter),
		Walker:    w.ID,
		Kind:      kind,
		Vertex:    v,
		Step:      w.Step,
		Trials:    trials,
		Peer:      peer,
	})
}
