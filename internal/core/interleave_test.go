package core

// Equivalence tests for the interleaved stepping pipeline. The determinism
// contract: under the same seed and config, interleaved stepping — at any
// batch size — produces bit-identical walks, counters, and visit counts to
// the scalar reference loop, because every RNG draw happens in decideStep
// in per-walker program order and the gather stage only loads.

import (
	"reflect"
	"sync/atomic"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/sampling"
)

// runStepping runs cfg with the given stepping strategy and batch size.
func runStepping(t *testing.T, cfg Config, stepping string, batch int) *Result {
	t.Helper()
	cfg.Stepping = stepping
	cfg.BatchSize = batch
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("stepping=%s batch=%d: %v", stepping, batch, err)
	}
	return res
}

// assertSameRun asserts bit-identical walk output and identical sampling
// work between two runs.
func assertSameRun(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Paths, got.Paths) {
		t.Errorf("%s: walker paths differ", label)
	}
	if !reflect.DeepEqual(want.Visits, got.Visits) {
		t.Errorf("%s: visit counts differ", label)
	}
	if !reflect.DeepEqual(want.Lengths.State(), got.Lengths.State()) {
		t.Errorf("%s: length histograms differ", label)
	}
	w, g := want.Counters, got.Counters
	for _, c := range []struct {
		name      string
		want, got int64
	}{
		{"Steps", w.Steps, g.Steps},
		{"Terminations", w.Terminations, g.Terminations},
		{"Restarts", w.Restarts, g.Restarts},
		{"Trials", w.Trials, g.Trials},
		{"EdgeProbEvals", w.EdgeProbEvals, g.EdgeProbEvals},
		{"PreAccepts", w.PreAccepts, g.PreAccepts},
		{"AppendixHits", w.AppendixHits, g.AppendixHits},
		{"Queries", w.Queries, g.Queries},
	} {
		if c.want != c.got {
			t.Errorf("%s: %s = %d, want %d", label, c.name, c.got, c.want)
		}
	}
}

// interleaveCases covers every stepping-relevant engine path: static
// uniform and biased proposals, first-order dynamic rejection with
// restarts and terminations, and two higher-order walks exercising the
// park/query/resume machinery.
func interleaveCases() map[string]Config {
	restarting := &Algorithm{
		Name:            "restarting-dynamic",
		MaxSteps:        14,
		RestartProb:     0.1,
		TerminationProb: 0.05,
		EdgeDynamicComp: func(w *Walker, e graph.Edge, _ uint64, _ bool) float64 {
			return []float64{1, 0.75, 0.5, 0.25}[e.Dst%4]
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
	}
	return map[string]Config{
		"static-uniform": {
			Graph:     gen.UniformDegree(120, 6, 211),
			Algorithm: staticAlg(12),
			NumNodes:  3,
		},
		"static-biased": {
			Graph:     gen.WithUniformWeights(gen.UniformDegree(90, 7, 213), 1, 5, 214),
			Algorithm: &Algorithm{Name: "biased", Biased: true, MaxSteps: 10},
			NumNodes:  2,
		},
		"first-order-dynamic": {
			Graph:     gen.UniformDegree(100, 8, 217),
			Algorithm: restarting,
			NumNodes:  3,
		},
		"higher-order-parity": {
			Graph:     gen.UniformDegree(80, 6, 219),
			Algorithm: parityAlg(9),
			NumNodes:  3,
		},
		"node2vec": {
			Graph:     gen.UniformDegree(70, 6, 223),
			Algorithm: node2vecAlg(2, 0.5, 10),
			NumNodes:  4,
		},
	}
}

func TestInterleavedMatchesScalar(t *testing.T) {
	for name, cfg := range interleaveCases() {
		cfg.Seed = 227
		cfg.RecordPaths = true
		cfg.CountVisits = true
		scalar := runStepping(t, cfg, SteppingScalar, 0)
		// Batch size 1 degenerates to one-walker batches, 3 forces every
		// batch boundary misalignment against the walker list, 256 is the
		// production default.
		for _, batch := range []int{1, 3, 256} {
			got := runStepping(t, cfg, SteppingInterleaved, batch)
			assertSameRun(t, scalar, got, name+"/batch="+itoa(batch))
		}
		if scalar.Counters.Steps == 0 {
			t.Fatalf("%s: no steps taken; equivalence is vacuous", name)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestInterleavedMatchesScalarUnderAdaptation: runtime sampler switches
// happen at barriers and rebuild structures deterministically, so the
// bit-identity contract must hold for adapted runs too — and the adapted
// run must actually switch something, or the test is vacuous.
func TestInterleavedMatchesScalarUnderAdaptation(t *testing.T) {
	var switches atomic.Int64
	mkCfg := func() Config {
		// Weighted + biased so the static structure is an alias table with
		// something to switch (uniform static walks have no switch class).
		a := node2vecAlg(2, 0.5, 12)
		a.Biased = true
		return Config{
			Graph:       gen.WithUniformWeights(gen.UniformDegree(70, 6, 229), 1, 5, 230),
			Algorithm:   a,
			NumNodes:    3,
			Seed:        233,
			RecordPaths: true,
			CountVisits: true,
			Adapt: &AdaptConfig{
				Every: 2,
				// Degree 6 is within the default ITSMaxDegree, so the alias
				// tables built at setup all switch to ITS at the first
				// decision barrier.
				Policy: sampling.AdaptivePolicy{MinSteps: 1},
				OnSwitch: func(rank, iteration int, v graph.VertexID, from, to sampling.Mode) {
					switches.Add(1)
				},
			},
		}
	}
	scalar := runStepping(t, mkCfg(), SteppingScalar, 0)
	scalarSwitches := switches.Load()
	if scalarSwitches == 0 {
		t.Fatal("adaptation made no switches; the test is vacuous")
	}
	for _, batch := range []int{1, 3, 256} {
		switches.Store(0)
		got := runStepping(t, mkCfg(), SteppingInterleaved, batch)
		assertSameRun(t, scalar, got, "adapted/batch="+itoa(batch))
		if s := switches.Load(); s != scalarSwitches {
			t.Errorf("batch=%d: %d switches, scalar made %d", batch, s, scalarSwitches)
		}
	}
}

// TestAdaptedRunDivergesFromUnadapted pins that adaptation is not a no-op:
// a switched structure consumes walker streams differently, so the adapted
// run must differ from the unadapted one (while each remains internally
// deterministic — checked by the equivalence tests above).
func TestAdaptedRunDivergesFromUnadapted(t *testing.T) {
	a := node2vecAlg(2, 0.5, 12)
	a.Biased = true
	base := Config{
		Graph:       gen.WithUniformWeights(gen.UniformDegree(70, 6, 229), 1, 5, 230),
		Algorithm:   a,
		NumNodes:    3,
		Seed:        233,
		RecordPaths: true,
	}
	plain := runStepping(t, base, SteppingInterleaved, 0)
	adapted := base
	adapted.Adapt = &AdaptConfig{Every: 2, Policy: sampling.AdaptivePolicy{MinSteps: 1}}
	got := runStepping(t, adapted, SteppingInterleaved, 0)
	if reflect.DeepEqual(plain.Paths, got.Paths) {
		t.Fatal("adapted run identical to unadapted; sampler switches had no effect")
	}
}

// TestAdaptRejectsCheckpointCombination: adaptation and checkpoint/restore
// are mutually exclusive (snapshots do not capture mode state).
func TestAdaptRejectsCheckpointCombination(t *testing.T) {
	cfg := Config{
		Graph:      gen.Ring(8, 0),
		Algorithm:  staticAlg(3),
		Adapt:      &AdaptConfig{},
		Checkpoint: nopCheckpointer{},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Adapt+Checkpoint accepted")
	}
}

// nopCheckpointer satisfies CheckpointSink for validation tests only.
type nopCheckpointer struct{}

func (nopCheckpointer) Interval() int { return 4 }
func (nopCheckpointer) WriteSegment(iteration, rank int, blob []byte) (SegmentInfo, error) {
	return SegmentInfo{}, nil
}
func (nopCheckpointer) Commit(iteration int, segments []SegmentInfo) error { return nil }
