package core_test

import (
	"fmt"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

// ExampleRun shows the smallest complete engine invocation: an unbiased
// 5-step DeepWalk on a ring, one walker per vertex, over two simulated
// nodes. The run is fully deterministic in the seed.
func ExampleRun() {
	g := gen.Ring(6, 0)
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   alg.DeepWalk(5, false),
		NumNodes:    2,
		Seed:        4,
		RecordPaths: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("walkers:", res.Counters.Terminations)
	fmt.Println("steps:", res.Counters.Steps)
	fmt.Println("walker 0:", res.Paths[0])
	// Output:
	// walkers: 6
	// steps: 30
	// walker 0: [0 1 0 5 4 3]
}

// ExampleRun_customAlgorithm defines a dynamic first-order walk inline:
// edges to higher-numbered vertices are three times as likely as edges
// back to lower-numbered ones.
func ExampleRun_customAlgorithm() {
	upward := &core.Algorithm{
		Name:     "upward",
		MaxSteps: 4,
		EdgeDynamicComp: func(w *core.Walker, e graph.Edge, _ uint64, _ bool) float64 {
			if e.Dst > w.Cur {
				return 3
			}
			return 1
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 3 },
		LowerBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
	}
	res, err := core.Run(core.Config{
		Graph:       gen.Ring(8, 0),
		Algorithm:   upward,
		NumWalkers:  2000,
		Seed:        5,
		CountVisits: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("steps:", res.Counters.Steps)
	fmt.Println("dynamic evaluations happened:", res.Counters.EdgeProbEvals > 0)
	// Output:
	// steps: 8000
	// dynamic evaluations happened: true
}
