package core

import (
	"sync"
	"testing"

	"knightking/internal/gen"
)

// TestOnProgressReportsBarriers: the hook fires once per superstep per
// rank with monotonically increasing iterations, the final call reports
// zero live walkers, and enabling it does not change walk output.
func TestOnProgressReportsBarriers(t *testing.T) {
	g := gen.UniformDegree(40, 5, 3)
	base := Config{
		Graph:       g,
		Algorithm:   staticAlg(6),
		NumNodes:    2,
		Seed:        11,
		NumWalkers:  40,
		RecordPaths: true,
	}
	golden, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var iters []int
	var globals []int64
	cfg := base
	cfg.OnProgress = func(iteration int, global int64) {
		mu.Lock()
		iters = append(iters, iteration)
		globals = append(globals, global)
		mu.Unlock()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(iters) != res.Iterations*base.NumNodes {
		t.Fatalf("hook fired %d times, want %d (iterations %d × %d ranks)",
			len(iters), res.Iterations*base.NumNodes, res.Iterations, base.NumNodes)
	}
	perRank := make(map[int]int) // iteration -> calls
	finals := 0
	for i, it := range iters {
		perRank[it]++
		if it == res.Iterations && globals[i] != 0 {
			t.Errorf("final superstep %d reported %d live walkers, want 0", it, globals[i])
		}
		if it == res.Iterations {
			finals++
		}
	}
	for it := 1; it <= res.Iterations; it++ {
		if perRank[it] != base.NumNodes {
			t.Errorf("superstep %d observed by %d ranks, want %d", it, perRank[it], base.NumNodes)
		}
	}
	if finals != base.NumNodes {
		t.Errorf("final superstep observed %d times, want %d", finals, base.NumNodes)
	}

	for id := range golden.Paths {
		if len(golden.Paths[id]) != len(res.Paths[id]) {
			t.Fatalf("walker %d path length changed with OnProgress enabled", id)
		}
		for j := range golden.Paths[id] {
			if golden.Paths[id][j] != res.Paths[id][j] {
				t.Fatalf("walker %d diverged at step %d with OnProgress enabled", id, j)
			}
		}
	}
}
