package core

import (
	"errors"
	"sync"
	"testing"

	"knightking/internal/gen"
)

// cancelAtObserver closes a cancel channel the first time any rank reports
// reaching the given superstep. Driving cancellation from the engine's own
// span stream keeps the test deterministic: no sleeps, no wall clock.
type cancelAtObserver struct {
	at     int
	cancel chan struct{}
	once   sync.Once
}

func (o *cancelAtObserver) OnSuperstep(span SuperstepSpan) {
	if span.Iteration >= o.at {
		o.once.Do(func() { close(o.cancel) })
	}
}
func (o *cancelAtObserver) ObserveStepTrials(int64) {}
func (o *cancelAtObserver) ObserveQueryBatch(int64) {}

func TestCancelPreClosedChannelAbortsFirstBarrier(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	_, err := Run(Config{
		Graph:     gen.UniformDegree(100, 6, 3),
		Algorithm: staticAlg(100000),
		NumNodes:  3,
		Seed:      1,
		Cancel:    cancel,
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestCancelMidRunStaticWalk(t *testing.T) {
	obs := &cancelAtObserver{at: 4, cancel: make(chan struct{})}
	_, err := Run(Config{
		Graph:     gen.UniformDegree(200, 6, 3),
		Algorithm: staticAlg(100000), // would run 100000 supersteps uncancelled
		NumNodes:  4,
		Seed:      7,
		Cancel:    obs.cancel,
		Observer:  obs,
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestCancelMidRunSecondOrderWalk(t *testing.T) {
	// The two-round query machinery must also stop at the count barrier:
	// parked walkers and in-flight queries are simply abandoned.
	obs := &cancelAtObserver{at: 3, cancel: make(chan struct{})}
	_, err := Run(Config{
		Graph:     gen.UniformDegree(120, 8, 33),
		Algorithm: parityAlg(5000),
		NumNodes:  3,
		Seed:      77,
		Cancel:    obs.cancel,
		Observer:  obs,
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestCancelChannelLeftOpenDoesNotPerturbWalk(t *testing.T) {
	g := gen.UniformDegree(100, 6, 3)
	run := func(cancel <-chan struct{}) *Result {
		res, err := Run(Config{
			Graph:       g,
			Algorithm:   staticAlg(20),
			NumNodes:    2,
			Seed:        42,
			RecordPaths: true,
			Cancel:      cancel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(nil)
	got := run(make(chan struct{}))
	assertSamePaths(t, ref.Paths, got.Paths)
	// Nanos counters are wall-clock and may differ; everything else is
	// pinned by the seed.
	a, b := ref.Counters, got.Counters
	a.ExchangeNanos, b.ExchangeNanos = 0, 0
	if a != b {
		t.Fatalf("counters diverged with an armed cancel channel:\n%+v\n%+v", a, b)
	}
}

func TestCancelRaceWithCompletionIsCleanEitherWay(t *testing.T) {
	// Closing the channel on the very superstep the walk drains must yield
	// either a clean completion or a clean cancellation — never a hang or a
	// partial-state error. Length 3 walks finish at superstep 4's barrier,
	// where the observer also fires.
	obs := &cancelAtObserver{at: 4, cancel: make(chan struct{})}
	res, err := Run(Config{
		Graph:     gen.UniformDegree(50, 4, 9),
		Algorithm: staticAlg(3),
		NumNodes:  2,
		Seed:      5,
		Cancel:    obs.cancel,
		Observer:  obs,
	})
	if err != nil && !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	if err == nil && res.Counters.Terminations != 50 {
		t.Fatalf("completed run lost walkers: %d terminations", res.Counters.Terminations)
	}
}
