package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knightking/internal/cluster"
	"knightking/internal/graph"
	"knightking/internal/rng"
	"knightking/internal/sampling"
	"knightking/internal/stats"
	"knightking/internal/transport"
)

// Message kinds on the wire.
const (
	kMigrate  uint8 = iota + 1 // batched walker records
	kQuery                     // batched state-query records
	kResponse                  // batched query-response records
	kCount                     // one int64: sender's live-walker count
	kCkpt                      // one checkpoint segment descriptor, sent to rank 0
	kCancel                    // cancellation request, broadcast to every rank
)

// Chunk size for dynamic task scheduling, matching the paper's setting
// (§6.2: "the granularity of such dynamic scheduling (chunk size) is set
// as 128, for both walkers and messages").
const walkerChunk = 128

// DefaultLightThreshold is the paper's straggler threshold: a node whose
// active walker count falls below it drops to a single worker (§6.2).
const DefaultLightThreshold = 4000

// ErrCancelled is returned (wrapped) by Run and RunNode when a run is
// aborted through Config.Cancel. The abort is cooperative and aligned:
// every rank leaves the superstep loop at the same barrier, so no partial
// superstep is ever observable and any checkpoints on disk remain
// consistent. Match with errors.Is.
var ErrCancelled = errors.New("core: run cancelled")

// Config describes one engine run.
type Config struct {
	// Graph is the input graph (shared read-only across logical nodes).
	Graph *graph.Graph
	// Algorithm is the walk specification.
	Algorithm *Algorithm
	// NumNodes is the number of logical cluster nodes (default 1). Ignored
	// when Endpoints is set.
	NumNodes int
	// Workers is the number of computation goroutines per node (default 4,
	// mirroring the paper's thread-per-core pools).
	Workers int
	// Seed makes the whole run deterministic.
	Seed uint64
	// NumWalkers is the walker count (default |V|).
	NumWalkers int
	// StartVertex places walker id (default: id mod |V|, the paper's
	// default strategy). Mutually exclusive with StartWeights.
	StartVertex func(id int64) graph.VertexID
	// StartWeights, when set (length |V|), draws each walker's start
	// vertex from this unnormalized distribution — the paper's "give ...
	// their distribution of starting locations" API. The draw uses the
	// walker's own stream, so placement stays deterministic in (seed, id).
	StartWeights []float32
	// RecordPaths stores each walker's visited vertex sequence in the
	// result (memory ~ NumWalkers × walk length).
	RecordPaths bool
	// CountVisits accumulates per-vertex visit counts (moves into each
	// vertex, start vertices excluded) in Result.Visits — the cheap way to
	// compute PPR-style stationary estimates without storing paths.
	CountVisits bool
	// SamplerKind selects the static sampling structure: "alias" (default,
	// O(1) per draw) or "its" (CDF + binary search, O(log d) per draw).
	// Exposed for the ablation in the paper's §3 discussion.
	SamplerKind string
	// Samplers, when non-nil, supplies prebuilt per-vertex static sampler
	// tables — e.g. a dynamic-graph epoch's incrementally maintained ones —
	// so setup skips the O(E) table build. A provided table is used only
	// where it applies exactly: the algorithm's static weights must be the
	// graph's edge weights (Biased with no EdgeStaticComp) and the
	// provider's kind must match SamplerKind; otherwise, and for vertices
	// where the provider returns nil, the engine builds locally as always.
	// Tables must have been built from this exact Graph: a degree mismatch
	// panics rather than silently walking a stale epoch.
	Samplers SamplerProvider
	// LightThreshold enables straggler-aware light mode below this active
	// count; 0 selects DefaultLightThreshold, negative disables.
	LightThreshold int
	// Endpoints supplies a custom transport group (e.g. TCP); its size
	// overrides NumNodes. Default: an in-process group of NumNodes.
	Endpoints []transport.Endpoint
	// NetTimeout, when positive, bounds every collective Exchange call:
	// a barrier that does not complete within it (a dead or wedged peer, a
	// partitioned network) fails the run with transport.ErrTimeout instead
	// of hanging forever, which makes checkpoint recovery reachable. Zero
	// disables the guard. Applies on top of any transport-level read/write
	// deadlines (e.g. transport.TCPOptions).
	NetTimeout time.Duration
	// MaxIterations aborts runaway walks (default 10,000,000 supersteps).
	MaxIterations int
	// Counters receives engine counters (optional; Result always carries a
	// snapshot).
	Counters *stats.Counters
	// IterLog receives one record per superstep (optional).
	IterLog *stats.IterationLog
	// Observer receives per-superstep span records and sampling/query
	// observations (see observer.go). When it also implements
	// transport.Observer, every endpoint is wrapped so exchange latency and
	// frame payload sizes are observed at the transport layer. Nil disables
	// telemetry; observations never touch walker RNG streams, so enabling
	// it cannot change walk output.
	Observer Observer
	// PartitionAlpha weighs vertices against edges in the 1-D partitioner
	// (default 1, the paper's |V|+|E| balance).
	PartitionAlpha float64
	// PartitionStarts overrides the computed partition with explicit range
	// boundaries (starts[i] = node i's first vertex, last entry = |V|).
	// Mandatory when Graph is a partition-local slice (graph.Partial), in
	// which case every rank must pass identical boundaries matching its
	// slice. Length must be number-of-nodes + 1.
	PartitionStarts []graph.VertexID
	// Cancel, when non-nil, requests a cooperative abort: close the channel
	// and the run stops at the next BSP barrier with an error wrapping
	// ErrCancelled. Each rank polls the channel once per superstep (a
	// non-blocking select, so the walk path stays deterministic) and the
	// observing rank broadcasts the request with its walker count, so every
	// rank — including remote processes under RunNode that never see the
	// local signal — leaves the loop at the same superstep, before any
	// checkpoint write begins. kkwalk wires SIGINT/SIGTERM to this;
	// internal/service closes it on DELETE /jobs/{id}.
	Cancel <-chan struct{}
	// Checkpoint, when non-nil, makes every rank snapshot its walker state
	// into the sink at each superstep barrier whose index is a multiple of
	// the sink's Interval. The snapshot is taken at a consistent cut (all
	// migrations delivered, no responses outstanding); a write or commit
	// failure aborts the run. See internal/checkpoint for the on-disk sink.
	Checkpoint CheckpointSink
	// Restore resumes a previous run from a loaded checkpoint instead of
	// seeding fresh walkers. The Config must otherwise match the
	// checkpointed run (graph, algorithm, seed, walker count, rank count);
	// mismatches are rejected. See internal/checkpoint.Load.
	Restore *RestoreState
}

// SamplerProvider supplies prebuilt per-vertex static sampler tables.
// internal/dyngraph's Epoch is the production implementation: its tables
// are maintained incrementally across edge ingest, so handing them to
// the engine makes per-run setup O(1) per vertex instead of O(degree).
type SamplerProvider interface {
	// StaticSampler returns the weight-proportional table for v, or nil
	// when the provider has none (the engine then builds locally).
	StaticSampler(v graph.VertexID) sampling.StaticSampler
	// StaticKind reports the structure the tables use: "alias" or "its".
	StaticKind() string
}

// CheckpointSink stores consistent superstep snapshots. Implementations
// must be safe for concurrent WriteSegment calls from different ranks.
// internal/checkpoint.Store is the production implementation.
type CheckpointSink interface {
	// Interval returns the snapshot period in supersteps (>= 1). It must be
	// constant for the duration of a run so every rank triggers at the same
	// barriers.
	Interval() int
	// WriteSegment durably stores one rank's snapshot blob for the given
	// superstep and returns its stored size and checksum.
	WriteSegment(iteration, rank int, blob []byte) (SegmentInfo, error)
	// Commit finalizes iteration's checkpoint; the engine calls it on rank 0
	// only, after every rank's segment is durable (segments are sorted by
	// rank and complete).
	Commit(iteration int, segments []SegmentInfo) error
}

// SegmentInfo describes one durably written checkpoint segment.
type SegmentInfo struct {
	Rank int
	Size int64
	CRC  uint64
}

// RestoreState carries a decoded checkpoint into Run or RunNode.
type RestoreState struct {
	// Iteration is the superstep at which the snapshot was taken; the
	// resumed run continues counting from it.
	Iteration int
	// Segments holds each rank's snapshot blob, indexed by rank. A
	// multi-process rank needs at least its own entry; entries for other
	// ranks are ignored except that RunNode merges only the result section
	// of this rank's segment while Run merges every present one.
	Segments [][]byte
}

// Result summarizes a run.
type Result struct {
	// Iterations is the number of supersteps executed.
	Iterations int
	// Counters is the final counter snapshot.
	Counters stats.Snapshot
	// Lengths is the walk-length histogram (steps at termination).
	Lengths *stats.Histogram
	// Paths holds per-walker vertex sequences when RecordPaths was set
	// (indexed by walker ID), nil otherwise.
	Paths [][]graph.VertexID
	// Visits holds per-vertex visit counts when CountVisits was set, nil
	// otherwise.
	Visits []int64
	// Duration is the wall-clock walk time (excluding initialization, as
	// in the paper's methodology it *includes* walker/sampler setup; see
	// SetupDuration).
	Duration time.Duration
	// SetupDuration is the sampler/walker initialization time.
	SetupDuration time.Duration
	// LightIterations counts supersteps rank 0 spent in light mode.
	LightIterations int
}

// Run executes the walk described by cfg and returns the result.
func Run(cfg Config) (*Result, error) {
	eps := cfg.Endpoints
	if eps == nil {
		n := cfg.NumNodes
		if n <= 0 {
			n = 1
		}
		eps = transport.NewInProcGroup(n)
	}
	if tobs, ok := cfg.Observer.(transport.Observer); ok {
		observed := make([]transport.Endpoint, len(eps))
		for i, ep := range eps {
			observed[i] = transport.WithObserver(ep, tobs)
		}
		eps = observed
	}
	if cfg.NetTimeout > 0 {
		guarded := make([]transport.Endpoint, len(eps))
		for i, ep := range eps {
			guarded[i] = transport.WithExchangeTimeout(ep, cfg.NetTimeout)
		}
		eps = guarded
	}
	numNodes := len(eps)
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &stats.Counters{}
	}

	part, err := cfg.partition(numNodes)
	if err != nil {
		return nil, err
	}
	res := newResult(&cfg)

	setupStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	if cfg.Restore != nil {
		// One process hosts every rank, so this process owns the whole
		// result set: merge the result sections of every segment (one for a
		// Run-written checkpoint, one per rank for a RunNode-written one).
		restoreStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		ranks := make([]int, numNodes)
		for i := range ranks {
			ranks[i] = i
		}
		if err := applyRestoredResults(cfg.Restore, ranks, res, counters); err != nil {
			return nil, err
		}
		counters.RestoreNanos.Add(time.Since(restoreStart).Nanoseconds()) //kk:nondet-ok telemetry-only timing; never feeds walk state
	}
	nodes := make([]*node, numNodes)
	for rank := 0; rank < numNodes; rank++ {
		n, err := newNode(rank, &cfg, part, eps[rank], counters, res, rank == 0)
		if err != nil {
			return nil, err
		}
		nodes[rank] = n
	}
	res.SetupDuration = time.Since(setupStart) //kk:nondet-ok telemetry-only timing; never feeds walk state

	walkStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	var iterations atomic.Int64
	var lightIters atomic.Int64
	err = cluster.Run(eps, func(rank int, ep transport.Endpoint) error {
		n := nodes[rank]
		iters, light, err := n.run()
		if rank == 0 {
			iterations.Store(int64(iters))
			lightIters.Store(int64(light))
		}
		return err
	})
	res.Duration = time.Since(walkStart) //kk:nondet-ok telemetry-only timing; never feeds walk state
	if err != nil {
		return nil, err
	}
	res.Iterations = int(iterations.Load())
	res.LightIterations = int(lightIters.Load())

	var msgs, bytes int64
	for _, ep := range eps {
		m, b := ep.Stats()
		msgs += m
		bytes += b
	}
	counters.Messages.Store(msgs)
	counters.BytesSent.Store(bytes)
	res.Counters = counters.Snapshot()
	return res, nil
}

// RunNode executes one rank's share of a *multi-process* distributed walk:
// the caller brings up a transport endpoint (typically via
// transport.DialTCPGroup, one OS process per rank — the paper's MPI
// deployment model), and every process calls RunNode with an identical
// Config (same graph, algorithm, and seed). The returned Result covers
// only this node's share: walkers that terminated here, visits to owned
// vertices' destinations made here, and this endpoint's traffic. Counter
// and histogram values must be summed across ranks for cluster totals;
// walker paths are disjoint across ranks and can be concatenated.
func RunNode(cfg Config, ep transport.Endpoint) (*Result, error) {
	if ep == nil {
		return nil, fmt.Errorf("core: RunNode requires an endpoint")
	}
	if tobs, ok := cfg.Observer.(transport.Observer); ok {
		ep = transport.WithObserver(ep, tobs)
	}
	ep = transport.WithExchangeTimeout(ep, cfg.NetTimeout)
	cfg.Endpoints = nil
	cfg.NumNodes = ep.Size()
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &stats.Counters{}
	}
	part, err := cfg.partition(ep.Size())
	if err != nil {
		return nil, err
	}
	res := newResult(&cfg)

	setupStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	if cfg.Restore != nil {
		// Each process owns only its rank's share of the results; merging
		// exactly the rank-matching result section keeps cluster-wide sums
		// correct without double counting across processes.
		restoreStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		if err := applyRestoredResults(cfg.Restore, []int{ep.Rank()}, res, counters); err != nil {
			return nil, err
		}
		counters.RestoreNanos.Add(time.Since(restoreStart).Nanoseconds()) //kk:nondet-ok telemetry-only timing; never feeds walk state
	}
	n, err := newNode(ep.Rank(), &cfg, part, ep, counters, res, true)
	if err != nil {
		return nil, err
	}
	res.SetupDuration = time.Since(setupStart) //kk:nondet-ok telemetry-only timing; never feeds walk state

	walkStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	iters, light, runErr := n.run()
	res.Duration = time.Since(walkStart) //kk:nondet-ok telemetry-only timing; never feeds walk state
	if runErr != nil {
		return nil, runErr
	}
	res.Iterations = iters
	res.LightIterations = light

	m, b := ep.Stats()
	counters.Messages.Store(m)
	counters.BytesSent.Store(b)
	res.Counters = counters.Snapshot()
	return res, nil
}

// normalize validates cfg and fills defaults.
func (cfg *Config) normalize() error {
	if cfg.Graph == nil || cfg.Algorithm == nil {
		return fmt.Errorf("core: Config requires Graph and Algorithm")
	}
	if err := cfg.Algorithm.validate(cfg.Graph); err != nil {
		return err
	}
	if cfg.Graph.NumVertices() == 0 {
		return fmt.Errorf("core: empty graph")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.NumWalkers <= 0 {
		cfg.NumWalkers = cfg.Graph.NumVertices()
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10_000_000
	}
	if cfg.LightThreshold == 0 {
		cfg.LightThreshold = DefaultLightThreshold
	}
	if cfg.PartitionAlpha == 0 {
		cfg.PartitionAlpha = 1
	}
	switch cfg.SamplerKind {
	case "", "alias", "its":
	default:
		return fmt.Errorf("core: unknown SamplerKind %q (want alias or its)", cfg.SamplerKind)
	}
	if cfg.StartVertex != nil && cfg.StartWeights != nil {
		return fmt.Errorf("core: StartVertex and StartWeights are mutually exclusive")
	}
	if cfg.StartWeights != nil && len(cfg.StartWeights) != cfg.Graph.NumVertices() {
		return fmt.Errorf("core: StartWeights length %d != |V| %d", len(cfg.StartWeights), cfg.Graph.NumVertices())
	}
	return nil
}

// partition resolves the vertex partition for numNodes ranks.
func (cfg *Config) partition(numNodes int) (*cluster.Partition, error) {
	if cfg.PartitionStarts != nil {
		if len(cfg.PartitionStarts) != numNodes+1 {
			return nil, fmt.Errorf("core: PartitionStarts has %d boundaries, want %d",
				len(cfg.PartitionStarts), numNodes+1)
		}
		if int(cfg.PartitionStarts[numNodes]) != cfg.Graph.NumVertices() {
			return nil, fmt.Errorf("core: PartitionStarts does not cover |V|=%d", cfg.Graph.NumVertices())
		}
		return cluster.NewPartition(cfg.PartitionStarts)
	}
	if cfg.Graph.Partial() {
		return nil, fmt.Errorf("core: a partition-local graph requires explicit PartitionStarts")
	}
	return cluster.Partition1D(cfg.Graph, numNodes, cfg.PartitionAlpha), nil
}

// newResult allocates the result sinks for a run.
func newResult(cfg *Config) *Result {
	histSize := cfg.Algorithm.MaxSteps
	if histSize <= 0 {
		histSize = 4096
	}
	res := &Result{Lengths: stats.NewHistogram(histSize + 1)}
	if cfg.RecordPaths {
		res.Paths = make([][]graph.VertexID, cfg.NumWalkers)
	}
	if cfg.CountVisits {
		res.Visits = make([]int64, cfg.Graph.NumVertices())
	}
	return res
}

// node is one logical cluster node: a vertex partition, its precomputed
// samplers, and the walkers currently residing on it.
type node struct {
	rank     int
	cfg      *Config
	g        *graph.Graph
	alg      *Algorithm
	part     *cluster.Partition
	ep       transport.Endpoint
	lo, hi   graph.VertexID
	counters *stats.Counters
	res      *Result

	// Per owned vertex (index v-lo): static sampler and rejection
	// dartboard (dynamic algorithms only). nil for degree-0 vertices.
	samplers   []sampling.StaticSampler
	rejections []*sampling.Rejection

	walkers  []*Walker
	awaiting map[int64]*Walker

	inFlight int64 // migrations sent but not yet counted by their receiver

	// obs receives telemetry when Config.Observer is set. The step*
	// accumulators collect the current superstep's exchange time and
	// received traffic; they are only touched from the node's loop
	// goroutine (exchange is never called from workers).
	obs           Observer
	stepExchange  int64
	stepRecvMsgs  int64
	stepRecvBytes int64

	// ownsResult marks the node whose snapshot segments carry the process's
	// result sinks (paths, visits, histogram) and counters: rank 0 under
	// Run (sinks are process-shared), every rank under RunNode.
	ownsResult bool
	// startIter is the superstep the node resumes from (0 for a fresh run).
	startIter int
	// resumed marks a node restored from a checkpoint, which must re-issue
	// the outstanding queries of its awaiting walkers before the first
	// exchange.
	resumed bool
}

func newNode(rank int, cfg *Config, part *cluster.Partition, ep transport.Endpoint, counters *stats.Counters, res *Result, ownsResult bool) (*node, error) {
	n := &node{
		rank:       rank,
		cfg:        cfg,
		g:          cfg.Graph,
		alg:        cfg.Algorithm,
		part:       part,
		ep:         ep,
		counters:   counters,
		res:        res,
		awaiting:   make(map[int64]*Walker),
		ownsResult: ownsResult,
		obs:        cfg.Observer,
	}
	n.lo, n.hi = part.Range(rank)
	n.buildSamplers()
	if cfg.Restore != nil {
		restoreStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		if err := n.restoreSnapshot(cfg.Restore); err != nil {
			return nil, err
		}
		counters.RestoreNanos.Add(time.Since(restoreStart).Nanoseconds()) //kk:nondet-ok telemetry-only timing; never feeds walk state
	} else {
		n.seedWalkers()
	}
	return n, nil
}

// buildSamplers precomputes the per-vertex static samplers (alias tables
// for biased walks) and rejection dartboards, the paper's initialization
// step.
func (n *node) buildSamplers() {
	count := int(n.hi - n.lo)
	n.samplers = make([]sampling.StaticSampler, count)
	if n.alg.dynamic() {
		n.rejections = make([]*sampling.Rejection, count)
	}
	// A sampler provider replaces local construction only when its tables
	// are exactly what the build loop would produce: edge-weight statics
	// (Biased, no EdgeStaticComp) of the matching structure kind.
	provider := n.cfg.Samplers
	if provider != nil {
		kind := n.cfg.SamplerKind
		if kind == "" {
			kind = "alias"
		}
		if !n.alg.Biased || n.alg.EdgeStaticComp != nil || provider.StaticKind() != kind {
			provider = nil
		}
	}
	for i := 0; i < count; i++ {
		v := n.lo + graph.VertexID(i)
		deg := n.g.Degree(v)
		if deg == 0 {
			continue
		}
		var s sampling.StaticSampler
		if provider != nil {
			if pre := provider.StaticSampler(v); pre != nil {
				if pre.N() != deg {
					panic(fmt.Sprintf("core: provided sampler of vertex %d covers %d edges, degree is %d (stale epoch?)", v, pre.N(), deg))
				}
				s = pre
			}
		}
		switch {
		case s != nil: // provided above
		case n.alg.uniformStatic():
			s = sampling.NewUniform(deg)
		default:
			weights := make([]float32, deg)
			for j := 0; j < deg; j++ {
				weights[j] = n.alg.staticWeight(n.g, v, j)
			}
			var err error
			if n.cfg.SamplerKind == "its" {
				s, err = sampling.NewITS(weights)
			} else {
				s, err = sampling.NewAlias(weights)
			}
			if err != nil {
				panic(fmt.Sprintf("core: vertex %d static weights: %v", v, err))
			}
		}
		n.samplers[i] = s
		if n.alg.dynamic() {
			q := n.alg.UpperBound(n.g, v)
			l := 0.0
			if n.alg.LowerBound != nil {
				l = n.alg.LowerBound(n.g, v)
			}
			var apps []sampling.Appendix
			if n.alg.Outliers != nil {
				apps = n.alg.Outliers(n.g, v)
			}
			n.rejections[i] = sampling.NewRejection(s, q, l, apps)
		}
	}
}

// seedWalkers creates the walkers whose start vertex this node owns.
// Every node derives every walker's start deterministically (from the
// config or the walker's own stream), so no coordination is needed to
// agree on placement.
func (n *node) seedWalkers() {
	numV := int64(n.g.NumVertices())
	var startDist *sampling.ITS
	if n.cfg.StartWeights != nil {
		its, err := sampling.NewITS(n.cfg.StartWeights)
		if err != nil {
			panic(fmt.Sprintf("core: StartWeights: %v", err))
		}
		startDist = its
	}
	for id := int64(0); id < int64(n.cfg.NumWalkers); id++ {
		w := &Walker{ID: id, R: *rng.NewStream(n.cfg.Seed, uint64(id))}
		var start graph.VertexID
		switch {
		case startDist != nil:
			start = graph.VertexID(startDist.Sample(&w.R))
		case n.cfg.StartVertex != nil:
			start = n.cfg.StartVertex(id)
		default:
			start = graph.VertexID(id % numV)
		}
		if !n.part.Owns(n.rank, start) {
			continue
		}
		w.Cur = start
		w.Origin = start
		if n.cfg.RecordPaths {
			w.Path = []graph.VertexID{start}
		}
		if n.alg.InitWalker != nil {
			n.alg.InitWalker(w, &w.R)
		}
		n.walkers = append(n.walkers, w)
	}
}

// outBufs accumulates batched outgoing records for one phase. Each worker
// owns its own outBufs, so no locking is needed while encoding.
type outBufs struct {
	size       int
	migrate    [][]byte
	query      [][]byte
	response   [][]byte
	migrations int64
}

func newOutBufs(size int) *outBufs {
	return &outBufs{
		size:     size,
		migrate:  make([][]byte, size),
		query:    make([][]byte, size),
		response: make([][]byte, size),
	}
}

func (o *outBufs) addMigration(dest int, w *Walker) {
	o.migrate[dest] = encodeWalker(o.migrate[dest], w)
	o.migrations++
}

func (o *outBufs) addQuery(dest int, walkerID int64, target graph.VertexID, arg uint64) {
	var rec [20]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(walkerID))
	binary.LittleEndian.PutUint32(rec[8:], target)
	binary.LittleEndian.PutUint64(rec[12:], arg)
	o.query[dest] = append(o.query[dest], rec[:]...)
}

func (o *outBufs) addResponse(dest int, walkerID int64, result uint64) {
	var rec [16]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(walkerID))
	binary.LittleEndian.PutUint64(rec[8:], result)
	o.response[dest] = append(o.response[dest], rec[:]...)
}

// flush sends all non-empty buffers.
func (o *outBufs) flush(ep transport.Endpoint) {
	for dest := 0; dest < o.size; dest++ {
		if len(o.migrate[dest]) > 0 {
			ep.Send(dest, kMigrate, o.migrate[dest])
			o.migrate[dest] = nil
		}
		if len(o.query[dest]) > 0 {
			ep.Send(dest, kQuery, o.query[dest])
			o.query[dest] = nil
		}
		if len(o.response[dest]) > 0 {
			ep.Send(dest, kResponse, o.response[dest])
			o.response[dest] = nil
		}
	}
}

// exchange runs one collective exchange, accumulating its wall time (wire
// transfer plus barrier wait) into the ExchangeNanos counter so that
// communication cost is separable from compute in run summaries.
func (n *node) exchange() ([]transport.Message, error) {
	start := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	msgs, err := n.ep.Exchange()
	d := time.Since(start).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state
	n.counters.ExchangeNanos.Add(d)
	if n.obs != nil {
		n.stepExchange += d
		n.stepRecvMsgs += int64(len(msgs))
		for _, m := range msgs {
			n.stepRecvBytes += int64(len(m.Payload))
		}
	}
	return msgs, err
}

// run executes the BSP superstep loop (paper §5.1). Every superstep has
// one exchange for static/first-order walks, or two for higher-order walks
// (queries out + responses back), exactly the structure the paper
// describes.
func (n *node) run() (iterations, lightIters int, err error) {
	twoRound := n.alg.higherOrder()
	iterations = n.startIter
	if n.resumed {
		n.resendPendingQueries()
	}
	for {
		iterations++
		if iterations > n.cfg.MaxIterations {
			return iterations, lightIters, fmt.Errorf("core: exceeded %d supersteps; walk not converging", n.cfg.MaxIterations)
		}
		start := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		active := len(n.walkers)
		light := n.lightMode(active)
		if light {
			lightIters++
		}

		// Span accumulators for this superstep; exchange time and received
		// traffic land in the node's step* fields via exchange().
		var computeNanos, ckptNanos, globalCount int64
		n.stepExchange, n.stepRecvMsgs, n.stepRecvBytes = 0, 0, 0
		emitSpan := func() {
			if n.obs == nil {
				return
			}
			barrier := time.Since(start).Nanoseconds() - computeNanos - n.stepExchange - ckptNanos //kk:nondet-ok telemetry-only timing; never feeds walk state
			if barrier < 0 {
				barrier = 0
			}
			n.obs.OnSuperstep(SuperstepSpan{
				Rank:            n.rank,
				Iteration:       iterations,
				LightMode:       light,
				LocalWalkers:    active,
				GlobalWalkers:   globalCount,
				RecvMessages:    n.stepRecvMsgs,
				RecvBytes:       n.stepRecvBytes,
				ComputeNanos:    computeNanos,
				ExchangeNanos:   n.stepExchange,
				BarrierNanos:    barrier,
				CheckpointNanos: ckptNanos,
			})
		}

		// Phase A: local walker processing (trials, local moves, query and
		// migration generation).
		parked := n.phaseA(light)
		for _, w := range parked {
			n.awaiting[w.ID] = w
		}

		// Send this node's live-walker count to every rank, then exchange.
		// A locally observed cancellation rides along as a broadcast: the
		// decision to stop is taken from the union of requests received at
		// the barrier, so every rank stops at the same superstep.
		count := int64(len(n.walkers)) + n.inFlight
		var cb [8]byte
		binary.LittleEndian.PutUint64(cb[:], uint64(count))
		for dest := 0; dest < n.ep.Size(); dest++ {
			n.ep.Send(dest, kCount, cb[:])
		}
		if n.cancelRequested() {
			for dest := 0; dest < n.ep.Size(); dest++ {
				n.ep.Send(dest, kCancel, []byte{1})
			}
		}
		n.inFlight = 0
		computeNanos += time.Since(start).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state

		msgs, err := n.exchange()
		if err != nil {
			return iterations, lightIters, err
		}

		demuxStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		var global int64
		var cancelled bool
		var queryMsgs []transport.Message
		for _, m := range msgs {
			switch m.Kind {
			case kCount:
				if len(m.Payload) != 8 {
					return iterations, lightIters, fmt.Errorf("core: malformed count message (%d bytes) from rank %d", len(m.Payload), m.From)
				}
				global += int64(binary.LittleEndian.Uint64(m.Payload))
			case kMigrate:
				if err := n.receiveWalkers(m.Payload); err != nil {
					return iterations, lightIters, err
				}
			case kQuery:
				queryMsgs = append(queryMsgs, m)
			case kCancel:
				cancelled = true
			default:
				return iterations, lightIters, fmt.Errorf("core: unexpected message kind %d in round 1", m.Kind)
			}
		}
		globalCount = global
		computeNanos += time.Since(demuxStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state

		if n.rank == 0 && n.cfg.IterLog != nil {
			n.cfg.IterLog.Append(stats.IterationRecord{
				Iteration:     iterations,
				ActiveWalkers: global,
				Duration:      time.Since(start), //kk:nondet-ok telemetry-only timing; never feeds walk state
				LightMode:     light,
			})
		}
		if global == 0 {
			emitSpan()
			return iterations, lightIters, nil
		}
		// Abort after the count barrier but before any checkpoint write:
		// every migration up to this superstep has been delivered, so the
		// newest committed checkpoint (if any) stays the consistent resume
		// point and no superstep is ever half-snapshotted.
		if cancelled {
			emitSpan()
			return iterations, lightIters, fmt.Errorf("%w at superstep %d", ErrCancelled, iterations)
		}

		// Checkpoint at the barrier: every migration sent up to this
		// superstep has been delivered and folded into some rank's walker
		// list, no responses are outstanding, and the only in-flight
		// records — this superstep's state queries — are re-derivable from
		// the parked walkers' pending darts. The cut is therefore fully
		// described by the per-rank walker sets.
		if n.checkpointDue(iterations) {
			// The checkpoint barrier is an extra Exchange, and under the
			// transport's ownership contract that invalidates this
			// superstep's received payloads. The query batches are still
			// needed by phase B, so move them out of the recyclable frame
			// buffers first.
			for i := range queryMsgs {
				queryMsgs[i].Payload = append([]byte(nil), queryMsgs[i].Payload...)
			}
			// The commit barrier's exchange time belongs to the checkpoint
			// phase of the span, not the exchange phase.
			preExchange := n.stepExchange
			ckptStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
			if err := n.writeCheckpoint(iterations); err != nil {
				return iterations, lightIters, err
			}
			ckptNanos = time.Since(ckptStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state
			n.stepExchange = preExchange
		}
		if !twoRound {
			emitSpan()
			continue
		}

		// Phase B: answer incoming state queries, in parallel chunks (the
		// paper schedules "chunks of either walkers or messages"; walkers
		// were phase A, messages are here).
		phaseBStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		if err := n.phaseB(queryMsgs, light); err != nil {
			return iterations, lightIters, err
		}
		computeNanos += time.Since(phaseBStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state

		msgs, err = n.exchange()
		if err != nil {
			return iterations, lightIters, err
		}

		// Phase C: resolve pending darts with the returned results.
		phaseCStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		out := newOutBufs(n.ep.Size())
		for _, m := range msgs {
			if m.Kind != kResponse {
				return iterations, lightIters, fmt.Errorf("core: unexpected message kind %d in round 2", m.Kind)
			}
			if err := n.applyResponses(m.Payload, out); err != nil {
				return iterations, lightIters, err
			}
		}
		n.inFlight += out.migrations
		out.flush(n.ep)                                       // delivered at next superstep's first exchange
		computeNanos += time.Since(phaseCStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state
		emitSpan()
	}
}

// cancelRequested polls the run's cancel channel without blocking. Walk
// state never depends on the poll's outcome within a superstep: a
// cancelled run produces no result at all, and an uncancelled run is
// untouched, so determinism from the seed is preserved.
func (n *node) cancelRequested() bool {
	if n.cfg.Cancel == nil {
		return false
	}
	select {
	case <-n.cfg.Cancel:
		return true
	default:
		return false
	}
}

// lightMode reports whether this node should shrink to one worker.
func (n *node) lightMode(active int) bool {
	return n.cfg.LightThreshold > 0 && active < n.cfg.LightThreshold
}

// phaseA processes every ready walker once (to a move, a termination, or a
// parked query), in parallel chunks, then compacts the walker list.
// Returns the walkers parked on queries this phase.
func (n *node) phaseA(light bool) []*Walker {
	workers := n.cfg.Workers
	if light {
		workers = 1
	}
	ws := n.walkers
	keep := make([]bool, len(ws))
	workerParked := make([][]*Walker, workers)
	workerBufs := make([]*outBufs, workers)

	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			out := newOutBufs(n.ep.Size())
			workerBufs[wk] = out
			for {
				base := int(next.Add(walkerChunk)) - walkerChunk
				if base >= len(ws) {
					return
				}
				end := base + walkerChunk
				if end > len(ws) {
					end = len(ws)
				}
				for i := base; i < end; i++ {
					w := ws[i]
					if w.awaiting {
						keep[i] = true // parked in an earlier superstep
						continue
					}
					k, parked := n.processReady(w, out)
					keep[i] = k
					if parked {
						workerParked[wk] = append(workerParked[wk], w)
					}
				}
			}
		}(wk)
	}
	wg.Wait()

	kept := ws[:0]
	for i, w := range ws {
		if keep[i] {
			kept = append(kept, w)
		}
	}
	n.walkers = kept

	var parked []*Walker
	for wk := 0; wk < workers; wk++ {
		parked = append(parked, workerParked[wk]...)
		n.inFlight += workerBufs[wk].migrations
		workerBufs[wk].flush(n.ep)
	}
	return parked
}

// processReady advances walker w by at most one step. It returns whether w
// stays in this node's walker list and whether it parked on a remote query.
func (n *node) processReady(w *Walker, out *outBufs) (keep, parked bool) {
	if !w.sampling {
		// Step-boundary termination checks (the Pe component).
		if n.alg.MaxSteps > 0 && int(w.Step) >= n.alg.MaxSteps {
			n.finish(w)
			return false, false
		}
		if n.alg.TerminationProb > 0 && w.R.Bernoulli(n.alg.TerminationProb) {
			n.finish(w)
			return false, false
		}
		if n.alg.RestartProb > 0 && w.R.Bernoulli(n.alg.RestartProb) {
			return n.teleport(w, out), false
		}
		if n.g.Degree(w.Cur) == 0 {
			n.finish(w)
			return false, false
		}
		w.sampling = true
	}

	if !n.alg.dynamic() {
		// Static walk: sample directly from the precomputed table; no
		// rejection step, no Pd evaluations (paper: "executes its unified
		// sampling workflow, but without actually performing rejection
		// sampling").
		n.counters.Trials.Add(1)
		idx := n.samplerOf(w.Cur).Sample(&w.R)
		if n.obs != nil {
			n.obs.ObserveStepTrials(1)
		}
		return n.move(w, idx, out), false
	}

	rj := n.rejectionOf(w.Cur)
	fallbackAt := n.alg.fallbackTrials()
	for trials := 0; ; trials++ {
		if trials >= fallbackAt {
			if !n.alg.higherOrder() {
				return n.fullScanStep(w, out), false
			}
			// Remote Pd rules out an exact full scan; check for dead ends
			// if the algorithm can, otherwise yield and retry next
			// superstep.
			if n.alg.ZeroMassCheck != nil && n.alg.ZeroMassCheck(n.g, w.Cur, w) {
				n.finish(w)
				return false, false
			}
			return true, false
		}
		n.counters.Trials.Add(1)
		p := rj.Propose(&w.R)
		if p.Appendix >= 0 {
			n.counters.AppendixHits.Add(1)
			tag := rj.Appendices()[p.Appendix].Tag
			idx := n.alg.LocateOutlier(n.g, w.Cur, w, tag)
			if idx < 0 {
				continue
			}
			e := n.g.EdgeAt(w.Cur, idx)
			pd := n.alg.EdgeDynamicComp(w, e, 0, false)
			n.counters.EdgeProbEvals.Add(1)
			prob := rj.AppendixAcceptProb(p, n.samplerOf(w.Cur).WeightAt(idx), pd)
			if w.R.Bernoulli(prob) {
				if n.obs != nil {
					n.obs.ObserveStepTrials(int64(trials) + 1)
				}
				return n.move(w, idx, out), false
			}
			continue
		}
		if p.PreAccepted {
			n.counters.PreAccepts.Add(1)
			if n.obs != nil {
				n.obs.ObserveStepTrials(int64(trials) + 1)
			}
			return n.move(w, p.EdgeIdx, out), false
		}
		e := n.g.EdgeAt(w.Cur, p.EdgeIdx)
		if n.alg.higherOrder() {
			if target, arg, needed := n.alg.PostQuery(w, e); needed {
				w.awaiting = true
				w.pendingEdge = int32(p.EdgeIdx)
				w.pendingY = p.Y
				w.pendingTarget = target
				w.pendingArg = arg
				out.addQuery(n.part.Owner(target), w.ID, target, arg)
				n.counters.Queries.Add(1)
				return true, true
			}
		}
		pd := n.alg.EdgeDynamicComp(w, e, 0, false)
		n.counters.EdgeProbEvals.Add(1)
		if rj.AcceptMain(p, pd) {
			if n.obs != nil {
				n.obs.ObserveStepTrials(int64(trials) + 1)
			}
			return n.move(w, p.EdgeIdx, out), false
		}
	}
}

// fullScanStep is the exact O(deg) fallback used after FallbackTrials
// consecutive rejections at one vertex: evaluate Pd for every edge, sample
// the product distribution directly, or terminate the walk when no edge
// has positive probability (the paper's "no out edges ... are eligible").
func (n *node) fullScanStep(w *Walker, out *outBufs) (keep bool) {
	deg := n.g.Degree(w.Cur)
	s := n.samplerOf(w.Cur)
	weights := make([]float64, deg)
	total := 0.0
	for i := 0; i < deg; i++ {
		e := n.g.EdgeAt(w.Cur, i)
		pd := n.alg.EdgeDynamicComp(w, e, 0, false)
		n.counters.EdgeProbEvals.Add(1)
		weights[i] = s.WeightAt(i) * pd
		total += weights[i]
	}
	if total <= 0 {
		n.finish(w)
		return false
	}
	its, err := sampling.NewITSFromFloat64(weights)
	if err != nil {
		panic(fmt.Sprintf("core: full-scan fallback at vertex %d: %v", w.Cur, err))
	}
	n.counters.Trials.Add(1)
	if n.obs != nil {
		// The step completed only after FallbackTrials rejected darts plus
		// the exact draw; record the whole burst.
		n.obs.ObserveStepTrials(int64(n.alg.fallbackTrials()) + 1)
	}
	return n.move(w, its.Sample(&w.R), out)
}

// move advances w along its current vertex's edgeIdx-th edge, migrating it
// when the destination is owned elsewhere. Returns whether w stays local.
func (n *node) move(w *Walker, edgeIdx int, out *outBufs) bool {
	dst := n.g.Neighbors(w.Cur)[edgeIdx]
	n.counters.Steps.Add(1)
	return n.relocate(w, dst, out)
}

// teleport jumps w back to its origin (restart), counting a step of walk
// length but not an edge traversal.
func (n *node) teleport(w *Walker, out *outBufs) bool {
	n.counters.Restarts.Add(1)
	return n.relocate(w, w.Origin, out)
}

// relocate places w at dst, updating state, visit counts, and path, and
// migrating the walker if dst is owned by another node.
func (n *node) relocate(w *Walker, dst graph.VertexID, out *outBufs) bool {
	if k := n.alg.HistorySize; k > 0 {
		w.History = append(w.History, w.Cur)
		if len(w.History) > k {
			copy(w.History, w.History[len(w.History)-k:])
			w.History = w.History[:k]
		}
	}
	w.Prev = w.Cur
	w.Cur = dst
	w.Step++
	w.sampling = false
	if w.Path != nil {
		w.Path = append(w.Path, dst)
	}
	if n.res.Visits != nil {
		atomic.AddInt64(&n.res.Visits[dst], 1)
	}
	if n.part.Owns(n.rank, dst) {
		return true
	}
	out.addMigration(n.part.Owner(dst), w)
	return false
}

// finish retires a walker and records its results.
func (n *node) finish(w *Walker) {
	n.counters.Terminations.Add(1)
	n.res.Lengths.Observe(int64(w.Step))
	if n.res.Paths != nil {
		n.res.Paths[w.ID] = w.Path
	}
}

// receiveWalkers decodes a migration batch into the local walker list.
func (n *node) receiveWalkers(payload []byte) error {
	for len(payload) > 0 {
		w, rest, err := decodeWalker(payload)
		if err != nil {
			return err
		}
		payload = rest
		n.walkers = append(n.walkers, w)
	}
	return nil
}

// queryRecordLen is the wire size of one state-query record.
const queryRecordLen = 20

// phaseB answers all incoming state queries, processing chunks of records
// in parallel (chunk size 128, matching the walker chunks) and flushing
// each worker's batched responses.
func (n *node) phaseB(queryMsgs []transport.Message, light bool) error {
	var total int
	for _, m := range queryMsgs {
		if len(m.Payload)%queryRecordLen != 0 {
			return fmt.Errorf("core: malformed query batch (%d bytes)", len(m.Payload))
		}
		total += len(m.Payload) / queryRecordLen
		if n.obs != nil {
			n.obs.ObserveQueryBatch(int64(len(m.Payload) / queryRecordLen))
		}
	}
	if total == 0 {
		return nil
	}

	// Flatten message boundaries into a global record index space.
	spans := make([]querySpan, len(queryMsgs))
	idx := 0
	for i, m := range queryMsgs {
		spans[i] = querySpan{m: m, first: idx}
		idx += len(m.Payload) / queryRecordLen
	}

	workers := n.cfg.Workers
	if light || workers > (total+walkerChunk-1)/walkerChunk {
		workers = 1
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			out := newOutBufs(n.ep.Size())
			for {
				base := int(next.Add(walkerChunk)) - walkerChunk
				if base >= total {
					break
				}
				end := base + walkerChunk
				if end > total {
					end = total
				}
				if err := n.answerQueryRange(spans, base, end, out); err != nil {
					errs[wk] = err
					break
				}
			}
			out.flush(n.ep)
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// querySpan indexes one incoming query batch within the flattened global
// record space of a phase B.
type querySpan struct {
	m     transport.Message
	first int // global index of the batch's first record
}

// answerQueryRange answers the global record range [base, end) against the
// flattened query spans.
func (n *node) answerQueryRange(spans []querySpan, base, end int, out *outBufs) error {
	// Locate the span containing base.
	si := 0
	for si+1 < len(spans) && spans[si+1].first <= base {
		si++
	}
	for i := base; i < end; {
		sp := spans[si]
		count := len(sp.m.Payload) / queryRecordLen
		local := i - sp.first
		if local >= count {
			si++
			continue
		}
		off := local * queryRecordLen
		payload := sp.m.Payload
		walkerID := int64(binary.LittleEndian.Uint64(payload[off:]))
		target := binary.LittleEndian.Uint32(payload[off+8:])
		arg := binary.LittleEndian.Uint64(payload[off+12:])
		if !n.part.Owns(n.rank, target) {
			return fmt.Errorf("core: query for vertex %d routed to wrong node %d", target, n.rank)
		}
		out.addResponse(sp.m.From, walkerID, n.alg.answerQuery(n.g, target, arg))
		i++
	}
	return nil
}

// applyResponses resolves parked walkers' pending darts.
func (n *node) applyResponses(payload []byte, out *outBufs) error {
	if len(payload)%16 != 0 {
		return fmt.Errorf("core: malformed response batch (%d bytes)", len(payload))
	}
	for off := 0; off < len(payload); off += 16 {
		walkerID := int64(binary.LittleEndian.Uint64(payload[off:]))
		result := binary.LittleEndian.Uint64(payload[off+8:])
		w, ok := n.awaiting[walkerID]
		if !ok {
			return fmt.Errorf("core: response for unknown walker %d", walkerID)
		}
		delete(n.awaiting, walkerID)
		w.awaiting = false

		e := n.g.EdgeAt(w.Cur, int(w.pendingEdge))
		pd := n.alg.EdgeDynamicComp(w, e, result, true)
		n.counters.EdgeProbEvals.Add(1)
		rj := n.rejectionOf(w.Cur)
		p := sampling.Proposal{EdgeIdx: int(w.pendingEdge), Appendix: -1, Y: w.pendingY}
		if rj.AcceptMain(p, pd) {
			// The accepted dart was thrown in an earlier phase A burst whose
			// count is no longer tracked; observe the resolving dart alone.
			if n.obs != nil {
				n.obs.ObserveStepTrials(1)
			}
			if !n.move(w, int(w.pendingEdge), out) {
				n.removeWalker(w)
			}
		}
		// On rejection the walker simply stays mid-step (sampling == true)
		// and retries at the next superstep — the paper's "less fortunate
		// ones stuck at their current vertex for the next iteration".
	}
	return nil
}

// removeWalker drops a migrated walker from the local list (slow path,
// only used when a phase-C acceptance crosses nodes).
func (n *node) removeWalker(w *Walker) {
	for i, x := range n.walkers {
		if x == w {
			last := len(n.walkers) - 1
			n.walkers[i] = n.walkers[last]
			n.walkers = n.walkers[:last]
			return
		}
	}
	panic(fmt.Sprintf("core: walker %d not found for removal", w.ID))
}

func (n *node) samplerOf(v graph.VertexID) sampling.StaticSampler {
	return n.samplers[v-n.lo]
}

func (n *node) rejectionOf(v graph.VertexID) *sampling.Rejection {
	return n.rejections[v-n.lo]
}
