package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knightking/internal/cluster"
	"knightking/internal/graph"
	"knightking/internal/rng"
	"knightking/internal/sampling"
	"knightking/internal/stats"
	"knightking/internal/transport"
)

// Message kinds on the wire.
const (
	kMigrate  uint8 = iota + 1 // batched walker records
	kQuery                     // batched state-query records
	kResponse                  // batched query-response records
	kCount                     // one int64: sender's live-walker count
	kCkpt                      // one checkpoint segment descriptor, sent to rank 0
	kCancel                    // cancellation request, broadcast to every rank
)

// Chunk size for dynamic task scheduling, matching the paper's setting
// (§6.2: "the granularity of such dynamic scheduling (chunk size) is set
// as 128, for both walkers and messages").
const walkerChunk = 128

// DefaultLightThreshold is the paper's straggler threshold: a node whose
// active walker count falls below it drops to a single worker (§6.2).
const DefaultLightThreshold = 4000

// Stepping strategies for phase A (Config.Stepping).
const (
	// SteppingInterleaved batches walkers and executes each step as three
	// stages — gather, move, update — stage-at-a-time across the batch
	// (ThunderRW-style step interleaving). The default.
	SteppingInterleaved = "interleaved"
	// SteppingScalar is the reference one-walker-at-a-time loop, kept as
	// the bit-identity oracle for the interleaved pipeline.
	SteppingScalar = "scalar"
)

// DefaultBatchSize is the interleaved pipeline's walker batch size.
const DefaultBatchSize = 256

// ErrCancelled is returned (wrapped) by Run and RunNode when a run is
// aborted through Config.Cancel. The abort is cooperative and aligned:
// every rank leaves the superstep loop at the same barrier, so no partial
// superstep is ever observable and any checkpoints on disk remain
// consistent. Match with errors.Is.
var ErrCancelled = errors.New("core: run cancelled")

// Config describes one engine run.
type Config struct {
	// Graph is the input graph (shared read-only across logical nodes).
	Graph *graph.Graph
	// Algorithm is the walk specification.
	Algorithm *Algorithm
	// NumNodes is the number of logical cluster nodes (default 1). Ignored
	// when Endpoints is set.
	NumNodes int
	// Workers is the number of computation goroutines per node (default 4,
	// mirroring the paper's thread-per-core pools).
	Workers int
	// Seed makes the whole run deterministic.
	Seed uint64
	// NumWalkers is the walker count (default |V|).
	NumWalkers int
	// StartVertex places walker id (default: id mod |V|, the paper's
	// default strategy). Mutually exclusive with StartWeights.
	StartVertex func(id int64) graph.VertexID
	// StartWeights, when set (length |V|), draws each walker's start
	// vertex from this unnormalized distribution — the paper's "give ...
	// their distribution of starting locations" API. The draw uses the
	// walker's own stream, so placement stays deterministic in (seed, id).
	StartWeights []float32
	// RecordPaths stores each walker's visited vertex sequence in the
	// result (memory ~ NumWalkers × walk length).
	RecordPaths bool
	// CountVisits accumulates per-vertex visit counts (moves into each
	// vertex, start vertices excluded) in Result.Visits — the cheap way to
	// compute PPR-style stationary estimates without storing paths.
	CountVisits bool
	// SamplerKind selects the static sampling structure: "alias" (default,
	// O(1) per draw) or "its" (CDF + binary search, O(log d) per draw).
	// Exposed for the ablation in the paper's §3 discussion.
	SamplerKind string
	// Samplers, when non-nil, supplies prebuilt per-vertex static sampler
	// tables — e.g. a dynamic-graph epoch's incrementally maintained ones —
	// so setup skips the O(E) table build. A provided table is used only
	// where it applies exactly: the algorithm's static weights must be the
	// graph's edge weights (Biased with no EdgeStaticComp) and the
	// provider's kind must match SamplerKind; otherwise, and for vertices
	// where the provider returns nil, the engine builds locally as always.
	// Tables must have been built from this exact Graph: a degree mismatch
	// panics rather than silently walking a stale epoch.
	Samplers SamplerProvider
	// Stepping selects the phase-A execution strategy: SteppingInterleaved
	// (the default) batches walkers and runs each step's gather / move /
	// update stages stage-at-a-time across the batch, overlapping adjacency
	// and sampler-table loads; SteppingScalar is the reference
	// one-walker-at-a-time loop. Both consume each walker's private RNG
	// stream in the same order, so they produce bit-identical walks under
	// the same seed.
	Stepping string
	// BatchSize is the interleaved pipeline's walker batch size (default
	// DefaultBatchSize). Ignored under scalar stepping.
	BatchSize int
	// Adapt enables runtime sampler adaptation: the engine measures
	// per-vertex rejection trial counts and switches hot vertices between
	// sampling structures at superstep barriers (see AdaptConfig). Mutually
	// exclusive with Checkpoint/Restore: snapshots do not capture adapted
	// per-vertex modes, and the resume bit-identity contract is pinned
	// without them.
	Adapt *AdaptConfig
	// LightThreshold enables straggler-aware light mode below this active
	// count; 0 selects DefaultLightThreshold, negative disables.
	LightThreshold int
	// Endpoints supplies a custom transport group (e.g. TCP); its size
	// overrides NumNodes. Default: an in-process group of NumNodes.
	Endpoints []transport.Endpoint
	// NetTimeout, when positive, bounds every collective Exchange call:
	// a barrier that does not complete within it (a dead or wedged peer, a
	// partitioned network) fails the run with transport.ErrTimeout instead
	// of hanging forever, which makes checkpoint recovery reachable. Zero
	// disables the guard. Applies on top of any transport-level read/write
	// deadlines (e.g. transport.TCPOptions).
	NetTimeout time.Duration
	// MaxIterations aborts runaway walks (default 10,000,000 supersteps).
	MaxIterations int
	// Counters receives engine counters (optional; Result always carries a
	// snapshot).
	Counters *stats.Counters
	// IterLog receives one record per superstep (optional).
	IterLog *stats.IterationLog
	// Observer receives per-superstep span records and sampling/query
	// observations (see observer.go). When it also implements
	// transport.Observer, every endpoint is wrapped so exchange latency and
	// frame payload sizes are observed at the transport layer. Nil disables
	// telemetry; observations never touch walker RNG streams, so enabling
	// it cannot change walk output.
	Observer Observer
	// Trace receives the causal trace of the run: the step decisions, rank
	// migrations, and rejection trial counts of deterministically sampled
	// walkers (see trace.go). Nil disables tracing at the cost of one
	// branch per hook; like Observer, trace hooks never touch walker RNG
	// streams, so enabling tracing cannot change walk output.
	// internal/obs/tracelog.Collector is the production implementation.
	Trace Tracer
	// PartitionAlpha weighs vertices against edges in the 1-D partitioner
	// (default 1, the paper's |V|+|E| balance).
	PartitionAlpha float64
	// PartitionStarts overrides the computed partition with explicit range
	// boundaries (starts[i] = node i's first vertex, last entry = |V|).
	// Mandatory when Graph is a partition-local slice (graph.Partial), in
	// which case every rank must pass identical boundaries matching its
	// slice. Length must be number-of-nodes + 1.
	PartitionStarts []graph.VertexID
	// Cancel, when non-nil, requests a cooperative abort: close the channel
	// and the run stops at the next BSP barrier with an error wrapping
	// ErrCancelled. Each rank polls the channel once per superstep (a
	// non-blocking select, so the walk path stays deterministic) and the
	// observing rank broadcasts the request with its walker count, so every
	// rank — including remote processes under RunNode that never see the
	// local signal — leaves the loop at the same superstep, before any
	// checkpoint write begins. kkwalk wires SIGINT/SIGTERM to this;
	// internal/service closes it on DELETE /jobs/{id}.
	Cancel <-chan struct{}
	// OnProgress, when non-nil, is called once per superstep at the count
	// barrier with the superstep index and the cluster-wide live walker
	// count just agreed there (the final superstep reports 0). Under Run
	// every in-process rank invokes it, so it must be safe for concurrent
	// use; under RunNode it is this rank's progress beacon — kkrank
	// piggybacks it onto coordinator heartbeats. The hook runs on the
	// superstep path and must not block; like Observer it never touches
	// walker RNG streams, so enabling it cannot change walk output.
	OnProgress func(iteration int, globalWalkers int64)
	// Checkpoint, when non-nil, makes every rank snapshot its walker state
	// into the sink at each superstep barrier whose index is a multiple of
	// the sink's Interval. The snapshot is taken at a consistent cut (all
	// migrations delivered, no responses outstanding); a write or commit
	// failure aborts the run. See internal/checkpoint for the on-disk sink.
	Checkpoint CheckpointSink
	// Restore resumes a previous run from a loaded checkpoint instead of
	// seeding fresh walkers. The Config must otherwise match the
	// checkpointed run (graph, algorithm, seed, walker count, rank count);
	// mismatches are rejected. See internal/checkpoint.Load.
	Restore *RestoreState
}

// SamplerProvider supplies prebuilt per-vertex static sampler tables.
// internal/dyngraph's Epoch is the production implementation: its tables
// are maintained incrementally across edge ingest, so handing them to
// the engine makes per-run setup O(1) per vertex instead of O(degree).
type SamplerProvider interface {
	// StaticSampler returns the weight-proportional table for v, or nil
	// when the provider has none (the engine then builds locally).
	StaticSampler(v graph.VertexID) sampling.StaticSampler
	// StaticKind reports the structure the tables use: "alias" or "its".
	StaticKind() string
}

// CheckpointSink stores consistent superstep snapshots. Implementations
// must be safe for concurrent WriteSegment calls from different ranks.
// internal/checkpoint.Store is the production implementation.
type CheckpointSink interface {
	// Interval returns the snapshot period in supersteps (>= 1). It must be
	// constant for the duration of a run so every rank triggers at the same
	// barriers.
	Interval() int
	// WriteSegment durably stores one rank's snapshot blob for the given
	// superstep and returns its stored size and checksum.
	WriteSegment(iteration, rank int, blob []byte) (SegmentInfo, error)
	// Commit finalizes iteration's checkpoint; the engine calls it on rank 0
	// only, after every rank's segment is durable (segments are sorted by
	// rank and complete).
	Commit(iteration int, segments []SegmentInfo) error
}

// SegmentInfo describes one durably written checkpoint segment.
type SegmentInfo struct {
	Rank int
	Size int64
	CRC  uint64
}

// RestoreState carries a decoded checkpoint into Run or RunNode.
type RestoreState struct {
	// Iteration is the superstep at which the snapshot was taken; the
	// resumed run continues counting from it.
	Iteration int
	// Segments holds each rank's snapshot blob, indexed by rank. A
	// multi-process rank needs at least its own entry; entries for other
	// ranks are ignored except that RunNode merges only the result section
	// of this rank's segment while Run merges every present one.
	Segments [][]byte
}

// Result summarizes a run.
type Result struct {
	// Iterations is the number of supersteps executed.
	Iterations int
	// Counters is the final counter snapshot.
	Counters stats.Snapshot
	// Lengths is the walk-length histogram (steps at termination).
	Lengths *stats.Histogram
	// Paths holds per-walker vertex sequences when RecordPaths was set
	// (indexed by walker ID), nil otherwise.
	Paths [][]graph.VertexID
	// Visits holds per-vertex visit counts when CountVisits was set, nil
	// otherwise.
	Visits []int64
	// Duration is the wall-clock walk time (excluding initialization, as
	// in the paper's methodology it *includes* walker/sampler setup; see
	// SetupDuration).
	Duration time.Duration
	// SetupDuration is the sampler/walker initialization time.
	SetupDuration time.Duration
	// LightIterations counts supersteps rank 0 spent in light mode.
	LightIterations int
}

// Run executes the walk described by cfg and returns the result.
func Run(cfg Config) (*Result, error) {
	eps := cfg.Endpoints
	if eps == nil {
		n := cfg.NumNodes
		if n <= 0 {
			n = 1
		}
		eps = transport.NewInProcGroup(n)
	}
	if tobs, ok := cfg.Observer.(transport.Observer); ok {
		observed := make([]transport.Endpoint, len(eps))
		for i, ep := range eps {
			observed[i] = transport.WithObserver(ep, tobs)
		}
		eps = observed
	}
	if cfg.NetTimeout > 0 {
		guarded := make([]transport.Endpoint, len(eps))
		for i, ep := range eps {
			guarded[i] = transport.WithExchangeTimeout(ep, cfg.NetTimeout)
		}
		eps = guarded
	}
	numNodes := len(eps)
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &stats.Counters{}
	}

	part, err := cfg.partition(numNodes)
	if err != nil {
		return nil, err
	}
	res := newResult(&cfg)

	setupStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	if cfg.Restore != nil {
		// One process hosts every rank, so this process owns the whole
		// result set: merge the result sections of every segment (one for a
		// Run-written checkpoint, one per rank for a RunNode-written one).
		restoreStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		ranks := make([]int, numNodes)
		for i := range ranks {
			ranks[i] = i
		}
		if err := applyRestoredResults(cfg.Restore, ranks, res, counters); err != nil {
			return nil, err
		}
		counters.RestoreNanos.Add(time.Since(restoreStart).Nanoseconds()) //kk:nondet-ok telemetry-only timing; never feeds walk state
	}
	nodes := make([]*node, numNodes)
	for rank := 0; rank < numNodes; rank++ {
		n, err := newNode(rank, &cfg, part, eps[rank], counters, res, rank == 0)
		if err != nil {
			return nil, err
		}
		nodes[rank] = n
	}
	res.SetupDuration = time.Since(setupStart) //kk:nondet-ok telemetry-only timing; never feeds walk state

	walkStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	var iterations atomic.Int64
	var lightIters atomic.Int64
	err = cluster.Run(eps, func(rank int, ep transport.Endpoint) error {
		n := nodes[rank]
		iters, light, err := n.run()
		if rank == 0 {
			iterations.Store(int64(iters))
			lightIters.Store(int64(light))
		}
		return err
	})
	res.Duration = time.Since(walkStart) //kk:nondet-ok telemetry-only timing; never feeds walk state
	if err != nil {
		return nil, err
	}
	res.Iterations = int(iterations.Load())
	res.LightIterations = int(lightIters.Load())

	var msgs, bytes int64
	for _, ep := range eps {
		m, b := ep.Stats()
		msgs += m
		bytes += b
	}
	counters.Messages.Store(msgs)
	counters.BytesSent.Store(bytes)
	res.Counters = counters.Snapshot()
	return res, nil
}

// RunNode executes one rank's share of a *multi-process* distributed walk:
// the caller brings up a transport endpoint (typically via
// transport.DialTCPGroup, one OS process per rank — the paper's MPI
// deployment model), and every process calls RunNode with an identical
// Config (same graph, algorithm, and seed). The returned Result covers
// only this node's share: walkers that terminated here, visits to owned
// vertices' destinations made here, and this endpoint's traffic. Counter
// and histogram values must be summed across ranks for cluster totals;
// walker paths are disjoint across ranks and can be concatenated.
func RunNode(cfg Config, ep transport.Endpoint) (*Result, error) {
	if ep == nil {
		return nil, fmt.Errorf("core: RunNode requires an endpoint")
	}
	if tobs, ok := cfg.Observer.(transport.Observer); ok {
		ep = transport.WithObserver(ep, tobs)
	}
	ep = transport.WithExchangeTimeout(ep, cfg.NetTimeout)
	cfg.Endpoints = nil
	cfg.NumNodes = ep.Size()
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &stats.Counters{}
	}
	part, err := cfg.partition(ep.Size())
	if err != nil {
		return nil, err
	}
	res := newResult(&cfg)

	setupStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	if cfg.Restore != nil {
		// Each process owns only its rank's share of the results; merging
		// exactly the rank-matching result section keeps cluster-wide sums
		// correct without double counting across processes.
		restoreStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		if err := applyRestoredResults(cfg.Restore, []int{ep.Rank()}, res, counters); err != nil {
			return nil, err
		}
		counters.RestoreNanos.Add(time.Since(restoreStart).Nanoseconds()) //kk:nondet-ok telemetry-only timing; never feeds walk state
	}
	n, err := newNode(ep.Rank(), &cfg, part, ep, counters, res, true)
	if err != nil {
		return nil, err
	}
	res.SetupDuration = time.Since(setupStart) //kk:nondet-ok telemetry-only timing; never feeds walk state

	walkStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	iters, light, runErr := n.run()
	res.Duration = time.Since(walkStart) //kk:nondet-ok telemetry-only timing; never feeds walk state
	if runErr != nil {
		return nil, runErr
	}
	res.Iterations = iters
	res.LightIterations = light

	m, b := ep.Stats()
	counters.Messages.Store(m)
	counters.BytesSent.Store(b)
	res.Counters = counters.Snapshot()
	return res, nil
}

// normalize validates cfg and fills defaults.
func (cfg *Config) normalize() error {
	if cfg.Graph == nil || cfg.Algorithm == nil {
		return fmt.Errorf("core: Config requires Graph and Algorithm")
	}
	if err := cfg.Algorithm.validate(cfg.Graph); err != nil {
		return err
	}
	if cfg.Graph.NumVertices() == 0 {
		return fmt.Errorf("core: empty graph")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.NumWalkers <= 0 {
		cfg.NumWalkers = cfg.Graph.NumVertices()
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10_000_000
	}
	if cfg.LightThreshold == 0 {
		cfg.LightThreshold = DefaultLightThreshold
	}
	if cfg.PartitionAlpha == 0 {
		cfg.PartitionAlpha = 1
	}
	switch cfg.SamplerKind {
	case "", "alias", "its":
	default:
		return fmt.Errorf("core: unknown SamplerKind %q (want alias or its)", cfg.SamplerKind)
	}
	switch cfg.Stepping {
	case "":
		cfg.Stepping = SteppingInterleaved
	case SteppingInterleaved, SteppingScalar:
	default:
		return fmt.Errorf("core: unknown Stepping %q (want %s or %s)", cfg.Stepping, SteppingInterleaved, SteppingScalar)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Adapt != nil {
		if cfg.Checkpoint != nil || cfg.Restore != nil {
			return fmt.Errorf("core: Adapt is mutually exclusive with Checkpoint/Restore")
		}
		cfg.Adapt.normalize()
	}
	if cfg.StartVertex != nil && cfg.StartWeights != nil {
		return fmt.Errorf("core: StartVertex and StartWeights are mutually exclusive")
	}
	if cfg.StartWeights != nil && len(cfg.StartWeights) != cfg.Graph.NumVertices() {
		return fmt.Errorf("core: StartWeights length %d != |V| %d", len(cfg.StartWeights), cfg.Graph.NumVertices())
	}
	return nil
}

// partition resolves the vertex partition for numNodes ranks.
func (cfg *Config) partition(numNodes int) (*cluster.Partition, error) {
	if cfg.PartitionStarts != nil {
		if len(cfg.PartitionStarts) != numNodes+1 {
			return nil, fmt.Errorf("core: PartitionStarts has %d boundaries, want %d",
				len(cfg.PartitionStarts), numNodes+1)
		}
		if int(cfg.PartitionStarts[numNodes]) != cfg.Graph.NumVertices() {
			return nil, fmt.Errorf("core: PartitionStarts does not cover |V|=%d", cfg.Graph.NumVertices())
		}
		return cluster.NewPartition(cfg.PartitionStarts)
	}
	if cfg.Graph.Partial() {
		return nil, fmt.Errorf("core: a partition-local graph requires explicit PartitionStarts")
	}
	return cluster.Partition1D(cfg.Graph, numNodes, cfg.PartitionAlpha), nil
}

// newResult allocates the result sinks for a run.
func newResult(cfg *Config) *Result {
	histSize := cfg.Algorithm.MaxSteps
	if histSize <= 0 {
		histSize = 4096
	}
	res := &Result{Lengths: stats.NewHistogram(histSize + 1)}
	if cfg.RecordPaths {
		res.Paths = make([][]graph.VertexID, cfg.NumWalkers)
	}
	if cfg.CountVisits {
		res.Visits = make([]int64, cfg.Graph.NumVertices())
	}
	return res
}

// node is one logical cluster node: a vertex partition, its precomputed
// samplers, and the walkers currently residing on it.
type node struct {
	rank     int
	cfg      *Config
	g        *graph.Graph
	alg      *Algorithm
	part     *cluster.Partition
	ep       transport.Endpoint
	lo, hi   graph.VertexID
	counters *stats.Counters
	res      *Result

	// Per owned vertex (index v-lo): static sampler and rejection
	// dartboard (dynamic algorithms only). nil for degree-0 vertices.
	// The dartboards point into the boards slab (one allocation per node
	// instead of one per vertex); adaptation rebuilds swap in individually
	// allocated replacements, which is fine — the pointers are the API.
	samplers   []sampling.StaticSampler
	rejections []*sampling.Rejection
	boards     []sampling.Rejection

	walkers  []*Walker
	awaiting map[int64]*Walker

	// inFlight counts migrations sent but not yet counted by their receiver.
	//kk:phase compute,superstep
	inFlight int64

	// Preallocated hot-path state: the walker arena, one workerState per
	// worker goroutine (persistent output staging, batch arrays, scratch),
	// a loop-goroutine workerState for phase C, and the phase-A keep/parked
	// scratch. All are reused across supersteps so the steady-state walker
	// and message path allocates nothing.
	pool      walkerPool
	wstates   []*workerState
	loop      *workerState
	keep      []bool    //kk:phase compute
	parkedBuf []*Walker //kk:phase compute
	queryBuf  []transport.Message
	spansBuf  []querySpan //kk:phase query
	errsBuf   []error     //kk:phase query

	// adapt holds runtime sampler-adaptation state (nil when disabled).
	adapt *adaptState

	// localMig is non-nil when the endpoint shares this process's address
	// space (transport.LocalSender): migrations then transfer walker
	// objects by reference instead of round-tripping through the wire
	// codec. Any wrapper (observer, timeout, fault injection) hides the
	// capability, restoring the byte path.
	localMig transport.LocalSender

	interleaved bool
	batchSize   int

	// obs receives telemetry when Config.Observer is set. The step*
	// accumulators collect the current superstep's exchange time and
	// received traffic; they are only touched from the node's loop
	// goroutine (exchange is never called from workers).
	obs           Observer
	stepExchange  int64
	stepRecvMsgs  int64
	stepRecvBytes int64
	stepGather    int64 //kk:phase compute,superstep
	stepMove      int64 //kk:phase compute,superstep
	stepUpdate    int64 //kk:phase compute,superstep

	// tracer receives sampled walker journeys when Config.Trace is set
	// (see trace.go); curIter is the running superstep number stamped on
	// each event. The loop goroutine writes curIter before phase A's
	// workers launch and they all join before the next write, so workers
	// read it race-free.
	tracer  Tracer
	curIter int32

	// ownsResult marks the node whose snapshot segments carry the process's
	// result sinks (paths, visits, histogram) and counters: rank 0 under
	// Run (sinks are process-shared), every rank under RunNode.
	ownsResult bool
	// startIter is the superstep the node resumes from (0 for a fresh run).
	startIter int
	// resumed marks a node restored from a checkpoint, which must re-issue
	// the outstanding queries of its awaiting walkers before the first
	// exchange.
	resumed bool
}

func newNode(rank int, cfg *Config, part *cluster.Partition, ep transport.Endpoint, counters *stats.Counters, res *Result, ownsResult bool) (*node, error) {
	n := &node{
		rank:       rank,
		cfg:        cfg,
		g:          cfg.Graph,
		alg:        cfg.Algorithm,
		part:       part,
		ep:         ep,
		counters:   counters,
		res:        res,
		awaiting:   make(map[int64]*Walker),
		ownsResult: ownsResult,
		obs:        cfg.Observer,
		tracer:     cfg.Trace,
	}
	n.lo, n.hi = part.Range(rank)
	n.interleaved = cfg.Stepping != SteppingScalar
	n.batchSize = cfg.BatchSize
	n.localMig, _ = ep.(transport.LocalSender)
	n.buildSamplers()
	n.initAdapt()
	n.wstates = make([]*workerState, cfg.Workers)
	for i := range n.wstates {
		n.wstates[i] = newWorkerState(ep.Size())
	}
	n.loop = newWorkerState(ep.Size())
	if cfg.Restore != nil {
		restoreStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		if err := n.restoreSnapshot(cfg.Restore); err != nil {
			return nil, err
		}
		counters.RestoreNanos.Add(time.Since(restoreStart).Nanoseconds()) //kk:nondet-ok telemetry-only timing; never feeds walk state
	} else {
		n.seedWalkers()
	}
	return n, nil
}

// buildSamplers precomputes the per-vertex static samplers (alias tables
// for biased walks) and rejection dartboards, the paper's initialization
// step.
func (n *node) buildSamplers() {
	count := int(n.hi - n.lo)
	n.samplers = make([]sampling.StaticSampler, count)
	if n.alg.dynamic() {
		n.rejections = make([]*sampling.Rejection, count)
		n.boards = make([]sampling.Rejection, count)
	}
	// A sampler provider replaces local construction only when its tables
	// are exactly what the build loop would produce: edge-weight statics
	// (Biased, no EdgeStaticComp) of the matching structure kind.
	provider := n.cfg.Samplers
	if provider != nil {
		kind := n.cfg.SamplerKind
		if kind == "" {
			kind = "alias"
		}
		if !n.alg.Biased || n.alg.EdgeStaticComp != nil || provider.StaticKind() != kind {
			provider = nil
		}
	}
	for i := 0; i < count; i++ {
		v := n.lo + graph.VertexID(i)
		deg := n.g.Degree(v)
		if deg == 0 {
			continue
		}
		var s sampling.StaticSampler
		if provider != nil {
			if pre := provider.StaticSampler(v); pre != nil {
				if pre.N() != deg {
					panic(fmt.Sprintf("core: provided sampler of vertex %d covers %d edges, degree is %d (stale epoch?)", v, pre.N(), deg))
				}
				s = pre
			}
		}
		switch {
		case s != nil: // provided above
		case n.alg.uniformStatic():
			s = sampling.SharedUniform(deg)
		default:
			weights := make([]float32, deg)
			for j := 0; j < deg; j++ {
				weights[j] = n.alg.staticWeight(n.g, v, j)
			}
			var err error
			if n.cfg.SamplerKind == "its" {
				s, err = sampling.NewITS(weights)
			} else {
				s, err = sampling.NewAlias(weights)
			}
			if err != nil {
				panic(fmt.Sprintf("core: vertex %d static weights: %v", v, err))
			}
		}
		n.samplers[i] = s
		if n.alg.dynamic() {
			q, l, apps := n.rejectionGeometry(v)
			n.boards[i].Reset(s, q, l, apps)
			n.rejections[i] = &n.boards[i]
		}
	}
}

// rejectionGeometry evaluates vertex v's envelope bounds and outlier
// appendices — the pure (graph, vertex) inputs every dartboard build uses.
func (n *node) rejectionGeometry(v graph.VertexID) (q, l float64, apps []sampling.Appendix) {
	q = n.alg.UpperBound(n.g, v)
	if n.alg.LowerBound != nil {
		l = n.alg.LowerBound(n.g, v)
	}
	if n.alg.Outliers != nil {
		apps = n.alg.Outliers(n.g, v)
	}
	return q, l, apps
}

// buildRejection constructs vertex v's rejection dartboard over static
// structure s. Factored out of buildSamplers so runtime adaptation can
// rebuild a dartboard when a vertex's proposal structure switches: the
// envelope geometry is a pure function of (graph, vertex), so a rebuilt
// board differs only in its proposal structure.
func (n *node) buildRejection(v graph.VertexID, s sampling.StaticSampler) *sampling.Rejection {
	q, l, apps := n.rejectionGeometry(v)
	return sampling.NewRejection(s, q, l, apps)
}

// seedWalkers creates the walkers whose start vertex this node owns.
// Every node derives every walker's start deterministically (from the
// config or the walker's own stream), so no coordination is needed to
// agree on placement.
func (n *node) seedWalkers() {
	numV := int64(n.g.NumVertices())
	var startDist *sampling.ITS
	if n.cfg.StartWeights != nil {
		its, err := sampling.NewITS(n.cfg.StartWeights)
		if err != nil {
			panic(fmt.Sprintf("core: StartWeights: %v", err))
		}
		startDist = its
	}
	for id := int64(0); id < int64(n.cfg.NumWalkers); id++ {
		// Derive the stream and draw the placement on the stack; a walker
		// is materialized (from the still-pristine arena, so every field is
		// zero) only when this node owns the start vertex. Unowned ids cost
		// no allocation at all.
		r := rng.Stream(n.cfg.Seed, uint64(id))
		var start graph.VertexID
		switch {
		case startDist != nil:
			start = graph.VertexID(startDist.Sample(&r))
		case n.cfg.StartVertex != nil:
			start = n.cfg.StartVertex(id)
		default:
			start = graph.VertexID(id % numV)
		}
		if !n.part.Owns(n.rank, start) {
			continue
		}
		w := n.pool.get()
		w.ID = id
		w.R = r
		w.Cur = start
		w.Origin = start
		if n.cfg.RecordPaths {
			w.Path = []graph.VertexID{start}
		}
		if n.alg.InitWalker != nil {
			n.alg.InitWalker(w, &w.R)
		}
		n.walkers = append(n.walkers, w)
	}
}

// outBufs accumulates batched outgoing records for one phase. Each worker
// owns its own outBufs, so no locking is needed while encoding.
type outBufs struct {
	size       int
	migrate    [][]byte
	local      []*walkerBatch // object-path migrations (shared address space)
	query      [][]byte
	response   [][]byte
	migrations int64
}

func newOutBufs(size int) *outBufs {
	return &outBufs{
		size:     size,
		migrate:  make([][]byte, size),
		local:    make([]*walkerBatch, size),
		query:    make([][]byte, size),
		response: make([][]byte, size),
	}
}

func (o *outBufs) addMigration(dest int, w *Walker) {
	o.migrate[dest] = encodeWalker(o.migrate[dest], w)
	o.migrations++
}

func (o *outBufs) addLocalMigration(dest int, w *Walker) {
	b := o.local[dest]
	if b == nil {
		b = walkerBatchPool.Get().(*walkerBatch)
		o.local[dest] = b
	}
	b.ws = append(b.ws, w)
	o.migrations++
}

func (o *outBufs) addQuery(dest int, walkerID int64, target graph.VertexID, arg uint64) {
	var rec [20]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(walkerID))
	binary.LittleEndian.PutUint32(rec[8:], target)
	binary.LittleEndian.PutUint64(rec[12:], arg)
	o.query[dest] = append(o.query[dest], rec[:]...)
}

func (o *outBufs) addResponse(dest int, walkerID int64, result uint64) {
	var rec [16]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(walkerID))
	binary.LittleEndian.PutUint64(rec[8:], result)
	o.response[dest] = append(o.response[dest], rec[:]...)
}

// flush sends all non-empty buffers. The transport's ownership contract
// transfers a sent payload to the endpoint, so flush copies each staging
// buffer into an exactly-sized payload and keeps the staging capacity for
// the next superstep: one allocation per non-empty (dest, kind) pair
// instead of regrowing every staging buffer from scratch each phase.
// Object-path migration batches (ls non-nil) transfer wholesale — the
// receiver recycles the batch container through walkerBatchPool.
//
//kk:hotpath
func (o *outBufs) flush(ep transport.Endpoint, ls transport.LocalSender) {
	for dest := 0; dest < o.size; dest++ {
		if b := o.local[dest]; b != nil {
			ls.SendLocal(dest, kMigrate, b)
			o.local[dest] = nil
		}
		if b := o.migrate[dest]; len(b) > 0 {
			ep.Send(dest, kMigrate, append(make([]byte, 0, len(b)), b...)) //kk:alloc-ok per-superstep payload copy: Send retains the buffer, so staging cannot be reused without it
			o.migrate[dest] = b[:0]
		}
		if b := o.query[dest]; len(b) > 0 {
			ep.Send(dest, kQuery, append(make([]byte, 0, len(b)), b...)) //kk:alloc-ok per-superstep payload copy: Send retains the buffer, so staging cannot be reused without it
			o.query[dest] = b[:0]
		}
		if b := o.response[dest]; len(b) > 0 {
			ep.Send(dest, kResponse, append(make([]byte, 0, len(b)), b...)) //kk:alloc-ok per-superstep payload copy: Send retains the buffer, so staging cannot be reused without it
			o.response[dest] = b[:0]
		}
	}
}

// exchange runs one collective exchange, accumulating its wall time (wire
// transfer plus barrier wait) into the ExchangeNanos counter so that
// communication cost is separable from compute in run summaries.
func (n *node) exchange() ([]transport.Message, error) {
	start := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	msgs, err := n.ep.Exchange()
	d := time.Since(start).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state
	n.counters.ExchangeNanos.Add(d)
	if n.obs != nil {
		n.stepExchange += d
		n.stepRecvMsgs += int64(len(msgs))
		for _, m := range msgs {
			n.stepRecvBytes += int64(len(m.Payload))
		}
	}
	return msgs, err
}

// run executes the BSP superstep loop (paper §5.1). Every superstep has
// one exchange for static/first-order walks, or two for higher-order walks
// (queries out + responses back), exactly the structure the paper
// describes.
//
//kk:phase superstep
func (n *node) run() (iterations, lightIters int, err error) {
	twoRound := n.alg.higherOrder()
	iterations = n.startIter
	if n.resumed {
		n.resendPendingQueries()
	}
	for {
		iterations++
		n.curIter = int32(iterations)
		if iterations > n.cfg.MaxIterations {
			return iterations, lightIters, fmt.Errorf("core: exceeded %d supersteps; walk not converging", n.cfg.MaxIterations)
		}
		start := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		active := len(n.walkers)
		light := n.lightMode(active)
		if light {
			lightIters++
		}

		// Span accumulators for this superstep; exchange time and received
		// traffic land in the node's step* fields via exchange().
		var computeNanos, ckptNanos, globalCount int64
		n.stepExchange, n.stepRecvMsgs, n.stepRecvBytes = 0, 0, 0
		n.stepGather, n.stepMove, n.stepUpdate = 0, 0, 0
		emitSpan := func() {
			if n.obs == nil {
				return
			}
			barrier := time.Since(start).Nanoseconds() - computeNanos - n.stepExchange - ckptNanos //kk:nondet-ok telemetry-only timing; never feeds walk state
			if barrier < 0 {
				barrier = 0
			}
			n.obs.OnSuperstep(SuperstepSpan{
				Rank:            n.rank,
				Iteration:       iterations,
				LightMode:       light,
				LocalWalkers:    active,
				GlobalWalkers:   globalCount,
				RecvMessages:    n.stepRecvMsgs,
				RecvBytes:       n.stepRecvBytes,
				ComputeNanos:    computeNanos,
				ExchangeNanos:   n.stepExchange,
				BarrierNanos:    barrier,
				CheckpointNanos: ckptNanos,
				GatherNanos:     n.stepGather,
				MoveNanos:       n.stepMove,
				UpdateNanos:     n.stepUpdate,
			})
		}

		// Phase A: local walker processing (trials, local moves, query and
		// migration generation).
		parked := n.phaseA(light)
		for _, w := range parked {
			n.awaiting[w.ID] = w
		}

		// Send this node's live-walker count to every rank, then exchange.
		// A locally observed cancellation rides along as a broadcast: the
		// decision to stop is taken from the union of requests received at
		// the barrier, so every rank stops at the same superstep.
		count := int64(len(n.walkers)) + n.inFlight
		var cb [8]byte
		binary.LittleEndian.PutUint64(cb[:], uint64(count))
		for dest := 0; dest < n.ep.Size(); dest++ {
			n.ep.Send(dest, kCount, cb[:])
		}
		if n.cancelRequested() {
			for dest := 0; dest < n.ep.Size(); dest++ {
				n.ep.Send(dest, kCancel, []byte{1})
			}
		}
		n.inFlight = 0
		computeNanos += time.Since(start).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state

		msgs, err := n.exchange()
		if err != nil {
			return iterations, lightIters, err
		}

		demuxStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		var global int64
		var cancelled bool
		queryMsgs := n.queryBuf[:0]
		for _, m := range msgs {
			switch m.Kind {
			case kCount:
				if len(m.Payload) != 8 {
					return iterations, lightIters, fmt.Errorf("core: malformed count message (%d bytes) from rank %d", len(m.Payload), m.From)
				}
				global += int64(binary.LittleEndian.Uint64(m.Payload))
			case kMigrate:
				if m.Local != nil {
					b := m.Local.(*walkerBatch)
					n.walkers = append(n.walkers, b.ws...)
					b.recycle()
				} else if err := n.receiveWalkers(m.Payload); err != nil {
					return iterations, lightIters, err
				}
			case kQuery:
				queryMsgs = append(queryMsgs, m)
			case kCancel:
				cancelled = true
			default:
				return iterations, lightIters, fmt.Errorf("core: unexpected message kind %d in round 1", m.Kind)
			}
		}
		globalCount = global
		computeNanos += time.Since(demuxStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state

		if n.rank == 0 && n.cfg.IterLog != nil {
			n.cfg.IterLog.Append(stats.IterationRecord{
				Iteration:     iterations,
				ActiveWalkers: global,
				Duration:      time.Since(start), //kk:nondet-ok telemetry-only timing; never feeds walk state
				LightMode:     light,
			})
		}
		if n.cfg.OnProgress != nil {
			n.cfg.OnProgress(iterations, global)
		}
		if global == 0 {
			emitSpan()
			return iterations, lightIters, nil
		}
		// Abort after the count barrier but before any checkpoint write:
		// every migration up to this superstep has been delivered, so the
		// newest committed checkpoint (if any) stays the consistent resume
		// point and no superstep is ever half-snapshotted.
		if cancelled {
			emitSpan()
			return iterations, lightIters, fmt.Errorf("%w at superstep %d", ErrCancelled, iterations)
		}

		// Sampler adaptation at the barrier: workers are quiesced, the trial
		// cells hold scheduling-independent sums, and every rank has reached
		// the same superstep — so switch decisions are deterministic and the
		// per-vertex sampler arrays can be rewritten without locks.
		if n.adapt != nil && iterations%n.adapt.every == 0 {
			adaptStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
			n.adaptDecide(iterations)
			computeNanos += time.Since(adaptStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state
		}

		// Checkpoint at the barrier: every migration sent up to this
		// superstep has been delivered and folded into some rank's walker
		// list, no responses are outstanding, and the only in-flight
		// records — this superstep's state queries — are re-derivable from
		// the parked walkers' pending darts. The cut is therefore fully
		// described by the per-rank walker sets.
		if n.checkpointDue(iterations) {
			// The checkpoint barrier is an extra Exchange, and under the
			// transport's ownership contract that invalidates this
			// superstep's received payloads. The query batches are still
			// needed by phase B, so move them out of the recyclable frame
			// buffers first.
			for i := range queryMsgs {
				queryMsgs[i].Payload = append([]byte(nil), queryMsgs[i].Payload...)
			}
			// The commit barrier's exchange time belongs to the checkpoint
			// phase of the span, not the exchange phase.
			preExchange := n.stepExchange
			ckptStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
			if err := n.writeCheckpoint(iterations); err != nil {
				return iterations, lightIters, err
			}
			ckptNanos = time.Since(ckptStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state
			n.stepExchange = preExchange
		}
		if !twoRound {
			emitSpan()
			continue
		}

		// Phase B: answer incoming state queries, in parallel chunks (the
		// paper schedules "chunks of either walkers or messages"; walkers
		// were phase A, messages are here).
		phaseBStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		if err := n.phaseB(queryMsgs, light); err != nil {
			return iterations, lightIters, err
		}
		// Stash the demux scratch for the next superstep. clear severs the
		// payload aliases first — the backing array outlives this
		// superstep's ownership window, the payload views must not.
		clear(queryMsgs)
		n.queryBuf = queryMsgs[:0]
		computeNanos += time.Since(phaseBStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state

		msgs, err = n.exchange()
		if err != nil {
			return iterations, lightIters, err
		}

		// Phase C: resolve pending darts with the returned results, using the
		// loop goroutine's persistent workerState for staging and counters.
		phaseCStart := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
		for _, m := range msgs {
			if m.Kind != kResponse {
				return iterations, lightIters, fmt.Errorf("core: unexpected message kind %d in round 2", m.Kind)
			}
			if err := n.applyResponses(m.Payload, n.loop); err != nil {
				return iterations, lightIters, err
			}
		}
		n.inFlight += n.loop.out.migrations
		n.loop.out.migrations = 0
		n.loop.out.flush(n.ep, n.localMig) // delivered at next superstep's first exchange
		n.loop.counters.flush(n.counters)
		n.pool.putAll(&n.loop.free)
		computeNanos += time.Since(phaseCStart).Nanoseconds() //kk:nondet-ok telemetry-only timing; never feeds walk state
		emitSpan()
	}
}

// cancelRequested polls the run's cancel channel without blocking. Walk
// state never depends on the poll's outcome within a superstep: a
// cancelled run produces no result at all, and an uncancelled run is
// untouched, so determinism from the seed is preserved.
func (n *node) cancelRequested() bool {
	if n.cfg.Cancel == nil {
		return false
	}
	select {
	case <-n.cfg.Cancel:
		return true
	default:
		return false
	}
}

// lightMode reports whether this node should shrink to one worker.
func (n *node) lightMode(active int) bool {
	return n.cfg.LightThreshold > 0 && active < n.cfg.LightThreshold
}

// phaseA processes every ready walker once (to a move, a termination, or a
// parked query), in parallel chunks, then compacts the walker list.
// Returns the walkers parked on queries this phase (a scratch slice valid
// until the next phase A).
//
//kk:phase compute
func (n *node) phaseA(light bool) []*Walker {
	workers := n.cfg.Workers
	if light {
		workers = 1
	}
	ws := n.walkers
	if cap(n.keep) < len(ws) {
		n.keep = make([]bool, len(ws))
	}
	// Every index in [0, len) is written exactly once by whichever worker
	// claims its chunk, so the reused keep slice needs no clearing.
	keep := n.keep[:len(ws)]
	chunk := walkerChunk
	if n.interleaved {
		chunk = n.batchSize
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			for {
				base := int(next.Add(int64(chunk))) - chunk
				if base >= len(ws) {
					break
				}
				end := base + chunk
				if end > len(ws) {
					end = len(ws)
				}
				if n.interleaved {
					n.stepBatch(ws, base, end, keep, st)
				} else {
					n.stepScalar(ws, base, end, keep, st)
				}
			}
			st.counters.flush(n.counters)
		}(n.wstates[wk])
	}
	wg.Wait()

	kept := ws[:0]
	for i, w := range ws {
		if keep[i] {
			kept = append(kept, w)
		}
	}
	n.walkers = kept

	parked := n.parkedBuf[:0]
	for wk := 0; wk < workers; wk++ {
		st := n.wstates[wk]
		parked = append(parked, st.parked...)
		st.parked = st.parked[:0]
		n.inFlight += st.out.migrations
		st.out.migrations = 0
		st.out.flush(n.ep, n.localMig)
		n.pool.putAll(&st.free)
		if n.obs != nil {
			n.stepGather += st.gatherNs
			n.stepMove += st.moveNs
			n.stepUpdate += st.updateNs
			st.gatherNs, st.moveNs, st.updateNs = 0, 0, 0
		}
	}
	n.parkedBuf = parked
	return parked
}

// stepScalar advances walkers [base, end) one at a time — the reference
// stepping, kept as the bit-identity oracle for the interleaved pipeline.
// It shares decideStep/applyAction with stepBatch, so the two strategies
// cannot drift apart.
//
//kk:hotpath
func (n *node) stepScalar(ws []*Walker, base, end int, keep []bool, st *workerState) {
	for i := base; i < end; i++ {
		w := ws[i]
		if w.awaiting {
			keep[i] = true // parked in an earlier superstep
			continue
		}
		var smp sampling.StaticSampler
		var rj *sampling.Rejection
		mode := sampling.ModeAuto
		deg := n.g.Degree(w.Cur)
		if deg > 0 {
			vi := w.Cur - n.lo
			smp = n.samplers[vi]
			if n.rejections != nil {
				rj = n.rejections[vi]
			}
			if n.adapt != nil {
				mode = n.adapt.modes[vi]
			}
		}
		act, edge := n.decideStep(w, deg, smp, rj, mode, st)
		keep[i] = n.applyAction(w, act, edge, st)
	}
}

// action is a decided step outcome, applied by applyAction.
type action uint8

const (
	actYield    action = iota // stays put, retries next superstep
	actFinish                 // walk over: record results, retire the walker
	actMove                   // traverse the chosen edge (edge index valid)
	actTeleport               // restart jump back to the walker's origin
	actPark                   // blocked on the remote query in w.pending*
)

// decideStep runs the decision half of one walker step: every RNG draw the
// step consumes happens here, in a fixed per-walker order. Cross-walker
// ordering is free — each walker draws only from its private stream — which
// is exactly why scalar and interleaved stepping are bit-identical. The
// chosen outcome is applied by applyAction, which draws nothing.
func (n *node) decideStep(w *Walker, deg int, smp sampling.StaticSampler, rj *sampling.Rejection, mode sampling.Mode, st *workerState) (action, int) {
	bc := &st.counters
	if !w.sampling {
		// Step-boundary termination checks (the Pe component).
		if n.alg.MaxSteps > 0 && int(w.Step) >= n.alg.MaxSteps {
			return actFinish, 0
		}
		if n.alg.TerminationProb > 0 && w.R.Bernoulli(n.alg.TerminationProb) {
			return actFinish, 0
		}
		if n.alg.RestartProb > 0 && w.R.Bernoulli(n.alg.RestartProb) {
			return actTeleport, 0
		}
		if deg == 0 {
			return actFinish, 0
		}
		w.sampling = true
	}

	if !n.alg.dynamic() {
		// Static walk: sample directly from the precomputed table; no
		// rejection step, no Pd evaluations (paper: "executes its unified
		// sampling workflow, but without actually performing rejection
		// sampling").
		bc.trials++
		idx := smp.Sample(&w.R)
		n.observeStep(w, 1, 1)
		return actMove, idx
	}

	if mode == sampling.ModeExact {
		// Adapted vertex: its measured rejection pressure exceeded the exact
		// scan's cost, so skip dart throwing entirely.
		idx, ok := n.fullScanChoose(w, deg, smp, st, 1, 1)
		if !ok {
			return actFinish, 0
		}
		return actMove, idx
	}

	fallbackAt := n.alg.fallbackTrials()
	for trials := 0; ; trials++ {
		if trials >= fallbackAt {
			if !n.alg.higherOrder() {
				idx, ok := n.fullScanChoose(w, deg, smp, st, int64(fallbackAt)+1, uint32(fallbackAt)+1)
				if !ok {
					return actFinish, 0
				}
				return actMove, idx
			}
			// Remote Pd rules out an exact full scan; check for dead ends
			// if the algorithm can, otherwise yield and retry next
			// superstep.
			if n.alg.ZeroMassCheck != nil && n.alg.ZeroMassCheck(n.g, w.Cur, w) {
				return actFinish, 0
			}
			return actYield, 0
		}
		bc.trials++
		p := rj.Propose(&w.R)
		if p.Appendix >= 0 {
			bc.appendixHits++
			tag := rj.Appendices()[p.Appendix].Tag
			idx := n.alg.LocateOutlier(n.g, w.Cur, w, tag)
			if idx < 0 {
				continue
			}
			e := n.g.EdgeAt(w.Cur, idx)
			pd := n.alg.EdgeDynamicComp(w, e, 0, false)
			bc.edgeProbEvals++
			prob := rj.AppendixAcceptProb(p, smp.WeightAt(idx), pd)
			if w.R.Bernoulli(prob) {
				n.observeStep(w, int64(trials)+1, uint32(trials)+1)
				return actMove, idx
			}
			continue
		}
		if p.PreAccepted {
			bc.preAccepts++
			n.observeStep(w, int64(trials)+1, uint32(trials)+1)
			return actMove, p.EdgeIdx
		}
		e := n.g.EdgeAt(w.Cur, p.EdgeIdx)
		if n.alg.higherOrder() {
			if target, arg, needed := n.alg.PostQuery(w, e); needed {
				w.awaiting = true
				w.pendingEdge = int32(p.EdgeIdx)
				w.pendingY = p.Y
				w.pendingTarget = target
				w.pendingArg = arg
				return actPark, 0
			}
		}
		pd := n.alg.EdgeDynamicComp(w, e, 0, false)
		bc.edgeProbEvals++
		if rj.AcceptMain(p, pd) {
			n.observeStep(w, int64(trials)+1, uint32(trials)+1)
			return actMove, p.EdgeIdx
		}
	}
}

// applyAction performs the update half of a decided step — result
// recording, relocation, message emission — and reports whether w stays in
// this node's walker list. It never touches walker RNG, so the batch
// pipeline is free to run it after all of a batch's decisions.
func (n *node) applyAction(w *Walker, act action, edgeIdx int, st *workerState) bool {
	switch act {
	case actYield:
		if n.tracer != nil {
			n.traceWalkerEvent(w, WalkerYield, w.Cur, 0, -1)
		}
		return true
	case actFinish:
		if n.tracer != nil {
			n.traceWalkerEvent(w, WalkerFinish, w.Cur, 0, -1)
		}
		n.finish(w, st)
		return false
	case actMove:
		dst := n.g.Neighbors(w.Cur)[edgeIdx]
		st.counters.steps++
		return n.relocate(w, dst, st)
	case actTeleport:
		// A restart counts a step of walk length but not an edge traversal.
		if n.tracer != nil {
			n.traceWalkerEvent(w, WalkerTeleport, w.Cur, 0, -1)
		}
		st.counters.restarts++
		return n.relocate(w, w.Origin, st)
	case actPark:
		if n.tracer != nil {
			n.traceWalkerEvent(w, WalkerPark, w.pendingTarget, 0, -1)
		}
		st.out.addQuery(n.part.Owner(w.pendingTarget), w.ID, w.pendingTarget, w.pendingArg)
		st.counters.queries++
		st.parked = append(st.parked, w)
		return true
	}
	panic(fmt.Sprintf("core: unknown step action %d", act)) //kk:alloc-ok panic path: an unknown step action is an engine bug, never steady state
}

// observeStep reports an accepted step's trial burst to telemetry, the
// adaptation cells, and (for sampled walkers) the causal trace; none
// consumes walker RNG. The trace event fires at acceptance, while the
// walker still resides at the deciding vertex, so every stepping strategy
// and the phase-C resolution path emit through this one site.
func (n *node) observeStep(w *Walker, obsTrials int64, cellTrials uint32) {
	if n.obs != nil {
		n.obs.ObserveStepTrials(obsTrials)
	}
	if n.adapt != nil {
		n.adapt.record(w.Cur-n.lo, cellTrials)
	}
	if n.tracer != nil {
		n.traceWalkerEvent(w, WalkerStep, w.Cur, int32(obsTrials), -1)
	}
}

// fullScanChoose is the exact O(deg) step used after FallbackTrials
// consecutive rejections (or at a vertex adapted to ModeExact): evaluate
// Pd for every edge and sample the product distribution directly, using
// the worker's scratch buffers so the steady state allocates nothing.
// ok=false means no edge has positive probability (the paper's "no out
// edges ... are eligible"). obsTrials/cellTrials are the dart count
// attributed to the completed step.
func (n *node) fullScanChoose(w *Walker, deg int, smp sampling.StaticSampler, st *workerState, obsTrials int64, cellTrials uint32) (int, bool) {
	bc := &st.counters
	if cap(st.scanWeights) < deg {
		st.scanWeights = make([]float64, deg) //kk:alloc-ok amortized: scan scratch grows to the max degree seen, then is reused
	}
	weights := st.scanWeights[:deg]
	total := 0.0
	for i := 0; i < deg; i++ {
		e := n.g.EdgeAt(w.Cur, i)
		pd := n.alg.EdgeDynamicComp(w, e, 0, false)
		bc.edgeProbEvals++
		weights[i] = smp.WeightAt(i) * pd
		total += weights[i]
	}
	if total <= 0 {
		return 0, false
	}
	if err := st.scanITS.ResetFloat64(weights); err != nil {
		panic(fmt.Sprintf("core: full-scan fallback at vertex %d: %v", w.Cur, err)) //kk:alloc-ok panic path: invalid full-scan weights abort the run, never steady state
	}
	bc.trials++
	n.observeStep(w, obsTrials, cellTrials)
	return st.scanITS.Sample(&w.R), true
}

// relocate places w at dst, updating state, visit counts, and path, and
// migrating the walker if dst is owned by another node. A migrated
// walker's storage is recycled after encoding.
func (n *node) relocate(w *Walker, dst graph.VertexID, st *workerState) bool {
	if k := n.alg.HistorySize; k > 0 {
		w.History = append(w.History, w.Cur)
		if len(w.History) > k {
			copy(w.History, w.History[len(w.History)-k:])
			w.History = w.History[:k]
		}
	}
	w.Prev = w.Cur
	w.Cur = dst
	w.Step++
	w.sampling = false
	if w.Path != nil {
		w.Path = append(w.Path, dst)
	}
	if n.res.Visits != nil {
		atomic.AddInt64(&n.res.Visits[dst], 1)
	}
	if n.part.Owns(n.rank, dst) {
		return true
	}
	if n.tracer != nil {
		n.traceWalkerEvent(w, WalkerMigrate, dst, 0, n.part.Owner(dst))
	}
	if n.localMig != nil {
		// Object-path migration: the walker itself transfers to the
		// destination rank (and is eventually recycled into that rank's
		// arena), so its storage is NOT freed here.
		st.out.addLocalMigration(n.part.Owner(dst), w)
		return false
	}
	st.out.addMigration(n.part.Owner(dst), w)
	st.free = append(st.free, w)
	return false
}

// finish retires a walker and records its results. The recorded path is
// detached before the walker's storage is recycled.
func (n *node) finish(w *Walker, st *workerState) {
	st.counters.terminations++
	n.res.Lengths.Observe(int64(w.Step))
	if n.res.Paths != nil {
		n.res.Paths[w.ID] = w.Path
		w.Path = nil
	}
	st.free = append(st.free, w)
}

// receiveWalkers decodes a migration batch into the local walker list,
// reusing arena walkers recycled by earlier supersteps.
//
//kk:hotpath
func (n *node) receiveWalkers(payload []byte) error {
	for len(payload) > 0 {
		w := n.pool.get()
		rest, err := decodeWalkerInto(w, payload)
		if err != nil {
			n.pool.put(w)
			return err
		}
		payload = rest
		n.walkers = append(n.walkers, w)
	}
	return nil
}

// queryRecordLen is the wire size of one state-query record.
const queryRecordLen = 20

// phaseB answers all incoming state queries, processing chunks of records
// in parallel (chunk size 128, matching the walker chunks) and flushing
// each worker's batched responses.
//
//kk:phase query
func (n *node) phaseB(queryMsgs []transport.Message, light bool) error {
	var total int
	for _, m := range queryMsgs {
		if len(m.Payload)%queryRecordLen != 0 {
			return fmt.Errorf("core: malformed query batch (%d bytes)", len(m.Payload))
		}
		total += len(m.Payload) / queryRecordLen
		if n.obs != nil {
			n.obs.ObserveQueryBatch(int64(len(m.Payload) / queryRecordLen))
		}
	}
	if total == 0 {
		return nil
	}

	// Flatten message boundaries into a global record index space (spans
	// and errs live in node scratch — phase B runs on the loop goroutine).
	if cap(n.spansBuf) < len(queryMsgs) {
		n.spansBuf = make([]querySpan, len(queryMsgs))
	}
	spans := n.spansBuf[:len(queryMsgs)]
	idx := 0
	for i, m := range queryMsgs {
		spans[i] = querySpan{m: m, first: idx}
		idx += len(m.Payload) / queryRecordLen
	}

	workers := n.cfg.Workers
	if light || workers > (total+walkerChunk-1)/walkerChunk {
		workers = 1
	}
	var next atomic.Int64
	if cap(n.errsBuf) < workers {
		n.errsBuf = make([]error, workers)
	}
	errs := n.errsBuf[:workers]
	clear(errs)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			out := n.wstates[wk].out // flushed (empty) since phase A
			for {
				base := int(next.Add(walkerChunk)) - walkerChunk
				if base >= total {
					break
				}
				end := base + walkerChunk
				if end > total {
					end = total
				}
				if err := n.answerQueryRange(spans, base, end, out); err != nil {
					errs[wk] = err
					break
				}
			}
			out.flush(n.ep, n.localMig)
		}(wk)
	}
	wg.Wait()
	// The spans scratch outlives the superstep; the payload views inside
	// its Messages must not.
	clear(spans)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// querySpan indexes one incoming query batch within the flattened global
// record space of a phase B.
type querySpan struct {
	m     transport.Message
	first int // global index of the batch's first record
}

// answerQueryRange answers the global record range [base, end) against the
// flattened query spans.
//
//kk:hotpath
func (n *node) answerQueryRange(spans []querySpan, base, end int, out *outBufs) error {
	// Locate the span containing base.
	si := 0
	for si+1 < len(spans) && spans[si+1].first <= base {
		si++
	}
	for i := base; i < end; {
		sp := spans[si]
		count := len(sp.m.Payload) / queryRecordLen
		local := i - sp.first
		if local >= count {
			si++
			continue
		}
		off := local * queryRecordLen
		payload := sp.m.Payload
		walkerID := int64(binary.LittleEndian.Uint64(payload[off:]))
		target := binary.LittleEndian.Uint32(payload[off+8:])
		arg := binary.LittleEndian.Uint64(payload[off+12:])
		if !n.part.Owns(n.rank, target) {
			return fmt.Errorf("core: query for vertex %d routed to wrong node %d", target, n.rank) //kk:alloc-ok error path: a misrouted query aborts the run, never steady state
		}
		out.addResponse(sp.m.From, walkerID, n.alg.answerQuery(n.g, target, arg))
		i++
	}
	return nil
}

// applyResponses resolves parked walkers' pending darts. A stored dart's
// resolution compares its Y against Pd only (AcceptMain consumes no RNG),
// so it is unaffected by any sampler-structure switch at an intervening
// adaptation barrier.
//
//kk:hotpath
func (n *node) applyResponses(payload []byte, st *workerState) error {
	if len(payload)%16 != 0 {
		return fmt.Errorf("core: malformed response batch (%d bytes)", len(payload)) //kk:alloc-ok error path: a malformed response batch aborts the run, never steady state
	}
	for off := 0; off < len(payload); off += 16 {
		walkerID := int64(binary.LittleEndian.Uint64(payload[off:]))
		result := binary.LittleEndian.Uint64(payload[off+8:])
		w, ok := n.awaiting[walkerID]
		if !ok {
			return fmt.Errorf("core: response for unknown walker %d", walkerID) //kk:alloc-ok error path: a response for an unknown walker aborts the run, never steady state
		}
		delete(n.awaiting, walkerID)
		w.awaiting = false

		e := n.g.EdgeAt(w.Cur, int(w.pendingEdge))
		pd := n.alg.EdgeDynamicComp(w, e, result, true)
		st.counters.edgeProbEvals++
		rj := n.rejectionOf(w.Cur)
		p := sampling.Proposal{EdgeIdx: int(w.pendingEdge), Appendix: -1, Y: w.pendingY}
		if rj.AcceptMain(p, pd) {
			// The accepted dart was thrown in an earlier phase A burst whose
			// count is no longer tracked; observe the resolving dart alone.
			n.observeStep(w, 1, 1)
			if !n.applyAction(w, actMove, int(w.pendingEdge), st) {
				n.removeWalker(w)
			}
		}
		// On rejection the walker simply stays mid-step (sampling == true)
		// and retries at the next superstep — the paper's "less fortunate
		// ones stuck at their current vertex for the next iteration".
	}
	return nil
}

// removeWalker drops a migrated walker from the local list (slow path,
// only used when a phase-C acceptance crosses nodes).
func (n *node) removeWalker(w *Walker) {
	for i, x := range n.walkers {
		if x == w {
			last := len(n.walkers) - 1
			n.walkers[i] = n.walkers[last]
			n.walkers = n.walkers[:last]
			return
		}
	}
	panic(fmt.Sprintf("core: walker %d not found for removal", w.ID)) //kk:alloc-ok panic path: removing an untracked walker is an engine bug, never steady state
}

func (n *node) samplerOf(v graph.VertexID) sampling.StaticSampler {
	return n.samplers[v-n.lo]
}

func (n *node) rejectionOf(v graph.VertexID) *sampling.Rejection {
	return n.rejections[v-n.lo]
}
