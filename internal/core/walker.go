// Package core implements the KnightKing engine: a walker-centric,
// bulk-synchronous distributed random walk executor built around rejection
// sampling (paper §4–6). Users describe an algorithm with an Algorithm
// value (the Go rendering of the paper's edgeStaticComp / edgeDynamicComp /
// dynamicCompUpperBound / dynamicCompLowerBound / postStateQuery API,
// Figure 4) and Run executes it over a simulated multi-node cluster.
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"knightking/internal/graph"
	"knightking/internal/rng"
)

// Walker is the unit of computation: an independent agent that repeatedly
// samples an out-edge of its current vertex and moves. Walkers migrate
// between nodes with their full state, including their private RNG stream,
// which makes every walk deterministic in (seed, walker ID) regardless of
// cluster size or scheduling.
type Walker struct {
	// ID is the dense walker index in [0, NumWalkers).
	ID int64
	// Cur is the current residing vertex.
	Cur graph.VertexID
	// Prev is the previously visited vertex (last(w)); valid when Step > 0.
	Prev graph.VertexID
	// Step counts moves taken so far.
	Step int32
	// Tag is algorithm-defined walker state (e.g. the meta-path scheme
	// index assigned to this walker).
	Tag int32
	// Origin is the walker's start vertex, the target of restart
	// teleports (random walk with restart).
	Origin graph.VertexID
	// R is the walker's private random stream.
	R rng.Rand

	// Path holds the visited vertices (including the start) when path
	// recording is enabled.
	Path []graph.VertexID

	// History holds the walker's most recent previously-visited vertices
	// (most recent last, excluding Cur), maintained by the engine when the
	// algorithm sets HistorySize > 0 and carried across migrations.
	History []graph.VertexID

	// sampling marks a walker that has passed this step's termination
	// checks but not yet moved (mid-step across supersteps, possible only
	// for higher-order walks awaiting or retrying after remote queries).
	sampling bool
	// awaiting marks a walker blocked on a remote state query.
	awaiting bool
	// pendingEdge / pendingY hold the dart under evaluation while a remote
	// query is outstanding.
	pendingEdge int32
	pendingY    float64
	// pendingTarget / pendingArg record the outstanding query itself so a
	// checkpointed walker can re-issue it verbatim on resume.
	pendingTarget graph.VertexID
	pendingArg    uint64
}

// rngWords gives codec access to the walker RNG state.
func rngWords(r *rng.Rand) *[4]uint64 { return r.State() }

const walkerFixedLen = 8 + 4 + 4 + 4 + 4 + 4 + 32 + 1 + 1 + 2 // ID,Cur,Prev,Step,Tag,Origin,R,flags,histLen,pathLen

// pendingLen is the extra record length for awaiting walkers (checkpoint
// segments only): pendingEdge, pendingY, pendingTarget, pendingArg.
const pendingLen = 4 + 8 + 4 + 8

// InHistory reports whether v is among the walker's tracked recent
// vertices (requires Algorithm.HistorySize > 0 to be maintained).
func (w *Walker) InHistory(v graph.VertexID) bool {
	for _, h := range w.History {
		if h == v {
			return true
		}
	}
	return false
}

// encodeWalker appends w's wire form to buf and returns the extended slice.
// A walker never migrates while awaiting a query, so migration records
// carry no pending-dart bytes; checkpoint segments reuse the same codec and
// do encode awaiting walkers, whose records grow by pendingLen bytes
// (flag bit 1) so the dart and its outstanding query survive a resume.
//
//kk:hotpath
func encodeWalker(buf []byte, w *Walker) []byte {
	var tmp [walkerFixedLen]byte
	binary.LittleEndian.PutUint64(tmp[0:], uint64(w.ID))
	binary.LittleEndian.PutUint32(tmp[8:], w.Cur)
	binary.LittleEndian.PutUint32(tmp[12:], w.Prev)
	binary.LittleEndian.PutUint32(tmp[16:], uint32(w.Step))
	binary.LittleEndian.PutUint32(tmp[20:], uint32(w.Tag))
	binary.LittleEndian.PutUint32(tmp[24:], w.Origin)
	st := rngWords(&w.R)
	for i, word := range st {
		binary.LittleEndian.PutUint64(tmp[28+8*i:], word)
	}
	var flags byte
	if w.sampling {
		flags |= 1
	}
	if w.awaiting {
		flags |= 2
	}
	tmp[60] = flags
	if len(w.History) > 255 {
		panic(fmt.Sprintf("core: history length %d exceeds wire limit", len(w.History))) //kk:alloc-ok panic path: a wire-limit overflow aborts the run, never steady state
	}
	tmp[61] = byte(len(w.History))
	if len(w.Path) > 1<<16-1 {
		panic(fmt.Sprintf("core: path length %d exceeds wire limit", len(w.Path))) //kk:alloc-ok panic path: a wire-limit overflow aborts the run, never steady state
	}
	binary.LittleEndian.PutUint16(tmp[62:], uint16(len(w.Path)))
	buf = append(buf, tmp[:]...)
	if w.awaiting {
		var pb [pendingLen]byte
		binary.LittleEndian.PutUint32(pb[0:], uint32(w.pendingEdge))
		binary.LittleEndian.PutUint64(pb[4:], math.Float64bits(w.pendingY))
		binary.LittleEndian.PutUint32(pb[12:], w.pendingTarget)
		binary.LittleEndian.PutUint64(pb[16:], w.pendingArg)
		buf = append(buf, pb[:]...)
	}
	for _, v := range w.History {
		var vb [4]byte
		binary.LittleEndian.PutUint32(vb[:], v)
		buf = append(buf, vb[:]...)
	}
	for _, v := range w.Path {
		var vb [4]byte
		binary.LittleEndian.PutUint32(vb[:], v)
		buf = append(buf, vb[:]...)
	}
	return buf
}

// decodeWalker reads one walker from buf, returning the walker and the
// remaining bytes.
func decodeWalker(buf []byte) (*Walker, []byte, error) {
	w := &Walker{}
	rest, err := decodeWalkerInto(w, buf)
	if err != nil {
		return nil, nil, err
	}
	return w, rest, nil
}

// decodeWalkerInto reads one walker from buf into w, overwriting every
// field and reusing w's History/Path capacity where possible — the
// zero-allocation decode path for pooled walkers on the migration hot
// path. On error w is left partially written; callers recycle it anyway.
//
//kk:hotpath
func decodeWalkerInto(w *Walker, buf []byte) ([]byte, error) {
	if len(buf) < walkerFixedLen {
		return nil, fmt.Errorf("core: truncated walker record (%d bytes)", len(buf)) //kk:alloc-ok error path: a corrupt walker record aborts the run, never steady state
	}
	w.ID = int64(binary.LittleEndian.Uint64(buf[0:]))
	w.Cur = binary.LittleEndian.Uint32(buf[8:])
	w.Prev = binary.LittleEndian.Uint32(buf[12:])
	w.Step = int32(binary.LittleEndian.Uint32(buf[16:]))
	w.Tag = int32(binary.LittleEndian.Uint32(buf[20:]))
	w.Origin = binary.LittleEndian.Uint32(buf[24:])
	st := rngWords(&w.R)
	for i := range st {
		st[i] = binary.LittleEndian.Uint64(buf[28+8*i:])
	}
	if buf[60]&^byte(3) != 0 {
		return nil, fmt.Errorf("core: unknown walker flag bits %#x", buf[60]) //kk:alloc-ok error path: a corrupt walker record aborts the run, never steady state
	}
	w.sampling = buf[60]&1 != 0
	w.awaiting = buf[60]&2 != 0
	histLen := int(buf[61])
	pathLen := int(binary.LittleEndian.Uint16(buf[62:]))
	buf = buf[walkerFixedLen:]
	if w.awaiting {
		if len(buf) < pendingLen {
			return nil, fmt.Errorf("core: truncated walker pending dart") //kk:alloc-ok error path: a corrupt walker record aborts the run, never steady state
		}
		w.pendingEdge = int32(binary.LittleEndian.Uint32(buf[0:]))
		w.pendingY = math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		w.pendingTarget = binary.LittleEndian.Uint32(buf[12:])
		w.pendingArg = binary.LittleEndian.Uint64(buf[16:])
		buf = buf[pendingLen:]
	} else {
		w.pendingEdge, w.pendingY, w.pendingTarget, w.pendingArg = 0, 0, 0, 0
	}
	if histLen > 0 {
		if len(buf) < 4*histLen {
			return nil, fmt.Errorf("core: truncated walker history") //kk:alloc-ok error path: a corrupt walker record aborts the run, never steady state
		}
		if cap(w.History) >= histLen {
			w.History = w.History[:histLen]
		} else {
			w.History = make([]graph.VertexID, histLen) //kk:alloc-ok amortized: pooled walker history grows to working size, then is reused
		}
		for i := 0; i < histLen; i++ {
			w.History[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
		buf = buf[4*histLen:]
	} else {
		w.History = w.History[:0]
	}
	if pathLen > 0 {
		if len(buf) < 4*pathLen {
			return nil, fmt.Errorf("core: truncated walker path") //kk:alloc-ok error path: a corrupt walker record aborts the run, never steady state
		}
		if cap(w.Path) >= pathLen {
			w.Path = w.Path[:pathLen]
		} else {
			w.Path = make([]graph.VertexID, 0, pathLen+16)[:pathLen] //kk:alloc-ok amortized: pooled walker path grows to working size, then is reused
		}
		for i := 0; i < pathLen; i++ {
			w.Path[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
		buf = buf[4*pathLen:]
	} else {
		// Path must be nil, not merely empty: the engine records paths
		// exactly when the walker carries a non-nil Path.
		w.Path = nil
	}
	return buf, nil
}
