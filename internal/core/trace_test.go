package core_test

// Causal-tracing passivity guard: enabling Config.Trace (and the full
// observer+tracer collector) must leave walk output bit-identical, because
// trace hooks fire strictly after every RNG decision of the step they
// describe. Companion to obs's TestTelemetryDoesNotChangeWalkOutput.

import (
	"testing"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/obs/tracelog"
)

func tracedConfig(g *graph.Graph) core.Config {
	return core.Config{
		Graph: g,
		Algorithm: alg.Node2Vec(alg.Node2VecParams{
			P: 2, Q: 0.5, Length: 24, LowerBound: true, FoldOutlier: true,
		}),
		NumNodes:    3,
		Workers:     2,
		Seed:        11,
		RecordPaths: true,
	}
}

// TestTraceOnOffBitIdentical runs the same multi-rank node2vec walk with
// tracing off and fully on (collector as Observer + Tracer) and requires
// bit-identical paths, then sanity-checks the trace actually captured the
// run: superstep spans from every rank and at least one sampled walker
// journey with rejection trial counts.
func TestTraceOnOffBitIdentical(t *testing.T) {
	g := gen.UniformDegree(150, 6, 9)

	base, err := core.Run(tracedConfig(g))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	tc := tracelog.New(tracelog.Options{SampleEvery: 16, Ranks: 3, Job: "bitident"})
	cfg := tracedConfig(g)
	cfg.Observer = tc
	cfg.Trace = tc
	traced, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}

	if len(base.Paths) != len(traced.Paths) {
		t.Fatalf("path count %d != %d", len(base.Paths), len(traced.Paths))
	}
	for w := range base.Paths {
		a, b := base.Paths[w], traced.Paths[w]
		if len(a) != len(b) {
			t.Fatalf("walker %d: length %d != %d", w, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("walker %d diverged at step %d: %d != %d", w, i, a[i], b[i])
			}
		}
	}
	if base.Iterations != traced.Iterations {
		t.Errorf("iterations %d != %d", base.Iterations, traced.Iterations)
	}
	// Compare walk-defining counters. ExchangeNanos is wall-clock, and an
	// attached transport observer serializes local deliveries to measure
	// them (so BytesSent legitimately grows); neither is walk output.
	a, b := base.Counters, traced.Counters
	a.ExchangeNanos, b.ExchangeNanos = 0, 0
	a.BytesSent, b.BytesSent = 0, 0
	if a != b {
		t.Errorf("counters diverged:\n%+v\n%+v", a, b)
	}

	events, _ := tc.Events()
	supersteps := map[int16]int{}
	journeys := 0
	trialed := 0
	for _, ev := range events {
		switch {
		case ev.Kind == tracelog.KindSuperstep:
			supersteps[ev.Rank]++
		case ev.Walker >= 0:
			journeys++
			if ev.Walker%16 != 0 {
				t.Fatalf("journey event for unsampled walker %d", ev.Walker)
			}
			if ev.Kind == tracelog.KindWalkerStep && ev.B >= 1 {
				trialed++
			}
		}
	}
	for r := int16(0); r < 3; r++ {
		if supersteps[r] != traced.Iterations {
			t.Errorf("rank %d recorded %d superstep spans, want %d", r, supersteps[r], traced.Iterations)
		}
	}
	if journeys == 0 {
		t.Error("trace captured no walker journey events")
	}
	if trialed == 0 {
		t.Error("no step event carried a rejection trial count")
	}
}

// TestTraceSampledJourneyOrdered pins the per-walker causal ordering the
// Perfetto export relies on: a sampled walker's step counter never
// decreases across its journey events (each walker is stepped by one
// goroutine at a time, and the ring preserves arrival order per walker).
func TestTraceSampledJourneyOrdered(t *testing.T) {
	g := gen.UniformDegree(120, 5, 4)
	tc := tracelog.New(tracelog.Options{SampleEvery: 8, Ranks: 2, Job: "ordered"})
	cfg := core.Config{
		Graph:     g,
		Algorithm: alg.DeepWalk(20, false),
		NumNodes:  2,
		Workers:   2,
		Seed:      5,
		Observer:  tc,
		Trace:     tc,
	}
	if _, err := core.Run(cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	events, _ := tc.Events()
	lastStep := map[int64]int32{}
	finished := map[int64]bool{}
	for _, ev := range events {
		if ev.Walker < 0 {
			continue
		}
		if finished[ev.Walker] {
			t.Fatalf("walker %d has events after finishing", ev.Walker)
		}
		if ev.Step < lastStep[ev.Walker] {
			t.Fatalf("walker %d step went backwards: %d after %d", ev.Walker, ev.Step, lastStep[ev.Walker])
		}
		lastStep[ev.Walker] = ev.Step
		if ev.Kind == tracelog.KindWalkerFinish {
			finished[ev.Walker] = true
		}
	}
	if len(finished) == 0 {
		t.Error("no sampled walker finished")
	}
}
