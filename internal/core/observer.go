// Engine-side telemetry hooks. The engine emits observations through the
// Observer interface when Config.Observer is set; a nil observer costs one
// predictable branch per observation point, and no observation ever touches
// a walker's RNG stream, so enabling telemetry cannot change walk output.
// internal/obs provides the production implementation (histograms, span
// log, admin server); the engine only defines the contract.
package core

// SuperstepSpan is one rank's phase breakdown of one superstep — the
// engine's per-superstep trace record. Every rank emits one span per
// superstep it executes (including the final one that observes the global
// walker count reaching zero), so a run over R ranks and S supersteps
// yields R×S spans.
//
// The four duration fields partition the superstep's wall time:
//
//   - ComputeNanos: local walker processing (phase A), received-message
//     demux, query answering (phase B), and response resolution (phase C).
//   - ExchangeNanos: time inside transport Exchange calls — wire transfer
//     plus collective barrier wait, which the transport cannot separate.
//   - CheckpointNanos: snapshot encoding, segment write, and the extra
//     commit barrier, on supersteps where a checkpoint is due.
//   - BarrierNanos: the unattributed residual (total − compute − exchange −
//     checkpoint), dominated by goroutine scheduling delay around the
//     barrier; a rank consistently high here is a straggler's victim, not
//     the straggler itself.
type SuperstepSpan struct {
	// V is the JSONL encoding's schema version. The engine leaves it zero;
	// internal/obs stamps obs.SpanSchemaVersion when it encodes spans to a
	// -spans sink, so consumers of the JSONL stream can evolve safely.
	// (Records written before versioning existed carry no v field; readers
	// should treat a missing v as version 1.)
	V int `json:"v,omitempty"`
	// Rank is the emitting rank.
	Rank int `json:"rank"`
	// Iteration is the 1-based superstep index.
	Iteration int `json:"superstep"`
	// LightMode reports whether this rank ran the superstep single-worker.
	LightMode bool `json:"light"`
	// LocalWalkers is this rank's resident walker count at phase A start.
	LocalWalkers int `json:"local_walkers"`
	// GlobalWalkers is the cluster-wide live count agreed at the barrier
	// (walkers resident anywhere plus migrations in flight).
	GlobalWalkers int64 `json:"global_walkers"`
	// RecvMessages counts transport messages delivered to this rank during
	// the superstep's exchanges.
	RecvMessages int64 `json:"recv_msgs"`
	// RecvBytes counts the payload bytes of those messages.
	RecvBytes int64 `json:"recv_bytes"`

	ComputeNanos    int64 `json:"compute_ns"`
	ExchangeNanos   int64 `json:"exchange_ns"`
	BarrierNanos    int64 `json:"barrier_ns"`
	CheckpointNanos int64 `json:"checkpoint_ns"`

	// Gather/Move/Update break phase A's interleaved pipeline down by
	// stage, summed across workers (CPU time, so they can exceed the
	// superstep's wall-clock ComputeNanos share on multi-worker nodes).
	// All three are zero under scalar stepping.
	GatherNanos int64 `json:"gather_ns,omitempty"`
	MoveNanos   int64 `json:"move_ns,omitempty"`
	UpdateNanos int64 `json:"update_ns,omitempty"`
}

// Observer receives engine telemetry. Implementations must be safe for
// concurrent use: OnSuperstep is called by every rank's loop goroutine, and
// the Observe methods are called from worker goroutines inside a superstep.
//
// Observations are passive — they must not block (the engine calls them on
// hot paths) and they see engine state only through their arguments.
type Observer interface {
	// OnSuperstep delivers one rank's completed superstep span.
	OnSuperstep(span SuperstepSpan)
	// ObserveStepTrials records the rejection-sampling darts a walker threw
	// in the burst that completed one step (1 for static walks and
	// pre-accepted darts; higher under rejection pressure). Only called for
	// accepted steps, so the histogram's count approximates Steps.
	ObserveStepTrials(trials int64)
	// ObserveQueryBatch records the record count of one incoming state-query
	// batch at the start of phase B — the paper's walker-to-vertex query
	// traffic, per (sender, receiver) pair per superstep.
	ObserveQueryBatch(records int64)
}
