package core

// Allocation regression guards for the zero-alloc hot path. These run in
// the ordinary test suite (tier 1), so an accidental per-walker or
// per-message allocation fails CI immediately instead of surfacing as a
// silent throughput regression on the next benchmark sweep.

import (
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/rng"
)

// TestWalkerCodecZeroAlloc: encoding into a reused buffer and decoding
// into a reused walker must not allocate once the backing capacity exists
// — this is the steady state of the migration path.
func TestWalkerCodecZeroAlloc(t *testing.T) {
	w := &Walker{
		ID:      42,
		Origin:  3,
		Prev:    7,
		Cur:     9,
		Step:    5,
		R:       rng.Stream(1, 42),
		History: []graph.VertexID{1, 2, 3},
		Path:    []graph.VertexID{3, 1, 2, 7, 9},
	}
	buf := encodeWalker(nil, w)
	into := &Walker{}
	if _, err := decodeWalkerInto(into, buf); err != nil {
		t.Fatal(err)
	}
	// Warm: into now has History/Path capacity; buf has encoding capacity.
	allocs := testing.AllocsPerRun(100, func() {
		buf = encodeWalker(buf[:0], w)
		if _, err := decodeWalkerInto(into, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("walker encode/decode round trip allocates %.1f per op, want 0", allocs)
	}
}

// TestEngineRunAllocCeiling pins an allocation budget for a full multi-node
// in-process run. The budget covers setup (graph partitioning bookkeeping,
// sampler tables, worker state) plus the steady-state walker/message path,
// which after the arena/slab work contributes almost nothing — so the
// ceiling is far below one allocation per step and any reintroduced
// per-step or per-migration allocation (tens of thousands of steps here)
// blows through it at once.
func TestEngineRunAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget measurement")
	}
	g := gen.UniformDegree(600, 8, 271)
	cfg := Config{
		Graph:      g,
		Algorithm:  staticAlg(30),
		NumWalkers: 600,
		NumNodes:   4,
		Seed:       273,
	}
	if _, err := Run(cfg); err != nil { // warm shared caches (uniform samplers)
		t.Fatal(err)
	}
	var steps int64
	allocs := testing.AllocsPerRun(5, func() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		steps = res.Counters.Steps
	})
	// Measured ~1200 allocs for this config (18k steps, 0.07 allocs/step —
	// dominated by setup and per-superstep costs, not the walker path);
	// 2x headroom for toolchain variance. One alloc per step would be
	// ~18000 and one per migration ~5000.
	const ceiling = 2500
	t.Logf("%.1f allocs per run over %d steps (%.4f allocs/step)", allocs, steps, allocs/float64(steps))
	if allocs > ceiling {
		t.Fatalf("engine run allocates %.1f per run (ceiling %d): the zero-alloc hot path regressed", allocs, ceiling)
	}
}

// TestEngineRunAllocCeilingHigherOrder pins the same budget for the
// query/response machinery: parked walkers, query batches, response
// resolution, and the pooled migration path under a second-order walk.
func TestEngineRunAllocCeilingHigherOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget measurement")
	}
	g := gen.UniformDegree(300, 6, 277)
	cfg := Config{
		Graph:      g,
		Algorithm:  parityAlg(20),
		NumWalkers: 300,
		NumNodes:   4,
		Seed:       279,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var steps int64
	allocs := testing.AllocsPerRun(5, func() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		steps = res.Counters.Steps
	})
	// Measured ~5300 for this config (6k steps, 6k queries): two-phase
	// supersteps pay per-(dest, superstep) payload copies and worker
	// goroutine spawns, which dominate at this small scale. 2x headroom;
	// a reintroduced per-query or per-trial allocation adds >= 6000.
	const ceiling = 11000
	t.Logf("%.1f allocs per run over %d steps (%.4f allocs/step)", allocs, steps, allocs/float64(steps))
	if allocs > ceiling {
		t.Fatalf("higher-order run allocates %.1f per run (ceiling %d): the zero-alloc hot path regressed", allocs, ceiling)
	}
}
