package core

import (
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

// parityAlg is a second-order test algorithm: the walker queries the node
// owning its previous vertex and only accepts candidates whose parity
// matches the previous vertex's degree parity. It exercises the full
// two-round query machinery with an easily checkable invariant.
func parityAlg(length int) *Algorithm {
	return &Algorithm{
		Name:     "parity",
		MaxSteps: length,
		EdgeDynamicComp: func(w *Walker, e graph.Edge, result uint64, hasResult bool) float64 {
			if w.Step == 0 {
				return 1
			}
			if !hasResult {
				panic("parity Pd needs a query result")
			}
			if (uint64(e.Dst)+result)%2 == 0 {
				return 1
			}
			return 0.25
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
		PostQuery: func(w *Walker, e graph.Edge) (graph.VertexID, uint64, bool) {
			if w.Step == 0 {
				return 0, 0, false
			}
			return w.Prev, uint64(e.Dst), true
		},
		QueryHandler: func(g *graph.Graph, target graph.VertexID, arg uint64) uint64 {
			return uint64(g.Degree(target) % 2)
		},
	}
}

func TestHigherOrderWalkCompletes(t *testing.T) {
	g := gen.UniformDegree(100, 6, 31)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   parityAlg(6),
		NumNodes:    3,
		Seed:        1,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Terminations != int64(g.NumVertices()) {
		t.Fatalf("Terminations = %d", res.Counters.Terminations)
	}
	if res.Counters.Queries == 0 {
		t.Fatal("no state queries issued by a second-order walk")
	}
	if res.Counters.EdgeProbEvals == 0 {
		t.Fatal("no Pd evaluations")
	}
	for id, p := range res.Paths {
		if len(p) != 7 {
			t.Fatalf("walker %d path %v", id, p)
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("walker %d took non-edge", id)
			}
		}
	}
}

func TestHigherOrderDeterminismAcrossNodeCounts(t *testing.T) {
	g := gen.UniformDegree(120, 8, 33)
	var ref [][]graph.VertexID
	for _, nodes := range []int{1, 2, 5} {
		res, err := Run(Config{
			Graph:       g,
			Algorithm:   parityAlg(8),
			NumNodes:    nodes,
			Seed:        77,
			RecordPaths: true,
		})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if ref == nil {
			ref = res.Paths
			continue
		}
		assertSamePaths(t, ref, res.Paths)
	}
}

func TestHigherOrderQueriesRouteToOwners(t *testing.T) {
	// With a custom handler that checks ownership (the engine already
	// errors on misrouted queries), a multi-node run exercising many
	// cross-partition prev/cur pairs must succeed.
	g := gen.UniformDegree(200, 10, 35)
	_, err := Run(Config{
		Graph:     g,
		Algorithm: parityAlg(10),
		NumNodes:  7,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHigherOrderRejectionRetriesAcrossSupersteps(t *testing.T) {
	// Pd = 0.25 for half the candidates means frequent rejections; the
	// iteration count must exceed the walk length (stragglers retry),
	// which is the behavior Figure 5 is about.
	g := gen.UniformDegree(60, 6, 37)
	res, err := Run(Config{
		Graph:     g,
		Algorithm: parityAlg(5),
		NumNodes:  2,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations <= 5 {
		t.Fatalf("iterations = %d, expected straggler supersteps beyond walk length", res.Iterations)
	}
	if res.Counters.Trials <= res.Counters.Steps {
		t.Fatalf("trials %d <= steps %d despite rejections", res.Counters.Trials, res.Counters.Steps)
	}
}
