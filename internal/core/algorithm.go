package core

import (
	"fmt"

	"knightking/internal/graph"
	"knightking/internal/rng"
	"knightking/internal/sampling"
)

// Algorithm specifies a random walk in the paper's unified form (§2.2):
// the unnormalized transition probability of edge e for walker w at vertex
// v is Ps(e) · Pd(e, v, w) · Pe(v, w). Zero-valued fields select the
// engine defaults (uniform Ps, constant Pd ≡ 1, run forever), so a static
// unbiased walk needs nothing but a termination condition.
//
// The fields correspond one-to-one with the paper's Figure 4 API:
//
//	EdgeStaticComp        -> edgeStaticComp
//	EdgeDynamicComp       -> edgeDynamicComp (+ getStateQueryResult)
//	UpperBound            -> dynamicCompUpperBound
//	LowerBound            -> dynamicCompLowerBound
//	PostQuery             -> postStateQuery / postNeighbourQuery
//	Outliers/LocateOutlier-> outlier declaration APIs
//	MaxSteps/TerminationProb -> the Pe component
type Algorithm struct {
	// Name labels the algorithm in logs and results.
	Name string

	// Biased selects Ps = edge weight (requires a weighted graph unless
	// EdgeStaticComp is also set). When false and EdgeStaticComp is nil,
	// Ps ≡ 1 (unbiased).
	Biased bool

	// EdgeStaticComp overrides the static component Ps for v's i-th edge.
	// It must be walker-independent; the engine precomputes per-vertex
	// alias tables from it at initialization.
	EdgeStaticComp func(g *graph.Graph, v graph.VertexID, i int) float32

	// EdgeDynamicComp computes the dynamic component Pd for candidate edge
	// e at walker w's current vertex. queryResult is valid iff hasResult is
	// true (a PostQuery round-trip completed for this candidate). nil means
	// the walk is static: the engine samples directly from the alias table
	// with no rejection step.
	EdgeDynamicComp func(w *Walker, e graph.Edge, queryResult uint64, hasResult bool) float64

	// UpperBound returns the envelope Q(v) >= Pd over all non-outlier
	// edges at v. Mandatory when EdgeDynamicComp is set.
	UpperBound func(g *graph.Graph, v graph.VertexID) float64

	// LowerBound returns L(v) <= Pd over all edges at v, enabling
	// pre-acceptance (optional; nil disables).
	LowerBound func(g *graph.Graph, v graph.VertexID) float64

	// Outliers declares per-vertex outlier appendices: edges whose Pd may
	// exceed Q(v). Optional. Each appendix's Pd must be computable locally
	// (without PostQuery) once the edge is located.
	Outliers func(g *graph.Graph, v graph.VertexID) []sampling.Appendix

	// LocateOutlier resolves an appendix tag to the concrete edge index at
	// w's current vertex, or -1 if that outlier edge does not exist (e.g.
	// no return edge on the first step). Mandatory when Outliers is set.
	LocateOutlier func(g *graph.Graph, v graph.VertexID, w *Walker, tag int) int

	// PostQuery reports whether evaluating Pd for candidate edge e needs a
	// remote walker-to-vertex state query, and if so which vertex to ask
	// and with what argument. nil marks a first-order (or static) walk;
	// the engine then skips the two query message rounds entirely.
	PostQuery func(w *Walker, e graph.Edge) (target graph.VertexID, arg uint64, needed bool)

	// QueryHandler answers a state query on the node owning target. nil
	// selects the default neighborhood query: result 1 iff target has an
	// edge to vertex arg (the paper's postNeighbourQuery).
	QueryHandler func(g *graph.Graph, target graph.VertexID, arg uint64) uint64

	// MaxSteps terminates a walk after this many moves (0 = no limit).
	MaxSteps int
	// TerminationProb terminates a walk before each move with this
	// probability (the paper's PPR-style Pe; 0 disables).
	TerminationProb float64
	// RestartProb teleports the walker back to its origin vertex before a
	// move with this probability (random walk with restart, the classic
	// PPR formulation of Tong et al. cited by the paper). A teleport
	// advances Step (so MaxSteps bounds total walk length) but is not an
	// edge traversal: it is excluded from the Steps counter that the
	// edges/step metric divides by.
	RestartProb float64

	// InitWalker customizes a walker at start (assign Tag, etc.).
	InitWalker func(w *Walker, r *rng.Rand)

	// HistorySize makes the engine maintain each walker's trail of the
	// most recently visited vertices (Walker.History, most recent last),
	// carried across migrations. This supports order-K algorithms — the
	// paper's walker state "carries necessary history information such as
	// the previous n vertices visited". 0 keeps only Prev.
	HistorySize int

	// ZeroMassCheck, for higher-order walks that can have zero acceptance
	// mass (e.g. typed walks with no eligible edge at a vertex), reports
	// whether walker w has no positively-weighted edge at v. The engine
	// calls it only after FallbackTrials consecutive rejections — the
	// full-scan fallback is unavailable when Pd needs remote queries — and
	// terminates the walk when it returns true (the paper's "no out edges
	// ... are eligible" rule). When nil, a rejection-saturated higher-order
	// walker simply yields its superstep and retries.
	ZeroMassCheck func(g *graph.Graph, v graph.VertexID, w *Walker) bool

	// FallbackTrials bounds consecutive rejected trials at one vertex
	// before the engine falls back to an exact full scan (counting every
	// Pd evaluation), which guarantees progress when the acceptance ratio
	// is pathologically low or zero-eligible-mass walks must terminate.
	// 0 selects the default (64). Only local-Pd algorithms (PostQuery ==
	// nil) can use the fallback; higher-order walks must guarantee
	// positive acceptance mass, which node2vec does by construction.
	FallbackTrials int
}

// validate checks the consistency rules above.
func (a *Algorithm) validate(g *graph.Graph) error {
	if a.EdgeDynamicComp != nil && a.UpperBound == nil {
		return fmt.Errorf("core: algorithm %q has EdgeDynamicComp but no UpperBound (the envelope Q is mandatory for dynamic walks)", a.Name)
	}
	if a.Outliers != nil && a.LocateOutlier == nil {
		return fmt.Errorf("core: algorithm %q declares Outliers but no LocateOutlier", a.Name)
	}
	if a.Biased && a.EdgeStaticComp == nil && !g.Weighted() {
		return fmt.Errorf("core: algorithm %q is biased but the graph is unweighted", a.Name)
	}
	if a.MaxSteps < 0 {
		return fmt.Errorf("core: algorithm %q has negative MaxSteps", a.Name)
	}
	if a.TerminationProb < 0 || a.TerminationProb > 1 {
		return fmt.Errorf("core: algorithm %q has TerminationProb %v outside [0,1]", a.Name, a.TerminationProb)
	}
	if a.RestartProb < 0 || a.RestartProb > 1 {
		return fmt.Errorf("core: algorithm %q has RestartProb %v outside [0,1]", a.Name, a.RestartProb)
	}
	if a.MaxSteps == 0 && a.TerminationProb == 0 {
		return fmt.Errorf("core: algorithm %q never terminates (set MaxSteps or TerminationProb)", a.Name)
	}
	if a.HistorySize < 0 || a.HistorySize > 255 {
		return fmt.Errorf("core: algorithm %q HistorySize %d outside [0,255]", a.Name, a.HistorySize)
	}
	return nil
}

// dynamic reports whether the walk has a dynamic component.
func (a *Algorithm) dynamic() bool { return a.EdgeDynamicComp != nil }

// higherOrder reports whether the walk needs remote state queries.
func (a *Algorithm) higherOrder() bool { return a.PostQuery != nil }

// staticWeight returns Ps for v's i-th edge under this algorithm.
func (a *Algorithm) staticWeight(g *graph.Graph, v graph.VertexID, i int) float32 {
	if a.EdgeStaticComp != nil {
		return a.EdgeStaticComp(g, v, i)
	}
	if a.Biased {
		return g.EdgeWeight(v, i)
	}
	return 1
}

// uniformStatic reports whether Ps ≡ 1, letting the engine skip alias
// tables and use O(1) uniform candidate sampling.
func (a *Algorithm) uniformStatic() bool {
	return a.EdgeStaticComp == nil && !a.Biased
}

// answerQuery runs the query handler (or the default neighborhood check).
func (a *Algorithm) answerQuery(g *graph.Graph, target graph.VertexID, arg uint64) uint64 {
	if a.QueryHandler != nil {
		return a.QueryHandler(g, target, arg)
	}
	if g.HasEdge(target, graph.VertexID(arg)) {
		return 1
	}
	return 0
}

// fallbackTrials returns the configured or default trial cap.
func (a *Algorithm) fallbackTrials() int {
	if a.FallbackTrials > 0 {
		return a.FallbackTrials
	}
	return 64
}
