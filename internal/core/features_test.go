package core

import (
	"math"
	"net"
	"sync"
	"testing"

	"knightking/internal/cluster"
	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/transport"
)

// listenLoopback reserves a loopback TCP port.
func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestStartWeightsDistribution(t *testing.T) {
	g := gen.Ring(4, 0)
	weights := []float32{1, 0, 0, 3}
	res, err := Run(Config{
		Graph:        g,
		Algorithm:    staticAlg(1),
		NumWalkers:   40000,
		StartWeights: weights,
		Seed:         1,
		RecordPaths:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	for _, p := range res.Paths {
		counts[p[0]]++
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight start vertices used: %v", counts)
	}
	got := counts[3] / float64(len(res.Paths))
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("start frequency of vertex 3 = %v, want 0.75", got)
	}
}

func TestStartWeightsValidation(t *testing.T) {
	g := gen.Ring(4, 0)
	if _, err := Run(Config{
		Graph: g, Algorithm: staticAlg(1),
		StartWeights: []float32{1, 2}, // wrong length
	}); err == nil {
		t.Fatal("bad StartWeights length accepted")
	}
	if _, err := Run(Config{
		Graph: g, Algorithm: staticAlg(1),
		StartWeights: []float32{1, 1, 1, 1},
		StartVertex:  func(int64) graph.VertexID { return 0 },
	}); err == nil {
		t.Fatal("StartVertex + StartWeights accepted")
	}
}

func TestStartWeightsDeterministicAcrossNodes(t *testing.T) {
	g := gen.UniformDegree(100, 6, 3)
	weights := make([]float32, 100)
	for i := range weights {
		weights[i] = float32(i%5) + 1
	}
	var ref [][]graph.VertexID
	for _, nodes := range []int{1, 3} {
		res, err := Run(Config{
			Graph: g, Algorithm: staticAlg(5), NumNodes: nodes,
			StartWeights: weights, Seed: 9, RecordPaths: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Paths
			continue
		}
		assertSamePaths(t, ref, res.Paths)
	}
}

func TestCountVisits(t *testing.T) {
	g := gen.Ring(6, 0)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(10),
		NumWalkers:  100,
		Seed:        2,
		CountVisits: true,
		NumNodes:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range res.Visits {
		total += v
	}
	// Every move lands on exactly one vertex.
	if total != res.Counters.Steps {
		t.Fatalf("visit total %d != steps %d", total, res.Counters.Steps)
	}
}

func TestCountVisitsMatchesPaths(t *testing.T) {
	g := gen.UniformDegree(50, 6, 5)
	res, err := Run(Config{
		Graph: g, Algorithm: staticAlg(8), Seed: 7,
		CountVisits: true, RecordPaths: true, NumNodes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, g.NumVertices())
	for _, p := range res.Paths {
		for _, v := range p[1:] { // start excluded
			want[v]++
		}
	}
	for v := range want {
		if want[v] != res.Visits[v] {
			t.Fatalf("vertex %d: visits %d, paths say %d", v, res.Visits[v], want[v])
		}
	}
}

func TestRestartTeleports(t *testing.T) {
	// Directed path graph: without restarts, walkers from 0 would stop at
	// the sink. With restarts they teleport back to their origin.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	res, err := Run(Config{
		Graph: g,
		Algorithm: &Algorithm{
			Name: "rwr-ish", RestartProb: 0.5, MaxSteps: 200,
		},
		NumWalkers:  50,
		StartVertex: func(int64) graph.VertexID { return 0 },
		Seed:        3,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Restarts == 0 {
		t.Fatal("no restarts happened")
	}
	for _, p := range res.Paths {
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) && p[i] != 0 {
				t.Fatalf("non-edge move that is not a teleport to origin: %d->%d", p[i-1], p[i])
			}
		}
	}
}

func TestRestartStepAccounting(t *testing.T) {
	g := gen.Ring(8, 0)
	res, err := Run(Config{
		Graph: g,
		Algorithm: &Algorithm{
			Name: "restarty", RestartProb: 0.3, MaxSteps: 20,
		},
		NumWalkers: 500,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Walk length counts both edge moves and teleports; the ring has no
	// sinks so every walker reaches exactly MaxSteps.
	if got := res.Lengths.Mean(); got != 20 {
		t.Fatalf("mean walk length %v, want 20", got)
	}
	if res.Counters.Steps+res.Counters.Restarts != 500*20 {
		t.Fatalf("steps %d + restarts %d != 10000", res.Counters.Steps, res.Counters.Restarts)
	}
	if res.Counters.Restarts == 0 || res.Counters.Steps == 0 {
		t.Fatal("expected a mix of moves and restarts")
	}
}

func TestRestartDeterministicAcrossNodes(t *testing.T) {
	g := gen.UniformDegree(90, 6, 11)
	var ref [][]graph.VertexID
	for _, nodes := range []int{1, 4} {
		res, err := Run(Config{
			Graph: g,
			Algorithm: &Algorithm{
				Name: "restarty", RestartProb: 0.2, MaxSteps: 15,
			},
			NumNodes: nodes, Seed: 13, RecordPaths: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Paths
			continue
		}
		assertSamePaths(t, ref, res.Paths)
	}
}

func TestSamplerKindITSMatchesAlias(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(200, 10, 15), 1, 5, 17)
	freq := func(kind string, seed uint64) map[graph.VertexID]float64 {
		res, err := Run(Config{
			Graph:       g,
			Algorithm:   &Algorithm{Name: "b", Biased: true, MaxSteps: 1},
			NumWalkers:  40000,
			StartVertex: func(int64) graph.VertexID { return 0 },
			Seed:        seed,
			RecordPaths: true,
			SamplerKind: kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[graph.VertexID]float64)
		for _, p := range res.Paths {
			out[p[1]]++
		}
		for k := range out {
			out[k] /= float64(len(res.Paths))
		}
		return out
	}
	alias := freq("alias", 1)
	its := freq("its", 2)
	for v, a := range alias {
		if math.Abs(a-its[v]) > 0.015 {
			t.Fatalf("alias and ITS disagree at %d: %v vs %v", v, a, its[v])
		}
	}
}

func TestSamplerKindValidation(t *testing.T) {
	g := gen.Ring(5, 0)
	if _, err := Run(Config{Graph: g, Algorithm: staticAlg(1), SamplerKind: "magic"}); err == nil {
		t.Fatal("bad SamplerKind accepted")
	}
}

func TestEngineOverTCPMatchesInProc(t *testing.T) {
	// The acid test for the transport abstraction: the same walk over real
	// TCP loopback must produce byte-identical paths.
	g := gen.UniformDegree(80, 6, 19)
	inproc, err := Run(Config{
		Graph: g, Algorithm: parityAlg(5), NumNodes: 3, Seed: 21, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	eps := dialTCPGroup(t, 3)
	tcp, err := Run(Config{
		Graph: g, Algorithm: parityAlg(5), Endpoints: eps, Seed: 21, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePaths(t, inproc.Paths, tcp.Paths)
	if tcp.Counters.Steps != inproc.Counters.Steps {
		t.Fatalf("step counts differ: %d vs %d", tcp.Counters.Steps, inproc.Counters.Steps)
	}
}

// dialTCPGroup brings up an n-rank loopback TCP mesh.
func dialTCPGroup(t *testing.T, n int) []transport.Endpoint {
	t.Helper()
	// Reserve ports.
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := listenLoopback()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		lns = append(lns, ln)
	}
	for _, ln := range lns {
		ln.Close()
	}
	eps := make([]transport.Endpoint, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = transport.DialTCPGroup(i, addrs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
	})
	return eps
}

func TestRunNodeMergesToFullRun(t *testing.T) {
	// Three "processes" (goroutines over real TCP), each running RunNode
	// with the identical config. The union of their partial results must
	// equal the single-process Run.
	g := gen.UniformDegree(90, 6, 71)
	mkCfg := func() Config {
		return Config{
			Graph:       g,
			Algorithm:   parityAlg(5),
			Seed:        73,
			RecordPaths: true,
			CountVisits: true,
		}
	}
	ref, err := Run(func() Config { c := mkCfg(); c.NumNodes = 3; return c }())
	if err != nil {
		t.Fatal(err)
	}

	eps := dialTCPGroup(t, 3)
	results := make([]*Result, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunNode(mkCfg(), eps[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Merge partial paths: each walker terminates on exactly one rank.
	merged := make([][]graph.VertexID, g.NumVertices())
	var terms, steps int64
	visits := make([]int64, g.NumVertices())
	for _, r := range results {
		terms += r.Counters.Terminations
		steps += r.Counters.Steps
		for id, p := range r.Paths {
			if p == nil {
				continue
			}
			if merged[id] != nil {
				t.Fatalf("walker %d terminated on two ranks", id)
			}
			merged[id] = p
		}
		for v, n := range r.Visits {
			visits[v] += n
		}
	}
	if terms != ref.Counters.Terminations || steps != ref.Counters.Steps {
		t.Fatalf("merged counters (%d terms, %d steps) != reference (%d, %d)",
			terms, steps, ref.Counters.Terminations, ref.Counters.Steps)
	}
	assertSamePaths(t, ref.Paths, merged)
	for v := range visits {
		if visits[v] != ref.Visits[v] {
			t.Fatalf("vertex %d merged visits %d != %d", v, visits[v], ref.Visits[v])
		}
	}
}

func TestRunNodeValidation(t *testing.T) {
	if _, err := RunNode(Config{}, nil); err == nil {
		t.Fatal("nil endpoint accepted")
	}
}

func TestRunNodeWithPartialGraphs(t *testing.T) {
	// The full distributed data placement: each rank holds only its vertex
	// range's adjacency (graph.Subgraph) plus the agreed partition
	// boundaries. Results must match the shared-full-graph run exactly.
	g := gen.UniformDegree(120, 6, 81)
	part := cluster.Partition1D(g, 3, 1)
	starts := part.Starts()

	ref, err := Run(Config{
		Graph: g, Algorithm: parityAlg(5), NumNodes: 3, Seed: 83,
		RecordPaths: true, PartitionStarts: starts,
	})
	if err != nil {
		t.Fatal(err)
	}

	eps := dialTCPGroup(t, 3)
	results := make([]*Result, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo, hi := part.Range(i)
			local := graph.Subgraph(g, lo, hi) // rank i's slice only
			results[i], errs[i] = RunNode(Config{
				Graph:           local,
				Algorithm:       parityAlg(5),
				Seed:            83,
				RecordPaths:     true,
				PartitionStarts: starts,
			}, eps[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	merged := make([][]graph.VertexID, g.NumVertices())
	for _, r := range results {
		for id, p := range r.Paths {
			if p != nil {
				merged[id] = p
			}
		}
	}
	assertSamePaths(t, ref.Paths, merged)
}

func TestRunPartialGraphRequiresPartitionStarts(t *testing.T) {
	g := gen.UniformDegree(50, 6, 85)
	local := graph.Subgraph(g, 0, 25)
	if _, err := Run(Config{Graph: local, Algorithm: staticAlg(3), NumNodes: 2, Seed: 1}); err == nil {
		t.Fatal("partial graph without PartitionStarts accepted")
	}
}

func TestRunPartitionStartsValidation(t *testing.T) {
	g := gen.UniformDegree(50, 6, 87)
	if _, err := Run(Config{
		Graph: g, Algorithm: staticAlg(3), NumNodes: 2, Seed: 1,
		PartitionStarts: []graph.VertexID{0, 25}, // wrong length and coverage
	}); err == nil {
		t.Fatal("bad PartitionStarts accepted")
	}
}
