package core

// The interleaved stepping pipeline (ThunderRW-style step interleaving):
// phase A claims walker batches and executes each step as three stages run
// stage-at-a-time across the batch —
//
//	gather: load each walker's degree, sampler table, and rejection
//	        dartboard (pure loads, no RNG);
//	move:   run the step decision, consuming each walker's private RNG
//	        stream (decideStep, shared with scalar stepping);
//	update: apply the decided outcomes — relocation, result recording,
//	        destination-grouped message emission (applyAction).
//
// Splitting the stages batches the irregular adjacency/sampler reads of
// many walkers together, giving the memory subsystem independent accesses
// to overlap instead of one dependent chain per walker, and groups the
// update stage's migration/query encoding by destination partition.
// Because a walker draws only from its own stream and the gather stage
// draws nothing, stage order across walkers cannot change any walker's
// draw sequence: interleaved output is bit-identical to scalar stepping.
//
// This file also holds the supporting allocation-free machinery: the
// walker arena (walkerPool), per-worker persistent state (workerState),
// and the batched counter accumulator (batchCounters).

import (
	"sync"
	"time"

	"knightking/internal/sampling"
	"knightking/internal/stats"
)

// walkerBatch carries one destination's object-path migrations through
// transport.LocalSender. Batches cycle through a process-wide pool: the
// sender takes one per (dest, flush), the receiver returns it after folding
// the walkers into its list — so steady-state migration sends allocate
// nothing. A pointer (not a slice) is what crosses the transport because
// storing a pointer in an interface value does not allocate.
type walkerBatch struct {
	ws []*Walker
}

var walkerBatchPool = sync.Pool{New: func() any { return new(walkerBatch) }}

// recycle clears the batch (dropping walker references so the receiver's
// arena owns them alone) and returns it to the pool.
//
//kk:hotpath
func (b *walkerBatch) recycle() {
	clear(b.ws)
	b.ws = b.ws[:0]
	walkerBatchPool.Put(b)
}

// workerState is one worker goroutine's persistent scratch: output staging
// buffers, parked/freed walker lists, batch arrays, full-scan scratch, and
// locally accumulated counters. It lives for the whole run, so the
// steady-state walker and message path allocates nothing.
type workerState struct {
	out    *outBufs
	parked []*Walker // walkers parked on queries this phase
	free   []*Walker // recycled storage, drained into the pool at barriers

	counters batchCounters

	// Full-scan fallback scratch (fullScanChoose).
	scanWeights []float64
	scanITS     sampling.ITS

	batch batchState

	gatherNs, moveNs, updateNs int64
}

func newWorkerState(eps int) *workerState {
	return &workerState{out: newOutBufs(eps)}
}

// batchCounters accumulates a worker's counter increments locally; flush
// folds them into the shared atomic counters once per phase. The hot path
// previously paid two contended atomic adds per step (false sharing across
// workers); now it pays plain increments plus a handful of atomic adds per
// superstep.
type batchCounters struct {
	trials, preAccepts, appendixHits, edgeProbEvals int64
	queries, steps, restarts, terminations          int64
}

//
//kk:hotpath
func (bc *batchCounters) flush(c *stats.Counters) {
	if bc.trials != 0 {
		c.Trials.Add(bc.trials)
		bc.trials = 0
	}
	if bc.preAccepts != 0 {
		c.PreAccepts.Add(bc.preAccepts)
		bc.preAccepts = 0
	}
	if bc.appendixHits != 0 {
		c.AppendixHits.Add(bc.appendixHits)
		bc.appendixHits = 0
	}
	if bc.edgeProbEvals != 0 {
		c.EdgeProbEvals.Add(bc.edgeProbEvals)
		bc.edgeProbEvals = 0
	}
	if bc.queries != 0 {
		c.Queries.Add(bc.queries)
		bc.queries = 0
	}
	if bc.steps != 0 {
		c.Steps.Add(bc.steps)
		bc.steps = 0
	}
	if bc.restarts != 0 {
		c.Restarts.Add(bc.restarts)
		bc.restarts = 0
	}
	if bc.terminations != 0 {
		c.Terminations.Add(bc.terminations)
		bc.terminations = 0
	}
}

// walkerPool is a slab-backed arena of reusable walkers. Only the node's
// loop goroutine calls into it (seeding, migration decode, barrier
// drains); workers stage frees in their workerState, so no locking is
// needed. A recycled walker keeps stale field values and History/Path
// backing capacity — callers must overwrite what they rely on
// (decodeWalkerInto overwrites everything).
type walkerPool struct {
	free []*Walker
	slab []Walker
}

const poolSlabSize = 256

//
//kk:hotpath
func (p *walkerPool) get() *Walker {
	if k := len(p.free); k > 0 {
		w := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		return w
	}
	if len(p.slab) == 0 {
		p.slab = make([]Walker, poolSlabSize) //kk:alloc-ok amortized: one slab allocation serves poolSlabSize walkers
	}
	w := &p.slab[0]
	p.slab = p.slab[1:]
	return w
}

func (p *walkerPool) put(w *Walker) { p.free = append(p.free, w) }

// putAll drains a worker's staged frees into the pool.
//
//kk:hotpath
func (p *walkerPool) putAll(ws *[]*Walker) {
	p.free = append(p.free, *ws...)
	for i := range *ws {
		(*ws)[i] = nil
	}
	*ws = (*ws)[:0]
}

// batchState holds one worker's per-batch arrays: the ready walkers of the
// claimed chunk, their original slots in the walker list, and the
// gathered/decided per-walker values each stage hands to the next.
type batchState struct {
	w    []*Walker
	slot []int32
	deg  []int32
	smp  []sampling.StaticSampler
	rej  []*sampling.Rejection
	mode []sampling.Mode
	act  []action
	edge []int32
}

func (b *batchState) grow(k int) {
	if cap(b.w) >= k {
		return
	}
	b.w = make([]*Walker, k)                  //kk:alloc-ok amortized: batch arrays grow to the chunk size once, then are reused
	b.slot = make([]int32, k)                 //kk:alloc-ok amortized: batch arrays grow to the chunk size once, then are reused
	b.deg = make([]int32, k)                  //kk:alloc-ok amortized: batch arrays grow to the chunk size once, then are reused
	b.smp = make([]sampling.StaticSampler, k) //kk:alloc-ok amortized: batch arrays grow to the chunk size once, then are reused
	b.rej = make([]*sampling.Rejection, k)    //kk:alloc-ok amortized: batch arrays grow to the chunk size once, then are reused
	b.mode = make([]sampling.Mode, k)         //kk:alloc-ok amortized: batch arrays grow to the chunk size once, then are reused
	b.act = make([]action, k)                 //kk:alloc-ok amortized: batch arrays grow to the chunk size once, then are reused
	b.edge = make([]int32, k)
}

// stepBatch advances walkers [base, end) through one step, stage-at-a-time
// across the batch. Per-stage wall time is accumulated only when an
// observer is attached, so the unobserved hot path takes no clock reads.
//
//kk:hotpath
func (n *node) stepBatch(ws []*Walker, base, end int, keep []bool, st *workerState) {
	b := &st.batch
	b.grow(end - base)
	timed := n.obs != nil
	var t0 time.Time
	if timed {
		t0 = time.Now() //kk:nondet-ok telemetry-only stage timing; never feeds walk state
	}

	// Gather: collect each ready walker's degree, sampler, and dartboard.
	dynamic := n.rejections != nil
	adapt := n.adapt
	m := 0
	for i := base; i < end; i++ {
		w := ws[i]
		if w.awaiting {
			keep[i] = true // parked in an earlier superstep
			continue
		}
		b.w[m] = w
		b.slot[m] = int32(i)
		deg := n.g.Degree(w.Cur)
		b.deg[m] = int32(deg)
		if deg > 0 {
			vi := w.Cur - n.lo
			b.smp[m] = n.samplers[vi]
			if dynamic {
				b.rej[m] = n.rejections[vi]
			} else {
				b.rej[m] = nil
			}
			if adapt != nil {
				b.mode[m] = adapt.modes[vi]
			} else {
				b.mode[m] = sampling.ModeAuto
			}
		} else {
			b.smp[m], b.rej[m], b.mode[m] = nil, nil, sampling.ModeAuto
		}
		m++
	}
	if timed {
		t1 := time.Now() //kk:nondet-ok telemetry-only stage timing; never feeds walk state
		st.gatherNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}

	// Move: run the decisions, consuming each walker's private stream in
	// the same order the scalar loop would.
	for j := 0; j < m; j++ {
		act, edge := n.decideStep(b.w[j], int(b.deg[j]), b.smp[j], b.rej[j], b.mode[j], st)
		b.act[j] = act
		b.edge[j] = int32(edge)
	}
	if timed {
		t1 := time.Now() //kk:nondet-ok telemetry-only stage timing; never feeds walk state
		st.moveNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}

	// Update: apply the decided outcomes and mark survivors.
	for j := 0; j < m; j++ {
		keep[b.slot[j]] = n.applyAction(b.w[j], b.act[j], int(b.edge[j]), st)
	}
	if timed {
		st.updateNs += time.Since(t0).Nanoseconds() //kk:nondet-ok telemetry-only stage timing; never feeds walk state
	}
}
