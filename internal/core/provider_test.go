package core

import (
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/sampling"
)

// tableProvider is a SamplerProvider over prebuilt tables, with nil
// holes to exercise the per-vertex fallback.
type tableProvider struct {
	kind string
	tabs []sampling.StaticSampler
}

func (p *tableProvider) StaticSampler(v graph.VertexID) sampling.StaticSampler {
	return p.tabs[v]
}
func (p *tableProvider) StaticKind() string { return p.kind }

func buildProvider(t *testing.T, g *graph.Graph, kind string, skip func(v int) bool) *tableProvider {
	t.Helper()
	p := &tableProvider{kind: kind, tabs: make([]sampling.StaticSampler, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.VertexID(v)) == 0 || (skip != nil && skip(v)) {
			continue
		}
		var (
			s   sampling.StaticSampler
			err error
		)
		if kind == "its" {
			s, err = sampling.NewITS(g.Weights(graph.VertexID(v)))
		} else {
			s, err = sampling.NewAlias(g.Weights(graph.VertexID(v)))
		}
		if err != nil {
			t.Fatal(err)
		}
		p.tabs[v] = s
	}
	return p
}

// TestProviderMatchesLocalBuild: a run handed prebuilt edge-weight
// tables is bit-identical to one that builds them itself — including a
// provider with per-vertex holes — for both sampler kinds and across
// multiple ranks.
func TestProviderMatchesLocalBuild(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(120, 6, 71), 1, 5, 72)
	algo := func() *Algorithm {
		return &Algorithm{Name: "wstatic", Biased: true, MaxSteps: 30}
	}
	for _, kind := range []string{"", "alias", "its"} {
		base := Config{
			Graph: g, Algorithm: algo(), NumWalkers: 200, NumNodes: 2,
			Seed: 73, RecordPaths: true, SamplerKind: kind,
		}
		ref, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		effective := kind
		if effective == "" {
			effective = "alias"
		}
		withProvider := base
		withProvider.Algorithm = algo()
		withProvider.Samplers = buildProvider(t, g, effective, nil)
		got, err := Run(withProvider)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePaths(t, ref.Paths, got.Paths)

		holes := base
		holes.Algorithm = algo()
		holes.Samplers = buildProvider(t, g, effective, func(v int) bool { return v%3 == 0 })
		got, err = Run(holes)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePaths(t, ref.Paths, got.Paths)
	}
}

// TestProviderIgnoredWhenInapplicable: kind mismatches and algorithms
// with their own static weights must bypass the provider entirely.
func TestProviderIgnoredWhenInapplicable(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(60, 5, 77), 1, 5, 78)

	// Kind mismatch: provider built as ITS, engine wants alias. The run
	// must match the local-build reference, not fail or use the tables.
	ref, err := Run(Config{
		Graph: g, Algorithm: &Algorithm{Name: "a", Biased: true, MaxSteps: 10},
		NumWalkers: 100, Seed: 79, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{
		Graph: g, Algorithm: &Algorithm{Name: "a", Biased: true, MaxSteps: 10},
		NumWalkers: 100, Seed: 79, RecordPaths: true,
		Samplers: buildProvider(t, g, "its", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePaths(t, ref.Paths, got.Paths)

	// EdgeStaticComp overrides the static weights: tables built from the
	// raw edge weights no longer apply and must be ignored.
	algWithStatic := func() *Algorithm {
		return &Algorithm{
			Name: "meta", Biased: true, MaxSteps: 10,
			EdgeStaticComp: func(g *graph.Graph, v graph.VertexID, i int) float32 {
				if g.EdgeAt(v, i).Dst%2 == 0 {
					return 0.25
				}
				return g.EdgeWeight(v, i)
			},
		}
	}
	ref, err = Run(Config{
		Graph: g, Algorithm: algWithStatic(), NumWalkers: 100, Seed: 81, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = Run(Config{
		Graph: g, Algorithm: algWithStatic(), NumWalkers: 100, Seed: 81, RecordPaths: true,
		Samplers: buildProvider(t, g, "alias", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePaths(t, ref.Paths, got.Paths)
}

// TestProviderStaleEpochPanics: tables whose item count disagrees with
// the graph's degree (a provider from a different epoch) must panic
// loudly instead of sampling garbage.
func TestProviderStaleEpochPanics(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(20, 4, 83), 1, 5, 84)
	p := &tableProvider{kind: "alias", tabs: make([]sampling.StaticSampler, g.NumVertices())}
	tab, err := sampling.NewAlias([]float32{1, 2}) // wrong size for deg-4 vertices
	if err != nil {
		t.Fatal(err)
	}
	p.tabs[0] = tab
	defer func() {
		if recover() == nil {
			t.Fatal("stale provider table did not panic")
		}
	}()
	_, _ = Run(Config{
		Graph: g, Algorithm: &Algorithm{Name: "a", Biased: true, MaxSteps: 5},
		NumWalkers: 10, Seed: 85, Samplers: p,
	})
}
