package core

// Runtime sampler adaptation: the engine measures per-vertex rejection
// work (sampling.TrialCell) on the hot path and, at superstep barriers,
// switches hot vertices between sampling structures under
// sampling.AdaptivePolicy — rejection → exact scan when the envelope is
// loose, and alias ↔ ITS for the static proposal structure by degree.
//
// Determinism: decisions run only at barriers (workers quiesced), read
// only scheduling-independent counter sums and the deterministic Force
// hook, and rebuild structures as pure functions of (graph, vertex). An
// adapted run is therefore reproducible from its seed and config, and —
// because the decide/apply split keeps every RNG draw in decideStep —
// scalar and interleaved stepping stay bit-identical under adaptation.
// Adapted runs do diverge from non-adapted ones: a switched structure
// consumes a walker's stream differently (that is the point).

import (
	"fmt"

	"knightking/internal/graph"
	"knightking/internal/sampling"
)

// AdaptConfig configures runtime sampler adaptation (Config.Adapt).
type AdaptConfig struct {
	// Every is the decision period in supersteps (default 8): each rank
	// re-evaluates its owned vertices' modes at barriers whose superstep
	// index is a multiple of it.
	Every int
	// Policy supplies the switch thresholds; zero fields take the defaults
	// documented on sampling.AdaptivePolicy.
	Policy sampling.AdaptivePolicy
	// Force, when non-nil, replaces the policy at each decision barrier:
	// it returns the mode vertex v must use from superstep iteration on,
	// or ok=false to leave v untouched. It must be a pure function of its
	// arguments (every rank and every run must see identical schedules).
	// Modes inapplicable to the algorithm (e.g. ModeExact for a walk whose
	// Pd needs remote state) are ignored. Intended for tests that pin
	// switch schedules.
	Force func(iteration int, v graph.VertexID) (mode sampling.Mode, ok bool)
	// OnSwitch, when non-nil, is called at the barrier for every applied
	// mode change. Intended for telemetry and tests; it must not mutate
	// engine state.
	OnSwitch func(rank, iteration int, v graph.VertexID, from, to sampling.Mode)
}

func (a *AdaptConfig) normalize() {
	if a.Every <= 0 {
		a.Every = 8
	}
	a.Policy = a.Policy.WithDefaults()
}

// adaptState is one node's adaptation state over its owned vertices.
type adaptState struct {
	cfg    *AdaptConfig
	every  int
	policy sampling.AdaptivePolicy

	// staticSwitch: the static proposal structure may be swapped alias↔ITS
	// (false for uniform walks — there is nothing to rebuild).
	staticSwitch bool
	// exactSwitch: rejection may be replaced by the exact O(degree) scan
	// (dynamic walks whose Pd is locally computable).
	exactSwitch bool

	// Per owned vertex (index v-lo): current mode, measurement cell, and
	// the base sampler built at setup (the rebuild source for structure
	// switches, kept so repeated switches do not degrade precision).
	modes []sampling.Mode
	cells []sampling.TrialCell
	orig  []sampling.StaticSampler
}

// initAdapt builds the node's adaptation state from Config.Adapt. When no
// switch class applies to the algorithm (uniform static first-order walks)
// adaptation is a no-op and stays disabled.
func (n *node) initAdapt() {
	c := n.cfg.Adapt
	if c == nil {
		return
	}
	a := &adaptState{
		cfg:          c,
		every:        c.Every,
		policy:       c.Policy,
		staticSwitch: !n.alg.uniformStatic(),
		exactSwitch:  n.alg.dynamic() && !n.alg.higherOrder(),
	}
	if !a.staticSwitch && !a.exactSwitch {
		return
	}
	a.modes = make([]sampling.Mode, len(n.samplers))
	a.cells = make([]sampling.TrialCell, len(n.samplers))
	if a.staticSwitch {
		a.orig = append([]sampling.StaticSampler(nil), n.samplers...)
	}
	n.adapt = a
}

// record accumulates one completed step's trial count for an owned vertex.
func (a *adaptState) record(vi graph.VertexID, trials uint32) {
	a.cells[vi].Record(trials)
}

// adaptDecide re-evaluates every owned vertex's mode at a barrier and
// applies the switches. See the package comment for why this is
// deterministic.
func (n *node) adaptDecide(iteration int) {
	a := n.adapt
	for vi := range a.modes {
		v := n.lo + graph.VertexID(vi)
		deg := n.g.Degree(v)
		if deg == 0 {
			continue
		}
		cur := a.modes[vi]
		want := cur
		if a.cfg.Force != nil {
			m, ok := a.cfg.Force(iteration, v)
			if !ok {
				continue
			}
			want = m
		} else {
			steps, trials := a.cells[vi].Load()
			if a.exactSwitch {
				want = a.policy.DecideDynamic(deg, steps, trials, want)
			}
			if want != sampling.ModeExact && a.staticSwitch {
				want = a.policy.DecideStatic(deg, steps, want)
			}
		}
		if want == cur || !n.applyMode(vi, v, want) {
			continue
		}
		a.modes[vi] = want
		if a.cfg.OnSwitch != nil {
			a.cfg.OnSwitch(n.rank, iteration, v, cur, want)
		}
	}
}

// applyMode installs the sampling structure mode selects at owned vertex
// v, reporting whether the mode applies to this algorithm. Inapplicable
// modes (from Force schedules) are rejected rather than half-applied.
func (n *node) applyMode(vi int, v graph.VertexID, want sampling.Mode) bool {
	a := n.adapt
	switch want {
	case sampling.ModeExact:
		// The hot path honors this purely through the mode array
		// (decideStep checks it before throwing darts).
		return a.exactSwitch
	case sampling.ModeAuto, sampling.ModeRejection:
		if a.staticSwitch {
			n.installStatic(vi, v, a.orig[vi])
		}
		return true
	case sampling.ModeAlias, sampling.ModeITS:
		if !a.staticSwitch {
			return false
		}
		base := a.orig[vi]
		if staticKindOf(base) == want {
			n.installStatic(vi, v, base)
			return true
		}
		// Rebuild through the same float32 weights the setup tables were
		// built from (WeightAt round-trips exactly — every weight in the
		// system originates as a float32), so the switched structure draws
		// from the identical distribution.
		weights := make([]float32, base.N())
		for i := range weights {
			weights[i] = float32(base.WeightAt(i))
		}
		var s sampling.StaticSampler
		var err error
		if want == sampling.ModeITS {
			s, err = sampling.NewITS(weights)
		} else {
			s, err = sampling.NewAlias(weights)
		}
		if err != nil {
			panic(fmt.Sprintf("core: adapting vertex %d to %v: %v", v, want, err))
		}
		n.installStatic(vi, v, s)
		return true
	}
	return false
}

// installStatic swaps vertex v's static structure, rebuilding the
// rejection dartboard around it for dynamic walks. The envelope geometry
// is recomputed from the same pure bound functions, so only the proposal
// structure changes; parked darts stay valid because their resolution
// compares the stored Y against Pd only.
func (n *node) installStatic(vi int, v graph.VertexID, s sampling.StaticSampler) {
	if n.samplers[vi] == s {
		return
	}
	n.samplers[vi] = s
	if n.rejections != nil && n.rejections[vi] != nil {
		n.rejections[vi] = n.buildRejection(v, s)
	}
}

// staticKindOf maps a static sampler to the Mode selecting its structure.
func staticKindOf(s sampling.StaticSampler) sampling.Mode {
	switch s.(type) {
	case *sampling.Alias:
		return sampling.ModeAlias
	case *sampling.ITS:
		return sampling.ModeITS
	}
	return sampling.ModeAuto
}
