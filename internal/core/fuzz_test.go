package core

import (
	"testing"

	"knightking/internal/graph"
	"knightking/internal/rng"
)

// FuzzDecodeWalker throws arbitrary bytes at the walker codec: it must
// never panic, and whatever it accepts must re-encode to the same bytes it
// consumed (a canonical-form check).
func FuzzDecodeWalker(f *testing.F) {
	w := &Walker{
		ID: 7, Cur: 3, Prev: 2, Step: 5, Tag: 1, Origin: 3,
		R:       *rng.New(11),
		Path:    []graph.VertexID{3, 2, 3},
		History: []graph.VertexID{9, 2},
	}
	f.Add(encodeWalker(nil, w))
	f.Add([]byte{})
	f.Add(make([]byte, walkerFixedLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, rest, err := decodeWalker(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		re := encodeWalker(nil, got)
		if len(re) != len(consumed) {
			t.Fatalf("re-encode length %d != consumed %d", len(re), len(consumed))
		}
		for i := range re {
			if re[i] != consumed[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
