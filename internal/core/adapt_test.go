package core

// Distribution tests for runtime sampler adaptation: a Force schedule
// flips vertices between sampling structures mid-run, and the observed
// transition counts are chi-square tested against the exact conditional
// distribution. A switched structure that samples from even a slightly
// wrong distribution (stale tables, mis-rebuilt envelope, parked darts
// resolved against the wrong geometry) shifts these conditionals.

import (
	"math"
	"sync/atomic"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/sampling"
)

// chiSquareNext pools a chi-square statistic over per-vertex next-step
// conditionals: for every path transition cur→next, the expected
// distribution is weight(cur, i) over cur's out-edges, pooled by
// destination vertex. Contexts whose smallest expected cell is below 5 are
// skipped (standard applicability bound). Returns chi2, degrees of
// freedom, and the number of contexts tested.
func chiSquareNext(t *testing.T, g *graph.Graph, paths [][]graph.VertexID,
	weight func(cur graph.VertexID, i int) float64) (float64, int, int) {
	t.Helper()
	observed := make(map[graph.VertexID]map[graph.VertexID]int)
	for _, path := range paths {
		for i := 0; i+1 < len(path); i++ {
			m := observed[path[i]]
			if m == nil {
				m = make(map[graph.VertexID]int)
				observed[path[i]] = m
			}
			m[path[i+1]]++
		}
	}
	var chi2 float64
	df, contexts := 0, 0
	for cur, counts := range observed {
		n := 0
		for _, c := range counts {
			n += c
		}
		probs := make(map[graph.VertexID]float64)
		total := 0.0
		for i, x := range g.Neighbors(cur) {
			w := weight(cur, i)
			probs[x] += w
			total += w
		}
		minExp := math.Inf(1)
		for _, w := range probs {
			if e := float64(n) * w / total; e < minExp {
				minExp = e
			}
		}
		if minExp < 5 {
			continue
		}
		for x, w := range probs {
			e := float64(n) * w / total
			d := float64(counts[x]) - e
			chi2 += d * d / e
		}
		df += len(probs) - 1
		contexts++
	}
	return chi2, df, contexts
}

// assertChiSquare applies the ±6σ band used throughout the statistical
// tests: for large df, chi-square is ~N(df, 2df); the upper bound catches
// bias, the lower bound catches a vacuous test.
func assertChiSquare(t *testing.T, chi2 float64, df, contexts, minContexts int) {
	t.Helper()
	if contexts < minContexts {
		t.Fatalf("only %d contexts had enough mass (want >= %d); increase walkers", contexts, minContexts)
	}
	band := 6 * math.Sqrt(2*float64(df))
	t.Logf("chi2 = %.1f over df = %d (%d contexts), band ±%.1f", chi2, df, contexts, band)
	if chi2 > float64(df)+band {
		t.Fatalf("chi2 = %.1f exceeds %.1f at df = %d: adapted sampling deviates from the exact distribution", chi2, float64(df)+band, df)
	}
	if chi2 < float64(df)-band {
		t.Fatalf("chi2 = %.1f implausibly small for df = %d", chi2, df)
	}
}

// TestForcedSwitchChiSquareFirstOrder flips every vertex between rejection
// sampling and the exact full scan on a fixed schedule while a first-order
// dynamic walk with a non-uniform Pd runs. Both modes must draw from the
// identical distribution Pd(e)/ΣPd, so the pooled transition counts must
// pass chi-square against it.
func TestForcedSwitchChiSquareFirstOrder(t *testing.T) {
	pd := func(dst graph.VertexID) float64 {
		return []float64{1, 0.75, 0.5, 0.25}[dst%4]
	}
	a := &Algorithm{
		Name:     "forced-switch-fo",
		MaxSteps: 40,
		EdgeDynamicComp: func(w *Walker, e graph.Edge, _ uint64, _ bool) float64 {
			return pd(e.Dst)
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
	}
	g := gen.UniformDegree(60, 6, 241)
	var switches atomic.Int64
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   a,
		NumWalkers:  1500,
		NumNodes:    3,
		Seed:        243,
		RecordPaths: true,
		Adapt: &AdaptConfig{
			Every: 2,
			// Flip each vertex exact↔rejection every decision barrier, phase
			// staggered by vertex so both modes are live at all times.
			Force: func(iteration int, v graph.VertexID) (sampling.Mode, bool) {
				if (iteration/2+int(v))%2 == 0 {
					return sampling.ModeExact, true
				}
				return sampling.ModeRejection, true
			},
			OnSwitch: func(rank, iteration int, v graph.VertexID, from, to sampling.Mode) {
				switches.Add(1)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := switches.Load(); s < 100 {
		t.Fatalf("only %d mode switches; the schedule did not exercise adaptation", s)
	}
	chi2, df, contexts := chiSquareNext(t, g, res.Paths, func(cur graph.VertexID, i int) float64 {
		return pd(g.Neighbors(cur)[i])
	})
	assertChiSquare(t, chi2, df, contexts, 50)
}

// TestForcedSwitchChiSquareBiasedStatic flips every vertex's static
// structure between alias tables and ITS mid-run on a weighted graph. Both
// structures must sample proportionally to the edge weights, so the
// transition counts of a biased static walk must pass chi-square against
// weight(e)/Σweight.
func TestForcedSwitchChiSquareBiasedStatic(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(60, 6, 251), 1, 5, 252)
	var switches atomic.Int64
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   &Algorithm{Name: "forced-switch-static", Biased: true, MaxSteps: 40},
		NumWalkers:  1500,
		NumNodes:    3,
		Seed:        253,
		RecordPaths: true,
		Adapt: &AdaptConfig{
			Every: 2,
			Force: func(iteration int, v graph.VertexID) (sampling.Mode, bool) {
				if (iteration/2+int(v))%2 == 0 {
					return sampling.ModeITS, true
				}
				return sampling.ModeAlias, true
			},
			OnSwitch: func(rank, iteration int, v graph.VertexID, from, to sampling.Mode) {
				switches.Add(1)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := switches.Load(); s < 100 {
		t.Fatalf("only %d mode switches; the schedule did not exercise adaptation", s)
	}
	chi2, df, contexts := chiSquareNext(t, g, res.Paths, func(cur graph.VertexID, i int) float64 {
		return float64(g.EdgeWeight(cur, i))
	})
	assertChiSquare(t, chi2, df, contexts, 50)
}

// TestPolicyAdaptationChiSquareNode2Vec runs the policy (not a forced
// schedule) on a biased node2vec walk aggressive enough to switch static
// structures mid-run, then validates the second-order conditionals: for
// every (prev, cur) context the next-vertex distribution must match
// Ps(e)·Pd(e) exactly, switches and all.
func TestPolicyAdaptationChiSquareNode2Vec(t *testing.T) {
	const p, q = 2.0, 0.5
	g := gen.WithUniformWeights(gen.UniformDegree(60, 6, 261), 1, 5, 262)
	a := node2vecAlg(p, q, 48)
	a.Biased = true
	var switches atomic.Int64
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   a,
		NumWalkers:  2500,
		NumNodes:    4,
		Seed:        263,
		RecordPaths: true,
		Adapt: &AdaptConfig{
			Every:  2,
			Policy: sampling.AdaptivePolicy{MinSteps: 1},
			OnSwitch: func(rank, iteration int, v graph.VertexID, from, to sampling.Mode) {
				switches.Add(1)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if switches.Load() == 0 {
		t.Fatal("policy made no switches; the adapted path was not exercised")
	}
	if res.Counters.Queries == 0 {
		t.Fatal("no remote state queries; the second-order path was not exercised")
	}

	// Second-order tally: context (prev, cur) → next, expected ∝ Ps·Pd.
	type context struct{ prev, cur graph.VertexID }
	observed := make(map[context]map[graph.VertexID]int)
	for _, path := range res.Paths {
		for i := 1; i+1 < len(path); i++ {
			ctx := context{path[i-1], path[i]}
			m := observed[ctx]
			if m == nil {
				m = make(map[graph.VertexID]int)
				observed[ctx] = m
			}
			m[path[i+1]]++
		}
	}
	invP, invQ := 1/p, 1/q
	var chi2 float64
	df, contexts := 0, 0
	for ctx, counts := range observed {
		n := 0
		for _, c := range counts {
			n += c
		}
		probs := make(map[graph.VertexID]float64)
		total := 0.0
		for i, x := range g.Neighbors(ctx.cur) {
			pd := invQ
			switch {
			case x == ctx.prev:
				pd = invP
			case g.HasEdge(ctx.prev, x):
				pd = 1
			}
			w := float64(g.EdgeWeight(ctx.cur, i)) * pd
			probs[x] += w
			total += w
		}
		minExp := math.Inf(1)
		for _, w := range probs {
			if e := float64(n) * w / total; e < minExp {
				minExp = e
			}
		}
		if minExp < 5 {
			continue
		}
		for x, w := range probs {
			e := float64(n) * w / total
			d := float64(counts[x]) - e
			chi2 += d * d / e
		}
		df += len(probs) - 1
		contexts++
	}
	assertChiSquare(t, chi2, df, contexts, 100)
}
