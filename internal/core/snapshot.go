// Snapshot encoding and the engine side of checkpoint/recovery.
//
// A checkpoint is taken at the superstep barrier right after the first
// exchange: every migration sent so far has been folded into some rank's
// walker list, no query responses are outstanding, and the only in-flight
// records — the current superstep's state queries — are re-derivable from
// the parked walkers' pending darts. Each rank therefore serializes just
// its own walker list (via the migration codec, extended with the pending
// dart for awaiting walkers) plus, on the result-owning rank, the
// accumulated result sinks and counters. Resume reloads the segments,
// re-issues the outstanding queries, and continues the superstep loop;
// because every walker carries its private RNG stream, the remaining walk
// is bit-identical to an uninterrupted run.
package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"knightking/internal/graph"
	"knightking/internal/stats"
)

// Snapshot segment blob layout (little-endian):
//
//	0   magic "KKS1"
//	4   version   u16 (= 2; v2 appended the ExchangeNanos counter word)
//	6   flags     u16 (bit 0: result+counters section present)
//	8   rank      u32
//	12  numRanks  u32
//	16  iteration u64
//	24  seed      u64
//	32  numWalkers  u64
//	40  numVertices u64
//	48  walkerCount u64
//	56  resultOff   u64 (byte offset of the result section; 0 = none)
//	64  walker records (migration codec, pending dart included)
//	... result section (counters, length histogram, visits, paths)
const (
	snapMagic     = "KKS1"
	snapVersion   = 2
	snapHeaderLen = 64

	snapFlagResults = 1 << 0
)

// ckptRecordLen is the wire size of one kCkpt segment descriptor.
const ckptRecordLen = 4 + 8 + 8

// snapHeader is the decoded fixed part of a segment blob.
type snapHeader struct {
	flags       uint16
	rank        int
	numRanks    int
	iteration   int
	seed        uint64
	numWalkers  int64
	numVertices int64
	walkerCount int64
	resultOff   int64
}

// checkpointDue reports whether this superstep ends with a snapshot. The
// condition depends only on loop-synchronized state, so every rank agrees.
func (n *node) checkpointDue(iteration int) bool {
	sink := n.cfg.Checkpoint
	if sink == nil {
		return false
	}
	every := sink.Interval()
	return every > 0 && iteration%every == 0
}

// writeCheckpoint snapshots this rank and participates in the commit
// barrier: every rank writes its segment, sends a descriptor to rank 0,
// and enters one extra exchange. Once that exchange returns, all segments
// are durable and rank 0 commits the manifest. Any failure aborts the run
// (the previous complete checkpoint remains the recovery point).
func (n *node) writeCheckpoint(iteration int) error {
	start := time.Now() //kk:nondet-ok telemetry-only timing; never feeds walk state
	blob := n.encodeSnapshot(iteration)
	info, werr := n.cfg.Checkpoint.WriteSegment(iteration, n.rank, blob)
	if werr == nil {
		var rec [ckptRecordLen]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(info.Rank))
		binary.LittleEndian.PutUint64(rec[4:], uint64(info.Size))
		binary.LittleEndian.PutUint64(rec[12:], info.CRC)
		n.ep.Send(0, kCkpt, rec[:])
	}
	// A rank that failed its write still enters the barrier (skipping it
	// would deadlock the collective) but sends no descriptor, which rank 0
	// detects as an incomplete segment set.
	msgs, err := n.exchange()
	if err != nil {
		return err
	}
	if werr != nil {
		return fmt.Errorf("core: checkpoint segment at superstep %d: %w", iteration, werr)
	}
	n.counters.CheckpointBytes.Add(int64(len(blob)))
	n.counters.CheckpointNanos.Add(time.Since(start).Nanoseconds()) //kk:nondet-ok telemetry-only timing; never feeds walk state
	if n.rank != 0 {
		if len(msgs) != 0 {
			return fmt.Errorf("core: unexpected %d messages at checkpoint barrier on rank %d", len(msgs), n.rank)
		}
		return nil
	}
	segs := make([]SegmentInfo, 0, n.ep.Size())
	for _, m := range msgs {
		if m.Kind != kCkpt || len(m.Payload) != ckptRecordLen {
			return fmt.Errorf("core: malformed checkpoint descriptor from rank %d", m.From)
		}
		segs = append(segs, SegmentInfo{
			Rank: int(binary.LittleEndian.Uint32(m.Payload[0:])),
			Size: int64(binary.LittleEndian.Uint64(m.Payload[4:])),
			CRC:  binary.LittleEndian.Uint64(m.Payload[12:]),
		})
	}
	if len(segs) != n.ep.Size() {
		return fmt.Errorf("core: checkpoint at superstep %d incomplete: %d of %d segments", iteration, len(segs), n.ep.Size())
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Rank < segs[j].Rank })
	for i, s := range segs {
		if s.Rank != i {
			return fmt.Errorf("core: checkpoint descriptors are not a permutation of ranks")
		}
	}
	if err := n.cfg.Checkpoint.Commit(iteration, segs); err != nil {
		return fmt.Errorf("core: checkpoint commit at superstep %d: %w", iteration, err)
	}
	n.counters.Checkpoints.Add(1)
	return nil
}

// resendPendingQueries re-issues the outstanding state queries of awaiting
// walkers after a restore, so their responses arrive in the first resumed
// superstep exactly as the original queries' would have. Not counted in
// stats.Queries: the original sends were counted before the snapshot.
func (n *node) resendPendingQueries() {
	for _, w := range n.walkers {
		if !w.awaiting {
			continue
		}
		var rec [queryRecordLen]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(w.ID))
		binary.LittleEndian.PutUint32(rec[8:], w.pendingTarget)
		binary.LittleEndian.PutUint64(rec[12:], w.pendingArg)
		n.ep.Send(n.part.Owner(w.pendingTarget), kQuery, rec[:])
	}
}

// encodeSnapshot serializes this rank's state at the given superstep.
func (n *node) encodeSnapshot(iteration int) []byte {
	var flags uint16
	if n.ownsResult {
		flags |= snapFlagResults
	}
	buf := make([]byte, snapHeaderLen, snapHeaderLen+len(n.walkers)*walkerFixedLen)
	copy(buf[0:], snapMagic)
	binary.LittleEndian.PutUint16(buf[4:], snapVersion)
	binary.LittleEndian.PutUint16(buf[6:], flags)
	binary.LittleEndian.PutUint32(buf[8:], uint32(n.rank))
	binary.LittleEndian.PutUint32(buf[12:], uint32(n.ep.Size()))
	binary.LittleEndian.PutUint64(buf[16:], uint64(iteration))
	binary.LittleEndian.PutUint64(buf[24:], n.cfg.Seed)
	binary.LittleEndian.PutUint64(buf[32:], uint64(n.cfg.NumWalkers))
	binary.LittleEndian.PutUint64(buf[40:], uint64(n.g.NumVertices()))
	binary.LittleEndian.PutUint64(buf[48:], uint64(len(n.walkers)))
	for _, w := range n.walkers {
		buf = encodeWalker(buf, w)
	}
	if n.ownsResult {
		binary.LittleEndian.PutUint64(buf[56:], uint64(len(buf)))
		buf = appendResults(buf, n.counters.Snapshot(), n.res)
	}
	return buf
}

// appendResults serializes the counters and result sinks.
func appendResults(buf []byte, c stats.Snapshot, res *Result) []byte {
	words := counterWords(c)
	buf = appendU32(buf, uint32(len(words)))
	for _, v := range words {
		buf = appendU64(buf, uint64(v))
	}
	hs := res.Lengths.State()
	buf = appendU32(buf, uint32(len(hs.Buckets)))
	for _, b := range hs.Buckets {
		buf = appendU64(buf, uint64(b))
	}
	buf = appendU64(buf, uint64(hs.Count))
	buf = appendU64(buf, uint64(hs.Sum))
	buf = appendU64(buf, uint64(hs.Max))
	if res.Visits != nil {
		buf = append(buf, 1)
		buf = appendU64(buf, uint64(len(res.Visits)))
		for _, v := range res.Visits {
			buf = appendU64(buf, uint64(v))
		}
	} else {
		buf = append(buf, 0)
	}
	if res.Paths != nil {
		buf = append(buf, 1)
		var done uint64
		for _, p := range res.Paths {
			if p != nil {
				done++
			}
		}
		buf = appendU64(buf, done)
		for id, p := range res.Paths {
			if p == nil {
				continue
			}
			buf = appendU64(buf, uint64(id))
			buf = appendU32(buf, uint32(len(p)))
			for _, v := range p {
				buf = appendU32(buf, v)
			}
		}
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// restoreSnapshot loads this rank's walker state from rst and validates it
// against the run configuration (defense in depth on top of the sink's
// whole-file checksums).
func (n *node) restoreSnapshot(rst *RestoreState) error {
	if n.rank >= len(rst.Segments) || rst.Segments[n.rank] == nil {
		return fmt.Errorf("core: restore has no segment for rank %d", n.rank)
	}
	blob := rst.Segments[n.rank]
	h, err := parseSnapshotHeader(blob)
	if err != nil {
		return err
	}
	switch {
	case h.rank != n.rank:
		return fmt.Errorf("core: segment is for rank %d, not %d", h.rank, n.rank)
	case h.numRanks != n.ep.Size():
		return fmt.Errorf("core: checkpoint has %d ranks, run has %d (rank-count changes are not supported)", h.numRanks, n.ep.Size())
	case h.iteration != rst.Iteration:
		return fmt.Errorf("core: segment superstep %d != manifest superstep %d", h.iteration, rst.Iteration)
	case h.seed != n.cfg.Seed:
		return fmt.Errorf("core: checkpoint seed %d != config seed %d", h.seed, n.cfg.Seed)
	case h.numWalkers != int64(n.cfg.NumWalkers):
		return fmt.Errorf("core: checkpoint has %d walkers, config has %d", h.numWalkers, n.cfg.NumWalkers)
	case h.numVertices != int64(n.g.NumVertices()):
		return fmt.Errorf("core: checkpoint graph has %d vertices, config graph has %d", h.numVertices, n.g.NumVertices())
	}
	rest := blob[snapHeaderLen:]
	walkerEnd := int64(len(blob))
	if h.resultOff != 0 {
		walkerEnd = h.resultOff
	}
	seen := make(map[int64]struct{}, h.walkerCount)
	for i := int64(0); i < h.walkerCount; i++ {
		w, r, err := decodeWalker(rest)
		if err != nil {
			return fmt.Errorf("core: segment walker %d: %w", i, err)
		}
		rest = r
		if err := n.validateRestoredWalker(w, seen); err != nil {
			return err
		}
		if n.cfg.RecordPaths && w.Path == nil {
			return fmt.Errorf("core: RecordPaths is set but checkpointed walker %d carries no path", w.ID)
		}
		if !n.cfg.RecordPaths {
			w.Path = nil
		}
		n.walkers = append(n.walkers, w)
		if w.awaiting {
			n.awaiting[w.ID] = w
		}
	}
	if got := int64(len(blob)) - int64(len(rest)); got != walkerEnd {
		return fmt.Errorf("core: segment walker records end at byte %d, want %d", got, walkerEnd)
	}
	n.startIter = rst.Iteration
	n.resumed = true
	return nil
}

// validateRestoredWalker bounds-checks one decoded walker against the
// graph, the partition, and the walker ID space.
func (n *node) validateRestoredWalker(w *Walker, seen map[int64]struct{}) error {
	if w.ID < 0 || w.ID >= int64(n.cfg.NumWalkers) {
		return fmt.Errorf("core: restored walker ID %d outside [0, %d)", w.ID, n.cfg.NumWalkers)
	}
	if _, dup := seen[w.ID]; dup {
		return fmt.Errorf("core: restored walker ID %d duplicated", w.ID)
	}
	seen[w.ID] = struct{}{}
	numV := graph.VertexID(n.g.NumVertices())
	if w.Cur >= numV || w.Origin >= numV {
		return fmt.Errorf("core: restored walker %d at vertex %d outside the graph", w.ID, w.Cur)
	}
	if !n.part.Owns(n.rank, w.Cur) {
		return fmt.Errorf("core: restored walker %d at vertex %d not owned by rank %d", w.ID, w.Cur, n.rank)
	}
	if w.awaiting {
		if int(w.pendingEdge) < 0 || int(w.pendingEdge) >= n.g.Degree(w.Cur) {
			return fmt.Errorf("core: restored walker %d pending edge %d outside degree %d", w.ID, w.pendingEdge, n.g.Degree(w.Cur))
		}
		if w.pendingTarget >= numV {
			return fmt.Errorf("core: restored walker %d pending query target %d outside the graph", w.ID, w.pendingTarget)
		}
	}
	return nil
}

// applyRestoredResults merges the result sections of the given ranks'
// segments into the process's result sinks and counters. Run passes every
// rank (it hosts the whole cluster); RunNode passes only its own, keeping
// cluster-wide sums correct without double counting across processes.
func applyRestoredResults(rst *RestoreState, ranks []int, res *Result, counters *stats.Counters) error {
	for _, rank := range ranks {
		if rank >= len(rst.Segments) || rst.Segments[rank] == nil {
			continue
		}
		blob := rst.Segments[rank]
		h, err := parseSnapshotHeader(blob)
		if err != nil {
			return err
		}
		if h.flags&snapFlagResults == 0 {
			continue
		}
		if err := mergeResults(blob[h.resultOff:], rank, res, counters); err != nil {
			return err
		}
	}
	return nil
}

// mergeResults decodes one result section and folds it into res/counters.
func mergeResults(buf []byte, rank int, res *Result, counters *stats.Counters) error {
	d := &decoder{buf: buf, what: fmt.Sprintf("rank %d result section", rank)}
	nc := int(d.u32())
	if nc != numCounterWords {
		if d.err != nil {
			return d.err
		}
		return fmt.Errorf("core: %s has %d counters, want %d", d.what, nc, numCounterWords)
	}
	words := make([]int64, nc)
	for i := range words {
		words[i] = int64(d.u64())
	}
	nb := int(d.u32())
	if d.err == nil && nb > len(d.buf)/8 {
		return fmt.Errorf("core: %s histogram claims %d buckets in %d bytes", d.what, nb, len(d.buf))
	}
	hs := stats.HistogramState{Buckets: make([]int64, nb)}
	for i := range hs.Buckets {
		hs.Buckets[i] = int64(d.u64())
	}
	hs.Count = int64(d.u64())
	hs.Sum = int64(d.u64())
	hs.Max = int64(d.u64())
	hasVisits := d.u8() != 0
	var visits []int64
	if hasVisits {
		nv := int(d.u64())
		if d.err == nil && nv > len(d.buf)/8 {
			return fmt.Errorf("core: %s claims %d visit counts in %d bytes", d.what, nv, len(d.buf))
		}
		visits = make([]int64, nv)
		for i := range visits {
			visits[i] = int64(d.u64())
		}
	}
	type pathEntry struct {
		id   int64
		path []graph.VertexID
	}
	var paths []pathEntry
	hasPaths := d.u8() != 0
	if hasPaths {
		np := int(d.u64())
		for i := 0; i < np && d.err == nil; i++ {
			id := int64(d.u64())
			plen := int(d.u32())
			if d.err == nil && plen > len(d.buf)/4 {
				return fmt.Errorf("core: %s path %d claims %d vertices in %d bytes", d.what, id, plen, len(d.buf))
			}
			p := make([]graph.VertexID, plen)
			for j := range p {
				p[j] = d.u32()
			}
			paths = append(paths, pathEntry{id: id, path: p})
		}
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("core: %s has %d trailing bytes", d.what, len(d.buf))
	}

	// Everything decoded cleanly; apply.
	counters.Add(wordsToCounters(words))
	if err := res.Lengths.AddState(hs); err != nil {
		return fmt.Errorf("core: %s: %w", d.what, err)
	}
	if res.Visits != nil {
		if visits == nil {
			return fmt.Errorf("core: CountVisits is set but the checkpoint carries no visit counts")
		}
		if len(visits) != len(res.Visits) {
			return fmt.Errorf("core: checkpoint has %d visit counts, run has %d vertices", len(visits), len(res.Visits))
		}
		for i, v := range visits {
			res.Visits[i] += v
		}
	}
	if res.Paths != nil {
		if !hasPaths {
			// A checkpoint written without RecordPaths cannot back-fill
			// terminated walkers' paths.
			return fmt.Errorf("core: RecordPaths is set but the checkpoint carries no paths")
		}
		for _, e := range paths {
			if e.id < 0 || e.id >= int64(len(res.Paths)) {
				return fmt.Errorf("core: checkpointed path for walker %d outside [0, %d)", e.id, len(res.Paths))
			}
			res.Paths[e.id] = e.path
		}
	}
	return nil
}

// parseSnapshotHeader decodes and sanity-checks the fixed segment header.
func parseSnapshotHeader(blob []byte) (snapHeader, error) {
	var h snapHeader
	if len(blob) < snapHeaderLen {
		return h, fmt.Errorf("core: snapshot segment truncated (%d bytes)", len(blob))
	}
	if string(blob[0:4]) != snapMagic {
		return h, fmt.Errorf("core: bad snapshot magic %q", blob[0:4])
	}
	if v := binary.LittleEndian.Uint16(blob[4:]); v != snapVersion {
		return h, fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	h.flags = binary.LittleEndian.Uint16(blob[6:])
	if h.flags&^uint16(snapFlagResults) != 0 {
		return h, fmt.Errorf("core: unknown snapshot flags %#x", h.flags)
	}
	h.rank = int(binary.LittleEndian.Uint32(blob[8:]))
	h.numRanks = int(binary.LittleEndian.Uint32(blob[12:]))
	h.iteration = int(binary.LittleEndian.Uint64(blob[16:]))
	h.seed = binary.LittleEndian.Uint64(blob[24:])
	h.numWalkers = int64(binary.LittleEndian.Uint64(blob[32:]))
	h.numVertices = int64(binary.LittleEndian.Uint64(blob[40:]))
	h.walkerCount = int64(binary.LittleEndian.Uint64(blob[48:]))
	h.resultOff = int64(binary.LittleEndian.Uint64(blob[56:]))
	if h.numRanks <= 0 || h.rank < 0 || h.rank >= h.numRanks {
		return h, fmt.Errorf("core: snapshot rank %d of %d invalid", h.rank, h.numRanks)
	}
	if h.iteration <= 0 || h.walkerCount < 0 || h.numWalkers < 0 || h.numVertices <= 0 {
		return h, fmt.Errorf("core: snapshot header values out of range")
	}
	if h.walkerCount > int64(len(blob))/walkerFixedLen+1 {
		return h, fmt.Errorf("core: snapshot claims %d walkers in %d bytes", h.walkerCount, len(blob))
	}
	hasResults := h.flags&snapFlagResults != 0
	if hasResults && (h.resultOff < snapHeaderLen || h.resultOff > int64(len(blob))) {
		return h, fmt.Errorf("core: snapshot result section offset %d out of range", h.resultOff)
	}
	if !hasResults && h.resultOff != 0 {
		return h, fmt.Errorf("core: snapshot has a result offset but no result flag")
	}
	return h, nil
}

// counterWords flattens a counter snapshot into a fixed-order word list.
// The order is part of the segment format; append new counters at the end
// and bump snapVersion when changing it.
const numCounterWords = 15

func counterWords(s stats.Snapshot) []int64 {
	return []int64{
		s.EdgeProbEvals, s.Trials, s.PreAccepts, s.AppendixHits, s.Queries,
		s.Messages, s.BytesSent, s.Steps, s.Restarts, s.Terminations,
		s.Checkpoints, s.CheckpointBytes, s.CheckpointNanos, s.RestoreNanos,
		s.ExchangeNanos,
	}
}

func wordsToCounters(w []int64) stats.Snapshot {
	return stats.Snapshot{
		EdgeProbEvals: w[0], Trials: w[1], PreAccepts: w[2], AppendixHits: w[3],
		Queries: w[4], Messages: w[5], BytesSent: w[6], Steps: w[7],
		Restarts: w[8], Terminations: w[9], Checkpoints: w[10],
		CheckpointBytes: w[11], CheckpointNanos: w[12], RestoreNanos: w[13],
		ExchangeNanos: w[14],
	}
}

// decoder is a bounds-checked little-endian reader for result sections.
type decoder struct {
	buf  []byte
	what string
	err  error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: %s truncated", d.what)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func appendU32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func appendU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}
