package core

import (
	"sync"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/stats"
)

// wallClockFree strips the wall-clock counter fields so two snapshots of
// the same deterministic run compare equal.
func wallClockFree(s stats.Snapshot) stats.Snapshot {
	s.ExchangeNanos = 0
	s.CheckpointNanos = 0
	s.RestoreNanos = 0
	return s
}

// The walk service runs many jobs against one registry-owned
// *graph.Graph at once, so the engine's read-only graph contract is
// load-bearing: N concurrent Runs sharing a graph must each be
// bit-identical to the same Run executed alone. The race detector makes
// any mutation of shared graph state a hard failure.
func TestConcurrentRunsSharingGraphMatchSerial(t *testing.T) {
	g := gen.TruncatedPowerLaw(300, 2, 40, 2.2, 11)

	const runs = 8
	mk := func(i int) Config {
		return Config{
			Graph:       g,
			Algorithm:   staticAlg(20 + i), // distinct lengths: distinct workloads
			NumNodes:    1 + i%3,
			Workers:     2,
			NumWalkers:  100 + 10*i,
			Seed:        uint64(1000 + i),
			RecordPaths: true,
		}
	}

	serial := make([]*Result, runs)
	for i := range serial {
		res, err := Run(mk(i))
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		serial[i] = res
	}

	concurrent := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i], errs[i] = Run(mk(i))
		}(i)
	}
	wg.Wait()

	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		assertSamePaths(t, serial[i].Paths, concurrent[i].Paths)
		if a, b := wallClockFree(serial[i].Counters), wallClockFree(concurrent[i].Counters); a != b {
			t.Errorf("run %d counters diverged under concurrency:\nserial:     %+v\nconcurrent: %+v", i, a, b)
		}
	}
}

// Second-order walks exercise the query/response machinery (phases B/C)
// and per-vertex walker-state reads; they too must be immune to
// concurrent runs on the shared graph.
func TestConcurrentSecondOrderRunsSharingGraph(t *testing.T) {
	g := gen.UniformDegree(200, 6, 3)

	mk := func(seed uint64) Config {
		return Config{
			Graph:       g,
			Algorithm:   parityAlg(15),
			NumNodes:    2,
			Workers:     2,
			NumWalkers:  120,
			Seed:        seed,
			RecordPaths: true,
		}
	}

	seeds := []uint64{7, 7, 99} // two identical runs plus a control
	serial := make([]*Result, len(seeds))
	for i, s := range seeds {
		res, err := Run(mk(s))
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		serial[i] = res
	}

	concurrent := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, s uint64) {
			defer wg.Done()
			concurrent[i], errs[i] = Run(mk(s))
		}(i, s)
	}
	wg.Wait()

	for i := range seeds {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		assertSamePaths(t, serial[i].Paths, concurrent[i].Paths)
	}
	// Same seed: identical. Different seed: actually different walks.
	assertSamePaths(t, concurrent[0].Paths, concurrent[1].Paths)
	if samePaths(concurrent[0].Paths, concurrent[2].Paths) {
		t.Fatal("distinct seeds produced identical walks")
	}
}

// samePaths reports path-set equality without failing the test.
func samePaths(a, b [][]graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
