package core

import (
	"math"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

// TestStationaryDistributionMatchesDegree is an end-to-end statistical
// check of the whole engine: on a connected undirected graph, the
// stationary distribution of an unbiased random walk is exactly
// deg(v)/2|E|. Long walks' visit frequencies must converge to it.
func TestStationaryDistributionMatchesDegree(t *testing.T) {
	g := gen.UniformDegree(200, 8, 41) // near-regular, fast mixing
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(400),
		NumWalkers:  400,
		NumNodes:    3,
		Seed:        43,
		CountVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := float64(res.Counters.Steps)
	twoE := float64(g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		want := float64(g.Degree(graph.VertexID(v))) / twoE
		got := float64(res.Visits[v]) / total
		// ~160k total visits, ~800 expected per vertex: 4-sigma tolerance.
		sigma := math.Sqrt(want * (1 - want) / total)
		if math.Abs(got-want) > 5*sigma+1e-4 {
			t.Fatalf("vertex %d: visit frequency %v, stationary %v (deg %d)",
				v, got, want, g.Degree(graph.VertexID(v)))
		}
	}
}

// TestStationaryDistributionWeighted: for a weighted walk the stationary
// probability is strength(v)/Σstrength, where strength is the vertex's
// total edge weight (holds because the symmetric weights make the chain
// reversible).
func TestStationaryDistributionWeighted(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(100, 10, 47), 1, 5, 49)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   &Algorithm{Name: "wstat", Biased: true, MaxSteps: 500},
		NumWalkers:  300,
		NumNodes:    2,
		Seed:        51,
		CountVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalStrength := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		totalStrength += g.TotalWeight(graph.VertexID(v))
	}
	total := float64(res.Counters.Steps)
	var worst float64
	for v := 0; v < g.NumVertices(); v++ {
		want := g.TotalWeight(graph.VertexID(v)) / totalStrength
		got := float64(res.Visits[v]) / total
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	// 150k visits over 100 vertices: relative error per vertex should stay
	// within ~15%.
	if worst > 0.2 {
		t.Fatalf("worst relative deviation from weighted stationary: %v", worst)
	}
}

// TestNode2vecDegeneratesToUnbiasedWalk: with p=q=1, node2vec is exactly
// the unbiased first-order walk, so its stationary distribution must also
// be degree-proportional — validated through the full second-order query
// machinery.
func TestNode2vecDegeneratesToUnbiasedWalk(t *testing.T) {
	g := gen.UniformDegree(100, 8, 53)
	alg := &Algorithm{
		Name:     "n2v-uniform",
		MaxSteps: 200,
		EdgeDynamicComp: func(w *Walker, e graph.Edge, result uint64, hasResult bool) float64 {
			return 1
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
		PostQuery: func(w *Walker, e graph.Edge) (graph.VertexID, uint64, bool) {
			if w.Step == 0 {
				return 0, 0, false
			}
			return w.Prev, uint64(e.Dst), true // pointless but exercised
		},
	}
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   alg,
		NumWalkers:  300,
		NumNodes:    4,
		Seed:        57,
		CountVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Queries == 0 {
		t.Fatal("query machinery not exercised")
	}
	total := float64(res.Counters.Steps)
	twoE := float64(g.NumEdges())
	var worst float64
	for v := 0; v < g.NumVertices(); v++ {
		want := float64(g.Degree(graph.VertexID(v))) / twoE
		got := float64(res.Visits[v]) / total
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.25 {
		t.Fatalf("worst relative deviation %v from degree-proportional stationary", worst)
	}
}

// node2vecAlg builds the node2vec walk inline (this package cannot import
// internal/alg without a cycle), replicating alg.Node2Vec's Pd semantics:
// 1/p for the return edge, 1 for edges closing a triangle with the previous
// vertex, 1/q otherwise, with the first step sampled by Ps alone.
func node2vecAlg(p, q float64, length int) *Algorithm {
	invP, invQ := 1/p, 1/q
	fullBound := math.Max(math.Max(1, invP), invQ)
	return &Algorithm{
		Name:     "n2v-inline",
		MaxSteps: length,
		EdgeDynamicComp: func(w *Walker, e graph.Edge, result uint64, hasResult bool) float64 {
			if w.Step == 0 {
				return fullBound
			}
			if e.Dst == w.Prev {
				return invP
			}
			if !hasResult {
				panic("n2v-inline: non-return Pd requires a query result")
			}
			if result != 0 {
				return 1
			}
			return invQ
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return fullBound },
		PostQuery: func(w *Walker, e graph.Edge) (graph.VertexID, uint64, bool) {
			if w.Step == 0 || e.Dst == w.Prev {
				return 0, 0, false
			}
			return w.Prev, uint64(e.Dst), true
		},
	}
}

// TestNode2vecSecondOrderChiSquare is an exact distributional check of the
// distributed second-order machinery: over a multi-rank node2vec run, the
// observed next-vertex counts at every (prev, cur) context are tested with
// a chi-square statistic against the closed-form transition distribution
// weight(x) ∝ 1/p · [x = prev] + 1 · [prev~x] + 1/q · [otherwise]. A biased
// remote-query path (wrong adjacency answers, walker state corrupted across
// migrations, RNG stream mixups) shifts these conditionals even when
// first-order stationary checks still pass.
func TestNode2vecSecondOrderChiSquare(t *testing.T) {
	const (
		p, q    = 2.0, 0.5
		length  = 48
		walkers = 2500
	)
	g := gen.UniformDegree(60, 6, 61)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   node2vecAlg(p, q, length),
		NumWalkers:  walkers,
		NumNodes:    4,
		Seed:        63,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Queries == 0 {
		t.Fatal("no remote state queries; the second-order path was not exercised")
	}

	// Tally observed transitions per context (prev, cur) → next.
	type context struct{ prev, cur graph.VertexID }
	observed := make(map[context]map[graph.VertexID]int)
	for _, path := range res.Paths {
		for i := 1; i+1 < len(path); i++ {
			ctx := context{path[i-1], path[i]}
			m := observed[ctx]
			if m == nil {
				m = make(map[graph.VertexID]int)
				observed[ctx] = m
			}
			m[path[i+1]]++
		}
	}

	// Chi-square against the exact conditional at each context, pooling all
	// contexts into one aggregate statistic. Contexts whose smallest expected
	// cell is below 5 are skipped (standard chi-square applicability bound).
	invP, invQ := 1/p, 1/q
	var chi2 float64
	df := 0
	contexts, skipped := 0, 0
	for ctx, counts := range observed {
		n := 0
		for _, c := range counts {
			n += c
		}
		// Exact next-vertex distribution (parallel edges pooled by vertex).
		probs := make(map[graph.VertexID]float64)
		total := 0.0
		for _, x := range g.Neighbors(ctx.cur) {
			var w float64
			switch {
			case x == ctx.prev:
				w = invP
			case g.HasEdge(ctx.prev, x):
				w = 1
			default:
				w = invQ
			}
			probs[x] += w
			total += w
		}
		minExp := math.Inf(1)
		for _, w := range probs {
			if e := float64(n) * w / total; e < minExp {
				minExp = e
			}
		}
		if minExp < 5 {
			skipped++
			continue
		}
		for x, w := range probs {
			e := float64(n) * w / total
			d := float64(counts[x]) - e
			chi2 += d * d / e
		}
		df += len(probs) - 1
		contexts++
	}
	if contexts < 100 {
		t.Fatalf("only %d contexts had enough mass for the test (%d skipped); increase walkers", contexts, skipped)
	}
	// For large df, chi-square is ~N(df, 2df); 6 sigma keeps the false
	// positive rate negligible while catching any systematic bias.
	limit := float64(df) + 6*math.Sqrt(2*float64(df))
	t.Logf("chi2 = %.1f over df = %d (%d contexts, %d skipped), limit %.1f", chi2, df, contexts, skipped, limit)
	if chi2 > limit {
		t.Fatalf("chi2 = %.1f exceeds %.1f at df = %d: observed transitions deviate from the exact second-order distribution", chi2, limit, df)
	}
	// A far-too-small statistic would mean the test is vacuous (e.g. the
	// observed counts were derived from the expectation itself).
	if chi2 < float64(df)-6*math.Sqrt(2*float64(df)) {
		t.Fatalf("chi2 = %.1f implausibly small for df = %d", chi2, df)
	}
}
