package core

import (
	"math"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

// TestStationaryDistributionMatchesDegree is an end-to-end statistical
// check of the whole engine: on a connected undirected graph, the
// stationary distribution of an unbiased random walk is exactly
// deg(v)/2|E|. Long walks' visit frequencies must converge to it.
func TestStationaryDistributionMatchesDegree(t *testing.T) {
	g := gen.UniformDegree(200, 8, 41) // near-regular, fast mixing
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   staticAlg(400),
		NumWalkers:  400,
		NumNodes:    3,
		Seed:        43,
		CountVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := float64(res.Counters.Steps)
	twoE := float64(g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		want := float64(g.Degree(graph.VertexID(v))) / twoE
		got := float64(res.Visits[v]) / total
		// ~160k total visits, ~800 expected per vertex: 4-sigma tolerance.
		sigma := math.Sqrt(want * (1 - want) / total)
		if math.Abs(got-want) > 5*sigma+1e-4 {
			t.Fatalf("vertex %d: visit frequency %v, stationary %v (deg %d)",
				v, got, want, g.Degree(graph.VertexID(v)))
		}
	}
}

// TestStationaryDistributionWeighted: for a weighted walk the stationary
// probability is strength(v)/Σstrength, where strength is the vertex's
// total edge weight (holds because the symmetric weights make the chain
// reversible).
func TestStationaryDistributionWeighted(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(100, 10, 47), 1, 5, 49)
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   &Algorithm{Name: "wstat", Biased: true, MaxSteps: 500},
		NumWalkers:  300,
		NumNodes:    2,
		Seed:        51,
		CountVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalStrength := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		totalStrength += g.TotalWeight(graph.VertexID(v))
	}
	total := float64(res.Counters.Steps)
	var worst float64
	for v := 0; v < g.NumVertices(); v++ {
		want := g.TotalWeight(graph.VertexID(v)) / totalStrength
		got := float64(res.Visits[v]) / total
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	// 150k visits over 100 vertices: relative error per vertex should stay
	// within ~15%.
	if worst > 0.2 {
		t.Fatalf("worst relative deviation from weighted stationary: %v", worst)
	}
}

// TestNode2vecDegeneratesToUnbiasedWalk: with p=q=1, node2vec is exactly
// the unbiased first-order walk, so its stationary distribution must also
// be degree-proportional — validated through the full second-order query
// machinery.
func TestNode2vecDegeneratesToUnbiasedWalk(t *testing.T) {
	g := gen.UniformDegree(100, 8, 53)
	alg := &Algorithm{
		Name:     "n2v-uniform",
		MaxSteps: 200,
		EdgeDynamicComp: func(w *Walker, e graph.Edge, result uint64, hasResult bool) float64 {
			return 1
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
		PostQuery: func(w *Walker, e graph.Edge) (graph.VertexID, uint64, bool) {
			if w.Step == 0 {
				return 0, 0, false
			}
			return w.Prev, uint64(e.Dst), true // pointless but exercised
		},
	}
	res, err := Run(Config{
		Graph:       g,
		Algorithm:   alg,
		NumWalkers:  300,
		NumNodes:    4,
		Seed:        57,
		CountVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Queries == 0 {
		t.Fatal("query machinery not exercised")
	}
	total := float64(res.Counters.Steps)
	twoE := float64(g.NumEdges())
	var worst float64
	for v := 0; v < g.NumVertices(); v++ {
		want := float64(g.Degree(graph.VertexID(v))) / twoE
		got := float64(res.Visits[v]) / total
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.25 {
		t.Fatalf("worst relative deviation %v from degree-proportional stationary", worst)
	}
}
