package embed

import (
	"testing"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/graph"
	"knightking/internal/trace"
)

// barbell builds two cliques of size k joined by a single bridge edge.
func barbell(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k).SetUndirected(true).SetDedup(true)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			b.AddEdge(graph.VertexID(k+i), graph.VertexID(k+j))
		}
	}
	b.AddEdge(0, graph.VertexID(k))
	return b.Build()
}

// walkCorpus runs DeepWalk and returns the corpus.
func walkCorpus(t *testing.T, g *graph.Graph, length, walkersPerVertex int) *trace.Corpus {
	t.Helper()
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   alg.DeepWalk(length, false),
		NumWalkers:  g.NumVertices() * walkersPerVertex,
		Seed:        7,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace.New(res.Paths)
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(trace.New(nil), Config{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	short := trace.New([][]graph.VertexID{{1}})
	if _, err := Train(short, Config{}); err == nil {
		t.Fatal("pairless corpus accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	c := trace.New([][]graph.VertexID{{0, 1, 2, 3}, {3, 2, 1, 0}})
	cfg := Config{Dim: 8, Epochs: 2, Seed: 5}
	a, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.VertexID(0); v < 4; v++ {
		va, vb := a.Vector(v), b.Vector(v)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("vertex %d dim %d differs across same-seed runs", v, i)
			}
		}
	}
}

func TestModelAccessors(t *testing.T) {
	c := trace.New([][]graph.VertexID{{0, 1, 2}})
	m, err := Train(c, Config{Dim: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 16 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	if m.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", m.NumVertices())
	}
	if len(m.Vector(1)) != 16 {
		t.Fatalf("vector length %d", len(m.Vector(1)))
	}
	if s := m.Similarity(1, 1); s < 0.999 {
		t.Fatalf("self-similarity %v", s)
	}
}

func TestEmbeddingsSeparateCommunities(t *testing.T) {
	// The classic sanity check: on a barbell graph, vertices within a
	// clique must embed closer together than across the bridge.
	const k = 8
	g := barbell(k)
	corpus := walkCorpus(t, g, 20, 10)
	m, err := Train(corpus, Config{Dim: 32, Window: 4, Epochs: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i < j {
				intra += m.Similarity(graph.VertexID(i), graph.VertexID(j))
				intra += m.Similarity(graph.VertexID(k+i), graph.VertexID(k+j))
				nIntra += 2
			}
			inter += m.Similarity(graph.VertexID(i), graph.VertexID(k+j))
			nInter++
		}
	}
	avgIntra := intra / float64(nIntra)
	avgInter := inter / float64(nInter)
	if avgIntra <= avgInter+0.1 {
		t.Fatalf("communities not separated: intra %v vs inter %v", avgIntra, avgInter)
	}
}

func TestMostSimilarPrefersOwnClique(t *testing.T) {
	const k = 8
	g := barbell(k)
	corpus := walkCorpus(t, g, 20, 10)
	m, err := Train(corpus, Config{Dim: 32, Window: 4, Epochs: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Query a vertex deep inside the first clique (not the bridge vertex).
	nbrs := m.MostSimilar(3, 5)
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbors", len(nbrs))
	}
	own := 0
	for _, nb := range nbrs {
		if int(nb.Vertex) < k {
			own++
		}
	}
	if own < 4 {
		t.Fatalf("only %d of 5 nearest neighbors in own clique: %v", own, nbrs)
	}
	// Results must be sorted by similarity.
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Similarity > nbrs[i-1].Similarity {
			t.Fatal("MostSimilar not sorted")
		}
	}
}
