// Package embed implements SkipGram with negative sampling (SGNS), the
// embedding stage that DeepWalk and node2vec feed their walk corpora into
// (Mikolov et al., cited by the paper). The paper scopes its contribution
// to the walk stage — and notes a Spark node2vec spends 98.8% of its time
// there — but a usable walk engine needs the consumer too, so this package
// completes the pipeline: walks in, vertex vectors out.
//
// Negative samples are drawn from the unigram^power distribution via this
// repository's own alias table, the same structure the engine uses for
// static edge sampling.
package embed

import (
	"fmt"
	"math"

	"knightking/internal/graph"
	"knightking/internal/rng"
	"knightking/internal/sampling"
	"knightking/internal/trace"
)

// Config controls SGNS training.
type Config struct {
	// Dim is the embedding dimensionality (default 64).
	Dim int
	// Window is the SkipGram context window (default 5).
	Window int
	// Negatives is the number of negative samples per positive pair
	// (default 5).
	Negatives int
	// Epochs is the number of passes over the corpus (default 3).
	Epochs int
	// LearningRate is the initial SGD step size, linearly decayed to
	// LearningRate/20 over training (default 0.025).
	LearningRate float64
	// UnigramPower shapes the negative-sampling distribution freq^power
	// (default 0.75, the word2vec standard).
	UnigramPower float64
	// Seed makes training deterministic.
	Seed uint64
}

func (c Config) defaults() Config {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.025
	}
	if c.UnigramPower <= 0 {
		c.UnigramPower = 0.75
	}
	return c
}

// Model holds trained vertex embeddings.
type Model struct {
	dim int
	// in is the input (center) embedding matrix, the one consumers use.
	in []float32
	// out is the output (context) matrix, kept for incremental training.
	out  []float32
	nVtx int
}

// Train fits SGNS embeddings to the corpus.
func Train(c *trace.Corpus, cfg Config) (*Model, error) {
	cfg = cfg.defaults()
	if c.Len() == 0 {
		return nil, fmt.Errorf("embed: empty corpus")
	}
	nVtx := int(c.MaxVertex()) + 1
	freq := c.Frequencies(nVtx)

	// Negative-sampling distribution: freq^power over observed vertices.
	negWeights := make([]float32, nVtx)
	for v, f := range freq {
		if f > 0 {
			negWeights[v] = float32(math.Pow(float64(f), cfg.UnigramPower))
		}
	}
	negSampler, err := sampling.NewAlias(negWeights)
	if err != nil {
		return nil, fmt.Errorf("embed: negative sampler: %w", err)
	}

	m := &Model{dim: cfg.Dim, nVtx: nVtx}
	m.in = make([]float32, nVtx*cfg.Dim)
	m.out = make([]float32, nVtx*cfg.Dim)
	r := rng.New(cfg.Seed)
	for i := range m.in {
		m.in[i] = (float32(r.Float64()) - 0.5) / float32(cfg.Dim)
	}

	totalPairs := c.CountPairs(cfg.Window) * int64(cfg.Epochs)
	if totalPairs == 0 {
		return nil, fmt.Errorf("embed: corpus has no training pairs (walks too short?)")
	}
	var seen int64
	grad := make([]float32, cfg.Dim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		c.Pairs(cfg.Window, func(center, context graph.VertexID) bool {
			// Linear learning-rate decay, floored at 5%.
			frac := float64(seen) / float64(totalPairs)
			lr := float32(cfg.LearningRate * math.Max(0.05, 1-frac))
			seen++

			ci := int(center) * cfg.Dim
			cin := m.in[ci : ci+cfg.Dim]
			for i := range grad {
				grad[i] = 0
			}
			// One positive plus k negative targets.
			m.update(cin, int(context), 1, lr, grad)
			for k := 0; k < cfg.Negatives; k++ {
				neg := negSampler.Sample(r)
				if neg == int(context) {
					continue
				}
				m.update(cin, neg, 0, lr, grad)
			}
			for i := range cin {
				cin[i] += grad[i]
			}
			return true
		})
	}
	return m, nil
}

// update applies one (center, target, label) SGNS step: accumulates the
// center gradient into grad and updates the target's output vector.
func (m *Model) update(cin []float32, target int, label float32, lr float32, grad []float32) {
	ti := target * m.dim
	tout := m.out[ti : ti+m.dim]
	var dot float32
	for i := range cin {
		dot += cin[i] * tout[i]
	}
	g := lr * (label - sigmoid(dot))
	for i := range cin {
		grad[i] += g * tout[i]
		tout[i] += g * cin[i]
	}
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// NumVertices returns the vocabulary size (max vertex + 1).
func (m *Model) NumVertices() int { return m.nVtx }

// Vector returns v's embedding (aliased; treat as read-only).
func (m *Model) Vector(v graph.VertexID) []float32 {
	i := int(v) * m.dim
	return m.in[i : i+m.dim]
}

// Similarity returns the cosine similarity of two vertices' embeddings.
func (m *Model) Similarity(a, b graph.VertexID) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	var dot, na, nb float64
	for i := range va {
		dot += float64(va[i]) * float64(vb[i])
		na += float64(va[i]) * float64(va[i])
		nb += float64(vb[i]) * float64(vb[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Vertex     graph.VertexID
	Similarity float64
}

// MostSimilar returns the k vertices most cosine-similar to v (excluding
// v itself), by exhaustive scan.
func (m *Model) MostSimilar(v graph.VertexID, k int) []Neighbor {
	var out []Neighbor
	for u := 0; u < m.nVtx; u++ {
		if graph.VertexID(u) == v {
			continue
		}
		s := m.Similarity(v, graph.VertexID(u))
		out = append(out, Neighbor{Vertex: graph.VertexID(u), Similarity: s})
	}
	// Partial selection sort: k is small.
	if k > len(out) {
		k = len(out)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Similarity > out[best].Similarity {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out[:k]
}
