package alg

import (
	"math"
	"testing"

	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func TestHeteroNode2VecPanics(t *testing.T) {
	ok := HeteroNode2VecParams{Schemes: [][]int32{{0}}, P: 1, Q: 1, Length: 5}
	cases := []func(p HeteroNode2VecParams) HeteroNode2VecParams{
		func(p HeteroNode2VecParams) HeteroNode2VecParams { p.Schemes = nil; return p },
		func(p HeteroNode2VecParams) HeteroNode2VecParams { p.Schemes = [][]int32{{}}; return p },
		func(p HeteroNode2VecParams) HeteroNode2VecParams { p.P = 0; return p },
		func(p HeteroNode2VecParams) HeteroNode2VecParams { p.Q = -1; return p },
		func(p HeteroNode2VecParams) HeteroNode2VecParams { p.Length = 0; return p },
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			HeteroNode2Vec(mutate(ok))
		}()
	}
}

func TestHeteroNode2VecRespectsSchemes(t *testing.T) {
	g := gen.WithTypes(gen.UniformDegree(200, 12, 71), 2, 73)
	res, err := core.Run(core.Config{
		Graph: g,
		Algorithm: HeteroNode2Vec(HeteroNode2VecParams{
			Schemes: [][]int32{{0, 1}}, P: 2, Q: 0.5, Length: 6,
		}),
		NumNodes:    3,
		Seed:        75,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for id, p := range res.Paths {
		for k := 1; k < len(p); k++ {
			want := int32((k - 1) % 2)
			if got := typeOf(t, g, p[k-1], p[k]); got != want {
				t.Fatalf("walker %d step %d type %d, want %d", id, k, got, want)
			}
			steps++
		}
	}
	if steps < 200 {
		t.Fatalf("only %d steps", steps)
	}
	if res.Counters.Queries == 0 {
		t.Fatal("no second-order queries issued")
	}
}

func TestHeteroNode2VecDeadEndTerminates(t *testing.T) {
	// Scheme demanding type 9, which no edge has: walkers must finish with
	// zero steps through ZeroMassCheck, not spin until MaxIterations.
	g := gen.WithTypes(gen.UniformDegree(60, 8, 77), 2, 79)
	res, err := core.Run(core.Config{
		Graph: g,
		Algorithm: HeteroNode2Vec(HeteroNode2VecParams{
			Schemes: [][]int32{{9}}, P: 2, Q: 0.5, Length: 6,
		}),
		Seed:          81,
		MaxIterations: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps != 0 {
		t.Fatalf("impossible scheme took %d steps", res.Counters.Steps)
	}
	if res.Counters.Terminations != int64(g.NumVertices()) {
		t.Fatalf("Terminations = %d", res.Counters.Terminations)
	}
}

func TestHeteroNode2VecExactness(t *testing.T) {
	// Empirical conditional distribution of the second hop must match the
	// brute-force product of the type constraint and node2vec weights.
	g := gen.WithTypes(gen.ErdosRenyi(14, 60, 83), 2, 85)
	const p, q = 2.0, 0.5
	scheme := []int32{0, 1}
	res, err := core.Run(core.Config{
		Graph: g,
		Algorithm: HeteroNode2Vec(HeteroNode2VecParams{
			Schemes: [][]int32{scheme}, P: p, Q: q, Length: 2,
		}),
		NumWalkers:  150000,
		NumNodes:    2,
		StartVertex: func(int64) graph.VertexID { return 0 },
		Seed:        87,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[graph.VertexID]map[graph.VertexID]float64)
	totals := make(map[graph.VertexID]float64)
	for _, path := range res.Paths {
		if len(path) != 3 {
			continue // dead-ended after one hop; fine
		}
		v1, v2 := path[1], path[2]
		if counts[v1] == nil {
			counts[v1] = make(map[graph.VertexID]float64)
		}
		counts[v1][v2]++
		totals[v1]++
	}
	checked := 0
	for v1, obs := range counts {
		if totals[v1] < 5000 {
			continue
		}
		adj := g.Neighbors(v1)
		types := g.Types(v1)
		weights := make([]float64, len(adj))
		sum := 0.0
		for i, x := range adj {
			if types[i] != scheme[1] { // step 1 demands scheme[1 mod 2]
				continue
			}
			var pd float64
			switch {
			case x == 0: // prev
				pd = 1 / p
			case g.HasEdge(0, x):
				pd = 1
			default:
				pd = 1 / q
			}
			weights[i] = pd
			sum += pd
		}
		if sum == 0 {
			continue
		}
		for i, w := range weights {
			want := w / sum
			got := obs[adj[i]] / totals[v1]
			if math.Abs(got-want) > 0.03 {
				t.Fatalf("P(%d|%d) = %v, want %v", adj[i], v1, got, want)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d transitions checked; fixture too sparse", checked)
	}
}

func TestHeteroNode2VecDeterministicAcrossNodes(t *testing.T) {
	g := gen.WithTypes(gen.UniformDegree(120, 10, 89), 3, 91)
	var ref [][]graph.VertexID
	for _, nodes := range []int{1, 4} {
		res, err := core.Run(core.Config{
			Graph: g,
			Algorithm: HeteroNode2Vec(HeteroNode2VecParams{
				Schemes: [][]int32{{0, 1, 2}, {2, 1}}, P: 0.5, Q: 2, Length: 8,
			}),
			NumNodes:    nodes,
			Seed:        93,
			RecordPaths: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Paths
			continue
		}
		for id := range ref {
			if len(ref[id]) != len(res.Paths[id]) {
				t.Fatalf("walker %d path lengths differ", id)
			}
			for i := range ref[id] {
				if ref[id][i] != res.Paths[id][i] {
					t.Fatalf("walker %d diverges", id)
				}
			}
		}
	}
}
