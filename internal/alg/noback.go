package alg

import (
	"fmt"

	"knightking/internal/core"
	"knightking/internal/graph"
)

// NoBacktrack returns an order-K non-backtracking walk: the walker refuses
// to revisit any of its last `window` vertices (a windowed self-avoiding
// walk). Non-backtracking walks mix faster than simple walks and underlie
// several spectral methods; here they demonstrate the framework's
// generality beyond second order — the paper's taxonomy explicitly allows
// walker state carrying "the previous n vertices visited".
//
// The walk is dynamic order-(window+1) but needs no remote queries: the
// history rides along with the walker, so Pd is evaluated locally. When
// every neighbor is in the window (a dead end), the engine's full-scan
// fallback detects zero acceptance mass and terminates the walk.
func NoBacktrack(window, length int, biased bool) *core.Algorithm {
	if window < 1 || window > 255 {
		panic(fmt.Sprintf("alg: NoBacktrack window %d outside [1,255]", window))
	}
	if length <= 0 {
		panic(fmt.Sprintf("alg: NoBacktrack length %d", length))
	}
	return &core.Algorithm{
		Name:        "noback",
		Biased:      biased,
		MaxSteps:    length,
		HistorySize: window,
		EdgeDynamicComp: func(w *core.Walker, e graph.Edge, _ uint64, _ bool) float64 {
			if e.Dst == w.Cur || w.InHistory(e.Dst) {
				return 0
			}
			return 1
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
	}
}
