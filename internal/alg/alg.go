// Package alg expresses the paper's four representative random walk
// algorithms (§2.2) on the engine's unified transition probability API:
//
//	DeepWalk  — biased/unbiased static walk, fixed length
//	PPR       — biased/unbiased static walk, probabilistic termination
//	MetaPath  — dynamic first-order walk over typed edges
//	Node2Vec  — dynamic second-order walk (the running example)
//
// Each constructor returns a *core.Algorithm ready for core.Run.
package alg

import (
	"fmt"
	"math"
	"sort"

	"knightking/internal/core"
	"knightking/internal/graph"
	"knightking/internal/rng"
	"knightking/internal/sampling"
)

// DeepWalk returns the DeepWalk algorithm: a truncated random walk of
// exactly `length` steps. With biased set, the transition probability of an
// edge is proportional to its weight (the extension of [Cochez et al.]);
// otherwise the walk is unbiased.
func DeepWalk(length int, biased bool) *core.Algorithm {
	if length <= 0 {
		panic(fmt.Sprintf("alg: DeepWalk length %d", length))
	}
	return &core.Algorithm{
		Name:     "deepwalk",
		Biased:   biased,
		MaxSteps: length,
	}
}

// PPR returns the random-walk formulation of fully personalized PageRank:
// walkers terminate with probability pt before every step (expected walk
// length 1/pt - 1), optionally weight-biased. maxSteps caps pathological
// walks (0 = uncapped, as in the paper).
func PPR(pt float64, biased bool, maxSteps int) *core.Algorithm {
	if pt <= 0 || pt >= 1 {
		panic(fmt.Sprintf("alg: PPR termination probability %v", pt))
	}
	return &core.Algorithm{
		Name:            "ppr",
		Biased:          biased,
		TerminationProb: pt,
		MaxSteps:        maxSteps,
	}
}

// MetaPath returns the meta-path constrained walk: each walker is randomly
// assigned one of the given schemes (cyclic sequences of edge types) and at
// step k may only follow edges of type scheme[k mod len(scheme)]. Dynamic
// (the eligible edge set changes every step) but first-order (no remote
// state is consulted), so Pd is evaluated locally.
func MetaPath(schemes [][]int32, length int, biased bool) *core.Algorithm {
	if len(schemes) == 0 {
		panic("alg: MetaPath requires at least one scheme")
	}
	for i, s := range schemes {
		if len(s) == 0 {
			panic(fmt.Sprintf("alg: MetaPath scheme %d is empty", i))
		}
	}
	if length <= 0 {
		panic(fmt.Sprintf("alg: MetaPath length %d", length))
	}
	return &core.Algorithm{
		Name:     "metapath",
		Biased:   biased,
		MaxSteps: length,
		InitWalker: func(w *core.Walker, r *rng.Rand) {
			w.Tag = int32(r.Uint64n(uint64(len(schemes))))
		},
		EdgeDynamicComp: func(w *core.Walker, e graph.Edge, _ uint64, _ bool) float64 {
			s := schemes[w.Tag]
			if e.Type == s[int(w.Step)%len(s)] {
				return 1
			}
			return 0
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return 1 },
		// No lower bound: ineligible edges have Pd = 0.
	}
}

// Node2VecParams configures Node2Vec.
type Node2VecParams struct {
	// P is the return parameter: 1/P is the probability weight of
	// revisiting the previous vertex.
	P float64
	// Q is the in-out parameter: 1/Q weighs edges leading "away" from the
	// previous vertex (d_tx = 2).
	Q float64
	// Length is the fixed walk length (80 in the paper's evaluation).
	Length int
	// Biased compounds edge weights as the static component Ps.
	Biased bool
	// LowerBound enables the pre-acceptance optimization (§4.2).
	LowerBound bool
	// FoldOutlier enables outlier folding of the return edge when
	// 1/P exceeds the other Pd values (§4.2).
	FoldOutlier bool
}

// Node2Vec returns the second-order node2vec walk of Grover & Leskovec,
// the paper's running example. The dynamic component depends on the
// distance d between the previous vertex t and the candidate x:
//
//	Pd = 1/P if d = 0 (x is t: the return edge)
//	Pd = 1   if d = 1 (x adjacent to t — resolved by a remote state query)
//	Pd = 1/Q otherwise
//
// The adjacency test t–x is the walker-to-vertex state query that forces
// the engine's two message rounds per superstep.
func Node2Vec(params Node2VecParams) *core.Algorithm {
	if params.P <= 0 || params.Q <= 0 {
		panic(fmt.Sprintf("alg: Node2Vec p=%v q=%v", params.P, params.Q))
	}
	if params.Length <= 0 {
		panic(fmt.Sprintf("alg: Node2Vec length %d", params.Length))
	}
	invP := 1 / params.P
	invQ := 1 / params.Q
	// Envelope over the non-return edges (Pd ∈ {1, 1/Q}); the full bound
	// additionally covers the return edge (Pd = 1/P).
	baseBound := math.Max(1, invQ)
	fullBound := math.Max(baseBound, invP)
	folded := params.FoldOutlier && invP > baseBound
	envelope := fullBound
	if folded {
		envelope = baseBound
	}
	lower := math.Min(math.Min(1, invP), invQ)

	a := &core.Algorithm{
		Name:     "node2vec",
		Biased:   params.Biased,
		MaxSteps: params.Length,
		EdgeDynamicComp: func(w *core.Walker, e graph.Edge, result uint64, hasResult bool) float64 {
			if w.Step == 0 {
				// No previous vertex yet: the first step is sampled by Ps
				// alone, expressed as Pd = the full bound so every dart
				// accepts (paper's sample code returns max(1/p, 1, 1/q)).
				return fullBound
			}
			if e.Dst == w.Prev {
				return invP
			}
			if !hasResult {
				panic("alg: node2vec Pd for a non-return edge requires a state query result")
			}
			if result != 0 {
				return 1
			}
			return invQ
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return envelope },
		PostQuery: func(w *core.Walker, e graph.Edge) (graph.VertexID, uint64, bool) {
			if w.Step == 0 || e.Dst == w.Prev {
				return 0, 0, false // Pd computable locally
			}
			return w.Prev, uint64(e.Dst), true
		},
	}
	if params.LowerBound {
		a.LowerBound = func(*graph.Graph, graph.VertexID) float64 { return lower }
	}
	if folded {
		a.Outliers = func(g *graph.Graph, v graph.VertexID) []sampling.Appendix {
			return []sampling.Appendix{{
				Tag:      0, // the return edge
				WidthUB:  returnEdgeWidthUB(g, v, params.Biased),
				HeightUB: invP - baseBound,
			}}
		}
		a.LocateOutlier = func(g *graph.Graph, v graph.VertexID, w *core.Walker, tag int) int {
			if w.Step == 0 {
				return -1 // no return edge yet
			}
			return edgeIndexOf(g, v, w.Prev)
		}
	}
	return a
}

// returnEdgeWidthUB bounds the static width Ps of the (unknown) return
// edge at v: 1 for unbiased walks, the maximum edge weight for biased.
func returnEdgeWidthUB(g *graph.Graph, v graph.VertexID, biased bool) float64 {
	if !biased {
		return 1
	}
	return g.MaxWeight(v)
}

// edgeIndexOf finds the index of v's edge to dst by binary search over the
// sorted adjacency, or -1 when absent.
func edgeIndexOf(g *graph.Graph, v, dst graph.VertexID) int {
	adj := g.Neighbors(v)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= dst })
	if i < len(adj) && adj[i] == dst {
		return i
	}
	return -1
}

// Node2VecMixed returns a *deliberately degraded* biased node2vec that
// folds the edge weight into the dynamic component instead of the static
// one (Ps ≡ 1, Pd *= weight), reproducing the "mixed" configuration of the
// paper's Figure 8. The envelope must then cover maxWeight × max Pd, so
// skewed or large weights blow up the rejection area. For the ablation
// only — use Node2Vec for real work.
func Node2VecMixed(params Node2VecParams) *core.Algorithm {
	if params.Biased {
		panic("alg: Node2VecMixed supplies its own weight handling; set Biased=false")
	}
	base := Node2Vec(Node2VecParams{
		P: params.P, Q: params.Q, Length: params.Length,
		LowerBound: false, FoldOutlier: false,
	})
	inner := base.EdgeDynamicComp
	invP := 1 / params.P
	invQ := 1 / params.Q
	maxPd := math.Max(math.Max(1, invP), invQ)
	base.Name = "node2vec-mixed"
	base.EdgeDynamicComp = func(w *core.Walker, e graph.Edge, result uint64, hasResult bool) float64 {
		return float64(e.Weight) * inner(w, e, result, hasResult)
	}
	base.UpperBound = func(g *graph.Graph, v graph.VertexID) float64 {
		m := g.MaxWeight(v)
		if m <= 0 {
			m = 1
		}
		return m * maxPd
	}
	return base
}
