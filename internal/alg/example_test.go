package alg_test

import (
	"fmt"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
)

// ExampleNode2Vec runs the paper's running example end to end: biased
// second-order node2vec with both §4.2 optimizations, on a heavy-tailed
// graph, reporting the machine-independent sampling cost.
func ExampleNode2Vec() {
	g := gen.WithUniformWeights(gen.TruncatedPowerLaw(2000, 4, 400, 2.0, 1), 1, 5, 2)
	res, err := core.Run(core.Config{
		Graph: g,
		Algorithm: alg.Node2Vec(alg.Node2VecParams{
			P: 2, Q: 0.5, Length: 20, Biased: true,
			LowerBound: true, FoldOutlier: true,
		}),
		NumNodes: 4,
		Seed:     3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("every walker finished: %v\n", res.Counters.Terminations == int64(g.NumVertices()))
	fmt.Printf("edges examined per step < 1.5: %v\n", res.Counters.EdgesPerStep() < 1.5)
	// Output:
	// every walker finished: true
	// edges examined per step < 1.5: true
}

// ExampleMetaPath constrains walks to a typed pattern on a heterogeneous
// graph.
func ExampleMetaPath() {
	g := gen.WithTypes(gen.UniformDegree(500, 10, 5), 3, 6)
	res, err := core.Run(core.Config{
		Graph:     g,
		Algorithm: alg.MetaPath([][]int32{{0, 1, 2}}, 9, false),
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("walkers: %d\n", res.Counters.Terminations)
	fmt.Printf("dynamic sampling used: %v\n", res.Counters.EdgeProbEvals > 0)
	// Output:
	// walkers: 500
	// dynamic sampling used: true
}
