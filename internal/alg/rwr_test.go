package alg

import (
	"testing"

	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func TestRWRPanicsOnBadParams(t *testing.T) {
	for _, c := range []float64{0, 1, -0.2, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RWR(%v) did not panic", c)
				}
			}()
			RWR(c, false, 10)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RWR with maxSteps 0 did not panic")
			}
		}()
		RWR(0.15, false, 0)
	}()
}

func TestRWRVisitsConcentrateNearOrigin(t *testing.T) {
	// On a long ring, RWR visit mass must decay with distance from the
	// origin — the defining property of personalized PageRank.
	g := gen.Ring(200, 0)
	const origin graph.VertexID = 100
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   RWR(0.2, false, 400),
		NumWalkers:  2000,
		StartVertex: func(int64) graph.VertexID { return origin },
		Seed:        1,
		CountVisits: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	near := res.Visits[99] + res.Visits[100] + res.Visits[101]
	far := res.Visits[0] + res.Visits[1] + res.Visits[199]
	if near < 10*far {
		t.Fatalf("RWR mass not concentrated: near=%d far=%d", near, far)
	}
	if res.Counters.Restarts == 0 {
		t.Fatal("no restarts")
	}
}

func TestRWRWalkLengthIsExact(t *testing.T) {
	g := gen.UniformDegree(60, 6, 3)
	res, err := core.Run(core.Config{
		Graph:      g,
		Algorithm:  RWR(0.15, false, 50),
		NumWalkers: 300,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lengths.Mean() != 50 {
		t.Fatalf("mean length %v, want exactly 50 (teleports count)", res.Lengths.Mean())
	}
}

func TestRWRBiased(t *testing.T) {
	g := gen.WithUniformWeights(gen.UniformDegree(60, 6, 5), 1, 5, 7)
	res, err := core.Run(core.Config{
		Graph:      g,
		Algorithm:  RWR(0.15, true, 30),
		NumWalkers: 200,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps == 0 {
		t.Fatal("no steps taken")
	}
}
