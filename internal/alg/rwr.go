package alg

import (
	"fmt"

	"knightking/internal/core"
)

// RWR returns Random Walk with Restart (Tong, Faloutsos & Pan, cited by
// the paper as a foundational random-walk application): before each step
// the walker teleports back to its origin vertex with probability c, and
// otherwise takes a (optionally weight-biased) step. The stationary visit
// distribution of a long RWR run is the origin's personalized PageRank
// vector; combine with core.Config.CountVisits to read it out directly.
//
// maxSteps bounds total walk length (teleports included) and is required:
// unlike PPR's termination formulation, a restarting walker never stops on
// its own.
func RWR(c float64, biased bool, maxSteps int) *core.Algorithm {
	if c <= 0 || c >= 1 {
		panic(fmt.Sprintf("alg: RWR restart probability %v outside (0,1)", c))
	}
	if maxSteps <= 0 {
		panic(fmt.Sprintf("alg: RWR maxSteps %d", maxSteps))
	}
	return &core.Algorithm{
		Name:        "rwr",
		Biased:      biased,
		RestartProb: c,
		MaxSteps:    maxSteps,
	}
}
