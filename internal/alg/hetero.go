package alg

import (
	"fmt"
	"math"

	"knightking/internal/core"
	"knightking/internal/graph"
	"knightking/internal/rng"
)

// HeteroNode2VecParams configures the combined meta-path + node2vec walk.
type HeteroNode2VecParams struct {
	// Schemes are the cyclic edge-type patterns (as in MetaPath).
	Schemes [][]int32
	// P, Q are the node2vec return and in-out parameters.
	P, Q float64
	// Length is the fixed walk length.
	Length int
	// Biased compounds edge weights as Ps.
	Biased bool
}

// HeteroNode2Vec composes the two dynamic components the paper treats
// separately: a meta-path type constraint (first-order, evaluated locally)
// multiplied by the node2vec second-order distance bias (evaluated through
// remote state queries). This is the metapath2vec-with-bias pattern used
// on heterogeneous information networks, and it demonstrates that the
// unified Pd definition composes: the product of two valid dynamic
// components is again a valid dynamic component, with envelope
// Q = max over the product's range.
//
// Pd(e) = [type(e) = scheme_k] · n2v(d_tx), so ineligible-type edges have
// Pd = 0 and eligible edges follow node2vec. The type constraint is
// screened locally *before* posting a state query, so an ineligible
// candidate never costs a message round; dead ends (no eligible-type edge
// at all) are detected by the engine through ZeroMassCheck and terminate
// the walk.
func HeteroNode2Vec(params HeteroNode2VecParams) *core.Algorithm {
	if len(params.Schemes) == 0 {
		panic("alg: HeteroNode2Vec requires schemes")
	}
	for i, s := range params.Schemes {
		if len(s) == 0 {
			panic(fmt.Sprintf("alg: HeteroNode2Vec scheme %d empty", i))
		}
	}
	if params.P <= 0 || params.Q <= 0 {
		panic(fmt.Sprintf("alg: HeteroNode2Vec p=%v q=%v", params.P, params.Q))
	}
	if params.Length <= 0 {
		panic(fmt.Sprintf("alg: HeteroNode2Vec length %d", params.Length))
	}
	invP := 1 / params.P
	invQ := 1 / params.Q
	envelope := math.Max(math.Max(1, invP), invQ)
	schemes := params.Schemes

	wantType := func(w *core.Walker) int32 {
		s := schemes[w.Tag]
		return s[int(w.Step)%len(s)]
	}

	return &core.Algorithm{
		Name:     "hetero-node2vec",
		Biased:   params.Biased,
		MaxSteps: params.Length,
		InitWalker: func(w *core.Walker, r *rng.Rand) {
			w.Tag = int32(r.Uint64n(uint64(len(schemes))))
		},
		EdgeDynamicComp: func(w *core.Walker, e graph.Edge, result uint64, hasResult bool) float64 {
			if e.Type != wantType(w) {
				return 0
			}
			if w.Step == 0 {
				return envelope
			}
			if e.Dst == w.Prev {
				return invP
			}
			if !hasResult {
				panic("alg: hetero-node2vec Pd needs a query result for non-return eligible edges")
			}
			if result != 0 {
				return 1
			}
			return invQ
		},
		UpperBound: func(*graph.Graph, graph.VertexID) float64 { return envelope },
		ZeroMassCheck: func(g *graph.Graph, v graph.VertexID, w *core.Walker) bool {
			want := wantType(w)
			for _, typ := range g.Types(v) {
				if typ == want {
					return false
				}
			}
			return true
		},
		PostQuery: func(w *core.Walker, e graph.Edge) (graph.VertexID, uint64, bool) {
			// Screen the type constraint locally first: ineligible
			// candidates never cost a message round.
			if e.Type != wantType(w) || w.Step == 0 || e.Dst == w.Prev {
				return 0, 0, false
			}
			return w.Prev, uint64(e.Dst), true
		},
	}
}
