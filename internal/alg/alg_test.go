package alg

import (
	"math"
	"testing"

	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func TestDeepWalkLengths(t *testing.T) {
	g := gen.UniformDegree(50, 6, 1)
	res, err := core.Run(core.Config{
		Graph: g, Algorithm: DeepWalk(20, false), Seed: 1, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range res.Paths {
		if len(p) != 21 {
			t.Fatalf("walker %d path length %d, want 21", id, len(p))
		}
	}
	if res.Counters.EdgeProbEvals != 0 {
		t.Fatal("DeepWalk is static; no Pd evaluations expected")
	}
}

func TestDeepWalkBiasedMatchesWeights(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(0, 2, 3)
	g := b.Build()
	const walkers = 40000
	res, err := core.Run(core.Config{
		Graph: g, Algorithm: DeepWalk(1, true), NumWalkers: walkers,
		StartVertex: func(int64) graph.VertexID { return 0 },
		Seed:        2, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy := 0
	for _, p := range res.Paths {
		if p[1] == 2 {
			heavy++
		}
	}
	got := float64(heavy) / walkers
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("weighted edge frequency %v, want 0.75", got)
	}
}

func TestPPRExpectedLength(t *testing.T) {
	g := gen.UniformDegree(100, 6, 3)
	res, err := core.Run(core.Config{
		Graph: g, Algorithm: PPR(1.0/80, false, 0), NumWalkers: 5000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Geometric with pt = 1/80: E[steps] = 79.
	mean := res.Lengths.Mean()
	if math.Abs(mean-79) > 4 {
		t.Fatalf("mean PPR walk length %v, want ~79", mean)
	}
	// The paper observes walks over 1000 steps with pt=0.0125.
	if res.Lengths.Max() < 200 {
		t.Fatalf("max length %d; expected a long tail", res.Lengths.Max())
	}
}

func TestPPRMaxStepsCap(t *testing.T) {
	g := gen.UniformDegree(50, 6, 5)
	res, err := core.Run(core.Config{
		Graph: g, Algorithm: PPR(0.01, false, 30), NumWalkers: 2000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lengths.Max() > 30 {
		t.Fatalf("cap violated: max length %d", res.Lengths.Max())
	}
}

func TestPPRPanicsOnBadPt(t *testing.T) {
	for _, pt := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PPR(%v) did not panic", pt)
				}
			}()
			PPR(pt, false, 0)
		}()
	}
}

func TestMetaPathFollowsScheme(t *testing.T) {
	const numTypes = 3
	g := gen.WithTypes(gen.UniformDegree(150, 10, 7), numTypes, 8)
	schemes := [][]int32{{0, 1}, {2}}
	res, err := core.Run(core.Config{
		Graph: g, Algorithm: MetaPath(schemes, 6, false), Seed: 9, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for id, p := range res.Paths {
		// Infer the walker's scheme from its first edge's type.
		if len(p) < 2 {
			continue // dead-ended immediately; allowed
		}
		firstType := typeOf(t, g, p[0], p[1])
		var scheme []int32
		for _, s := range schemes {
			if s[0] == firstType {
				scheme = s
				break
			}
		}
		if scheme == nil {
			t.Fatalf("walker %d first edge type %d matches no scheme", id, firstType)
		}
		for k := 1; k < len(p); k++ {
			want := scheme[(k-1)%len(scheme)]
			if got := typeOf(t, g, p[k-1], p[k]); got != want {
				t.Fatalf("walker %d step %d type %d, want %d", id, k, got, want)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d steps checked; walks died too early", checked)
	}
}

func TestMetaPathDeadEndsTerminate(t *testing.T) {
	// Scheme demanding a type that exists nowhere: every walker must
	// terminate with zero steps via the full-scan fallback.
	g := gen.WithTypes(gen.UniformDegree(40, 6, 11), 2, 12)
	res, err := core.Run(core.Config{
		Graph: g, Algorithm: MetaPath([][]int32{{7}}, 5, false), Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Steps != 0 {
		t.Fatalf("impossible scheme took %d steps", res.Counters.Steps)
	}
	if res.Counters.Terminations != int64(g.NumVertices()) {
		t.Fatalf("Terminations = %d", res.Counters.Terminations)
	}
}

// brute computes the exact node2vec next-hop distribution at cur given
// prev, as unnormalized Ps·Pd weights per out-edge of cur.
func brute(g *graph.Graph, prev, cur graph.VertexID, p, q float64, biased bool) []float64 {
	deg := g.Degree(cur)
	weights := make([]float64, deg)
	for i := 0; i < deg; i++ {
		e := g.EdgeAt(cur, i)
		ps := 1.0
		if biased {
			ps = float64(e.Weight)
		}
		var pd float64
		switch {
		case e.Dst == prev:
			pd = 1 / p
		case g.HasEdge(prev, e.Dst):
			pd = 1
		default:
			pd = 1 / q
		}
		weights[i] = ps * pd
	}
	return weights
}

// checkNode2VecExactness runs many 2-step walks from a fixed start and
// compares the second hop's conditional distribution with the exact
// node2vec probabilities, for one parameter/optimization combination.
func checkNode2VecExactness(t *testing.T, g *graph.Graph, params Node2VecParams, walkers int, seed uint64) {
	t.Helper()
	params.Length = 2
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   Node2Vec(params),
		NumWalkers:  walkers,
		NumNodes:    2,
		StartVertex: func(int64) graph.VertexID { return 0 },
		Seed:        seed,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// counts[v1][v2] over observed (first hop, second hop).
	counts := make(map[graph.VertexID]map[graph.VertexID]float64)
	totals := make(map[graph.VertexID]float64)
	for _, path := range res.Paths {
		if len(path) != 3 {
			t.Fatalf("path %v", path)
		}
		v1, v2 := path[1], path[2]
		if counts[v1] == nil {
			counts[v1] = make(map[graph.VertexID]float64)
		}
		counts[v1][v2]++
		totals[v1]++
	}
	for v1, obs := range counts {
		if totals[v1] < 3000 {
			continue // too few samples for a tight comparison
		}
		weights := brute(g, 0, v1, params.P, params.Q, params.Biased)
		sum := 0.0
		for _, w := range weights {
			sum += w
		}
		adj := g.Neighbors(v1)
		for i, w := range weights {
			want := w / sum
			got := obs[adj[i]] / totals[v1]
			if math.Abs(got-want) > 0.035 {
				t.Fatalf("params %+v: P(%d|%d, prev=0) = %v, want %v",
					params, adj[i], v1, got, want)
			}
		}
	}
}

func TestNode2VecExactness(t *testing.T) {
	// Small dense-ish graph: many triangles so all three Pd cases occur.
	g := gen.ErdosRenyi(12, 40, 101)
	if g.Degree(0) == 0 {
		t.Fatal("fixture start vertex isolated")
	}
	cases := []Node2VecParams{
		{P: 2, Q: 0.5},                                       // naive
		{P: 2, Q: 0.5, LowerBound: true},                     // + lower bound
		{P: 0.5, Q: 2},                                       // outlier-shaped, naive
		{P: 0.5, Q: 2, FoldOutlier: true},                    // + folding
		{P: 0.5, Q: 2, LowerBound: true, FoldOutlier: true},  // both
		{P: 1, Q: 1, LowerBound: true},                       // degenerate uniform
		{P: 4, Q: 0.25, LowerBound: true, FoldOutlier: true}, // extreme
	}
	for i, params := range cases {
		checkNode2VecExactness(t, g, params, 120000, uint64(200+i))
	}
}

func TestNode2VecBiasedExactness(t *testing.T) {
	g := gen.WithUniformWeights(gen.ErdosRenyi(12, 40, 101), 1, 5, 55)
	params := Node2VecParams{P: 0.5, Q: 2, Biased: true, LowerBound: true, FoldOutlier: true}
	checkNode2VecExactness(t, g, params, 120000, 300)
}

func TestNode2VecOptimizationsReduceWork(t *testing.T) {
	g := gen.TruncatedPowerLaw(2000, 4, 200, 2.0, 401)
	run := func(params Node2VecParams) (edgesPerStep float64) {
		params.P, params.Q, params.Length = 0.5, 2, 10
		res, err := core.Run(core.Config{
			Graph: g, Algorithm: Node2Vec(params), NumWalkers: 2000, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.EdgesPerStep()
	}
	naive := run(Node2VecParams{})
	lb := run(Node2VecParams{LowerBound: true})
	folded := run(Node2VecParams{FoldOutlier: true})
	both := run(Node2VecParams{LowerBound: true, FoldOutlier: true})
	// Reproduces the ordering of the paper's Table 5b.
	if !(lb < naive) {
		t.Fatalf("lower bound did not reduce edges/step: %v vs %v", lb, naive)
	}
	if !(folded < naive) {
		t.Fatalf("outlier folding did not reduce edges/step: %v vs %v", folded, naive)
	}
	if !(both < lb && both < naive) {
		t.Fatalf("combined %v not best (naive %v, lb %v, folded %v)", both, naive, lb, folded)
	}
}

func TestNode2VecUniformParamsZeroEvalsWithLowerBound(t *testing.T) {
	// p = q = 1: every Pd = 1 = L = Q, so with the lower bound no dart
	// ever needs a Pd evaluation after step 0 — the paper's Table 5a
	// "0.00 edges/step" cell.
	g := gen.UniformDegree(500, 8, 501)
	res, err := core.Run(core.Config{
		Graph:      g,
		Algorithm:  Node2Vec(Node2VecParams{P: 1, Q: 1, Length: 10, LowerBound: true}),
		NumWalkers: 500,
		Seed:       19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.EdgeProbEvals != 0 {
		t.Fatalf("edges/step should be 0, got %d evals", res.Counters.EdgeProbEvals)
	}
	if res.Counters.Queries != 0 {
		t.Fatalf("no queries expected, got %d", res.Counters.Queries)
	}
}

func TestNode2VecMixedMatchesDecoupled(t *testing.T) {
	// The mixed formulation must produce the same walk distribution as the
	// decoupled one, just less efficiently.
	g := gen.WithUniformWeights(gen.ErdosRenyi(12, 40, 101), 1, 5, 55)
	params := Node2VecParams{P: 2, Q: 0.5}

	run := func(a *core.Algorithm, seed uint64) map[graph.VertexID]float64 {
		res, err := core.Run(core.Config{
			Graph: g, Algorithm: a, NumWalkers: 60000,
			StartVertex: func(int64) graph.VertexID { return 0 },
			Seed:        seed, RecordPaths: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		freq := make(map[graph.VertexID]float64)
		for _, p := range res.Paths {
			freq[p[2]]++
		}
		for k := range freq {
			freq[k] /= float64(len(res.Paths))
		}
		return freq
	}
	decoupled := Node2Vec(Node2VecParams{P: params.P, Q: params.Q, Length: 2, Biased: true})
	mixed := Node2VecMixed(Node2VecParams{P: params.P, Q: params.Q, Length: 2})
	fa := run(decoupled, 21)
	fb := run(mixed, 22)
	for v, a := range fa {
		if math.Abs(a-fb[v]) > 0.02 {
			t.Fatalf("mixed and decoupled disagree at %d: %v vs %v", v, a, fb[v])
		}
	}
}

func TestNode2VecMoreTrialsWhenMixed(t *testing.T) {
	g := gen.WithPowerLawWeights(gen.UniformDegree(1000, 10, 601), 50, 2.0, 61)
	run := func(a *core.Algorithm) float64 {
		res, err := core.Run(core.Config{
			Graph: g, Algorithm: a, NumWalkers: 1000, Seed: 23,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.TrialsPerStep()
	}
	dec := run(Node2Vec(Node2VecParams{P: 2, Q: 0.5, Length: 8, Biased: true}))
	mix := run(Node2VecMixed(Node2VecParams{P: 2, Q: 0.5, Length: 8}))
	if mix <= dec*1.5 {
		t.Fatalf("mixed trials/step %v not clearly worse than decoupled %v", mix, dec)
	}
}

func typeOf(t *testing.T, g *graph.Graph, u, v graph.VertexID) int32 {
	t.Helper()
	adj := g.Neighbors(u)
	for i, nb := range adj {
		if nb == v {
			return g.Types(u)[i]
		}
	}
	t.Fatalf("edge %d->%d not found", u, v)
	return -1
}
