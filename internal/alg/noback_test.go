package alg

import (
	"testing"

	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func TestNoBacktrackPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NoBacktrack(0, 10, false) },
		func() { NoBacktrack(300, 10, false) },
		func() { NoBacktrack(2, 0, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NoBacktrack accepted")
				}
			}()
			f()
		}()
	}
}

func TestNoBacktrackAvoidsWindow(t *testing.T) {
	g := gen.UniformDegree(200, 8, 61)
	const window = 3
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   NoBacktrack(window, 15, false),
		NumNodes:    2,
		Seed:        63,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for id, p := range res.Paths {
		for i := 1; i < len(p); i++ {
			lo := i - window - 1
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < i; j++ {
				if p[j] == p[i] {
					t.Fatalf("walker %d revisited %d within window: %v", id, p[i], p)
				}
			}
			steps++
		}
	}
	if steps < 1000 {
		t.Fatalf("only %d steps; walks died too early", steps)
	}
}

func TestNoBacktrackDeadEndTerminates(t *testing.T) {
	// On a path graph, a window-1 non-backtracking walker starting at one
	// end marches straight to the other end and stops there (the only
	// neighbor is the one just visited).
	const n = 6
	b := graph.NewBuilder(n).SetUndirected(true)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g := b.Build()
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   NoBacktrack(1, 50, false),
		NumWalkers:  1,
		StartVertex: func(int64) graph.VertexID { return 0 },
		Seed:        65,
		RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Paths[0]
	want := []graph.VertexID{0, 1, 2, 3, 4, 5}
	if len(p) != len(want) {
		t.Fatalf("path %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path %v, want %v", p, want)
		}
	}
}

func TestNoBacktrackDeterministicAcrossNodes(t *testing.T) {
	g := gen.UniformDegree(120, 8, 67)
	var ref [][]graph.VertexID
	for _, nodes := range []int{1, 4} {
		res, err := core.Run(core.Config{
			Graph:       g,
			Algorithm:   NoBacktrack(4, 12, false),
			NumNodes:    nodes,
			Seed:        69,
			RecordPaths: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Paths
			continue
		}
		if len(ref) != len(res.Paths) {
			t.Fatal("path counts differ")
		}
		for id := range ref {
			if len(ref[id]) != len(res.Paths[id]) {
				t.Fatalf("walker %d path lengths differ (history not migrating?)", id)
			}
			for i := range ref[id] {
				if ref[id][i] != res.Paths[id][i] {
					t.Fatalf("walker %d diverges at %d", id, i)
				}
			}
		}
	}
}
