package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"knightking/internal/gen"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// testService mounts a fresh service with one registered graph on an
// httptest server.
func testService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	g := gen.UniformDegree(200, 8, 7)
	if _, err := svc.Graphs.Register("uni200", g); err != nil {
		t.Fatalf("register: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// doJSON issues a request and decodes the JSON response into out (when
// non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// awaitState polls a job until it reaches a terminal state or the
// deadline passes, returning the final status.
func awaitState(t *testing.T, base, id string, deadline time.Duration) JobStatus {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		var st JobStatus
		if code := doJSON(t, http.MethodGet, base+"/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %s after %v", id, st.State, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitRunFetchResult(t *testing.T) {
	_, ts := testService(t, Config{})
	spec := JobSpec{Graph: "uni200", Alg: "node2vec", Length: 12, P: 2, Q: 0.5, Seed: 42, Walkers: 100}

	var st JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", code)
	}
	if st.ID == "" || st.State == "" {
		t.Fatalf("submission status incomplete: %+v", st)
	}

	final := awaitState(t, ts.URL, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job ended %s (err %q), want done", final.State, final.Error)
	}
	if final.StartedAt.IsZero() || final.FinishedAt.IsZero() {
		t.Fatalf("terminal status missing timestamps: %+v", final)
	}

	var res JobResult
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	if res.Report.Steps == 0 || res.Report.Algorithm != "node2vec" {
		t.Fatalf("implausible report: %+v", res.Report)
	}
	if res.Report.Walkers != 100 || res.Report.Vertices != 200 {
		t.Fatalf("report shape wrong: walkers=%d vertices=%d", res.Report.Walkers, res.Report.Vertices)
	}
	if res.WalkLengths.Max == 0 {
		t.Fatalf("walk-length digest empty: %+v", res.WalkLengths)
	}
}

func TestIdenticalSubmissionsReturnIdenticalStatistics(t *testing.T) {
	_, ts := testService(t, Config{Workers: 2})
	spec := JobSpec{Graph: "uni200", Alg: "deepwalk", Length: 20, Seed: 99, Walkers: 150}

	ids := make([]string, 2)
	for i := range ids {
		var st JobStatus
		if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &st); code != http.StatusAccepted {
			t.Fatalf("POST /jobs #%d: status %d", i, code)
		}
		ids[i] = st.ID
	}
	results := make([]JobResult, 2)
	for i, id := range ids {
		if st := awaitState(t, ts.URL, id, 30*time.Second); st.State != StateDone {
			t.Fatalf("job %s ended %s (err %q)", id, st.State, st.Error)
		}
		if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+id+"/result", nil, &results[i]); code != http.StatusOK {
			t.Fatalf("GET result %s: status %d", id, code)
		}
	}
	// The engine is deterministic in (graph, seed, params): everything but
	// wall-clock fields must match bit-for-bit.
	a, b := results[0].Report, results[1].Report
	a.DurationSeconds, b.DurationSeconds = 0, 0
	a.SetupSeconds, b.SetupSeconds = 0, 0
	a.ExchangeSeconds, b.ExchangeSeconds = 0, 0
	a.StepsPerSecond, b.StepsPerSecond = 0, 0
	a.CheckpointSeconds, b.CheckpointSeconds = 0, 0
	a.RestoreSeconds, b.RestoreSeconds = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical submissions diverged:\n%+v\n%+v", a, b)
	}
	if results[0].WalkLengths != results[1].WalkLengths {
		t.Fatalf("walk lengths diverged: %+v vs %+v", results[0].WalkLengths, results[1].WalkLengths)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	// A long walk over many walkers: plenty of supersteps to cancel into.
	spec := JobSpec{Graph: "uni200", Alg: "deepwalk", Length: 100000, Seed: 7, Walkers: 200}
	var st JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", code)
	}

	var del map[string]string
	if code := doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil, &del); code != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", code)
	}
	start := time.Now()
	final := awaitState(t, ts.URL, st.ID, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.State)
	}
	// The issue's contract: cancellation lands within 2 seconds.
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", waited)
	}
	// No result for a cancelled job: 409 with the status in the body.
	var body JobStatus
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+st.ID+"/result", nil, &body); code != http.StatusConflict {
		t.Fatalf("GET result of cancelled job: status %d, want 409", code)
	}
	if body.State != StateCancelled {
		t.Fatalf("409 body state %s, want cancelled", body.State)
	}
}

func TestCancelQueuedJobAndDeleteRecord(t *testing.T) {
	svc, ts := testService(t, Config{Workers: 1, QueueDepth: 8})
	// Occupy the single worker, then queue a second job behind it.
	blocker := JobSpec{Graph: "uni200", Alg: "deepwalk", Length: 100000, Seed: 1, Walkers: 200}
	var bst JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", blocker, &bst); code != http.StatusAccepted {
		t.Fatalf("POST blocker: status %d", code)
	}
	queued := JobSpec{Graph: "uni200", Alg: "deepwalk", Length: 10, Seed: 2, Walkers: 10}
	var qst JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", queued, &qst); code != http.StatusAccepted {
		t.Fatalf("POST queued: status %d", code)
	}

	// Cancelling the queued job is immediate — no engine run to wind down.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+qst.ID, nil, nil); code != http.StatusAccepted {
		t.Fatalf("DELETE queued: status %d", code)
	}
	var st JobStatus
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+qst.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("GET cancelled: status %d", code)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job state %s after DELETE, want cancelled", st.State)
	}

	// A second DELETE on the now-terminal job removes the record.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+qst.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("DELETE terminal: status %d, want 204", code)
	}
	if _, ok := svc.sched.Get(qst.ID); ok {
		t.Fatal("record still present after terminal DELETE")
	}

	// Unblock the worker for cleanup.
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+bst.ID, nil, nil)
}

func TestQueueOverflowReturns429(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1, QueueDepth: 1})
	long := JobSpec{Graph: "uni200", Alg: "deepwalk", Length: 100000, Seed: 3, Walkers: 200}

	// First fills the worker, second fills the queue; keep submitting
	// until the depth limit bites (the worker may dequeue in between).
	var rejected bool
	var firstID string
	for i := 0; i < 8; i++ {
		var st JobStatus
		code := doJSON(t, http.MethodPost, ts.URL+"/jobs", long, &st)
		switch code {
		case http.StatusAccepted:
			if firstID == "" {
				firstID = st.ID
			}
		case http.StatusTooManyRequests:
			rejected = true
		default:
			t.Fatalf("POST /jobs: unexpected status %d", code)
		}
		if rejected {
			break
		}
	}
	if !rejected {
		t.Fatal("queue depth 1 never produced a 429")
	}
	// Rejected submissions leave no record behind.
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /jobs: status %d", code)
	}
	for _, st := range list.Jobs {
		doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil, nil)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testService(t, Config{})
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"unknown graph", JobSpec{Graph: "nope", Alg: "deepwalk"}},
		{"unknown alg", JobSpec{Graph: "uni200", Alg: "pagerank"}},
		{"negative length", JobSpec{Graph: "uni200", Alg: "deepwalk", Length: -1}},
		{"ppr pt out of range", JobSpec{Graph: "uni200", Alg: "ppr", Pt: 1.5}},
		{"node2vec negative p", JobSpec{Graph: "uni200", Alg: "node2vec", P: -1}},
		{"bad metapath scheme", JobSpec{Graph: "uni200", Alg: "metapath", Schemes: "a,b"}},
		{"biased on unweighted graph", JobSpec{Graph: "uni200", Alg: "deepwalk", Biased: true}},
	}
	for _, tc := range cases {
		var body map[string]string
		if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", tc.spec, &body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		} else if body["error"] == "" {
			t.Errorf("%s: 400 without error body", tc.name)
		}
	}
}

func TestGraphEndpointsAndRegistryConflict(t *testing.T) {
	svc, ts := testService(t, Config{})

	var list struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/graphs", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /graphs: status %d", code)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "uni200" {
		t.Fatalf("graph list wrong: %+v", list.Graphs)
	}
	if len(list.Graphs[0].Fingerprint) != 16 {
		t.Fatalf("fingerprint not 16 hex digits: %q", list.Graphs[0].Fingerprint)
	}

	// Same content re-registered under the same name: idempotent.
	if _, err := svc.Graphs.Register("uni200", gen.UniformDegree(200, 8, 7)); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	// Different content under the same name: rejected.
	if _, err := svc.Graphs.Register("uni200", gen.Ring(10, 0)); err == nil {
		t.Fatal("registry accepted different content under a taken name")
	}

	// POST /graphs loads an edge list from the server's filesystem.
	dir := t.TempDir()
	path := dir + "/tiny.txt"
	var sb strings.Builder
	for v := 0; v < 6; v++ {
		fmt.Fprintf(&sb, "%d %d\n", v, (v+1)%6)
	}
	if err := writeFile(path, sb.String()); err != nil {
		t.Fatalf("write edge list: %v", err)
	}
	var info GraphInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs",
		loadGraphRequest{Name: "tiny", Path: path}, &info); code != http.StatusCreated {
		t.Fatalf("POST /graphs: status %d", code)
	}
	if info.Vertices != 6 || info.Edges != 6 {
		t.Fatalf("loaded graph shape wrong: %+v", info)
	}
	// Conflicting reload under the same name: 409.
	path2 := dir + "/other.txt"
	if err := writeFile(path2, "0 1\n1 0\n"); err != nil {
		t.Fatalf("write edge list: %v", err)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs",
		loadGraphRequest{Name: "tiny", Path: path2}, nil); code != http.StatusConflict {
		t.Fatalf("conflicting POST /graphs: status %d, want 409", code)
	}
}

func TestMetricsAndStatusz(t *testing.T) {
	_, ts := testService(t, Config{})
	spec := JobSpec{Graph: "uni200", Alg: "ppr", Seed: 5, Walkers: 50}
	var st JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", code)
	}
	if final := awaitState(t, ts.URL, st.ID, 30*time.Second); final.State != StateDone {
		t.Fatalf("job ended %s", final.State)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	page := buf.String()
	for _, want := range []string{
		"kk_serve_jobs_submitted_total 1",
		"kk_serve_jobs_completed_total 1",
		"kk_serve_graphs 1",
		"kk_steps_total",
		"kk_terminations_total 50",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q\n%s", want, page)
		}
	}

	var status struct {
		Jobs map[string]int `json:"jobs"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/statusz", nil, &status); code != http.StatusOK {
		t.Fatalf("GET /statusz: status %d", code)
	}
	if status.Jobs["done"] != 1 {
		t.Fatalf("statusz done count %d, want 1", status.Jobs["done"])
	}
}

func TestQueuedStatusOmitsZeroTimestamps(t *testing.T) {
	// The JobStatus JSON contract: started_at/finished_at are absent (not
	// zero-valued) until the job reaches those lifecycle points.
	raw, err := json.Marshal(JobStatus{ID: "job-000001", State: StateQueued, SubmittedAt: time.Now()})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(raw)
	if strings.Contains(s, "started_at") || strings.Contains(s, "finished_at") {
		t.Fatalf("queued status leaks zero timestamps: %s", s)
	}
	if !strings.Contains(s, "submitted_at") {
		t.Fatalf("queued status missing submitted_at: %s", s)
	}
}
