package service

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"knightking/internal/checkpoint"
	"knightking/internal/core"
	"knightking/internal/obs"
	"knightking/internal/obs/tracelog"
	"knightking/internal/stats"
)

// ErrQueueFull is returned by Submit when the admission queue is at its
// depth limit; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("service: job queue full")

// ErrUnknownJob is returned for job IDs the scheduler has never seen (or
// whose records were deleted).
var ErrUnknownJob = errors.New("service: unknown job")

// scheduler runs submitted jobs through a bounded worker pool: admission
// is a fixed-depth FIFO (a buffered channel, so ordering and backpressure
// come from the runtime, not bookkeeping), and each of workers goroutines
// executes one job at a time via core.Run. Every job gets its own
// stats.Counters and cancel channel, so concurrent jobs sharing one
// immutable *graph.Graph stay bit-deterministic and individually
// abortable.
type scheduler struct {
	graphs         *GraphRegistry
	queue          chan *Job
	checkpointRoot string

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for GET /jobs
	nextID int64

	queued atomic.Int64

	metrics *serviceMetrics

	wg   sync.WaitGroup
	stop chan struct{}
}

// serviceMetrics is the serving layer's own counter set, exposed on
// /metrics next to the aggregated engine counters.
type serviceMetrics struct {
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	rejected  atomic.Int64

	// Ingest/compaction counters and timings. The service layer is
	// wall-clock-bearing (outside the determinism-linted set), so timing
	// the mutating endpoints here keeps clocks out of internal/dyngraph.
	ingestBatches  atomic.Int64
	ingestEdges    atomic.Int64
	ingestRejected atomic.Int64

	ingestBatchSize *obs.Histogram
	ingestApplyUs   *obs.Histogram
	compactUs       *obs.Histogram

	// queueWaitNs observes submission→start latency per started job; it is
	// the early-warning signal for an undersized worker pool (renders as
	// kk_job_queue_wait_nanos on /metrics).
	queueWaitNs *obs.Histogram

	// engine accumulates the post-join counter snapshots of finished jobs —
	// the service-lifetime totals behind the kk_*_total families.
	engineMu sync.Mutex
	engine   stats.Counters
}

func newServiceMetrics() *serviceMetrics {
	return &serviceMetrics{
		ingestBatchSize: obs.NewHistogram("serve_ingest_batch_edges", "Deltas per accepted ingest batch."),
		ingestApplyUs:   obs.NewHistogram("serve_ingest_apply_us", "Microseconds per accepted ingest batch (apply + epoch publish)."),
		compactUs:       obs.NewHistogram("serve_compact_us", "Microseconds per compaction."),
		queueWaitNs:     obs.NewHistogram("job_queue_wait_nanos", "Nanoseconds each started job spent queued (submission to engine start)."),
	}
}

func newScheduler(graphs *GraphRegistry, workers, queueDepth int, checkpointRoot string) *scheduler {
	s := &scheduler{
		graphs:         graphs,
		queue:          make(chan *Job, queueDepth),
		checkpointRoot: checkpointRoot,
		jobs:           make(map[string]*Job),
		metrics:        newServiceMetrics(),
		stop:           make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates spec, assigns an ID, and enqueues the job. The spec is
// normalized in place before the job record is created, so the stored spec
// shows the effective parameters. The graph's current epoch is pinned
// here, at admission: normalization, the engine run, and the final report
// all read that one immutable snapshot, so deltas ingested while the job
// is queued or running cannot change its output.
func (s *scheduler) Submit(spec JobSpec) (*Job, error) {
	dyn, ok := s.graphs.Get(spec.Graph)
	if !ok {
		return nil, fmt.Errorf("service: unknown graph %q", spec.Graph)
	}
	epoch := dyn.Epoch()
	if err := spec.normalize(epoch.View()); err != nil {
		return nil, fmt.Errorf("service: invalid job spec: %w", err)
	}

	s.mu.Lock()
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Spec:      spec,
		epoch:     epoch,
		cancel:    make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	// Record before enqueueing so a GET racing the submission finds the
	// job; unwind if the queue rejects it.
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	select {
	case s.queue <- j:
		s.queued.Add(1)
		s.metrics.submitted.Add(1)
		return j, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.nextID--
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (s *scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns every retained job's status in submission order.
func (s *scheduler) List() []JobStatus {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel aborts a queued or running job. Queued jobs transition to
// cancelled immediately; running jobs get their cancel channel closed and
// transition when the engine leaves at the next superstep barrier.
// Cancelling a terminal job is a no-op reporting its state.
func (s *scheduler) Cancel(id string) (JobState, error) {
	j, ok := s.Get(id)
	if !ok {
		return "", ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		// The worker that eventually dequeues it sees the terminal state
		// and skips; no engine run ever starts.
		j.state = StateCancelled
		j.finished = time.Now()
		s.metrics.cancelled.Add(1)
	case StateRunning:
		j.requestCancel()
	}
	return j.state, nil
}

// Remove deletes a terminal job's record (result retention management);
// it refuses for queued/running jobs, which must be cancelled first.
func (s *scheduler) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		return fmt.Errorf("service: job %s is %s; cancel it before deleting", id, j.state)
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Counts returns the per-state job counts for /statusz and the job gauges.
func (s *scheduler) Counts() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := make(map[JobState]int, 5)
	for _, j := range s.jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts
}

// EngineSnapshot returns the service-lifetime engine counter totals:
// finished jobs' post-join snapshots plus the live counters of currently
// running jobs (per-field consistent, per the stats.Counters contract).
func (s *scheduler) EngineSnapshot() stats.Snapshot {
	var agg stats.Counters
	s.metrics.engineMu.Lock()
	agg.Add(s.metrics.engine.Snapshot())
	s.metrics.engineMu.Unlock()
	s.mu.Lock()
	live := make([]*stats.Counters, 0, 4)
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning && j.counters != nil {
			live = append(live, j.counters)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, c := range live {
		agg.Add(c.Snapshot())
	}
	return agg.Snapshot()
}

// Shutdown cancels every queued and running job and waits for the workers
// to drain. Safe to call once.
func (s *scheduler) Shutdown() {
	close(s.stop)
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			j.state = StateCancelled
			j.finished = time.Now()
			s.metrics.cancelled.Add(1)
		case StateRunning:
			j.requestCancel()
		}
		j.mu.Unlock()
	}
	s.wg.Wait()
}

// worker is one pool goroutine: dequeue, run, repeat until shutdown.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.queued.Add(-1)
			s.runJob(j)
		}
	}
}

// runJob executes one job through the engine and records the outcome.
// The graph comes from the job's pinned epoch, never a registry re-lookup:
// a job dequeued after ten ingest batches still walks the exact snapshot
// it was admitted on.
func (s *scheduler) runJob(j *Job) {
	g := j.epoch.View()

	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	counters := &stats.Counters{}
	j.counters = counters
	var tc *tracelog.Collector
	if j.Spec.Trace {
		tc = tracelog.New(tracelog.Options{
			SampleEvery: j.Spec.TraceSample,
			Ranks:       j.Spec.Nodes,
			Job:         j.ID + " " + j.Spec.Alg,
		})
		j.trace = tc
	}
	wait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.metrics.queueWaitNs.Observe(wait.Nanoseconds())

	program, err := j.Spec.algorithm()
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	cfg := core.Config{
		Graph:      g,
		Algorithm:  program,
		NumNodes:   j.Spec.Nodes,
		Workers:    j.Spec.Workers,
		NumWalkers: j.Spec.Walkers,
		Seed:       j.Spec.Seed,
		Counters:   counters,
		Cancel:     j.cancel,
		// The epoch's incrementally maintained static sampler tables; the
		// engine uses them where they apply exactly and builds its own
		// otherwise.
		Samplers: j.epoch,
	}
	if tc != nil {
		// One collector plays both roles: superstep spans via the observer
		// hook, walker journeys via the tracer hook.
		cfg.Observer = tc
		cfg.Trace = tc
	}
	if s.checkpointRoot != "" && j.Spec.CheckpointEvery > 0 {
		dir := filepath.Join(s.checkpointRoot, j.ID)
		store, serr := checkpoint.NewStore(dir, j.Spec.CheckpointEvery, checkpoint.Meta{
			Seed:        j.Spec.Seed,
			NumWalkers:  uint64(j.Spec.Walkers),
			NumVertices: uint64(g.NumVertices()),
			Algorithm:   program.Name,
		})
		if serr != nil {
			s.finish(j, nil, serr)
			return
		}
		cfg.Checkpoint = store
		j.mu.Lock()
		j.ckptDir = dir
		j.mu.Unlock()
	}

	res, err := s.run(cfg)
	s.finish(j, res, err)
}

// run invokes core.Run, converting an engine panic (a malformed weight
// distribution, say) into a job failure instead of a dead worker.
func (s *scheduler) run(cfg core.Config) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("engine panic: %v", r)
		}
	}()
	return core.Run(cfg)
}

// finish records a job's terminal state and folds its counters into the
// service totals.
func (s *scheduler) finish(j *Job, res *core.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.counters = nil
	switch {
	case err == nil:
		j.state = StateDone
		info := stats.RunInfo{
			Algorithm:   j.Spec.Alg,
			Ranks:       j.Spec.Nodes,
			Walkers:     int64(j.Spec.Walkers),
			Supersteps:  res.Iterations,
			LightSupers: res.LightIterations,
			Duration:    res.Duration,
			Setup:       res.SetupDuration,
		}
		g := j.epoch.View()
		info.Vertices = g.NumVertices()
		info.Edges = g.NumEdges()
		rep := stats.NewReport(res.Counters, info)
		if j.trace != nil {
			rep.CriticalPath = j.trace.CriticalPath()
		}
		j.report = &rep
		j.lengths = walkLengths{Mean: res.Lengths.Mean(), Max: res.Lengths.Max()}
		s.metrics.completed.Add(1)
		s.foldEngine(res.Counters)
	case errors.Is(err, core.ErrCancelled):
		j.state = StateCancelled
		j.errMsg = err.Error()
		s.metrics.cancelled.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.metrics.failed.Add(1)
	}
}

func (s *scheduler) foldEngine(snap stats.Snapshot) {
	s.metrics.engineMu.Lock()
	s.metrics.engine.Add(snap)
	s.metrics.engineMu.Unlock()
}
