// Package service is the long-running walk job server: a registry of
// named dynamic graphs (immutable published epochs over a live delta
// layer, internal/dyngraph), a bounded-worker scheduler with a FIFO
// admission queue, and an HTTP/JSON control surface (cmd/kkserve). It
// turns the one-shot kkwalk flow — load graph, run walk, print report,
// exit — into a daemon that amortizes graph loading across many runs,
// accepts edge ingest (POST /graphs/{name}/edges) and compaction while
// jobs run, pins each job to its admission epoch, and supports
// cooperative cancellation of in-flight engine runs via
// core.Config.Cancel.
//
// The service layer is wall-clock-bearing by design (job timestamps,
// HTTP) and is deliberately outside the determinism-linted package set;
// each job's engine run remains bit-deterministic in
// (graph, algorithm, params, seed, walkers).
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"knightking/internal/dyngraph"
)

// Config shapes a Service.
type Config struct {
	// Addr is the listen address for Start (e.g. "127.0.0.1:7474";
	// ":0" picks a free port).
	Addr string
	// Workers is the scheduler pool size — the number of jobs that may
	// execute concurrently (default 2).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it get
	// 429 (default 64).
	QueueDepth int
	// CheckpointRoot, when set, enables per-job checkpointing: a job with
	// checkpoint_every > 0 snapshots under <CheckpointRoot>/<job-id>/.
	CheckpointRoot string
	// CompactAfter, when positive, auto-compacts a graph's delta overlay
	// after that many ingested deltas accumulate (0 = explicit
	// POST /graphs/{name}/compact only).
	CompactAfter int
	// SamplerKind selects the per-vertex static sampler maintained for
	// weighted graphs across ingest: "alias" (default) or "its".
	SamplerKind string
}

// Service owns the graph registry, the scheduler, and (after Start) the
// HTTP listener.
type Service struct {
	Graphs *GraphRegistry

	cfg   Config
	sched *scheduler

	srv *http.Server
	ln  net.Listener
}

// New builds a Service and starts its worker pool; call Start to serve
// HTTP, or Handler to mount it in a test server.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	graphs := NewGraphRegistry(dyngraph.Options{
		SamplerKind:  cfg.SamplerKind,
		CompactAfter: cfg.CompactAfter,
	})
	return &Service{
		Graphs: graphs,
		cfg:    cfg,
		sched:  newScheduler(graphs, cfg.Workers, cfg.QueueDepth, cfg.CheckpointRoot),
	}
}

// Handler returns the service's HTTP handler (for httptest and embedding).
func (s *Service) Handler() http.Handler {
	return s.handler()
}

// Submit enqueues a job directly (the HTTP layer and tests share this
// path).
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	return s.sched.Submit(spec)
}

// Start begins serving on cfg.Addr.
func (s *Service) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go s.srv.Serve(ln) //kk:goro-ok joined out of band: Close drains the http.Server via Shutdown and Serve returns
	return nil
}

// Addr returns the bound listen address after Start.
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// DefaultShutdownTimeout bounds Close's graceful HTTP drain.
const DefaultShutdownTimeout = 5 * time.Second

// Close drains the HTTP server gracefully — the listener stops accepting,
// in-flight requests (a /metrics scrape, a trace export) run to
// completion, bounded by DefaultShutdownTimeout — then cancels every
// outstanding job and joins the worker pool. Connections still open after
// the deadline are dropped so a wedged client cannot block process exit.
func (s *Service) Close() error {
	return s.close(DefaultShutdownTimeout)
}

func (s *Service) close(timeout time.Duration) error {
	var err error
	if s.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err = s.srv.Shutdown(ctx)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			err = s.srv.Close()
		}
	}
	s.sched.Shutdown()
	return err
}
