package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"knightking/internal/gen"
)

// getRaw fetches a URL returning status, content type, and raw body.
func getRaw(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestTracedJobEndToEnd submits a traced job over HTTP, fetches its
// Perfetto trace, and validates the causal structure the UI relies on:
// job and walker process tracks, per-rank superstep → phase span nesting
// (matched B/E pairs, monotonic timestamps), and at least one sampled
// walker journey carrying rejection trial counts. Also checks the report
// gained a critical-path attribution and that non-traced jobs 404.
func TestTracedJobEndToEnd(t *testing.T) {
	_, ts := testService(t, Config{})
	spec := JobSpec{
		Graph: "uni200", Alg: "node2vec", Length: 16, P: 2, Q: 0.5,
		Seed: 3, Walkers: 120, Nodes: 2,
		Trace: true, TraceSample: 8,
	}
	var st JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", code)
	}
	if !st.Trace {
		t.Errorf("job status does not report trace: %+v", st)
	}
	final := awaitState(t, ts.URL, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job ended %s (err %q)", final.State, final.Error)
	}

	code, ctype, body := getRaw(t, ts.URL+"/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d body %s", code, body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("trace content type = %q", ctype)
	}

	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			Job string `json:"job"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if !strings.Contains(doc.OtherData.Job, st.ID) {
		t.Errorf("trace job label %q does not name job %s", doc.OtherData.Job, st.ID)
	}

	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	last := -1.0
	supersteps, journeys, trialed := 0, 0, 0
	sawRankThread, sawWalkerProcess := false, false
	for i, ev := range doc.TraceEvents {
		if ev.TS < last {
			t.Fatalf("event %d ts regressed: %v < %v", i, ev.TS, last)
		}
		last = ev.TS
		k := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			if strings.HasPrefix(ev.Name, "thread_name") && strings.Contains(string(ev.Args), `"rank `) {
				sawRankThread = true
			}
			if strings.Contains(string(ev.Args), "sampled walkers") {
				sawWalkerProcess = true
			}
		case "B":
			stacks[k] = append(stacks[k], ev.Name)
			if strings.HasPrefix(ev.Name, "superstep ") {
				supersteps++
				// A superstep span must open directly inside the run span.
				if d := len(stacks[k]); d != 2 {
					t.Fatalf("event %d: superstep at stack depth %d, want 2 (run > superstep)", i, d)
				}
			}
			// Phase spans live on the rank tracks (even tids); "exchange"
			// also names the transport track's top-level span (odd tids).
			if k.pid == 1 && k.tid%2 == 0 &&
				(ev.Name == "compute" || ev.Name == "exchange" || ev.Name == "barrier" || ev.Name == "checkpoint") {
				if d := len(stacks[k]); d != 3 {
					t.Fatalf("event %d: phase %q at stack depth %d, want 3 (run > superstep > phase)", i, ev.Name, d)
				}
			}
		case "E":
			st := stacks[k]
			if len(st) == 0 || st[len(st)-1] != ev.Name {
				t.Fatalf("event %d: unmatched E %q on %+v (stack %v)", i, ev.Name, k, st)
			}
			stacks[k] = st[:len(st)-1]
		case "i":
			if ev.Pid == 2 {
				journeys++
				var args struct {
					Trials int64 `json:"trials"`
				}
				json.Unmarshal(ev.Args, &args)
				if ev.Name == "step" && args.Trials >= 1 {
					trialed++
				}
			}
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Errorf("track %+v left spans open: %v", k, st)
		}
	}
	if supersteps == 0 {
		t.Error("trace has no superstep spans")
	}
	if !sawRankThread || !sawWalkerProcess {
		t.Errorf("trace missing tracks: rank thread %v, walker process %v", sawRankThread, sawWalkerProcess)
	}
	if journeys == 0 {
		t.Error("trace has no walker journey instants")
	}
	if trialed == 0 {
		t.Error("no journey step carries a trial count")
	}

	// The retained report gained the critical-path attribution.
	var res JobResult
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	total := 0
	for _, gate := range res.Report.CriticalPath {
		total += gate.Supersteps
	}
	if total != res.Report.Supersteps {
		t.Errorf("critical path attributes %d supersteps, report has %d: %+v",
			total, res.Report.Supersteps, res.Report.CriticalPath)
	}
}

// TestTraceEndpointStates pins the non-200 paths: unknown job, job not
// submitted with tracing, and bad trace_sample specs.
func TestTraceEndpointStates(t *testing.T) {
	_, ts := testService(t, Config{})

	if code, _, _ := getRaw(t, ts.URL+"/jobs/nope/trace"); code != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", code)
	}

	spec := JobSpec{Graph: "uni200", Alg: "deepwalk", Length: 4, Seed: 1, Walkers: 20}
	var st JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", code)
	}
	awaitState(t, ts.URL, st.ID, 30*time.Second)
	code, _, body := getRaw(t, ts.URL+"/jobs/"+st.ID+"/trace")
	if code != http.StatusNotFound || !strings.Contains(string(body), "trace") {
		t.Errorf("untraced job trace: status %d body %s", code, body)
	}

	bad := JobSpec{Graph: "uni200", Alg: "deepwalk", Seed: 1, Trace: true, TraceSample: -1}
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", bad, nil); code != http.StatusBadRequest {
		t.Errorf("negative trace_sample: status %d, want 400", code)
	}
}

// TestServeMetricsTraceSatellites pins the new /metrics families: the
// queue-wait histogram and the per-state job gauge.
func TestServeMetricsTraceSatellites(t *testing.T) {
	_, ts := testService(t, Config{})
	spec := JobSpec{Graph: "uni200", Alg: "deepwalk", Length: 4, Seed: 9, Walkers: 30}
	var st JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", code)
	}
	awaitState(t, ts.URL, st.ID, 30*time.Second)

	code, _, body := getRaw(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	page := string(body)
	if !strings.Contains(page, "kk_job_queue_wait_nanos_count 1") {
		t.Errorf("/metrics missing queue wait observation:\n%s", page)
	}
	if !strings.Contains(page, `kk_serve_jobs{state="done"} 1`) {
		t.Errorf("/metrics missing per-state job gauge:\n%s", page)
	}
	for _, state := range []string{"queued", "running", "failed", "cancelled"} {
		if !strings.Contains(page, `kk_serve_jobs{state="`+state+`"}`) {
			t.Errorf("/metrics missing serve_jobs state %q", state)
		}
	}
}

// TestServiceCloseDrainsHTTP pins kkserve's graceful shutdown: a request
// in flight when Close begins completes instead of seeing a reset.
func TestServiceCloseDrainsHTTP(t *testing.T) {
	svc := New(Config{Addr: "127.0.0.1:0"})
	g := gen.UniformDegree(50, 4, 2)
	if _, err := svc.Graphs.Register("g", g); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	base := "http://" + svc.Addr()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(150 * time.Millisecond)

	start := time.Now()
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if code := <-done; code != http.StatusOK {
		t.Errorf("in-flight profile status = %d, want 200", code)
	}
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Errorf("Close returned after %v; it should have drained the 1s profile", waited)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after Close")
	}
}
