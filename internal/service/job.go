package service

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/dyngraph"
	"knightking/internal/graph"
	"knightking/internal/obs/tracelog"
	"knightking/internal/stats"
)

// JobState is a job's position in the lifecycle
// queued → running → done | failed | cancelled.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is the POST /jobs submission payload: which registered graph to
// walk, which algorithm with which parameters, and the run shape. Zero
// values take the documented defaults, and defaults are materialized at
// submission, so two specs that normalize identically produce bit-identical
// walk statistics (the engine is deterministic in (graph, seed, params)).
type JobSpec struct {
	// Graph names a registered graph (required).
	Graph string `json:"graph"`
	// Alg is deepwalk|ppr|rwr|metapath|node2vec (required).
	Alg string `json:"alg"`

	// Length is the walk length for deepwalk/rwr/metapath/node2vec
	// (default 80).
	Length int `json:"length,omitempty"`
	// Pt is ppr's per-step termination probability (default 0.0125).
	Pt float64 `json:"pt,omitempty"`
	// Restart is rwr's restart probability (default 0.15).
	Restart float64 `json:"restart,omitempty"`
	// P and Q are node2vec's return and in-out parameters (default 1, 1).
	P float64 `json:"p,omitempty"`
	Q float64 `json:"q,omitempty"`
	// Schemes is metapath's scheme list, kkwalk syntax: comma-separated
	// edge types, ';'-separated schemes (default "0").
	Schemes string `json:"schemes,omitempty"`
	// Biased selects the weight-proportional static component (requires a
	// weighted graph).
	Biased bool `json:"biased,omitempty"`

	// Seed pins the run; identical (graph, alg, params, seed, walkers)
	// submissions return identical walk statistics.
	Seed uint64 `json:"seed"`
	// Walkers is the walker count (default |V| of the named graph).
	Walkers int `json:"walkers,omitempty"`
	// Nodes is the simulated rank count (default 1).
	Nodes int `json:"nodes,omitempty"`
	// Workers is the per-rank worker goroutine count (default 4).
	Workers int `json:"workers,omitempty"`

	// CheckpointEvery, with a service checkpoint root configured, snapshots
	// the job's walk state every N supersteps under <root>/<job-id>/
	// (0 disables).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// Trace enables causal tracing for the job: superstep/phase spans,
	// exchange spans with peer attribution, and sampled walker journeys,
	// exported as Perfetto JSON at GET /jobs/{id}/trace (live while
	// running, retained after completion). Tracing cannot change walk
	// output; its only cost is the bounded trace ring.
	Trace bool `json:"trace,omitempty"`
	// TraceSample samples one in N walker journeys by walker ID (default
	// tracelog.DefaultSampleEvery; 1 traces every walker). Only meaningful
	// with Trace.
	TraceSample int64 `json:"trace_sample,omitempty"`
}

// validAlgs names the supported algorithms in the error message order.
var validAlgs = []string{"deepwalk", "ppr", "rwr", "metapath", "node2vec"}

// normalize validates spec against the target graph and fills defaults
// in place. It must reject anything the alg constructors would panic on,
// so a malformed submission is a 400, never a dead scheduler worker.
func (s *JobSpec) normalize(g *graph.Graph) error {
	switch s.Alg {
	case "deepwalk", "rwr", "metapath", "node2vec":
		if s.Length == 0 {
			s.Length = 80
		}
		if s.Length < 0 {
			return fmt.Errorf("length %d must be positive", s.Length)
		}
	case "ppr":
		if s.Pt == 0 {
			s.Pt = 0.0125
		}
		if s.Pt <= 0 || s.Pt >= 1 {
			return fmt.Errorf("pt %v must be in (0,1)", s.Pt)
		}
		if s.Length < 0 {
			return fmt.Errorf("length %d must be non-negative", s.Length)
		}
	default:
		return fmt.Errorf("unknown alg %q (want one of %s)", s.Alg, strings.Join(validAlgs, "|"))
	}
	switch s.Alg {
	case "rwr":
		if s.Restart == 0 {
			s.Restart = 0.15
		}
		if s.Restart <= 0 || s.Restart >= 1 {
			return fmt.Errorf("restart %v must be in (0,1)", s.Restart)
		}
	case "node2vec":
		if s.P == 0 {
			s.P = 1
		}
		if s.Q == 0 {
			s.Q = 1
		}
		if s.P < 0 || s.Q < 0 {
			return fmt.Errorf("node2vec p=%v q=%v must be positive", s.P, s.Q)
		}
	case "metapath":
		if s.Schemes == "" {
			s.Schemes = "0"
		}
		if _, err := parseSchemes(s.Schemes); err != nil {
			return err
		}
	}
	if s.Biased && !g.Weighted() {
		return fmt.Errorf("biased walk requires a weighted graph")
	}
	if s.Walkers < 0 || s.Nodes < 0 || s.Workers < 0 || s.CheckpointEvery < 0 {
		return fmt.Errorf("walkers, nodes, workers, checkpoint_every must be non-negative")
	}
	if s.TraceSample < 0 {
		return fmt.Errorf("trace_sample %d must be non-negative", s.TraceSample)
	}
	if s.Walkers == 0 {
		s.Walkers = g.NumVertices()
	}
	if s.Nodes == 0 {
		s.Nodes = 1
	}
	if s.Workers == 0 {
		s.Workers = 4
	}
	return nil
}

// algorithm builds the core.Algorithm for a normalized spec.
func (s *JobSpec) algorithm() (*core.Algorithm, error) {
	switch s.Alg {
	case "deepwalk":
		return alg.DeepWalk(s.Length, s.Biased), nil
	case "ppr":
		return alg.PPR(s.Pt, s.Biased, s.Length), nil
	case "rwr":
		return alg.RWR(s.Restart, s.Biased, s.Length), nil
	case "metapath":
		schemes, err := parseSchemes(s.Schemes)
		if err != nil {
			return nil, err
		}
		return alg.MetaPath(schemes, s.Length, s.Biased), nil
	case "node2vec":
		return alg.Node2Vec(alg.Node2VecParams{
			P: s.P, Q: s.Q, Length: s.Length, Biased: s.Biased,
			LowerBound: true, FoldOutlier: true,
		}), nil
	}
	return nil, fmt.Errorf("unknown alg %q", s.Alg)
}

// parseSchemes parses "0,1;2,0,1" into [][]int32{{0,1},{2,0,1}} — the same
// syntax kkwalk's -schemes flag accepts, but returning an error instead of
// exiting.
func parseSchemes(s string) ([][]int32, error) {
	var schemes [][]int32
	for _, part := range strings.Split(s, ";") {
		var scheme []int32
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseInt(tok, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad scheme element %q", tok)
			}
			scheme = append(scheme, int32(v))
		}
		if len(scheme) > 0 {
			schemes = append(schemes, scheme)
		}
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("no schemes parsed from %q", s)
	}
	return schemes, nil
}

// Job is one submitted walk run and its retained outcome. All mutable
// fields are guarded by mu; the scheduler is the only writer of state
// transitions, except that a queued job can be cancelled directly.
type Job struct {
	ID   string
	Spec JobSpec // normalized at submission

	// epoch is the graph epoch pinned at admission: the job validates,
	// runs, and reports against this immutable snapshot for its whole
	// life, no matter how many deltas land after it was submitted.
	epoch *dyngraph.Epoch

	// cancel is closed (once) to request a cooperative engine abort; it is
	// wired into core.Config.Cancel.
	cancel     chan struct{}
	cancelOnce sync.Once

	mu        sync.Mutex
	state     JobState
	errMsg    string
	report    *stats.Report // retained for done jobs
	lengths   walkLengths
	ckptDir   string
	counters  *stats.Counters // live while running; engine-owned
	trace     *tracelog.Collector
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Trace returns the job's trace collector, or nil when the job was not
// submitted with Spec.Trace or has not started yet. The collector is safe
// to read concurrently with the running engine, so mid-run trace exports
// are allowed.
func (j *Job) Trace() *tracelog.Collector {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// walkLengths is the retained walk-length digest of a finished run.
type walkLengths struct {
	Mean float64 `json:"mean"`
	Max  int64   `json:"max"`
}

// requestCancel closes the job's cancel channel (idempotent).
func (j *Job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// JobStatus is the GET /jobs/{id} payload.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Graph string   `json:"graph"`
	// Epoch and EpochFingerprint identify the graph snapshot the job was
	// pinned to at admission.
	Epoch            uint64    `json:"epoch"`
	EpochFingerprint string    `json:"epoch_fingerprint"`
	Alg              string    `json:"alg"`
	Seed             uint64    `json:"seed"`
	Walkers          int       `json:"walkers"`
	Error            string    `json:"error,omitempty"`
	CheckpointDir    string    `json:"checkpoint_dir,omitempty"`
	Trace            bool      `json:"trace,omitempty"`
	SubmittedAt      time.Time `json:"submitted_at"`
	StartedAt        time.Time `json:"started_at,omitzero"`
	FinishedAt       time.Time `json:"finished_at,omitzero"`
}

// Status snapshots the job's public state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:               j.ID,
		State:            j.state,
		Graph:            j.Spec.Graph,
		Epoch:            j.epoch.Seq(),
		EpochFingerprint: fmt.Sprintf("%016x", j.epoch.Fingerprint()),
		Alg:              j.Spec.Alg,
		Seed:             j.Spec.Seed,
		Walkers:          j.Spec.Walkers,
		Error:            j.errMsg,
		CheckpointDir:    j.ckptDir,
		Trace:            j.Spec.Trace,
		SubmittedAt:      j.submitted,
		StartedAt:        j.started,
		FinishedAt:       j.finished,
	}
}

// JobResult is the GET /jobs/{id}/result payload of a done job: the
// engine's machine-independent run report plus the walk-length digest.
type JobResult struct {
	ID          string       `json:"id"`
	State       JobState     `json:"state"`
	Report      stats.Report `json:"report"`
	WalkLengths walkLengths  `json:"walk_lengths"`
}

// Result returns the retained result of a done job; ok is false (with the
// current status for error reporting) in every other state.
func (j *Job) Result() (JobResult, JobStatus, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.report == nil {
		st := JobStatus{ID: j.ID, State: j.state, Error: j.errMsg}
		return JobResult{}, st, false
	}
	return JobResult{
		ID:          j.ID,
		State:       j.state,
		Report:      *j.report,
		WalkLengths: j.lengths,
	}, JobStatus{}, true
}
