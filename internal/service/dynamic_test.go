package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"knightking/internal/dyngraph"
	"knightking/internal/gen"
)

// weightedService mounts a service with one weighted registered graph.
func weightedService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	g := gen.WithUniformWeights(gen.UniformDegree(300, 6, 21), 1, 5, 22)
	if _, err := svc.Graphs.Register("w300", g); err != nil {
		t.Fatalf("register: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func graphInfo(t *testing.T, base, name string) GraphInfo {
	t.Helper()
	var list struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if code := doJSON(t, http.MethodGet, base+"/graphs", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /graphs: status %d", code)
	}
	for _, gi := range list.Graphs {
		if gi.Name == name {
			return gi
		}
	}
	t.Fatalf("graph %q not listed", name)
	return GraphInfo{}
}

func TestIngestAndCompactEndpoints(t *testing.T) {
	_, ts := testService(t, Config{})

	info := graphInfo(t, ts.URL, "uni200")
	if info.Epoch != 0 || info.EpochFingerprint != info.Fingerprint {
		t.Fatalf("fresh graph not at epoch 0 with base fingerprint: %+v", info)
	}

	// A valid batch publishes epoch 1.
	var ir ingestResponse
	batch := ingestRequest{Edges: []dyngraph.Delta{
		{Src: 0, Dst: 100},
		{Src: 1, Dst: 101},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/uni200/edges", batch, &ir); code != http.StatusOK {
		t.Fatalf("POST edges: status %d", code)
	}
	if ir.Applied != 2 || ir.Graph.Epoch != 1 {
		t.Fatalf("ingest response wrong: %+v", ir)
	}

	// An invalid batch is rejected atomically: 400, epoch unchanged.
	bad := ingestRequest{Edges: []dyngraph.Delta{{Src: 10_000, Dst: 0}}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/uni200/edges", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("bad batch: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/uni200/edges", ingestRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/nope/edges", batch, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph ingest: status %d, want 404", code)
	}
	if got := graphInfo(t, ts.URL, "uni200"); got.Epoch != 1 {
		t.Fatalf("rejected batches moved the epoch: %+v", got)
	}

	// Compaction folds the overlay and publishes epoch 2 with no deltas.
	var after GraphInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/uni200/compact", nil, &after); code != http.StatusOK {
		t.Fatalf("POST compact: status %d", code)
	}
	if after.Epoch != 2 || after.DeltaVertices != 0 || after.DeltaEdges != 0 {
		t.Fatalf("post-compaction info wrong: %+v", after)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/nope/compact", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph compact: status %d, want 404", code)
	}

	// The new families show up on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	page := buf.String()
	for _, want := range []string{
		"kk_serve_ingest_batches_total 1",
		"kk_serve_ingest_edges_total 2",
		"kk_serve_ingest_rejected_total 1",
		"kk_serve_compactions_total 1",
		"kk_serve_pending_deltas 0",
		`kk_serve_graph_epoch{graph="uni200"} 2`,
		`kk_serve_graph_delta_edges{graph="uni200"} 0`,
		"kk_serve_ingest_apply_us_count 1",
		"kk_serve_compact_us_count 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestJobPinsAdmissionEpoch is the epoch-pinning contract end to end: a
// job queued before an ingest runs against its admission epoch and
// reproduces the pre-ingest result bit-for-bit, while a job submitted
// after the ingest observes the new epoch.
func TestJobPinsAdmissionEpoch(t *testing.T) {
	_, ts := weightedService(t, Config{Workers: 1})
	spec := JobSpec{Graph: "w300", Alg: "deepwalk", Biased: true, Length: 25, Seed: 77, Walkers: 200}

	// Control: the spec's result on epoch 0, with nothing else in flight.
	var ctrl JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &ctrl); code != http.StatusAccepted {
		t.Fatalf("POST control: status %d", code)
	}
	if st := awaitState(t, ts.URL, ctrl.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("control ended %s (err %q)", st.State, st.Error)
	}
	var ctrlRes JobResult
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+ctrl.ID+"/result", nil, &ctrlRes); code != http.StatusOK {
		t.Fatalf("GET control result: status %d", code)
	}

	// Occupy the single worker, queue the target behind it, then ingest.
	blocker := JobSpec{Graph: "w300", Alg: "deepwalk", Length: 100000, Seed: 1, Walkers: 300}
	var bst JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", blocker, &bst); code != http.StatusAccepted {
		t.Fatalf("POST blocker: status %d", code)
	}
	var target JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &target); code != http.StatusAccepted {
		t.Fatalf("POST target: status %d", code)
	}
	if target.Epoch != 0 {
		t.Fatalf("target admitted on epoch %d, want 0", target.Epoch)
	}

	batch := ingestRequest{Edges: []dyngraph.Delta{
		{Src: 5, Dst: 250, Weight: 9},
		{Src: 6, Dst: 251, Weight: 9},
		{Src: 7, Dst: 252, Weight: 9},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/w300/edges", batch, nil); code != http.StatusOK {
		t.Fatalf("POST edges: status %d", code)
	}

	// A job submitted now pins the new epoch.
	var post JobStatus
	if code := doJSON(t, http.MethodPost, ts.URL+"/jobs", spec, &post); code != http.StatusAccepted {
		t.Fatalf("POST post-ingest job: status %d", code)
	}
	if post.Epoch != 1 {
		t.Fatalf("post-ingest job admitted on epoch %d, want 1", post.Epoch)
	}
	if post.EpochFingerprint == target.EpochFingerprint {
		t.Fatal("distinct epochs report the same fingerprint")
	}

	// Release the worker; the target must reproduce the control exactly.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+bst.ID, nil, nil); code != http.StatusAccepted {
		t.Fatalf("DELETE blocker: status %d", code)
	}
	final := awaitState(t, ts.URL, target.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("target ended %s (err %q)", final.State, final.Error)
	}
	if final.Epoch != 0 {
		t.Fatalf("target ran on epoch %d, want its admission epoch 0", final.Epoch)
	}
	var targetRes JobResult
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+target.ID+"/result", nil, &targetRes); code != http.StatusOK {
		t.Fatalf("GET target result: status %d", code)
	}
	a, b := ctrlRes.Report, targetRes.Report
	a.DurationSeconds, b.DurationSeconds = 0, 0
	a.SetupSeconds, b.SetupSeconds = 0, 0
	a.ExchangeSeconds, b.ExchangeSeconds = 0, 0
	a.StepsPerSecond, b.StepsPerSecond = 0, 0
	a.CheckpointSeconds, b.CheckpointSeconds = 0, 0
	a.RestoreSeconds, b.RestoreSeconds = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mid-queue ingest changed a pinned job's result:\n%+v\n%+v", a, b)
	}
	if ctrlRes.WalkLengths != targetRes.WalkLengths {
		t.Fatalf("walk lengths diverged: %+v vs %+v", ctrlRes.WalkLengths, targetRes.WalkLengths)
	}

	// The post-ingest job runs on the bigger view: its report counts the
	// ingested edges.
	if st := awaitState(t, ts.URL, post.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("post-ingest job ended %s (err %q)", st.State, st.Error)
	}
	var postRes JobResult
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+post.ID+"/result", nil, &postRes); code != http.StatusOK {
		t.Fatalf("GET post-ingest result: status %d", code)
	}
	if want := ctrlRes.Report.Edges + 3; postRes.Report.Edges != want {
		t.Fatalf("post-ingest report counts %d edges, want %d (pinned epoch view)", postRes.Report.Edges, want)
	}
}

// TestAutoCompactionOverHTTP wires Config.CompactAfter through to the
// delta layer: enough ingested deltas trigger a compaction without any
// explicit POST /compact.
func TestAutoCompactionOverHTTP(t *testing.T) {
	_, ts := weightedService(t, Config{CompactAfter: 4})
	batch := ingestRequest{Edges: []dyngraph.Delta{
		{Src: 1, Dst: 200, Weight: 2},
		{Src: 2, Dst: 201, Weight: 2},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/w300/edges", batch, nil); code != http.StatusOK {
		t.Fatalf("POST edges #1: status %d", code)
	}
	if got := graphInfo(t, ts.URL, "w300"); got.Epoch != 1 || got.DeltaEdges != 2 {
		t.Fatalf("after 2 deltas: %+v, want overlay epoch 1", got)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/graphs/w300/edges", batch, nil); code != http.StatusOK {
		t.Fatalf("POST edges #2: status %d", code)
	}
	// The second batch crossed the threshold: epoch 2 upserts, epoch 3
	// auto-compacts (the second batch re-weights existing overlay edges,
	// so the net delta stays 2 and then folds away).
	got := graphInfo(t, ts.URL, "w300")
	if got.Epoch != 3 || got.DeltaEdges != 0 || got.DeltaVertices != 0 {
		t.Fatalf("auto-compaction did not run: %+v", got)
	}
}
