package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"knightking/internal/dyngraph"
	"knightking/internal/graph"
)

// GraphInfo is the registry's public description of one named graph, as
// returned by GET /graphs. The epoch fields reflect the graph's current
// published epoch at the time of the call; a job pins the epoch it was
// admitted on, which may be older.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Weighted bool   `json:"weighted"`
	Typed    bool   `json:"typed"`
	// Fingerprint is the registered base graph's content hash rendered as
	// 16 hex digits — the identity behind the name, stable across ingest.
	Fingerprint string `json:"fingerprint"`
	// Epoch is the current published epoch sequence (0 = the loaded base).
	Epoch uint64 `json:"epoch"`
	// EpochFingerprint is the current epoch's content hash — equal to
	// Fingerprint at epoch 0, and again whenever ingest+compaction lands
	// back on the same content.
	EpochFingerprint string `json:"epoch_fingerprint"`
	// DeltaVertices/DeltaEdges describe the current epoch's overlay:
	// vertices with replacement segments and the net edge count change
	// versus the base CSR. Both zero right after a compaction.
	DeltaVertices int   `json:"delta_vertices"`
	DeltaEdges    int64 `json:"delta_edges"`
}

// GraphRegistry holds the service's named graphs. Each entry is a
// dyngraph.DynGraph: jobs read a pinned immutable epoch while POST
// /graphs/{name}/edges appends deltas and publishes new epochs — the
// load-once amortization now extends to live updates, since ingest
// maintains sampler tables incrementally instead of forcing a reload.
//
// A name is bound to the registered base graph's content, not to whoever
// registered first: re-registering the same content under the same name
// is an idempotent no-op (so a restart script can blindly re-register),
// while registering different content under a taken name is rejected,
// because jobs refer to graphs by name and silently swapping the content
// would change what a (graph, seed, params) submission means. Ingested
// deltas deliberately do not change this identity — they are recorded in
// the epoch fingerprint and the delta-log chain instead.
type GraphRegistry struct {
	opt dyngraph.Options

	mu      sync.RWMutex
	entries map[string]*graphEntry
}

type graphEntry struct {
	name string
	dyn  *dyngraph.DynGraph
	fp   uint64 // registration-time base fingerprint
}

// NewGraphRegistry returns an empty registry; opt shapes every graph's
// delta layer (sampler kind, auto-compaction threshold).
func NewGraphRegistry(opt dyngraph.Options) *GraphRegistry {
	return &GraphRegistry{opt: opt, entries: make(map[string]*graphEntry)}
}

// Register binds name to g. See the GraphRegistry doc for the identity
// rules; the error distinguishes an invalid name from a name collision.
func (r *GraphRegistry) Register(name string, g *graph.Graph) (GraphInfo, error) {
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return GraphInfo{}, fmt.Errorf("service: invalid graph name %q (need non-empty, no slashes or whitespace)", name)
	}
	if g == nil {
		return GraphInfo{}, fmt.Errorf("service: registering nil graph %q", name)
	}
	fp := graph.Fingerprint(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[name]; ok {
		if prev.fp == fp {
			return prev.info(), nil // same content: idempotent
		}
		return GraphInfo{}, fmt.Errorf("service: graph name %q already bound to different content (registered %016x, offered %016x)",
			name, prev.fp, fp)
	}
	dyn, err := dyngraph.New(g, r.opt)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("service: graph %q: %w", name, err)
	}
	e := &graphEntry{name: name, dyn: dyn, fp: fp}
	r.entries[name] = e
	return e.info(), nil
}

// info describes the entry at its current published epoch.
func (e *graphEntry) info() GraphInfo {
	ep := e.dyn.Epoch()
	g := ep.View()
	dv, de := ep.DeltaStats()
	return GraphInfo{
		Name:             e.name,
		Vertices:         g.NumVertices(),
		Edges:            g.NumEdges(),
		Weighted:         g.Weighted(),
		Typed:            g.Typed(),
		Fingerprint:      fmt.Sprintf("%016x", e.fp),
		Epoch:            ep.Seq(),
		EpochFingerprint: fmt.Sprintf("%016x", ep.Fingerprint()),
		DeltaVertices:    dv,
		DeltaEdges:       de,
	}
}

// Get returns the dynamic graph bound to name.
func (r *GraphRegistry) Get(name string) (*dyngraph.DynGraph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	return e.dyn, true
}

// Info returns the current GraphInfo of a registered graph.
func (r *GraphRegistry) Info(name string) (GraphInfo, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return GraphInfo{}, false
	}
	return e.info(), true
}

// List returns every registered graph's info, sorted by name.
func (r *GraphRegistry) List() []GraphInfo {
	r.mu.RLock()
	entries := make([]*graphEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]GraphInfo, len(entries))
	for i, e := range entries {
		out[i] = e.info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeltaTotals sums the per-graph delta-layer counters for /metrics:
// applied batches and deltas since load, compactions (explicit and
// auto-triggered), and deltas pending in overlays right now.
func (r *GraphRegistry) DeltaTotals() (batches, deltas, compactions, pending int64) {
	r.mu.RLock()
	entries := make([]*graphEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	for _, e := range entries {
		m := e.dyn.Metrics()
		batches += m.AppliedBatches
		deltas += m.AppliedDeltas
		compactions += m.Compactions
		pending += m.PendingDeltas
	}
	return batches, deltas, compactions, pending
}

// Len returns the number of registered graphs.
func (r *GraphRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
