package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"knightking/internal/graph"
)

// GraphInfo is the registry's public description of one named graph, as
// returned by GET /graphs.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Weighted bool   `json:"weighted"`
	Typed    bool   `json:"typed"`
	// Fingerprint is graph.Fingerprint rendered as 16 hex digits — the
	// content identity behind the name.
	Fingerprint string `json:"fingerprint"`
}

// GraphRegistry holds the service's named, load-once graphs. Entries are
// immutable *graph.Graph values shared read-only by every job that names
// them — the amortization that makes a long-running walk server worth
// having: parse and index a graph once, run many workloads against it.
//
// A name is bound to a graph's content, not to whoever registered first:
// re-registering the same content under the same name is an idempotent
// no-op (so a restart script can blindly re-register), while registering
// different content under a taken name is rejected, because jobs refer to
// graphs by name and silently swapping the content would change what a
// (graph, seed, params) submission means.
type GraphRegistry struct {
	mu      sync.RWMutex
	entries map[string]*graphEntry
}

type graphEntry struct {
	g    *graph.Graph
	fp   uint64
	info GraphInfo
}

// NewGraphRegistry returns an empty registry.
func NewGraphRegistry() *GraphRegistry {
	return &GraphRegistry{entries: make(map[string]*graphEntry)}
}

// Register binds name to g. See the GraphRegistry doc for the identity
// rules; the error distinguishes an invalid name from a name collision.
func (r *GraphRegistry) Register(name string, g *graph.Graph) (GraphInfo, error) {
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return GraphInfo{}, fmt.Errorf("service: invalid graph name %q (need non-empty, no slashes or whitespace)", name)
	}
	if g == nil {
		return GraphInfo{}, fmt.Errorf("service: registering nil graph %q", name)
	}
	fp := graph.Fingerprint(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[name]; ok {
		if prev.fp == fp {
			return prev.info, nil // same content: idempotent
		}
		return GraphInfo{}, fmt.Errorf("service: graph name %q already bound to different content (registered %s, offered %016x)",
			name, prev.info.Fingerprint, fp)
	}
	e := &graphEntry{
		g:  g,
		fp: fp,
		info: GraphInfo{
			Name:        name,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			Weighted:    g.Weighted(),
			Typed:       g.Typed(),
			Fingerprint: fmt.Sprintf("%016x", fp),
		},
	}
	r.entries[name] = e
	return e.info, nil
}

// Get returns the graph bound to name.
func (r *GraphRegistry) Get(name string) (*graph.Graph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	return e.g, true
}

// List returns every registered graph's info, sorted by name.
func (r *GraphRegistry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered graphs.
func (r *GraphRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
