package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"knightking/internal/dyngraph"
	"knightking/internal/graph"
	"knightking/internal/obs"
)

// handler wires the service's HTTP surface. Routing uses the Go 1.22
// method+wildcard ServeMux patterns, so there is no router dependency.
func (s *Service) handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /graphs", s.handleListGraphs)
	mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	mux.HandleFunc("POST /graphs/{name}/edges", s.handleIngestEdges)
	mux.HandleFunc("POST /graphs/{name}/compact", s.handleCompactGraph)
	mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /jobs", s.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleGetResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleGetTrace)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDeleteJob)

	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a {"error": ...} body with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.Graphs.List()})
}

// loadGraphRequest is the POST /graphs payload. Path names a file on the
// server's filesystem — the daemon loads graphs, clients name them.
type loadGraphRequest struct {
	Name       string `json:"name"`
	Path       string `json:"path"`
	Binary     bool   `json:"binary,omitempty"`
	Undirected bool   `json:"undirected,omitempty"`
}

func (s *Service) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req loadGraphRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		writeError(w, http.StatusBadRequest, "name and path are required")
		return
	}
	f, err := os.Open(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, "open graph: %v", err)
		return
	}
	defer f.Close()
	var g *graph.Graph
	if req.Binary {
		g, err = graph.ReadBinary(f)
	} else {
		g, err = graph.ReadEdgeList(f, req.Undirected, 0)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse graph: %v", err)
		return
	}
	info, err := s.Graphs.Register(req.Name, g)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already bound") {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// ingestRequest is the POST /graphs/{name}/edges payload: a batch of
// edge deltas applied atomically — all land in one new epoch, or (on any
// invalid delta) none do and the epoch is unchanged.
type ingestRequest struct {
	Edges []dyngraph.Delta `json:"edges"`
}

// ingestResponse reports the post-apply graph state alongside how many
// deltas the batch carried.
type ingestResponse struct {
	Applied int       `json:"applied"`
	Graph   GraphInfo `json:"graph"`
}

func (s *Service) handleIngestEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	dyn, ok := s.Graphs.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	var req ingestRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, "edges must be a non-empty array of deltas")
		return
	}
	m := s.sched.metrics
	start := time.Now()
	if _, err := dyn.Apply(req.Edges); err != nil {
		m.ingestRejected.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m.ingestApplyUs.Observe(time.Since(start).Microseconds())
	m.ingestBatches.Add(1)
	m.ingestEdges.Add(int64(len(req.Edges)))
	m.ingestBatchSize.Observe(int64(len(req.Edges)))
	info, _ := s.Graphs.Info(name)
	writeJSON(w, http.StatusOK, ingestResponse{Applied: len(req.Edges), Graph: info})
}

func (s *Service) handleCompactGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	dyn, ok := s.Graphs.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	m := s.sched.metrics
	start := time.Now()
	if _, err := dyn.Compact(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	m.compactUs.Observe(time.Since(start).Microseconds())
	info, _ := s.Graphs.Info(name)
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.sched.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.List()})
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleGetResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	res, st, done := j.Result()
	if !done {
		// 409: the job exists but has no result in this state — the body
		// carries the status so pollers can branch without a second call.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleGetTrace serves a traced job's causal trace as Perfetto JSON.
// The collector is safe to read mid-run, so a trace of a running job shows
// the supersteps completed so far; terminal jobs keep their trace until
// the record is deleted.
func (s *Service) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	tc := j.Trace()
	if tc == nil {
		if !j.Spec.Trace {
			writeError(w, http.StatusNotFound,
				"job %s was not submitted with \"trace\": true", j.ID)
			return
		}
		// Traced but not started: the collector is created at engine start.
		writeError(w, http.StatusConflict, "job %s has not started yet", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := tc.WritePerfetto(w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Service) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal {
		// Terminal job: DELETE discards the retained record.
		if err := s.sched.Remove(id); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	state, err := s.sched.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": string(state)})
}

// handleMetrics composes the Prometheus page: service-layer job counters
// and gauges, then the service-lifetime engine counter aggregate in the
// same kk_ families the admin server exports.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := s.sched.metrics
	obs.WriteCounter(w, "serve_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted.Load())
	obs.WriteCounter(w, "serve_jobs_completed_total", "Jobs finished successfully.", m.completed.Load())
	obs.WriteCounter(w, "serve_jobs_failed_total", "Jobs that ended in an error.", m.failed.Load())
	obs.WriteCounter(w, "serve_jobs_cancelled_total", "Jobs cancelled while queued or running.", m.cancelled.Load())
	obs.WriteCounter(w, "serve_jobs_rejected_total", "Submissions rejected by the queue depth limit.", m.rejected.Load())
	counts := s.sched.Counts()
	obs.WriteGauge(w, "serve_queue_depth", "Jobs waiting in the admission queue.", s.sched.queued.Load())
	obs.WriteGauge(w, "serve_queue_capacity", "Admission queue depth limit.", int64(cap(s.sched.queue)))
	obs.WriteGauge(w, "serve_jobs_running", "Jobs currently executing.", int64(counts[StateRunning]))
	// Per-state breakdown of every retained job record; serve_jobs_running
	// above stays for dashboards that predate the labeled family.
	states := []obs.LabeledValue{
		{Label: string(StateQueued), Value: int64(counts[StateQueued])},
		{Label: string(StateRunning), Value: int64(counts[StateRunning])},
		{Label: string(StateDone), Value: int64(counts[StateDone])},
		{Label: string(StateFailed), Value: int64(counts[StateFailed])},
		{Label: string(StateCancelled), Value: int64(counts[StateCancelled])},
	}
	obs.WriteLabeledGauge(w, "serve_jobs", "Retained job records by state.", "state", states)
	obs.WriteGauge(w, "serve_graphs", "Graphs in the registry.", int64(s.Graphs.Len()))
	obs.WriteGauge(w, "serve_workers", "Scheduler worker pool size.", int64(s.cfg.Workers))

	batches, deltas, compactions, pending := s.Graphs.DeltaTotals()
	obs.WriteCounter(w, "serve_ingest_batches_total", "Edge delta batches accepted over HTTP.", m.ingestBatches.Load())
	obs.WriteCounter(w, "serve_ingest_edges_total", "Edge deltas accepted over HTTP.", m.ingestEdges.Load())
	obs.WriteCounter(w, "serve_ingest_rejected_total", "Ingest batches rejected as invalid.", m.ingestRejected.Load())
	obs.WriteCounter(w, "serve_apply_batches_total", "Delta batches applied across all graphs (any source).", batches)
	obs.WriteCounter(w, "serve_apply_deltas_total", "Deltas applied across all graphs (any source).", deltas)
	obs.WriteCounter(w, "serve_compactions_total", "Graph compactions, explicit and auto-triggered.", compactions)
	obs.WriteGauge(w, "serve_pending_deltas", "Deltas in overlays awaiting compaction, summed over graphs.", pending)

	// Per-graph epoch state, labeled by graph name (List is name-sorted,
	// so the page is deterministic).
	infos := s.Graphs.List()
	epochs := make([]obs.LabeledValue, len(infos))
	deltaEdges := make([]obs.LabeledValue, len(infos))
	for i, gi := range infos {
		epochs[i] = obs.LabeledValue{Label: gi.Name, Value: int64(gi.Epoch)}
		deltaEdges[i] = obs.LabeledValue{Label: gi.Name, Value: gi.DeltaEdges}
	}
	obs.WriteLabeledGauge(w, "serve_graph_epoch", "Current published epoch per graph.", "graph", epochs)
	obs.WriteLabeledGauge(w, "serve_graph_delta_edges", "Net overlay edge delta per graph.", "graph", deltaEdges)

	obs.WriteHistogram(w, m.ingestBatchSize.Snapshot())
	obs.WriteHistogram(w, m.ingestApplyUs.Snapshot())
	obs.WriteHistogram(w, m.compactUs.Snapshot())
	obs.WriteHistogram(w, m.queueWaitNs.Snapshot())
	obs.WriteSnapshotMetrics(w, s.sched.EngineSnapshot())
}

func (s *Service) handleStatusz(w http.ResponseWriter, r *http.Request) {
	counts := s.sched.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"graphs":  s.Graphs.List(),
		"workers": s.cfg.Workers,
		"queue": map[string]any{
			"depth":    s.sched.queued.Load(),
			"capacity": cap(s.sched.queue),
		},
		"jobs": map[string]int{
			"queued":    counts[StateQueued],
			"running":   counts[StateRunning],
			"done":      counts[StateDone],
			"failed":    counts[StateFailed],
			"cancelled": counts[StateCancelled],
		},
	})
}

// decodeBody strictly decodes a bounded JSON request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %v", err)
	}
	return nil
}
