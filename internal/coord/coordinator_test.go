package coord

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// writeTestGraph writes a small ring graph and returns its path.
func writeTestGraph(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ring.txt")
	var b []byte
	for v := 0; v < n; v++ {
		b = append(b, fmt.Sprintf("%d %d\n%d %d\n", v, (v+1)%n, (v+1)%n, v)...)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fakeWorker speaks the control protocol without running an engine. Its
// behavior on each start barrier is scripted per attempt: "done" reports a
// canned result, "die" slams the connection shut (a SIGKILL stand-in),
// "silent" keeps the connection open but stops heartbeating and replying.
type fakeWorker struct {
	t      *testing.T
	name   string
	behave func(attempt, rank int) string

	mu     sync.Mutex
	att    int
	rank   int
	silent bool
}

func (f *fakeWorker) heartbeat(cc *controlConn, quit chan struct{}) {
	tick := time.NewTicker(30 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-quit:
			return
		case <-tick.C:
			f.mu.Lock()
			att, silent := f.att, f.silent
			f.mu.Unlock()
			if att > 0 && !silent {
				if err := cc.write(Msg{Type: MsgHeartbeat, Attempt: att}); err != nil {
					return
				}
			}
		}
	}
}

func (f *fakeWorker) run(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		f.t.Errorf("%s: dial: %v", f.name, err)
		return
	}
	defer conn.Close()
	cc := newControlConn(conn)
	if err := cc.write(Msg{Type: MsgHello, V: ProtoVersion, DataAddr: "127.0.0.1:1"}); err != nil {
		f.t.Errorf("%s: hello: %v", f.name, err)
		return
	}
	quit := make(chan struct{})
	defer close(quit)
	go f.heartbeat(cc, quit) //kk:goro-ok joined out of band: heartbeat selects on quit, closed when run returns

	for {
		m, err := cc.read()
		if err != nil {
			return // coordinator closed us (vacated, or job over)
		}
		f.mu.Lock()
		silent := f.silent
		f.mu.Unlock()
		if silent {
			continue
		}
		switch m.Type {
		case MsgAssign:
			f.mu.Lock()
			f.att = m.Assign.Attempt
			f.rank = m.Assign.Rank
			f.mu.Unlock()
			if err := cc.write(Msg{Type: MsgReady, Attempt: m.Assign.Attempt}); err != nil {
				return
			}
		case MsgStart:
			f.mu.Lock()
			rank := f.rank
			f.mu.Unlock()
			switch f.behave(m.Attempt, rank) {
			case "done":
				_ = cc.write(Msg{Type: MsgDone, Attempt: m.Attempt, Result: &RankResult{
					Iterations: 3, Steps: 10, Terminations: 5, Messages: 2, Bytes: 64,
				}})
			case "die":
				return
			case "silent":
				f.mu.Lock()
				f.silent = true
				f.mu.Unlock()
			}
		case MsgAbort:
			f.mu.Lock()
			f.att = 0
			f.mu.Unlock()
			_ = cc.write(Msg{Type: MsgFailed, Attempt: m.Attempt, Err: "abort ack (idle)"})
		case MsgStop:
			return
		case MsgReject:
			f.t.Errorf("%s: rejected: %s", f.name, m.Err)
			return
		}
	}
}

func newTestCoordinator(t *testing.T, ranks int, opt func(*Options)) *Coordinator {
	t.Helper()
	opts := Options{
		Spec:  JobSpec{GraphPath: writeTestGraph(t, 20), Alg: "deepwalk", Length: 5, Seed: 1},
		Ranks: ranks,
	}
	if opt != nil {
		opt(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoordinatorHappyPath(t *testing.T) {
	c := newTestCoordinator(t, 2, nil)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &fakeWorker{t: t, name: fmt.Sprintf("w%d", i), behave: func(int, int) string { return "done" }}
		wg.Add(1)
		go func() { defer wg.Done(); w.run(c.Addr()) }()
	}
	sum, err := c.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Attempts != 1 || sum.Failovers != 0 {
		t.Fatalf("want 1 attempt, 0 failovers; got %+v", sum)
	}
	if sum.Iterations != 3 || sum.Steps != 20 || sum.Terminations != 10 {
		t.Fatalf("aggregation wrong: %+v", sum)
	}
}

func TestCoordinatorFailoverOnConnDrop(t *testing.T) {
	// Three workers for two ranks: one spare. The worker seated when its
	// first start barrier releases dies; the coordinator must abort, seat
	// the spare, and rerun — every surviving worker sees attempt 2.
	c := newTestCoordinator(t, 2, nil)
	var wg sync.WaitGroup
	died := false
	var dmu sync.Mutex
	for i := 0; i < 3; i++ {
		w := &fakeWorker{t: t, name: fmt.Sprintf("w%d", i)}
		w.behave = func(attempt, rank int) string {
			dmu.Lock()
			defer dmu.Unlock()
			if !died && attempt == 1 && rank == 0 {
				died = true
				return "die"
			}
			return "done"
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.run(c.Addr()) }()
	}
	sum, err := c.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Failovers != 1 || sum.Attempts != 2 {
		t.Fatalf("want failover=1 attempts=2, got %+v", sum)
	}
}

func TestCoordinatorFailoverOnHeartbeatTimeout(t *testing.T) {
	// The dying rank keeps its connection open but goes silent — the
	// slow-death case only the heartbeat sweep can catch.
	c := newTestCoordinator(t, 2, func(o *Options) {
		o.HeartbeatTimeout = 400 * time.Millisecond
	})
	var wg sync.WaitGroup
	wentSilent := false
	var dmu sync.Mutex
	for i := 0; i < 3; i++ {
		w := &fakeWorker{t: t, name: fmt.Sprintf("w%d", i)}
		w.behave = func(attempt, rank int) string {
			dmu.Lock()
			defer dmu.Unlock()
			if !wentSilent && attempt == 1 && rank == 1 {
				wentSilent = true
				return "silent"
			}
			return "done"
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.run(c.Addr()) }()
	}
	sum, err := c.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Failovers != 1 || sum.Attempts != 2 {
		t.Fatalf("want failover=1 attempts=2, got %+v", sum)
	}
}

func TestCoordinatorRejectsVersionMismatch(t *testing.T) {
	c := newTestCoordinator(t, 1, nil)
	type runResult struct {
		sum *Summary
		err error
	}
	runc := make(chan runResult, 1)
	go func() { //kk:goro-ok joined out of band: the test receives its result from runc before returning
		sum, err := c.Run()
		runc <- runResult{sum, err}
	}()

	// A worker speaking the wrong protocol version must get a reject that
	// names the coordinator's version.
	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cc := newControlConn(conn)
	if err := cc.write(Msg{Type: MsgHello, V: ProtoVersion + 1, DataAddr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	m, err := cc.read()
	if err != nil {
		t.Fatalf("read reject: %v", err)
	}
	if m.Type != MsgReject || m.V != ProtoVersion {
		t.Fatalf("want reject with v%d, got %+v", ProtoVersion, m)
	}

	// Then a good worker completes the job as usual.
	w := &fakeWorker{t: t, name: "good", behave: func(int, int) string { return "done" }}
	go w.run(c.Addr()) //kk:goro-ok joined out of band: Run closes every control conn before returning, unblocking the worker
	res := <-runc
	if res.err != nil {
		t.Fatalf("Run: %v", res.err)
	}
	if res.sum.Attempts != 1 {
		t.Fatalf("got %+v", res.sum)
	}
}

func TestCoordinatorGatherTimeout(t *testing.T) {
	c := newTestCoordinator(t, 2, func(o *Options) {
		o.GatherTimeout = 300 * time.Millisecond
	})
	w := &fakeWorker{t: t, name: "lonely", behave: func(int, int) string { return "done" }}
	go w.run(c.Addr()) //kk:goro-ok joined out of band: Run closes every control conn before returning, unblocking the lone worker
	if _, err := c.Run(); err == nil {
		t.Fatal("want gather-timeout error, got nil")
	}
}
