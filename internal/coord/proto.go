// Package coord is the cluster control plane: a coordinator process that
// owns one walk job's spec, seats kkrank worker processes into ranks,
// hands out the 1-D partition and the data-plane peer list, releases the
// start barrier, watches liveness via heartbeats, and — when a rank dies
// mid-run — aborts the epoch with aligned cancellation and restarts every
// rank from the newest complete checkpoint. The data plane (walker
// migration) never touches this package: ranks exchange frames directly
// over internal/transport's TCP mesh; only membership, control, and
// progress flow through the coordinator.
//
// The control protocol is newline-delimited JSON over one TCP connection
// per worker, versioned by a single integer. See DESIGN.md §14 for the
// message walkthrough, the rank lifecycle state machine, and the failover
// sequence; CONTRIBUTING.md records the version-negotiation rule.
package coord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// ProtoVersion is the control-protocol version. A coordinator accepts
// exactly its own version in hello and answers any other with a reject
// carrying its version, so a mismatched worker can print both sides.
// Additive optional fields do not bump it (unknown JSON fields are
// ignored); any change to existing semantics does.
const ProtoVersion = 1

// maxControlLine caps one control message's encoded size. Assignments
// carry the partition boundary array (8 bytes/rank as JSON numbers), so
// even thousand-rank clusters fit comfortably in 1 MiB; anything larger
// is a corrupt or hostile peer.
const maxControlLine = 1 << 20

// MsgType tags a control message.
type MsgType string

// The control message vocabulary. Worker → coordinator: hello, ready,
// heartbeat, done, failed. Coordinator → worker: assign, start, abort,
// stop, reject.
const (
	MsgHello     MsgType = "hello"     // registration: version + data-plane addr
	MsgAssign    MsgType = "assign"    // seat a rank: partition, peers, resume
	MsgReady     MsgType = "ready"     // worker loaded graph + checkpoint
	MsgStart     MsgType = "start"     // barrier release for one attempt
	MsgHeartbeat MsgType = "heartbeat" // liveness + superstep progress
	MsgDone      MsgType = "done"      // rank finished its attempt
	MsgFailed    MsgType = "failed"    // rank's attempt errored (or abort ack)
	MsgAbort     MsgType = "abort"     // cancel the attempt at the next barrier
	MsgStop      MsgType = "stop"      // job over; worker exits
	MsgReject    MsgType = "reject"    // registration refused (version mismatch)
)

// Msg is the single wire envelope; fields beyond Type are populated per
// message type as documented on the constants.
type Msg struct {
	Type MsgType `json:"type"`
	// V is the sender's protocol version (hello, reject).
	V int `json:"v,omitempty"`
	// DataAddr is the worker's bound data-plane listen address (hello).
	DataAddr string `json:"data_addr,omitempty"`
	// Attempt scopes ready/start/heartbeat/done/failed/abort to one mesh
	// epoch, so messages from an aborted epoch cannot confuse the next.
	Attempt int `json:"attempt,omitempty"`
	// Superstep is the rank's last completed superstep (heartbeat).
	Superstep int `json:"superstep,omitempty"`
	// Walkers is the cluster-wide live walker count agreed at that
	// superstep's barrier (heartbeat).
	Walkers int64 `json:"walkers,omitempty"`
	// ResumeIter is the checkpoint superstep the worker will resume from;
	// 0 means a fresh start (ready).
	ResumeIter int `json:"resume_iter,omitempty"`
	// Err carries the failure description (failed, reject).
	Err string `json:"err,omitempty"`
	// Assign carries the rank assignment (assign).
	Assign *Assignment `json:"assign,omitempty"`
	// Result carries the rank's final counters (done).
	Result *RankResult `json:"result,omitempty"`
}

// Assignment is everything a worker needs to become rank Rank of one mesh
// attempt.
type Assignment struct {
	Rank  int `json:"rank"`
	Ranks int `json:"ranks"`
	// Attempt numbers the mesh epoch, starting at 1; a failover bumps it.
	Attempt int `json:"attempt"`
	// Nonce is the attempt's data-plane handshake nonce (nonzero): stale
	// connections from an aborted epoch are discarded by the mesh accept
	// loop (transport.TCPOptions.Nonce).
	Nonce uint64 `json:"nonce"`
	// Peers lists every rank's data-plane address, in rank order.
	Peers []string `json:"peers"`
	// PartitionStarts is the agreed 1-D partition: starts[i] is rank i's
	// first vertex, starts[Ranks] = |V|.
	PartitionStarts []uint32 `json:"partition_starts"`
	// Resume asks the worker to load the newest complete checkpoint for
	// its rank from Spec.CheckpointDir (fresh start if none exists yet).
	Resume bool `json:"resume,omitempty"`
	// Spec is the job being run; identical across ranks and attempts.
	Spec JobSpec `json:"spec"`
}

// RankResult is one rank's share of the finished run.
type RankResult struct {
	Iterations   int   `json:"iterations"`
	Steps        int64 `json:"steps"`
	Terminations int64 `json:"terminations"`
	Messages     int64 `json:"messages"`
	Bytes        int64 `json:"bytes"`
}

// controlConn frames Msg values over one TCP connection: one JSON object
// per line, writes serialized by a mutex so the worker's heartbeat
// goroutine and its main loop can share the connection.
type controlConn struct {
	conn net.Conn
	r    *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

func newControlConn(conn net.Conn) *controlConn {
	return &controlConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
}

// write encodes and flushes one message.
func (c *controlConn) write(m Msg) error {
	buf, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("coord: encode %s: %w", m.Type, err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(buf); err != nil {
		return fmt.Errorf("coord: write %s: %w", m.Type, err)
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("coord: write %s: %w", m.Type, err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("coord: write %s: %w", m.Type, err)
	}
	return nil
}

// read blocks for the next message. Lines beyond maxControlLine fail the
// connection rather than growing without bound.
func (c *controlConn) read() (Msg, error) {
	var m Msg
	line, err := readBoundedLine(c.r, maxControlLine)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(line, &m); err != nil {
		return m, fmt.Errorf("coord: decode control message: %w", err)
	}
	if m.Type == "" {
		return m, fmt.Errorf("coord: control message with no type")
	}
	return m, nil
}

func (c *controlConn) close() error { return c.conn.Close() }

// readBoundedLine reads up to and including '\n', failing once the line
// exceeds limit bytes.
func readBoundedLine(r *bufio.Reader, limit int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > limit {
			return nil, fmt.Errorf("coord: control line exceeds %d bytes", limit)
		}
		if err == nil {
			return line[:len(line)-1], nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}
