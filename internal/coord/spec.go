package coord

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"knightking/internal/alg"
	"knightking/internal/cluster"
	"knightking/internal/core"
	"knightking/internal/graph"
)

// JobSpec describes one walk job. The coordinator owns the authoritative
// copy and ships it to every worker inside each Assignment, so a
// replacement worker needs nothing on its command line beyond the
// coordinator's address. Paths are interpreted on the worker's host: the
// deployment model is a shared filesystem (or identical local copies) for
// the graph, the checkpoint directory, and the dump directory.
type JobSpec struct {
	// GraphPath is the input graph file; GraphBinary selects the binary
	// CSR format (workers then load only their partition slice).
	GraphPath   string `json:"graph_path"`
	GraphBinary bool   `json:"graph_binary,omitempty"`
	// Undirected doubles text edges into both directions.
	Undirected bool `json:"undirected,omitempty"`

	// Alg selects deepwalk|ppr|rwr|metapath|node2vec, with the same
	// parameter semantics as kkwalk's flags.
	Alg     string  `json:"alg"`
	Length  int     `json:"length,omitempty"`
	Pt      float64 `json:"pt,omitempty"`
	Restart float64 `json:"restart,omitempty"`
	P       float64 `json:"p,omitempty"`
	Q       float64 `json:"q,omitempty"`
	Schemes string  `json:"schemes,omitempty"`
	Biased  bool    `json:"biased,omitempty"`

	// Walkers is the walker count (0 = |V|); Seed pins determinism.
	Walkers int    `json:"walkers,omitempty"`
	Seed    uint64 `json:"seed"`

	// Workers is the computation goroutine count per rank (0 = engine
	// default).
	Workers int `json:"workers,omitempty"`
	// Stepping / BatchSize select the phase-A strategy (engine defaults
	// when empty/zero).
	Stepping  string `json:"stepping,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`

	// NetTimeoutMS bounds every exchange barrier and sets the mesh's TCP
	// read/write deadlines, so a dead peer surfaces as transport.ErrTimeout
	// on the survivors instead of a hung barrier. 0 waits forever (failover
	// then relies on heartbeat timeouts plus abort-grace endpoint closes).
	NetTimeoutMS int64 `json:"net_timeout_ms,omitempty"`

	// CheckpointDir enables snapshots every CheckpointEvery supersteps;
	// it must be reachable by every worker for failover to resume.
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`

	// DumpDir, when set, makes each rank write its walk sequences to
	// <DumpDir>/walks-rankNNNNN.txt, one "<walkerID> v1 v2 ..." line per
	// locally terminated walker. Sorting the concatenation numerically and
	// stripping the ID column reproduces kkwalk -dump byte-for-byte.
	DumpDir string `json:"dump_dir,omitempty"`
}

// Algorithm builds the core walk program the spec names.
func (s *JobSpec) Algorithm() (*core.Algorithm, error) {
	length := s.Length
	if length <= 0 {
		length = 80
	}
	switch s.Alg {
	case "deepwalk":
		return alg.DeepWalk(length, s.Biased), nil
	case "ppr":
		pt := s.Pt
		if pt <= 0 {
			pt = 0.0125
		}
		return alg.PPR(pt, s.Biased, 0), nil
	case "rwr":
		restart := s.Restart
		if restart <= 0 {
			restart = 0.15
		}
		return alg.RWR(restart, s.Biased, length), nil
	case "metapath":
		schemes, err := parseSchemes(s.Schemes)
		if err != nil {
			return nil, err
		}
		return alg.MetaPath(schemes, length, s.Biased), nil
	case "node2vec":
		p, q := s.P, s.Q
		if p == 0 {
			p = 2
		}
		if q == 0 {
			q = 0.5
		}
		return alg.Node2Vec(alg.Node2VecParams{
			P: p, Q: q, Length: length, Biased: s.Biased,
			LowerBound: true, FoldOutlier: true,
		}), nil
	default:
		return nil, fmt.Errorf("coord: unknown algorithm %q", s.Alg)
	}
}

// Validate rejects obviously unrunnable specs before any worker is seated.
func (s *JobSpec) Validate() error {
	if s.GraphPath == "" {
		return fmt.Errorf("coord: spec has no graph path")
	}
	if _, err := s.Algorithm(); err != nil {
		return err
	}
	if s.CheckpointDir != "" && s.CheckpointEvery < 0 {
		return fmt.Errorf("coord: negative checkpoint interval %d", s.CheckpointEvery)
	}
	return nil
}

// parseSchemes parses "0,1;2,0,1" into [][]int32{{0,1},{2,0,1}} —
// kkwalk's -schemes syntax.
func parseSchemes(s string) ([][]int32, error) {
	var schemes [][]int32
	for _, part := range strings.Split(s, ";") {
		var scheme []int32
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseInt(tok, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("coord: bad scheme element %q: %w", tok, err)
			}
			scheme = append(scheme, int32(v))
		}
		if len(scheme) > 0 {
			schemes = append(schemes, scheme)
		}
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("coord: no metapath schemes in %q", s)
	}
	return schemes, nil
}

// partitionSpec computes the job's 1-D partition and global vertex count
// without holding the full graph longer than necessary. For binary graphs
// only the degree header is read — the same agreement rule the workers
// use before loading their slices.
func partitionSpec(s *JobSpec, ranks int) (starts []graph.VertexID, numVertices int, err error) {
	f, err := os.Open(s.GraphPath)
	if err != nil {
		return nil, 0, fmt.Errorf("coord: open graph: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only
	if s.GraphBinary {
		hdr, err := graph.ReadBinaryDegrees(f)
		if err != nil {
			return nil, 0, fmt.Errorf("coord: read degrees: %w", err)
		}
		degrees := make([]int, hdr.NumVertices)
		for v := range degrees {
			degrees[v] = hdr.Degree(graph.VertexID(v))
		}
		part := cluster.Partition1DFromDegrees(degrees, ranks, 1)
		return part.Starts(), hdr.NumVertices, nil
	}
	g, err := graph.ReadEdgeList(f, s.Undirected, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("coord: load graph: %w", err)
	}
	part := cluster.Partition1D(g, ranks, 1)
	return part.Starts(), g.NumVertices(), nil
}
