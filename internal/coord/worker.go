package coord

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"knightking/internal/checkpoint"
	"knightking/internal/cluster"
	"knightking/internal/core"
	"knightking/internal/graph"
	"knightking/internal/transport"
)

// Worker defaults.
const (
	// DefaultHeartbeatEvery is the worker's heartbeat period.
	DefaultHeartbeatEvery = 250 * time.Millisecond
	// DefaultAbortGrace is how long a worker waits after an abort for the
	// engine to reach a barrier (and exit via aligned cancellation) before
	// force-closing the data-plane endpoint under it.
	DefaultAbortGrace = 3 * time.Second
	// dialCoordTimeout bounds the initial control-plane dial.
	dialCoordTimeout = 10 * time.Second
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// CoordAddr is the coordinator's control address (required).
	CoordAddr string
	// ListenAddr is the data-plane listen address to bind; default
	// "127.0.0.1:0". The bound address is advertised in hello and the
	// listener is reused across mesh attempts (DialTCPGroupOn), so
	// failover never races on port rebinding.
	ListenAddr string
	// HeartbeatEvery / AbortGrace override the defaults above.
	HeartbeatEvery time.Duration
	AbortGrace     time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...interface{})
}

// worker is one kkrank process's control-plane state.
type worker struct {
	opts WorkerOptions
	ln   net.Listener
	cc   *controlConn

	cur atomic.Pointer[attempt]

	// graphCache reuses loaded graphs across attempts: a re-handout of the
	// same rank (the common failover case) skips the reload entirely.
	graphCache map[graphKey]*graph.Graph
}

type graphKey struct {
	path       string
	binary     bool
	undirected bool
	lo, hi     graph.VertexID
}

// attempt is one assignment's lifecycle, from assign to done/failed.
type attempt struct {
	a       *Assignment
	cfg     core.Config
	cancel  chan struct{}
	once    sync.Once
	grace   *time.Timer
	running bool

	// superstep/walkers are set by the engine's OnProgress hook and read
	// by the heartbeat goroutine.
	superstep atomic.Int64
	walkers   atomic.Int64
	// ep holds the live endpoint (*as transport.Endpoint) once the mesh is
	// up, for the abort-grace force close.
	ep atomic.Value
}

// outcome is what the engine goroutine reports back to the main loop.
type outcome struct {
	attempt int
	res     *core.Result
	err     error
}

// abort requests aligned cancellation once.
func (at *attempt) abort() {
	at.once.Do(func() { close(at.cancel) })
}

func (at *attempt) closeEp() {
	if ep, ok := at.ep.Load().(transport.Endpoint); ok {
		_ = ep.Close() // force-unblock a wedged exchange; the run error is reported by the engine goroutine
	}
}

// RunWorker runs one kkrank worker process: register with the
// coordinator, then serve assign/start/abort/stop until the job ends or
// the control connection dies. It returns nil on a clean stop.
func RunWorker(opts WorkerOptions) error {
	if opts.CoordAddr == "" {
		return fmt.Errorf("coord: worker needs a coordinator address")
	}
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if opts.AbortGrace <= 0 {
		opts.AbortGrace = DefaultAbortGrace
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	ln, err := net.Listen("tcp", opts.ListenAddr)
	if err != nil {
		return fmt.Errorf("coord: data-plane listen %s: %w", opts.ListenAddr, err)
	}
	defer func() { _ = ln.Close() }() // process is exiting

	conn, err := net.DialTimeout("tcp", opts.CoordAddr, dialCoordTimeout)
	if err != nil {
		return fmt.Errorf("coord: dial coordinator %s: %w", opts.CoordAddr, err)
	}
	w := &worker{opts: opts, ln: ln, cc: newControlConn(conn), graphCache: map[graphKey]*graph.Graph{}}
	defer func() { _ = w.cc.close() }() // process is exiting

	if err := w.cc.write(Msg{Type: MsgHello, V: ProtoVersion, DataAddr: ln.Addr().String()}); err != nil {
		return err
	}
	logf("registered with %s, data plane on %s", opts.CoordAddr, ln.Addr())

	quit := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(quit) // joins the reader and heartbeat goroutines below

	// Control reader: one goroutine turning the connection into a channel.
	msgs := make(chan Msg)
	readErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m, err := w.cc.read()
			if err != nil {
				select {
				case readErrs <- err:
				case <-quit:
				}
				return
			}
			select {
			case msgs <- m:
			case <-quit:
				return
			}
		}
	}()

	// Heartbeats: whenever an attempt is active (from assign receipt
	// through done/failed, including graph load), report its last barrier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(opts.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				if at := w.cur.Load(); at != nil {
					_ = w.cc.write(Msg{ // best-effort: a dead control conn surfaces in the reader
						Type:      MsgHeartbeat,
						Attempt:   at.a.Attempt,
						Superstep: int(at.superstep.Load()),
						Walkers:   at.walkers.Load(),
					})
				}
			}
		}
	}()

	done := make(chan outcome, 1)
	for {
		select {
		case err := <-readErrs:
			return fmt.Errorf("coord: coordinator connection lost: %w", err)

		case out := <-done:
			at := w.cur.Load()
			if at == nil || out.attempt != at.a.Attempt {
				continue // outcome of a force-closed stale attempt
			}
			if at.grace != nil {
				at.grace.Stop()
			}
			w.cur.Store(nil)
			if out.err != nil {
				logf("attempt %d failed: %v", out.attempt, out.err)
				_ = w.cc.write(Msg{Type: MsgFailed, Attempt: out.attempt, Err: out.err.Error()})
				continue
			}
			logf("attempt %d done after %d supersteps", out.attempt, out.res.Iterations)
			_ = w.cc.write(Msg{Type: MsgDone, Attempt: out.attempt, Result: &RankResult{
				Iterations:   out.res.Iterations,
				Steps:        out.res.Counters.Steps,
				Terminations: out.res.Counters.Terminations,
				Messages:     out.res.Counters.Messages,
				Bytes:        out.res.Counters.BytesSent,
			}})

		case m := <-msgs:
			switch m.Type {
			case MsgReject:
				return fmt.Errorf("coord: registration rejected: %s (coordinator speaks protocol v%d, this worker v%d)", m.Err, m.V, ProtoVersion)

			case MsgAssign:
				if m.Assign == nil {
					return fmt.Errorf("coord: assign without assignment")
				}
				if w.cur.Load() != nil {
					return fmt.Errorf("coord: assigned attempt %d while attempt %d still active", m.Assign.Attempt, w.cur.Load().a.Attempt)
				}
				at := &attempt{a: m.Assign, cancel: make(chan struct{})}
				at.superstep.Store(0)
				w.cur.Store(at) // heartbeats cover the (possibly long) graph load
				resumeIter, err := w.prepare(at, logf)
				if err != nil {
					logf("attempt %d prepare failed: %v", at.a.Attempt, err)
					w.cur.Store(nil)
					_ = w.cc.write(Msg{Type: MsgFailed, Attempt: at.a.Attempt, Err: err.Error()})
					continue
				}
				at.superstep.Store(int64(resumeIter))
				logf("rank %d/%d attempt %d prepared (resume superstep %d)", at.a.Rank, at.a.Ranks, at.a.Attempt, resumeIter)
				if err := w.cc.write(Msg{Type: MsgReady, Attempt: at.a.Attempt, ResumeIter: resumeIter}); err != nil {
					return err
				}

			case MsgStart:
				at := w.cur.Load()
				if at == nil || m.Attempt != at.a.Attempt {
					continue // barrier release for an attempt we already abandoned
				}
				if at.running {
					continue
				}
				at.running = true
				logf("attempt %d started", at.a.Attempt)
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := w.runAttempt(at)
					select {
					case done <- outcome{attempt: at.a.Attempt, res: res, err: err}:
					case <-quit:
					}
				}()

			case MsgAbort:
				at := w.cur.Load()
				if at == nil || m.Attempt != at.a.Attempt {
					// Nothing active (we already failed, or the attempt is
					// long gone): ack so the coordinator's abort barrier
					// can complete.
					_ = w.cc.write(Msg{Type: MsgFailed, Attempt: m.Attempt, Err: "abort ack (idle)"})
					continue
				}
				if !at.running {
					// Prepared but not started: drop the assignment.
					w.cur.Store(nil)
					_ = w.cc.write(Msg{Type: MsgFailed, Attempt: at.a.Attempt, Err: "aborted before start"})
					continue
				}
				logf("attempt %d aborting (cancel at next barrier, grace %v)", at.a.Attempt, opts.AbortGrace)
				at.abort()
				// If cancellation cannot reach a barrier (the dead peer is
				// wedging an exchange and no NetTimeout is set), pull the
				// endpoint out from under the engine.
				at.grace = time.AfterFunc(opts.AbortGrace, at.closeEp)

			case MsgStop:
				logf("stopped by coordinator")
				if at := w.cur.Load(); at != nil && at.running {
					at.abort()
					at.closeEp()
				}
				return nil

			default:
				return fmt.Errorf("coord: unexpected control message %q", m.Type)
			}
		}
	}
}

// prepare loads the assignment's graph slice and checkpoint and builds the
// engine config. It returns the superstep the rank will resume from (0 =
// fresh).
func (w *worker) prepare(at *attempt, logf func(string, ...interface{})) (int, error) {
	a := at.a
	spec := &a.Spec
	program, err := spec.Algorithm()
	if err != nil {
		return 0, err
	}
	if len(a.PartitionStarts) != a.Ranks+1 {
		return 0, fmt.Errorf("coord: assignment has %d partition boundaries for %d ranks", len(a.PartitionStarts), a.Ranks)
	}
	starts := make([]graph.VertexID, len(a.PartitionStarts))
	for i, v := range a.PartitionStarts {
		starts[i] = graph.VertexID(v)
	}
	part, err := cluster.NewPartition(starts)
	if err != nil {
		return 0, err
	}
	lo, hi := part.Range(a.Rank)

	g, err := w.loadGraph(spec, lo, hi, logf)
	if err != nil {
		return 0, err
	}

	cfg := core.Config{
		Graph:       g,
		Algorithm:   program,
		Workers:     spec.Workers,
		NumWalkers:  spec.Walkers,
		Seed:        spec.Seed,
		RecordPaths: spec.DumpDir != "",
		Stepping:    spec.Stepping,
		BatchSize:   spec.BatchSize,
		NetTimeout:  time.Duration(spec.NetTimeoutMS) * time.Millisecond,
		Cancel:      at.cancel,
		OnProgress: func(iteration int, global int64) {
			at.superstep.Store(int64(iteration))
			at.walkers.Store(global)
		},
	}
	// Every rank runs the coordinator's partition verbatim; for binary
	// graphs the slice-loaded graph keeps the global vertex ID space and
	// these boundaries are what anchor it.
	cfg.PartitionStarts = starts

	resumeIter := 0
	if spec.CheckpointDir != "" {
		every := spec.CheckpointEvery
		if every <= 0 {
			every = 16
		}
		effWalkers := spec.Walkers
		if effWalkers <= 0 {
			effWalkers = g.NumVertices()
		}
		meta := checkpoint.Meta{
			Seed:        spec.Seed,
			NumWalkers:  uint64(effWalkers),
			NumVertices: uint64(g.NumVertices()),
			Algorithm:   program.Name,
		}
		store, err := checkpoint.NewStore(spec.CheckpointDir, every, meta)
		if err != nil {
			return 0, err
		}
		cfg.Checkpoint = store
		if a.Resume {
			cp, err := checkpoint.LoadRank(spec.CheckpointDir, a.Rank)
			switch {
			case errors.Is(err, checkpoint.ErrNone):
				// Died before the first checkpoint committed: fresh start.
			case err != nil:
				return 0, err
			default:
				if err := cp.Validate(meta); err != nil {
					return 0, err
				}
				cfg.Restore = cp.RestoreState()
				resumeIter = cp.Iteration
			}
		}
	}
	at.cfg = cfg
	return resumeIter, nil
}

// loadGraph reads the spec's graph (this rank's slice for binary graphs),
// reusing a previous attempt's load when the key matches.
func (w *worker) loadGraph(spec *JobSpec, lo, hi graph.VertexID, logf func(string, ...interface{})) (*graph.Graph, error) {
	key := graphKey{path: spec.GraphPath, binary: spec.GraphBinary, undirected: spec.Undirected}
	if spec.GraphBinary {
		key.lo, key.hi = lo, hi
	}
	if g, ok := w.graphCache[key]; ok {
		return g, nil
	}
	f, err := os.Open(spec.GraphPath)
	if err != nil {
		return nil, fmt.Errorf("coord: open graph: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only
	var g *graph.Graph
	if spec.GraphBinary {
		g, err = graph.ReadBinarySlice(f, lo, hi)
		if err == nil {
			logf("loaded vertex slice [%d,%d): %d local edges", lo, hi, g.NumEdges())
		}
	} else {
		g, err = graph.ReadEdgeList(f, spec.Undirected, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("coord: load graph: %w", err)
	}
	w.graphCache[key] = g
	return g, nil
}

// runAttempt brings up the data-plane mesh and runs the engine for one
// attempt, then writes this rank's dump. Runs on its own goroutine.
func (w *worker) runAttempt(at *attempt) (*core.Result, error) {
	a := at.a
	nt := time.Duration(a.Spec.NetTimeoutMS) * time.Millisecond
	ep, err := transport.DialTCPGroupOn(w.ln, a.Rank, a.Peers, transport.TCPOptions{
		ReadTimeout:  nt,
		WriteTimeout: nt,
		Nonce:        a.Nonce,
	})
	if err != nil {
		return nil, fmt.Errorf("coord: join mesh: %w", err)
	}
	at.ep.Store(ep)
	defer func() { _ = ep.Close() }() // abort grace may have closed it already
	res, err := core.RunNode(at.cfg, ep)
	if err != nil {
		return nil, err
	}
	if a.Spec.DumpDir != "" {
		if err := writeRankDump(a.Spec.DumpDir, a.Rank, res.Paths); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// writeRankDump writes this rank's walk sequences as "<walkerID> v1 v2 ..."
// lines in ascending walker ID, atomically (tmp + rename) so a failover
// rewrite never leaves a torn file. Only locally terminated walkers have
// paths; merging all ranks' files by walker ID reproduces the
// single-process dump.
func writeRankDump(dir string, rank int, paths [][]graph.VertexID) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("coord: dump dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("walks-rank%05d.txt", rank))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("coord: dump: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	for id, p := range paths {
		if p == nil {
			continue // terminated on another rank
		}
		_, _ = fmt.Fprintf(bw, "%d", id) // buffered; Flush below reports write errors
		for _, v := range p {
			_, _ = fmt.Fprintf(bw, " %d", v)
		}
		_, _ = fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("coord: dump: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("coord: dump: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("coord: dump: %w", err)
	}
	return nil
}
