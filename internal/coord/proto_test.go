package coord

import (
	"net"
	"strings"
	"testing"
)

// pipePair returns two controlConns over an in-memory connection.
func pipePair(t *testing.T) (*controlConn, *controlConn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return newControlConn(a), newControlConn(b)
}

func TestProtoRoundTrip(t *testing.T) {
	ca, cb := pipePair(t)
	want := Msg{
		Type: MsgAssign,
		Assign: &Assignment{
			Rank:            1,
			Ranks:           3,
			Attempt:         2,
			Nonce:           0xdeadbeef,
			Peers:           []string{"a:1", "b:2", "c:3"},
			PartitionStarts: []uint32{0, 10, 20, 30},
			Resume:          true,
			Spec:            JobSpec{GraphPath: "g.txt", Alg: "deepwalk", Length: 80, Seed: 7},
		},
	}
	errc := make(chan error, 1)
	go func() { errc <- ca.write(want) }()
	got, err := cb.read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	if got.Type != MsgAssign || got.Assign == nil {
		t.Fatalf("got %+v", got)
	}
	a := got.Assign
	if a.Rank != 1 || a.Ranks != 3 || a.Attempt != 2 || a.Nonce != 0xdeadbeef || !a.Resume {
		t.Fatalf("assignment fields mangled: %+v", a)
	}
	if len(a.Peers) != 3 || a.Peers[2] != "c:3" {
		t.Fatalf("peers mangled: %v", a.Peers)
	}
	if len(a.PartitionStarts) != 4 || a.PartitionStarts[3] != 30 {
		t.Fatalf("partition mangled: %v", a.PartitionStarts)
	}
	if a.Spec.GraphPath != "g.txt" || a.Spec.Seed != 7 {
		t.Fatalf("spec mangled: %+v", a.Spec)
	}
}

func TestProtoInterleavedWriters(t *testing.T) {
	// The worker's heartbeat goroutine and main loop share one conn; the
	// write mutex must keep lines whole.
	ca, cb := pipePair(t)
	const n = 50
	go func() { //kk:goro-ok joined out of band: the reader drains all 2n messages before the test returns
		for i := 0; i < n; i++ {
			_ = ca.write(Msg{Type: MsgHeartbeat, Attempt: 1, Superstep: i})
		}
	}()
	go func() { //kk:goro-ok joined out of band: the reader drains all 2n messages before the test returns
		for i := 0; i < n; i++ {
			_ = ca.write(Msg{Type: MsgReady, Attempt: 1, ResumeIter: i})
		}
	}()
	beats, readies := 0, 0
	for i := 0; i < 2*n; i++ {
		m, err := cb.read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		switch m.Type {
		case MsgHeartbeat:
			beats++
		case MsgReady:
			readies++
		default:
			t.Fatalf("torn or foreign message: %+v", m)
		}
	}
	if beats != n || readies != n {
		t.Fatalf("got %d heartbeats, %d readies; want %d each", beats, readies, n)
	}
}

func TestProtoRejectsOversizedLine(t *testing.T) {
	ca, cb := pipePair(t)
	go func() { //kk:goro-ok joined out of band: pipePair's cleanup closes both conns, unblocking a mid-stream writer
		// Enough past the limit that the reader crosses it on a whole
		// buffered chunk, as a runaway peer's stream would.
		huge := strings.Repeat("x", maxControlLine+(128<<10))
		_, _ = ca.conn.Write([]byte(huge))
	}()
	if _, err := cb.read(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want oversized-line error, got %v", err)
	}
}

func TestProtoRejectsUntypedMessage(t *testing.T) {
	ca, cb := pipePair(t)
	go func() { _, _ = ca.conn.Write([]byte("{}\n")) }() //kk:goro-ok joined out of band: one synchronous pipe write, received by the read under test
	if _, err := cb.read(); err == nil || !strings.Contains(err.Error(), "no type") {
		t.Fatalf("want no-type error, got %v", err)
	}
}
