package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// ctlTrace records the coordinator's causal view of the job — worker
// registrations, attempt prepare/run spans, rank-down detections, and
// failover detect→resume spans — exportable as Perfetto JSON like the
// engine's walker trace (obs/tracelog), but scoped to the control plane:
// one process track, one thread per rank plus a job-level thread. Wall
// timestamps here are telemetry only; nothing in the walk reads them.
type ctlTrace struct {
	mu     sync.Mutex
	t0     time.Time
	events []ctlEvent
}

type ctlEvent struct {
	name string
	rank int // -1 = job-level track
	ts   time.Duration
	dur  time.Duration // 0 = instant event
}

func newCtlTrace() *ctlTrace {
	return &ctlTrace{t0: time.Now()} //kk:nondet-ok control-plane telemetry epoch; never feeds walk state
}

// clock returns the trace-relative timestamp of now.
func (t *ctlTrace) clock() time.Duration {
	return time.Since(t.t0) //kk:nondet-ok control-plane telemetry timing; never feeds walk state
}

// point records an instant event.
func (t *ctlTrace) point(rank int, format string, args ...interface{}) {
	t.mu.Lock()
	t.events = append(t.events, ctlEvent{name: fmt.Sprintf(format, args...), rank: rank, ts: t.clock()})
	t.mu.Unlock()
}

// span records a completed interval that began at trace-relative time
// start (from a prior clock() call).
func (t *ctlTrace) span(rank int, start time.Duration, format string, args ...interface{}) {
	end := t.clock()
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.events = append(t.events, ctlEvent{name: fmt.Sprintf(format, args...), rank: rank, ts: start, dur: end - start})
	t.mu.Unlock()
}

// perfettoEvent is one Chrome-trace-format entry.
type perfettoEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// writePerfetto exports the trace as Perfetto-compatible JSON
// (https://ui.perfetto.dev). tid 1 is the job-level track; rank r lands
// on tid r+2.
func (t *ctlTrace) writePerfetto(w io.Writer, ranks int) error {
	t.mu.Lock()
	events := append([]ctlEvent(nil), t.events...)
	t.mu.Unlock()

	out := make([]perfettoEvent, 0, len(events)+ranks+2)
	out = append(out, perfettoEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 1,
		Args: map[string]interface{}{"name": "kkcoord control plane"},
	})
	out = append(out, perfettoEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: 1,
		Args: map[string]interface{}{"name": "job"},
	})
	for r := 0; r < ranks; r++ {
		out = append(out, perfettoEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: r + 2,
			Args: map[string]interface{}{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, e := range events {
		tid := 1
		if e.rank >= 0 {
			tid = e.rank + 2
		}
		pe := perfettoEvent{Name: e.name, PID: 1, TID: tid, TS: float64(e.ts.Nanoseconds()) / 1e3}
		if e.dur > 0 {
			pe.Ph = "X"
			pe.Dur = float64(e.dur.Nanoseconds()) / 1e3
		} else {
			pe.Ph = "i"
			pe.S = "t"
		}
		out = append(out, pe)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": out})
}
