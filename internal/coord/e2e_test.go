package coord

// Exec-based end-to-end test of the cluster control plane: real kkcoord
// and kkrank processes over localhost TCP, one rank SIGKILLed mid-run and
// replaced, and the recovered cluster's merged dump compared byte-for-byte
// against an uninterrupted single-process kkwalk run.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinaries compiles the cluster binaries once into dir.
func buildBinaries(t *testing.T, dir string, names ...string) map[string]string {
	t.Helper()
	bins := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "knightking/cmd/"+name)
		cmd.Dir = moduleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// writeE2EGraph writes a deterministic mildly skewed graph: vertex v links
// to a handful of pseudo-random targets, plus a ring edge keeping it
// connected. Pure arithmetic — no RNG — so the file is stable across runs.
func writeE2EGraph(t *testing.T, path string, n int) {
	t.Helper()
	var b strings.Builder
	for v := 0; v < n; v++ {
		fmt.Fprintf(&b, "%d %d\n", v, (v+1)%n)
		deg := 2 + (v*7+3)%6
		for k := 0; k < deg; k++ {
			u := (v*31 + k*197 + 13) % n
			if u != v {
				fmt.Fprintf(&b, "%d %d\n", v, u)
			}
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// mergeRankDumps reassembles the per-rank "<walkerID> v1 v2 ..." dumps
// into kkwalk's walker-ID-ordered, ID-less dump format.
func mergeRankDumps(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "walks-rank*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no rank dumps under %s", dir)
	}
	type walk struct {
		id   int
		path string
	}
	var walks []walk
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			if line == "" {
				continue
			}
			id, rest, found := strings.Cut(line, " ")
			n, err := strconv.Atoi(id)
			if err != nil || !found {
				t.Fatalf("bad dump line in %s: %q", f, line)
			}
			walks = append(walks, walk{id: n, path: rest})
		}
	}
	sort.Slice(walks, func(i, j int) bool { return walks[i].id < walks[j].id })
	var b strings.Builder
	for i, w := range walks {
		if i > 0 && walks[i-1].id == w.id {
			t.Fatalf("walker %d dumped by two ranks", w.id)
		}
		b.WriteString(w.path)
		b.WriteByte('\n')
	}
	return b.String()
}

type statuszDoc struct {
	State   string `json:"state"`
	Attempt int    `json:"attempt"`
	Ranks   []struct {
		Superstep int `json:"superstep"`
	} `json:"ranks"`
}

func getStatusz(adminAddr string) (statuszDoc, error) {
	var doc statuszDoc
	resp, err := http.Get("http://" + adminAddr + "/statusz")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

func startRank(t *testing.T, bin, coordAddr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-coord", coordAddr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start kkrank: %v", err)
	}
	return cmd
}

func TestClusterKillRankE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir, "kkcoord", "kkrank", "kkwalk")

	graph := filepath.Join(dir, "g.txt")
	writeE2EGraph(t, graph, 600)
	const (
		ranks   = 3
		walkers = 2000
		length  = 600
		seed    = 7
	)

	// Reference: uninterrupted single-process run, same partition count.
	refDump := filepath.Join(dir, "ref.txt")
	ref := exec.Command(bins["kkwalk"],
		"-graph", graph, "-alg", "deepwalk", "-length", strconv.Itoa(length),
		"-walkers", strconv.Itoa(walkers), "-seed", strconv.Itoa(seed),
		"-nodes", strconv.Itoa(ranks), "-dump", refDump, "-quiet")
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference kkwalk: %v\n%s", err, out)
	}

	// Cluster run with checkpointing, killed and recovered mid-flight.
	dumpDir := filepath.Join(dir, "dumps")
	coordCmd := exec.Command(bins["kkcoord"],
		"-graph", graph, "-alg", "deepwalk", "-length", strconv.Itoa(length),
		"-walkers", strconv.Itoa(walkers), "-seed", strconv.Itoa(seed),
		"-ranks", strconv.Itoa(ranks),
		"-checkpoint-dir", filepath.Join(dir, "ckpt"), "-checkpoint-every", "16",
		"-dump-dir", dumpDir,
		"-admin-addr", "127.0.0.1:0",
		"-addr-file", filepath.Join(dir, "coord.addr"),
		"-gather-timeout", "60s", "-net-timeout", "10s",
		"-json")
	// Stdout/stderr go to files so the test can poll the log while the
	// process is still writing it (a shared buffer would race).
	outPath := filepath.Join(dir, "coord.out")
	logPath := filepath.Join(dir, "coord.log")
	outFile, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	coordCmd.Stdout = outFile
	coordCmd.Stderr = logFile
	if err := coordCmd.Start(); err != nil {
		t.Fatalf("start kkcoord: %v", err)
	}
	_ = outFile.Close() // the child holds its own descriptor
	_ = logFile.Close()
	coordLog := func() string {
		b, _ := os.ReadFile(logPath)
		return string(b)
	}
	// coordDone closes when the process exits, so it can be selected on
	// from several places; the exit error lands in waitErr first.
	var waitErr error
	coordDone := make(chan struct{})
	go func() { waitErr = coordCmd.Wait(); close(coordDone) }()
	defer func() {
		_ = coordCmd.Process.Kill()
		<-coordDone
		if t.Failed() {
			t.Logf("kkcoord log:\n%s", coordLog())
		}
	}()

	// The control address file appears once the listener is bound; the
	// admin address has to be scraped from the log (it binds port 0).
	var coordAddr string
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dir, "coord.addr")); err == nil && len(b) > 0 {
			coordAddr = string(b)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if coordAddr == "" {
		t.Fatalf("coordinator never wrote its address; log:\n%s", coordLog())
	}
	var adminAddr string
	for time.Now().Before(deadline) {
		if _, rest, ok := strings.Cut(coordLog(), "admin server on http://"); ok {
			adminAddr = strings.Fields(rest)[0]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if adminAddr == "" {
		t.Fatalf("admin address never logged; log:\n%s", coordLog())
	}

	workers := make([]*exec.Cmd, ranks)
	for i := range workers {
		workers[i] = startRank(t, bins["kkrank"], coordAddr)
	}
	defer func() {
		for _, w := range workers {
			if w != nil && w.Process != nil {
				_ = w.Process.Kill()
				_ = w.Wait()
			}
		}
	}()

	// Wait until the run is past its first committed checkpoint (16) so the
	// failover genuinely resumes rather than restarting from scratch.
	progressed := false
	for time.Now().Before(deadline) {
		doc, err := getStatusz(adminAddr)
		if err == nil && doc.State == "running" {
			for _, r := range doc.Ranks {
				if r.Superstep >= 20 {
					progressed = true
					break
				}
			}
		}
		if progressed {
			break
		}
		select {
		case <-coordDone:
			t.Fatalf("coordinator exited before the kill (%v); log:\n%s", waitErr, coordLog())
		default:
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !progressed {
		t.Fatalf("cluster never reached superstep 20; log:\n%s", coordLog())
	}

	// SIGKILL one rank mid-run, then offer a replacement process.
	killedAt := time.Now()
	if err := workers[1].Process.Kill(); err != nil {
		t.Fatalf("kill rank: %v", err)
	}
	_ = workers[1].Wait()
	workers[1] = nil
	replacement := startRank(t, bins["kkrank"], coordAddr)
	workers = append(workers, replacement)

	// Acceptance: detect → re-handout → resume in under 10 seconds.
	recovered := false
	for time.Now().Before(killedAt.Add(10 * time.Second)) {
		doc, err := getStatusz(adminAddr)
		if err == nil && doc.Attempt >= 2 && doc.State == "running" {
			recovered = true
			break
		}
		select {
		case <-coordDone:
			// Already finished: recovery certainly happened within bounds if
			// the summary shows a second attempt (checked below).
			recovered = true
		default:
		}
		if recovered {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("no recovery within 10s of the kill; log:\n%s", coordLog())
	}
	t.Logf("recovered (attempt 2 running) %v after SIGKILL", time.Since(killedAt))

	select {
	case <-coordDone:
		if waitErr != nil {
			t.Fatalf("kkcoord failed: %v; log:\n%s", waitErr, coordLog())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("kkcoord never finished; log:\n%s", coordLog())
	}

	outBytes, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(outBytes, &sum); err != nil {
		t.Fatalf("parse summary %q: %v", outBytes, err)
	}
	if sum.Failovers < 1 || sum.Attempts < 2 {
		t.Fatalf("kill not observed: %+v", sum)
	}
	t.Logf("summary: %+v", sum)

	// The headline: the recovered cluster's merged dump is byte-identical
	// to the uninterrupted single-process run.
	merged := mergeRankDumps(t, dumpDir)
	refBytes, err := os.ReadFile(refDump)
	if err != nil {
		t.Fatal(err)
	}
	if merged != string(refBytes) {
		t.Fatalf("recovered cluster dump differs from uninterrupted reference (merged %d bytes, ref %d bytes)",
			len(merged), len(refBytes))
	}
}

// TestKKWalkFlagPairing covers the kkwalk UX satellite: -rank without
// -peers (and vice versa) must fail fast with a usage error.
func TestKKWalkFlagPairing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir, "kkwalk")
	graph := filepath.Join(dir, "g.txt")
	writeE2EGraph(t, graph, 20)

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"rank without peers", []string{"-graph", graph, "-rank", "0"}, "-rank requires -peers"},
		{"peers without rank", []string{"-graph", graph, "-peers", "127.0.0.1:1,127.0.0.1:2"}, "-peers requires -rank"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bins["kkwalk"], tc.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("want failure, got success:\n%s", out)
			}
			var ee *exec.ExitError
			if ok := errorsAs(err, &ee); !ok || ee.ExitCode() == 0 || ee.ProcessState.Sys().(syscall.WaitStatus).Signaled() {
				t.Fatalf("want clean nonzero exit, got %v", err)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("want %q in output, got:\n%s", tc.want, out)
			}
		})
	}
}

// errorsAs avoids importing errors just for one assertion helper.
func errorsAs(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}
