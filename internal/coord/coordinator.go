package coord

import (
	"fmt"
	"net"
	"sync"
	"time"

	"knightking/internal/rng"
)

// Coordinator defaults.
const (
	// DefaultHeartbeatTimeout is how stale a seated worker's heartbeat may
	// grow during prepare/run before the coordinator declares the rank dead.
	DefaultHeartbeatTimeout = 5 * time.Second
	// DefaultAbortAckTimeout bounds the abort barrier: workers that have
	// not acknowledged an abort within it get their connections cut. It
	// must exceed the workers' abort grace (DefaultAbortGrace) so aligned
	// cancellation gets its chance first.
	DefaultAbortAckTimeout = 8 * time.Second
	// DefaultMaxAttempts caps mesh epochs, turning a deterministic
	// per-attempt failure (bad graph path, poisoned checkpoint) into a job
	// error instead of an assign/abort livelock.
	DefaultMaxAttempts = 10

	// helloTimeout bounds how long a fresh connection may sit silent
	// before its registration read is abandoned.
	helloTimeout = 10 * time.Second
	// tickEvery is the liveness sweep period.
	tickEvery = 200 * time.Millisecond
)

// Seat phases: one worker's position in the current attempt.
const (
	phIdle      = iota // seated, no live assignment
	phPreparing        // assign sent, loading graph + checkpoint
	phReady            // prepared, waiting for the start barrier
	phRunning          // start released, engine running
	phDone             // reported done for this attempt
)

var phaseNames = [...]string{"idle", "preparing", "ready", "running", "done"}

// Coordinator states.
const (
	stGather = iota // waiting for enough registered workers
	stPrepare       // assignments out, collecting readies
	stRun           // attempt running
	stAbort         // abort out, collecting acknowledgements
	stDone          // job finished (summary or error)
)

var stateNames = [...]string{"gathering", "preparing", "running", "aborting", "done"}

// Options configures a Coordinator.
type Options struct {
	// Spec is the job to run (required).
	Spec JobSpec
	// Ranks is the cluster size (required, >= 1).
	Ranks int
	// ControlAddr is the control-plane listen address; default
	// "127.0.0.1:0" (read the bound address back with Addr).
	ControlAddr string
	// AdminAddr, when set, serves /metrics, /statusz, and /trace.
	AdminAddr string
	// Resume makes the *first* attempt restore from Spec.CheckpointDir;
	// failover attempts always resume when checkpointing is on.
	Resume bool
	// HeartbeatTimeout / AbortAckTimeout / MaxAttempts override the
	// defaults above; GatherTimeout fails the job when the cluster cannot
	// be assembled in time (0 = wait forever).
	HeartbeatTimeout time.Duration
	AbortAckTimeout  time.Duration
	GatherTimeout    time.Duration
	MaxAttempts      int
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...interface{})
}

// Summary aggregates the finished job across ranks.
type Summary struct {
	Attempts     int   `json:"attempts"`
	Failovers    int64 `json:"failovers"`
	Iterations   int   `json:"iterations"`
	Steps        int64 `json:"steps"`
	Terminations int64 `json:"terminations"`
	Messages     int64 `json:"messages"`
	Bytes        int64 `json:"bytes"`
}

// wconn is one worker's control connection.
type wconn struct {
	id       int
	cc       *controlConn
	conn     net.Conn
	dataAddr string
	rank     int // seat index, -1 while spare
}

// seat is one rank's slot in the cluster.
type seat struct {
	wc        *wconn
	phase     int
	readyIter int
	superstep int
	walkers   int64
	lastBeat  time.Duration // trace-relative; see ctlTrace.clock
	result    *RankResult
}

// ev is one event consumed by the run loop.
type ev struct {
	kind int // evConn, evMsg, evGone
	wc   *wconn
	msg  Msg
}

const (
	evConn = iota
	evMsg
	evGone
)

// Coordinator owns one job: membership, partition handout, the start
// barrier, liveness, and failover. All state transitions happen on the
// Run goroutine; the mutex only makes the state readable by the admin
// server's handlers.
type Coordinator struct {
	opts     Options
	logf     func(format string, args ...interface{})
	ln       net.Listener
	trace    *ctlTrace
	nonceRng *rng.Rand

	partStarts  []uint32
	numVertices int

	events chan ev
	quit   chan struct{}
	wg     sync.WaitGroup

	mu            sync.Mutex
	state         int
	attempt       int
	failovers     int64
	seats         []seat
	spares        []*wconn
	conns         []net.Conn // every accepted conn, for shutdown
	connSeq       int
	prepareStart  time.Duration
	attemptStart  time.Duration
	gatherStart   time.Duration
	failoverStart time.Duration // nonzero while a failover is in flight
	abortDeadline time.Duration
	finished      bool
	summary       *Summary
	err           error
}

// New validates the job, computes the partition, and binds the control
// listener. Run does the rest.
func New(opts Options) (*Coordinator, error) {
	if opts.Ranks < 1 {
		return nil, fmt.Errorf("coord: %d ranks", opts.Ranks)
	}
	if err := opts.Spec.Validate(); err != nil {
		return nil, err
	}
	if opts.ControlAddr == "" {
		opts.ControlAddr = "127.0.0.1:0"
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if opts.AbortAckTimeout <= 0 {
		opts.AbortAckTimeout = DefaultAbortAckTimeout
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	starts, numVertices, err := partitionSpec(&opts.Spec, opts.Ranks)
	if err != nil {
		return nil, err
	}
	wire := make([]uint32, len(starts))
	for i, v := range starts {
		wire[i] = uint32(v)
	}

	ln, err := net.Listen("tcp", opts.ControlAddr)
	if err != nil {
		return nil, fmt.Errorf("coord: control listen %s: %w", opts.ControlAddr, err)
	}
	return &Coordinator{
		opts:        opts,
		logf:        logf,
		ln:          ln,
		trace:       newCtlTrace(),
		nonceRng:    rng.New(opts.Spec.Seed ^ 0x6b6b636f6f7264), // "kkcoord"
		partStarts:  wire,
		numVertices: numVertices,
		events:      make(chan ev, 64),
		quit:        make(chan struct{}),
		seats:       make([]seat, opts.Ranks),
	}, nil
}

// Addr returns the bound control address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Run drives the job to completion (or failure) and returns the
// aggregated summary. It blocks; kkcoord calls it from main.
func (c *Coordinator) Run() (*Summary, error) {
	var admin *adminServer
	if c.opts.AdminAddr != "" {
		var err error
		admin, err = newAdminServer(c, c.opts.AdminAddr)
		if err != nil {
			return nil, err
		}
		c.logf("admin server on http://%s (/metrics /statusz /trace)", admin.addr())
		defer admin.close()
	}
	c.logf("control plane on %s: waiting for %d workers", c.Addr(), c.opts.Ranks)

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.acceptLoop()
	}()

	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()

	for {
		select {
		case e := <-c.events:
			c.mu.Lock()
			c.handle(e)
			c.mu.Unlock()
		case <-ticker.C:
			c.mu.Lock()
			c.onTick()
			c.mu.Unlock()
		}
		c.mu.Lock()
		fin, summary, err := c.finished, c.summary, c.err
		if fin {
			// Unblock every serveConn goroutine: further events are moot.
			for _, conn := range c.conns {
				_ = conn.Close() // idempotent; stop was already sent where it mattered
			}
		}
		c.mu.Unlock()
		if fin {
			close(c.quit)
			_ = c.ln.Close()
			c.wg.Wait()
			return summary, err
		}
	}
}

// acceptLoop admits control connections until the listener closes.
func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.conns = append(c.conns, conn)
		c.connSeq++
		id := c.connSeq
		c.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serveConn(id, conn)
		}()
	}
}

// serveConn performs the registration handshake and then pumps the
// connection's messages into the run loop.
func (c *Coordinator) serveConn(id int, conn net.Conn) {
	cc := newControlConn(conn)
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout)) //kk:nondet-ok control-plane deadline; never feeds walk state
	hello, err := cc.read()
	if err != nil || hello.Type != MsgHello {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	if hello.V != ProtoVersion {
		// The one negotiation rule: exact match, reject carries our
		// version so the worker can report both sides.
		_ = cc.write(Msg{Type: MsgReject, V: ProtoVersion,
			Err: fmt.Sprintf("protocol version %d not supported", hello.V)})
		_ = conn.Close()
		return
	}
	wc := &wconn{id: id, cc: cc, conn: conn, dataAddr: hello.DataAddr, rank: -1}
	select {
	case c.events <- ev{kind: evConn, wc: wc}:
	case <-c.quit:
		return
	}
	for {
		m, err := cc.read()
		if err != nil {
			select {
			case c.events <- ev{kind: evGone, wc: wc}:
			case <-c.quit:
			}
			return
		}
		select {
		case c.events <- ev{kind: evMsg, wc: wc, msg: m}:
		case <-c.quit:
			return
		}
	}
}

// handle consumes one event. Called with c.mu held, on the Run goroutine.
func (c *Coordinator) handle(e ev) {
	switch e.kind {
	case evConn:
		c.trace.point(-1, "worker %d registered (%s)", e.wc.id, e.wc.dataAddr)
		c.logf("worker %d registered, data plane %s", e.wc.id, e.wc.dataAddr)
		c.spares = append(c.spares, e.wc)
		c.reconcile()

	case evGone:
		if e.wc.rank >= 0 && c.seats[e.wc.rank].wc == e.wc {
			rank := e.wc.rank
			c.vacate(rank)
			c.logf("rank %d connection lost", rank)
			c.trace.point(rank, "down (connection lost)")
			switch c.state {
			case stPrepare, stRun:
				c.failover(fmt.Sprintf("rank %d connection lost", rank))
			case stAbort:
				c.checkAbortDone()
			}
			return
		}
		for i, sp := range c.spares {
			if sp == e.wc {
				c.spares = append(c.spares[:i], c.spares[i+1:]...)
				break
			}
		}

	case evMsg:
		c.handleMsg(e.wc, e.msg)
	}
}

func (c *Coordinator) handleMsg(wc *wconn, m Msg) {
	if wc.rank < 0 || c.seats[wc.rank].wc != wc {
		return // spare chatter or a vacated seat's stale message
	}
	s := &c.seats[wc.rank]
	switch m.Type {
	case MsgHeartbeat:
		s.lastBeat = c.trace.clock()
		if m.Attempt == c.attempt {
			s.superstep = m.Superstep
			s.walkers = m.Walkers
		}

	case MsgReady:
		if c.state != stPrepare || m.Attempt != c.attempt || s.phase != phPreparing {
			return
		}
		s.phase = phReady
		s.readyIter = m.ResumeIter
		s.lastBeat = c.trace.clock()
		c.maybeStart()

	case MsgDone:
		if m.Attempt != c.attempt || s.phase != phRunning {
			return
		}
		s.result = m.Result
		s.lastBeat = c.trace.clock()
		switch c.state {
		case stRun:
			s.phase = phDone
			c.logf("rank %d done (%d supersteps)", wc.rank, m.Result.Iterations)
			c.maybeFinish()
		case stAbort:
			// Finished as the epoch died: it will be re-run next attempt
			// (a deterministic rerun rewrites the same dump), so the seat
			// is simply idle again.
			s.phase = phIdle
			c.checkAbortDone()
		}

	case MsgFailed:
		if m.Attempt != c.attempt {
			return
		}
		switch c.state {
		case stAbort:
			if s.phase != phIdle {
				s.phase = phIdle
				c.checkAbortDone()
			}
		case stPrepare, stRun:
			if s.phase == phIdle {
				return
			}
			s.phase = phIdle
			c.logf("rank %d failed: %s", wc.rank, m.Err)
			c.trace.point(wc.rank, "failed: %s", m.Err)
			c.failover(fmt.Sprintf("rank %d failed: %s", wc.rank, m.Err))
		}
	}
}

// reconcile fills vacant seats from the spare pool and, once the cluster
// is whole while gathering, launches the next attempt.
func (c *Coordinator) reconcile() {
	if c.state != stGather {
		return
	}
	for rank := range c.seats {
		if c.seats[rank].wc != nil {
			continue
		}
		if len(c.spares) == 0 {
			return
		}
		wc := c.spares[0]
		c.spares = c.spares[1:]
		wc.rank = rank
		c.seats[rank] = seat{wc: wc, phase: phIdle, lastBeat: c.trace.clock()}
		c.logf("worker %d seated as rank %d", wc.id, rank)
	}
	c.beginAttempt()
}

// vacate empties a seat (its connection is gone or being cut).
func (c *Coordinator) vacate(rank int) {
	if wc := c.seats[rank].wc; wc != nil {
		wc.rank = -1
		_ = wc.conn.Close()
	}
	c.seats[rank] = seat{}
}

// beginAttempt hands every seat its rank for a fresh mesh epoch.
func (c *Coordinator) beginAttempt() {
	if c.attempt >= c.opts.MaxAttempts {
		c.failJob(fmt.Errorf("coord: giving up after %d attempts", c.attempt))
		return
	}
	c.attempt++
	resume := c.opts.Resume || c.attempt > 1
	nonce := c.nonceRng.Uint64() | 1 // the mesh treats nonce 0 as "no nonce"
	peers := make([]string, len(c.seats))
	for i := range c.seats {
		peers[i] = c.seats[i].wc.dataAddr
	}
	c.prepareStart = c.trace.clock()
	c.state = stPrepare
	c.logf("attempt %d: assigning %d ranks (resume=%v)", c.attempt, len(c.seats), resume)
	c.trace.point(-1, "attempt %d assign (resume=%v)", c.attempt, resume)
	for rank := range c.seats {
		s := &c.seats[rank]
		s.phase = phPreparing
		s.readyIter = 0
		s.superstep = 0
		s.result = nil
		s.lastBeat = c.trace.clock()
		_ = s.wc.cc.write(Msg{Type: MsgAssign, Assign: &Assignment{ // a dead conn surfaces as evGone
			Rank:            rank,
			Ranks:           len(c.seats),
			Attempt:         c.attempt,
			Nonce:           nonce,
			Peers:           peers,
			PartitionStarts: c.partStarts,
			Resume:          resume,
			Spec:            c.opts.Spec,
		}})
	}
}

// maybeStart releases the start barrier once every seat is ready — after
// verifying the ranks agree on the checkpoint superstep they restored.
// Disagreement means the shared checkpoint directory is giving different
// ranks different newest-complete answers (torn storage); rerunning would
// silently diverge, so it fails the job instead.
func (c *Coordinator) maybeStart() {
	for i := range c.seats {
		if c.seats[i].phase != phReady {
			return
		}
	}
	base := c.seats[0].readyIter
	for i := range c.seats {
		if c.seats[i].readyIter != base {
			c.failJob(fmt.Errorf("coord: checkpoint disagreement: rank 0 resumes at superstep %d but rank %d at %d",
				base, i, c.seats[i].readyIter))
			return
		}
	}
	c.trace.span(-1, c.prepareStart, "attempt %d prepare", c.attempt)
	if c.failoverStart != 0 {
		c.trace.span(-1, c.failoverStart, "failover %d: detect→resume", c.failovers)
		c.failoverStart = 0
	}
	c.attemptStart = c.trace.clock()
	c.state = stRun
	c.logf("attempt %d: all ranks ready at superstep %d, releasing start barrier", c.attempt, base)
	for i := range c.seats {
		c.seats[i].phase = phRunning
		c.seats[i].lastBeat = c.trace.clock()
		_ = c.seats[i].wc.cc.write(Msg{Type: MsgStart, Attempt: c.attempt})
	}
}

// maybeFinish aggregates and stops the cluster once every rank is done.
func (c *Coordinator) maybeFinish() {
	sum := &Summary{Attempts: c.attempt, Failovers: c.failovers}
	for i := range c.seats {
		if c.seats[i].phase != phDone || c.seats[i].result == nil {
			return
		}
		r := c.seats[i].result
		if r.Iterations > sum.Iterations {
			sum.Iterations = r.Iterations
		}
		sum.Steps += r.Steps
		sum.Terminations += r.Terminations
		sum.Messages += r.Messages
		sum.Bytes += r.Bytes
	}
	c.trace.span(-1, c.attemptStart, "attempt %d run", c.attempt)
	c.trace.point(-1, "job done")
	c.logf("job done: %d supersteps, %d steps, %d terminations (%d attempt(s), %d failover(s))",
		sum.Iterations, sum.Steps, sum.Terminations, sum.Attempts, sum.Failovers)
	c.broadcastStop()
	c.summary = sum
	c.state = stDone
	c.finished = true
}

// failover aborts the current attempt; the abort barrier completes in
// checkAbortDone and the next attempt launches from reconcile.
func (c *Coordinator) failover(reason string) {
	if c.state == stAbort || c.state == stDone {
		return
	}
	c.failovers++
	if c.failoverStart == 0 {
		c.failoverStart = c.trace.clock()
	}
	c.logf("failover %d: %s; aborting attempt %d", c.failovers, reason, c.attempt)
	c.trace.point(-1, "failover %d: %s", c.failovers, reason)
	c.state = stAbort
	c.abortDeadline = c.trace.clock() + c.opts.AbortAckTimeout
	for i := range c.seats {
		s := &c.seats[i]
		if s.wc == nil {
			continue
		}
		switch s.phase {
		case phPreparing, phReady, phRunning:
			_ = s.wc.cc.write(Msg{Type: MsgAbort, Attempt: c.attempt})
		case phDone:
			s.phase = phIdle // already finished; nothing to abort
		}
	}
	c.checkAbortDone()
}

// checkAbortDone closes the abort barrier once no seat is still inside
// the attempt, then regathers.
func (c *Coordinator) checkAbortDone() {
	if c.state != stAbort {
		return
	}
	for i := range c.seats {
		if c.seats[i].wc != nil && c.seats[i].phase != phIdle {
			return
		}
	}
	c.state = stGather
	c.gatherStart = c.trace.clock()
	c.logf("attempt %d fully aborted; regathering", c.attempt)
	c.reconcile()
}

// onTick sweeps liveness and deadline state.
func (c *Coordinator) onTick() {
	now := c.trace.clock()
	switch c.state {
	case stGather:
		if c.opts.GatherTimeout > 0 && now-c.gatherStart > c.opts.GatherTimeout {
			seated := 0
			for i := range c.seats {
				if c.seats[i].wc != nil {
					seated++
				}
			}
			if seated < len(c.seats) {
				c.failJob(fmt.Errorf("coord: only %d of %d workers registered within %v",
					seated, len(c.seats), c.opts.GatherTimeout))
			}
		}
	case stPrepare, stRun:
		for rank := range c.seats {
			s := &c.seats[rank]
			if s.wc == nil || now-s.lastBeat <= c.opts.HeartbeatTimeout {
				continue
			}
			c.logf("rank %d heartbeat stale (%v); declaring it dead", rank, now-s.lastBeat)
			c.trace.point(rank, "down (heartbeat timeout)")
			c.vacate(rank)
			c.failover(fmt.Sprintf("rank %d heartbeat timeout", rank))
			return // failover re-examined every seat; one sweep is enough
		}
	case stAbort:
		if now > c.abortDeadline {
			for rank := range c.seats {
				s := &c.seats[rank]
				if s.wc != nil && s.phase != phIdle {
					c.logf("rank %d ignored the abort for %v; cutting its connection", rank, c.opts.AbortAckTimeout)
					c.vacate(rank)
				}
			}
			c.checkAbortDone()
		}
	}
}

// failJob ends the job with an error.
func (c *Coordinator) failJob(err error) {
	c.logf("job failed: %v", err)
	c.broadcastStop()
	c.err = err
	c.state = stDone
	c.finished = true
}

// broadcastStop tells every connected worker — seated or spare — to exit.
func (c *Coordinator) broadcastStop() {
	for i := range c.seats {
		if wc := c.seats[i].wc; wc != nil {
			_ = wc.cc.write(Msg{Type: MsgStop}) // best-effort farewell
		}
	}
	for _, wc := range c.spares {
		_ = wc.cc.write(Msg{Type: MsgStop}) // best-effort farewell
	}
}
