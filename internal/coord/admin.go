package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"knightking/internal/obs"
)

// adminServer exposes the coordinator's cluster view:
//
//	/metrics  Prometheus text: kk_rank_up, kk_rank_heartbeat_age_seconds,
//	          kk_rank_superstep, kk_failover_total, kk_coord_attempt, ...
//	/statusz  JSON snapshot of seats, phases, and progress
//	/trace    the control-plane causal trace as Perfetto JSON
type adminServer struct {
	ln  net.Listener
	srv *http.Server
}

func newAdminServer(c *Coordinator, addr string) (*adminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coord: admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", c.serveMetrics)
	mux.HandleFunc("/statusz", c.serveStatusz)
	mux.HandleFunc("/trace", c.serveTrace)
	a := &adminServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { //kk:goro-ok joined out of band: Serve unblocks when close() shuts the server down
		_ = a.srv.Serve(ln) // always ErrServerClosed or the accept error; admin is best-effort
	}()
	return a, nil
}

func (a *adminServer) addr() string { return a.ln.Addr().String() }
func (a *adminServer) close()       { _ = a.srv.Close() }

// rankStatus is one seat's row in /statusz.
type rankStatus struct {
	Rank           int    `json:"rank"`
	Up             bool   `json:"up"`
	Worker         int    `json:"worker,omitempty"`
	DataAddr       string `json:"data_addr,omitempty"`
	Phase          string `json:"phase"`
	Superstep      int    `json:"superstep"`
	Walkers        int64  `json:"walkers"`
	HeartbeatAgeMS int64  `json:"heartbeat_age_ms"`
}

// statusz is the full /statusz document.
type statusz struct {
	State     string       `json:"state"`
	Attempt   int          `json:"attempt"`
	Failovers int64        `json:"failovers"`
	Ranks     []rankStatus `json:"ranks"`
	Spares    int          `json:"spares"`
}

// snapshot renders the coordinator's state under the mutex.
func (c *Coordinator) snapshot() statusz {
	now := c.trace.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := statusz{
		State:     stateNames[c.state],
		Attempt:   c.attempt,
		Failovers: c.failovers,
		Spares:    len(c.spares),
		Ranks:     make([]rankStatus, len(c.seats)),
	}
	for i := range c.seats {
		s := &c.seats[i]
		r := rankStatus{Rank: i, Phase: phaseNames[s.phase], Superstep: s.superstep, Walkers: s.walkers}
		if s.wc != nil {
			r.Up = true
			r.Worker = s.wc.id
			r.DataAddr = s.wc.dataAddr
			r.HeartbeatAgeMS = (now - s.lastBeat).Milliseconds()
		}
		st.Ranks[i] = r
	}
	return st
}

func (c *Coordinator) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	st := c.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	up := make([]obs.LabeledValue, len(st.Ranks))
	age := make([]obs.LabeledValue, 0, len(st.Ranks))
	step := make([]obs.LabeledValue, len(st.Ranks))
	for i, r := range st.Ranks {
		label := fmt.Sprintf("%d", r.Rank)
		v := int64(0)
		if r.Up {
			v = 1
			age = append(age, obs.LabeledValue{Label: label, Value: r.HeartbeatAgeMS / 1000})
		}
		up[i] = obs.LabeledValue{Label: label, Value: v}
		step[i] = obs.LabeledValue{Label: label, Value: int64(r.Superstep)}
	}
	_ = obs.WriteLabeledGauge(w, "kk_rank_up", "Whether a worker currently holds this rank.", "rank", up)
	_ = obs.WriteLabeledGauge(w, "kk_rank_heartbeat_age_seconds", "Seconds since this rank's last heartbeat.", "rank", age)
	_ = obs.WriteLabeledGauge(w, "kk_rank_superstep", "Last superstep barrier this rank reported.", "rank", step)
	_ = obs.WriteCounter(w, "kk_failover_total", "Failovers (attempt aborts due to a lost rank) so far.", st.Failovers)
	_ = obs.WriteGauge(w, "kk_coord_attempt", "Current mesh attempt number.", int64(st.Attempt))
	_ = obs.WriteGauge(w, "kk_coord_spares", "Registered workers not holding a rank.", int64(st.Spares))
	_ = obs.WriteGauge(w, "kk_coord_running", "Whether an attempt is currently running.", boolGauge(st.State == "running"))
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (c *Coordinator) serveStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.snapshot())
}

func (c *Coordinator) serveTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = c.trace.writePerfetto(w, len(c.seats))
}

// WriteTrace exports the control-plane trace (Perfetto JSON) — kkcoord's
// -trace flag writes it to a file at exit; /trace serves it live.
func (c *Coordinator) WriteTrace(w io.Writer) error {
	return c.trace.writePerfetto(w, len(c.seats))
}
