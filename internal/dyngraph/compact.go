package dyngraph

import (
	"knightking/internal/graph"
	"knightking/internal/sampling"
)

// testHookMidCompact, when set by tests, runs after the new base CSR is
// materialized but before the epoch is published — the window a crash
// test injects a panic into to prove published epochs are never torn.
var testHookMidCompact func()

// Compact folds the overlay into a fresh plain CSR and publishes it as
// a new epoch. The epoch content is exactly what loading the compacted
// edge list from scratch would produce — same graph.Fingerprint — and
// all maintained envelopes become tight again (the lazy-tighten step).
// A no-op returning the current epoch when there is nothing to fold.
//
// Crash safety: the current epoch pointer is the last thing written, so
// a failure anywhere in compaction leaves the previous epoch published
// and fully usable, and a retry starts from unchanged state.
func (d *DynGraph) Compact() (*Epoch, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked()
}

func (d *DynGraph) compactLocked() (*Epoch, error) {
	prev := d.cur.Load()
	if !prev.view.Overlaid() {
		return prev, nil
	}
	newBase := prev.view.Compacted()

	// Fold the sampler store: a compacted vertex's weights are exactly
	// its overlay segment's weights, so the overlay tables move into the
	// dense base table by pointer — no rebuild, still O(touched).
	var store *samplerView
	if prev.store != nil {
		tabs := append([]sampling.StaticSampler(nil), prev.store.base...)
		for i, v := range prev.store.verts {
			tabs[v] = prev.store.tabs[i]
		}
		store = &samplerView{kind: prev.kind, base: tabs}
	}

	if testHookMidCompact != nil {
		testHookMidCompact()
	}

	ep := &Epoch{
		seq:   prev.seq + 1,
		view:  newBase,
		fpSet: true,
		fp:    graph.Fingerprint(newBase),
		logFP: mixU64(prev.logFP, markCompact),
		kind:  prev.kind,
		store: store,
	}

	d.base = newBase
	d.verts, d.segs, d.envs = nil, nil, nil
	d.pending = 0
	d.compactions++
	d.cur.Store(ep)
	return ep, nil
}
