package dyngraph

import (
	"testing"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func runWalk(t *testing.T, ep *Epoch, program *core.Algorithm, seed uint64) *core.Result {
	t.Helper()
	res, err := core.Run(core.Config{
		Graph:       ep.View(),
		Algorithm:   program,
		NumWalkers:  300,
		NumNodes:    2,
		Seed:        seed,
		RecordPaths: true,
		Samplers:    ep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func samePaths(a, b [][]graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestWalkDeterminismAcrossEpochLifecycle is the PR's determinism pin:
// same epoch + same seed ⇒ bit-identical walk output, at the base
// epoch, after ingest (overlay view), and after compaction — for a
// first-order biased walk and for node2vec's second-order machinery.
func TestWalkDeterminismAcrossEpochLifecycle(t *testing.T) {
	base := gen.WithUniformWeights(gen.UniformDegree(80, 6, 91), 1, 5, 92)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	programs := map[string]func() *core.Algorithm{
		"deepwalk-biased": func() *core.Algorithm { return alg.DeepWalk(25, true) },
		"node2vec": func() *core.Algorithm {
			return alg.Node2Vec(alg.Node2VecParams{
				P: 2, Q: 0.5, Length: 25, Biased: true, LowerBound: true, FoldOutlier: true,
			})
		},
	}

	epochs := map[string]*Epoch{"base": d.Epoch()}
	batch := []Delta{
		{Src: 3, Dst: 40, Weight: 9}, // new max at 3: widens the envelope
		{Src: 40, Dst: 3, Weight: 9},
		{Op: OpDelete, Src: 5, Dst: base.Neighbors(5)[0]},
		{Src: 7, Dst: 8, Weight: 0.5},
		{Src: 8, Dst: 7, Weight: 0.5},
	}
	ep, err := d.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	epochs["after-ingest"] = ep
	ep, err = d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	epochs["after-compaction"] = ep

	for stage, ep := range epochs {
		for name, mk := range programs {
			a := runWalk(t, ep, mk(), 97)
			b := runWalk(t, ep, mk(), 97)
			if !samePaths(a.Paths, b.Paths) {
				t.Fatalf("%s/%s: same epoch + same seed produced different walks", stage, name)
			}
			c := runWalk(t, ep, mk(), 98)
			if samePaths(a.Paths, c.Paths) {
				t.Fatalf("%s/%s: different seeds produced identical walks (vacuous pin)", stage, name)
			}
		}
	}
}

// TestFirstOrderOverlayBitIdenticalToRebuilt: for first-order biased
// walks the overlay epoch and the from-scratch rebuilt CSR have
// identical sorted weights per vertex, hence identical sampler tables,
// hence bit-identical walks under the same seed — whether the epoch's
// prebuilt tables or local construction are used.
func TestFirstOrderOverlayBitIdenticalToRebuilt(t *testing.T) {
	base := gen.WithUniformWeights(gen.UniformDegree(60, 5, 101), 1, 5, 102)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := d.Apply([]Delta{
		{Src: 1, Dst: 30, Weight: 7}, {Src: 30, Dst: 1, Weight: 7},
		{Op: OpDelete, Src: 2, Dst: base.Neighbors(2)[1]},
		{Src: 2, Dst: 31, Weight: 2.5}, {Src: 31, Dst: 2, Weight: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := ep.View().Compacted()

	mk := func() *core.Algorithm { return alg.DeepWalk(30, true) }
	overlayRes := runWalk(t, ep, mk(), 103)
	plain, err := core.Run(core.Config{
		Graph: rebuilt, Algorithm: mk(), NumWalkers: 300, NumNodes: 2,
		Seed: 103, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !samePaths(overlayRes.Paths, plain.Paths) {
		t.Fatal("first-order walks on the overlay epoch diverge from the rebuilt-from-scratch CSR")
	}
}

// TestAllAlgorithmsRunOnEpochs: every production algorithm — DeepWalk,
// node2vec, meta-path, PPR — completes against an overlay epoch
// snapshot and behaves deterministically on it.
func TestAllAlgorithmsRunOnEpochs(t *testing.T) {
	base := gen.WithTypes(gen.WithUniformWeights(gen.UniformDegree(60, 6, 107), 1, 5, 108), 3, 109)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := d.Apply([]Delta{
		{Src: 0, Dst: 30, Weight: 3, Type: 1}, {Src: 30, Dst: 0, Weight: 3, Type: 1},
		{Op: OpDelete, Src: 4, Dst: base.Neighbors(4)[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ep.View().Overlaid() {
		t.Fatal("expected an overlay epoch")
	}
	programs := map[string]func() *core.Algorithm{
		"deepwalk": func() *core.Algorithm { return alg.DeepWalk(20, true) },
		"node2vec": func() *core.Algorithm {
			return alg.Node2Vec(alg.Node2VecParams{P: 4, Q: 0.25, Length: 20, Biased: true})
		},
		"metapath": func() *core.Algorithm {
			return alg.MetaPath([][]int32{{0, 1, 2}}, 20, true)
		},
		"ppr": func() *core.Algorithm { return alg.PPR(0.1, true, 200) },
	}
	for name, mk := range programs {
		a := runWalk(t, ep, mk(), 111)
		b := runWalk(t, ep, mk(), 111)
		if !samePaths(a.Paths, b.Paths) {
			t.Fatalf("%s: nondeterministic on an epoch snapshot", name)
		}
		if len(a.Paths) == 0 {
			t.Fatalf("%s: no walks recorded", name)
		}
	}
}
