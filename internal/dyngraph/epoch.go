package dyngraph

import (
	"fmt"
	"sort"
	"sync"

	"knightking/internal/graph"
	"knightking/internal/sampling"
)

// Epoch is one immutable published snapshot of a dynamic graph: a
// consistent graph view, its content fingerprint, the delta-log chain
// fingerprint, and the prebuilt per-vertex static sampler tables. Jobs
// pin the epoch they admit on and use it for their whole life; nothing
// a writer does later can disturb it.
//
// Epoch implements core.SamplerProvider, so the engine samples from the
// incrementally maintained tables instead of rebuilding them per run.
type Epoch struct {
	seq  uint64
	view *graph.Graph

	// fp is the O(V+E) content hash. Known at construction for epoch 0
	// and post-compaction epochs (fpSet); computed lazily on first query
	// for ingest epochs, so Apply stays O(affected-vertex) — the log
	// fingerprint, maintained in O(batch), is the eager identity.
	fpSet  bool
	fpOnce sync.Once
	fp     uint64

	logFP uint64
	kind  string
	store *samplerView

	deltaVerts int
	deltaEdges int64
}

// Seq returns the epoch sequence number (0 = the loaded base).
func (e *Epoch) Seq() uint64 { return e.seq }

// View returns the epoch's graph view. Plain CSR for epoch 0 and for
// every epoch right after a compaction; an overlay view otherwise.
func (e *Epoch) View() *graph.Graph { return e.view }

// Fingerprint returns the canonical content hash of the epoch:
// graph.Fingerprint of the compacted view, so it is representation-
// independent — an overlay epoch and the plain CSR holding the same
// edges hash identically, and ingest followed by compaction that lands
// back on the base content reports the base fingerprint. Computed on
// first call for ingest epochs and cached; safe from any goroutine.
func (e *Epoch) Fingerprint() uint64 {
	if !e.fpSet {
		e.fpOnce.Do(func() { e.fp = graph.Fingerprint(e.view.Compacted()) })
	}
	return e.fp
}

// LogFingerprint returns the delta-log chain hash: a pure function of
// the base fingerprint, every applied batch in order, and compaction
// points. Two services that ingested the same history agree on it even
// across restarts.
func (e *Epoch) LogFingerprint() uint64 { return e.logFP }

// DeltaStats reports the overlay size at this epoch: vertices with
// replacement segments, and the net edge delta versus the base.
func (e *Epoch) DeltaStats() (verts int, edges int64) {
	return e.deltaVerts, e.deltaEdges
}

// StaticSampler returns the prebuilt weight-proportional sampler for v,
// or nil when the epoch has none (unweighted graph, or a zero-degree
// vertex) and the caller should build its own. Implements the engine's
// SamplerProvider.
func (e *Epoch) StaticSampler(v graph.VertexID) sampling.StaticSampler {
	if e.store == nil {
		return nil
	}
	return e.store.sampler(v)
}

// StaticKind returns the sampler kind the tables were built with
// ("alias" or "its"); the engine only uses tables matching its own
// configured kind.
func (e *Epoch) StaticKind() string { return e.kind }

// samplerView is an epoch's per-vertex static sampler table: a dense
// base table (index = vertex) plus a sorted overlay list for vertices
// whose adjacency diverged from the base. Both levels are shared by
// pointer across epochs; an Apply only allocates tables for the
// vertices it touched.
type samplerView struct {
	kind string
	base []sampling.StaticSampler

	verts []graph.VertexID
	tabs  []sampling.StaticSampler
}

// sampler resolves v's table: overlay first, then base. nil for
// zero-degree vertices.
func (s *samplerView) sampler(v graph.VertexID) sampling.StaticSampler {
	i := sort.Search(len(s.verts), func(i int) bool { return s.verts[i] >= v })
	if i < len(s.verts) && s.verts[i] == v {
		return s.tabs[i]
	}
	return s.base[v]
}

// extend produces the next epoch's view over the updated overlay state:
// tables are rebuilt only where touched[i] is set (O(degree) each);
// every other overlay vertex keeps the previous epoch's table by
// pointer lookup. nil receiver (unweighted graph) stays nil.
func (s *samplerView) extend(verts []graph.VertexID, segs [][]edgeRec, touched []bool, kind string) (*samplerView, error) {
	if s == nil {
		return nil, nil
	}
	out := &samplerView{
		kind:  kind,
		base:  s.base,
		verts: verts,
		tabs:  make([]sampling.StaticSampler, len(verts)),
	}
	weights := make([]float32, 0, 64)
	for i, v := range verts {
		if !touched[i] {
			out.tabs[i] = s.sampler(v)
			continue
		}
		seg := segs[i]
		if len(seg) == 0 {
			continue // zero-degree: no table, like the base convention
		}
		weights = weights[:0]
		for _, e := range seg {
			weights = append(weights, e.w)
		}
		tab, err := buildTable(kind, weights)
		if err != nil {
			return nil, fmt.Errorf("dyngraph: rebuild sampler of vertex %d: %w", v, err)
		}
		out.tabs[i] = tab
	}
	return out, nil
}
