package dyngraph

import (
	"math/rand"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

// model is the correctness oracle: a naive mutable edge set rebuilt from
// scratch into a CSR with the Builder, compared against the incremental
// overlay by fingerprint.
type model struct {
	n        int
	weighted bool
	typed    bool
	edges    map[uint64]graph.Edge // src<<32|dst → edge
}

func modelOf(g *graph.Graph) *model {
	m := &model{
		n:        g.NumVertices(),
		weighted: g.Weighted(),
		typed:    g.Typed(),
		edges:    make(map[uint64]graph.Edge),
	}
	for v := 0; v < m.n; v++ {
		for i := 0; i < g.Degree(graph.VertexID(v)); i++ {
			e := g.EdgeAt(graph.VertexID(v), i)
			m.edges[uint64(v)<<32|uint64(e.Dst)] = e
		}
	}
	return m
}

// apply mirrors DynGraph.Apply's semantics (upsert insert, strict
// delete); returns false when the batch must fail.
func (m *model) apply(batch []Delta) bool {
	for _, d := range batch {
		if int(d.Src) >= m.n || int(d.Dst) >= m.n {
			return false
		}
		key := uint64(d.Src)<<32 | uint64(d.Dst)
		switch d.Op {
		case OpDelete:
			if _, ok := m.edges[key]; !ok {
				return false
			}
			delete(m.edges, key)
		default:
			w := d.Weight
			if !m.weighted {
				if w != 0 && w != 1 {
					return false
				}
				w = 1
			} else if !(w > 0) {
				return false
			}
			if !m.typed && d.Type != 0 {
				return false
			}
			m.edges[key] = graph.Edge{Dst: d.Dst, Weight: w, Type: d.Type}
		}
	}
	return true
}

// rebuild constructs the from-scratch CSR the overlay must match.
func (m *model) rebuild() *graph.Graph {
	b := graph.NewBuilder(m.n)
	for key, e := range m.edges {
		src := graph.VertexID(key >> 32)
		switch {
		case m.typed:
			b.AddTypedEdge(src, e.Dst, e.Weight, e.Type)
		case m.weighted:
			b.AddWeightedEdge(src, e.Dst, e.Weight)
		default:
			b.AddEdge(src, e.Dst)
		}
	}
	return b.Build()
}

func weightedBase(t *testing.T, n, deg int, seed uint64) *graph.Graph {
	t.Helper()
	return gen.WithUniformWeights(gen.UniformDegree(n, deg, seed), 1, 5, seed+1)
}

// randomBatch produces a valid batch against the model: mostly upserts,
// some deletes of existing edges.
func randomBatch(r *rand.Rand, m *model, size int) []Delta {
	batch := make([]Delta, 0, size)
	keys := make([]uint64, 0, len(m.edges))
	for k := range m.edges {
		keys = append(keys, k)
	}
	for len(batch) < size {
		if len(keys) > 0 && r.Intn(4) == 0 {
			k := keys[r.Intn(len(keys))]
			d := Delta{Op: OpDelete, Src: graph.VertexID(k >> 32), Dst: graph.VertexID(k)}
			// Avoid double-deleting within one batch (the model would
			// reject what DynGraph rejects too, but keep batches valid).
			dup := false
			for _, prev := range batch {
				if prev.Op == OpDelete && prev.Src == d.Src && prev.Dst == d.Dst {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			batch = append(batch, d)
			continue
		}
		d := Delta{
			Op:  OpInsert,
			Src: graph.VertexID(r.Intn(m.n)),
			Dst: graph.VertexID(r.Intn(m.n)),
		}
		if m.weighted {
			d.Weight = float32(r.Float64()*9 + 1)
		}
		batch = append(batch, d)
	}
	return batch
}

// TestApplyMatchesRebuilt is the oracle test: after each random batch
// the epoch's overlay view, compacted, must fingerprint identically to
// the CSR rebuilt from scratch from the same edge set — for weighted
// and unweighted bases.
func TestApplyMatchesRebuilt(t *testing.T) {
	for _, tc := range []struct {
		name string
		base *graph.Graph
	}{
		{"weighted", weightedBase(t, 80, 6, 11)},
		{"unweighted", gen.UniformDegree(80, 6, 13)},
		{"typed", gen.WithTypes(gen.WithUniformWeights(gen.UniformDegree(80, 6, 17), 1, 4, 18), 3, 19)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := New(tc.base, Options{})
			if err != nil {
				t.Fatal(err)
			}
			m := modelOf(tc.base)
			r := rand.New(rand.NewSource(23))
			for round := 0; round < 8; round++ {
				batch := randomBatch(r, m, 40)
				if !m.apply(batch) {
					t.Fatalf("round %d: model rejected a generated batch", round)
				}
				ep, err := d.Apply(batch)
				if err != nil {
					t.Fatalf("round %d: Apply: %v", round, err)
				}
				if err := ep.View().Validate(); err != nil {
					t.Fatalf("round %d: view invalid: %v", round, err)
				}
				want := m.rebuild()
				if graph.Fingerprint(ep.View().Compacted()) != graph.Fingerprint(want) {
					t.Fatalf("round %d: overlay view diverged from the rebuilt-from-scratch CSR", round)
				}
				if ep.Seq() != uint64(round+1) {
					t.Fatalf("round %d: epoch seq %d", round, ep.Seq())
				}
			}
			// Compaction lands on the exact rebuilt fingerprint too.
			ep, err := d.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if ep.View().Overlaid() {
				t.Fatal("compacted epoch still an overlay")
			}
			if graph.Fingerprint(ep.View()) != graph.Fingerprint(m.rebuild()) {
				t.Fatal("compacted CSR differs from the rebuilt-from-scratch CSR")
			}
		})
	}
}

// TestEpochImmutability: an epoch captured before later Applies and a
// Compact still reads the data it was published with.
func TestEpochImmutability(t *testing.T) {
	base := weightedBase(t, 40, 4, 29)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep0 := d.Epoch()
	fp0 := ep0.Fingerprint()
	deg0 := ep0.View().Degree(3)

	if _, err := d.Apply([]Delta{{Src: 3, Dst: 7, Weight: 2}, {Src: 3, Dst: 9, Weight: 4}}); err != nil {
		t.Fatal(err)
	}
	ep1 := d.Epoch()
	if _, err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply([]Delta{{Op: OpDelete, Src: 3, Dst: 7}}); err != nil {
		t.Fatal(err)
	}

	if ep0.Fingerprint() != fp0 || graph.Fingerprint(ep0.View()) != fp0 {
		t.Fatal("epoch 0 content changed under later writes")
	}
	if ep0.View().Degree(3) != deg0 {
		t.Fatal("epoch 0 adjacency changed under later writes")
	}
	if ep1.View().Degree(3) != deg0+2 {
		t.Fatalf("epoch 1 degree %d, want %d", ep1.View().Degree(3), deg0+2)
	}
	if !ep1.View().HasEdge(3, 7) {
		t.Fatal("epoch 1 lost its inserted edge after compaction + delete")
	}
	if d.Epoch().View().HasEdge(3, 7) {
		t.Fatal("current epoch still has the deleted edge")
	}
}

// TestApplyErrors: invalid batches are rejected atomically — the epoch
// and the working state stay exactly as before.
func TestApplyErrors(t *testing.T) {
	base := weightedBase(t, 20, 4, 31)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply([]Delta{{Src: 1, Dst: 2, Weight: 3}}); err != nil {
		t.Fatal(err)
	}
	before := d.Epoch()

	bad := [][]Delta{
		nil,                                          // empty batch
		{{Src: 99, Dst: 0, Weight: 1}},               // src out of range
		{{Src: 0, Dst: 99, Weight: 1}},               // dst out of range
		{{Src: 0, Dst: 1}},                           // zero weight on weighted graph
		{{Src: 0, Dst: 1, Weight: -2}},               // negative weight
		{{Src: 0, Dst: 1, Weight: 1, Type: 2}},       // type on untyped graph
		{{Op: "replace", Src: 0, Dst: 1, Weight: 1}}, // unknown op
		{{Src: 4, Dst: 5, Weight: 1}, {Op: OpDelete, Src: 4, Dst: 6}}, // delete missing, after a valid insert
	}
	for i, batch := range bad {
		if _, err := d.Apply(batch); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	if d.Epoch() != before {
		t.Fatal("failed batches must not publish an epoch")
	}
	// The partially-applied insert of the last bad batch must not leak:
	// 4->5 was inserted before the failing delete.
	if d.Epoch().View().HasEdge(4, 5) && !base.HasEdge(4, 5) {
		t.Fatal("failed batch leaked a partial insert")
	}
	m := d.Metrics()
	if m.AppliedBatches != 1 || m.AppliedDeltas != 1 {
		t.Fatalf("metrics counted failed batches: %+v", m)
	}
}

// TestAutoCompactThreshold pins the exact trigger point: crossing
// CompactAfter folds the overlay within the same Apply call.
func TestAutoCompactThreshold(t *testing.T) {
	base := weightedBase(t, 30, 4, 37)
	d, err := New(base, Options{CompactAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := d.Apply([]Delta{{Src: 0, Dst: 5, Weight: 1}, {Src: 1, Dst: 5, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !ep.View().Overlaid() {
		t.Fatal("compacted below the threshold")
	}
	ep, err = d.Apply([]Delta{{Src: 2, Dst: 5, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ep.View().Overlaid() {
		t.Fatal("did not auto-compact at the threshold")
	}
	if m := d.Metrics(); m.Compactions != 1 || m.PendingDeltas != 0 {
		t.Fatalf("metrics after auto-compaction: %+v", m)
	}
}

// TestLogFingerprint: the delta-log chain is a pure function of the
// ingest history — same history agrees, different order differs, and
// compaction points are part of the identity.
func TestLogFingerprint(t *testing.T) {
	base := weightedBase(t, 20, 4, 41)
	mk := func() *DynGraph {
		d, err := New(base, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	b1 := []Delta{{Src: 1, Dst: 2, Weight: 3}}
	b2 := []Delta{{Src: 4, Dst: 5, Weight: 6}}

	d1, d2, d3 := mk(), mk(), mk()
	for _, b := range [][]Delta{b1, b2} {
		if _, err := d1.Apply(b); err != nil {
			t.Fatal(err)
		}
		if _, err := d2.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range [][]Delta{b2, b1} { // reversed
		if _, err := d3.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if d1.Epoch().LogFingerprint() != d2.Epoch().LogFingerprint() {
		t.Fatal("same ingest history, different log fingerprints")
	}
	if d1.Epoch().LogFingerprint() == d3.Epoch().LogFingerprint() {
		t.Fatal("reordered ingest history, same log fingerprint")
	}
	// Content fingerprints of d1 and d3 agree (same final edge set, both
	// orders); the log fingerprint is the finer identity.
	if graph.Fingerprint(d1.Epoch().View().Compacted()) != graph.Fingerprint(d3.Epoch().View().Compacted()) {
		t.Fatal("order-independent batches should reach the same content")
	}
	if _, err := d1.Compact(); err != nil {
		t.Fatal(err)
	}
	if d1.Epoch().LogFingerprint() == d2.Epoch().LogFingerprint() {
		t.Fatal("compaction must advance the log fingerprint")
	}
}

// TestCrashDuringCompaction: a crash after the new CSR is built but
// before publication leaves the published epoch untorn and fully
// usable, and a retry succeeds from clean state.
func TestCrashDuringCompaction(t *testing.T) {
	base := weightedBase(t, 30, 4, 43)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply([]Delta{{Src: 2, Dst: 9, Weight: 7}}); err != nil {
		t.Fatal(err)
	}
	before := d.Epoch()
	beforeFP := before.Fingerprint()

	testHookMidCompact = func() { panic("injected compaction crash") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not propagate")
			}
		}()
		_, _ = d.Compact()
	}()
	testHookMidCompact = nil

	// The published epoch is exactly what it was: same pointer, same
	// content, still walkable.
	if d.Epoch() != before {
		t.Fatal("crashed compaction published an epoch")
	}
	if graph.Fingerprint(d.Epoch().View().Compacted()) != beforeFP {
		t.Fatal("crashed compaction tore the published view")
	}
	if !d.Epoch().View().HasEdge(2, 9) {
		t.Fatal("crashed compaction lost the ingested edge")
	}

	// Retry from unchanged state: the compaction completes and matches
	// the rebuilt-from-scratch content.
	ep, err := d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if ep.View().Overlaid() || !ep.View().HasEdge(2, 9) {
		t.Fatal("retried compaction produced a wrong view")
	}
	if graph.Fingerprint(ep.View()) != graph.Fingerprint(before.View().Compacted()) {
		t.Fatal("retried compaction content differs from the pre-crash view")
	}
	// And the dynamic graph still ingests normally afterwards.
	if _, err := d.Apply([]Delta{{Src: 1, Dst: 9, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
}

// TestSamplerTablesMatchRebuilt: the incrementally maintained per-vertex
// tables are content-identical to tables built from the rebuilt graph's
// weights — for touched and untouched vertices, before and after
// compaction, for both sampler kinds.
func TestSamplerTablesMatchRebuilt(t *testing.T) {
	for _, kind := range []string{"alias", "its"} {
		t.Run(kind, func(t *testing.T) {
			base := weightedBase(t, 50, 5, 47)
			d, err := New(base, Options{SamplerKind: kind})
			if err != nil {
				t.Fatal(err)
			}
			m := modelOf(base)
			r := rand.New(rand.NewSource(53))
			for round := 0; round < 4; round++ {
				batch := randomBatch(r, m, 25)
				if !m.apply(batch) {
					t.Fatal("model rejected batch")
				}
				if _, err := d.Apply(batch); err != nil {
					t.Fatal(err)
				}
				assertTablesMatch(t, d.Epoch(), m.rebuild(), kind)
			}
			if _, err := d.Compact(); err != nil {
				t.Fatal(err)
			}
			assertTablesMatch(t, d.Epoch(), m.rebuild(), kind)
		})
	}
}

func assertTablesMatch(t *testing.T, ep *Epoch, want *graph.Graph, kind string) {
	t.Helper()
	if ep.StaticKind() != kind {
		t.Fatalf("StaticKind = %q, want %q", ep.StaticKind(), kind)
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := graph.VertexID(v)
		tab := ep.StaticSampler(id)
		deg := want.Degree(id)
		if deg == 0 {
			if tab != nil {
				t.Fatalf("vertex %d: table for a zero-degree vertex", v)
			}
			continue
		}
		if tab == nil {
			t.Fatalf("vertex %d: missing table (deg %d)", v, deg)
		}
		if tab.N() != deg {
			t.Fatalf("vertex %d: table over %d items, degree %d", v, tab.N(), deg)
		}
		ws := want.Weights(id)
		for i := 0; i < deg; i++ {
			if tab.WeightAt(i) != float64(ws[i]) {
				t.Fatalf("vertex %d item %d: table weight %v, rebuilt weight %v",
					v, i, tab.WeightAt(i), ws[i])
			}
		}
	}
}

// TestUnweightedHasNoStore: unweighted graphs carry no prebuilt tables
// (the engine's uniform sampler is cheaper than any lookup).
func TestUnweightedHasNoStore(t *testing.T) {
	d, err := New(gen.UniformDegree(20, 4, 59), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch().StaticSampler(0) != nil {
		t.Fatal("unweighted epoch returned a static sampler")
	}
	if _, err := d.Apply([]Delta{{Src: 0, Dst: 9}}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch().StaticSampler(0) != nil {
		t.Fatal("unweighted epoch returned a static sampler after ingest")
	}
}

// TestNewRejectsBadBases pins the constructor guards.
func TestNewRejectsBadBases(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil base accepted")
	}
	base := weightedBase(t, 10, 3, 61)
	if _, err := New(base, Options{SamplerKind: "bogus"}); err == nil {
		t.Fatal("bad sampler kind accepted")
	}
	if _, err := New(base, Options{CompactAfter: -1}); err == nil {
		t.Fatal("negative CompactAfter accepted")
	}
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := d.Apply([]Delta{{Src: 0, Dst: 5, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ep.View(), Options{}); err == nil {
		t.Fatal("overlay view accepted as a base")
	}
	if _, err := New(graph.Subgraph(base, 0, 5), Options{}); err == nil {
		t.Fatal("partition slice accepted as a base")
	}
}
