package dyngraph

import (
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

// FuzzApplyDeltas drives random insert/delete batches through Apply and
// checks the overlay view against the rebuilt-from-scratch CSR oracle:
// Apply must never panic, must reject exactly what the naive model
// rejects, and on success the epoch's compacted view must fingerprint
// identically to the rebuilt graph while staying structurally valid.
func FuzzApplyDeltas(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x40})
	f.Add([]byte{0x81, 0x02, 0x01, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		base := gen.WithUniformWeights(gen.UniformDegree(24, 4, 127), 1, 5, 128)
		d, err := New(base, Options{CompactAfter: 32})
		if err != nil {
			t.Fatal(err)
		}
		m := modelOf(base)

		// Decode data into batches: each 4-byte group is one delta
		// (op/batch-break, src, dst, weight quarter-steps); a high op bit
		// ends the current batch.
		var batch []Delta
		flush := func() {
			if len(batch) == 0 {
				return
			}
			ok := m.apply(batch)
			ep, err := d.Apply(batch)
			if ok != (err == nil) {
				t.Fatalf("model says valid=%v, Apply says err=%v (batch %+v)", ok, err, batch)
			}
			if err == nil {
				view := ep.View()
				if verr := view.Validate(); verr != nil {
					t.Fatalf("published view invalid: %v", verr)
				}
				if graph.Fingerprint(view.Compacted()) != graph.Fingerprint(m.rebuild()) {
					t.Fatalf("overlay view diverged from rebuilt CSR after batch %+v", batch)
				}
			} else {
				// Failed batches must keep the model in sync: rebuild the
				// model from the current epoch.
				m = modelOf(d.Epoch().View())
			}
			batch = nil
		}
		for i := 0; i+4 <= len(data) && i < 4*64; i += 4 {
			op, src, dst, wq := data[i], data[i+1], data[i+2], data[i+3]
			del := Delta{
				Src:    graph.VertexID(src % 26), // occasionally out of range
				Dst:    graph.VertexID(dst % 26),
				Weight: float32(wq%20) * 0.25, // occasionally zero (invalid)
			}
			if op&1 != 0 {
				del.Op = OpDelete
				del.Weight = 0
			}
			batch = append(batch, del)
			if op&0x80 != 0 {
				flush()
			}
		}
		flush()

		// Final compaction must land exactly on the rebuilt content.
		ep, err := d.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if graph.Fingerprint(ep.View()) != graph.Fingerprint(m.rebuild()) {
			t.Fatal("compacted CSR diverged from rebuilt CSR")
		}
	})
}
