package dyngraph

import (
	"math"
	"testing"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

// looseEpoch builds a dynamic graph whose published epoch has
// deliberately loose envelopes: big-weight edges are ingested and then
// deleted, so every touched vertex's maintained Q(v) stays far above
// its true maximum until compaction. Walks must still be exactly
// distributed — the loose bound may only cost trials.
func looseEpoch(t *testing.T) (*Epoch, *graph.Graph) {
	t.Helper()
	base := gen.WithUniformWeights(gen.UniformDegree(60, 6, 113), 1, 5, 114)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var widen, shrink []Delta
	for v := graph.VertexID(0); v < 20; v++ {
		dst := graph.VertexID(40 + v%15)
		if base.HasEdge(v, dst) || v == dst {
			continue
		}
		widen = append(widen, Delta{Src: v, Dst: dst, Weight: 25})
		shrink = append(shrink, Delta{Op: OpDelete, Src: v, Dst: dst})
	}
	// Also reshape some adjacency for real: inserts that stay.
	widen = append(widen,
		Delta{Src: 3, Dst: 33, Weight: 4}, Delta{Src: 33, Dst: 3, Weight: 4},
		Delta{Src: 9, Dst: 39, Weight: 2}, Delta{Src: 39, Dst: 9, Weight: 2},
	)
	if _, err := d.Apply(widen); err != nil {
		t.Fatal(err)
	}
	ep, err := d.Apply(shrink)
	if err != nil {
		t.Fatal(err)
	}
	if !ep.View().Overlaid() {
		t.Fatal("expected an overlay epoch")
	}
	// Sanity: the loose bound is visible — some vertex's MaxWeight is far
	// above every live weight.
	loose := false
	for v := graph.VertexID(0); v < 20; v++ {
		if ep.View().MaxWeight(v) >= 25 {
			loose = true
		}
	}
	if !loose {
		t.Fatal("fixture failed to produce a loose envelope")
	}
	return ep, ep.View().Compacted()
}

// TestFirstOrderChiSquareOverlayVsRebuilt: first-order biased walks on
// the overlay epoch are chi-square tested against the exact transition
// distribution of the equivalently rebuilt-from-scratch CSR — next
// vertex ∝ edge weight.
func TestFirstOrderChiSquareOverlayVsRebuilt(t *testing.T) {
	ep, rebuilt := looseEpoch(t)
	res, err := core.Run(core.Config{
		Graph:       ep.View(),
		Algorithm:   alg.DeepWalk(40, true),
		NumWalkers:  2500,
		NumNodes:    2,
		Seed:        117,
		RecordPaths: true,
		Samplers:    ep,
	})
	if err != nil {
		t.Fatal(err)
	}

	observed := make(map[graph.VertexID]map[graph.VertexID]int)
	for _, path := range res.Paths {
		for i := 0; i+1 < len(path); i++ {
			m := observed[path[i]]
			if m == nil {
				m = make(map[graph.VertexID]int)
				observed[path[i]] = m
			}
			m[path[i+1]]++
		}
	}

	var chi2 float64
	df, contexts := 0, 0
	for cur, counts := range observed {
		n := 0
		for _, c := range counts {
			n += c
		}
		adj := rebuilt.Neighbors(cur)
		ws := rebuilt.Weights(cur)
		total := 0.0
		for _, w := range ws {
			total += float64(w)
		}
		minExp := math.Inf(1)
		for _, w := range ws {
			if e := float64(n) * float64(w) / total; e < minExp {
				minExp = e
			}
		}
		if minExp < 5 {
			continue
		}
		for i, x := range adj {
			e := float64(n) * float64(ws[i]) / total
			d := float64(counts[x]) - e
			chi2 += d * d / e
		}
		df += len(adj) - 1
		contexts++
	}
	if contexts < 40 {
		t.Fatalf("only %d contexts had enough mass", contexts)
	}
	limit := float64(df) + 6*math.Sqrt(2*float64(df))
	t.Logf("chi2 = %.1f over df = %d (%d contexts), limit %.1f", chi2, df, contexts, limit)
	if chi2 > limit {
		t.Fatalf("chi2 = %.1f exceeds %.1f: overlay-epoch walks deviate from the rebuilt CSR's transition law", chi2, limit)
	}
	if chi2 < float64(df)-6*math.Sqrt(2*float64(df)) {
		t.Fatalf("chi2 = %.1f implausibly small for df = %d", chi2, df)
	}
}

// TestNode2vecChiSquareOverlayVsRebuilt: the second-order check. On the
// loose-envelope overlay epoch, node2vec transitions (with outlier
// folding and lower-bound pre-acceptance, i.e. the full rejection
// geometry built from the maintained Q(v)) must match the closed-form
// distribution computed from the rebuilt CSR: weight(x) ∝ W(cur,x) ·
// (1/p·[x=prev] + 1·[prev~x] + 1/q·[otherwise]).
func TestNode2vecChiSquareOverlayVsRebuilt(t *testing.T) {
	const p, q = 2.0, 0.5
	ep, rebuilt := looseEpoch(t)
	res, err := core.Run(core.Config{
		Graph: ep.View(),
		Algorithm: alg.Node2Vec(alg.Node2VecParams{
			P: p, Q: q, Length: 48, Biased: true, LowerBound: true, FoldOutlier: true,
		}),
		NumWalkers:  2500,
		NumNodes:    2,
		Seed:        119,
		RecordPaths: true,
		Samplers:    ep,
	})
	if err != nil {
		t.Fatal(err)
	}

	type context struct{ prev, cur graph.VertexID }
	observed := make(map[context]map[graph.VertexID]int)
	for _, path := range res.Paths {
		for i := 1; i+1 < len(path); i++ {
			ctx := context{path[i-1], path[i]}
			m := observed[ctx]
			if m == nil {
				m = make(map[graph.VertexID]int)
				observed[ctx] = m
			}
			m[path[i+1]]++
		}
	}

	invP, invQ := 1/p, 1/q
	var chi2 float64
	df, contexts, skipped := 0, 0, 0
	for ctx, counts := range observed {
		n := 0
		for _, c := range counts {
			n += c
		}
		adj := rebuilt.Neighbors(ctx.cur)
		ws := rebuilt.Weights(ctx.cur)
		probs := make(map[graph.VertexID]float64)
		total := 0.0
		for i, x := range adj {
			var pd float64
			switch {
			case x == ctx.prev:
				pd = invP
			case rebuilt.HasEdge(ctx.prev, x):
				pd = 1
			default:
				pd = invQ
			}
			w := pd * float64(ws[i])
			probs[x] += w
			total += w
		}
		minExp := math.Inf(1)
		for _, w := range probs {
			if e := float64(n) * w / total; e < minExp {
				minExp = e
			}
		}
		if minExp < 5 {
			skipped++
			continue
		}
		for x, w := range probs {
			e := float64(n) * w / total
			d := float64(counts[x]) - e
			chi2 += d * d / e
		}
		df += len(probs) - 1
		contexts++
	}
	if contexts < 100 {
		t.Fatalf("only %d contexts had enough mass (%d skipped); increase walkers", contexts, skipped)
	}
	limit := float64(df) + 6*math.Sqrt(2*float64(df))
	t.Logf("chi2 = %.1f over df = %d (%d contexts, %d skipped), limit %.1f", chi2, df, contexts, skipped, limit)
	if chi2 > limit {
		t.Fatalf("chi2 = %.1f exceeds %.1f: second-order walks on the loose-envelope epoch deviate from the rebuilt CSR's law", chi2, limit)
	}
	if chi2 < float64(df)-6*math.Sqrt(2*float64(df)) {
		t.Fatalf("chi2 = %.1f implausibly small for df = %d", chi2, df)
	}
}
