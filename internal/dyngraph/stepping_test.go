package dyngraph

// Interleaved-vs-scalar equivalence on epoch snapshots: the stepping
// pipeline's determinism contract must hold when the graph is an overlay
// view with epoch-pinned incremental samplers, where gather-stage loads go
// through the delta layer instead of the flat CSR.

import (
	"testing"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/stats"
)

func runWalkStepping(t *testing.T, ep *Epoch, program *core.Algorithm, seed uint64, stepping string, batch int) *core.Result {
	t.Helper()
	res, err := core.Run(core.Config{
		Graph:       ep.View(),
		Algorithm:   program,
		NumWalkers:  300,
		NumNodes:    2,
		Seed:        seed,
		RecordPaths: true,
		Samplers:    ep,
		Stepping:    stepping,
		BatchSize:   batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInterleavedMatchesScalarOnEpochs pins bit-identity of interleaved
// and scalar stepping on a live overlay epoch, for first-order biased and
// second-order node2vec walks, at a batch size that misaligns against the
// walker list.
func TestInterleavedMatchesScalarOnEpochs(t *testing.T) {
	base := gen.WithUniformWeights(gen.UniformDegree(80, 6, 121), 1, 5, 122)
	d, err := New(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := d.Apply([]Delta{
		{Src: 3, Dst: 40, Weight: 9}, {Src: 40, Dst: 3, Weight: 9},
		{Op: OpDelete, Src: 5, Dst: base.Neighbors(5)[0]},
		{Src: 7, Dst: 8, Weight: 0.5}, {Src: 8, Dst: 7, Weight: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ep.View().Overlaid() {
		t.Fatal("expected an overlay epoch")
	}

	programs := map[string]func() *core.Algorithm{
		"deepwalk-biased": func() *core.Algorithm { return alg.DeepWalk(25, true) },
		"node2vec": func() *core.Algorithm {
			return alg.Node2Vec(alg.Node2VecParams{
				P: 2, Q: 0.5, Length: 25, Biased: true, LowerBound: true, FoldOutlier: true,
			})
		},
	}
	for name, mk := range programs {
		scalar := runWalkStepping(t, ep, mk(), 127, core.SteppingScalar, 0)
		if scalar.Counters.Steps == 0 {
			t.Fatalf("%s: no steps taken; equivalence is vacuous", name)
		}
		for _, batch := range []int{3, 256} {
			got := runWalkStepping(t, ep, mk(), 127, core.SteppingInterleaved, batch)
			if !samePaths(scalar.Paths, got.Paths) {
				t.Errorf("%s/batch=%d: interleaved walks on the epoch diverge from scalar", name, batch)
			}
			// Timing counters (ExchangeNanos etc.) are wall-clock and excluded;
			// everything the sampler touches must match exactly.
			w, c := scalar.Counters, got.Counters
			deterministic := func(s stats.Snapshot) [6]int64 {
				return [6]int64{s.Steps, s.Trials, s.EdgeProbEvals, s.PreAccepts, s.Queries, s.Terminations}
			}
			if deterministic(w) != deterministic(c) {
				t.Errorf("%s/batch=%d: counters differ: scalar %+v, interleaved %+v", name, batch, w, c)
			}
		}
	}
}
