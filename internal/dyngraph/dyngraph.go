// Package dyngraph adds dynamic graphs to the engine: a mutable delta
// layer over the immutable CSR with an epoch/snapshot model. Writers
// apply batches of edge insertions and deletions; each batch publishes a
// new immutable Epoch whose view is a graph.Graph overlay (per-vertex
// replacement segments over the shared base arrays), while walks keep
// running against whichever epoch they admitted on. A compactor folds
// the overlay into a fresh plain CSR once it grows past a threshold.
//
// The part that makes this cheap is *incremental* sampler maintenance,
// following the factorization insight of Bingo (PAPERS.md): the static
// alias/ITS tables and the rejection envelopes Q(v)/L(v) are per-vertex,
// so an ingested edge only invalidates the structures of its source
// vertex. Apply rebuilds exactly the touched vertices' tables (O(degree)
// each) and widens their envelopes in O(1); untouched vertices share
// their tables with the previous epoch by pointer. Deletions leave the
// envelope loose-but-valid (rejection sampling stays exact, it just
// burns extra trials) and compaction tightens everything back.
//
// Determinism contract: same epoch + same seed ⇒ bit-identical walks.
// The package therefore keeps every structure in sorted slices — no maps
// anywhere on the apply/compact path — and carries no clocks; timing
// belongs to the serving layer.
package dyngraph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"knightking/internal/graph"
	"knightking/internal/sampling"
)

// Op is a delta operation kind.
type Op string

const (
	// OpInsert adds the edge, or re-weights it if it already exists
	// (upsert). The empty string means insert too, so plain JSON edge
	// lists ingest without an op field.
	OpInsert Op = "insert"
	// OpDelete removes an existing edge; deleting a missing edge fails
	// the whole batch.
	OpDelete Op = "delete"
)

// Delta is one edge mutation. Directed: it touches only Src's adjacency
// (callers wanting undirected semantics submit both directions, exactly
// like the loaders store undirected inputs twice).
type Delta struct {
	Op     Op             `json:"op,omitempty"`
	Src    graph.VertexID `json:"src"`
	Dst    graph.VertexID `json:"dst"`
	Weight float32        `json:"weight,omitempty"`
	Type   int32          `json:"type,omitempty"`
}

// Options configures a DynGraph.
type Options struct {
	// SamplerKind selects the per-vertex static sampler the epochs
	// prebuild for weighted graphs: "alias" (default) or "its". Must
	// match the engine's SamplerKind for the prebuilt tables to be used.
	SamplerKind string
	// CompactAfter, when positive, auto-compacts after that many applied
	// deltas have accumulated since the last compaction. Zero disables
	// auto-compaction (explicit Compact only).
	CompactAfter int
}

// edgeRec is one live overlay edge.
type edgeRec struct {
	dst graph.VertexID
	w   float32
	t   int32
}

// Metrics is a point-in-time snapshot of a DynGraph's counters.
type Metrics struct {
	Epoch          uint64
	DeltaVertices  int
	DeltaEdges     int64
	PendingDeltas  int64
	AppliedBatches int64
	AppliedDeltas  int64
	Compactions    int64
}

// DynGraph is a dynamic graph: an immutable base CSR plus per-vertex
// delta segments, publishing immutable epochs. Apply and Compact are
// serialized by an internal mutex; Epoch is lock-free and safe from any
// goroutine.
type DynGraph struct {
	opt Options

	mu   sync.Mutex
	base *graph.Graph
	// Overlay working state, parallel arrays keyed by the sorted vertex
	// list: verts[i]'s live adjacency is segs[i], its maintained
	// envelope envs[i]. Flattened into graph.NewOverlay arrays at each
	// publish.
	verts []graph.VertexID
	segs  [][]edgeRec
	envs  []sampling.Envelope

	pending        int64 // deltas since the last compaction
	appliedBatches int64
	appliedDeltas  int64
	compactions    int64

	cur atomic.Pointer[Epoch]
}

// New wraps base (which must be a full, plain CSR) as a dynamic graph
// and publishes epoch 0: the base itself, fingerprinted, with its
// static sampler tables prebuilt when the base is weighted.
func New(base *graph.Graph, opt Options) (*DynGraph, error) {
	if base == nil {
		return nil, fmt.Errorf("dyngraph: nil base")
	}
	if base.Overlaid() {
		return nil, fmt.Errorf("dyngraph: base must be a plain CSR, not an overlay view")
	}
	if lo, hi := base.OwnedRange(); int(lo) != 0 || int(hi) != base.NumVertices() {
		return nil, fmt.Errorf("dyngraph: base must be a full graph, not a partition slice")
	}
	switch opt.SamplerKind {
	case "":
		opt.SamplerKind = "alias"
	case "alias", "its":
	default:
		return nil, fmt.Errorf("dyngraph: unknown sampler kind %q", opt.SamplerKind)
	}
	if opt.CompactAfter < 0 {
		return nil, fmt.Errorf("dyngraph: negative CompactAfter")
	}

	d := &DynGraph{opt: opt, base: base}
	store, err := d.baseStore(base)
	if err != nil {
		return nil, err
	}
	fp := graph.Fingerprint(base)
	d.cur.Store(&Epoch{
		view:  base,
		fpSet: true,
		fp:    fp,
		logFP: chainSeed(fp),
		kind:  opt.SamplerKind,
		store: store,
	})
	return d, nil
}

// baseStore prebuilds the per-vertex static sampler table of a plain
// CSR, or returns nil for unweighted graphs (the engine's uniform
// sampler is O(1) to build; there is nothing worth caching).
func (d *DynGraph) baseStore(g *graph.Graph) (*samplerView, error) {
	if !g.Weighted() {
		return nil, nil
	}
	n := g.NumVertices()
	tabs := make([]sampling.StaticSampler, n)
	for v := 0; v < n; v++ {
		if g.Degree(graph.VertexID(v)) == 0 {
			continue
		}
		s, err := buildTable(d.opt.SamplerKind, g.Weights(graph.VertexID(v)))
		if err != nil {
			return nil, fmt.Errorf("dyngraph: vertex %d: %w", v, err)
		}
		tabs[v] = s
	}
	return &samplerView{kind: d.opt.SamplerKind, base: tabs}, nil
}

func buildTable(kind string, weights []float32) (sampling.StaticSampler, error) {
	if kind == "its" {
		return sampling.NewITS(weights)
	}
	return sampling.NewAlias(weights)
}

// Epoch returns the currently published epoch. The returned value is
// immutable and stays valid (and walkable) forever, including across
// later Apply and Compact calls.
func (d *DynGraph) Epoch() *Epoch {
	return d.cur.Load()
}

// Apply validates and applies one batch of deltas atomically: either the
// whole batch lands and a new epoch is published, or the graph is
// unchanged and an error describes the first offending delta. Sampler
// maintenance is incremental — only vertices named as a Src in the batch
// get their tables rebuilt; everything else is shared by pointer with
// the previous epoch.
func (d *DynGraph) Apply(batch []Delta) (*Epoch, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("dyngraph: empty batch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	n := d.base.NumVertices()
	weighted := d.base.Weighted()
	typed := d.base.Typed()

	// Copy-on-write working state: the slices are copied up front (cheap
	// pointer copies), individual segments only when first touched, so a
	// failed batch discards cleanly and published epochs are never
	// disturbed.
	verts := append([]graph.VertexID(nil), d.verts...)
	segs := append([][]edgeRec(nil), d.segs...)
	envs := append([]sampling.Envelope(nil), d.envs...)
	touched := make([]bool, len(verts))

	// ensure returns the working index of v's segment, materializing it
	// from the base adjacency on first touch (O(degree), with an exact
	// envelope scan).
	ensure := func(v graph.VertexID) int {
		i := sort.Search(len(verts), func(i int) bool { return verts[i] >= v })
		if i < len(verts) && verts[i] == v {
			if !touched[i] {
				segs[i] = append([]edgeRec(nil), segs[i]...)
				touched[i] = true
			}
			return i
		}
		adj := d.base.Neighbors(v)
		ws := d.base.Weights(v)
		ts := d.base.Types(v)
		seg := make([]edgeRec, len(adj))
		for j, dst := range adj {
			seg[j].dst = dst
			seg[j].w = 1
			if ws != nil {
				seg[j].w = ws[j]
			}
			if ts != nil {
				seg[j].t = ts[j]
			}
		}
		env := sampling.ExactEnvelope(ws)
		if ws == nil { // unweighted: every live weight is 1
			env = sampling.NewEnvelope(1, 1, len(adj))
		}
		verts = append(verts, 0)
		copy(verts[i+1:], verts[i:])
		verts[i] = v
		segs = append(segs, nil)
		copy(segs[i+1:], segs[i:])
		segs[i] = seg
		envs = append(envs, sampling.Envelope{})
		copy(envs[i+1:], envs[i:])
		envs[i] = env
		touched = append(touched, false)
		copy(touched[i+1:], touched[i:])
		touched[i] = true
		return i
	}

	for k := range batch {
		del := &batch[k]
		if int(del.Src) >= n || int(del.Dst) >= n {
			return nil, fmt.Errorf("dyngraph: delta %d: edge %d->%d outside |V|=%d (the vertex set is fixed at load)", k, del.Src, del.Dst, n)
		}
		switch del.Op {
		case OpInsert, "":
			w := del.Weight
			if weighted {
				if !(w > 0) || math.IsInf(float64(w), 0) || math.IsNaN(float64(w)) {
					return nil, fmt.Errorf("dyngraph: delta %d: weight %v on a weighted graph, want positive finite", k, w)
				}
			} else {
				if w != 0 && w != 1 {
					return nil, fmt.Errorf("dyngraph: delta %d: weight %v on an unweighted graph", k, w)
				}
				w = 1
			}
			if !typed && del.Type != 0 {
				return nil, fmt.Errorf("dyngraph: delta %d: type %d on an untyped graph", k, del.Type)
			}
			i := ensure(del.Src)
			seg := segs[i]
			j := sort.Search(len(seg), func(j int) bool { return seg[j].dst >= del.Dst })
			if j < len(seg) && seg[j].dst == del.Dst {
				envs[i].Update(float64(seg[j].w), float64(w))
				seg[j].w = w
				seg[j].t = del.Type
			} else {
				seg = append(seg, edgeRec{})
				copy(seg[j+1:], seg[j:])
				seg[j] = edgeRec{dst: del.Dst, w: w, t: del.Type}
				segs[i] = seg
				envs[i].Insert(float64(w))
			}
		case OpDelete:
			i := ensure(del.Src)
			seg := segs[i]
			j := sort.Search(len(seg), func(j int) bool { return seg[j].dst >= del.Dst })
			if j >= len(seg) || seg[j].dst != del.Dst {
				return nil, fmt.Errorf("dyngraph: delta %d: delete of missing edge %d->%d", k, del.Src, del.Dst)
			}
			envs[i].Delete(float64(seg[j].w))
			segs[i] = append(seg[:j], seg[j+1:]...)
		default:
			return nil, fmt.Errorf("dyngraph: delta %d: unknown op %q", k, del.Op)
		}
	}

	view, err := flatten(d.base, verts, segs, envs)
	if err != nil {
		return nil, err // unreachable if the invariants above hold
	}

	prev := d.cur.Load()
	store, err := prev.store.extend(verts, segs, touched, d.opt.SamplerKind)
	if err != nil {
		return nil, err
	}

	logFP := prev.logFP
	logFP = mixU64(logFP, markApply)
	logFP = mixU64(logFP, uint64(len(batch)))
	for k := range batch {
		del := &batch[k]
		op := uint64(0)
		if del.Op == OpDelete {
			op = 1
		}
		logFP = mixU64(logFP, op)
		logFP = mixU64(logFP, uint64(del.Src))
		logFP = mixU64(logFP, uint64(del.Dst))
		logFP = mixU64(logFP, uint64(math.Float32bits(del.Weight)))
		logFP = mixU64(logFP, uint64(uint32(del.Type)))
	}

	nv, deltaEdges := view.OverlayStats()
	ep := &Epoch{
		seq:  prev.seq + 1,
		view: view,
		// fp stays lazy: hashing the whole view here would make every
		// Apply O(V+E) and sink the O(affected-vertex) ingest bound.
		logFP:      logFP,
		kind:       d.opt.SamplerKind,
		store:      store,
		deltaVerts: nv,
		deltaEdges: deltaEdges,
	}

	d.verts, d.segs, d.envs = verts, segs, envs
	d.pending += int64(len(batch))
	d.appliedBatches++
	d.appliedDeltas += int64(len(batch))
	d.cur.Store(ep)

	if d.opt.CompactAfter > 0 && d.pending >= int64(d.opt.CompactAfter) {
		return d.compactLocked()
	}
	return ep, nil
}

// flatten materializes the working overlay state into a graph overlay
// view sharing the base arrays.
func flatten(base *graph.Graph, verts []graph.VertexID, segs [][]edgeRec, envs []sampling.Envelope) (*graph.Graph, error) {
	total := 0
	for _, seg := range segs {
		total += len(seg)
	}
	offs := make([]int64, len(verts)+1)
	dst := make([]graph.VertexID, 0, total)
	var weight []float32
	var etype []int32
	if base.Weighted() {
		weight = make([]float32, 0, total)
	}
	if base.Typed() {
		etype = make([]int32, 0, total)
	}
	var maxW []float64
	if base.Weighted() {
		maxW = make([]float64, len(verts))
	}
	for i, seg := range segs {
		for _, e := range seg {
			dst = append(dst, e.dst)
			if weight != nil {
				weight = append(weight, e.w)
			}
			if etype != nil {
				etype = append(etype, e.t)
			}
		}
		offs[i+1] = int64(len(dst))
		if maxW != nil {
			maxW[i] = envs[i].Upper()
		}
	}
	return graph.NewOverlay(base, verts, offs, dst, weight, etype, maxW)
}

// Metrics returns a consistent snapshot of the counters.
func (d *DynGraph) Metrics() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	ep := d.cur.Load()
	return Metrics{
		Epoch:          ep.seq,
		DeltaVertices:  ep.deltaVerts,
		DeltaEdges:     ep.deltaEdges,
		PendingDeltas:  d.pending,
		AppliedBatches: d.appliedBatches,
		AppliedDeltas:  d.appliedDeltas,
		Compactions:    d.compactions,
	}
}

// FNV-1a 64-bit chaining for the epoch delta-log fingerprint: the epoch
// identity is a pure function of (base fingerprint, ordered batches,
// compaction points), so two services that ingested the same history
// address the same epoch.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	markApply   = 1
	markCompact = 2
)

func chainSeed(baseFP uint64) uint64 {
	return mixU64(fnvOffset64, baseFP)
}

func mixU64(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (v >> i) & 0xff
		h *= fnvPrime64
	}
	return h
}
